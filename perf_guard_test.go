package decos

import (
	"bytes"
	"io"
	"testing"

	"decos/internal/diagnosis"
	"decos/internal/engine"
	"decos/internal/scenario"
	"decos/internal/sim"
	"decos/internal/telemetry"
	"decos/internal/trace"
	"decos/internal/tt"
)

// Allocation guards for the simulator hot paths. The zero-allocation
// contract (scratch reuse, event pooling, dense bus state) is what the
// perf trajectory in BENCH_pr2.json is built on; these tests fail loudly
// when a change reintroduces per-slot or per-epoch garbage.

// nullController is the cheapest possible TT controller: a fixed frame, no
// reaction to traffic.
type nullController struct{ payload []byte }

func (c *nullController) BuildFrame(round int64, slot int) []byte { return c.payload }
func (c *nullController) OnSlot(f tt.Frame, st tt.FrameStatus)    {}
func (c *nullController) OnRoundEnd(round int64)                  {}

// TestAllocGuardBusSlot drives a bare 4-node bus and requires at most 2
// allocations per TDMA slot in steady state (the pooled slot event and the
// bus scratch make the expected count 0).
func TestAllocGuardBusSlot(t *testing.T) {
	sched := sim.NewScheduler()
	cfg := tt.UniformSchedule(4, 250*sim.Microsecond, 32)
	bus := tt.NewBus(cfg, sched)
	for i := 0; i < 4; i++ {
		bus.Attach(tt.NodeID(i), &nullController{payload: []byte{byte(i)}})
	}
	bus.Start()

	const roundsPerRun = 512
	slotsPerRun := roundsPerRun * len(cfg.Slots)
	roundUS := cfg.RoundDuration().Micros()
	var until sim.Time
	run := func() {
		until += sim.Time(roundsPerRun * roundUS)
		sched.RunUntil(until)
	}
	run() // warm the event pool and bus scratch

	allocs := testing.AllocsPerRun(5, run)
	perSlot := allocs / float64(slotsPerRun)
	t.Logf("bus slot: %.4f allocs/slot", perSlot)
	if perSlot > 2 {
		t.Errorf("bus slot allocates %.2f objects/slot, want <= 2", perSlot)
	}
}

// TestAllocGuardAssessorEpoch bounds one ONA-suite evaluation over a loaded
// history (active connector fault, symptom traffic flowing). The epoch
// scratch (EvalContext, finding map, sort buffers) is reused; what remains
// is the per-epoch trust-history growth and emitted findings (measured ~3).
func TestAllocGuardAssessorEpoch(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster warm-up in -short mode")
	}
	sys := scenario.Fig10(20050404, diagnosis.Options{})
	sys.Injector.ConnectorTx(0, 0, 0, 0.3)
	sys.Run(2000)
	a := sys.Diag.Assessor

	granule := int64(2000)
	var now sim.Time
	run := func() {
		granule++
		now++
		a.EvaluateNow(granule, now)
	}
	run() // warm the epoch scratch

	allocs := testing.AllocsPerRun(50, run)
	t.Logf("assessor epoch: %.1f allocs/epoch", allocs)
	if allocs > 16 {
		t.Errorf("assessor epoch allocates %.1f objects, want <= 16", allocs)
	}
}

// TestAllocGuardTelemetryRound is the zero-overhead contract of the
// telemetry subsystem, measured: a Fig. 10 cluster round with a nil
// registry must allocate exactly what an entirely un-optioned cluster
// allocates (the disabled path installs no hooks at all), and an enabled
// registry may add at most 2 allocations per round on top.
func TestAllocGuardTelemetryRound(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster warm-up in -short mode")
	}
	perRound := func(extra ...engine.Option) float64 {
		sys := scenario.Fig10With(20050404, diagnosis.Options{}, extra...)
		sys.Run(200) // warm pools, scratch and trust histories
		const roundsPerRun = 64
		allocs := testing.AllocsPerRun(5, func() { sys.Run(roundsPerRun) })
		return allocs / roundsPerRun
	}

	base := perRound()
	nilReg := perRound(engine.WithTelemetry(nil))
	enabled := perRound(engine.WithTelemetry(telemetry.New()))
	t.Logf("allocs/round: base %.3f, nil registry %.3f, enabled %.3f", base, nilReg, enabled)

	if nilReg != base {
		t.Errorf("nil-registry round allocates %.3f objects, baseline %.3f — disabled telemetry must be free", nilReg, base)
	}
	if enabled > base+2 {
		t.Errorf("enabled-registry round allocates %.3f objects, want <= baseline + 2 (%.3f)", enabled, base+2)
	}
}

// TestAllocGuardBayesOffRound pins the bayes-off contract: a default
// Fig. 10 cluster round (DECOS classification stage, no bayes option)
// must stay at the 3-allocs/round baseline recorded before the Bayesian
// subsystem existed. The Bayesian stage is pay-for-use — installing it
// may cost more per round, but not installing it must cost nothing.
func TestAllocGuardBayesOffRound(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster warm-up in -short mode")
	}
	sys := scenario.Fig10(20050404, diagnosis.Options{})
	sys.Run(200) // warm pools, scratch and trust histories
	const roundsPerRun = 64
	allocs := testing.AllocsPerRun(5, func() { sys.Run(roundsPerRun) })
	perRound := allocs / roundsPerRun
	t.Logf("bayes-off cluster round: %.3f allocs/round", perRound)
	if perRound > 3 {
		t.Errorf("default cluster round allocates %.3f objects/round, want <= 3 (the pre-bayes baseline)", perRound)
	}
}

// TestAllocGuardTraceCodec pins the binary trace codec's zero-allocation
// contract on both sides of the wire: encoding events into a sink and
// decoding them back must allocate nothing per event in steady state
// (pooled encode scratch, reused payload buffer, interned strings,
// pointer-field scratch). This is what makes the ≥5x ingest speedup in
// BENCH_pr7.json structural rather than incidental.
func TestAllocGuardTraceCodec(t *testing.T) {
	events := syntheticFleetEvents(64, 256)

	sink := trace.NewBinarySink(io.Discard)
	encodeRun := func() {
		for i := range events {
			if err := sink.Record(&events[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	encodeRun() // warm the scratch pool before measuring
	if allocs := testing.AllocsPerRun(5, encodeRun); allocs != 0 {
		t.Errorf("binary encode allocates %.0f times per %d events, want 0", allocs, len(events))
	}

	blob := encodeTraceBlob(t, events, trace.FormatBinary)
	rd := trace.NewBinaryReader(bytes.NewReader(blob))
	const perRun = 1024
	decodeRun := func() {
		for i := 0; i < perRun; i++ {
			if _, err := rd.Next(); err != nil {
				t.Fatalf("event %d: %v", rd.Records(), err)
			}
		}
	}
	decodeRun()                    // warm the intern table and payload scratch
	runs := len(events)/perRun - 2 // stay clear of EOF
	if allocs := testing.AllocsPerRun(runs, decodeRun); allocs != 0 {
		t.Errorf("binary decode allocates %.0f times per %d events, want 0", allocs, perRun)
	}
}
