module decos

go 1.22
