package experiments

import (
	"decos/internal/core"
	"decos/internal/diagnosis"
	"decos/internal/maintenance"
	"decos/internal/scenario"
	"decos/internal/sim"
	"decos/internal/tt"
)

// E11RepairLoop closes the maintenance loop the paper motivates: "from a
// maintenance point of view the most important question is whether a
// replacement of a particular component will put an end to spurious system
// malfunctions". For every fault kind: run a vehicle, take it to the
// workshop, apply the advised maintenance action, clear the diagnostic
// memory, run again — and measure objectively (LIF-level symptom activity)
// whether the malfunction is gone. DECOS advice fixes the car; OBD advice
// frequently replaces hardware that cannot help (the customer returns) or
// finds nothing at all.
func E11RepairLoop(seed uint64) *Result {
	kinds := []scenario.FaultKind{
		scenario.KindSEU, scenario.KindConnectorTx, scenario.KindConnectorRx,
		scenario.KindWearout, scenario.KindIntermittent, scenario.KindPermanent,
		scenario.KindQuartz, scenario.KindConfig, scenario.KindBohrbug,
		scenario.KindHeisenbug, scenario.KindSensorStuck, scenario.KindPowerDip,
	}
	// Residual symptom budget: a fixed post-repair window may still carry
	// a handful of stale/startup records.
	const residualBudget = 25

	opts := diagnosis.Options{
		JobInternalAssertions: true,
		UpdateAvailable:       func(core.FRU) bool { return true },
	}

	type arm struct {
		fixed    int
		stillBad int
		noAction int
		removals int
	}
	run := func(kind scenario.FaultKind, rep int, useOBD bool) (fixedAction core.MaintenanceAction, stillFailing bool, removal bool) {
		sys := scenario.Fig10(seed+uint64(kind)*211+uint64(rep)*31, opts)
		act := sys.Inject(kind, sim.Time(300*sim.Millisecond), sim.Time(3*sim.Second))
		sys.Run(3000)

		subject := act.Culprit
		if subject.Component < 0 && len(act.Affected) > 0 {
			subject = act.Affected[0]
		}
		var action core.MaintenanceAction
		var found bool
		if useOBD {
			action, _, found = sys.OBD.Advise(subject)
		} else {
			action, _, found = sys.Diag.Advise(subject)
		}
		if !found {
			action = core.ActionNone
		}
		maintenance.Apply(act, action)

		// Workshop bookkeeping: clear diagnostic memory for the serviced
		// FRU either way.
		if idx, ok := sys.Diag.Reg.Index(subject); ok {
			sys.Diag.Assessor.ClearVerdict(idx)
		}
		sys.OBD.Clear(tt.NodeID(subject.Component))

		// Settling window: drain diagnostic-network backlog and let stale
		// port state refresh before judging the repair.
		sys.Run(500)
		// Post-repair observation window: objective LIF-level evidence.
		before := sys.Diag.Assessor.SymptomsReceived
		sys.Run(2000)
		residual := sys.Diag.Assessor.SymptomsReceived - before
		return action, residual > residualBudget, action.Removal()
	}

	t := newTable("fault kind", "DECOS action", "fixed?", "OBD action", "fixed?")
	var decos, obd arm
	for _, kind := range kinds {
		var dAct, oAct core.MaintenanceAction
		var dBad, oBad bool
		for rep := 0; rep < 2; rep++ {
			a, bad, rem := run(kind, rep, false)
			dAct = a
			dBad = dBad || bad
			if bad {
				decos.stillBad++
			} else {
				decos.fixed++
			}
			if rem {
				decos.removals++
			}
			if a == core.ActionNone {
				decos.noAction++
			}
			a, bad, rem = run(kind, rep, true)
			oAct = a
			oBad = oBad || bad
			if bad {
				obd.stillBad++
			} else {
				obd.fixed++
			}
			if rem {
				obd.removals++
			}
			if a == core.ActionNone {
				obd.noAction++
			}
		}
		t.row(kind.String(), dAct.String(), !dBad, oAct.String(), !oBad)
	}
	total := float64(decos.fixed + decos.stillBad)
	tbl := t.String()

	return &Result{
		ID:     "E11",
		Figure: "extension — repair effectiveness: does the advised action end the malfunction?",
		Table:  tbl,
		Metrics: map[string]float64{
			"decos_fix_rate": float64(decos.fixed) / total,
			"obd_fix_rate":   float64(obd.fixed) / total,
			"decos_removals": float64(decos.removals),
			"obd_removals":   float64(obd.removals),
			"decos_returns":  float64(decos.stillBad),
			"obd_returns":    float64(obd.stillBad),
			"obd_no_finding": float64(obd.noAction),
		},
	}
}
