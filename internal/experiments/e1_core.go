package experiments

import (
	"fmt"

	"decos/internal/component"
	"decos/internal/engine"
	"decos/internal/sim"
	"decos/internal/tt"
)

// E1CoreServices verifies that the four core services of the waist-line
// architecture (paper Fig. 1, Section II-B) hold on the simulated base
// architecture, each under a single-FCR fault:
//
//	C1 predictable transport   — slot instants match the schedule exactly
//	C2 fault-tolerant clock sync — precision stays within Π under drift
//	C3 strong fault isolation  — a babbling idiot never disturbs foreign slots
//	C4 consistent diagnosis    — membership views agree; fail-silent node
//	                             detected within one round
func E1CoreServices(seed uint64) *Result {
	// C1: record slot firing offsets.
	maxJitter := int64(0)
	slotCount := 0
	eng := engine.MustNew(
		engine.WithTopology(4, 250*sim.Microsecond, 64),
		engine.WithSeed(seed),
		engine.WithClocks(100, 0.1, 25, 1),
		engine.WithBuild(func(cl *component.Cluster) {
			for i := 0; i < 4; i++ {
				cl.AddComponent(tt.NodeID(i), fmt.Sprintf("c%d", i), float64(i), 0)
			}
			// One trivial job per component so rounds have work.
			cl.Env.DefineConst("x", 1)
			das := cl.AddDAS("E1", component.NonSafetyCritical)
			for i := 0; i < 4; i++ {
				cl.AddJob(das, cl.Component(tt.NodeID(i)), fmt.Sprintf("j%d", i), 0,
					component.JobFunc(func(ctx *component.Context) {}))
			}
			cl.Bus.Observe(func(f *tt.Frame, _ []tt.FrameStatus) {
				want := cl.Cfg.SlotStart(f.Round, f.Slot)
				if d := f.At.Micros() - want.Micros(); d != 0 {
					if d < 0 {
						d = -d
					}
					if d > maxJitter {
						maxJitter = d
					}
				}
				slotCount++
			})
		}),
	)
	cl := eng.Cluster

	// Phase 1: healthy run, track precision.
	worstPrecision := 0.0
	cl.OnRound(func(round int64, now sim.Time) {
		if p := cl.Bus.Clocks.Precision(now); p > worstPrecision {
			worstPrecision = p
		}
	})
	cl.RunRounds(2000)

	// Phase 2: babbling idiot on node 3 (C3).
	cl.Bus.SetBabbling(3, true)
	corrupted := 0
	phase2 := true
	cl.Bus.Observe(func(f *tt.Frame, _ []tt.FrameStatus) {
		if phase2 && f.Sender != 3 && f.Status.Failed() {
			corrupted++
		}
	})
	cl.RunRounds(1000)
	blocks := cl.Bus.GuardianBlocks
	cl.Bus.SetBabbling(3, false)
	phase2 = false

	// Phase 3: fail-silent node 2 (C4): detection latency + consistency.
	killRound := cl.Round()
	cl.Bus.SetAlive(2, false)
	cl.RunRounds(10)
	round := cl.Round()
	detected := int64(-1)
	for r := killRound; r <= round; r++ {
		if !cl.Bus.Membership(0).Member(2, r) {
			detected = r - killRound
			break
		}
	}
	consistent := true
	for _, n := range []tt.NodeID{0, 1, 3} {
		if !cl.Bus.Membership(n).Agrees(cl.Bus.Membership(0), round) {
			consistent = false
		}
	}

	t := newTable("core service", "requirement", "measured", "holds")
	t.row("C1 transport", "slot jitter = 0 µs", fmt.Sprintf("%d µs over %d slots", maxJitter, slotCount), maxJitter == 0)
	t.row("C2 clock sync", "precision ≤ Π=25 µs", fmt.Sprintf("%.2f µs worst", worstPrecision), worstPrecision <= 25)
	t.row("C3 isolation", "0 foreign slots disturbed", fmt.Sprintf("%d disturbed, %d attempts blocked", corrupted, blocks), corrupted == 0 && blocks > 0)
	t.row("C4 membership", "consistent, ≤ 2 rounds", fmt.Sprintf("detected after %d rounds, consistent=%v", detected, consistent), consistent && detected >= 0 && detected <= 2)

	return &Result{
		ID:     "E1",
		Figure: "Fig. 1/2 — core services of the integrated architecture",
		Table:  t.String(),
		Metrics: map[string]float64{
			"slot_jitter_us":      float64(maxJitter),
			"worst_precision_us":  worstPrecision,
			"foreign_disturbed":   float64(corrupted),
			"guardian_blocks":     float64(blocks),
			"detect_latency_rnds": float64(detected),
			"membership_agree":    b2f(consistent),
		},
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
