package experiments

import (
	"decos/internal/core"
	"decos/internal/diagnosis"
	"decos/internal/maintenance"
	"decos/internal/scenario"
	"decos/internal/sim"
)

// E7Actions regenerates the maintenance-action table of the paper's
// Fig. 11 as a measurement: for repeated injections of every fault kind,
// the distribution of actions the diagnostic DAS derives, and the fraction
// matching the action the true class requires.
func E7Actions(seed uint64) *Result {
	const perKind = 3
	kinds := scenario.AllKinds()
	t := newTable("injected kind", "true class", "required action", "derived action(s)", "correct")
	metrics := map[string]float64{}
	totalCorrect, total := 0, 0

	for _, kind := range kinds {
		actions := map[core.MaintenanceAction]int{}
		var truth core.FaultClass
		correct := 0
		for rep := 0; rep < perKind; rep++ {
			sys := scenario.Fig10(seed+uint64(kind)*1009+uint64(rep)*97, diagnosis.Options{})
			act := sys.Inject(kind, sim.Time(300*sim.Millisecond), sim.Time(3*sim.Second))
			truth = act.Class
			sys.Run(3000)
			r := maintenance.Evaluate(sys.Injector.Ledger(), sys.Diag)
			out := r.Outcomes[0]
			actions[out.Action]++
			if out.CorrectAction {
				correct++
			}
		}
		totalCorrect += correct
		total += perKind
		t.row(kind.String(), truth.String(),
			core.ActionFor(truth, false).String(),
			formatActionDist(actions),
			frac(correct, perKind))
		metrics["correct_"+kind.String()] = float64(correct) / perKind
	}
	metrics["action_accuracy"] = float64(totalCorrect) / float64(total)

	return &Result{
		ID:      "E7",
		Figure:  "Fig. 11 — maintenance action per fault class, measured",
		Table:   t.String(),
		Metrics: metrics,
	}
}

func formatActionDist(actions map[core.MaintenanceAction]int) string {
	out := ""
	for a := core.MaintenanceAction(0); a <= core.ActionInvestigate; a++ {
		if n := actions[a]; n > 0 {
			if out != "" {
				out += ", "
			}
			out += a.String()
			if n > 1 {
				out += "×" + itoa(n)
			}
		}
	}
	if out == "" {
		return "-"
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func frac(a, b int) string {
	return itoa(a) + "/" + itoa(b)
}
