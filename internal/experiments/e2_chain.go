package experiments

import (
	"fmt"

	"decos/internal/core"
	"decos/internal/diagnosis"
	"decos/internal/scenario"
	"decos/internal/sim"
)

// E2Chain traces the fault-error-failure chain (paper Fig. 3) end to end
// for one representative injection per fault class of the model overview
// (Fig. 6): the injected fault manifests as errors and LIF failures, and
// the diagnostic DAS reverses the chain back to a FRU-level classification.
func E2Chain(seed uint64) *Result {
	kinds := []scenario.FaultKind{
		scenario.KindEMI, scenario.KindSEU, scenario.KindConnectorTx,
		scenario.KindConnectorRx, scenario.KindWearout, scenario.KindIntermittent,
		scenario.KindPermanent, scenario.KindQuartz, scenario.KindConfig,
		scenario.KindBohrbug, scenario.KindHeisenbug, scenario.KindJobCrash,
		scenario.KindSensorStuck, scenario.KindSensorDrift, scenario.KindPowerDip,
	}
	t := newTable("injected kind", "true class", "chain", "diagnosed", "pattern", "match")
	matches := 0
	for i, kind := range kinds {
		sys := scenario.Fig10(seed+uint64(i)*131, diagnosis.Options{})
		act := sys.Inject(kind, sim.Time(300*sim.Millisecond), sim.Time(3*sim.Second))
		sys.Run(3000)

		subject := act.Culprit
		if subject == core.FRU(noCulprit()) && len(act.Affected) > 0 {
			subject = act.Affected[0]
		}
		v, ok := sys.Diag.VerdictOf(subject)
		diagClass := core.ClassUnknown
		pattern := "-"
		if ok {
			diagClass = v.Class
			pattern = v.Pattern
		}
		match := act.Class.Matches(diagClass)
		if match {
			matches++
		}
		chain := "latent"
		if act.Chain.Complete() {
			root, _ := act.Chain.Root()
			fails := act.Chain.Failures()
			chain = fmt.Sprintf("%s → %d failures", root.Detail, len(fails))
		}
		t.row(kind.String(), act.Class.String(), chain, diagClass.String(), pattern, match)
	}
	return &Result{
		ID:     "E2",
		Figure: "Fig. 3/6 — fault-error-failure chain per fault class",
		Table:  t.String(),
		Metrics: map[string]float64{
			"classes":  float64(len(kinds)),
			"matched":  float64(matches),
			"accuracy": float64(matches) / float64(len(kinds)),
		},
	}
}

func noCulprit() core.FRU { return core.FRU{Component: -1} }
