package experiments

import (
	"fmt"

	"decos/internal/diagnosis"
	"decos/internal/faults"
	"decos/internal/scenario"
	"decos/internal/sim"
)

// E5Trust regenerates the LRU assessment trajectories of the paper's
// Fig. 9: trajectory A — a degrading FRU (wearout) whose trust declines
// with increasing confidence of a specification violation; trajectory B —
// a healthy FRU that suffers a brief external disturbance, dips, and
// recovers to conformance.
func E5Trust(seed uint64) *Result {
	sys := scenario.Fig10(seed, diagnosis.Options{})
	// Trajectory A: wearout on component 0.
	acc := faults.WearoutAcceleration{
		Onset: sim.Time(400 * sim.Millisecond), Tau: 500 * sim.Millisecond,
		BaseRatePerHour: 3600 * 4, MaxFactor: 40,
	}
	sys.Injector.Wearout(0, acc, 3600*20)
	// Trajectory B: EMI burst over components 2 and 3 early in the run.
	sys.Injector.EMIBurst(sim.Time(600*sim.Millisecond), 5.5, 0, 1.2, 10*sim.Millisecond, 4)
	sys.Run(4000)

	hwA, _ := sys.Diag.Reg.HardwareIndex(0)
	hwB, _ := sys.Diag.Reg.HardwareIndex(2)
	histA := sys.Diag.Assessor.TrustHistory(hwA)
	histB := sys.Diag.Assessor.TrustHistory(hwB)

	t := newTable("time", "trust A (wearout FRU)", "trust B (EMI-hit FRU)")
	step := len(histA) / 10
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(histA); i += step {
		t.row(histA[i].At.String(),
			fmt.Sprintf("%.3f", float64(histA[i].Trust)),
			fmt.Sprintf("%.3f", float64(histB[i].Trust)))
	}
	finalA := float64(histA[len(histA)-1].Trust)
	finalB := float64(histB[len(histB)-1].Trust)
	minB := 1.0
	for _, p := range histB {
		if float64(p.Trust) < minB {
			minB = float64(p.Trust)
		}
	}

	return &Result{
		ID:     "E5",
		Figure: "Fig. 9 — LRU assessment trajectories (trust levels)",
		Table:  t.String(),
		Metrics: map[string]float64{
			"final_trust_A": finalA,
			"final_trust_B": finalB,
			"min_trust_B":   minB,
			"fig9_shape_ok": b2f(finalA < 0.4 && finalB > 0.9 && minB < 1),
		},
	}
}
