package experiments

import (
	"strings"
	"testing"
)

const seed = 20050404 // IPPS 2005

func TestE1CoreServicesHold(t *testing.T) {
	r := E1CoreServices(seed)
	if r.Metrics["slot_jitter_us"] != 0 {
		t.Error("transport not predictable")
	}
	if r.Metrics["worst_precision_us"] > 25 {
		t.Errorf("precision %v exceeds Π", r.Metrics["worst_precision_us"])
	}
	if r.Metrics["foreign_disturbed"] != 0 || r.Metrics["guardian_blocks"] == 0 {
		t.Error("fault isolation failed")
	}
	if r.Metrics["membership_agree"] != 1 || r.Metrics["detect_latency_rnds"] > 2 {
		t.Error("membership service failed")
	}
}

func TestE2ChainAllClassesTraced(t *testing.T) {
	r := E2Chain(seed)
	if r.Metrics["accuracy"] < 0.85 {
		t.Errorf("chain classification accuracy %.2f\n%s", r.Metrics["accuracy"], r.Table)
	}
}

func TestE3BathtubShape(t *testing.T) {
	r := E3Bathtub(seed)
	if r.Metrics["bathtub_shape_ok"] != 1 {
		t.Errorf("bathtub shape broken:\n%s", r.Table)
	}
	// Useful-life hazard calibrated to the fault hypothesis (~100 FIT,
	// wide Monte-Carlo tolerance).
	if u := r.Metrics["useful_fit"]; u < 40 || u > 300 {
		t.Errorf("useful-life hazard = %v FIT, want ≈100", u)
	}
}

func TestE4PatternsMatchFig8(t *testing.T) {
	r := E4Patterns(seed)
	if r.Metrics["wearout_rise"] < 1.5 {
		t.Errorf("wearout episode rate not rising: ×%v", r.Metrics["wearout_rise"])
	}
	if r.Metrics["wearout_components"] != 1 {
		t.Errorf("wearout spread over %v components", r.Metrics["wearout_components"])
	}
	if r.Metrics["wearout_dev_increasing"] != 1 {
		t.Error("wearout deviation not increasing")
	}
	if r.Metrics["emi_components"] < 2 {
		t.Errorf("EMI hit %v components, want ≥2", r.Metrics["emi_components"])
	}
	if r.Metrics["emi_span_granules"] > 15 {
		t.Errorf("EMI span %v granules, want ~burst duration", r.Metrics["emi_span_granules"])
	}
	if r.Metrics["emi_max_bits"] < 2 {
		t.Error("EMI corruption not multi-bit")
	}
	if r.Metrics["connector_components"] != 1 {
		t.Errorf("connector spread over %v components", r.Metrics["connector_components"])
	}
	d := r.Metrics["connector_duty"]
	if d < 0.05 || d > 0.9 {
		t.Errorf("connector duty %v not intermittent", d)
	}
}

func TestE5TrustTrajectories(t *testing.T) {
	r := E5Trust(seed)
	if r.Metrics["fig9_shape_ok"] != 1 {
		t.Errorf("Fig. 9 trajectories wrong: A=%v B=%v minB=%v\n%s",
			r.Metrics["final_trust_A"], r.Metrics["final_trust_B"], r.Metrics["min_trust_B"], r.Table)
	}
}

func TestE6JudgmentContainment(t *testing.T) {
	r := E6Judgment(seed)
	for _, k := range []string{"job_fault_contained", "job_fault_localized", "tmr_masked", "hw_fault_localized"} {
		if r.Metrics[k] != 1 {
			t.Errorf("%s failed\n%s", k, r.Table)
		}
	}
	if r.Metrics["jobs_wrongly_blamed"] != 0 {
		t.Errorf("%v jobs wrongly blamed", r.Metrics["jobs_wrongly_blamed"])
	}
}

func TestE7ActionAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short mode")
	}
	r := E7Actions(seed)
	if r.Metrics["action_accuracy"] < 0.8 {
		t.Errorf("action accuracy %.2f\n%s", r.Metrics["action_accuracy"], r.Table)
	}
}

func TestE8NFFComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short mode")
	}
	r := E8NFF(seed)
	// The paper's qualitative claims, as shape assertions.
	if r.Metrics["decos_nff_ratio"] >= r.Metrics["obd_nff_ratio"] && r.Metrics["obd_nff_ratio"] > 0 {
		t.Errorf("DECOS NFF %.2f not below OBD %.2f\n%s",
			r.Metrics["decos_nff_ratio"], r.Metrics["obd_nff_ratio"], r.Table)
	}
	if r.Metrics["decos_action_acc"] <= r.Metrics["obd_action_acc"] {
		t.Errorf("DECOS action accuracy not better\n%s", r.Table)
	}
	if r.Metrics["decos_miss_ratio"] >= r.Metrics["obd_miss_ratio"] {
		t.Errorf("DECOS misses more faults than OBD\n%s", r.Table)
	}
	if r.Metrics["decos_false_alarms"] > 0 {
		t.Errorf("DECOS false alarms on healthy vehicles: %v", r.Metrics["decos_false_alarms"])
	}
}

func TestE9GracefulDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short mode")
	}
	r := E9MultiFault(seed)
	if r.Metrics["class_acc_k1"] < 0.9 {
		t.Errorf("single-fault accuracy %.2f", r.Metrics["class_acc_k1"])
	}
	// Multi-fault accuracy may degrade but must stay useful.
	if r.Metrics["class_acc_k3"] < 0.6 {
		t.Errorf("triple-fault accuracy collapsed: %.2f\n%s", r.Metrics["class_acc_k3"], r.Table)
	}
}

func TestE10ScaleCorrectness(t *testing.T) {
	if testing.Short() {
		t.Skip("scale sweep in -short mode")
	}
	r := E10Scale(seed)
	for _, n := range []string{"correct_n4", "correct_n8", "correct_n16", "correct_n32"} {
		if r.Metrics[n] != 1 {
			t.Errorf("%s failed\n%s", n, r.Table)
		}
	}
}

func TestE11RepairEffectiveness(t *testing.T) {
	if testing.Short() {
		t.Skip("repair loop in -short mode")
	}
	r := E11RepairLoop(seed)
	if r.Metrics["decos_fix_rate"] < 0.9 {
		t.Errorf("DECOS fix rate %.2f\n%s", r.Metrics["decos_fix_rate"], r.Table)
	}
	if r.Metrics["obd_fix_rate"] >= r.Metrics["decos_fix_rate"] {
		t.Errorf("OBD fixes as much as DECOS?\n%s", r.Table)
	}
	if r.Metrics["obd_no_finding"] == 0 {
		t.Error("OBD found everything — the fault-not-found phenomenon vanished")
	}
}

func TestA3EncapsulationJustified(t *testing.T) {
	r := A3Encapsulation(seed)
	if r.Metrics["guardian_on_correct"] != 1 {
		t.Errorf("with guardian the babbler was not isolated and identified\n%s", r.Table)
	}
	if r.Metrics["guardian_off_correct"] != 0 {
		t.Errorf("attribution should collapse without the guardian\n%s", r.Table)
	}
	if r.Metrics["guardian_off_verdicts"] < 2 {
		t.Errorf("babbling without guardian should disturb multiple FRUs\n%s", r.Table)
	}
}

func TestE12Robustness(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep in -short mode")
	}
	r := E12Robustness(seed)
	if r.Metrics["overall"] < 0.9 {
		t.Errorf("overall robustness %.2f\n%s", r.Metrics["overall"], r.Table)
	}
	if r.Metrics["worst_kind"] < 0.6 {
		t.Errorf("worst kind accuracy %.2f\n%s", r.Metrics["worst_kind"], r.Table)
	}
}

func TestE13FleetWarrantyAgrees(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet campaign in -short mode")
	}
	r := E13FleetWarranty(seed)
	if r.Metrics["agree"] != 1 {
		t.Errorf("trace-fed summary diverged from in-process audit:\n%s", r.Table)
	}
	if r.Metrics["decos_nff_ratio"] >= r.Metrics["obd_nff_ratio"] {
		t.Errorf("NFF comparison inverted over the warranty interface:\n%s", r.Table)
	}
	if r.Metrics["events"] == 0 {
		t.Error("no events ingested")
	}
}

func TestA5DiagBandwidth(t *testing.T) {
	r := A5DiagBandwidth(seed)
	if r.Metrics["drops_a32"] <= r.Metrics["drops_a128"] {
		t.Errorf("undersized diagnostic segment did not drop more symptoms\n%s", r.Table)
	}
	if r.Metrics["drops_a128"] != 0 {
		t.Errorf("generous allocation still dropped %v symptoms", r.Metrics["drops_a128"])
	}
	if r.Metrics["received_a32"] >= r.Metrics["received_a128"] {
		t.Errorf("symptom delivery did not improve with bandwidth\n%s", r.Table)
	}
}

func TestA4QueueSweepMonotone(t *testing.T) {
	r := A4QueueSweep(seed)
	if r.Metrics["overflows_cap1"] <= r.Metrics["overflows_cap16"] {
		t.Errorf("overflow count not decreasing with capacity\n%s", r.Table)
	}
	if r.Metrics["flagged_cap1"] != 1 {
		t.Error("undersized queue not flagged as configuration fault")
	}
}

func TestByIDAndAll(t *testing.T) {
	if _, ok := ByID("e1", seed); !ok {
		t.Error("ByID(e1) failed")
	}
	if _, ok := ByID("nope", seed); ok {
		t.Error("ByID(nope) succeeded")
	}
	r := E1CoreServices(seed)
	if !strings.Contains(r.String(), "E1") || !strings.Contains(r.String(), "metrics:") {
		t.Error("Result.String malformed")
	}
}

func TestE14DivergenceLocalizes(t *testing.T) {
	if testing.Short() {
		t.Skip("counterfactual sweep in -short mode")
	}
	r := E14Whatif(seed)
	if r.Metrics["localization"] < 0.9 {
		t.Errorf("divergence localization %.2f among diverged runs\n%s",
			r.Metrics["localization"], r.Table)
	}
	// SEUs may mask entirely (the counterfactual NFF case), but the
	// persistent kinds must be observable.
	if r.Metrics["diverged"] < 0.7 {
		t.Errorf("only %.0f%% of faulted runs diverged at all\n%s",
			100*r.Metrics["diverged"], r.Table)
	}
	for _, k := range []string{"connector-tx", "connector-rx", "permanent", "quartz", "power-dip"} {
		if r.Metrics["div_"+k] < 1 {
			t.Errorf("%s: persistent fault produced no divergence in some seeds\n%s", k, r.Table)
		}
	}
}

func TestE16BayesGate(t *testing.T) {
	if testing.Short() {
		t.Skip("dual-classifier seed sweep in -short mode")
	}
	r := E16BayesCalibration(seed)
	// The headline gate of the Bayesian stage: it must attribute hardware
	// faults at least as well as the rule engine it can replace.
	if r.Metrics["recall_bayes"] < r.Metrics["recall_decos"] {
		t.Errorf("bayes recall %.3f below decos recall %.3f\n%s",
			r.Metrics["recall_bayes"], r.Metrics["recall_decos"], r.Table)
	}
	if r.Metrics["precision_bayes"] < 0.9 {
		t.Errorf("bayes accusation precision %.3f\n%s",
			r.Metrics["precision_bayes"], r.Table)
	}
	// Posterior-derived confidences should be no worse calibrated than the
	// rule engine's hand-assigned ones.
	if r.Metrics["ece_bayes"] > r.Metrics["ece_decos"]+0.05 {
		t.Errorf("bayes ECE %.3f much worse than decos %.3f\n%s",
			r.Metrics["ece_bayes"], r.Metrics["ece_decos"], r.Table)
	}
	// Both probabilistic baselines must beat the OBD threshold baseline.
	if r.Metrics["recall_bayes"] <= r.Metrics["recall_obd"] {
		t.Errorf("bayes recall %.3f not above obd %.3f\n%s",
			r.Metrics["recall_bayes"], r.Metrics["recall_obd"], r.Table)
	}
}
