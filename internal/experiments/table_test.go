package experiments

import (
	"strings"
	"testing"
)

func TestTableFormatting(t *testing.T) {
	tb := newTable("name", "value")
	tb.row("alpha", 1)
	tb.row("a-much-longer-name", 3.14159)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("table has %d lines", len(lines))
	}
	// Columns align: every line has the value column at the same offset.
	idx := strings.Index(lines[1], "1")
	if idx < 0 || !strings.HasPrefix(lines[2][idx:], "3.14") {
		t.Errorf("columns misaligned:\n%s", out)
	}
	// Floats rendered compactly.
	if !strings.Contains(out, "3.14") || strings.Contains(out, "3.14159265") {
		t.Errorf("float formatting wrong:\n%s", out)
	}
}

func TestTableGrowsColumns(t *testing.T) {
	tb := newTable("a")
	tb.row("x", "extra", "cols")
	if out := tb.String(); !strings.Contains(out, "extra") {
		t.Errorf("extra columns dropped:\n%s", out)
	}
}

func TestHelpers(t *testing.T) {
	if itoa(0) != "0" || itoa(1234) != "1234" {
		t.Error("itoa wrong")
	}
	if frac(3, 4) != "3/4" {
		t.Error("frac wrong")
	}
	if pct(0.125) != "12.5%" {
		t.Error("pct wrong")
	}
	if ratio(4, 2) != 2 || ratio(0, 0) != 1 || ratio(3, 0) != 3 {
		t.Error("ratio wrong")
	}
	if b2f(true) != 1 || b2f(false) != 0 {
		t.Error("b2f wrong")
	}
	if btoi(true) != 1 || btoi(false) != 0 {
		t.Error("btoi wrong")
	}
	if min(2, 3) != 2 || min(3, 2) != 2 {
		t.Error("min wrong")
	}
}
