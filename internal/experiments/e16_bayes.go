package experiments

import (
	"fmt"
	"math"

	"decos/internal/bayes"
	"decos/internal/core"
	"decos/internal/diagnosis"
	"decos/internal/engine"
	"decos/internal/scenario"
	"decos/internal/sim"
)

// e16Seeds mirrors the E12 robustness sweep; the seed arithmetic below
// must stay identical to E12Robustness so the two experiments describe
// the same 40 fault realizations.
const e16Seeds = 5

// e16HardwareKinds is the hardware half of the injector taxonomy — the
// kinds whose ground-truth culprit is a component FRU, so "did the
// classifier attribute the fault to the right piece of hardware" is
// well-defined.
var e16HardwareKinds = []scenario.FaultKind{
	scenario.KindEMI, scenario.KindSEU,
	scenario.KindConnectorTx, scenario.KindConnectorRx,
	scenario.KindWearout, scenario.KindIntermittent,
	scenario.KindPermanent, scenario.KindQuartz,
}

// e16Verdict is one classifier's answer for one FRU in one run.
type e16Verdict struct {
	class core.FaultClass
	conf  float64
	found bool
}

// e16Collector accumulates attribution and calibration statistics for
// one classifier across the sweep.
type e16Collector struct {
	name string
	// hits / runs: hardware-attribution recall — the culprit component
	// carries a standing verdict whose class matches the ground truth.
	hits, runs int
	// tp / fp: accused hardware FRUs that are / are not culprits, for
	// precision.
	tp, fp int
	// perSeed[s] counts hits of seed replicate s (the CI resamples the
	// sweep by replicate).
	perSeed []int
	// calibration bins over verdict confidence: [0,.2) .. [.8,1].
	calN       [5]int
	calCorrect [5]int
	calConf    [5]float64
}

func newE16Collector(name string) *e16Collector {
	return &e16Collector{name: name, perSeed: make([]int, e16Seeds)}
}

// observe folds one run into the collector. verdictOf answers for any
// hardware component; culprits is the set of ground-truth component
// ids; subject/class are E12's scoring target and truth.
func (c *e16Collector) observe(s int, verdictOf func(comp int) e16Verdict,
	nComp int, culprits map[int]bool, subject int, truth core.FaultClass) {
	c.runs++
	if v := verdictOf(subject); v.found && truth.Matches(v.class) {
		c.hits++
		c.perSeed[s]++
	}
	for comp := 0; comp < nComp; comp++ {
		v := verdictOf(comp)
		if !v.found {
			continue
		}
		correct := culprits[comp] && truth.Matches(v.class)
		if culprits[comp] {
			c.tp++
		} else {
			c.fp++
		}
		bin := int(v.conf * 5)
		if bin > 4 {
			bin = 4
		}
		if bin < 0 {
			bin = 0
		}
		c.calN[bin]++
		c.calConf[bin] += v.conf
		if correct {
			c.calCorrect[bin]++
		}
	}
}

func (c *e16Collector) recall() float64 {
	if c.runs == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.runs)
}

func (c *e16Collector) precision() float64 {
	if c.tp+c.fp == 0 {
		return 1 // nothing accused, nothing wrong
	}
	return float64(c.tp) / float64(c.tp+c.fp)
}

// recallCI95 is the half-width of the normal-approximation 95 % CI over
// the per-replicate recalls (each seed replicate spans every kind).
func (c *e16Collector) recallCI95() float64 {
	n := len(c.perSeed)
	if n < 2 {
		return 0
	}
	kindsPerSeed := float64(c.runs) / float64(n)
	mean := 0.0
	vals := make([]float64, n)
	for i, h := range c.perSeed {
		vals[i] = float64(h) / kindsPerSeed
		mean += vals[i]
	}
	mean /= float64(n)
	ss := 0.0
	for _, v := range vals {
		d := v - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	return 1.96 * sd / math.Sqrt(float64(n))
}

// ece is the expected calibration error: the bin-weighted mean absolute
// gap between stated confidence and empirical accuracy.
func (c *e16Collector) ece() float64 {
	total := 0
	for _, n := range c.calN {
		total += n
	}
	if total == 0 {
		return 0
	}
	e := 0.0
	for b := range c.calN {
		if c.calN[b] == 0 {
			continue
		}
		acc := float64(c.calCorrect[b]) / float64(c.calN[b])
		conf := c.calConf[b] / float64(c.calN[b])
		e += float64(c.calN[b]) / float64(total) * math.Abs(conf-acc)
	}
	return e
}

// E16BayesCalibration compares the three classification stages — the
// DECOS rule engine, the OBD threshold baseline and the Bayesian
// posterior stage — over the hardware half of the E12 robustness sweep
// (8 fault kinds × 5 seeds, identical seed arithmetic): hardware-
// attribution recall with a 95 % CI over seed replicates, accusation
// precision, and a confidence-calibration curve with its expected
// calibration error. The DECOS and OBD answers come from one shared run
// per realization (the OBD advisor is always attached alongside); the
// Bayesian stage runs the same realization with the pipeline swapped.
func E16BayesCalibration(seed uint64) *Result {
	const nComp = 4 // Fig. 10 components; 3 hosts the diagnostic DAS
	collectors := map[string]*e16Collector{
		"decos": newE16Collector("decos"),
		"obd":   newE16Collector("obd"),
		"bayes": newE16Collector("bayes"),
	}

	for _, kind := range e16HardwareKinds {
		for s := 0; s < e16Seeds; s++ {
			runSeed := seed + uint64(kind)*6151 + uint64(s)*389

			sys := scenario.Fig10(runSeed, diagnosis.Options{})
			act := sys.Inject(kind, sim.Time(300*sim.Millisecond), sim.Time(3*sim.Second))
			sys.Run(3000)

			culprits := map[int]bool{}
			if act.Culprit.Component >= 0 && act.Culprit.IsHardware() {
				culprits[act.Culprit.Component] = true
			}
			for _, a := range act.Affected {
				if a.IsHardware() && a.Component >= 0 {
					culprits[a.Component] = true
				}
			}
			subject := act.Culprit
			if subject.Component < 0 && len(act.Affected) > 0 {
				subject = act.Affected[0]
			}

			collectors["decos"].observe(s, func(comp int) e16Verdict {
				v, ok := sys.Diag.VerdictOf(core.HardwareFRU(comp))
				return e16Verdict{class: v.Class, conf: v.Confidence, found: ok}
			}, nComp, culprits, subject.Component, act.Class)
			collectors["obd"].observe(s, func(comp int) e16Verdict {
				// The baseline emits hard DTC-derived advice without a
				// confidence; score it as fully confident.
				_, class, ok := sys.OBD.Advise(core.HardwareFRU(comp))
				return e16Verdict{class: class, conf: 1, found: ok}
			}, nComp, culprits, subject.Component, act.Class)

			sysB := scenario.Fig10With(runSeed, diagnosis.Options{},
				engine.WithClassifier(bayes.New()))
			actB := sysB.Inject(kind, sim.Time(300*sim.Millisecond), sim.Time(3*sim.Second))
			sysB.Run(3000)
			if actB.Class != act.Class {
				panic("E16: bayes pass drew a different realization")
			}
			collectors["bayes"].observe(s, func(comp int) e16Verdict {
				v, ok := sysB.Diag.VerdictOf(core.HardwareFRU(comp))
				return e16Verdict{class: v.Class, conf: v.Confidence, found: ok}
			}, nComp, culprits, subject.Component, act.Class)
		}
	}

	t := newTable("classifier", "recall", "ci95", "precision", "ece")
	metrics := map[string]float64{}
	for _, name := range []string{"decos", "obd", "bayes"} {
		c := collectors[name]
		t.row(name, pct(c.recall()), fmt.Sprintf("±%.3f", c.recallCI95()),
			pct(c.precision()), fmt.Sprintf("%.3f", c.ece()))
		metrics["recall_"+name] = c.recall()
		metrics["recall_ci95_"+name] = c.recallCI95()
		metrics["precision_"+name] = c.precision()
		metrics["ece_"+name] = c.ece()
	}

	cal := newTable("classifier", "conf bin", "n", "mean conf", "accuracy")
	for _, name := range []string{"decos", "obd", "bayes"} {
		c := collectors[name]
		for b := 0; b < 5; b++ {
			if c.calN[b] == 0 {
				continue
			}
			lo, hi := float64(b)*0.2, float64(b+1)*0.2
			cal.row(name, fmt.Sprintf("[%.1f,%.1f)", lo, hi), c.calN[b],
				fmt.Sprintf("%.3f", c.calConf[b]/float64(c.calN[b])),
				pct(float64(c.calCorrect[b])/float64(c.calN[b])))
		}
	}

	return &Result{
		ID: "E16",
		Figure: fmt.Sprintf("extension — calibration and attribution of DECOS vs OBD vs Bayes over %d kinds × %d seeds",
			len(e16HardwareKinds), e16Seeds),
		Table:   t.String() + "\n" + cal.String(),
		Metrics: metrics,
	}
}
