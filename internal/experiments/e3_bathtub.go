package experiments

import (
	"fmt"

	"decos/internal/faults"
	"decos/internal/sim"
)

// E3Bathtub regenerates the bathtub curve of the paper's Fig. 7 by Monte
// Carlo over the calibrated automotive-ECU lifetime model: the empirical
// hazard rate shows the three phases — infant mortality (decreasing),
// useful life (flat, near the fault-hypothesis rate), wearout (increasing).
func E3Bathtub(seed uint64) *Result {
	b := faults.AutomotiveECU()
	rng := sim.NewRNG(seed)
	y := faults.HoursPerYear
	bins := []float64{0, 200, 1000, 5000, 1 * y, 3 * y, 6 * y, 9 * y, 12 * y, 14 * y, 16 * y, 18 * y, 20 * y}
	const n = 300_000
	hazard := b.EmpiricalHazard(n, bins, rng)

	labels := []string{
		"0-200h (infant)", "200-1000h (infant)", "1000-5000h", "5000h-1y",
		"1-3y (useful)", "3-6y (useful)", "6-9y (useful)", "9-12y",
		"12-14y (wearout)", "14-16y (wearout)", "16-18y (wearout)", "18-20y (wearout)",
	}
	t := newTable("age", "hazard [FIT]", "phase trend")
	for i, h := range hazard {
		fit := faults.RateToFIT(h)
		trend := ""
		if i > 0 {
			prev := faults.RateToFIT(hazard[i-1])
			switch {
			case fit < prev*0.8:
				trend = "↓"
			case fit > prev*1.25:
				trend = "↑"
			default:
				trend = "≈"
			}
		}
		t.row(labels[i], fmt.Sprintf("%.1f", fit), trend)
	}

	infant := faults.RateToFIT(hazard[0])
	useful := faults.RateToFIT(hazard[5]) // 3-6y
	wear := faults.RateToFIT(hazard[len(hazard)-1])
	an := b.Hazard(4 * y)

	return &Result{
		ID:     "E3",
		Figure: "Fig. 7 — bathtub curve (empirical hazard, 300k simulated ECUs)",
		Table:  t.String(),
		Metrics: map[string]float64{
			"infant_fit":          infant,
			"useful_fit":          useful,
			"wearout_fit":         wear,
			"useful_fit_analytic": faults.RateToFIT(an),
			"bathtub_shape_ok":    b2f(infant > 2*useful && wear > 10*useful),
		},
	}
}
