package experiments

import (
	"context"
	"fmt"
	"os"

	"decos/internal/pack"
	"decos/internal/scenario"
)

// E15PackConformance scores every shipped scenario pack against both
// the DECOS classifier and the OBD baseline — the pack library as an
// executable compatibility suite covering the fault model end to end:
// environmental stress (EMI, thermal cycling, vibration, power sags,
// connector chatter), hardware and software FRU faults, and fleet
// campaigns. A pack that stops passing means a verdict changed. The
// packs pin their own seeds (expected verdicts are calibrated against
// them), so the experiment seed is deliberately unused and the result
// is reproducible from the pack files alone.
func E15PackConformance(seed uint64) *Result {
	_ = seed
	res := &Result{ID: "E15", Figure: "scenario-pack conformance (DECOS vs OBD vs Bayes)", Metrics: map[string]float64{}}
	rep, err := RunPackConformance(context.Background())
	if err != nil {
		res.Table = fmt.Sprintf("pack conformance unavailable: %v\n", err)
		return res
	}

	t := newTable("pack", "kind", "decos", "obd", "bayes", "status")
	for _, p := range rep.Packs {
		kind := "vehicle"
		if p.Campaign {
			kind = "campaign"
		}
		status := "PASS"
		if !p.Pass {
			status = "FAIL"
		}
		scores := map[string]string{
			pack.ClassifierDECOS: "-", pack.ClassifierOBD: "-", pack.ClassifierBayes: "-",
		}
		for _, cs := range p.Classifiers {
			scores[cs.Classifier] = fmt.Sprintf("%d/%d", cs.Satisfied, cs.Total)
		}
		if p.Error != "" {
			status = "ERROR"
		}
		t.row(p.Name, kind, scores[pack.ClassifierDECOS], scores[pack.ClassifierOBD],
			scores[pack.ClassifierBayes], status)
	}
	res.Table = t.String()
	res.Metrics["packs"] = float64(rep.Total)
	res.Metrics["passed"] = float64(rep.Passed)
	res.Metrics["failed"] = float64(rep.Failed)
	return res
}

// RunPackConformance discovers the repository's packs/ directory, loads
// every manifest and scores it through the scenario conformance runner.
// Shared by E15 and the conformance contract test.
func RunPackConformance(ctx context.Context) (*pack.Report, error) {
	wd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	dir, ok := pack.FindPacksDir(wd)
	if !ok {
		return nil, fmt.Errorf("no packs/ directory above %s", wd)
	}
	files, err := pack.Discover(dir)
	if err != nil {
		return nil, err
	}
	var ms []*pack.Manifest
	for _, f := range files {
		m, err := pack.Load(f)
		if err != nil {
			return nil, err
		}
		ms = append(ms, m)
	}
	return scenario.ConformAll(ctx, ms), nil
}
