package experiments

import (
	"fmt"
	"runtime"

	"decos/internal/maintenance"
	"decos/internal/scenario"
)

// E8NFF is the headline experiment (paper Sections I and V): across a
// mixed-fault fleet campaign, the no-fault-found ratio, action accuracy,
// missed faults and removal cost of the DECOS integrated diagnostic
// architecture versus the conventional OBD baseline. The paper's claim is
// qualitative — the maintenance-oriented classification reduces NFF
// removals — and the measured shape must show DECOS with a much lower NFF
// ratio and miss rate at comparable or lower cost per fixed fault.
func E8NFF(seed uint64) *Result {
	c := scenario.Campaign{
		Vehicles:       150,
		Rounds:         3000,
		Seed:           seed,
		FaultFreeShare: 0.2,
		Workers:        runtime.GOMAXPROCS(0),
	}
	res := c.Run()

	t := newTable("metric", "DECOS diagnostic DAS", "OBD baseline")
	t.row("incidents audited", res.DECOS.Total, res.OBD.Total)
	t.row("classification accuracy", pct(res.DECOS.ClassAccuracy()), pct(res.OBD.ClassAccuracy()))
	t.row("action accuracy", pct(res.DECOS.ActionAccuracy()), pct(res.OBD.ActionAccuracy()))
	t.row("hardware removals", res.DECOS.TotalRemovals, res.OBD.TotalRemovals)
	t.row("no-fault-found removals", res.DECOS.NFFRemovals, res.OBD.NFFRemovals)
	t.row("NFF ratio", pct(res.DECOS.NFFRatio()), pct(res.OBD.NFFRatio()))
	t.row("missed faults", res.DECOS.Missed, res.OBD.Missed)
	t.row("removal cost ($800/LRU)", fmt.Sprintf("$%.0f", res.DECOS.Cost), fmt.Sprintf("$%.0f", res.OBD.Cost))
	t.row("cost per correctly fixed fault", costPerFix(res.DECOS), costPerFix(res.OBD))
	t.row("false alarms (healthy cars)", res.DECOSFalseAlarms, res.OBDFalseAlarms)

	tbl := t.String()
	tbl += "\nDECOS confusion (truth → diagnosed):\n" + res.DECOS.Format()

	return &Result{
		ID:     "E8",
		Figure: "Sections I/V — NFF ratio and maintenance cost vs OBD baseline",
		Table:  tbl,
		Metrics: map[string]float64{
			"decos_nff_ratio":    res.DECOS.NFFRatio(),
			"obd_nff_ratio":      res.OBD.NFFRatio(),
			"decos_action_acc":   res.DECOS.ActionAccuracy(),
			"obd_action_acc":     res.OBD.ActionAccuracy(),
			"decos_miss_ratio":   res.DECOS.MissRatio(),
			"obd_miss_ratio":     res.OBD.MissRatio(),
			"decos_cost":         res.DECOS.Cost,
			"obd_cost":           res.OBD.Cost,
			"decos_false_alarms": float64(res.DECOSFalseAlarms),
			"obd_false_alarms":   float64(res.OBDFalseAlarms),
		},
	}
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// costPerFix divides the removal spend by the number of correctly handled
// incidents — the economic lens on the NFF problem: wasted removals and
// missed faults both inflate it.
func costPerFix(r *maintenance.Report) string {
	if r.CorrectActions == 0 {
		return "∞"
	}
	return fmt.Sprintf("$%.0f", r.Cost/float64(r.CorrectActions))
}
