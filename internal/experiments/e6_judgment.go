package experiments

import (
	"fmt"

	"decos/internal/component"
	"decos/internal/core"
	"decos/internal/diagnosis"
	"decos/internal/scenario"
	"decos/internal/sim"
)

// E6Judgment regenerates the three-dimensional judgment of the paper's
// Fig. 10: (a) a job-inherent fault stays contained within its DAS; (b) a
// component-internal fault causes correlated failures of the jobs of
// multiple DASs hosted on that component, and TMR masks the loss of the
// replica it hosted; (c) the diagnostic DAS localizes the correct FRU in
// both cases.
func E6Judgment(seed uint64) *Result {
	t := newTable("scenario", "DAS A impact", "DAS C impact", "DAS S impact (TMR)", "localized FRU", "verdict")
	metrics := map[string]float64{}

	// (a) Job-inherent fault in DAS A's sensor job A1 on component 0.
	{
		sys := scenario.Fig10(seed, diagnosis.Options{})
		sys.Injector.Bohrbug(sys.Sensor, scenario.ChSpeed,
			func(v float64, now sim.Time) bool { return v > 55 }, 400)
		sys.Run(3000)
		rejected := sys.Control.Impl.(*component.ControlJob).RejectedInputs
		voterOK := sys.Voter.NoMajority == 0
		v, ok := sys.Diag.VerdictOf(core.SoftwareFRU(0, "A/A1"))
		verdict := "-"
		if ok {
			verdict = v.Class.String()
		}
		contained := voterOK && sys.Sink.Impl.(*component.SinkJob).Received > 0
		t.row("job-inherent (A1)",
			fmt.Sprintf("%d implausible inputs rejected", rejected),
			"none", "none (no vote lost)",
			"job A/A1", verdict)
		metrics["job_fault_contained"] = b2f(contained)
		metrics["job_fault_localized"] = b2f(ok && core.JobInherentSoftware.Matches(v.Class))
	}

	// (b) Component-internal fault on component 2 (hosts A3, C2, S2).
	{
		sys := scenario.Fig10(seed+1, diagnosis.Options{})
		sys.Run(500)
		votedBefore := sys.Voter.Voted
		sys.Injector.PermanentFailSilent(2, sys.Cluster.Sched.Now().Add(20*sim.Millisecond))
		sys.Run(2500)
		votes := sys.Voter.Voted - votedBefore
		v, ok := sys.Diag.VerdictOf(core.HardwareFRU(2))
		verdict := "-"
		if ok {
			verdict = fmt.Sprintf("%s (%s)", v.Class, v.Pattern)
		}
		jobsBlamed := 0
		for _, job := range []string{"A/A3", "C/C2", "S/S2"} {
			if _, ok := sys.Diag.VerdictOf(core.SoftwareFRU(2, job)); ok {
				jobsBlamed++
			}
		}
		t.row("component-internal (c2)",
			"actuator A3 lost", "sink C2 lost",
			fmt.Sprintf("S2 lost, TMR masked (%d/%d votes)", votes, int64(2500)),
			"component[2]", verdict)
		metrics["tmr_masked"] = b2f(votes >= 2400)
		metrics["hw_fault_localized"] = b2f(ok && v.Class == core.ComponentInternal)
		metrics["jobs_wrongly_blamed"] = float64(jobsBlamed)
	}

	return &Result{
		ID:      "E6",
		Figure:  "Fig. 10 — judgment in time/value/space: containment & localization",
		Table:   t.String(),
		Metrics: metrics,
	}
}
