// Package experiments regenerates every figure of the paper as an
// executable measurement (experiments E1–E13 of DESIGN.md) plus the
// ablations A1–A5. Each experiment returns a Result with a human-readable
// table and structured metrics; cmd/decos-bench prints them and the
// repo-root benchmarks time them.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Result is one experiment's output.
type Result struct {
	// ID is the experiment identifier (E1..E8, A1..A4).
	ID string
	// Figure names the paper artifact the experiment regenerates.
	Figure string
	// Table is the formatted report.
	Table string
	// Metrics carries the headline numbers for EXPERIMENTS.md and
	// assertions in tests.
	Metrics map[string]float64
}

func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s — %s ===\n%s", r.ID, r.Figure, r.Table)
	if len(r.Metrics) > 0 {
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("metrics:")
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%.4g", k, r.Metrics[k])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// All runs every experiment with the given base seed, in order.
func All(seed uint64) []*Result {
	return []*Result{
		E1CoreServices(seed),
		E2Chain(seed),
		E3Bathtub(seed),
		E4Patterns(seed),
		E5Trust(seed),
		E6Judgment(seed),
		E7Actions(seed),
		E8NFF(seed),
		E9MultiFault(seed),
		E10Scale(seed),
		E11RepairLoop(seed),
		E12Robustness(seed),
		E13FleetWarranty(seed),
		A1WindowSweep(seed),
		A2AlphaSweep(seed),
		A3Encapsulation(seed),
		A4QueueSweep(seed),
		A5DiagBandwidth(seed),
	}
}

// ByID runs the experiment with the given identifier (case-insensitive).
func ByID(id string, seed uint64) (*Result, bool) {
	switch strings.ToUpper(id) {
	case "E1":
		return E1CoreServices(seed), true
	case "E2":
		return E2Chain(seed), true
	case "E3":
		return E3Bathtub(seed), true
	case "E4":
		return E4Patterns(seed), true
	case "E5":
		return E5Trust(seed), true
	case "E6":
		return E6Judgment(seed), true
	case "E7":
		return E7Actions(seed), true
	case "E8":
		return E8NFF(seed), true
	case "E9":
		return E9MultiFault(seed), true
	case "E10":
		return E10Scale(seed), true
	case "E11":
		return E11RepairLoop(seed), true
	case "E12":
		return E12Robustness(seed), true
	case "E13":
		return E13FleetWarranty(seed), true
	case "A1":
		return A1WindowSweep(seed), true
	case "A2":
		return A2AlphaSweep(seed), true
	case "A3":
		return A3Encapsulation(seed), true
	case "A4":
		return A4QueueSweep(seed), true
	case "A5":
		return A5DiagBandwidth(seed), true
	}
	return nil, false
}

// table is a tiny fixed-width table builder.
type table struct {
	b      strings.Builder
	widths []int
	rows   [][]string
	header []string
}

func newTable(header ...string) *table {
	t := &table{header: header}
	for _, h := range header {
		t.widths = append(t.widths, len(h))
	}
	return t
}

func (t *table) row(cells ...any) {
	strs := make([]string, len(cells))
	for i, c := range cells {
		s := fmt.Sprint(c)
		if f, ok := c.(float64); ok {
			s = fmt.Sprintf("%.3g", f)
		}
		strs[i] = s
		for len(t.widths) <= i {
			t.widths = append(t.widths, 0)
		}
		if len(s) > t.widths[i] {
			t.widths[i] = len(s)
		}
	}
	t.rows = append(t.rows, strs)
}

func (t *table) String() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", t.widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
