// Package experiments regenerates every figure of the paper as an
// executable measurement (experiments E1–E14 of DESIGN.md) plus the
// ablations A1–A5. Each experiment returns a Result with a human-readable
// table and structured metrics; cmd/decos-bench prints them and the
// repo-root benchmarks time them.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Result is one experiment's output.
type Result struct {
	// ID is the experiment identifier (E1..E8, A1..A4).
	ID string
	// Figure names the paper artifact the experiment regenerates.
	Figure string
	// Table is the formatted report.
	Table string
	// Metrics carries the headline numbers for EXPERIMENTS.md and
	// assertions in tests.
	Metrics map[string]float64
}

func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s — %s ===\n%s", r.ID, r.Figure, r.Table)
	if len(r.Metrics) > 0 {
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("metrics:")
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%.4g", k, r.Metrics[k])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// registry is the single ordered catalogue of experiments; All, ByID and
// Names all derive from it, so adding an experiment is one entry here.
var registry = []struct {
	ID  string
	Run func(seed uint64) *Result
}{
	{"E1", E1CoreServices},
	{"E2", E2Chain},
	{"E3", E3Bathtub},
	{"E4", E4Patterns},
	{"E5", E5Trust},
	{"E6", E6Judgment},
	{"E7", E7Actions},
	{"E8", E8NFF},
	{"E9", E9MultiFault},
	{"E10", E10Scale},
	{"E11", E11RepairLoop},
	{"E12", E12Robustness},
	{"E13", E13FleetWarranty},
	{"E14", E14Whatif},
	{"E15", E15PackConformance},
	{"E16", E16BayesCalibration},
	{"A1", A1WindowSweep},
	{"A2", A2AlphaSweep},
	{"A3", A3Encapsulation},
	{"A4", A4QueueSweep},
	{"A5", A5DiagBandwidth},
}

// All runs every experiment with the given base seed, in order.
func All(seed uint64) []*Result {
	out := make([]*Result, len(registry))
	for i, e := range registry {
		out[i] = e.Run(seed)
	}
	return out
}

// ByID runs the experiment with the given identifier (case-insensitive).
func ByID(id string, seed uint64) (*Result, bool) {
	want := strings.ToUpper(id)
	for _, e := range registry {
		if e.ID == want {
			return e.Run(seed), true
		}
	}
	return nil, false
}

// Names returns every experiment identifier in run order — the valid
// values of ByID, for discoverable command-line errors.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	return out
}

// table is a tiny fixed-width table builder.
type table struct {
	b      strings.Builder
	widths []int
	rows   [][]string
	header []string
}

func newTable(header ...string) *table {
	t := &table{header: header}
	for _, h := range header {
		t.widths = append(t.widths, len(h))
	}
	return t
}

func (t *table) row(cells ...any) {
	strs := make([]string, len(cells))
	for i, c := range cells {
		s := fmt.Sprint(c)
		if f, ok := c.(float64); ok {
			s = fmt.Sprintf("%.3g", f)
		}
		strs[i] = s
		for len(t.widths) <= i {
			t.widths = append(t.widths, 0)
		}
		if len(s) > t.widths[i] {
			t.widths[i] = len(s)
		}
	}
	t.rows = append(t.rows, strs)
}

func (t *table) String() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", t.widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
