package experiments

import (
	"bytes"
	"fmt"
	"runtime"

	"decos/internal/scenario"
	"decos/internal/warranty"
)

// E13FleetWarranty closes the paper's Section V-B loop at fleet scale: a
// mixed-fault campaign is run with per-vehicle trace recording, every
// vehicle's NDJSON stream is ingested into the concurrent warranty
// collector (straight from the campaign workers, as fielded uplinks
// would arrive), and the trace-fed fleet summary is compared against the
// in-process audit. The claim under test is that the offline warranty
// interface loses nothing: the E8 headline numbers — NFF ratio, removal
// cost, missed faults, false alarms — and the Section V-C 20-80 software
// concentration are reproduced from the ingested traces alone, exactly.
func E13FleetWarranty(seed uint64) *Result {
	c := scenario.Campaign{
		Vehicles:       150,
		Rounds:         3000,
		Seed:           seed,
		FaultFreeShare: 0.2,
		Workers:        runtime.GOMAXPROCS(0),
	}
	col := warranty.NewCollector(0)
	res := c.RunTraced(func(v int, ndjson []byte) {
		// The sink runs on the campaign worker pool: ingestion is
		// concurrent across vehicles, like uplinks in the field.
		col.IngestStream(bytes.NewReader(ndjson), 0)
	})
	s := col.Summary(0)

	decos, obd := s.Arms["decos"], s.Arms["obd"]
	agree := decos != nil && obd != nil &&
		decos.NFFRatio == res.DECOS.NFFRatio() &&
		obd.NFFRatio == res.OBD.NFFRatio() &&
		decos.Cost == res.DECOS.Cost &&
		obd.Cost == res.OBD.Cost &&
		decos.Missed == res.DECOS.Missed &&
		decos.FalseAlarms == res.DECOSFalseAlarms &&
		obd.FalseAlarms == res.OBDFalseAlarms &&
		s.Fleet.Pareto20 == res.Fleet.Pareto(0.2) &&
		s.Fleet.Incidents == res.Fleet.Incidents()

	t := newTable("metric", "trace-fed (warranty)", "in-process (E8)")
	t.row("vehicles", s.Vehicles, c.Vehicles)
	t.row("ground-truth faults", s.Truths, res.DECOS.Total)
	if decos != nil {
		t.row("DECOS NFF ratio", pct(decos.NFFRatio), pct(res.DECOS.NFFRatio()))
		t.row("DECOS removal cost", fmt.Sprintf("$%.0f", decos.Cost), fmt.Sprintf("$%.0f", res.DECOS.Cost))
		t.row("DECOS missed faults", decos.Missed, res.DECOS.Missed)
		t.row("DECOS false alarms", decos.FalseAlarms, res.DECOSFalseAlarms)
	}
	if obd != nil {
		t.row("OBD NFF ratio", pct(obd.NFFRatio), pct(res.OBD.NFFRatio()))
		t.row("OBD removal cost", fmt.Sprintf("$%.0f", obd.Cost), fmt.Sprintf("$%.0f", res.OBD.Cost))
	}
	t.row("software 20-80 share", pct(s.Fleet.Pareto20), pct(res.Fleet.Pareto(0.2)))
	t.row("fleet incidents", s.Fleet.Incidents, res.Fleet.Incidents())
	t.row("events ingested", s.Events, "—")
	t.row("corrupt lines", s.CorruptLines, "—")
	t.row("exact agreement", agree, "")

	m := map[string]float64{
		"events":       float64(s.Events),
		"agree":        b2f(agree),
		"pareto_top20": s.Fleet.Pareto20,
	}
	if decos != nil && obd != nil {
		m["decos_nff_ratio"] = decos.NFFRatio
		m["obd_nff_ratio"] = obd.NFFRatio
		m["decos_cost"] = decos.Cost
		m["obd_cost"] = obd.Cost
	}
	return &Result{
		ID:      "E13",
		Figure:  "Section V-B — fleet-scale warranty analysis from ingested traces",
		Table:   t.String(),
		Metrics: m,
	}
}
