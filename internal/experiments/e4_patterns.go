package experiments

import (
	"fmt"

	"decos/internal/diagnosis"
	"decos/internal/faults"
	"decos/internal/scenario"
	"decos/internal/sim"
	"decos/internal/tt"
)

type ttNodeID = tt.NodeID

// E4Patterns measures the fault-pattern table of the paper's Fig. 8 from
// simulation: for wearout, massive transient and connector faults, the
// characteristic manifestation in the time, space and value dimensions of
// the distributed state.
func E4Patterns(seed uint64) *Result {
	opts := diagnosis.Options{RetainGranules: 10_000, WindowGranules: 3000}
	metrics := map[string]float64{}
	t := newTable("fault", "time dimension", "space dimension", "value dimension")

	// --- Wearout: increasing frequency, one component, rising deviation.
	{
		sys := scenario.Fig10(seed, opts)
		acc := faults.WearoutAcceleration{
			Onset: sim.Time(200 * sim.Millisecond), Tau: 500 * sim.Millisecond,
			BaseRatePerHour: 3600 * 3, MaxFactor: 40,
		}
		sys.Injector.Wearout(0, acc, 3600*20)
		sys.Run(3000)
		hist := sys.Diag.Assessor.Hist
		hw0, _ := sys.Diag.Reg.HardwareIndex(0)
		g := hist.Latest()
		firstHalf := len(hist.ActiveGranules(hw0, 0, g/2, diagnosis.KindIn(diagnosis.SymCorruption)))
		secondHalf := len(hist.ActiveGranules(hw0, g/2+1, g, diagnosis.KindIn(diagnosis.SymCorruption)))
		affected := corruptedComponents(sys, g)
		devEarly := maxJobDeviation(sys, 0, 0, g/2)
		devLate := maxJobDeviation(sys, 0, g/2+1, g)
		rise := ratio(secondHalf, firstHalf)
		t.row("wearout",
			fmt.Sprintf("episode granules %d→%d (×%.1f rising)", firstHalf, secondHalf, rise),
			fmt.Sprintf("%d component(s)", affected),
			fmt.Sprintf("deviation %.2f→%.2f (increasing)", devEarly, devLate))
		metrics["wearout_rise"] = rise
		metrics["wearout_components"] = float64(affected)
		metrics["wearout_dev_increasing"] = b2f(devLate > devEarly)
	}

	// --- Massive transient: simultaneous, spatially proximate, multi-bit.
	{
		sys := scenario.Fig10(seed+1, opts)
		sys.Injector.EMIBurst(sim.Time(500*sim.Millisecond), 0.5, 0, 2, 10*sim.Millisecond, 4)
		sys.Run(2000)
		hist := sys.Diag.Assessor.Hist
		g := hist.Latest()
		var spanMin, spanMax int64 = 1 << 62, -1
		comps := 0
		maxBits := 0.0
		for _, hw := range sys.Diag.Reg.HardwareFRUs() {
			gs := hist.ActiveGranules(hw, 0, g, diagnosis.KindIn(diagnosis.SymCorruption))
			if len(gs) == 0 {
				continue
			}
			comps++
			if gs[0] < spanMin {
				spanMin = gs[0]
			}
			if gs[len(gs)-1] > spanMax {
				spanMax = gs[len(gs)-1]
			}
			if d := hist.MaxDeviation(hw, 0, g, diagnosis.KindIn(diagnosis.SymCorruption)); d > maxBits {
				maxBits = d
			}
		}
		span := spanMax - spanMin
		t.row("massive transient",
			fmt.Sprintf("all within %d ms window", span),
			fmt.Sprintf("%d proximate components", comps),
			fmt.Sprintf("multi-bit flips (max %.0f bits)", maxBits))
		metrics["emi_span_granules"] = float64(span)
		metrics["emi_components"] = float64(comps)
		metrics["emi_max_bits"] = maxBits
	}

	// --- Connector: arbitrary times, one component, omissions.
	{
		sys := scenario.Fig10(seed+2, opts)
		sys.Injector.ConnectorTx(0, sim.Time(200*sim.Millisecond), 0, 0.25)
		sys.Run(3000)
		hist := sys.Diag.Assessor.Hist
		g := hist.Latest()
		hw0, _ := sys.Diag.Reg.HardwareIndex(0)
		omit := hist.ActiveGranules(hw0, 0, g, diagnosis.KindIn(diagnosis.SymOmission))
		comps := 0
		for _, hw := range sys.Diag.Reg.HardwareFRUs() {
			if len(hist.ActiveGranules(hw, 0, g, diagnosis.KindIn(diagnosis.SymOmission))) > 0 {
				comps++
			}
		}
		duty := float64(len(omit)) / float64(g-200+1)
		corr := hist.Count(hw0, 0, g, diagnosis.KindIn(diagnosis.SymCorruption))
		t.row("connector",
			fmt.Sprintf("arbitrary, duty %.0f%% of granules", 100*duty),
			fmt.Sprintf("%d component(s)", comps),
			fmt.Sprintf("omissions on channel (%d granules; %d corruptions)", len(omit), corr))
		metrics["connector_duty"] = duty
		metrics["connector_components"] = float64(comps)
		metrics["connector_omission_granules"] = float64(len(omit))
	}

	return &Result{
		ID:      "E4",
		Figure:  "Fig. 8 — fault patterns in time/space/value, measured",
		Table:   t.String(),
		Metrics: metrics,
	}
}

func corruptedComponents(sys *scenario.System, g int64) int {
	n := 0
	for _, hw := range sys.Diag.Reg.HardwareFRUs() {
		if len(sys.Diag.Assessor.Hist.ActiveGranules(hw, 0, g, diagnosis.KindIn(diagnosis.SymCorruption))) > 0 {
			n++
		}
	}
	return n
}

func maxJobDeviation(sys *scenario.System, node int, from, to int64) float64 {
	max := 0.0
	hw, _ := sys.Diag.Reg.HardwareIndex(ttNode(node))
	for _, sw := range sys.Diag.Reg.JobsOn(hw) {
		d := sys.Diag.Assessor.Hist.MaxDeviation(sw, from, to,
			diagnosis.KindIn(diagnosis.SymDeviation, diagnosis.SymValue))
		if d > max {
			max = d
		}
	}
	return max
}

func ttNode(n int) ttNodeID { return ttNodeID(n) }

func ratio(a, b int) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return float64(a)
	}
	return float64(a) / float64(b)
}
