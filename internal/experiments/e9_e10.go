package experiments

import (
	"fmt"
	"runtime"
	"time"

	"decos/internal/core"
	"decos/internal/diagnosis"
	"decos/internal/scenario"
	"decos/internal/sim"
)

// E9MultiFault stresses the classification with simultaneous faults per
// vehicle — the hard case of FRU-level diagnosis, where overlapping
// manifestations must still be attributed to distinct FRUs. The paper's
// model assumes faults are rare enough to be analysed largely in
// isolation; this experiment quantifies how gracefully the implementation
// degrades when that assumption weakens.
func E9MultiFault(seed uint64) *Result {
	t := newTable("faults/vehicle", "incidents", "class accuracy", "action accuracy", "NFF ratio", "missed")
	metrics := map[string]float64{}
	for _, k := range []int{1, 2, 3} {
		c := scenario.Campaign{
			Vehicles:         25,
			Rounds:           3000,
			Seed:             seed + uint64(k)*53,
			FaultFreeShare:   0,
			FaultsPerVehicle: k,
			Workers:          runtime.GOMAXPROCS(0),
		}
		res := c.Run()
		t.row(k, res.DECOS.Total,
			pct(res.DECOS.ClassAccuracy()), pct(res.DECOS.ActionAccuracy()),
			pct(res.DECOS.NFFRatio()), res.DECOS.Missed)
		metrics[fmt.Sprintf("class_acc_k%d", k)] = res.DECOS.ClassAccuracy()
		metrics[fmt.Sprintf("action_acc_k%d", k)] = res.DECOS.ActionAccuracy()
		metrics[fmt.Sprintf("nff_k%d", k)] = res.DECOS.NFFRatio()
	}
	return &Result{
		ID:      "E9",
		Figure:  "extension — simultaneous faults per vehicle (degradation study)",
		Table:   t.String(),
		Metrics: metrics,
	}
}

// E10Scale measures how the simulator and the diagnostic architecture
// scale with cluster size: simulation throughput (TDMA rounds per second
// of wall clock) and classification correctness on a grid of n components
// with a connector fault injected mid-chain.
func E10Scale(seed uint64) *Result {
	t := newTable("components", "rounds/s", "symptoms", "verdict on culprit", "correct")
	metrics := map[string]float64{}
	for _, n := range []int{4, 8, 16, 32} {
		sys := scenario.Grid(n, seed+uint64(n), diagnosis.Options{})
		culprit := n / 2
		sys.Injector.ConnectorTx(ttNodeID(culprit), sim.Time(100*sim.Millisecond), 0, 0.3)
		const rounds = 2000
		start := time.Now()
		sys.Run(rounds)
		elapsed := time.Since(start).Seconds()
		rps := float64(rounds) / elapsed
		v, ok := sys.Diag.VerdictOf(core.HardwareFRU(culprit))
		verdict := "-"
		correct := false
		if ok {
			verdict = fmt.Sprintf("%s (%s)", v.Class, v.Pattern)
			correct = v.Class == core.ComponentBorderline
		}
		t.row(n, fmt.Sprintf("%.0f", rps), sys.Diag.Assessor.SymptomsReceived, verdict, correct)
		metrics[fmt.Sprintf("rps_n%d", n)] = rps
		metrics[fmt.Sprintf("correct_n%d", n)] = b2f(correct)
	}
	return &Result{
		ID:      "E10",
		Figure:  "extension — cluster-size scalability of simulator and diagnosis",
		Table:   t.String(),
		Metrics: metrics,
	}
}
