package experiments

import (
	"fmt"
	"strings"

	"decos/internal/core"
	"decos/internal/diagnosis"
	"decos/internal/engine"
	"decos/internal/scenario"
	"decos/internal/sim"
	"decos/internal/whatif"
)

// E14Whatif measures counterfactual divergence localization: for every
// hardware-attributable fault kind of the E12 sweep, record a
// checkpointed run, then ask decos-whatif's question in reverse — remove
// the injected fault from a replica restored before its activation and
// check that the first divergent event names the injected component.
// Because restores are byte-identical, the first divergence is the
// earliest instant at which the fault is observable at all; localization
// accuracy here is the ceiling any symptom-based diagnoser can reach.
//
// A fault's signature differs by kind, so "names the component" is
// structural (see localizes): tx-side faults diverge in a frame the
// culprit sends, internal faults in a symptom about a job the culprit
// hosts, rx-side faults in an accusation the culprit is the lone
// observer of. A run with no divergence at all is the masked case — the
// fault was never observable, the counterfactual face of the paper's
// no-fault-found problem (SEUs land here when the flipped value is
// voted out or never transmitted).
func E14Whatif(seed uint64) *Result {
	kinds := []scenario.FaultKind{
		scenario.KindSEU, scenario.KindConnectorTx, scenario.KindConnectorRx,
		scenario.KindWearout, scenario.KindIntermittent, scenario.KindPermanent,
		scenario.KindQuartz, scenario.KindPowerDip,
	}
	const (
		seeds   = 3
		rounds  = 800
		ckptAt  = 100 // checkpoint round the replay restores from
		faultAt = sim.Time(150 * sim.Millisecond)
	)

	t := newTable("fault kind", "diverged", "localized", "of", "mean lag (ms)")
	metrics := map[string]float64{}
	totalDiverged, totalLocalized, total := 0, 0, 0

	for _, kind := range kinds {
		diverged, localized, lagMS, lagN := 0, 0, 0.0, 0
		for s := 0; s < seeds; s++ {
			sd := seed + uint64(kind)*7919 + uint64(s)*433
			plan := []scenario.InjectPlan{{Kind: kind, At: faultAt, Horizon: sim.Time(3 * sim.Second)}}
			var ckpt []byte
			sys := scenario.Fig10Faulted(sd, diagnosis.Options{}, plan,
				engine.WithCheckpointSink(func(round int64, data []byte) error {
					if round+1 == ckptAt {
						ckpt = append([]byte(nil), data...)
					}
					return nil
				}, ckptAt))
			sys.Run(rounds)
			act := sys.Injector.Ledger()[0]
			comp := act.Culprit.Component
			if comp < 0 && len(act.Affected) > 0 {
				comp = act.Affected[0].Component
			}
			rep, err := whatif.Run(whatif.Config{
				Seed: sd, Plan: plan, Rounds: rounds, Checkpoint: ckpt,
				Hyp: whatif.Hypothesis{Kind: whatif.Remove, Target: act.ID},
			})
			if err != nil {
				panic(fmt.Sprintf("E14 %s seed %d: %v", kind, sd, err))
			}
			if rep.Div == nil {
				continue
			}
			diverged++
			if localizes(rep.Div, comp) {
				localized++
				e := rep.Div.Factual
				if e == nil {
					e = rep.Div.Counter
				}
				if e.T > 0 {
					lagMS += float64(e.T-int64(faultAt)) / 1000
					lagN++
				}
			}
		}
		totalDiverged += diverged
		totalLocalized += localized
		total += seeds
		lag := "-"
		if lagN > 0 {
			lag = fmt.Sprintf("%.1f", lagMS/float64(lagN))
		}
		t.row(kind.String(), diverged, localized, seeds, lag)
		metrics["loc_"+kind.String()] = float64(localized) / seeds
		metrics["div_"+kind.String()] = float64(diverged) / seeds
	}
	metrics["diverged"] = float64(totalDiverged) / float64(total)
	if totalDiverged > 0 {
		metrics["localization"] = float64(totalLocalized) / float64(totalDiverged)
	}
	return &Result{
		ID:      "E14",
		Figure:  "extension — counterfactual divergence localization (decos-whatif)",
		Table:   t.String(),
		Metrics: metrics,
	}
}

// localizes reports whether the first divergence names component comp in
// any of the three structural shapes a component fault manifests as.
func localizes(d *whatif.Divergence, comp int) bool {
	if comp < 0 {
		return false
	}
	if d.FRU == core.HardwareFRU(comp).String() {
		return true // the culprit's own frame or verdict diverged
	}
	if strings.HasSuffix(d.FRU, fmt.Sprintf("@%d]", comp)) {
		return true // a job hosted on the culprit diverged
	}
	e := d.Factual
	if e == nil {
		e = d.Counter
	}
	// Rx-side faults invert the accusation: the culprit is the lone
	// observer reporting omissions from its healthy peers.
	return e.Kind == "symptom" && e.Observer != nil && *e.Observer == comp
}
