package experiments

import (
	"fmt"

	"decos/internal/core"
	"decos/internal/diagnosis"
	"decos/internal/faults"
	"decos/internal/scenario"
	"decos/internal/sim"
	"decos/internal/tt"
)

// A1WindowSweep varies the ONA correlation window and measures both final
// classification accuracy and the detection latency (time from fault
// activation to the first correct verdict): short windows classify fast
// patterns equally well but forfeit slow-trend evidence; latency is bounded
// below by the epoch period and the recurrence evidence the α-count needs.
func A1WindowSweep(seed uint64) *Result {
	kinds := []scenario.FaultKind{
		scenario.KindSEU, scenario.KindConnectorTx, scenario.KindWearout,
		scenario.KindPermanent, scenario.KindBohrbug,
	}
	windows := []int64{50, 100, 400, 800}
	t := newTable("window [granules]", "correct", "of", "accuracy", "mean latency")
	metrics := map[string]float64{}
	const injectAt = 300 * sim.Millisecond
	for _, w := range windows {
		correct, total := 0, 0
		var latencySum sim.Duration
		latencyN := 0
		for i, kind := range kinds {
			for rep := 0; rep < 2; rep++ {
				sys := scenario.Fig10(seed+uint64(i)*17+uint64(rep)*71, diagnosis.Options{
					WindowGranules: w,
					RetainGranules: 3 * w,
				})
				act := sys.Inject(kind, sim.Time(injectAt), sim.Time(3*sim.Second))
				sys.Run(3000)
				subject := act.Culprit
				if subject.Component < 0 && len(act.Affected) > 0 {
					subject = act.Affected[0]
				}
				total++
				if v, ok := sys.Diag.VerdictOf(subject); ok && act.Class.Matches(v.Class) {
					correct++
				}
				// First correct emission = detection latency.
				idx, _ := sys.Diag.Reg.Index(subject)
				for _, v := range sys.Diag.Assessor.Emitted() {
					if v.Subject == idx && act.Class.Matches(v.Class) {
						latencySum += v.At.Sub(sim.Time(injectAt))
						latencyN++
						break
					}
				}
			}
		}
		acc := float64(correct) / float64(total)
		mean := sim.Duration(0)
		if latencyN > 0 {
			mean = latencySum / sim.Duration(latencyN)
		}
		t.row(w, correct, total, pct(acc), mean.String())
		metrics[fmt.Sprintf("acc_w%d", w)] = acc
		metrics[fmt.Sprintf("latency_ms_w%d", w)] = float64(mean) / float64(sim.Millisecond)
	}
	return &Result{
		ID:      "A1",
		Figure:  "ablation — ONA correlation window vs accuracy and detection latency",
		Table:   t.String(),
		Metrics: metrics,
	}
}

// A2AlphaSweep varies the α-count decay K and measures the
// external-vs-internal discrimination the paper adopts the mechanism for:
// an isolated SEU must stay external, a recurring internal transient must
// be flagged internal. Small K forgets recurrences; K near 1 works until
// it starts accumulating isolated transients.
func A2AlphaSweep(seed uint64) *Result {
	ks := []float64{0.3, 0.6, 0.9, 0.97}
	t := newTable("alpha K", "SEU → external", "intermittent → internal", "both correct")
	metrics := map[string]float64{}
	for _, k := range ks {
		seuOK, intOK := 0, 0
		const reps = 3
		for rep := 0; rep < reps; rep++ {
			opts := diagnosis.Options{AlphaK: k}
			sysA := scenario.Fig10(seed+uint64(rep)*31, opts)
			sysA.Injector.SEU(sim.Time(300*sim.Millisecond), 1)
			sysA.Run(3000)
			if v, ok := sysA.Diag.VerdictOf(core.HardwareFRU(1)); ok && v.Class == core.ComponentExternal {
				seuOK++
			}
			sysB := scenario.Fig10(seed+uint64(rep)*37+1000, opts)
			sysB.Injector.IntermittentInternal(1, sim.Time(300*sim.Millisecond), 3600*6, 0)
			sysB.Run(3000)
			if v, ok := sysB.Diag.VerdictOf(core.HardwareFRU(1)); ok && v.Class == core.ComponentInternal {
				intOK++
			}
		}
		t.row(k, frac(seuOK, reps), frac(intOK, reps), frac(min(seuOK, intOK), reps))
		metrics[fmt.Sprintf("seu_ok_k%.2f", k)] = float64(seuOK) / reps
		metrics[fmt.Sprintf("int_ok_k%.2f", k)] = float64(intOK) / reps
	}
	return &Result{
		ID:      "A2",
		Figure:  "ablation — α-count decay vs transient/internal discrimination",
		Table:   t.String(),
		Metrics: metrics,
	}
}

// A3Encapsulation removes the slot-guardian (strong fault isolation, core
// service C3) and shows that FRU-level attribution collapses: a single
// babbling component destroys every slot, all components accumulate
// identical failure evidence, and the culprit can no longer be told apart
// from its victims (the symptom field looks like one massive external
// disturbance) — the architectural justification for error containment as
// a prerequisite of maintenance-oriented classification.
func A3Encapsulation(seed uint64) *Result {
	run := func(guardian bool) (accused int, culpritFound bool, disturbed int) {
		sys := scenario.Fig10(seed, diagnosis.Options{})
		sys.Cluster.Bus.GuardianEnabled = guardian
		sys.Injector.PermanentBabbling(1, sim.Time(300*sim.Millisecond))
		sys.Run(3000)
		for _, c := range sys.Cluster.Components() {
			v, ok := sys.Diag.VerdictOf(core.HardwareFRU(int(c.ID)))
			if !ok {
				continue
			}
			disturbed++
			if v.Action.Removal() {
				accused++
				if c.ID == tt.NodeID(1) {
					culpritFound = true
				}
			}
		}
		return accused, culpritFound, disturbed
	}
	onAccused, onFound, onDisturbed := run(true)
	offAccused, offFound, offDisturbed := run(false)

	t := newTable("configuration", "FRUs with verdicts", "removal verdicts", "culprit identified")
	t.row("guardian enabled", onDisturbed, onAccused, onFound)
	t.row("guardian disabled", offDisturbed, offAccused, offFound)
	return &Result{
		ID:     "A3",
		Figure: "ablation — classification with/without strong fault isolation",
		Table:  t.String(),
		Metrics: map[string]float64{
			"guardian_on_accused":   float64(onAccused),
			"guardian_off_accused":  float64(offAccused),
			"guardian_on_correct":   b2f(onFound && onAccused == 1),
			"guardian_off_correct":  b2f(offFound && offAccused == 1),
			"guardian_off_verdicts": float64(offDisturbed),
		},
	}
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// A4QueueSweep varies the receive-queue capacity of the event-triggered
// consumer against its Poisson traffic and measures overflow counts and
// whether the configuration ONA fires — the dimensioning question behind
// the job-borderline fault class.
func A4QueueSweep(seed uint64) *Result {
	caps := []int{1, 2, 4, 8, 16}
	t := newTable("queue capacity", "overflows", "configuration verdict")
	metrics := map[string]float64{}
	for _, capacity := range caps {
		sys := scenario.Fig10(seed, diagnosis.Options{})
		sys.Injector.MisconfigureQueue(sys.Sink, scenario.ChLoad, capacity)
		sys.Run(3000)
		over := sys.Sink.InPort(scenario.ChLoad).Stats.Overflows
		v, ok := sys.Diag.VerdictOf(core.SoftwareFRU(2, "C/C2"))
		verdict := "-"
		if ok {
			verdict = fmt.Sprintf("%s (%s)", v.Class, v.Pattern)
		}
		t.row(capacity, over, verdict)
		metrics[fmt.Sprintf("overflows_cap%d", capacity)] = float64(over)
		metrics[fmt.Sprintf("flagged_cap%d", capacity)] = b2f(ok && v.Class == core.JobBorderline)
	}
	return &Result{
		ID:      "A4",
		Figure:  "ablation — queue dimensioning vs job-borderline detection",
		Table:   t.String(),
		Metrics: metrics,
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// A5DiagBandwidth sweeps the virtual diagnostic network's per-component
// frame allocation under heavy simultaneous fault activity (wearout +
// connector). Symptom dissemination consumes real bandwidth: an undersized
// diagnostic segment queues and finally drops symptom records, delaying
// and starving the assessment — the engineering trade the architecture's
// VN dimensioning must make.
func A5DiagBandwidth(seed uint64) *Result {
	t := newTable("diag bytes/frame", "symptoms received", "diag-VN drops", "connector verdict", "wearout-side verdict")
	metrics := map[string]float64{}
	for _, alloc := range []int{32, 64, 96, 128} {
		sys := scenario.Fig10(seed, diagnosis.Options{DiagAllocBytes: alloc})
		acc := wearoutAccel()
		sys.Injector.Wearout(0, acc, 3600*20)
		sys.Injector.ConnectorTx(1, sim.Time(300*sim.Millisecond), 0, 0.3)
		sys.Run(3000)

		drops := 0
		for n := 0; n < 4; n++ {
			if ep := sys.Diag.Net.Endpoint(tt.NodeID(n)); ep != nil {
				drops += ep.TxOverflows
			}
		}
		vc, okC := sys.Diag.VerdictOf(core.HardwareFRU(1))
		vw, okW := sys.Diag.VerdictOf(core.HardwareFRU(0))
		cs, ws := "-", "-"
		if okC {
			cs = vc.Class.String()
		}
		if okW {
			ws = vw.Class.String()
		}
		t.row(alloc, sys.Diag.Assessor.SymptomsReceived, drops, cs, ws)
		metrics[fmt.Sprintf("received_a%d", alloc)] = float64(sys.Diag.Assessor.SymptomsReceived)
		metrics[fmt.Sprintf("drops_a%d", alloc)] = float64(drops)
		metrics[fmt.Sprintf("connector_ok_a%d", alloc)] = b2f(okC && vc.Class == core.ComponentBorderline)
	}
	return &Result{
		ID:      "A5",
		Figure:  "ablation — diagnostic-network bandwidth vs symptom loss and classification",
		Table:   t.String(),
		Metrics: metrics,
	}
}

func wearoutAccel() faults.WearoutAcceleration {
	return faults.WearoutAcceleration{
		Onset: sim.Time(300 * sim.Millisecond), Tau: 400 * sim.Millisecond,
		BaseRatePerHour: 3600 * 4, MaxFactor: 40,
	}
}
