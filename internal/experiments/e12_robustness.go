package experiments

import (
	"fmt"

	"decos/internal/diagnosis"
	"decos/internal/scenario"
	"decos/internal/sim"
)

// E12Robustness measures classification stability across random seeds: the
// per-kind accuracy over several independent realizations of every fault
// kind, isolating how much of the headline accuracy depends on lucky draws
// (injection timing, fault parameters, traffic interleavings).
func E12Robustness(seed uint64) *Result {
	const seeds = 5
	kinds := scenario.AllKinds()
	t := newTable("fault kind", "correct", "of", "accuracy")
	metrics := map[string]float64{}
	totalCorrect, total := 0, 0
	minAcc := 1.0

	for _, kind := range kinds {
		correct := 0
		for s := 0; s < seeds; s++ {
			sys := scenario.Fig10(seed+uint64(kind)*6151+uint64(s)*389, diagnosis.Options{})
			act := sys.Inject(kind, sim.Time(300*sim.Millisecond), sim.Time(3*sim.Second))
			sys.Run(3000)
			subject := act.Culprit
			if subject.Component < 0 && len(act.Affected) > 0 {
				subject = act.Affected[0]
			}
			if v, ok := sys.Diag.VerdictOf(subject); ok && act.Class.Matches(v.Class) {
				correct++
			}
		}
		acc := float64(correct) / seeds
		if acc < minAcc {
			minAcc = acc
		}
		totalCorrect += correct
		total += seeds
		t.row(kind.String(), correct, seeds, pct(acc))
		metrics["acc_"+kind.String()] = acc
	}
	metrics["overall"] = float64(totalCorrect) / float64(total)
	metrics["worst_kind"] = minAcc

	return &Result{
		ID:      "E12",
		Figure:  fmt.Sprintf("extension — classification robustness over %d seeds per kind", seeds),
		Table:   t.String(),
		Metrics: metrics,
	}
}
