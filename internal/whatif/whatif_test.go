package whatif

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"decos/internal/bayes"
	"decos/internal/diagnosis"
	"decos/internal/engine"
	"decos/internal/scenario"
	"decos/internal/sim"
	"decos/internal/trace"
)

// engineCheckpointEvery mirrors decos-sim's -checkpoint-every sink,
// keeping the encodings in memory keyed by completed-round count.
func engineCheckpointEvery(rec *recording, every int64) engine.Option {
	return engine.WithCheckpointSink(func(round int64, data []byte) error {
		rec.ckpts[round+1] = bytes.Clone(data)
		return nil
	}, every)
}

const (
	testSeed   = 20050404
	testRounds = 400
)

// recording is one decos-sim-shaped factual run: periodic checkpoints
// plus a trace, exactly as `decos-sim -checkpoint-every 50 -trace f`
// would produce them.
type recording struct {
	ckpts  map[int64][]byte // completed rounds -> encoded checkpoint
	events []trace.Event
	ledger []string // activation culprits, for expectations
}

func record(t *testing.T, plan []scenario.InjectPlan, extra ...engine.Option) *recording {
	t.Helper()
	rec := &recording{ckpts: map[int64][]byte{}}
	var buf bytes.Buffer
	sys := scenario.Fig10Faulted(testSeed, diagnosis.Options{}, plan,
		append([]engine.Option{engineCheckpointEvery(rec, 50)}, extra...)...)
	// decos-sim attaches the trace outside the engine; mirror that so the
	// checkpoints carry no trace attachment.
	trace.AttachSink(sys.Cluster, sys.Diag, sys.Injector,
		trace.NewNDJSONSink(&buf), trace.Options{TrustEveryEpochs: 5})
	for _, a := range sys.Injector.Ledger() {
		rec.ledger = append(rec.ledger, a.Culprit.String())
	}
	sys.Cluster.RunToRound(testRounds)
	if sys.Engine.CkptErr != nil {
		t.Fatalf("checkpoint sink: %v", sys.Engine.CkptErr)
	}
	rd, _ := trace.OpenReader(bytes.NewReader(buf.Bytes()))
	if err := rd.ReadAll(func(e trace.Event) { rec.events = append(rec.events, e) }); err != nil {
		t.Fatalf("reading recorded trace: %v", err)
	}
	return rec
}

func verdictJSON(t *testing.T, v []diagnosis.Verdict) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestWhatifHypotheses is the end-to-end counterfactual replay contract:
// for each hypothesis class — fault removed, fault injected, wrong FRU —
// the diagnoser restores from a decos-sim checkpoint, cross-checks the
// factual replica against the recorded trace, and reports a first
// divergent slot with a diverging FRU.
func TestWhatifHypotheses(t *testing.T) {
	if testing.Short() {
		t.Skip("six 400-round replays in -short mode")
	}
	faultPlan := []scenario.InjectPlan{{
		Kind:    scenario.KindConnectorTx,
		At:      100 * sim.Time(sim.Millisecond),
		Horizon: testRounds * sim.Time(sim.Millisecond),
	}}
	faulty := record(t, faultPlan)
	healthy := record(t, nil)
	if len(faulty.ledger) != 1 {
		t.Fatalf("faulty recording has %d activations, want 1", len(faulty.ledger))
	}

	base := func(plan []scenario.InjectPlan, rec *recording, ckptRound int64) Config {
		data, ok := rec.ckpts[ckptRound]
		if !ok {
			t.Fatalf("no checkpoint at round %d (have %v)", ckptRound, len(rec.ckpts))
		}
		return Config{
			Seed:       testSeed,
			Opts:       diagnosis.Options{},
			Plan:       plan,
			Rounds:     testRounds,
			Checkpoint: data,
			Recorded:   rec.events,
		}
	}
	check := func(t *testing.T, rep *Report, err error, wantCkptRound int64) {
		t.Helper()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if rep.RestoredRound != wantCkptRound {
			t.Errorf("restored at round %d, want %d", rep.RestoredRound, wantCkptRound)
		}
		if rep.TraceMatch == nil {
			t.Fatal("no trace cross-check ran")
		}
		if rep.TraceMatch.Err != nil {
			t.Fatalf("factual replica does not match the recording: %v", rep.TraceMatch.Err)
		}
		if rep.Div == nil {
			t.Fatal("no divergence reported")
		}
		if rep.Div.FRU == "" {
			t.Error("divergence has no FRU attribution")
		}
		e := rep.Div.Factual
		if e == nil {
			e = rep.Div.Counter
		}
		if e.T <= rep.RestoredAt.Micros() {
			t.Errorf("divergence at t=%dµs not after restore point %v", e.T, rep.RestoredAt)
		}
		if rep.Div.Slot() == "" {
			t.Error("empty divergence slot rendering")
		}
	}

	t.Run("remove", func(t *testing.T) {
		// Restore before the fault activates (round 50 < 100 ms) and
		// remove it: the counterfactual is the healthy continuation.
		cfg := base(faultPlan, faulty, 50)
		cfg.Hyp = Hypothesis{Kind: Remove, Target: 0}
		rep, err := Run(cfg)
		check(t, rep, err, 50)
		if !strings.Contains(rep.Applied, "removed activation #0") {
			t.Errorf("Applied = %q", rep.Applied)
		}
		if rep.Div.FRU != faulty.ledger[0] {
			t.Errorf("diverging FRU %s, want the removed fault's culprit %s",
				rep.Div.FRU, faulty.ledger[0])
		}
		if verdictJSON(t, rep.FactualVerdicts) == verdictJSON(t, rep.CounterVerdicts) {
			t.Error("final verdicts identical despite removing an active fault")
		}
	})

	t.Run("inject", func(t *testing.T) {
		// Healthy recording; hypothesis adds a permanent fail-silent
		// fault at 150 ms, restoring from the round-100 checkpoint.
		cfg := base(nil, healthy, 100)
		cfg.Hyp = Hypothesis{Kind: Inject, Fault: scenario.KindPermanent,
			At: 150 * sim.Time(sim.Millisecond)}
		rep, err := Run(cfg)
		check(t, rep, err, 100)
		if !strings.Contains(rep.Applied, "injected permanent") {
			t.Errorf("Applied = %q", rep.Applied)
		}
		if len(rep.CounterVerdicts) == 0 {
			t.Error("no counterfactual verdicts despite an injected permanent fault")
		}
	})

	t.Run("wrong-fru", func(t *testing.T) {
		// Move the recorded connector fault to the culprit's neighbour:
		// the first divergent frame must implicate one of the two.
		cfg := base(faultPlan, faulty, 50)
		cfg.Hyp = Hypothesis{Kind: WrongFRU, Target: 0, Fault: scenario.KindConnectorTx, Comp: -1}
		rep, err := Run(cfg)
		check(t, rep, err, 50)
		if !strings.Contains(rep.Applied, "moved activation #0") {
			t.Errorf("Applied = %q", rep.Applied)
		}
		if verdictJSON(t, rep.FactualVerdicts) == verdictJSON(t, rep.CounterVerdicts) {
			t.Error("final verdicts identical despite moving the fault to another FRU")
		}
		if diff := rep.VerdictDiff(); !strings.Contains(diff, "*") {
			t.Errorf("verdict diff marks no differing row:\n%s", diff)
		}
	})

	t.Run("no-divergence", func(t *testing.T) {
		// An injection armed beyond the horizon never manifests: the
		// counterfactual must be observationally identical.
		cfg := base(nil, healthy, 100)
		cfg.Hyp = Hypothesis{Kind: Inject, Fault: scenario.KindPermanent,
			At: 10 * testRounds * sim.Time(sim.Millisecond)}
		rep, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if rep.Div != nil {
			t.Errorf("unexpected divergence: %s (factual %s, counter %s)",
				rep.Div.Slot(), verdictJSON(t, rep.FactualVerdicts), verdictJSON(t, rep.CounterVerdicts))
		}
	})

	t.Run("trace-mismatch", func(t *testing.T) {
		// Cross-checking the faulty run's replay against the healthy
		// recording must be detected.
		cfg := base(faultPlan, faulty, 50)
		cfg.Recorded = healthy.events
		cfg.Hyp = Hypothesis{Kind: Remove, Target: 0}
		rep, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if rep.TraceMatch == nil || rep.TraceMatch.Err == nil {
			t.Error("mismatched recording not detected")
		}
	})
}

// TestWhatifErrors covers refusals: unknown activation targets,
// non-hardware culprits for wrong-fru, checkpoints past the horizon.
func TestWhatifErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("400-round recording in -short mode")
	}
	rec := record(t, nil)
	cfg := Config{
		Seed: testSeed, Opts: diagnosis.Options{}, Rounds: testRounds,
		Checkpoint: rec.ckpts[50],
		Hyp:        Hypothesis{Kind: Remove, Target: 7},
	}
	if _, err := Run(cfg); err == nil {
		t.Error("removing a nonexistent activation should fail")
	}
	cfg.Hyp = Hypothesis{Kind: Remove, Target: 0}
	cfg.Rounds = 10 // checkpoint at round 50 is past this horizon
	if _, err := Run(cfg); err == nil {
		t.Error("checkpoint past the horizon should fail")
	}
	cfg.Rounds = testRounds
	cfg.Checkpoint = []byte("garbage")
	if _, err := Run(cfg); err == nil {
		t.Error("garbage checkpoint should fail")
	}
}

// TestWhatifBayesPosteriorDiff replays a recording made under the
// Bayesian classification stage: the checkpoint carries the belief
// state, the factual replica must still reproduce the recorded trace
// bit-identically, and the verdict diff renders the posterior over
// fault classes on both sides of every indicted FRU.
func TestWhatifBayesPosteriorDiff(t *testing.T) {
	if testing.Short() {
		t.Skip("400-round bayes replays in -short mode")
	}
	faultPlan := []scenario.InjectPlan{{
		Kind:    scenario.KindConnectorTx,
		At:      100 * sim.Time(sim.Millisecond),
		Horizon: testRounds * sim.Time(sim.Millisecond),
	}}
	rec := record(t, faultPlan, engine.WithClassifier(bayes.New()))

	cfg := Config{
		Seed:       testSeed,
		Opts:       diagnosis.Options{},
		Plan:       faultPlan,
		Rounds:     testRounds,
		Classifier: "bayes",
		Checkpoint: rec.ckpts[150],
		Recorded:   rec.events,
		Hyp:        Hypothesis{Kind: Remove, Target: 0},
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.TraceMatch == nil || rep.TraceMatch.Err != nil {
		t.Fatalf("bayes factual replica does not match its recording: %v", rep.TraceMatch)
	}
	if rep.Div == nil {
		t.Fatal("no divergence after removing the active fault")
	}
	if len(rep.FactualVerdicts) == 0 {
		t.Fatal("no factual verdicts — the Bayesian stage never indicted the connector")
	}
	if rep.FactualRanked == nil {
		t.Fatal("no ranked posterior captured despite a Ranker classifier")
	}
	diff := rep.VerdictDiff()
	if !strings.Contains(diff, "posterior") {
		t.Errorf("verdict diff renders no posterior rows:\n%s", diff)
	}
}
