// Package whatif implements counterfactual replay diagnosis: restore a
// recorded run from a deterministic engine checkpoint twice, apply a
// fault hypothesis to one of the two replicas, run both to the horizon
// and report where — first divergent slot, diverging FRU — and how —
// side-by-side verdict diff — the counterfactual departs from the
// factual run.
//
// This is the maintenance engineer's "would the symptoms go away if this
// FRU were replaced?" question (the paper's Section V-B off-line
// analysis), answered by simulation instead of by swapping hardware: the
// byte-identical restore contract of the engine checkpoints makes the
// factual replica reproduce the recorded run exactly, so every
// difference between the replicas is attributable to the hypothesis
// alone.
package whatif

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"decos/internal/core"
	"decos/internal/diagnosis"
	"decos/internal/faults"
	"decos/internal/pack"
	"decos/internal/scenario"
	"decos/internal/sim"
	"decos/internal/trace"
	"decos/internal/tt"
)

// HypKind enumerates the hypothesis classes.
type HypKind int

const (
	// Remove deactivates a recorded fault activation at the restore
	// point: "what if this fault were not present from here on?"
	Remove HypKind = iota
	// Inject adds a fault that the recorded run did not have: "would
	// this candidate fault explain the observed symptoms?"
	Inject
	// WrongFRU moves a recorded fault to a different component: the
	// misdiagnosis probe — "would the evidence distinguish the suspected
	// FRU from its neighbour?"
	WrongFRU
)

func (k HypKind) String() string {
	switch k {
	case Remove:
		return "remove"
	case Inject:
		return "inject"
	case WrongFRU:
		return "wrong-fru"
	}
	return fmt.Sprintf("HypKind(%d)", int(k))
}

// ParseHypKind resolves a hypothesis class name.
func ParseHypKind(s string) (HypKind, error) {
	switch s {
	case "remove":
		return Remove, nil
	case "inject":
		return Inject, nil
	case "wrong-fru":
		return WrongFRU, nil
	}
	return 0, fmt.Errorf("whatif: unknown hypothesis %q (remove, inject or wrong-fru)", s)
}

// Hypothesis is one counterfactual edit applied to the restored run.
type Hypothesis struct {
	Kind HypKind
	// Target is the injector-ledger activation ID the hypothesis acts on
	// (Remove, WrongFRU).
	Target int
	// Fault is the kind to add (Inject) or re-target (WrongFRU — usually
	// the factual fault's own kind).
	Fault scenario.FaultKind
	// At is the injection instant (Inject); clamped to the restore point
	// when the checkpoint is later.
	At sim.Time
	// Comp pins the WrongFRU target component; -1 picks the factual
	// culprit's neighbour ((culprit+1) mod 3).
	Comp int
}

// Config describes one counterfactual replay.
type Config struct {
	// Seed, Opts and Plan must reproduce the recorded run's build exactly
	// — the checkpoint's manifest reconstruction depends on them (and the
	// restore refuses mismatched seeds or topologies).
	Seed uint64
	Opts diagnosis.Options
	Plan []scenario.InjectPlan
	// Rounds is the replay horizon (TDMA rounds from t=0).
	Rounds int64
	// Classifier names the classification stage both replicas run
	// ("", "decos", "obd" or "bayes" — pack.Classifiers). It must match
	// the recorded run's stage: a checkpoint written under the Bayesian
	// stage carries its belief state in the "cls" section, and restoring
	// it under a different stage (or vice versa) forfeits the
	// byte-identical replay contract the divergence report rests on.
	Classifier string
	// Checkpoint is the encoded engine checkpoint to restore from.
	Checkpoint []byte
	Hyp        Hypothesis
	// Recorded optionally holds the recorded run's trace events; when
	// present the factual replica is cross-checked against them (failed
	// frames, symptoms and verdicts after the restore point must match).
	Recorded []trace.Event
}

// Divergence locates the first observable difference between the
// replicas' event streams (frames of every slot, symptoms, verdicts).
type Divergence struct {
	// Index is the position in the replay event streams.
	Index int
	// Factual and Counter are the events at Index; one is nil when a
	// stream ended early.
	Factual, Counter *trace.Event
	// FRU names the diverging field-replaceable unit: the sender's
	// hardware FRU for a frame divergence, the subject for symptom or
	// verdict divergences.
	FRU string
}

// Slot renders the divergence instant ("round 312 slot 2 (t=312510µs)"
// or just the timestamp for non-frame events).
func (d *Divergence) Slot() string {
	e := d.Factual
	if e == nil {
		e = d.Counter
	}
	if e.Kind == "frame" && e.Round != nil && e.Slot != nil {
		return fmt.Sprintf("round %d slot %d (t=%dµs)", *e.Round, *e.Slot, e.T)
	}
	return fmt.Sprintf("t=%dµs", e.T)
}

// TraceCheck is the outcome of cross-checking the factual replica
// against the recorded trace.
type TraceCheck struct {
	// Compared counts the recorded post-restore events checked.
	Compared int
	// Err describes the first mismatch; nil means the replica reproduced
	// the recording exactly.
	Err error
}

// Report is the result of one counterfactual replay.
type Report struct {
	// RestoredRound and RestoredAt locate the checkpoint (completed
	// rounds, simulated time).
	RestoredRound int64
	RestoredAt    sim.Time
	// Applied describes the concrete hypothesis application (which
	// activation was removed, what was injected where).
	Applied string
	// Div is nil when the counterfactual is observationally identical to
	// the factual run through the horizon.
	Div *Divergence
	// FactualEvents and CounterEvents count the captured replay events.
	FactualEvents, CounterEvents int
	// FactualVerdicts and CounterVerdicts are the final diagnostic
	// verdicts of each replica.
	FactualVerdicts, CounterVerdicts []diagnosis.Verdict
	// FactualRanked and CounterRanked carry the full ranked belief per
	// indicted FRU when the active classification stage maintains one
	// (diagnosis.Ranker — the Bayesian stage); nil otherwise. The verdict
	// diff renders them so the engineer sees how far the counterfactual
	// moved the posterior, not just whether the MAP class flipped.
	FactualRanked, CounterRanked map[string][]diagnosis.RankedVerdict
	// TraceMatch is nil when no recording was supplied.
	TraceMatch *TraceCheck
}

// capture is an in-memory trace sink retaining every event.
type capture struct{ events []trace.Event }

func (c *capture) Record(e *trace.Event) error { c.events = append(c.events, *e); return nil }
func (c *capture) Close() error                { return nil }

// replica restores one engine from the checkpoint and instruments it
// with a full-fidelity capture (every frame, every symptom, every
// verdict — trust sampling and ledger echo off, so the stream is a pure
// function of cluster behaviour).
func (cfg *Config) replica() (*scenario.System, *capture, error) {
	sys, err := scenario.Fig10Restored(bytes.NewReader(cfg.Checkpoint), cfg.Seed, cfg.Opts, cfg.Plan,
		pack.ClassifierOptions(cfg.Classifier)...)
	if err != nil {
		return nil, nil, err
	}
	cap := &capture{}
	trace.AttachSink(sys.Cluster, sys.Diag, nil, cap, trace.Options{AllFrames: true})
	return sys, cap, nil
}

// apply edits the counterfactual replica per the hypothesis and returns
// a description of what was done.
func (cfg *Config) apply(sys *scenario.System) (string, error) {
	h := cfg.Hyp
	now := sys.Cluster.Sched.Now()
	horizon := sim.Time(cfg.Rounds * sys.Cluster.Cfg.RoundDuration().Micros())
	at := h.At
	if at < now {
		at = now
	}
	find := func(id int) (*faults.Activation, error) {
		for _, a := range sys.Injector.Ledger() {
			if a.ID == id {
				return a, nil
			}
		}
		return nil, fmt.Errorf("whatif: no activation #%d in the restored ledger (%d entries)",
			id, len(sys.Injector.Ledger()))
	}
	switch h.Kind {
	case Remove:
		a, err := find(h.Target)
		if err != nil {
			return "", err
		}
		a.Deactivate()
		return fmt.Sprintf("removed activation #%d (%s: %s)", a.ID, a.Class, a.Detail), nil
	case Inject:
		a := sys.InjectWith(sys.Injector, h.Fault, at, horizon)
		return fmt.Sprintf("injected %s at %v: %s", h.Fault, at, a.Detail), nil
	case WrongFRU:
		a, err := find(h.Target)
		if err != nil {
			return "", err
		}
		if !a.Culprit.IsHardware() || a.Culprit.Component < 0 {
			return "", fmt.Errorf("whatif: wrong-fru needs a hardware culprit; #%d has %s",
				a.ID, a.Culprit)
		}
		comp := h.Comp
		if comp < 0 {
			comp = (a.Culprit.Component + 1) % 3
		}
		a.Deactivate()
		b := sys.InjectAt(sys.Injector, h.Fault, tt.NodeID(comp), at, horizon)
		return fmt.Sprintf("moved activation #%d (%s) from %s to %s: %s",
			a.ID, h.Fault, a.Culprit, core.HardwareFRU(comp), b.Detail), nil
	}
	return "", fmt.Errorf("whatif: unknown hypothesis kind %d", int(h.Kind))
}

// eventJSON canonicalizes an event for comparison.
func eventJSON(e *trace.Event) []byte {
	b, err := json.Marshal(e)
	if err != nil {
		panic(err) // trace.Event is always marshalable
	}
	return b
}

// diverge finds the first difference between the replicas' streams.
func diverge(fact, counter []trace.Event) *Divergence {
	n := len(fact)
	if len(counter) < n {
		n = len(counter)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(eventJSON(&fact[i]), eventJSON(&counter[i])) {
			return describe(i, &fact[i], &counter[i])
		}
	}
	if len(fact) != len(counter) {
		var f, c *trace.Event
		if n < len(fact) {
			f = &fact[n]
		}
		if n < len(counter) {
			c = &counter[n]
		}
		return describe(n, f, c)
	}
	return nil
}

func describe(i int, f, c *trace.Event) *Divergence {
	d := &Divergence{Index: i, Factual: f, Counter: c}
	e := f
	if e == nil {
		e = c
	}
	switch {
	case e.Kind == "frame" && e.Sender != nil:
		d.FRU = core.HardwareFRU(*e.Sender).String()
	case e.Subject != "":
		d.FRU = e.Subject
	}
	return d
}

// crossCheck verifies the factual replica against the recorded trace:
// every failed frame, symptom and verdict the recording holds after the
// restore point must appear identically in the replay. A mismatch means
// the checkpoint, seed or fault plan does not belong to the recording.
func crossCheck(recorded, replay []trace.Event, after sim.Time) *TraceCheck {
	sel := func(events []trace.Event) []trace.Event {
		var out []trace.Event
		for i := range events {
			e := &events[i]
			if e.T <= after.Micros() {
				continue
			}
			switch e.Kind {
			case "frame":
				if e.Status == tt.FrameOK.String() {
					continue // recordings may or may not carry OK frames
				}
			case "symptom", "verdict":
			default:
				continue // trust samples, injections: cadence-dependent
			}
			out = append(out, *e)
		}
		return out
	}
	want, got := sel(recorded), sel(replay)
	chk := &TraceCheck{Compared: len(want)}
	for i := range want {
		if i >= len(got) {
			chk.Err = fmt.Errorf("replay ends after %d events; recording has %d (first missing: %s)",
				len(got), len(want), eventJSON(&want[i]))
			return chk
		}
		if !bytes.Equal(eventJSON(&want[i]), eventJSON(&got[i])) {
			chk.Err = fmt.Errorf("event %d differs:\n  recorded: %s\n  replayed: %s",
				i, eventJSON(&want[i]), eventJSON(&got[i]))
			return chk
		}
	}
	if len(got) > len(want) {
		chk.Err = fmt.Errorf("replay has %d extra events (first: %s)",
			len(got)-len(want), eventJSON(&got[len(want)]))
	}
	return chk
}

// Run executes the counterfactual replay described by cfg.
func Run(cfg Config) (*Report, error) {
	fact, factCap, err := cfg.replica()
	if err != nil {
		return nil, err
	}
	counter, counterCap, err := cfg.replica()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		RestoredRound: fact.Engine.StateVersion(),
		RestoredAt:    fact.Cluster.Sched.Now(),
	}
	if rep.RestoredRound > cfg.Rounds {
		return nil, fmt.Errorf("whatif: checkpoint is at round %d, past the %d-round horizon",
			rep.RestoredRound, cfg.Rounds)
	}
	if rep.Applied, err = cfg.apply(counter); err != nil {
		return nil, err
	}

	fact.Cluster.RunToRound(cfg.Rounds)
	counter.Cluster.RunToRound(cfg.Rounds)

	rep.FactualEvents = len(factCap.events)
	rep.CounterEvents = len(counterCap.events)
	rep.Div = diverge(factCap.events, counterCap.events)
	rep.FactualVerdicts = fact.Diag.Assessor.CurrentAll()
	rep.CounterVerdicts = counter.Diag.Assessor.CurrentAll()
	rep.FactualRanked = rankedOf(fact, rep.FactualVerdicts)
	rep.CounterRanked = rankedOf(counter, rep.CounterVerdicts)
	if cfg.Recorded != nil {
		rep.TraceMatch = crossCheck(cfg.Recorded, factCap.events, rep.RestoredAt)
	}
	return rep, nil
}

// rankedOf snapshots the classifier's ranked belief for every indicted
// FRU when the stage implements diagnosis.Ranker; nil otherwise. The
// ranked slices are copied — the classifier owns its return value only
// until the next call.
func rankedOf(sys *scenario.System, verdicts []diagnosis.Verdict) map[string][]diagnosis.RankedVerdict {
	ranker, ok := sys.Diag.Assessor.Classifier().(diagnosis.Ranker)
	if !ok {
		return nil
	}
	out := map[string][]diagnosis.RankedVerdict{}
	for i := range verdicts {
		v := &verdicts[i]
		if r := ranker.Ranked(v.Subject); len(r) > 0 {
			out[v.FRU.String()] = append([]diagnosis.RankedVerdict(nil), r...)
		}
	}
	return out
}

// VerdictDiff renders the side-by-side final-verdict comparison: one row
// per FRU either replica indicted, factual on the left, counterfactual
// on the right, differing rows marked. When the classification stage
// exposes a ranked belief (diagnosis.Ranker), each row is followed by
// the posterior over fault classes on both sides.
func (r *Report) VerdictDiff() string {
	type side struct{ f, c string }
	rows := map[string]*side{}
	var order []string
	row := func(fru string) *side {
		s, ok := rows[fru]
		if !ok {
			s = &side{}
			rows[fru] = s
			order = append(order, fru)
		}
		return s
	}
	render := func(v *diagnosis.Verdict) string {
		return fmt.Sprintf("%s %s action=%s conf=%.2f", v.Class, v.Pattern, v.Action, v.Confidence)
	}
	for i := range r.FactualVerdicts {
		v := &r.FactualVerdicts[i]
		row(v.FRU.String()).f = render(v)
	}
	for i := range r.CounterVerdicts {
		v := &r.CounterVerdicts[i]
		row(v.FRU.String()).c = render(v)
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "  %-22s %-45s | %s\n", "FRU", "factual", "counterfactual")
	for _, fru := range order {
		s := rows[fru]
		f, c := s.f, s.c
		mark := " "
		if f != c {
			mark = "*"
		}
		if f == "" {
			f = "-"
		}
		if c == "" {
			c = "-"
		}
		fmt.Fprintf(&buf, "%s %-22s %-45s | %s\n", mark, fru, f, c)
		rf, rc := renderRanked(r.FactualRanked[fru]), renderRanked(r.CounterRanked[fru])
		if rf != "" || rc != "" {
			if rf == "" {
				rf = "-"
			}
			if rc == "" {
				rc = "-"
			}
			fmt.Fprintf(&buf, "  %-22s %-45s | %s\n", "  posterior", rf, rc)
		}
	}
	if len(order) == 0 {
		buf.WriteString("  (no verdicts in either replica)\n")
	}
	return buf.String()
}

// renderRanked formats a ranked belief as "class .97 > class .02 > …",
// dropping classes below one posterior percent to keep the row readable.
func renderRanked(ranked []diagnosis.RankedVerdict) string {
	var parts []string
	for _, rv := range ranked {
		if rv.Confidence < 0.01 && len(parts) > 0 {
			break // ranked is sorted descending; the rest is noise
		}
		parts = append(parts, fmt.Sprintf("%s %.2f", rv.Class, rv.Confidence))
	}
	return strings.Join(parts, " > ")
}
