package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"

	"decos/internal/sim"
	"decos/internal/trace"
)

// LoadGen synthesises per-vehicle NDJSON traces for cluster load tests.
// Generation is deterministic per (Seed, vehicle) and independent of
// generation order, so millions of vehicles can be produced from any
// number of workers and re-runs are exactly reproducible. The events are
// shaped like a real campaign trace — header, frames, symptoms, trust
// samples, verdicts (some job-inherent, driving fleet incidents), truth
// and advice records — so the shards exercise their full ingest path, not
// a synthetic fast path.
type LoadGen struct {
	// Seed is the corpus identity; the same seed regenerates the same
	// fleet (default 1).
	Seed uint64
	// EventsPerVehicle sizes one vehicle's trace (default 64).
	EventsPerVehicle int
}

var (
	loadgenSymptoms = []string{"crash", "omission", "value", "babbling"}
	loadgenClasses  = []string{"job-inherent-software", "job-inherent-sensor", "component-external", "job-external"}
	loadgenActions  = []string{"update-software", "inspect-transducer", "inspect-connector", "no-action"}
	loadgenPatterns = []string{"stuck-at", "drift", "intermittent"}
)

// VehicleTrace returns one vehicle's NDJSON blob.
func (g LoadGen) VehicleTrace(vehicle int) []byte {
	var buf bytes.Buffer
	g.emitVehicle(vehicle, func(e trace.Event) {
		b, _ := json.Marshal(&e)
		buf.Write(b)
		buf.WriteByte('\n')
	})
	return buf.Bytes()
}

// VehicleTraceBinary returns the same vehicle trace as VehicleTrace — the
// identical event sequence, deterministically — encoded as a complete
// binary trace stream (header included). Transcoding either blob into the
// other format reproduces the same events.
func (g LoadGen) VehicleTraceBinary(vehicle int) []byte {
	var buf bytes.Buffer
	sink := trace.NewBinarySink(&buf)
	g.emitVehicle(vehicle, func(e trace.Event) {
		if err := sink.Record(&e); err != nil {
			panic("cluster: loadgen emitted an unencodable event: " + err.Error())
		}
	})
	if err := sink.Close(); err != nil {
		panic("cluster: loadgen binary close: " + err.Error())
	}
	return buf.Bytes()
}

// EmitVehicle streams one vehicle's events into sink — the allocation-free
// path for corpus generation (decos-bench writes whole corpora through a
// single sink this way, one stream header for all vehicles).
func (g LoadGen) EmitVehicle(vehicle int, sink trace.Sink) error {
	var err error
	g.emitVehicle(vehicle, func(e trace.Event) {
		if err == nil {
			err = sink.Record(&e)
		}
	})
	return err
}

// emitVehicle generates the vehicle's event sequence, invoking w per
// event. Determinism contract: the sequence depends only on (Seed,
// EventsPerVehicle, vehicle), never on the encoding that consumes it.
func (g LoadGen) emitVehicle(vehicle int, emit func(trace.Event)) {
	seed := g.Seed
	if seed == 0 {
		seed = 1
	}
	n := g.EventsPerVehicle
	if n <= 0 {
		n = 64
	}
	rng := sim.NewRNG(seed ^ hashVehicle(vehicle))

	w := func(e trace.Event) {
		e.Vehicle = vehicle
		emit(e)
	}

	detail := ""
	if rng.Float64() < 0.2 {
		detail = "fault-free"
	}
	w(trace.Event{T: 0, Kind: "vehicle", Detail: detail})
	if detail == "" {
		class := loadgenClasses[rng.Intn(len(loadgenClasses))]
		subject := fmt.Sprintf("job[das/job@%d]", rng.Intn(4))
		w(trace.Event{T: 1, Kind: "truth", Class: class, Subject: subject, Detail: "injected"})
		w(trace.Event{T: 2, Kind: "advice", Source: "decos", Subject: subject,
			Action: loadgenActions[rng.Intn(len(loadgenActions))], Class: class})
		w(trace.Event{T: 3, Kind: "advice", Source: "obd", Subject: subject,
			Action: loadgenActions[rng.Intn(len(loadgenActions))], Class: class})
	}

	t := int64(10)
	for i := 0; i < n; i++ {
		t += int64(100 + rng.Intn(400))
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // half the stream is frame traffic
			sender, slot := rng.Intn(4), rng.Intn(8)
			round := t / 1000
			w(trace.Event{T: t, Kind: "frame", Sender: &sender, Slot: &slot, Round: &round, Status: "failed"})
		case 5, 6:
			obs := rng.Intn(4)
			w(trace.Event{T: t, Kind: "symptom",
				Symptom:  loadgenSymptoms[rng.Intn(len(loadgenSymptoms))],
				Subject:  fmt.Sprintf("component[%d]", rng.Intn(4)),
				Observer: &obs, Count: 1 + rng.Intn(3), Dev: rng.Float64()})
		case 7, 8:
			tv := 0.5 + 0.5*rng.Float64()
			w(trace.Event{T: t, Kind: "trust",
				Subject: fmt.Sprintf("component[%d]", rng.Intn(4)), Trust: &tv})
		default:
			class := "component-borderline"
			subject := fmt.Sprintf("component[%d]", rng.Intn(4))
			action := "inspect-connector"
			if rng.Float64() < 0.3 { // fleet-relevant: a job-inherent software verdict
				class = "job-inherent-software"
				subject = fmt.Sprintf("job[das/job@%d]", rng.Intn(4))
				action = "update-software"
			}
			w(trace.Event{T: t, Kind: "verdict", Subject: subject, Class: class,
				Pattern: loadgenPatterns[rng.Intn(len(loadgenPatterns))],
				Action:  action, Conf: 0.5 + 0.5*rng.Float64()})
		}
	}
}
