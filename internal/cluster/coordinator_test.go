package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"decos/internal/scenario"
	"decos/internal/telemetry"
	"decos/internal/warranty"
)

// shardFixture is a small sharded cluster: the campaign corpus ingested
// into n warranty servers by ring ownership, plus a single-node collector
// holding everything — the byte-identity reference.
type shardFixture struct {
	peers  []*httptest.Server
	urls   []string
	single *warranty.Collector
}

func newShardFixture(t *testing.T, n, vehicles int, rounds int64) *shardFixture {
	t.Helper()
	f := &shardFixture{single: warranty.NewCollector(0)}
	cols := make([]*warranty.Collector, n)
	for i := range cols {
		cols[i] = warranty.NewCollector(0)
		srv := httptest.NewServer(warranty.NewServer(cols[i], warranty.ServerOptions{
			PeerName: "peer-" + strconv.Itoa(i),
		}))
		t.Cleanup(srv.Close)
		f.peers = append(f.peers, srv)
		f.urls = append(f.urls, srv.URL)
	}
	ring, err := NewRing(f.urls, 0)
	if err != nil {
		t.Fatal(err)
	}
	byURL := make(map[string]*warranty.Collector, n)
	for j, orig := range f.urls {
		byURL[orig] = cols[j]
	}

	c := scenario.Campaign{
		Vehicles:       vehicles,
		Rounds:         rounds,
		Seed:           20050404,
		FaultFreeShare: 0.2,
		Workers:        1,
	}
	c.RunTraced(func(v int, ndjson []byte) {
		if _, _, err := f.single.IngestStream(bytes.NewReader(ndjson), 0); err != nil {
			t.Error(err)
		}
		if _, _, err := byURL[ring.Owner(v)].IngestStream(bytes.NewReader(ndjson), 0); err != nil {
			t.Error(err)
		}
	})
	return f
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestCoordinatorHealthyByteIdentical: with every shard reachable, the
// coordinator's merged summary must be byte-identical to the single-node
// summary — and must carry no cluster coverage block.
func TestCoordinatorHealthyByteIdentical(t *testing.T) {
	f := newShardFixture(t, 3, 12, 600)
	co, err := NewCoordinator(f.urls, CoordinatorOptions{Telemetry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(co)
	defer front.Close()

	code, got := getBody(t, front.URL+"/v1/fleet/summary")
	if code != http.StatusOK {
		t.Fatalf("summary status %d: %s", code, got)
	}
	want, err := json.MarshalIndent(f.single.Summary(0), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if !bytes.Equal(got, want) {
		t.Fatalf("merged summary is not byte-identical to single node:\ngot  %s\nwant %s", got, want)
	}
	if bytes.Contains(got, []byte(`"cluster"`)) {
		t.Fatal("healthy merged summary carries a cluster coverage block")
	}
}

// TestCoordinatorPeerDown: a dead shard degrades the view explicitly —
// partial coverage with the failed peer named and the covered vehicle
// count — instead of silently serving a short fleet.
func TestCoordinatorPeerDown(t *testing.T) {
	f := newShardFixture(t, 3, 12, 300)
	// Kill one peer after ingest.
	f.peers[1].Close()

	co, err := NewCoordinator(f.urls, CoordinatorOptions{
		PeerTimeout: time.Second, Retries: 1, Backoff: 5 * time.Millisecond,
		Telemetry: telemetry.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	poll := co.Poll(context.Background())
	cov := poll.Coverage()
	if !cov.Partial || cov.PeersOK != 2 || cov.Peers != 3 {
		t.Fatalf("coverage = %+v, want partial 2/3", cov)
	}
	if len(cov.FailedPeers) != 1 || cov.FailedPeers[0] != f.peers[1].URL {
		t.Fatalf("failed peers = %v, want [%s]", cov.FailedPeers, f.peers[1].URL)
	}

	merged, err := co.Merge(poll, 0)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Cluster == nil || !merged.Cluster.Partial {
		t.Fatal("partial merge carries no cluster coverage block")
	}
	if merged.Cluster.VehiclesCovered != merged.Summary.Vehicles || merged.Cluster.VehiclesCovered <= 0 {
		t.Fatalf("vehicles covered = %d, summary vehicles = %d — the coverage count must name exactly the shard-backed vehicles",
			merged.Cluster.VehiclesCovered, merged.Summary.Vehicles)
	}

	// Attempts: first try plus one retry against the dead peer.
	for _, st := range poll.Status {
		if st.Peer == f.peers[1].URL {
			if st.OK || st.Attempts != 2 || st.Error == "" {
				t.Fatalf("dead peer status = %+v, want 2 failed attempts with error", st)
			}
		} else if !st.OK {
			t.Fatalf("live peer reported down: %+v", st)
		}
	}
}

// TestCoordinatorSlowPeer: a peer slower than PeerTimeout is treated as
// down for the poll; the rest of the cluster still answers.
func TestCoordinatorSlowPeer(t *testing.T) {
	f := newShardFixture(t, 2, 8, 300)
	stall := make(chan struct{})
	defer close(stall)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-stall:
		case <-r.Context().Done():
		}
	}))
	defer slow.Close()

	urls := append(append([]string(nil), f.urls...), slow.URL)
	co, err := NewCoordinator(urls, CoordinatorOptions{
		PeerTimeout: 50 * time.Millisecond, Retries: 1, Backoff: time.Millisecond,
		Telemetry: telemetry.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	poll := co.Poll(context.Background())
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("poll took %v — the slow peer was not bounded by PeerTimeout", elapsed)
	}
	cov := poll.Coverage()
	if !cov.Partial || cov.PeersOK != 2 {
		t.Fatalf("coverage = %+v, want 2 of 3 with the slow peer down", cov)
	}
	if _, err := co.Merge(poll, 0); err != nil {
		t.Fatal(err)
	}
}

// TestCoordinatorCorruptSnapshot: a peer serving garbage (or a version it
// shouldn't) is attributed as a per-peer failure, not a cluster-wide one.
func TestCoordinatorCorruptSnapshot(t *testing.T) {
	f := newShardFixture(t, 2, 8, 300)

	corrupt := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"version":9999,"peer":"evil","vehicles":[]}`)
	}))
	defer corrupt.Close()

	urls := append(append([]string(nil), f.urls...), corrupt.URL)
	co, err := NewCoordinator(urls, CoordinatorOptions{
		PeerTimeout: time.Second, Retries: 1, Backoff: time.Millisecond,
		Telemetry: telemetry.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	poll := co.Poll(context.Background())
	cov := poll.Coverage()
	if !cov.Partial || cov.PeersOK != 2 {
		t.Fatalf("coverage = %+v, want corrupt peer excluded", cov)
	}
	found := false
	for _, st := range poll.Status {
		if st.Peer == corrupt.URL {
			found = true
			if st.OK || st.Error == "" {
				t.Fatalf("corrupt peer status = %+v, want attributed failure", st)
			}
		}
	}
	if !found {
		t.Fatal("corrupt peer missing from poll status")
	}
	if _, err := co.Merge(poll, 0); err != nil {
		t.Fatal(err)
	}
}

// TestCoordinatorAllPeersDown: zero reachable shards is 503, never an
// empty fleet.
func TestCoordinatorAllPeersDown(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(nil))
	dead.Close()

	co, err := NewCoordinator([]string{dead.URL}, CoordinatorOptions{
		PeerTimeout: 100 * time.Millisecond, Retries: 1, Backoff: time.Millisecond,
		Telemetry: telemetry.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(co)
	defer front.Close()

	code, body := getBody(t, front.URL+"/v1/fleet/summary")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("summary with no peers = %d (%s), want 503", code, body)
	}
	code, body = getBody(t, front.URL+"/v1/cluster/healthz")
	if code != http.StatusServiceUnavailable || !bytes.Contains(body, []byte(`"down"`)) {
		t.Fatalf("healthz with no peers = %d (%s), want 503/down", code, body)
	}
}

// TestCoordinatorHealthzAndRing: the operational endpoints answer and the
// ring view adds up.
func TestCoordinatorHealthzAndRing(t *testing.T) {
	f := newShardFixture(t, 2, 6, 300)
	co, err := NewCoordinator(f.urls, CoordinatorOptions{Telemetry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(co)
	defer front.Close()

	code, body := getBody(t, front.URL+"/v1/cluster/healthz")
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"ok"`)) {
		t.Fatalf("healthz = %d (%s)", code, body)
	}

	var ringView struct {
		Peers []struct {
			Peer        string  `json:"peer"`
			SampleShare float64 `json:"sample_share"`
		} `json:"peers"`
		VirtualNodes int `json:"virtual_nodes_per_peer"`
	}
	code, body = getBody(t, front.URL+"/v1/cluster/ring")
	if code != http.StatusOK {
		t.Fatalf("ring = %d", code)
	}
	if err := json.Unmarshal(body, &ringView); err != nil {
		t.Fatal(err)
	}
	if len(ringView.Peers) != 2 || ringView.VirtualNodes != DefaultVirtualNodes {
		t.Fatalf("ring view = %+v", ringView)
	}
	total := 0.0
	for _, p := range ringView.Peers {
		total += p.SampleShare
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("sample shares sum to %v, want 1", total)
	}
}
