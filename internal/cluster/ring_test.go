package cluster

import (
	"testing"
)

func TestRingCanonicalAcrossPeerOrder(t *testing.T) {
	a, err := NewRing([]string{"http://p1", "http://p2", "http://p3", "http://p4"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"http://p4", "http://p2", "http://p1", "http://p3", "http://p2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := a.Peers(), b.Peers()
	if len(pa) != 4 || len(pa) != len(pb) {
		t.Fatalf("peer lists differ: %v vs %v", pa, pb)
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("peer lists differ at %d: %v vs %v", i, pa, pb)
		}
	}
	for v := 1; v <= 5000; v++ {
		if a.Owner(v) != b.Owner(v) {
			t.Fatalf("vehicle %d owned by %s vs %s — ring is not canonical", v, a.Owner(v), b.Owner(v))
		}
	}
}

func TestRingBalance(t *testing.T) {
	r, err := NewRing([]string{"http://p1", "http://p2", "http://p3", "http://p4"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	const samples = 10000
	spread := r.Spread(samples)
	want := samples / 4
	for peer, n := range spread {
		if n < want/2 || n > want*2 {
			t.Errorf("peer %s owns %d of %d vehicles (ideal %d) — ring badly unbalanced", peer, n, samples, want)
		}
	}
	total := 0
	for _, n := range spread {
		total += n
	}
	if total != samples {
		t.Fatalf("spread covers %d of %d vehicles", total, samples)
	}
}

// TestRingStability: removing one peer must only remap vehicles that peer
// owned — everyone else keeps their shard. This is the property that makes
// the hash "consistent" rather than modulo.
func TestRingStability(t *testing.T) {
	peers := []string{"http://p1", "http://p2", "http://p3", "http://p4"}
	full, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewRing(peers[:3], 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for v := 1; v <= 10000; v++ {
		before := full.Owner(v)
		after := reduced.Owner(v)
		if before == "http://p4" {
			continue // p4's vehicles must move somewhere
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d vehicles not owned by the removed peer were remapped", moved)
	}
}

func TestRingRejectsBadInput(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty peer list accepted")
	}
	if _, err := NewRing([]string{"http://p1", ""}, 0); err == nil {
		t.Fatal("empty peer address accepted")
	}
}
