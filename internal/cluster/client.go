package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"decos/internal/sim"
	"decos/internal/telemetry"
	"decos/internal/trace"
)

// Encoding selects the wire encoding the client prefers for uplink batches.
type Encoding int

const (
	// EncodingBinary posts batches in the binary trace encoding, falling
	// back to NDJSON per peer when a pre-binary peer answers 415. The
	// default: the binary decode path is what lets a single fleetd peer
	// keep up with the fleet.
	EncodingBinary Encoding = iota
	// EncodingNDJSON posts NDJSON unconditionally — byte-compatible with
	// the pre-binary client.
	EncodingNDJSON
)

// ClientOptions tunes the uplink client. Zero values select defaults.
type ClientOptions struct {
	// HTTPClient performs the POSTs (default: 30 s total timeout).
	HTTPClient *http.Client
	// MaxBatchBytes flushes a peer's buffer once it reaches this size
	// (default 256 KiB). A single vehicle trace larger than the limit is
	// sent as one oversized batch — a vehicle's stream is never split
	// across batches out of order.
	MaxBatchBytes int
	// MaxRetries bounds re-sends of one batch after the first attempt
	// (default 5). A batch that exhausts its retries is dropped and
	// reported through the flush error and Stats.
	MaxRetries int
	// BaseBackoff is the first retry delay (default 50 ms); it doubles
	// per attempt up to MaxBackoff (default 5 s) with ±25 % jitter. A 429
	// Retry-After hint raises the delay to the server's schedule, still
	// capped by MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed feeds the jitter stream (default 1); fixed seeds keep load
	// tests reproducible.
	Seed uint64
	// IngestPath is the peers' ingest route (default "/v1/ingest").
	IngestPath string
	// Encoding is the preferred batch wire encoding (default binary,
	// with automatic per-peer NDJSON fallback on 415).
	Encoding Encoding
	// Telemetry, when non-nil, receives the client's retry, rejection and
	// per-peer routing counters.
	Telemetry *telemetry.Registry
}

// ClientStats is a point-in-time copy of the client's counters.
type ClientStats struct {
	Events         int64 // trace events routed
	Batches        int64 // batches delivered
	Retries        int64 // re-sent batches (any retryable failure)
	Rejected       int64 // 429 responses observed
	DroppedBatches int64 // batches abandoned after MaxRetries
	Fallbacks      int64 // binary batches re-sent as NDJSON after a peer's 415
	CorruptDropped int64 // records dropped while transcoding between encodings
}

// Client is the fleet-uplink side of the cluster: it routes each vehicle's
// trace — NDJSON or binary, sniffed per blob — to the ring owner, buffers
// per peer in the preferred wire encoding, and delivers batches with
// bounded, jittered, server-hint-aware retries. A peer that refuses the
// binary encoding with 415 is remembered as legacy and served NDJSON from
// then on. Safe for concurrent use by many uplink workers.
type Client struct {
	ring *Ring
	opts ClientOptions
	bufs []*peerBuf

	rngMu sync.Mutex
	rng   *sim.RNG

	// sleep is swapped out by tests to observe backoff decisions.
	sleep func(context.Context, time.Duration) error

	events    *telemetry.Counter
	batches   *telemetry.Counter
	retries   *telemetry.Counter
	rejected  *telemetry.Counter
	dropped   *telemetry.Counter
	fallbacks *telemetry.Counter
	corruptC  *telemetry.Counter
	routed    []*telemetry.Counter

	statEvents, statBatches, statRetries, statRejected, statDropped atomic.Int64
	statFallbacks, statCorrupt                                      atomic.Int64
}

type peerBuf struct {
	mu     sync.Mutex
	buf    bytes.Buffer // record bytes only: binary batches get their header at send time
	events int64
	format trace.Format // encoding of the buffered bytes
	legacy atomic.Bool  // peer answered 415 to binary: stay NDJSON
}

// take drains the buffer into a send-ready batch under pb.mu.
func (pb *peerBuf) take() (payload []byte, events int64, format trace.Format) {
	payload = append([]byte(nil), pb.buf.Bytes()...)
	events = pb.events
	format = pb.format
	pb.buf.Reset()
	pb.events = 0
	return payload, events, format
}

// NewClient builds a client over the ring.
func NewClient(ring *Ring, opts ClientOptions) *Client {
	if opts.HTTPClient == nil {
		opts.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	}
	if opts.MaxBatchBytes <= 0 {
		opts.MaxBatchBytes = 256 << 10
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 5
	}
	if opts.BaseBackoff <= 0 {
		opts.BaseBackoff = 50 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 5 * time.Second
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.IngestPath == "" {
		opts.IngestPath = "/v1/ingest"
	}
	c := &Client{
		ring:  ring,
		opts:  opts,
		bufs:  make([]*peerBuf, len(ring.peers)),
		rng:   sim.NewRNG(opts.Seed),
		sleep: sleepCtx,

		events:    opts.Telemetry.Counter("cluster.client.events"),
		batches:   opts.Telemetry.Counter("cluster.client.batches"),
		retries:   opts.Telemetry.Counter("cluster.client.retries"),
		rejected:  opts.Telemetry.Counter("cluster.client.rejected"),
		dropped:   opts.Telemetry.Counter("cluster.client.dropped_batches"),
		fallbacks: opts.Telemetry.Counter("cluster.client.fallbacks"),
		corruptC:  opts.Telemetry.Counter("cluster.client.corrupt_dropped"),
	}
	for i := range c.bufs {
		c.bufs[i] = &peerBuf{}
		c.routed = append(c.routed, opts.Telemetry.Counter("cluster.route."+c.ring.peers[i]))
	}
	return c
}

// Ring returns the routing ring the client was built over.
func (c *Client) Ring() *Ring { return c.ring }

// batch is one send-ready unit: record bytes plus the encoding they are in.
type batch struct {
	payload []byte
	events  int64
	format  trace.Format
}

// AddTrace routes one vehicle's trace blob — NDJSON or binary, sniffed
// from its first bytes — to its owning peer's buffer, flushing that peer
// when the batch limit is reached. The blob is converted once, at
// admission, into the peer's wire encoding; an NDJSON blob bound for an
// NDJSON peer passes through byte-for-byte (missing trailing newline
// repaired), exactly as the pre-binary client did.
func (c *Client) AddTrace(ctx context.Context, vehicle int, blob []byte) error {
	if len(blob) == 0 {
		return nil
	}
	peer := c.ring.OwnerIndex(vehicle)
	pb := c.bufs[peer]

	target := trace.FormatBinary
	if c.opts.Encoding == EncodingNDJSON || pb.legacy.Load() {
		target = trace.FormatNDJSON
	}

	var body []byte
	var events int64
	addNewline := false
	switch {
	case target == trace.FormatNDJSON && !trace.HasBinaryHeader(blob):
		body = blob
		events = int64(bytes.Count(blob, []byte{'\n'}))
		if blob[len(blob)-1] != '\n' {
			events++
			addNewline = true
		}
	case target == trace.FormatBinary && trace.HasBinaryHeader(blob):
		records, rbody, err := trace.ScanBinary(blob)
		if err != nil {
			return fmt.Errorf("cluster: vehicle %d trace: %w", vehicle, err)
		}
		body, events = rbody, int64(records)
	default: // cross-encoding: transcode the vehicle blob once
		out, n, corrupt, err := trace.TranscodeBytes(blob, target)
		if err != nil {
			return fmt.Errorf("cluster: vehicle %d trace: %w", vehicle, err)
		}
		if corrupt > 0 {
			c.corruptC.Add(int64(corrupt))
			c.statCorrupt.Add(int64(corrupt))
		}
		events = int64(n)
		body = out
		if target == trace.FormatBinary {
			_, body, _ = trace.ScanBinary(out) // strip the stream header: buffers hold records only
		}
	}
	if events == 0 {
		return nil
	}
	c.routed[peer].Inc()
	c.events.Add(events)
	c.statEvents.Add(events)

	var out []batch
	pb.mu.Lock()
	if pb.buf.Len() > 0 && pb.format != target {
		// The peer's wire encoding changed (415 fallback) mid-buffer:
		// deliver the old-encoding remainder before mixing bytes.
		p, e, f := pb.take()
		out = append(out, batch{p, e, f})
	}
	pb.format = target
	pb.buf.Write(body)
	if addNewline {
		pb.buf.WriteByte('\n')
	}
	pb.events += events
	if pb.buf.Len() >= c.opts.MaxBatchBytes {
		p, e, f := pb.take()
		out = append(out, batch{p, e, f})
	}
	pb.mu.Unlock()

	var errs []error
	for _, b := range out {
		if err := c.send(ctx, peer, b); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Flush delivers every peer's buffered remainder. Call it once the event
// source is drained; per-peer failures are joined into one error.
func (c *Client) Flush(ctx context.Context) error {
	var errs []error
	for i, pb := range c.bufs {
		pb.mu.Lock()
		var b *batch
		if pb.buf.Len() > 0 {
			p, e, f := pb.take()
			b = &batch{p, e, f}
		}
		pb.mu.Unlock()
		if b != nil {
			if err := c.send(ctx, i, *b); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}

// Stats returns the client's delivery counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Events:         c.statEvents.Load(),
		Batches:        c.statBatches.Load(),
		Retries:        c.statRetries.Load(),
		Rejected:       c.statRejected.Load(),
		DroppedBatches: c.statDropped.Load(),
		Fallbacks:      c.statFallbacks.Load(),
		CorruptDropped: c.statCorrupt.Load(),
	}
}

// errUnsupportedMedia marks a peer's 415 to a binary batch: not a
// failure of the batch but of the encoding — handled by falling back to
// NDJSON, not by backoff.
var errUnsupportedMedia = errors.New("peer does not accept the binary trace encoding (415)")

// send delivers one batch to one peer with bounded retries. 429 and 5xx
// are retryable (the former on the server's Retry-After schedule); a 415
// to a binary batch re-sends the same events as NDJSON immediately and
// marks the peer legacy; other 4xx are permanent.
func (c *Client) send(ctx context.Context, peer int, b batch) error {
	url := c.ring.peers[peer] + c.opts.IngestPath
	payload := b.payload
	if b.format == trace.FormatBinary {
		payload = append(trace.AppendHeader(nil), b.payload...)
	}
	for attempt := 0; ; attempt++ {
		hint, err := c.post(ctx, url, payload)
		if err == nil {
			c.batches.Inc()
			c.statBatches.Add(1)
			return nil
		}
		if errors.Is(err, errUnsupportedMedia) {
			nd, _, corrupt, terr := trace.TranscodeBytes(payload, trace.FormatNDJSON)
			if terr != nil {
				c.dropped.Inc()
				c.statDropped.Add(1)
				return fmt.Errorf("cluster: peer %s: NDJSON fallback failed: %w", c.ring.peers[peer], terr)
			}
			c.bufs[peer].legacy.Store(true)
			c.fallbacks.Inc()
			c.statFallbacks.Add(1)
			if corrupt > 0 {
				c.corruptC.Add(int64(corrupt))
				c.statCorrupt.Add(int64(corrupt))
			}
			payload = nd
			attempt-- // the fallback re-send is not a retry
			continue
		}
		var perm *permanentError
		if errors.As(err, &perm) || ctx.Err() != nil {
			c.dropped.Inc()
			c.statDropped.Add(1)
			return fmt.Errorf("cluster: peer %s: %w", c.ring.peers[peer], err)
		}
		if attempt >= c.opts.MaxRetries {
			c.dropped.Inc()
			c.statDropped.Add(1)
			return fmt.Errorf("cluster: peer %s: %d events dropped after %d attempts: %w",
				c.ring.peers[peer], b.events, attempt+1, err)
		}
		c.retries.Inc()
		c.statRetries.Add(1)
		if err := c.sleep(ctx, c.backoff(attempt, hint)); err != nil {
			c.dropped.Inc()
			c.statDropped.Add(1)
			return fmt.Errorf("cluster: peer %s: %w", c.ring.peers[peer], err)
		}
	}
}

// permanentError marks a response no retry can fix.
type permanentError struct{ msg string }

func (e *permanentError) Error() string { return e.msg }

// post performs one attempt. It returns the server's Retry-After hint (0
// when absent) alongside a retryable or permanent error.
func (c *Client) post(ctx context.Context, url string, payload []byte) (time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return 0, &permanentError{msg: err.Error()}
	}
	binary := trace.HasBinaryHeader(payload)
	if binary {
		req.Header.Set("Content-Type", trace.ContentTypeBinary)
	} else {
		req.Header.Set("Content-Type", trace.ContentTypeNDJSON)
	}
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		return 0, err // network failure: retryable
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusOK:
		return 0, nil
	case resp.StatusCode == http.StatusUnsupportedMediaType && binary:
		return 0, errUnsupportedMedia
	case resp.StatusCode == http.StatusTooManyRequests:
		c.rejected.Inc()
		c.statRejected.Add(1)
		var hint time.Duration
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
				hint = time.Duration(secs) * time.Second
			}
		}
		return hint, fmt.Errorf("ingest rejected (429)")
	case resp.StatusCode >= 500:
		return 0, fmt.Errorf("server error %d", resp.StatusCode)
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return 0, &permanentError{msg: fmt.Sprintf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))}
	}
}

// backoff computes the wait before retry #attempt: exponential from
// BaseBackoff, raised to the server's hint when larger, capped at
// MaxBackoff, with ±25 % jitter so a fleet of stalled uplinks does not
// retry in lockstep.
func (c *Client) backoff(attempt int, hint time.Duration) time.Duration {
	d := c.opts.BaseBackoff << uint(attempt)
	if d <= 0 || d > c.opts.MaxBackoff { // <<-overflow guards included
		d = c.opts.MaxBackoff
	}
	if hint > d {
		d = hint
	}
	if d > c.opts.MaxBackoff {
		d = c.opts.MaxBackoff
	}
	c.rngMu.Lock()
	jitter := 0.75 + 0.5*c.rng.Float64()
	c.rngMu.Unlock()
	return time.Duration(float64(d) * jitter)
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
