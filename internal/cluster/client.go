package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"decos/internal/sim"
	"decos/internal/telemetry"
)

// ClientOptions tunes the uplink client. Zero values select defaults.
type ClientOptions struct {
	// HTTPClient performs the POSTs (default: 30 s total timeout).
	HTTPClient *http.Client
	// MaxBatchBytes flushes a peer's buffer once it reaches this size
	// (default 256 KiB). A single vehicle trace larger than the limit is
	// sent as one oversized batch — a vehicle's stream is never split
	// across batches out of order.
	MaxBatchBytes int
	// MaxRetries bounds re-sends of one batch after the first attempt
	// (default 5). A batch that exhausts its retries is dropped and
	// reported through the flush error and Stats.
	MaxRetries int
	// BaseBackoff is the first retry delay (default 50 ms); it doubles
	// per attempt up to MaxBackoff (default 5 s) with ±25 % jitter. A 429
	// Retry-After hint raises the delay to the server's schedule, still
	// capped by MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed feeds the jitter stream (default 1); fixed seeds keep load
	// tests reproducible.
	Seed uint64
	// IngestPath is the peers' ingest route (default "/v1/ingest").
	IngestPath string
	// Telemetry, when non-nil, receives the client's retry, rejection and
	// per-peer routing counters.
	Telemetry *telemetry.Registry
}

// ClientStats is a point-in-time copy of the client's counters.
type ClientStats struct {
	Events         int64 // NDJSON events routed
	Batches        int64 // batches delivered
	Retries        int64 // re-sent batches (any retryable failure)
	Rejected       int64 // 429 responses observed
	DroppedBatches int64 // batches abandoned after MaxRetries
}

// Client is the fleet-uplink side of the cluster: it routes each vehicle's
// NDJSON trace to the ring owner, buffers per peer, and delivers batches
// with bounded, jittered, server-hint-aware retries. Safe for concurrent
// use by many uplink workers.
type Client struct {
	ring *Ring
	opts ClientOptions
	bufs []*peerBuf

	rngMu sync.Mutex
	rng   *sim.RNG

	// sleep is swapped out by tests to observe backoff decisions.
	sleep func(context.Context, time.Duration) error

	events   *telemetry.Counter
	batches  *telemetry.Counter
	retries  *telemetry.Counter
	rejected *telemetry.Counter
	dropped  *telemetry.Counter
	routed   []*telemetry.Counter

	statEvents, statBatches, statRetries, statRejected, statDropped atomic.Int64
}

type peerBuf struct {
	mu     sync.Mutex
	buf    bytes.Buffer
	events int64
}

// NewClient builds a client over the ring.
func NewClient(ring *Ring, opts ClientOptions) *Client {
	if opts.HTTPClient == nil {
		opts.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	}
	if opts.MaxBatchBytes <= 0 {
		opts.MaxBatchBytes = 256 << 10
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 5
	}
	if opts.BaseBackoff <= 0 {
		opts.BaseBackoff = 50 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 5 * time.Second
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.IngestPath == "" {
		opts.IngestPath = "/v1/ingest"
	}
	c := &Client{
		ring:  ring,
		opts:  opts,
		bufs:  make([]*peerBuf, len(ring.peers)),
		rng:   sim.NewRNG(opts.Seed),
		sleep: sleepCtx,

		events:   opts.Telemetry.Counter("cluster.client.events"),
		batches:  opts.Telemetry.Counter("cluster.client.batches"),
		retries:  opts.Telemetry.Counter("cluster.client.retries"),
		rejected: opts.Telemetry.Counter("cluster.client.rejected"),
		dropped:  opts.Telemetry.Counter("cluster.client.dropped_batches"),
	}
	for i := range c.bufs {
		c.bufs[i] = &peerBuf{}
		c.routed = append(c.routed, opts.Telemetry.Counter("cluster.route."+c.ring.peers[i]))
	}
	return c
}

// Ring returns the routing ring the client was built over.
func (c *Client) Ring() *Ring { return c.ring }

// AddTrace routes one vehicle's NDJSON trace to its owning peer's buffer,
// flushing that peer when the batch limit is reached. The blob is treated
// as opaque NDJSON; a missing trailing newline is repaired so batches
// concatenate cleanly.
func (c *Client) AddTrace(ctx context.Context, vehicle int, ndjson []byte) error {
	if len(ndjson) == 0 {
		return nil
	}
	peer := c.ring.OwnerIndex(vehicle)
	events := int64(bytes.Count(ndjson, []byte{'\n'}))
	if ndjson[len(ndjson)-1] != '\n' {
		events++
	}
	c.routed[peer].Inc()
	c.events.Add(events)
	c.statEvents.Add(events)

	pb := c.bufs[peer]
	pb.mu.Lock()
	pb.buf.Write(ndjson)
	if ndjson[len(ndjson)-1] != '\n' {
		pb.buf.WriteByte('\n')
	}
	pb.events += events
	var payload []byte
	var batchEvents int64
	if pb.buf.Len() >= c.opts.MaxBatchBytes {
		payload = append([]byte(nil), pb.buf.Bytes()...)
		batchEvents = pb.events
		pb.buf.Reset()
		pb.events = 0
	}
	pb.mu.Unlock()

	if payload == nil {
		return nil
	}
	return c.send(ctx, peer, payload, batchEvents)
}

// Flush delivers every peer's buffered remainder. Call it once the event
// source is drained; per-peer failures are joined into one error.
func (c *Client) Flush(ctx context.Context) error {
	var errs []error
	for i, pb := range c.bufs {
		pb.mu.Lock()
		var payload []byte
		var events int64
		if pb.buf.Len() > 0 {
			payload = append([]byte(nil), pb.buf.Bytes()...)
			events = pb.events
			pb.buf.Reset()
			pb.events = 0
		}
		pb.mu.Unlock()
		if payload != nil {
			if err := c.send(ctx, i, payload, events); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}

// Stats returns the client's delivery counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Events:         c.statEvents.Load(),
		Batches:        c.statBatches.Load(),
		Retries:        c.statRetries.Load(),
		Rejected:       c.statRejected.Load(),
		DroppedBatches: c.statDropped.Load(),
	}
}

// send delivers one batch to one peer with bounded retries. 429 and 5xx
// are retryable (the former on the server's Retry-After schedule); other
// 4xx are permanent.
func (c *Client) send(ctx context.Context, peer int, payload []byte, events int64) error {
	url := c.ring.peers[peer] + c.opts.IngestPath
	for attempt := 0; ; attempt++ {
		hint, err := c.post(ctx, url, payload)
		if err == nil {
			c.batches.Inc()
			c.statBatches.Add(1)
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) || ctx.Err() != nil {
			c.dropped.Inc()
			c.statDropped.Add(1)
			return fmt.Errorf("cluster: peer %s: %w", c.ring.peers[peer], err)
		}
		if attempt >= c.opts.MaxRetries {
			c.dropped.Inc()
			c.statDropped.Add(1)
			return fmt.Errorf("cluster: peer %s: %d events dropped after %d attempts: %w",
				c.ring.peers[peer], events, attempt+1, err)
		}
		c.retries.Inc()
		c.statRetries.Add(1)
		if err := c.sleep(ctx, c.backoff(attempt, hint)); err != nil {
			c.dropped.Inc()
			c.statDropped.Add(1)
			return fmt.Errorf("cluster: peer %s: %w", c.ring.peers[peer], err)
		}
	}
}

// permanentError marks a response no retry can fix.
type permanentError struct{ msg string }

func (e *permanentError) Error() string { return e.msg }

// post performs one attempt. It returns the server's Retry-After hint (0
// when absent) alongside a retryable or permanent error.
func (c *Client) post(ctx context.Context, url string, payload []byte) (time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return 0, &permanentError{msg: err.Error()}
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		return 0, err // network failure: retryable
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusOK:
		return 0, nil
	case resp.StatusCode == http.StatusTooManyRequests:
		c.rejected.Inc()
		c.statRejected.Add(1)
		var hint time.Duration
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
				hint = time.Duration(secs) * time.Second
			}
		}
		return hint, fmt.Errorf("ingest rejected (429)")
	case resp.StatusCode >= 500:
		return 0, fmt.Errorf("server error %d", resp.StatusCode)
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return 0, &permanentError{msg: fmt.Sprintf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))}
	}
}

// backoff computes the wait before retry #attempt: exponential from
// BaseBackoff, raised to the server's hint when larger, capped at
// MaxBackoff, with ±25 % jitter so a fleet of stalled uplinks does not
// retry in lockstep.
func (c *Client) backoff(attempt int, hint time.Duration) time.Duration {
	d := c.opts.BaseBackoff << uint(attempt)
	if d <= 0 || d > c.opts.MaxBackoff { // <<-overflow guards included
		d = c.opts.MaxBackoff
	}
	if hint > d {
		d = hint
	}
	if d > c.opts.MaxBackoff {
		d = c.opts.MaxBackoff
	}
	c.rngMu.Lock()
	jitter := 0.75 + 0.5*c.rng.Float64()
	c.rngMu.Unlock()
	return time.Duration(float64(d) * jitter)
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
