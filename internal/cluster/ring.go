package cluster

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the number of points each peer contributes to the
// ring. The paper-scale fleets this partitions (millions of vehicles over
// tens of peers) are balanced to within a few percent at this density;
// values in the 64–128 band trade ring size against balance.
const DefaultVirtualNodes = 96

// Ring is a consistent-hash ring partitioning vehicle identities across
// fleetd peers. It is immutable once built and safe for concurrent use.
//
// Construction is canonical: the peer list is deduplicated and sorted, so
// every party that knows the same peer set — in any order — builds the
// same ring and routes every vehicle identically. That shared, static
// ownership law is what lets the ingest client and the coordinator agree
// without any coordination traffic, and what makes the merged fleet view
// well-defined (each vehicle's stream lands on exactly one peer).
type Ring struct {
	peers  []string
	vnodes int
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	peer int32
}

// NewRing builds a ring over the given peer addresses with vnodes virtual
// nodes per peer (≤ 0 selects DefaultVirtualNodes). Duplicate peers are
// collapsed; an empty peer list is an error.
func NewRing(peers []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(peers))
	var uniq []string
	for _, p := range peers {
		if p == "" {
			return nil, fmt.Errorf("cluster: empty peer address")
		}
		if !seen[p] {
			seen[p] = true
			uniq = append(uniq, p)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one peer")
	}
	sort.Strings(uniq)

	r := &Ring{peers: uniq, vnodes: vnodes, points: make([]ringPoint, 0, len(uniq)*vnodes)}
	for i, p := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hashString(p + "#" + strconv.Itoa(v)), peer: int32(i)})
		}
	}
	// Ties (two peers' virtual nodes colliding on a hash) break towards
	// the lexicographically smaller peer — peers are sorted, so the order
	// is canonical too.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].peer < r.points[j].peer
	})
	return r, nil
}

// Owner returns the peer that owns a vehicle.
func (r *Ring) Owner(vehicle int) string { return r.peers[r.OwnerIndex(vehicle)] }

// OwnerIndex returns the owning peer's index into Peers().
func (r *Ring) OwnerIndex(vehicle int) int {
	h := hashVehicle(vehicle)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the first point owns the arc past the last
	}
	return int(r.points[i].peer)
}

// Peers returns the canonical (sorted, deduplicated) peer list.
func (r *Ring) Peers() []string { return append([]string(nil), r.peers...) }

// VirtualNodes returns the per-peer virtual node count the ring was built
// with.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// Spread counts ownership over vehicles 1..samples — the balance a given
// peer set actually achieves, for telemetry and tests.
func (r *Ring) Spread(samples int) map[string]int {
	out := make(map[string]int, len(r.peers))
	for v := 1; v <= samples; v++ {
		out[r.Owner(v)]++
	}
	return out
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// hashVehicle hashes a vehicle identity onto the ring. FNV-1a over the
// fixed-width little-endian id: cheap, stdlib, and uncorrelated with the
// modulo striping the in-process collector uses.
func hashVehicle(v int) uint64 {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(int64(v)))
	h := fnv.New64a()
	h.Write(b[:])
	return mix64(h.Sum64())
}

// mix64 is a full-avalanche 64-bit finalizer (splitmix64's). Raw FNV of
// short, similar keys ("peer#3", "peer#4") lands on correlated ring arcs
// and skews ownership several-fold; the finalizer spreads the points
// uniformly so ~96 virtual nodes per peer balance to within a few
// percent.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
