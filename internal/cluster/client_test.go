package cluster

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"decos/internal/trace"
)

// testPeers spins up n ingest sinks that record which vehicles they saw
// and how many batches arrived.
type sinkPeer struct {
	srv     *httptest.Server
	mu      sync.Mutex
	bodies  [][]byte
	cts     []string
	batches atomic.Int64
}

func newSinkPeers(t *testing.T, n int) []*sinkPeer {
	t.Helper()
	peers := make([]*sinkPeer, n)
	for i := range peers {
		p := &sinkPeer{}
		p.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			var buf bytes.Buffer
			buf.ReadFrom(r.Body)
			p.mu.Lock()
			p.bodies = append(p.bodies, append([]byte(nil), buf.Bytes()...))
			p.cts = append(p.cts, r.Header.Get("Content-Type"))
			p.mu.Unlock()
			p.batches.Add(1)
			w.WriteHeader(http.StatusOK)
		}))
		t.Cleanup(p.srv.Close)
		peers[i] = p
	}
	return peers
}

// countEvents decodes a received batch body in whichever encoding it
// arrived and returns its event count.
func countEvents(t *testing.T, body []byte) int {
	t.Helper()
	rd, _ := trace.OpenReader(bytes.NewReader(body))
	n := 0
	if err := rd.ReadAll(func(trace.Event) { n++ }); err != nil {
		t.Fatal(err)
	}
	if rd.Corrupt() != 0 {
		t.Fatalf("batch carried %d corrupt records: %v", rd.Corrupt(), rd.CorruptErrors())
	}
	return n
}

func peerURLs(peers []*sinkPeer) []string {
	urls := make([]string, len(peers))
	for i, p := range peers {
		urls[i] = p.srv.URL
	}
	return urls
}

// TestClientRoutesByRing: every vehicle's blob lands on exactly the peer
// the ring names, and nothing is lost.
func TestClientRoutesByRing(t *testing.T) {
	peers := newSinkPeers(t, 3)
	ring, err := NewRing(peerURLs(peers), 0)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(ring, ClientOptions{MaxBatchBytes: 1 << 20})

	byPeer := map[string]int{}
	for v := 1; v <= 200; v++ {
		blob := []byte(`{"t_us":1,"kind":"frame","vehicle":` + strconv.Itoa(v) + `}` + "\n")
		byPeer[ring.Owner(v)]++
		if err := c.AddTrace(context.Background(), v, blob); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}

	for i, p := range peers {
		p.mu.Lock()
		var got int
		for _, b := range p.bodies {
			got += countEvents(t, b)
		}
		for _, ct := range p.cts {
			if ct != trace.ContentTypeBinary {
				t.Errorf("peer %d got Content-Type %q, want the binary default", i, ct)
			}
		}
		p.mu.Unlock()
		if want := byPeer[peers[i].srv.URL]; got != want {
			t.Errorf("peer %d received %d events, ring assigned %d", i, got, want)
		}
	}
	if st := c.Stats(); st.Events != 200 || st.DroppedBatches != 0 {
		t.Fatalf("stats = %+v, want 200 events, 0 drops", st)
	}
}

// TestClientBatching: the buffer flushes at the batch limit without
// waiting for Flush.
func TestClientBatching(t *testing.T) {
	peers := newSinkPeers(t, 1)
	ring, _ := NewRing(peerURLs(peers), 0)
	c := NewClient(ring, ClientOptions{MaxBatchBytes: 64})

	line := []byte(`{"t_us":1,"kind":"frame","vehicle":1}` + "\n")
	for i := 0; i < 20; i++ {
		if err := c.AddTrace(context.Background(), 1, line); err != nil {
			t.Fatal(err)
		}
	}
	if peers[0].batches.Load() == 0 {
		t.Fatal("no batch flushed before the explicit Flush despite exceeding MaxBatchBytes")
	}
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	var total int
	peers[0].mu.Lock()
	for _, b := range peers[0].bodies {
		total += countEvents(t, b)
	}
	peers[0].mu.Unlock()
	if total != 20 {
		t.Fatalf("peer received %d events, want 20", total)
	}
}

// TestClientNDJSONModeByteCompat: EncodingNDJSON must behave exactly like
// the pre-binary client — NDJSON blobs pass through byte-for-byte under
// the NDJSON content type.
func TestClientNDJSONModeByteCompat(t *testing.T) {
	peers := newSinkPeers(t, 1)
	ring, _ := NewRing(peerURLs(peers), 0)
	c := NewClient(ring, ClientOptions{Encoding: EncodingNDJSON})

	var want bytes.Buffer
	for v := 1; v <= 5; v++ {
		blob := []byte(`{"t_us":1,"kind":"frame","vehicle":` + strconv.Itoa(v) + `}`) // no trailing newline
		want.Write(blob)
		want.WriteByte('\n')
		if err := c.AddTrace(context.Background(), v, blob); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}

	peers[0].mu.Lock()
	defer peers[0].mu.Unlock()
	got := bytes.Join(peers[0].bodies, nil)
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("NDJSON-mode bytes differ from passthrough:\ngot  %q\nwant %q", got, want.Bytes())
	}
	for _, ct := range peers[0].cts {
		if ct != trace.ContentTypeNDJSON {
			t.Fatalf("NDJSON-mode Content-Type = %q", ct)
		}
	}
}

// TestClient415Fallback: a peer that refuses the binary encoding gets the
// same events re-sent as NDJSON on the spot, is remembered as legacy (no
// further binary attempts), and nothing is lost.
func TestClient415Fallback(t *testing.T) {
	var binaryPosts, ndjsonPosts atomic.Int64
	var mu sync.Mutex
	var received []byte
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Content-Type") == trace.ContentTypeBinary {
			binaryPosts.Add(1)
			w.WriteHeader(http.StatusUnsupportedMediaType)
			return
		}
		ndjsonPosts.Add(1)
		var buf bytes.Buffer
		buf.ReadFrom(r.Body)
		mu.Lock()
		received = append(received, buf.Bytes()...)
		mu.Unlock()
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	ring, _ := NewRing([]string{srv.URL}, 0)
	c := NewClient(ring, ClientOptions{MaxBatchBytes: 64, Seed: 7})
	var slept int
	c.sleep = func(ctx context.Context, d time.Duration) error { slept++; return nil }

	const n = 20
	for v := 1; v <= n; v++ {
		blob := []byte(`{"t_us":1,"kind":"frame","vehicle":` + strconv.Itoa(v) + `}` + "\n")
		if err := c.AddTrace(context.Background(), v, blob); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}

	if got := binaryPosts.Load(); got != 1 {
		t.Errorf("peer saw %d binary attempts, want exactly 1 before the legacy mark", got)
	}
	mu.Lock()
	total := countEvents(t, received)
	mu.Unlock()
	if total != n {
		t.Errorf("peer ingested %d events after fallback, want %d", total, n)
	}
	st := c.Stats()
	if st.Fallbacks != 1 || st.DroppedBatches != 0 || st.Events != n {
		t.Errorf("stats = %+v, want 1 fallback, 0 drops, %d events", st, n)
	}
	if st.Retries != 0 || slept != 0 {
		t.Errorf("fallback consumed retry budget: %d retries, %d sleeps", st.Retries, slept)
	}
}

// TestClientRetryAfterHint: a 429 with Retry-After must stretch the wait
// to the server's schedule (observed through the sleep hook), and the
// batch must eventually be delivered.
func TestClientRetryAfterHint(t *testing.T) {
	var rejections atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if rejections.Add(1) <= 2 {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	ring, _ := NewRing([]string{srv.URL}, 0)
	c := NewClient(ring, ClientOptions{Seed: 7})
	var waits []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		waits = append(waits, d)
		return nil
	}

	if err := c.AddTrace(context.Background(), 1, []byte(`{"t_us":1,"kind":"frame","vehicle":1}`+"\n")); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(waits) != 2 {
		t.Fatalf("client slept %d times, want 2 (one per 429)", len(waits))
	}
	for i, d := range waits {
		// 2 s hint with ±25 % jitter.
		if d < 1500*time.Millisecond || d > 2500*time.Millisecond {
			t.Errorf("wait %d = %v, outside the jittered Retry-After window [1.5s, 2.5s]", i, d)
		}
	}
	st := c.Stats()
	if st.Rejected != 2 || st.Retries != 2 || st.Batches != 1 || st.DroppedBatches != 0 {
		t.Fatalf("stats = %+v, want 2 rejections, 2 retries, 1 batch, 0 drops", st)
	}
}

// TestClientBoundedRetry: a persistently failing peer exhausts MaxRetries
// and the batch is dropped with an error — the client never hangs.
func TestClientBoundedRetry(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()

	ring, _ := NewRing([]string{srv.URL}, 0)
	c := NewClient(ring, ClientOptions{MaxRetries: 3, BaseBackoff: time.Millisecond, Seed: 7})
	var slept int
	c.sleep = func(ctx context.Context, d time.Duration) error { slept++; return nil }

	if err := c.AddTrace(context.Background(), 1, []byte(`{"t_us":1,"kind":"frame","vehicle":1}`+"\n")); err != nil {
		t.Fatal(err)
	}
	err := c.Flush(context.Background())
	if err == nil {
		t.Fatal("flush against a dead peer reported success")
	}
	if !strings.Contains(err.Error(), "dropped") {
		t.Fatalf("error does not name the drop: %v", err)
	}
	if slept != 3 {
		t.Fatalf("client retried %d times, want 3", slept)
	}
	if st := c.Stats(); st.DroppedBatches != 1 {
		t.Fatalf("stats = %+v, want 1 dropped batch", st)
	}
}

// TestClientPermanentErrorNoRetry: 4xx other than 429 is not retried.
func TestClientPermanentErrorNoRetry(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer srv.Close()

	ring, _ := NewRing([]string{srv.URL}, 0)
	c := NewClient(ring, ClientOptions{Seed: 7})
	c.sleep = func(ctx context.Context, d time.Duration) error { return nil }

	c.AddTrace(context.Background(), 1, []byte(`{"t_us":1,"kind":"frame","vehicle":1}`+"\n"))
	if err := c.Flush(context.Background()); err == nil {
		t.Fatal("400 reported as success")
	}
	if hits.Load() != 1 {
		t.Fatalf("permanent error hit the peer %d times, want 1", hits.Load())
	}
}
