package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"testing"

	"decos/internal/scenario"
	"decos/internal/telemetry"
	"decos/internal/trace"
	"decos/internal/warranty"
)

// TestClusterIntegration is the end-to-end path under -race: a traced
// campaign uplinked through the batching client into three fleetd peers,
// polled and merged by a coordinator, byte-identical to a single node
// that ingested the same corpus.
func TestClusterIntegration(t *testing.T) {
	const peersN = 3
	reg := telemetry.New()
	var urls []string
	for i := 0; i < peersN; i++ {
		srv := httptest.NewServer(warranty.NewServer(warranty.NewCollector(0), warranty.ServerOptions{
			PeerName: "peer-" + strconv.Itoa(i),
		}))
		defer srv.Close()
		urls = append(urls, srv.URL)
	}
	ring, err := NewRing(urls, 0)
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(ring, ClientOptions{MaxBatchBytes: 32 << 10, Telemetry: reg})
	single := warranty.NewCollector(0)

	c := scenario.Campaign{
		Vehicles:       15,
		Rounds:         600,
		Seed:           20050404,
		FaultFreeShare: 0.2,
		Workers:        1,
	}
	var uplinkErr error
	c.RunTraced(func(v int, ndjson []byte) {
		if _, _, err := single.IngestStream(bytes.NewReader(ndjson), 0); err != nil {
			t.Error(err)
		}
		if err := client.AddTrace(context.Background(), v, ndjson); err != nil && uplinkErr == nil {
			uplinkErr = err
		}
	})
	if uplinkErr != nil {
		t.Fatal(uplinkErr)
	}
	if err := client.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}

	co, err := NewCoordinator(urls, CoordinatorOptions{Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(co)
	defer front.Close()

	code, got := getBody(t, front.URL+"/v1/fleet/summary")
	if code != 200 {
		t.Fatalf("summary status %d: %s", code, got)
	}
	want, err := json.MarshalIndent(single.Summary(0), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if !bytes.Equal(got, want) {
		t.Fatalf("cluster summary diverged from single node over the uplinked corpus:\ngot  %s\nwant %s", got, want)
	}

	// The telemetry trail exists: events routed, batches delivered, polls
	// and merges counted.
	counters := reg.Snapshot().Counters
	if counters["cluster.client.events"] == 0 || counters["cluster.client.batches"] == 0 {
		t.Fatalf("client telemetry missing: %+v", counters)
	}
	if counters["cluster.polls"] == 0 || counters["cluster.merges"] == 0 {
		t.Fatalf("coordinator telemetry missing: %+v", counters)
	}
}

// newShardCluster spins up n fleetd shards and a client over them with
// the given wire encoding.
func newShardCluster(t *testing.T, n int, enc Encoding, namePrefix string) ([]string, *Client) {
	t.Helper()
	var urls []string
	for i := 0; i < n; i++ {
		srv := httptest.NewServer(warranty.NewServer(warranty.NewCollector(0), warranty.ServerOptions{
			PeerName: namePrefix + strconv.Itoa(i),
		}))
		t.Cleanup(srv.Close)
		urls = append(urls, srv.URL)
	}
	ring, err := NewRing(urls, 0)
	if err != nil {
		t.Fatal(err)
	}
	return urls, NewClient(ring, ClientOptions{MaxBatchBytes: 1 << 20, Encoding: enc})
}

// mergedSummaryJSON polls and merges the shards into the canonical
// indented summary encoding.
func mergedSummaryJSON(t *testing.T, urls []string) []byte {
	t.Helper()
	co, err := NewCoordinator(urls, CoordinatorOptions{Telemetry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := co.Merge(co.Poll(context.Background()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Cluster != nil {
		t.Fatal("full-coverage merge carries a coverage block")
	}
	got, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestClusterE13ByteIdentical scales the guarantee to the E13 trace
// corpus (the experiment the warranty engine was built around): the full
// 150-vehicle campaign split over a 4-shard cluster must merge to a
// summary byte-identical to the single-node run — whether the traces
// travel the wire in the binary encoding (the default) or as NDJSON.
// The campaign is run once; the blobs feed all three sides.
func TestClusterE13ByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("E13-scale corpus (150 vehicles x 3000 rounds) skipped in -short")
	}
	const shards = 4
	binURLs, binClient := newShardCluster(t, shards, EncodingBinary, "shard-bin-")
	ndURLs, ndClient := newShardCluster(t, shards, EncodingNDJSON, "shard-nd-")
	single := warranty.NewCollector(0)

	// E13 parameters (internal/experiments/e13_warranty.go).
	c := scenario.Campaign{
		Vehicles:       150,
		Rounds:         3000,
		Seed:           20050404,
		FaultFreeShare: 0.2,
	}
	c.RunTraced(func(v int, ndjson []byte) {
		if _, _, err := single.IngestStream(bytes.NewReader(ndjson), 0); err != nil {
			t.Error(err)
		}
		if err := binClient.AddTrace(context.Background(), v, ndjson); err != nil {
			t.Error(err)
		}
		if err := ndClient.AddTrace(context.Background(), v, ndjson); err != nil {
			t.Error(err)
		}
	})
	for _, cl := range []*Client{binClient, ndClient} {
		if err := cl.Flush(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if st := binClient.Stats(); st.CorruptDropped != 0 || st.Fallbacks != 0 {
		t.Fatalf("binary uplink stats = %+v, want no corrupt drops or fallbacks", st)
	}

	want, err := json.MarshalIndent(single.Summary(0), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	for name, urls := range map[string][]string{"binary": binURLs, "ndjson": ndURLs} {
		got := mergedSummaryJSON(t, urls)
		if !bytes.Equal(got, want) {
			t.Errorf("E13 4-shard merged summary over the %s wire is not byte-identical to the single-node summary", name)
		}
	}
}

// TestLoadGenDeterministic: the load generator is pure in (seed, vehicle)
// and its output survives the full ingest path.
func TestLoadGenDeterministic(t *testing.T) {
	g := LoadGen{Seed: 42, EventsPerVehicle: 50}
	a, b := g.VehicleTrace(7), g.VehicleTrace(7)
	if !bytes.Equal(a, b) {
		t.Fatal("load generator is not deterministic per vehicle")
	}
	if bytes.Equal(a, g.VehicleTrace(8)) {
		t.Fatal("distinct vehicles produced identical traces")
	}

	col := warranty.NewCollector(0)
	events, corrupt, err := col.IngestStream(bytes.NewReader(a), 0)
	if err != nil {
		t.Fatal(err)
	}
	if corrupt != 0 || events == 0 {
		t.Fatalf("loadgen trace: %d events, %d corrupt", events, corrupt)
	}
	if col.Malformed() != 0 {
		t.Fatalf("loadgen trace produced %d malformed events — generator emits invalid enums", col.Malformed())
	}
	if col.Vehicles() != 1 {
		t.Fatalf("loadgen trace seen as %d vehicles", col.Vehicles())
	}

	// The binary emission is deterministic too, and carries the identical
	// event sequence: transcoding it to NDJSON reproduces VehicleTrace
	// byte-for-byte.
	ba, bb := g.VehicleTraceBinary(7), g.VehicleTraceBinary(7)
	if !bytes.Equal(ba, bb) {
		t.Fatal("binary load generator is not deterministic per vehicle")
	}
	if bytes.Equal(ba, g.VehicleTraceBinary(8)) {
		t.Fatal("distinct vehicles produced identical binary traces")
	}
	nd, n, corrupt, err := trace.TranscodeBytes(ba, trace.FormatNDJSON)
	if err != nil || corrupt != 0 {
		t.Fatalf("binary loadgen transcode: corrupt=%d err=%v", corrupt, err)
	}
	if n != events {
		t.Fatalf("binary trace carries %d events, NDJSON %d", n, events)
	}
	if !bytes.Equal(nd, a) {
		t.Fatal("binary loadgen trace transcoded to NDJSON differs from VehicleTrace")
	}
}
