// Package cluster is the distribution layer that turns the single-process
// warranty daemon into a horizontally sharded service — the fleet-scale
// deployment the paper's Section V-B warranty arm assumes when it talks
// about correlating maintenance evidence over millions of vehicles.
//
// Three pieces, all stdlib-only:
//
//   - Ring: a consistent-hash ring over fleetd peers. Vehicles hash onto
//     the ring; each peer owns the arc behind its virtual nodes. Clients
//     and coordinator construct the ring from the same peer list and agree
//     on ownership without any coordination traffic.
//
//   - Client: the uplink side. Routes each vehicle's NDJSON trace to its
//     owning peer, batches per peer, and retries rejected or failed
//     batches with jittered exponential backoff, honouring the server's
//     Retry-After hint on 429.
//
//   - Coordinator: the query side. Polls every peer's
//     GET /v1/fleet/snapshot (per-peer timeout, bounded retries), folds
//     the shards' fleet tallies with fleet.Tally.Merge and their vehicle
//     states through the same summary fold a single node runs, and serves
//     the merged /v1/fleet/summary — bit-identical to a single-node run
//     over the same events, for any shard count and any merge order.
//     Failed, slow or corrupt peers degrade the view explicitly: the
//     response carries a cluster coverage block instead of silently
//     serving a short fleet.
//
// The determinism argument is split across two invariants: per-vehicle
// state is accumulated in stream order on exactly one peer (the ring's
// partition law), and the cross-vehicle fold orders vehicles ascending on
// whichever node runs it (warranty.summarize). Integer-only state — the
// fleet tally — additionally merges order-insensitively, which is what
// lets the coordinator fold shards in any order.
package cluster
