package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"decos/internal/telemetry"
	"decos/internal/warranty"
)

// CoordinatorOptions tunes the merge side. Zero values select defaults.
type CoordinatorOptions struct {
	// PeerTimeout bounds one snapshot attempt against one peer (default
	// 5 s). A peer slower than this is treated as down for the poll.
	PeerTimeout time.Duration
	// Retries is how many times a failed snapshot fetch is re-attempted
	// after the first try (default 2), with Backoff between attempts
	// (default 100 ms, doubling).
	Retries int
	Backoff time.Duration
	// HTTPClient performs the snapshot GETs (default: a fresh client;
	// per-attempt deadlines come from PeerTimeout).
	HTTPClient *http.Client
	// Threshold is the systematic-fault share for merged summaries
	// (warranty.DefaultThreshold when 0); overridable per request with
	// ?threshold= exactly like a single fleetd node.
	Threshold float64
	// SnapshotPath is the peers' snapshot route (default
	// "/v1/fleet/snapshot").
	SnapshotPath string
	// Telemetry, when non-nil, receives per-peer snapshot latency
	// histograms and poll/merge counters, and is served on /v1/metrics.
	Telemetry *telemetry.Registry
}

// PeerStatus reports one peer's part in the most recent poll.
type PeerStatus struct {
	Peer      string `json:"peer"`
	OK        bool   `json:"ok"`
	Error     string `json:"error,omitempty"`
	Attempts  int    `json:"attempts"`
	Vehicles  int    `json:"vehicles"`
	Events    int64  `json:"events"`
	LatencyNS int64  `json:"latency_ns"`
}

// Coverage qualifies a merged summary that is missing shards. It is only
// attached when coverage is partial, so a healthy cluster's summary stays
// byte-identical to a single node's.
type Coverage struct {
	Peers           int      `json:"peers"`
	PeersOK         int      `json:"peers_ok"`
	VehiclesCovered int      `json:"vehicles_covered"`
	Partial         bool     `json:"partial"`
	FailedPeers     []string `json:"failed_peers,omitempty"`
}

// MergedSummary is the coordinator's summary response: the warranty
// summary fields inline, plus an explicit cluster coverage block when any
// shard is missing.
type MergedSummary struct {
	*warranty.Summary
	Cluster *Coverage `json:"cluster,omitempty"`
}

// PollResult is everything one poll of the cluster produced.
type PollResult struct {
	Snapshots []*warranty.Snapshot // one per reachable, valid peer
	Status    []PeerStatus         // one per peer, ring order
}

// Coverage summarises the poll as the coverage block a merged summary
// would carry.
func (p *PollResult) Coverage() Coverage {
	cov := Coverage{Peers: len(p.Status)}
	for _, st := range p.Status {
		if st.OK {
			cov.PeersOK++
			cov.VehiclesCovered += st.Vehicles
		} else {
			cov.FailedPeers = append(cov.FailedPeers, st.Peer)
		}
	}
	cov.Partial = cov.PeersOK < cov.Peers
	return cov
}

// Coordinator polls every peer's snapshot endpoint and serves the merged
// fleet view. It owns no vehicle state of its own: every poll re-derives
// the view from the shards, so a restarted coordinator is immediately
// consistent.
type Coordinator struct {
	ring *Ring
	opts CoordinatorOptions
	mux  *http.ServeMux

	polls      *telemetry.Counter
	merges     *telemetry.Counter
	peerErrors *telemetry.Counter
	retries    *telemetry.Counter
	snapNS     []*telemetry.Histogram
}

// NewCoordinator builds a coordinator over the same peer list the ingest
// clients use; the shared canonical ring is what makes "every vehicle on
// exactly one peer" checkable at merge time.
func NewCoordinator(peers []string, opts CoordinatorOptions) (*Coordinator, error) {
	ring, err := NewRing(peers, 0)
	if err != nil {
		return nil, err
	}
	if opts.PeerTimeout <= 0 {
		opts.PeerTimeout = 5 * time.Second
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	} else if opts.Retries == 0 {
		opts.Retries = 2
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 100 * time.Millisecond
	}
	if opts.HTTPClient == nil {
		opts.HTTPClient = &http.Client{}
	}
	if opts.Threshold <= 0 {
		opts.Threshold = warranty.DefaultThreshold
	}
	if opts.SnapshotPath == "" {
		opts.SnapshotPath = "/v1/fleet/snapshot"
	}
	c := &Coordinator{
		ring: ring,
		opts: opts,
		mux:  http.NewServeMux(),

		polls:      opts.Telemetry.Counter("cluster.polls"),
		merges:     opts.Telemetry.Counter("cluster.merges"),
		peerErrors: opts.Telemetry.Counter("cluster.peer_errors"),
		retries:    opts.Telemetry.Counter("cluster.snapshot_retries"),
	}
	for _, p := range ring.Peers() {
		c.snapNS = append(c.snapNS, opts.Telemetry.Histogram("cluster.snapshot_ns."+p))
	}
	c.mux.HandleFunc("GET /v1/fleet/summary", c.handleSummary)
	c.mux.HandleFunc("GET /v1/cluster/healthz", c.handleHealthz)
	c.mux.HandleFunc("GET /v1/cluster/ring", c.handleRing)
	if opts.Telemetry != nil {
		c.mux.Handle("GET /v1/metrics", opts.Telemetry.Handler())
	}
	return c, nil
}

// Ring returns the coordinator's routing ring.
func (c *Coordinator) Ring() *Ring { return c.ring }

func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) { c.mux.ServeHTTP(w, r) }

// Poll fetches a snapshot from every peer concurrently, with per-peer
// timeout and bounded retries. Unreachable, slow or invalid peers do not
// fail the poll — they are reported per peer so the caller can decide
// whether a partial view is acceptable.
func (c *Coordinator) Poll(ctx context.Context) *PollResult {
	c.polls.Inc()
	peers := c.ring.Peers()
	res := &PollResult{Status: make([]PeerStatus, len(peers))}
	snaps := make([]*warranty.Snapshot, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			snaps[i], res.Status[i] = c.fetch(ctx, i, peer)
		}(i, p)
	}
	wg.Wait()
	for _, s := range snaps {
		if s != nil {
			res.Snapshots = append(res.Snapshots, s)
		}
	}
	return res
}

// fetch is one peer's snapshot with retries; invalid payloads count as
// peer failures (the peer is attributed, not the cluster).
func (c *Coordinator) fetch(ctx context.Context, idx int, peer string) (*warranty.Snapshot, PeerStatus) {
	st := PeerStatus{Peer: peer}
	var lastErr error
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if attempt > 0 {
			c.retries.Inc()
			wait := c.opts.Backoff << uint(attempt-1)
			if err := sleepCtx(ctx, wait); err != nil {
				break
			}
		}
		st.Attempts++
		start := time.Now()
		snap, err := c.fetchOnce(ctx, peer)
		lat := time.Since(start).Nanoseconds()
		c.snapNS[idx].Observe(lat)
		if err == nil {
			st.OK = true
			st.Error = ""
			st.Vehicles = len(snap.Vehicles)
			st.Events = snap.Events
			st.LatencyNS = lat
			return snap, st
		}
		lastErr = err
		st.LatencyNS = lat
		if ctx.Err() != nil {
			break
		}
	}
	c.peerErrors.Inc()
	st.Error = lastErr.Error()
	return nil, st
}

func (c *Coordinator) fetchOnce(ctx context.Context, peer string) (*warranty.Snapshot, error) {
	attemptCtx, cancel := context.WithTimeout(ctx, c.opts.PeerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(attemptCtx, http.MethodGet, peer+c.opts.SnapshotPath, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("snapshot status %d", resp.StatusCode)
	}
	var snap warranty.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("snapshot decode: %w", err)
	}
	if err := snap.Validate(); err != nil {
		return nil, fmt.Errorf("snapshot invalid: %w", err)
	}
	return &snap, nil
}

// Merge folds a poll into the cluster-wide summary. With full coverage
// the result is byte-identical to a single node over the same events and
// the coverage block is omitted; with partial coverage the summary spans
// the reachable shards and says so explicitly. Zero reachable peers is an
// error — an empty fleet and an unreachable fleet must not look alike.
func (c *Coordinator) Merge(poll *PollResult, threshold float64) (*MergedSummary, error) {
	if len(poll.Snapshots) == 0 {
		return nil, fmt.Errorf("cluster: no peers reachable (%d polled)", len(poll.Status))
	}
	if threshold <= 0 {
		threshold = c.opts.Threshold
	}
	sum, err := warranty.MergeSnapshots(poll.Snapshots, threshold)
	if err != nil {
		return nil, err
	}
	c.merges.Inc()
	out := &MergedSummary{Summary: sum}
	if cov := poll.Coverage(); cov.Partial {
		out.Cluster = &cov
	}
	return out, nil
}

// writeJSON matches warranty's encoder exactly — two-space indent,
// trailing newline — so a healthy cluster's merged summary is
// byte-identical to a single node's response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func (c *Coordinator) handleSummary(w http.ResponseWriter, r *http.Request) {
	threshold := c.opts.Threshold
	if t := r.URL.Query().Get("threshold"); t != "" {
		v, err := strconv.ParseFloat(t, 64)
		if err != nil || v <= 0 || v > 1 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "threshold must be in (0,1]"})
			return
		}
		threshold = v
	}
	poll := c.Poll(r.Context())
	merged, err := c.Merge(poll, threshold)
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, merged)
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	poll := c.Poll(r.Context())
	cov := poll.Coverage()
	status := "ok"
	code := http.StatusOK
	switch {
	case cov.PeersOK == 0:
		status = "down"
		code = http.StatusServiceUnavailable
	case cov.Partial:
		status = "degraded"
	}
	writeJSON(w, code, struct {
		Status   string       `json:"status"`
		Coverage Coverage     `json:"coverage"`
		Peers    []PeerStatus `json:"peer_status"`
	}{status, cov, poll.Status})
}

func (c *Coordinator) handleRing(w http.ResponseWriter, r *http.Request) {
	peers := c.ring.Peers()
	spread := c.ring.Spread(10000)
	type peerInfo struct {
		Peer         string  `json:"peer"`
		VirtualNodes int     `json:"virtual_nodes"`
		SampleShare  float64 `json:"sample_share"`
	}
	out := struct {
		Peers        []peerInfo `json:"peers"`
		VirtualNodes int        `json:"virtual_nodes_per_peer"`
		Samples      int        `json:"spread_samples"`
	}{VirtualNodes: c.ring.VirtualNodes(), Samples: 10000}
	sort.Strings(peers)
	for _, p := range peers {
		out.Peers = append(out.Peers, peerInfo{
			Peer:         p,
			VirtualNodes: c.ring.VirtualNodes(),
			SampleShare:  float64(spread[p]) / 10000,
		})
	}
	writeJSON(w, http.StatusOK, out)
}
