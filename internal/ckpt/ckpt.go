// Package ckpt is the binary encoding substrate of engine checkpoints
// ("DCS-C", wire version 1): a small, dependency-free codec every stateful
// subsystem uses to serialize its numeric state into one canonical byte
// stream, in the style of the binary trace format (DESIGN §11) — magic +
// version header, uvarint framing, zigzag varints for signed integers,
// IEEE 754 bits for float64 so every float round-trips exactly.
//
// A checkpoint stream is a header followed by named sections:
//
//	stream  = magic[4] version[1] section* end
//	section = uvarint(len(name)) name uvarint(len(body)) body
//	end     = uvarint(0)
//
// Section bodies are opaque to the framing; each subsystem owns its body
// layout (pinned by the golden fixture golden_ckpt_v1.bin). Sections are
// written and read in a fixed order — the checkpoint is canonical: two
// engines holding identical state serialize to identical bytes, which is
// what makes "restored run == uninterrupted run" testable at the byte
// level.
//
// Evolution rules mirror the trace codec: the version byte names the
// layout of every section; a decoder refuses versions it does not know,
// and any layout change bumps the version.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Magic opens every checkpoint stream. The first byte is outside ASCII so
// no text stream can alias it.
var Magic = [4]byte{0xD2, 'C', 'K', 'P'}

// Version is the current checkpoint wire version.
const Version = 1

// maxSectionBytes bounds one section body so a corrupt length prefix
// cannot drive an allocation by itself (64 MiB is orders of magnitude
// beyond any real cluster snapshot).
const maxSectionBytes = 64 << 20

// maxNameBytes bounds a section name.
const maxNameBytes = 256

// ErrBadMagic reports a stream that does not open with the checkpoint
// magic.
var ErrBadMagic = errors.New("ckpt: bad magic (not a checkpoint stream)")

// Encoder builds one checkpoint stream section by section. The zero value
// is not usable; construct with NewEncoder.
type Encoder struct {
	buf  []byte // current section body
	out  []byte // completed stream (header + finished sections)
	name string // current section name ("" = none open)
}

// NewEncoder returns an encoder with the stream header already written.
func NewEncoder() *Encoder {
	e := &Encoder{out: make([]byte, 0, 4096)}
	e.out = append(e.out, Magic[:]...)
	e.out = append(e.out, Version)
	return e
}

// Begin opens a named section; every Put call until End lands in its body.
func (e *Encoder) Begin(name string) {
	if e.name != "" {
		panic(fmt.Sprintf("ckpt: Begin(%q) with section %q still open", name, e.name))
	}
	if name == "" || len(name) > maxNameBytes {
		panic(fmt.Sprintf("ckpt: bad section name %q", name))
	}
	e.name = name
	e.buf = e.buf[:0]
}

// End closes the current section and appends it to the stream.
func (e *Encoder) End() {
	if e.name == "" {
		panic("ckpt: End without Begin")
	}
	e.out = binary.AppendUvarint(e.out, uint64(len(e.name)))
	e.out = append(e.out, e.name...)
	e.out = binary.AppendUvarint(e.out, uint64(len(e.buf)))
	e.out = append(e.out, e.buf...)
	e.name = ""
}

// Bytes finalizes the stream (terminator appended) and returns it. The
// encoder must not be used afterwards.
func (e *Encoder) Bytes() []byte {
	if e.name != "" {
		panic(fmt.Sprintf("ckpt: Bytes with section %q still open", e.name))
	}
	return binary.AppendUvarint(e.out, 0)
}

// WriteTo finalizes the stream and writes it to w.
func (e *Encoder) WriteTo(w io.Writer) (int64, error) {
	b := e.Bytes()
	n, err := w.Write(b)
	return int64(n), err
}

func (e *Encoder) Uvarint(v uint64)  { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *Encoder) Varint(v int64)    { e.buf = binary.AppendVarint(e.buf, v) }
func (e *Encoder) Int(v int)         { e.Varint(int64(v)) }
func (e *Encoder) Uint64(v uint64)   { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *Encoder) Float64(v float64) { e.Uint64(math.Float64bits(v)) }

// Float32 stores the exact IEEE 754 single-precision bits.
func (e *Encoder) Float32(v float32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, math.Float32bits(v))
}

func (e *Encoder) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf = append(e.buf, b)
}

// Bytes8 appends a length-prefixed byte string.
func (e *Encoder) Bytes8(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Decoder reads one checkpoint stream. Construct with NewDecoder; then
// Section/Need per section and the typed getters inside it. Decoding
// errors are sticky: the first corruption poisons every later read, so
// callers may check Err once after a batch of reads.
type Decoder struct {
	sections map[string][]byte
	order    []string
	body     []byte // current section remainder
	name     string
	err      error
}

// NewDecoder parses the framing of a complete checkpoint stream: header,
// section directory, terminator. Section bodies are not interpreted.
func NewDecoder(stream []byte) (*Decoder, error) {
	if len(stream) < len(Magic)+1 || [4]byte(stream[:4]) != Magic {
		return nil, ErrBadMagic
	}
	if v := stream[4]; v != Version {
		return nil, fmt.Errorf("ckpt: unsupported version %d (decoder knows %d)", v, Version)
	}
	d := &Decoder{sections: make(map[string][]byte)}
	rest := stream[5:]
	for {
		nameLen, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("ckpt: truncated section header at offset %d", len(stream)-len(rest))
		}
		rest = rest[n:]
		if nameLen == 0 {
			break // terminator
		}
		if nameLen > maxNameBytes || uint64(len(rest)) < nameLen {
			return nil, fmt.Errorf("ckpt: bad section name length %d", nameLen)
		}
		name := string(rest[:nameLen])
		rest = rest[nameLen:]
		bodyLen, n := binary.Uvarint(rest)
		if n <= 0 || bodyLen > maxSectionBytes || uint64(len(rest[n:])) < bodyLen {
			return nil, fmt.Errorf("ckpt: bad body length for section %q", name)
		}
		rest = rest[n:]
		if _, dup := d.sections[name]; dup {
			return nil, fmt.Errorf("ckpt: duplicate section %q", name)
		}
		d.sections[name] = rest[:bodyLen]
		d.order = append(d.order, name)
		rest = rest[bodyLen:]
	}
	return d, nil
}

// Sections returns the section names in stream order.
func (d *Decoder) Sections() []string { return d.order }

// Has reports whether the stream carries the named section.
func (d *Decoder) Has(name string) bool {
	_, ok := d.sections[name]
	return ok
}

// Section positions the decoder at the start of the named section;
// ok=false if the stream does not carry it.
func (d *Decoder) Section(name string) bool {
	body, ok := d.sections[name]
	if !ok {
		return false
	}
	d.body, d.name = body, name
	return true
}

// Need positions the decoder at a section that must exist.
func (d *Decoder) Need(name string) error {
	if !d.Section(name) {
		return fmt.Errorf("ckpt: missing section %q", name)
	}
	return nil
}

// Err returns the first decoding error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the unread byte count of the current section.
func (d *Decoder) Remaining() int { return len(d.body) }

func (d *Decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("ckpt: section %q: truncated or corrupt %s", d.name, what)
	}
}

func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.body)
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.body = d.body[n:]
	return v
}

func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.body)
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.body = d.body[n:]
	return v
}

func (d *Decoder) Int() int { return int(d.Varint()) }

func (d *Decoder) Uint64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.body) < 8 {
		d.fail("uint64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.body)
	d.body = d.body[8:]
	return v
}

func (d *Decoder) Float64() float64 { return math.Float64frombits(d.Uint64()) }

func (d *Decoder) Float32() float32 {
	if d.err != nil {
		return 0
	}
	if len(d.body) < 4 {
		d.fail("float32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.body)
	d.body = d.body[4:]
	return math.Float32frombits(v)
}

func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if len(d.body) < 1 {
		d.fail("bool")
		return false
	}
	v := d.body[0]
	d.body = d.body[1:]
	if v > 1 {
		d.fail("bool")
		return false
	}
	return v == 1
}

// Bytes8 reads a length-prefixed byte string. The returned slice aliases
// the stream; callers that retain it must copy.
func (d *Decoder) Bytes8() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > maxSectionBytes || uint64(len(d.body)) < n {
		d.fail("byte string")
		return nil
	}
	b := d.body[:n]
	d.body = d.body[n:]
	return b
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.Bytes8()) }

// Len is a checked slice-length read: a non-negative varint bounded by
// limit, so corrupt input cannot drive huge allocations.
func (d *Decoder) Len(limit int) int {
	n := d.Varint()
	if d.err != nil {
		return 0
	}
	if n < 0 || n > int64(limit) {
		d.fail(fmt.Sprintf("length (got %d, limit %d)", n, limit))
		return 0
	}
	return int(n)
}

// Snapshotter is the one interface every stateful subsystem implements for
// checkpointing: Snapshot serializes the subsystem's semantic state into
// the encoder's current section; Restore reads it back from the decoder's
// current section, overwriting in-memory state. Restore is called on a
// freshly reconstructed subsystem (same configuration, same build path),
// so it only carries mutable run state, never configuration.
type Snapshotter interface {
	Snapshot(e *Encoder)
	Restore(d *Decoder) error
}
