package sim

import (
	"fmt"
	"math"
)

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256**, seeded via splitmix64). The simulator does not use
// math/rand so that stream splitting is explicit: every subsystem draws from
// its own named stream, and adding a new fault scenario cannot perturb the
// draws seen by unrelated subsystems.
type RNG struct {
	s [4]uint64
}

func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from the given 64-bit seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded draws.
	bound := uint64(n)
	for {
		x := r.Uint64()
		hi, lo := mul64(x, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("sim: Exp with non-positive rate")
	}
	u := r.Float64()
	// 1-u is in (0,1], so the log is finite.
	return -math.Log(1-u) / rate
}

// Weibull returns a Weibull-distributed value with shape k and scale lambda.
// Shape k < 1 models infant mortality (decreasing hazard), k == 1 is
// exponential (constant hazard), k > 1 models wearout (increasing hazard) —
// the three regimes of the bathtub curve (paper Fig. 7).
func (r *RNG) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("sim: Weibull with non-positive parameter")
	}
	u := r.Float64()
	return scale * math.Pow(-math.Log(1-u), 1/shape)
}

// Norm returns a normally distributed value with the given mean and standard
// deviation, via the polar Box-Muller transform (the spare value is not
// cached, keeping the stream stateless between calls of different types).
func (r *RNG) Norm(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Poisson returns a Poisson-distributed count with the given mean, using
// inversion for small means and normal approximation for large ones.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 500 {
		n := int(r.Norm(mean, math.Sqrt(mean)) + 0.5)
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Streams hands out named, independent RNG streams derived from one master
// seed. Requesting the same name twice returns the same stream instance.
type Streams struct {
	master uint64
	open   map[string]*RNG
}

// NewStreams returns a stream factory for the given master seed.
func NewStreams(master uint64) *Streams {
	return &Streams{master: master, open: make(map[string]*RNG)}
}

// Stream returns the RNG stream with the given name, creating it on first
// use. The stream seed is a hash of the master seed and the name, so streams
// with different names are statistically independent.
func (st *Streams) Stream(name string) *RNG {
	if r, ok := st.open[name]; ok {
		return r
	}
	seed := st.master
	for _, b := range []byte(name) {
		seed = (seed ^ uint64(b)) * 0x100000001b3 // FNV-1a style mixing
	}
	x := seed
	r := NewRNG(splitmix64(&x))
	st.open[name] = r
	return r
}

// Substream returns a stream named by formatting args, convenient for
// per-entity streams such as Substream("component", 3).
func (st *Streams) Substream(parts ...any) *RNG {
	return st.Stream(fmt.Sprint(parts...))
}
