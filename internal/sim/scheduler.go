package sim

import (
	"container/heap"
	"context"
	"fmt"
)

// Event is a scheduled callback. Events with equal times fire in the order
// they were scheduled (FIFO tie-breaking), which keeps runs deterministic.
type Event struct {
	At       Time
	Name     string // for tracing and error messages
	Fire     func()
	fn       BoundFn // closure-free callback (AtFunc path)
	a0, a1   int64   // pre-bound arguments for fn
	seq      uint64
	index    int // heap index, -1 when not queued
	canceled bool
	pooled   bool // recycled onto the free list after firing
}

// BoundFn is the closure-free callback form used by AtFunc: a pre-bound
// function plus two integer arguments, so hot schedulers (the TDMA slot
// chain) avoid allocating a fresh closure per event.
type BoundFn func(a0, a1 int64)

// Canceled reports whether the event was canceled before firing.
func (e *Event) Canceled() bool { return e.canceled }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Scheduler is a deterministic discrete-event scheduler. It is not safe for
// concurrent use: the DECOS simulator is single-threaded by design so that a
// run is exactly reproducible from its seed.
type Scheduler struct {
	now       Time
	queue     eventQueue
	nextSeq   uint64
	fired     uint64
	scheduled uint64
	pooled    uint64
	stopped   bool

	// deadline is the horizon of the active Run/RunUntil call; InlineTo
	// refuses to advance the clock past it so inlined work never overruns
	// the caller's bound.
	deadline Time

	// free is the pool of recycled AtFunc events.
	free []*Event
}

// maxTime is the open-ended deadline used outside RunUntil.
const maxTime = Time(1<<63 - 1)

// NewScheduler returns a scheduler positioned at time zero.
func NewScheduler() *Scheduler {
	return &Scheduler{deadline: maxTime}
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Fired returns the number of events executed so far, for reporting.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Stats are the scheduler's lifetime event counters — the simulator's own
// telemetry. Reading them costs nothing; maintaining them is plain integer
// increments on paths that already touch the same cache lines.
type Stats struct {
	// Scheduled counts events enqueued (At and AtFunc; inlined
	// self-rescheduling via InlineTo does not enqueue and is visible as
	// Fired - Scheduled growth instead).
	Scheduled uint64
	// Fired counts events executed, including inlined advances.
	Fired uint64
	// Pooled counts AtFunc events recycled from the free list rather than
	// freshly allocated — the hit rate of the zero-allocation event pool.
	Pooled uint64
	// Pending is the current queue depth.
	Pending int
}

// Stats returns the current event counters. Not safe for use concurrently
// with the (single-threaded) simulation loop.
func (s *Scheduler) Stats() Stats {
	return Stats{Scheduled: s.scheduled, Fired: s.fired, Pooled: s.pooled, Pending: len(s.queue)}
}

// Pending returns the number of events still queued.
func (s *Scheduler) Pending() int { return len(s.queue) }

// At schedules fire to run at time at. Scheduling in the past panics: it is
// always a simulator bug, never a recoverable condition.
func (s *Scheduler) At(at Time, name string, fire func()) *Event {
	if at < s.now {
		panic(fmt.Sprintf("sim: event %q scheduled at %v before now %v", name, at, s.now))
	}
	e := &Event{At: at, Name: name, Fire: fire, seq: s.nextSeq}
	s.nextSeq++
	s.scheduled++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fire to run d after the current time.
func (s *Scheduler) After(d Duration, name string, fire func()) *Event {
	return s.At(s.now.Add(d), name, fire)
}

// AtFunc schedules a closure-free callback: fn(a0, a1) runs at time at. The
// backing Event is drawn from a free list and recycled immediately after
// firing, so — unlike At — no handle is returned and the event cannot be
// canceled. Use it for self-rescheduling hot paths.
func (s *Scheduler) AtFunc(at Time, name string, fn BoundFn, a0, a1 int64) {
	if at < s.now {
		panic(fmt.Sprintf("sim: event %q scheduled at %v before now %v", name, at, s.now))
	}
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free = s.free[:n-1]
		*e = Event{pooled: true}
		s.pooled++
	} else {
		e = &Event{pooled: true}
	}
	e.At, e.Name, e.fn, e.a0, e.a1, e.seq = at, name, fn, a0, a1, s.nextSeq
	s.nextSeq++
	s.scheduled++
	heap.Push(&s.queue, e)
}

// InlineTo advances the clock directly to t without going through the event
// queue — the fast path for a hot self-rescheduling callback that would
// otherwise push and immediately pop its own next event. It succeeds only
// when doing so is indistinguishable from scheduling and firing: no pending
// event is due at or before t, t does not overrun the active Run/RunUntil
// deadline, and Stop has not been called. On success the clock moves to t,
// the fired counter advances as if an event ran, and the caller proceeds
// inline; on failure the caller must schedule normally.
func (s *Scheduler) InlineTo(t Time) bool {
	if s.stopped || t < s.now || t > s.deadline {
		return false
	}
	if len(s.queue) > 0 && s.queue[0].At <= t {
		return false
	}
	s.now = t
	s.fired++
	return true
}

// Cancel removes a pending event. Canceling an already-fired or already-
// canceled event is a no-op.
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.canceled || e.index < 0 {
		if e != nil {
			e.canceled = true
		}
		return
	}
	e.canceled = true
	heap.Remove(&s.queue, e.index)
}

// Stop makes the current Run/RunUntil call return after the in-flight event
// completes. Pending events remain queued.
func (s *Scheduler) Stop() { s.stopped = true }

// Step fires the single next event, advancing time to it. It returns false
// when the queue is empty.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*Event)
	s.now = e.At
	s.fired++
	if e.Fire != nil {
		e.Fire()
	} else if e.fn != nil {
		e.fn(e.a0, e.a1)
	}
	if e.pooled {
		e.Fire, e.fn, e.Name = nil, nil, ""
		s.free = append(s.free, e)
	}
	return true
}

// RunUntil fires events in order until the queue is empty, Stop is called, or
// the next event would be after deadline. Time is left at the later of the
// last fired event and deadline.
func (s *Scheduler) RunUntil(deadline Time) {
	s.stopped = false
	s.deadline = deadline
	defer func() { s.deadline = maxTime }()
	for !s.stopped && len(s.queue) > 0 && s.queue[0].At <= deadline {
		s.Step()
	}
	if !s.stopped && s.now < deadline {
		s.now = deadline
	}
}

// Run fires events until the queue is empty or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	s.deadline = maxTime
	for !s.stopped && s.Step() {
	}
}

// ctxPollEvents is how many events RunUntilCtx fires between context
// polls. The poll is two loads on a cancellable context; amortizing it
// keeps the dispatch loop at its RunUntil cost while bounding cancellation
// latency to well under a simulated round.
const ctxPollEvents = 1024

// RunUntilCtx is RunUntil with cooperative cancellation: the context is
// polled every ctxPollEvents fired events, and on cancellation the loop
// stops after the in-flight event with the clock left mid-run (it does NOT
// jump to the deadline — the caller observes exactly how far the run got).
// It returns ctx.Err() when cancelled, nil on normal completion. A nil or
// never-cancelled context (Done() == nil) takes the plain RunUntil path
// with zero overhead, so existing deterministic runs are byte-identical.
func (s *Scheduler) RunUntilCtx(ctx context.Context, deadline Time) error {
	if ctx == nil || ctx.Done() == nil {
		s.RunUntil(deadline)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	s.stopped = false
	s.deadline = deadline
	defer func() { s.deadline = maxTime }()
	poll := ctxPollEvents
	for !s.stopped && len(s.queue) > 0 && s.queue[0].At <= deadline {
		s.Step()
		if poll--; poll == 0 {
			poll = ctxPollEvents
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if !s.stopped && s.now < deadline {
		s.now = deadline
	}
	return nil
}
