package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds matched %d/100 draws", same)
	}
}

func TestRNGZeroSeedWorks(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced degenerate stream")
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	f := func(n uint8) bool {
		m := int(n%100) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestIntnCoversAllValues(t *testing.T) {
	r := NewRNG(9)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		seen[r.Intn(5)] = true
	}
	for v := 0; v < 5; v++ {
		if !seen[v] {
			t.Errorf("Intn(5) never produced %d in 1000 draws", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ≈0.5", mean)
	}
}

func TestBoolEdges(t *testing.T) {
	r := NewRNG(4)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", p)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(5)
	const rate = 2.0
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Exp(rate)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1/rate) > 0.01 {
		t.Errorf("Exp(%v) mean = %v, want %v", rate, mean, 1/rate)
	}
}

func TestWeibullShapeOneIsExponential(t *testing.T) {
	r := NewRNG(6)
	sum := 0.0
	const n, scale = 200000, 3.0
	for i := 0; i < n; i++ {
		sum += r.Weibull(1, scale)
	}
	// Weibull(1, λ) has mean λ.
	if mean := sum / n; math.Abs(mean-scale) > 0.05 {
		t.Errorf("Weibull(1,%v) mean = %v, want %v", scale, mean, scale)
	}
}

func TestWeibullMean(t *testing.T) {
	// Weibull(k=2, λ) has mean λ·Γ(1.5) = λ·√π/2.
	r := NewRNG(8)
	const n, scale = 200000, 2.0
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Weibull(2, scale)
	}
	want := scale * math.Sqrt(math.Pi) / 2
	if mean := sum / n; math.Abs(mean-want) > 0.02 {
		t.Errorf("Weibull(2,%v) mean = %v, want %v", scale, mean, want)
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(10)
	const n, mu, sigma = 200000, 5.0, 2.0
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm(mu, sigma)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-mu) > 0.03 {
		t.Errorf("Norm mean = %v, want %v", mean, mu)
	}
	if math.Abs(math.Sqrt(variance)-sigma) > 0.03 {
		t.Errorf("Norm stddev = %v, want %v", math.Sqrt(variance), sigma)
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(11)
	for _, mean := range []float64{0.5, 4, 40, 800} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean)/mean > 0.03 {
			t.Errorf("Poisson(%v) mean = %v", mean, got)
		}
	}
	if NewRNG(1).Poisson(0) != 0 {
		t.Error("Poisson(0) != 0")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(12)
	f := func(n uint8) bool {
		m := int(n % 50)
		p := r.Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStreamsIndependentAndStable(t *testing.T) {
	st := NewStreams(99)
	a1 := st.Stream("alpha")
	b := st.Stream("beta")
	a2 := st.Stream("alpha")
	if a1 != a2 {
		t.Error("same name returned different stream instances")
	}
	if a1 == b {
		t.Error("different names returned the same stream")
	}
	// Two factories with the same master seed produce identical streams.
	st2 := NewStreams(99)
	x, y := st.Stream("gamma"), st2.Stream("gamma")
	for i := 0; i < 100; i++ {
		if x.Uint64() != y.Uint64() {
			t.Fatal("stream not reproducible across factories")
		}
	}
	// Different master seeds produce different streams.
	st3 := NewStreams(100)
	z := st3.Stream("gamma")
	if st2.Stream("delta").Uint64() == z.Uint64() && z.Uint64() == y.Uint64() {
		t.Error("streams suspiciously equal across seeds")
	}
}

func TestSubstreamNaming(t *testing.T) {
	st := NewStreams(1)
	if st.Substream("component", 3) != st.Stream("component3") {
		t.Error("Substream naming mismatch")
	}
}
