package sim

import (
	"fmt"
	"sort"

	"decos/internal/ckpt"
)

// Checkpoint support for the simulation substrate. A checkpoint is taken
// at a round boundary (between the last slot event of round R and the
// first of round R+1), so the scheduler's semantic state is exactly the
// clock: pending events are reconstructed by the owning subsystems (the
// TT bus re-arms its slot chain, the fault injector re-arms its tracked
// timers), and the event counters (fired/scheduled/pooled) are telemetry,
// not semantics — the InlineTo fast path makes them depend on dispatch
// history, so they are deliberately excluded from the wire format.

// Snapshot serializes the scheduler's semantic state: the current time.
func (s *Scheduler) Snapshot(e *ckpt.Encoder) {
	e.Varint(int64(s.now))
}

// Restore positions a freshly built scheduler at the checkpointed time.
// Every pending event is dropped — the subsystems that owned them re-arm
// their own continuations after their state is restored.
func (s *Scheduler) Restore(d *ckpt.Decoder) error {
	t := Time(d.Varint())
	if err := d.Err(); err != nil {
		return err
	}
	if t < s.now {
		return fmt.Errorf("sim: checkpoint time %v before current %v", t, s.now)
	}
	s.DropPending()
	s.now = t
	return nil
}

// DropPending cancels and discards every queued event. Pooled events are
// returned to the free list so a restored scheduler keeps the pool warm.
func (s *Scheduler) DropPending() {
	for _, e := range s.queue {
		e.index = -1
		e.canceled = true
		if e.pooled {
			e.Fire, e.fn, e.Name = nil, nil, ""
			s.free = append(s.free, e)
		}
	}
	s.queue = s.queue[:0]
}

// State returns the raw xoshiro256** state, for checkpointing.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState overwrites the generator state with a previously captured one.
func (r *RNG) SetState(s [4]uint64) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		panic("sim: RNG state must not be all zero")
	}
	r.s = s
}

// Snapshot serializes every open named stream's generator state, sorted
// by name so the encoding is canonical regardless of open order.
func (st *Streams) Snapshot(e *ckpt.Encoder) {
	names := make([]string, 0, len(st.open))
	for name := range st.open {
		names = append(names, name)
	}
	sort.Strings(names)
	e.Int(len(names))
	for _, name := range names {
		e.String(name)
		s := st.open[name].State()
		for _, w := range s {
			e.Uint64(w)
		}
	}
}

// Restore overwrites the states of the named streams. Streams not yet
// open are opened first (Stream derives the seed, then the captured state
// replaces it), so a stream that was first drawn from mid-run is restored
// even if the reconstruction has not touched it yet.
func (st *Streams) Restore(d *ckpt.Decoder) error {
	n := d.Len(1 << 20)
	for i := 0; i < n; i++ {
		name := d.String()
		var s [4]uint64
		for j := range s {
			s[j] = d.Uint64()
		}
		if d.Err() != nil {
			break
		}
		st.Stream(name).SetState(s)
	}
	return d.Err()
}
