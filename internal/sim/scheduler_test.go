package sim

import (
	"testing"
	"testing/quick"
)

func TestSchedulerFiresInTimeOrder(t *testing.T) {
	s := NewScheduler()
	var got []Time
	for _, at := range []Time{50, 10, 30, 20, 40} {
		at := at
		s.At(at, "e", func() { got = append(got, at) })
	}
	s.Run()
	want := []Time{10, 20, 30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSchedulerFIFOTieBreak(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(100, "tie", func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", got)
		}
	}
}

func TestSchedulerNowAdvances(t *testing.T) {
	s := NewScheduler()
	s.At(25, "a", func() {
		if s.Now() != 25 {
			t.Errorf("Now() = %v inside event at 25", s.Now())
		}
	})
	s.Run()
	if s.Now() != 25 {
		t.Errorf("final Now() = %v, want 25", s.Now())
	}
}

func TestSchedulerPastSchedulingPanics(t *testing.T) {
	s := NewScheduler()
	s.At(100, "advance", func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(50, "past", func() {})
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	e := s.At(10, "victim", func() { fired = true })
	s.Cancel(e)
	s.Run()
	if fired {
		t.Error("canceled event fired")
	}
	if !e.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
	// Double cancel is a no-op.
	s.Cancel(e)
	s.Cancel(nil)
}

func TestSchedulerCancelOneOfMany(t *testing.T) {
	s := NewScheduler()
	var got []string
	a := s.At(10, "a", func() { got = append(got, "a") })
	s.At(20, "b", func() { got = append(got, "b") })
	s.At(30, "c", func() { got = append(got, "c") })
	s.Cancel(a)
	s.Run()
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Errorf("got %v, want [b c]", got)
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	var fired int
	for _, at := range []Time{10, 20, 30, 40} {
		s.At(at, "e", func() { fired++ })
	}
	s.RunUntil(25)
	if fired != 2 {
		t.Errorf("fired %d events by t=25, want 2", fired)
	}
	if s.Now() != 25 {
		t.Errorf("Now() = %v after RunUntil(25)", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", s.Pending())
	}
	s.RunUntil(100)
	if fired != 4 {
		t.Errorf("fired %d events total, want 4", fired)
	}
	if s.Now() != 100 {
		t.Errorf("Now() = %v after RunUntil(100)", s.Now())
	}
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler()
	var fired int
	s.At(10, "a", func() { fired++; s.Stop() })
	s.At(20, "b", func() { fired++ })
	s.Run()
	if fired != 1 {
		t.Errorf("fired %d, want 1 (stopped after first)", fired)
	}
	if s.Pending() != 1 {
		t.Errorf("Pending() = %d after Stop, want 1", s.Pending())
	}
}

func TestSchedulerEventsScheduledDuringRun(t *testing.T) {
	s := NewScheduler()
	var got []Time
	s.At(10, "outer", func() {
		got = append(got, s.Now())
		s.After(5, "inner", func() { got = append(got, s.Now()) })
	})
	s.Run()
	if len(got) != 2 || got[0] != 10 || got[1] != 15 {
		t.Errorf("got %v, want [10 15]", got)
	}
}

func TestSchedulerFiredCounter(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 7; i++ {
		s.At(Time(i), "e", func() {})
	}
	s.Run()
	if s.Fired() != 7 {
		t.Errorf("Fired() = %d, want 7", s.Fired())
	}
}

// Property: for any set of event times, the scheduler fires them in
// non-decreasing time order and ends at the maximum time.
func TestSchedulerOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		s := NewScheduler()
		var fired []Time
		for _, u := range times {
			at := Time(u)
			s.At(at, "p", func() { fired = append(fired, at) })
		}
		s.Run()
		if len(fired) != len(times) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeArithmetic(t *testing.T) {
	base := Time(0).Add(3 * Millisecond)
	if base != 3000 {
		t.Errorf("3ms = %d µs, want 3000", base)
	}
	if base.Sub(Time(1000)) != 2*Millisecond {
		t.Errorf("Sub wrong: %v", base.Sub(Time(1000)))
	}
	if !Time(5).Before(Time(6)) || !Time(6).After(Time(5)) {
		t.Error("Before/After wrong")
	}
	if Time(2*Hour).Hours() != 2 {
		t.Errorf("Hours() = %v, want 2", Time(2*Hour).Hours())
	}
	if got := DurationFromHours(1.5); got != Duration(3*Hour)/2 {
		t.Errorf("DurationFromHours(1.5) = %v", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500µs"},
		{Time(2500 * Microsecond), "2.500ms"},
		{Time(3 * Second), "3.000s"},
		{Time(3 * Hour), "3.00h"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", int64(c.t), got, c.want)
		}
	}
}
