// Package sim provides the deterministic discrete-event simulation kernel
// underneath the DECOS cluster simulator: simulated time, an event scheduler
// with stable ordering, and per-subsystem random number streams.
//
// All of the higher layers (the time-triggered core network, the virtual
// networks, the fault injector and the diagnostic subsystem) are driven by a
// single Scheduler instance, so an entire cluster run is a pure function of
// its scenario configuration and master seed.
package sim

import "fmt"

// Time is a point in simulated time, expressed in microseconds since the
// start of the run. Microsecond granularity is sufficient to resolve TDMA
// slots (hundreds of microseconds) while keeping 64-bit arithmetic exact for
// runs that span simulated years (2^63 µs ≈ 292 000 years).
type Time int64

// Duration is a span of simulated time in microseconds.
type Duration int64

// Common durations, mirroring the time package but in simulated microseconds.
const (
	Microsecond Duration = 1
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
	Minute      Duration = 60 * Second
	Hour        Duration = 60 * Minute
	Day         Duration = 24 * Hour
	Year        Duration = 8766 * Hour // 365.25 days, the FIT convention
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Micros returns the time as an integer microsecond count.
func (t Time) Micros() int64 { return int64(t) }

// Seconds returns the time in seconds as a float, for reporting.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Hours returns the time in hours as a float, for reliability math.
func (t Time) Hours() float64 { return float64(t) / float64(Hour) }

func (t Time) String() string {
	switch {
	case t < Time(Millisecond):
		return fmt.Sprintf("%dµs", int64(t))
	case t < Time(Second):
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t < Time(Hour):
		return fmt.Sprintf("%.3fs", t.Seconds())
	default:
		return fmt.Sprintf("%.2fh", t.Hours())
	}
}

// Micros returns the duration as an integer microsecond count.
func (d Duration) Micros() int64 { return int64(d) }

// Seconds returns the duration in seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Hours returns the duration in hours.
func (d Duration) Hours() float64 { return float64(d) / float64(Hour) }

func (d Duration) String() string { return Time(d).String() }

// DurationFromHours converts a floating-point hour count to a Duration,
// rounding to the nearest microsecond. Used by the reliability models that
// work in hours (the FIT convention).
func DurationFromHours(h float64) Duration {
	return Duration(h*float64(Hour) + 0.5)
}
