package warranty

import (
	"encoding/json"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"decos/internal/telemetry"
	"decos/internal/trace"
)

// ServerOptions tunes the ingestion HTTP front end. Zero values select
// the defaults.
type ServerOptions struct {
	// MaxInflight bounds concurrently served ingest requests — the
	// ingest queue. A request arriving with the queue full is refused
	// with 429 so backpressure propagates to the uplink instead of
	// growing server memory. Default 64.
	MaxInflight int
	// MaxLineBytes bounds one NDJSON line per connection
	// (trace.DefaultMaxLineBytes when 0).
	MaxLineBytes int
	// MaxBodyBytes bounds one ingest request body (default 256 MiB).
	MaxBodyBytes int64
	// Threshold is the systematic-fault vehicle share for summaries
	// (DefaultThreshold when 0); overridable per request with
	// ?threshold=.
	Threshold float64
	// RetryAfter is the hint sent with every 429 rejection, in whole
	// seconds (Retry-After header), so clients back off on the server's
	// schedule instead of guessing. 0 selects the 1 s default; negative
	// sends an immediate-retry hint of 0 s (load tests).
	RetryAfter int
	// PeerName labels this shard in /v1/fleet/snapshot exports — how a
	// cluster coordinator attributes a corrupt or duplicated snapshot.
	PeerName string
	// Telemetry is the metrics registry the server publishes into and
	// serves on GET /v1/metrics. Nil creates a private registry: unlike
	// the simulator hot path, the HTTP front end always observes itself.
	Telemetry *telemetry.Registry
}

// Server exposes a Collector over HTTP (stdlib only):
//
//	POST /v1/ingest         trace events, NDJSON or binary by Content-Type (415 otherwise);
//	                        429 + Retry-After when the queue is full
//	GET  /v1/fleet/summary  fleet aggregate (?threshold= optional)
//	GET  /v1/fleet/snapshot canonical mergeable shard state (cluster coordination)
//	GET  /v1/fru/{id}       per-FRU drill-down (id URL-escaped)
//	GET  /v1/healthz        liveness + ingestion counters
//	GET  /v1/metrics        telemetry snapshot (?format=expvar for the flat view)
//
// The healthz ingestion counters are read from the same telemetry
// registry the metrics endpoint serves, so liveness and metrics can never
// disagree about how much the server has ingested or refused.
type Server struct {
	c        *Collector
	opts     ServerOptions
	sem      chan struct{}
	inflight atomic.Int64
	mux      *http.ServeMux

	retryAfter string

	metrics          *telemetry.Registry
	ingestRequests   *telemetry.Counter
	ingestRejected   *telemetry.Counter
	ingestEvents     *telemetry.Counter
	ingestCorrupt    *telemetry.Counter
	ingestBinary     *telemetry.Counter
	ingestUnsupp     *telemetry.Counter
	ingestNS         *telemetry.Histogram
	snapshotRequests *telemetry.Counter
	snapshotNS       *telemetry.Histogram
}

// NewServer wraps a collector with the HTTP API.
func NewServer(c *Collector, opts ServerOptions) *Server {
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = 64
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 256 << 20
	}
	if opts.Threshold <= 0 {
		opts.Threshold = DefaultThreshold
	}
	if opts.Telemetry == nil {
		opts.Telemetry = telemetry.New()
	}
	switch {
	case opts.RetryAfter == 0:
		opts.RetryAfter = 1
	case opts.RetryAfter < 0:
		opts.RetryAfter = 0
	}
	s := &Server{
		c:          c,
		opts:       opts,
		sem:        make(chan struct{}, opts.MaxInflight),
		mux:        http.NewServeMux(),
		retryAfter: strconv.Itoa(opts.RetryAfter),

		metrics:          opts.Telemetry,
		ingestRequests:   opts.Telemetry.Counter("ingest.requests"),
		ingestRejected:   opts.Telemetry.Counter("ingest.rejected"),
		ingestEvents:     opts.Telemetry.Counter("ingest.events"),
		ingestCorrupt:    opts.Telemetry.Counter("ingest.corrupt_lines"),
		ingestBinary:     opts.Telemetry.Counter("ingest.binary_requests"),
		ingestUnsupp:     opts.Telemetry.Counter("ingest.unsupported_media"),
		ingestNS:         opts.Telemetry.Histogram("ingest.request_ns"),
		snapshotRequests: opts.Telemetry.Counter("snapshot.requests"),
		snapshotNS:       opts.Telemetry.Histogram("snapshot.request_ns"),
	}
	// Store-derived values are computed at snapshot time: the collector's
	// own atomics (and per-shard locks) are the one source of truth.
	reg := opts.Telemetry
	reg.GaugeFunc("fleet.vehicles", func() int64 { return int64(c.Vehicles()) })
	reg.GaugeFunc("fleet.events", c.Events)
	reg.GaugeFunc("fleet.frames", c.Frames)
	reg.GaugeFunc("fleet.corrupt_lines", c.Corrupt)
	reg.GaugeFunc("fleet.malformed_events", c.Malformed)
	reg.GaugeFunc("warranty.shard_depth_max", func() int64 { max, _ := c.ShardDepth(); return int64(max) })
	reg.GaugeFunc("warranty.shard_depth_min", func() int64 { _, min := c.ShardDepth(); return int64(min) })
	reg.GaugeFunc("ingest.inflight", s.inflight.Load)

	s.mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	s.mux.HandleFunc("GET /v1/fleet/summary", s.handleSummary)
	s.mux.HandleFunc("GET /v1/fleet/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /v1/fru/{id...}", s.handleFRU)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.Handle("GET /v1/metrics", opts.Telemetry.Handler())
	return s
}

// Telemetry returns the registry the server publishes into (never nil).
func (s *Server) Telemetry() *telemetry.Registry { return s.metrics }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

// ingestMediaType classifies a request Content-Type for /v1/ingest:
// the binary trace media type, the NDJSON family (the historical default
// — an absent Content-Type still means NDJSON for interop with every
// pre-binary producer), or unsupported.
func ingestMediaType(ct string) (binary, ok bool) {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	switch strings.TrimSpace(strings.ToLower(ct)) {
	case trace.ContentTypeBinary:
		return true, true
	case "", trace.ContentTypeNDJSON, "application/json", "text/plain":
		return false, true
	}
	return false, false
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	s.ingestRequests.Inc()
	binary, ok := ingestMediaType(r.Header.Get("Content-Type"))
	if !ok {
		s.ingestUnsupp.Inc()
		w.Header().Set("Accept-Post", trace.ContentTypeBinary+", "+trace.ContentTypeNDJSON)
		writeJSON(w, http.StatusUnsupportedMediaType, errorBody{
			Error: "unsupported Content-Type; send " + trace.ContentTypeBinary + " or " + trace.ContentTypeNDJSON,
		})
		return
	}
	if binary {
		s.ingestBinary.Inc()
	}
	select {
	case s.sem <- struct{}{}:
	default:
		s.ingestRejected.Inc()
		w.Header().Set("Retry-After", s.retryAfter)
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "ingest queue full"})
		return
	}
	s.inflight.Add(1)
	start := time.Now()
	defer func() {
		s.ingestNS.Observe(time.Since(start).Nanoseconds())
		s.inflight.Add(-1)
		<-s.sem
	}()

	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	events, corrupt, err := s.c.IngestStream(body, s.opts.MaxLineBytes)
	s.ingestEvents.Add(int64(events))
	s.ingestCorrupt.Add(int64(corrupt))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Ingested int `json:"ingested"`
		Corrupt  int `json:"corrupt"`
	}{events, corrupt})
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	threshold := s.opts.Threshold
	if t := r.URL.Query().Get("threshold"); t != "" {
		v, err := strconv.ParseFloat(t, 64)
		if err != nil || v <= 0 || v > 1 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "threshold must be in (0,1]"})
			return
		}
		threshold = v
	}
	writeJSON(w, http.StatusOK, s.c.Summary(threshold))
}

// handleSnapshot serves the shard's complete mergeable state in the
// canonical versioned encoding — the coordination interface of a sharded
// fleetd cluster.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	s.snapshotRequests.Inc()
	start := time.Now()
	writeJSON(w, http.StatusOK, s.c.Snapshot(s.opts.PeerName))
	s.snapshotNS.Observe(time.Since(start).Nanoseconds())
}

func (s *Server) handleFRU(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if unescaped, err := url.PathUnescape(id); err == nil {
		id = unescaped
	}
	d, ok := s.c.FRU(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown FRU " + id})
		return
	}
	writeJSON(w, http.StatusOK, d)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status         string `json:"status"`
		Vehicles       int    `json:"vehicles"`
		Events         int64  `json:"events"`
		Corrupt        int64  `json:"corrupt_lines"`
		Malformed      int64  `json:"malformed_events"`
		Inflight       int64  `json:"inflight_ingests"`
		IngestRequests int64  `json:"ingest_requests"`
		IngestRejected int64  `json:"ingest_rejected"`
	}{"ok", s.c.Vehicles(), s.c.Events(), s.c.Corrupt(), s.c.Malformed(),
		s.inflight.Load(), s.ingestRequests.Value(), s.ingestRejected.Value()},
	)
}
