package warranty

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// StateFileName is the file decos-fleetd persists its collector into
// under -state-dir.
const StateFileName = "warranty-state.json"

// SaveState atomically writes the snapshot as JSON to path: the bytes
// land in a temporary file in the same directory first and are renamed
// over the target, so a crash mid-write leaves the previous state file
// intact rather than a truncated one.
func SaveState(path string, s *Snapshot) error {
	data, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("warranty: encoding state: %v", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, StateFileName+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadState reads and validates a state file written by SaveState. A
// missing file is returned as the raw os.IsNotExist error so the caller
// can distinguish a cold start from a corrupt state.
func LoadState(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("warranty: decoding %s: %v", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("warranty: %s: %v", path, err)
	}
	return &s, nil
}
