package warranty

import (
	"sort"

	"decos/internal/fleet"
	"decos/internal/maintenance"
)

// DecliningSlope is the trust-slope threshold (1/s of simulated time)
// below which a FRU's trajectory counts as a wearout trend — the fleet
// analogue of the Fig. 9 "trajectory A" shape.
const DecliningSlope = -0.01

// DefaultThreshold is the distinct-vehicle share above which a recurring
// job-inherent finding is classified as a systematic software design
// fault (Section V-C).
const DefaultThreshold = 0.15

// Arm is the audited performance of one diagnostic arm ("decos"/"obd")
// over every ingested ground-truth fault — the trace-fed reproduction of
// the E8 headline metrics.
type Arm struct {
	Audited        int     `json:"audited"`
	CorrectClass   int     `json:"correct_class"`
	CorrectActions int     `json:"correct_actions"`
	ClassAccuracy  float64 `json:"class_accuracy"`
	ActionAccuracy float64 `json:"action_accuracy"`
	TotalRemovals  int     `json:"total_removals"`
	NFFRemovals    int     `json:"nff_removals"`
	NFFRatio       float64 `json:"nff_ratio"`
	Missed         int     `json:"missed"`
	MissRatio      float64 `json:"miss_ratio"`
	Cost           float64 `json:"cost_usd"`
	FalseAlarms    int     `json:"false_alarms"`
}

// FleetStats is the Section V-C correlation result.
type FleetStats struct {
	Jobs       int             `json:"jobs"`
	Incidents  int             `json:"incidents"`
	Pareto20   float64         `json:"pareto_top20"`
	Systematic []fleet.JobStat `json:"job_stats,omitempty"`
}

// PatternStat is one ONA pattern's fleet-wide signature statistics
// (Fig. 8).
type PatternStat struct {
	Pattern  string  `json:"pattern"`
	Verdicts int     `json:"verdicts"`
	MeanConf float64 `json:"mean_confidence"`
	FRUs     int     `json:"frus"`
	Vehicles int     `json:"vehicles"`
}

// FRUStat is one FRU's fleet-wide trust and verdict aggregate.
type FRUStat struct {
	FRU            string  `json:"fru"`
	Vehicles       int     `json:"vehicles"`
	Verdicts       int     `json:"verdicts"`
	TrustSamples   int     `json:"trust_samples"`
	MeanFinalTrust float64 `json:"mean_final_trust"`
	MinTrust       float64 `json:"min_trust"`
	MeanSlope      float64 `json:"mean_slope_per_s"`
	Declining      int     `json:"declining_vehicles"`
}

// Summary is the fleet-level aggregate served by /v1/fleet/summary.
type Summary struct {
	Vehicles     int             `json:"vehicles"`
	FaultFree    int             `json:"fault_free"`
	Events       int64           `json:"events"`
	CorruptLines int64           `json:"corrupt_lines"`
	Malformed    int64           `json:"malformed_events"`
	Truths       int             `json:"ground_truth_faults"`
	Arms         map[string]*Arm `json:"arms"`
	Fleet        FleetStats      `json:"fleet"`
	Patterns     []PatternStat   `json:"patterns"`
	FRUs         []FRUStat       `json:"frus"`
}

// VehicleTrust is one vehicle's trust trajectory summary for a FRU.
type VehicleTrust struct {
	Vehicle  int     `json:"vehicle"`
	Samples  int     `json:"samples"`
	First    float64 `json:"first"`
	Last     float64 `json:"last"`
	Min      float64 `json:"min"`
	Slope    float64 `json:"slope_per_s"`
	Verdicts int     `json:"verdicts"`
}

// FRUDetail is the per-FRU drill-down served by /v1/fru/{id}.
type FRUDetail struct {
	FRUStat
	Patterns   map[string]int `json:"patterns,omitempty"`
	PerVehicle []VehicleTrust `json:"per_vehicle,omitempty"`
}

// lockAll takes every stripe so a summary observes a consistent snapshot;
// pairs with unlockAll.
func (c *Collector) lockAll() {
	for _, sh := range c.shards {
		sh.mu.Lock()
	}
}

func (c *Collector) unlockAll() {
	for _, sh := range c.shards {
		sh.mu.Unlock()
	}
}

// vehicleEntry pairs a vehicle id with its retained state — the unit the
// summary fold consumes, whether the states live in this collector or were
// reassembled from peer snapshots.
type vehicleEntry struct {
	id int
	st *vehicleState
}

// storeTotals carries the collector-level ingestion counters into a
// summary fold.
type storeTotals struct {
	events, corrupt, malformed int64
}

// sortedVehicles returns (id, state) pairs in ascending vehicle order.
// Callers hold all stripe locks. The fixed order makes every floating-
// point accumulation of the fold independent of ingestion concurrency.
func (c *Collector) sortedVehicles() []vehicleEntry {
	var out []vehicleEntry
	for _, sh := range c.shards {
		for id, st := range sh.vehicles {
			out = append(out, vehicleEntry{id, st})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Summary computes the fleet aggregate. threshold is the systematic-fault
// share (≤ 0 uses DefaultThreshold).
func (c *Collector) Summary(threshold float64) *Summary {
	c.lockAll()
	defer c.unlockAll()
	return summarize(c.sortedVehicles(),
		storeTotals{c.events.Load(), c.corrupt.Load(), c.malformed.Load()},
		threshold, nil)
}

// summarize is the one fold that turns per-vehicle states into the fleet
// Summary. vehicles must be sorted ascending by id: the fixed order pins
// every floating-point accumulation, which is what makes a coordinator's
// merged summary bit-identical to a single collector's — both run exactly
// this function over exactly this ordering.
//
// pre, when non-nil, is a pre-merged fleet tally (coordinator path:
// per-shard tallies folded with fleet.Tally.Merge); nil rebuilds the tally
// from the vehicles' incident lists (single-collector path). The two are
// interchangeable because the tally is pure integer state — the property
// TestTallyMergeOrderInsensitive pins.
func summarize(vehicles []vehicleEntry, totals storeTotals, threshold float64, pre *fleet.Tally) *Summary {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	s := &Summary{
		Vehicles:     len(vehicles),
		Events:       totals.events,
		CorruptLines: totals.corrupt,
		Malformed:    totals.malformed,
		Arms:         make(map[string]*Arm),
	}

	// Every arm must audit every ground-truth fault, so the source set is
	// fixed before any vehicle is folded in (a vehicle whose trace lacks
	// one arm's advice still counts against that arm — as missed faults).
	audits := make(map[string]*maintenance.ArmAudit)
	for _, v := range vehicles {
		for src := range v.st.advice {
			if audits[src] == nil {
				audits[src] = &maintenance.ArmAudit{}
			}
		}
	}
	tally := pre
	if tally == nil {
		tally = fleet.NewTally()
	}
	type patAgg struct {
		count    int
		sumConf  float64
		frus     map[string]bool
		vehicles int
	}
	pats := make(map[string]*patAgg)
	type fruAgg struct {
		vehicles     int
		verdicts     int
		trustSamples int
		sumFinal     float64
		finalN       int
		min          float64
		minSet       bool
		sumSlope     float64
		slopeN       int
		declining    int
	}
	frus := make(map[string]*fruAgg)

	for _, v := range vehicles {
		st := v.st
		if st.faultFree {
			s.FaultFree++
		}
		s.Truths += len(st.truths)

		// E8 audit: judge every ground-truth fault against each arm's
		// embedded advice — the identical accumulation the in-process
		// campaign audit runs (maintenance.ArmAudit over maintenance.Judge).
		for _, tr := range st.truths {
			for _, src := range sortedKeys(audits) {
				adv, found := st.advice[src][tr.subject]
				audits[src].Judged(tr.class, adv.class, adv.action, found)
			}
		}
		if st.faultFree {
			for _, src := range sortedKeys(audits) {
				for _, adv := range st.advice[src] {
					audits[src].HealthyAdvice(adv.action)
				}
			}
		}

		// Section V-C fleet correlation (already folded when a pre-merged
		// tally was handed in).
		if pre == nil {
			for _, job := range st.incidents {
				tally.Observe(v.id, job)
			}
		}

		// Fig. 8 pattern signatures.
		for name, p := range st.patterns {
			a := pats[name]
			if a == nil {
				a = &patAgg{frus: make(map[string]bool)}
				pats[name] = a
			}
			a.count += p.count
			a.sumConf += p.sumConf
			a.vehicles++
			for f := range p.subjects {
				a.frus[f] = true
			}
		}

		// Trust trajectories and wearout trends.
		for name, sub := range st.bySubject {
			a := frus[name]
			if a == nil {
				a = &fruAgg{}
				frus[name] = a
			}
			a.vehicles++
			a.verdicts += sub.verdicts
			a.trustSamples += sub.trust.n
			if sub.trust.n > 0 {
				a.sumFinal += sub.trust.last
				a.finalN++
				if !a.minSet || sub.trust.min < a.min {
					a.min, a.minSet = sub.trust.min, true
				}
			}
			if sub.trust.n >= 2 {
				sl := sub.trust.slope()
				a.sumSlope += sl
				a.slopeN++
				if sl < DecliningSlope {
					a.declining++
				}
			}
		}
	}

	for src, audit := range audits {
		rep := &audit.Report
		s.Arms[src] = &Arm{
			Audited:        rep.Total,
			CorrectClass:   rep.CorrectClass,
			CorrectActions: rep.CorrectActions,
			ClassAccuracy:  rep.ClassAccuracy(),
			ActionAccuracy: rep.ActionAccuracy(),
			TotalRemovals:  rep.TotalRemovals,
			NFFRemovals:    rep.NFFRemovals,
			NFFRatio:       rep.NFFRatio(),
			Missed:         rep.Missed,
			MissRatio:      rep.MissRatio(),
			Cost:           rep.Cost,
			FalseAlarms:    audit.FalseAlarms,
		}
	}

	s.Fleet = FleetStats{
		Jobs:      tally.Jobs(),
		Incidents: tally.Incidents(),
		Pareto20:  tally.Pareto(0.2),
	}
	if len(vehicles) > 0 {
		s.Fleet.Systematic = tally.Analyze(len(vehicles), threshold)
	}

	for _, name := range sortedKeys(pats) {
		a := pats[name]
		mean := 0.0
		if a.count > 0 {
			mean = a.sumConf / float64(a.count)
		}
		s.Patterns = append(s.Patterns, PatternStat{
			Pattern: name, Verdicts: a.count, MeanConf: mean,
			FRUs: len(a.frus), Vehicles: a.vehicles,
		})
	}
	for _, name := range sortedKeys(frus) {
		a := frus[name]
		st := FRUStat{
			FRU: name, Vehicles: a.vehicles, Verdicts: a.verdicts,
			TrustSamples: a.trustSamples, MinTrust: a.min,
			Declining: a.declining,
		}
		if a.finalN > 0 {
			st.MeanFinalTrust = a.sumFinal / float64(a.finalN)
		}
		if a.slopeN > 0 {
			st.MeanSlope = a.sumSlope / float64(a.slopeN)
		}
		s.FRUs = append(s.FRUs, st)
	}
	return s
}

// FRU returns the fleet-wide drill-down for one FRU (by its String form,
// e.g. "component[0]" or "job[A/A1@1]").
func (c *Collector) FRU(name string) (*FRUDetail, bool) {
	c.lockAll()
	defer c.unlockAll()

	d := &FRUDetail{Patterns: make(map[string]int)}
	d.FRUStat.FRU = name
	found := false
	for _, v := range c.sortedVehicles() {
		sub := v.st.bySubject[name]
		if sub == nil {
			continue
		}
		found = true
		d.Vehicles++
		d.Verdicts += sub.verdicts
		d.TrustSamples += sub.trust.n
		for p, n := range sub.patterns {
			d.Patterns[p] += n
		}
		vt := VehicleTrust{Vehicle: v.id, Samples: sub.trust.n, Verdicts: sub.verdicts}
		if sub.trust.n > 0 {
			vt.First, vt.Last, vt.Min = sub.trust.first, sub.trust.last, sub.trust.min
			vt.Slope = sub.trust.slope()
			d.MeanFinalTrust += sub.trust.last
			if d.TrustSamples == sub.trust.n || sub.trust.min < d.MinTrust {
				d.MinTrust = sub.trust.min
			}
			if sub.trust.n >= 2 {
				d.MeanSlope += vt.Slope
				if vt.Slope < DecliningSlope {
					d.Declining++
				}
			}
		}
		d.PerVehicle = append(d.PerVehicle, vt)
	}
	if !found {
		return nil, false
	}
	trustVehicles, slopeVehicles := 0, 0
	for _, vt := range d.PerVehicle {
		if vt.Samples > 0 {
			trustVehicles++
		}
		if vt.Samples >= 2 {
			slopeVehicles++
		}
	}
	if trustVehicles > 0 {
		d.MeanFinalTrust /= float64(trustVehicles)
	}
	if slopeVehicles > 0 {
		d.MeanSlope /= float64(slopeVehicles)
	}
	return d, true
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
