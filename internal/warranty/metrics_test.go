package warranty

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"decos/internal/scenario"
	"decos/internal/telemetry"
)

// TestMetricsEndpointLive drives a fleetd-style server — shared telemetry
// registry, campaign traffic POSTed over HTTP — and checks that GET
// /v1/metrics reports the load that actually went through.
func TestMetricsEndpointLive(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet campaign in -short mode")
	}
	col := NewCollector(0)
	reg := telemetry.New()
	srv := NewServer(col, ServerOptions{Telemetry: reg})
	if srv.Telemetry() != reg {
		t.Fatal("server did not adopt the supplied registry")
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c := scenario.Campaign{Vehicles: 10, Rounds: 500, Seed: 20050404}
	c.RunTraced(func(v int, ndjson []byte) {
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", bytes.NewReader(ndjson))
		if err != nil {
			t.Errorf("vehicle %d: %v", v, err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	})

	var s telemetry.Snapshot
	getJSON(t, ts.URL+"/v1/metrics", &s)

	if got := s.Counters["ingest.requests"]; got != int64(c.Vehicles) {
		t.Errorf("ingest.requests = %d, want %d", got, c.Vehicles)
	}
	if got := s.Counters["ingest.events"]; got != col.Events() {
		t.Errorf("ingest.events = %d, collector says %d", got, col.Events())
	}
	if got := s.Gauges["fleet.vehicles"]; got != int64(c.Vehicles) {
		t.Errorf("fleet.vehicles = %d, want %d", got, c.Vehicles)
	}
	if got := s.Gauges["fleet.frames"]; got != col.Frames() || got == 0 {
		t.Errorf("fleet.frames = %d, collector says %d (want nonzero)", got, col.Frames())
	}
	if got := s.Gauges["warranty.shard_depth_max"]; got < 1 {
		t.Errorf("warranty.shard_depth_max = %d, want >= 1", got)
	}
	h := s.Histograms["ingest.request_ns"]
	if h.Count != int64(c.Vehicles) || h.Sum <= 0 {
		t.Errorf("ingest.request_ns = %+v, want count %d with positive sum", h, c.Vehicles)
	}

	// The expvar view serves the same values flattened.
	var flat map[string]json.RawMessage
	getJSON(t, ts.URL+"/v1/metrics?format=expvar", &flat)
	var reqs int64
	if err := json.Unmarshal(flat["ingest.requests"], &reqs); err != nil || reqs != int64(c.Vehicles) {
		t.Errorf("expvar ingest.requests = %s (err %v), want %d", flat["ingest.requests"], err, c.Vehicles)
	}
}

// TestHealthzMetricsAgree: healthz reads its ingestion counters from the
// telemetry registry, so the two endpoints can never drift — including the
// 429 rejected count.
func TestHealthzMetricsAgree(t *testing.T) {
	ts := httptest.NewServer(NewServer(NewCollector(0), ServerOptions{MaxInflight: 1}))
	defer ts.Close()

	// One good ingest, then one rejected while the slot is held open.
	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{"t_us":1,"kind":"frame","vehicle":1}` + "\n"); code != http.StatusOK {
		t.Fatalf("ingest status = %d", code)
	}
	pr, pw := io.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", pr)
		if err == nil {
			resp.Body.Close()
		}
	}()
	if _, err := pw.Write([]byte(`{"t_us":2,"kind":"frame","vehicle":2}` + "\n")); err != nil {
		t.Fatal(err)
	}
	waitInflight(t, ts.URL, 1)
	if code := post(`{"t_us":3,"kind":"frame","vehicle":3}` + "\n"); code != http.StatusTooManyRequests {
		t.Fatalf("expected 429, got %d", code)
	}
	pw.Close()
	<-done

	var health struct {
		IngestRequests int64 `json:"ingest_requests"`
		IngestRejected int64 `json:"ingest_rejected"`
	}
	getJSON(t, ts.URL+"/v1/healthz", &health)
	var s telemetry.Snapshot
	getJSON(t, ts.URL+"/v1/metrics", &s)

	if health.IngestRequests != s.Counters["ingest.requests"] ||
		health.IngestRejected != s.Counters["ingest.rejected"] {
		t.Errorf("healthz %+v disagrees with metrics %v", health, s.Counters)
	}
	if health.IngestRequests != 3 {
		t.Errorf("ingest_requests = %d, want 3", health.IngestRequests)
	}
	if health.IngestRejected != 1 {
		t.Errorf("ingest_rejected = %d, want 1", health.IngestRejected)
	}
}
