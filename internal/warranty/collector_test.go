package warranty

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"

	"decos/internal/scenario"
)

// campaignTraces runs one small traced campaign and returns the per-vehicle
// NDJSON streams, keyed 1-based as the campaign emits them.
func campaignTraces(t testing.TB, vehicles int, rounds int64) map[int][]byte {
	t.Helper()
	traces := make(map[int][]byte)
	var mu sync.Mutex
	c := scenario.Campaign{
		Vehicles:       vehicles,
		Rounds:         rounds,
		Seed:           20050404,
		FaultFreeShare: 0.25,
	}
	c.RunTraced(func(v int, ndjson []byte) {
		mu.Lock()
		defer mu.Unlock()
		traces[v] = append([]byte(nil), ndjson...)
	})
	if len(traces) != vehicles {
		t.Fatalf("got %d traces, want %d", len(traces), vehicles)
	}
	return traces
}

// ingestSequential feeds every vehicle stream one after the other.
func ingestSequential(t testing.TB, c *Collector, traces map[int][]byte) {
	t.Helper()
	for v := 1; v <= len(traces); v++ {
		if _, _, err := c.IngestStream(bytes.NewReader(traces[v]), 0); err != nil {
			t.Fatalf("vehicle %d: %v", v, err)
		}
	}
}

// TestConcurrentIngestDeterminism is the DESIGN §4.2 determinism check at
// the fleet backend: 16 goroutines ingesting disjoint vehicles into a
// sharded collector must produce aggregates bit-identical to a sequential
// single-shard ingest. Run under -race.
func TestConcurrentIngestDeterminism(t *testing.T) {
	traces := campaignTraces(t, 32, 600)

	seq := NewCollector(1)
	ingestSequential(t, seq, traces)

	conc := NewCollector(16)
	const goroutines = 16
	var wg sync.WaitGroup
	work := make(chan int)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := range work {
				if _, _, err := conc.IngestStream(bytes.NewReader(traces[v]), 0); err != nil {
					t.Errorf("vehicle %d: %v", v, err)
				}
			}
		}()
	}
	// Scatter vehicles across goroutines in a scrambled order.
	for v := len(traces); v >= 1; v-- {
		work <- v
	}
	close(work)
	wg.Wait()

	sumSeq := seq.Summary(0)
	sumConc := conc.Summary(0)
	if !reflect.DeepEqual(sumSeq, sumConc) {
		a, _ := json.MarshalIndent(sumSeq, "", " ")
		b, _ := json.MarshalIndent(sumConc, "", " ")
		t.Fatalf("concurrent summary differs from sequential:\nsequential:\n%s\nconcurrent:\n%s", a, b)
	}
	if seq.Events() != conc.Events() || seq.Vehicles() != conc.Vehicles() {
		t.Fatalf("counters differ: events %d/%d vehicles %d/%d",
			seq.Events(), conc.Events(), seq.Vehicles(), conc.Vehicles())
	}
}

// TestSummaryMatchesInProcessAudit: the trace-fed audit must reproduce the
// in-process campaign audit exactly — NFF ratio, removals, cost, misses,
// false alarms and the 20-80 concentration, for both arms.
func TestSummaryMatchesInProcessAudit(t *testing.T) {
	col := NewCollector(8)
	c := scenario.Campaign{
		Vehicles:       40,
		Rounds:         800,
		Seed:           777,
		FaultFreeShare: 0.2,
	}
	res := c.RunTraced(func(v int, ndjson []byte) {
		if _, _, err := col.IngestStream(bytes.NewReader(ndjson), 0); err != nil {
			t.Errorf("vehicle %d: %v", v, err)
		}
	})

	s := col.Summary(0)
	if s.Vehicles != c.Vehicles {
		t.Fatalf("vehicles = %d, want %d", s.Vehicles, c.Vehicles)
	}
	if s.FaultFree != res.FaultFreeCount {
		t.Errorf("fault-free = %d, want %d", s.FaultFree, res.FaultFreeCount)
	}

	checkArm := func(name string, want *Arm, falseAlarms int) {
		t.Helper()
		got := s.Arms[name]
		if got == nil {
			t.Fatalf("arm %q missing from summary", name)
		}
		if *got != *want {
			t.Errorf("arm %q:\n got %+v\nwant %+v", name, got, want)
		}
		if got.FalseAlarms != falseAlarms {
			t.Errorf("arm %q false alarms = %d, want %d", name, got.FalseAlarms, falseAlarms)
		}
	}
	checkArm("decos", &Arm{
		Audited:        res.DECOS.Total,
		CorrectClass:   res.DECOS.CorrectClass,
		CorrectActions: res.DECOS.CorrectActions,
		ClassAccuracy:  res.DECOS.ClassAccuracy(),
		ActionAccuracy: res.DECOS.ActionAccuracy(),
		TotalRemovals:  res.DECOS.TotalRemovals,
		NFFRemovals:    res.DECOS.NFFRemovals,
		NFFRatio:       res.DECOS.NFFRatio(),
		Missed:         res.DECOS.Missed,
		MissRatio:      res.DECOS.MissRatio(),
		Cost:           res.DECOS.Cost,
		FalseAlarms:    res.DECOSFalseAlarms,
	}, res.DECOSFalseAlarms)
	checkArm("obd", &Arm{
		Audited:        res.OBD.Total,
		CorrectClass:   res.OBD.CorrectClass,
		CorrectActions: res.OBD.CorrectActions,
		ClassAccuracy:  res.OBD.ClassAccuracy(),
		ActionAccuracy: res.OBD.ActionAccuracy(),
		TotalRemovals:  res.OBD.TotalRemovals,
		NFFRemovals:    res.OBD.NFFRemovals,
		NFFRatio:       res.OBD.NFFRatio(),
		Missed:         res.OBD.Missed,
		MissRatio:      res.OBD.MissRatio(),
		Cost:           res.OBD.Cost,
		FalseAlarms:    res.OBDFalseAlarms,
	}, res.OBDFalseAlarms)

	if s.Fleet.Incidents != res.Fleet.Incidents() {
		t.Errorf("fleet incidents = %d, want %d", s.Fleet.Incidents, res.Fleet.Incidents())
	}
	if s.Fleet.Jobs != res.Fleet.Jobs() {
		t.Errorf("fleet jobs = %d, want %d", s.Fleet.Jobs, res.Fleet.Jobs())
	}
	if s.Fleet.Pareto20 != res.Fleet.Pareto(0.2) {
		t.Errorf("pareto = %v, want %v", s.Fleet.Pareto20, res.Fleet.Pareto(0.2))
	}
}

// TestCorruptStreamSurvives: a vehicle stream with mangled lines still
// contributes its decodable events.
func TestCorruptStreamSurvives(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(`{"t_us":1,"kind":"vehicle","vehicle":3,"detail":"fault-free"}` + "\n")
	buf.WriteString("garbage line\n")
	buf.WriteString(`{"t_us":2,"kind":"symptom","vehicle":3,"symptom":"omission","subject":"component[1]","count":2}` + "\n")

	c := NewCollector(4)
	events, corrupt, err := c.IngestStream(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if events != 2 || corrupt != 1 {
		t.Fatalf("events=%d corrupt=%d, want 2/1", events, corrupt)
	}
	s := c.Summary(0)
	if s.Vehicles != 1 || s.FaultFree != 1 || s.CorruptLines != 1 {
		t.Fatalf("summary %+v", s)
	}
}
