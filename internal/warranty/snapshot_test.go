package warranty

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"decos/internal/scenario"
)

// campaignBlobs runs a small traced campaign once and returns every
// vehicle's NDJSON blob, keyed 1-based — the shared corpus of the
// snapshot/merge tests.
func campaignBlobs(t *testing.T, vehicles int, rounds int64) map[int][]byte {
	t.Helper()
	blobs := make(map[int][]byte)
	c := scenario.Campaign{
		Vehicles:       vehicles,
		Rounds:         rounds,
		Seed:           20050404,
		FaultFreeShare: 0.2,
		Workers:        1,
	}
	c.RunTraced(func(v int, ndjson []byte) {
		blobs[v] = append([]byte(nil), ndjson...)
	})
	return blobs
}

func summaryJSON(t *testing.T, s *Summary) []byte {
	t.Helper()
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSnapshotRoundTrip: export → JSON → decode → MergeSnapshots over the
// single full snapshot must reproduce the collector's own Summary
// byte-for-byte, floats included.
func TestSnapshotRoundTrip(t *testing.T) {
	blobs := campaignBlobs(t, 12, 600)
	col := NewCollector(0)
	for _, b := range blobs {
		if _, _, err := col.IngestStream(bytes.NewReader(b), 0); err != nil {
			t.Fatal(err)
		}
	}

	snap := col.Snapshot("peer-a")
	wire, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(wire, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("decoded snapshot invalid: %v", err)
	}

	merged, err := MergeSnapshots([]*Snapshot{&back}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := summaryJSON(t, col.Summary(0))
	got := summaryJSON(t, merged)
	if !bytes.Equal(got, want) {
		t.Fatalf("round-tripped summary diverged:\ngot  %s\nwant %s", got, want)
	}

	// The export is canonical: two exports of the same state are
	// byte-identical.
	wire2, _ := json.Marshal(col.Snapshot("peer-a"))
	if !bytes.Equal(wire, wire2) {
		t.Fatal("snapshot encoding is not canonical across exports")
	}
}

// TestMergeSnapshotsBitIdentical is the heart of the cluster guarantee:
// the same vehicle blobs split across K shard collectors, snapshotted and
// merged, must produce a Summary byte-identical to one collector ingesting
// everything — for several shard counts and merge orders.
func TestMergeSnapshotsBitIdentical(t *testing.T) {
	blobs := campaignBlobs(t, 16, 600)

	single := NewCollector(0)
	for _, b := range blobs {
		if _, _, err := single.IngestStream(bytes.NewReader(b), 0); err != nil {
			t.Fatal(err)
		}
	}
	want := summaryJSON(t, single.Summary(0))

	for _, k := range []int{2, 3, 5} {
		shards := make([]*Collector, k)
		for i := range shards {
			shards[i] = NewCollector(0)
		}
		for v, b := range blobs {
			if _, _, err := shards[v%k].IngestStream(bytes.NewReader(b), 0); err != nil {
				t.Fatal(err)
			}
		}
		snaps := make([]*Snapshot, k)
		for i, c := range shards {
			snaps[i] = c.Snapshot("peer-" + strconv.Itoa(i))
		}
		// Merge in forward and reverse order: the fold must not care.
		for _, reverse := range []bool{false, true} {
			ordered := append([]*Snapshot(nil), snaps...)
			if reverse {
				for i, j := 0, len(ordered)-1; i < j; i, j = i+1, j-1 {
					ordered[i], ordered[j] = ordered[j], ordered[i]
				}
			}
			merged, err := MergeSnapshots(ordered, 0)
			if err != nil {
				t.Fatal(err)
			}
			if got := summaryJSON(t, merged); !bytes.Equal(got, want) {
				t.Fatalf("%d shards (reverse=%v): merged summary not byte-identical", k, reverse)
			}
		}
	}
}

// TestMergeSnapshotsRejects: version skew and duplicated vehicles are
// merge failures, not silent skew.
func TestMergeSnapshotsRejects(t *testing.T) {
	blobs := campaignBlobs(t, 4, 300)
	a, b := NewCollector(0), NewCollector(0)
	for v, blob := range blobs {
		c := a
		if v%2 == 0 {
			c = b
		}
		if _, _, err := c.IngestStream(bytes.NewReader(blob), 0); err != nil {
			t.Fatal(err)
		}
	}

	skewed := a.Snapshot("a")
	skewed.Version = SnapshotVersion + 1
	if _, err := MergeSnapshots([]*Snapshot{skewed, b.Snapshot("b")}, 0); err == nil {
		t.Fatal("version skew accepted")
	}
	if err := skewed.Validate(); err == nil {
		t.Fatal("Validate accepted version skew")
	}

	// The same peer twice duplicates every vehicle.
	if _, err := MergeSnapshots([]*Snapshot{a.Snapshot("a"), a.Snapshot("a2")}, 0); err == nil {
		t.Fatal("duplicated vehicles accepted")
	}

	corrupt := a.Snapshot("a")
	for i := range corrupt.Vehicles {
		if len(corrupt.Vehicles[i].Truths) > 0 {
			corrupt.Vehicles[i].Truths[0].Class = "definitely-not-a-class"
			break
		}
	}
	if err := corrupt.Validate(); err == nil {
		t.Skip("corpus produced no truths to corrupt")
	}
	if _, err := MergeSnapshots([]*Snapshot{corrupt}, 0); err == nil {
		t.Fatal("corrupt enum accepted")
	}
}

// TestSnapshotEndpoint: the HTTP export decodes, validates, carries the
// peer label, and MergeSnapshots of it matches the summary endpoint.
func TestSnapshotEndpoint(t *testing.T) {
	blobs := campaignBlobs(t, 6, 300)
	col := NewCollector(0)
	srv := httptest.NewServer(NewServer(col, ServerOptions{PeerName: "shard-7"}))
	defer srv.Close()
	for _, b := range blobs {
		resp, err := http.Post(srv.URL+"/v1/ingest", "application/x-ndjson", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	var snap Snapshot
	getJSON(t, srv.URL+"/v1/fleet/snapshot", &snap)
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	if snap.Peer != "shard-7" {
		t.Fatalf("peer label = %q, want shard-7", snap.Peer)
	}
	if len(snap.Vehicles) != 6 {
		t.Fatalf("snapshot vehicles = %d, want 6", len(snap.Vehicles))
	}

	merged, err := MergeSnapshots([]*Snapshot{&snap}, 0)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/v1/fleet/summary")
	if err != nil {
		t.Fatal(err)
	}
	served, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := strings.TrimRight(string(summaryJSON(t, merged)), "\n"); got != strings.TrimRight(string(served), "\n") {
		t.Fatal("snapshot-derived summary diverged from the served summary")
	}
}

// TestRetryAfterHeader pins the backpressure contract: every 429 carries a
// parseable Retry-After hint, configurable per server.
func TestRetryAfterHeader(t *testing.T) {
	for _, tc := range []struct {
		opt  int
		want string
	}{{0, "1"}, {3, "3"}, {-1, "0"}} {
		col := NewCollector(0)
		srv := httptest.NewServer(NewServer(col, ServerOptions{MaxInflight: 1, RetryAfter: tc.opt}))

		pr, pw := io.Pipe()
		done := make(chan error, 1)
		go func() {
			resp, err := http.Post(srv.URL+"/v1/ingest", "application/x-ndjson", pr)
			if err == nil {
				resp.Body.Close()
			}
			done <- err
		}()
		if _, err := pw.Write([]byte(`{"t_us":1,"kind":"frame","vehicle":1}` + "\n")); err != nil {
			t.Fatal(err)
		}
		waitInflight(t, srv.URL, 1)

		resp, err := http.Post(srv.URL+"/v1/ingest", "application/x-ndjson",
			strings.NewReader(`{"t_us":2,"kind":"frame","vehicle":2}`+"\n"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status = %d, want 429", resp.StatusCode)
		}
		hint := resp.Header.Get("Retry-After")
		if hint != tc.want {
			t.Fatalf("RetryAfter option %d: header = %q, want %q", tc.opt, hint, tc.want)
		}
		if _, err := strconv.Atoi(hint); err != nil {
			t.Fatalf("Retry-After %q is not whole seconds: %v", hint, err)
		}

		pw.Close()
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		srv.Close()
	}
}
