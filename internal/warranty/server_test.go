package warranty

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"decos/internal/scenario"
)

// TestHTTPFleetCampaign is the acceptance path: ≥ 100 simulated vehicles
// POSTed as NDJSON over HTTP (concurrently, straight from the campaign
// workers) must yield a /v1/fleet/summary whose NFF ratios and 20-80
// concentration match the in-process numbers for the same seeds.
func TestHTTPFleetCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet campaign in -short mode")
	}
	col := NewCollector(0)
	ts := httptest.NewServer(NewServer(col, ServerOptions{}))
	defer ts.Close()

	c := scenario.Campaign{
		Vehicles:       100,
		Rounds:         1000,
		Seed:           20050404,
		FaultFreeShare: 0.2,
	}
	res := c.RunTraced(func(v int, ndjson []byte) {
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", bytes.NewReader(ndjson))
		if err != nil {
			t.Errorf("vehicle %d: %v", v, err)
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Errorf("vehicle %d: status %d: %s", v, resp.StatusCode, body)
		}
	})

	var s Summary
	getJSON(t, ts.URL+"/v1/fleet/summary", &s)

	if s.Vehicles != c.Vehicles {
		t.Fatalf("summary vehicles = %d, want %d", s.Vehicles, c.Vehicles)
	}
	for name, rep := range map[string]interface {
		NFFRatio() float64
	}{"decos": res.DECOS, "obd": res.OBD} {
		arm := s.Arms[name]
		if arm == nil {
			t.Fatalf("arm %q missing", name)
		}
		if arm.NFFRatio != rep.NFFRatio() {
			t.Errorf("%s NFF ratio over HTTP = %v, in-process = %v", name, arm.NFFRatio, rep.NFFRatio())
		}
	}
	if s.Arms["decos"].Cost != res.DECOS.Cost || s.Arms["obd"].Cost != res.OBD.Cost {
		t.Errorf("removal cost mismatch: %v/%v vs %v/%v",
			s.Arms["decos"].Cost, s.Arms["obd"].Cost, res.DECOS.Cost, res.OBD.Cost)
	}
	if s.Fleet.Pareto20 != res.Fleet.Pareto(0.2) {
		t.Errorf("20-80 concentration over HTTP = %v, in-process = %v", s.Fleet.Pareto20, res.Fleet.Pareto(0.2))
	}
	if s.Fleet.Incidents != res.Fleet.Incidents() {
		t.Errorf("fleet incidents = %d, want %d", s.Fleet.Incidents, res.Fleet.Incidents())
	}

	// Drill into the FRU with the most verdicts.
	if len(s.FRUs) == 0 {
		t.Fatal("no FRUs in summary")
	}
	best := s.FRUs[0]
	for _, f := range s.FRUs {
		if f.Verdicts > best.Verdicts {
			best = f
		}
	}
	var d FRUDetail
	getJSON(t, ts.URL+"/v1/fru/"+url.PathEscape(best.FRU), &d)
	if d.Verdicts != best.Verdicts || d.Vehicles != best.Vehicles {
		t.Errorf("FRU detail %+v does not match summary row %+v", d.FRUStat, best)
	}

	var health struct {
		Status   string `json:"status"`
		Vehicles int    `json:"vehicles"`
		Events   int64  `json:"events"`
	}
	getJSON(t, ts.URL+"/v1/healthz", &health)
	if health.Status != "ok" || health.Vehicles != c.Vehicles || health.Events == 0 {
		t.Errorf("healthz = %+v", health)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestIngestBackpressure: with the ingest queue full, further POSTs are
// refused with 429 instead of queueing unboundedly.
func TestIngestBackpressure(t *testing.T) {
	col := NewCollector(0)
	ts := httptest.NewServer(NewServer(col, ServerOptions{MaxInflight: 1}))
	defer ts.Close()

	// Occupy the single queue slot with a request whose body stays open.
	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", pr)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	if _, err := pw.Write([]byte(`{"t_us":1,"kind":"frame","vehicle":1}` + "\n")); err != nil {
		t.Fatal(err)
	}
	waitInflight(t, ts.URL, 1)

	resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson",
		strings.NewReader(`{"t_us":2,"kind":"frame","vehicle":2}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second ingest status = %d, want 429", resp.StatusCode)
	}

	pw.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// The slot is free again: the retry succeeds.
	resp, err = http.Post(ts.URL+"/v1/ingest", "application/x-ndjson",
		strings.NewReader(`{"t_us":3,"kind":"frame","vehicle":2}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry status = %d, want 200", resp.StatusCode)
	}
}

func waitInflight(t *testing.T, base string, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var health struct {
			Inflight int64 `json:"inflight_ingests"`
		}
		getJSON(t, base+"/v1/healthz", &health)
		if health.Inflight == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("inflight never reached %d", want)
}

// TestUnknownFRU404 and method guards.
func TestHTTPErrors(t *testing.T) {
	ts := httptest.NewServer(NewServer(NewCollector(0), ServerOptions{}))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/fru/" + url.PathEscape("component[9]"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown FRU status = %d, want 404", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/ingest status = %d, want 405", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/fleet/summary?threshold=7")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad threshold status = %d, want 400", resp.StatusCode)
	}
}
