package warranty

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"decos/internal/scenario"
	"decos/internal/trace"
)

func post(t *testing.T, url, contentType string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestIngestContentNegotiation pins the /v1/ingest media-type contract:
// the binary and NDJSON families are accepted (an absent Content-Type
// stays NDJSON for pre-binary producers), anything else is refused with
// 415 and an Accept-Post listing — counted, never ingested.
func TestIngestContentNegotiation(t *testing.T) {
	col := NewCollector(0)
	srv := NewServer(col, ServerOptions{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var nd bytes.Buffer
	sink := trace.NewNDJSONSink(&nd)
	for _, e := range []trace.Event{
		{T: 1, Kind: "vehicle", Vehicle: 1, Detail: "fault-free"},
		{T: 2, Kind: "frame", Vehicle: 1, Status: "ok"},
	} {
		if err := sink.Record(&e); err != nil {
			t.Fatal(err)
		}
	}
	bin, n, corrupt, err := trace.TranscodeBytes(nd.Bytes(), trace.FormatBinary)
	if err != nil || corrupt != 0 || n != 2 {
		t.Fatalf("transcode: n=%d corrupt=%d err=%v", n, corrupt, err)
	}

	for _, ct := range []string{"application/x-protobuf", "text/csv; charset=utf-8", "multipart/form-data"} {
		resp := post(t, ts.URL+"/v1/ingest", ct, nd.Bytes())
		if resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Fatalf("Content-Type %q: status %d, want 415", ct, resp.StatusCode)
		}
		if ap := resp.Header.Get("Accept-Post"); !strings.Contains(ap, trace.ContentTypeBinary) ||
			!strings.Contains(ap, trace.ContentTypeNDJSON) {
			t.Fatalf("Content-Type %q: Accept-Post = %q", ct, ap)
		}
	}
	if got := col.Events(); got != 0 {
		t.Fatalf("refused requests ingested %d events", got)
	}

	accepted := []string{
		trace.ContentTypeBinary,
		trace.ContentTypeNDJSON,
		trace.ContentTypeNDJSON + "; charset=utf-8",
		"application/json",
		"text/plain",
		"", // historical producers send no Content-Type at all
	}
	for _, ct := range accepted {
		body := nd.Bytes()
		if ct == trace.ContentTypeBinary {
			body = bin
		}
		resp := post(t, ts.URL+"/v1/ingest", ct, body)
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(resp.Body)
			t.Fatalf("Content-Type %q: status %d: %s", ct, resp.StatusCode, msg)
		}
	}
	if got, want := col.Events(), int64(2*len(accepted)); got != want {
		t.Fatalf("ingested %d events, want %d", got, want)
	}

	reg := srv.Telemetry()
	if got := reg.Counter("ingest.unsupported_media").Value(); got != 3 {
		t.Errorf("ingest.unsupported_media = %d, want 3", got)
	}
	if got := reg.Counter("ingest.binary_requests").Value(); got != 1 {
		t.Errorf("ingest.binary_requests = %d, want 1", got)
	}
	if got := reg.Counter("ingest.requests").Value(); got != int64(3+len(accepted)) {
		t.Errorf("ingest.requests = %d, want %d", got, 3+len(accepted))
	}
}

// TestIngestMixedEncodingsAgree runs one campaign into two servers — one
// fed pure NDJSON, one fed an alternating mix of binary and NDJSON — and
// requires the ingest counters and the summary to agree exactly: the
// wire encoding must be invisible to warranty analysis.
func TestIngestMixedEncodingsAgree(t *testing.T) {
	c := scenario.Campaign{Vehicles: 24, Rounds: 400, Seed: 71, FaultFreeShare: 0.25}
	var blobs [][]byte
	c.RunTraced(func(v int, ndjson []byte) {
		blobs = append(blobs, append([]byte(nil), ndjson...))
	})

	colPure, colMixed := NewCollector(0), NewCollector(0)
	srvPure, srvMixed := NewServer(colPure, ServerOptions{}), NewServer(colMixed, ServerOptions{})
	tsPure, tsMixed := httptest.NewServer(srvPure), httptest.NewServer(srvMixed)
	defer tsPure.Close()
	defer tsMixed.Close()

	for i, blob := range blobs {
		if resp := post(t, tsPure.URL+"/v1/ingest", trace.ContentTypeNDJSON, blob); resp.StatusCode != http.StatusOK {
			t.Fatalf("pure vehicle %d: status %d", i, resp.StatusCode)
		}
		body, ct := blob, trace.ContentTypeNDJSON
		if i%2 == 0 {
			bin, _, corrupt, err := trace.TranscodeBytes(blob, trace.FormatBinary)
			if err != nil || corrupt != 0 {
				t.Fatalf("vehicle %d transcode: corrupt=%d err=%v", i, corrupt, err)
			}
			body, ct = bin, trace.ContentTypeBinary
		}
		if resp := post(t, tsMixed.URL+"/v1/ingest", ct, body); resp.StatusCode != http.StatusOK {
			t.Fatalf("mixed vehicle %d: status %d", i, resp.StatusCode)
		}
	}

	for _, name := range []string{"ingest.requests", "ingest.events", "ingest.corrupt_lines"} {
		p, m := srvPure.Telemetry().Counter(name).Value(), srvMixed.Telemetry().Counter(name).Value()
		if p != m {
			t.Errorf("%s: pure %d, mixed %d", name, p, m)
		}
	}
	if colPure.Events() == 0 {
		t.Fatal("campaign produced no events")
	}

	pure := getBody(t, tsPure.URL+"/v1/fleet/summary")
	mixed := getBody(t, tsMixed.URL+"/v1/fleet/summary")
	if !bytes.Equal(pure, mixed) {
		t.Fatalf("summaries differ by wire encoding:\npure:  %s\nmixed: %s", pure, mixed)
	}
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, b)
	}
	return b
}
