package warranty

import (
	"fmt"
	"sort"

	"decos/internal/core"
	"decos/internal/fleet"
)

// SnapshotVersion is the wire version of the shard snapshot. A coordinator
// refuses snapshots of any other version: mixing encodings across a
// rolling upgrade would silently skew the merged fleet view.
const SnapshotVersion = 1

// Snapshot is the canonical, versioned export of one collector's complete
// mergeable state — the unit a sharded fleetd peer serves on
// GET /v1/fleet/snapshot and a coordinator folds into the cluster-wide
// summary.
//
// The encoding is canonical: vehicles ascending, every map keyed
// deterministically (encoding/json emits map keys sorted), tally jobs and
// vehicle sets sorted. Two collectors holding the same per-vehicle state
// serialize to identical bytes regardless of ingestion concurrency.
// Floating-point fields round-trip exactly — encoding/json emits the
// shortest representation that parses back to the same float64 — so a
// summary computed from decoded snapshots is bit-identical to one computed
// from the originating states.
type Snapshot struct {
	Version int    `json:"version"`
	Peer    string `json:"peer,omitempty"`

	Events    int64 `json:"events"`
	Corrupt   int64 `json:"corrupt_lines"`
	Malformed int64 `json:"malformed_events"`
	Frames    int64 `json:"frames"`

	// Tally is the shard's Section V-C fleet-correlation state; the
	// coordinator folds peers' tallies with fleet.Tally.Merge.
	Tally fleet.TallySnapshot `json:"tally"`

	Vehicles []VehicleSnapshot `json:"vehicles,omitempty"`
}

// VehicleSnapshot is one vehicle's retained state on the wire.
type VehicleSnapshot struct {
	Vehicle   int  `json:"vehicle"`
	Events    int  `json:"events"`
	SawHeader bool `json:"saw_header,omitempty"`
	FaultFree bool `json:"fault_free,omitempty"`
	Frames    int  `json:"frames,omitempty"`
	Verdicts  int  `json:"verdicts,omitempty"`

	Truths    []TruthSnapshot                      `json:"truths,omitempty"`
	Advice    map[string]map[string]AdviceSnapshot `json:"advice,omitempty"`
	Symptoms  map[string]int                       `json:"symptoms,omitempty"`
	Subjects  map[string]SubjectSnapshot           `json:"subjects,omitempty"`
	Patterns  map[string]PatternSnapshot           `json:"patterns,omitempty"`
	Incidents []string                             `json:"incidents,omitempty"`
}

// TruthSnapshot is one ground-truth fault record.
type TruthSnapshot struct {
	Class   string `json:"class"`
	Subject string `json:"subject"`
	Detail  string `json:"detail,omitempty"`
}

// AdviceSnapshot is one advisor's standing advice for a FRU.
type AdviceSnapshot struct {
	Action string `json:"action"`
	Class  string `json:"class"`
}

// SubjectSnapshot is one FRU's per-vehicle slice of state.
type SubjectSnapshot struct {
	Trust    TrustSnapshot  `json:"trust"`
	Verdicts int            `json:"verdicts"`
	Patterns map[string]int `json:"patterns,omitempty"`
}

// TrustSnapshot carries a trust trajectory's order-independent regression
// sums plus the stream-order endpoints, bit-exact.
type TrustSnapshot struct {
	N      int     `json:"n"`
	SumT   float64 `json:"sum_t"`
	SumY   float64 `json:"sum_y"`
	SumTY  float64 `json:"sum_ty"`
	SumTT  float64 `json:"sum_tt"`
	Min    float64 `json:"min"`
	First  float64 `json:"first"`
	Last   float64 `json:"last"`
	FirstT int64   `json:"first_t_us"`
	LastT  int64   `json:"last_t_us"`
}

// PatternSnapshot is one ONA pattern's per-vehicle signature statistics.
type PatternSnapshot struct {
	Count    int      `json:"count"`
	SumConf  float64  `json:"sum_conf"`
	Subjects []string `json:"subjects,omitempty"`
}

// Snapshot exports the collector's complete mergeable state. peer labels
// the origin (may be empty). The export observes a consistent point in
// time: all stripes are locked for its duration, like Summary.
func (c *Collector) Snapshot(peer string) *Snapshot {
	c.lockAll()
	defer c.unlockAll()

	s := &Snapshot{
		Version:   SnapshotVersion,
		Peer:      peer,
		Events:    c.events.Load(),
		Corrupt:   c.corrupt.Load(),
		Malformed: c.malformed.Load(),
	}
	for _, sh := range c.shards {
		s.Frames += sh.frames
	}

	tally := fleet.NewTally()
	for _, v := range c.sortedVehicles() {
		s.Vehicles = append(s.Vehicles, exportVehicle(v))
		for _, job := range v.st.incidents {
			tally.Observe(v.id, job)
		}
	}
	s.Tally = tally.Snapshot()
	return s
}

func exportVehicle(v vehicleEntry) VehicleSnapshot {
	st := v.st
	out := VehicleSnapshot{
		Vehicle:   v.id,
		Events:    st.events,
		SawHeader: st.sawHeader,
		FaultFree: st.faultFree,
		Frames:    st.frames,
		Verdicts:  st.verdicts,
		Incidents: append([]string(nil), st.incidents...),
	}
	for _, tr := range st.truths {
		out.Truths = append(out.Truths, TruthSnapshot{
			Class: tr.class.String(), Subject: tr.subject, Detail: tr.detail,
		})
	}
	if len(st.advice) > 0 {
		out.Advice = make(map[string]map[string]AdviceSnapshot, len(st.advice))
		for src, m := range st.advice {
			am := make(map[string]AdviceSnapshot, len(m))
			for fru, a := range m {
				am[fru] = AdviceSnapshot{Action: a.action.String(), Class: a.class.String()}
			}
			out.Advice[src] = am
		}
	}
	if len(st.symptoms) > 0 {
		out.Symptoms = make(map[string]int, len(st.symptoms))
		for k, n := range st.symptoms {
			out.Symptoms[k] = n
		}
	}
	if len(st.bySubject) > 0 {
		out.Subjects = make(map[string]SubjectSnapshot, len(st.bySubject))
		for name, sub := range st.bySubject {
			ss := SubjectSnapshot{
				Trust: TrustSnapshot{
					N:    sub.trust.n,
					SumT: sub.trust.sumT, SumY: sub.trust.sumY,
					SumTY: sub.trust.sumTY, SumTT: sub.trust.sumTT,
					Min: sub.trust.min, First: sub.trust.first, Last: sub.trust.last,
					FirstT: sub.trust.firstT, LastT: sub.trust.lastT,
				},
				Verdicts: sub.verdicts,
			}
			if len(sub.patterns) > 0 {
				ss.Patterns = make(map[string]int, len(sub.patterns))
				for p, n := range sub.patterns {
					ss.Patterns[p] = n
				}
			}
			out.Subjects[name] = ss
		}
	}
	if len(st.patterns) > 0 {
		out.Patterns = make(map[string]PatternSnapshot, len(st.patterns))
		for name, p := range st.patterns {
			subjects := make([]string, 0, len(p.subjects))
			for s := range p.subjects {
				subjects = append(subjects, s)
			}
			sort.Strings(subjects)
			out.Patterns[name] = PatternSnapshot{Count: p.count, SumConf: p.sumConf, Subjects: subjects}
		}
	}
	return out
}

// importVehicle rebuilds the in-memory state from the wire form. It is the
// exact inverse of exportVehicle; any unparsable enum makes the whole
// snapshot corrupt (a coordinator drops the peer rather than folding a
// half-read state).
func importVehicle(vs VehicleSnapshot) (*vehicleState, error) {
	st := newVehicleState()
	st.events = vs.Events
	st.sawHeader = vs.SawHeader
	st.faultFree = vs.FaultFree
	st.frames = vs.Frames
	st.verdicts = vs.Verdicts
	st.incidents = append([]string(nil), vs.Incidents...)
	for _, tr := range vs.Truths {
		class, err := core.ParseFaultClass(tr.Class)
		if err != nil {
			return nil, fmt.Errorf("vehicle %d truth: %v", vs.Vehicle, err)
		}
		st.truths = append(st.truths, truthRec{class: class, subject: tr.Subject, detail: tr.Detail})
	}
	for src, m := range vs.Advice {
		am := make(map[string]adviceRec, len(m))
		for fru, a := range m {
			action, aerr := core.ParseMaintenanceAction(a.Action)
			class, cerr := core.ParseFaultClass(a.Class)
			if aerr != nil || cerr != nil {
				return nil, fmt.Errorf("vehicle %d advice %s/%s: bad enum", vs.Vehicle, src, fru)
			}
			am[fru] = adviceRec{action: action, class: class}
		}
		st.advice[src] = am
	}
	for k, n := range vs.Symptoms {
		st.symptoms[k] = n
	}
	for name, ss := range vs.Subjects {
		sub := st.subject(name)
		sub.verdicts = ss.Verdicts
		sub.trust = trustAcc{
			n:    ss.Trust.N,
			sumT: ss.Trust.SumT, sumY: ss.Trust.SumY,
			sumTY: ss.Trust.SumTY, sumTT: ss.Trust.SumTT,
			min: ss.Trust.Min, first: ss.Trust.First, last: ss.Trust.Last,
			firstT: ss.Trust.FirstT, lastT: ss.Trust.LastT,
		}
		for p, n := range ss.Patterns {
			sub.patterns[p] = n
		}
	}
	for name, ps := range vs.Patterns {
		p := &patternAcc{count: ps.Count, sumConf: ps.SumConf, subjects: make(map[string]bool, len(ps.Subjects))}
		for _, s := range ps.Subjects {
			p.subjects[s] = true
		}
		st.patterns[name] = p
	}
	return st, nil
}

// LoadSnapshot imports a snapshot into an empty collector — the warm-
// standby boot path (decos-fleetd -state-dir): a restarted daemon
// reloads the state its predecessor exported and continues ingesting as
// if it never died. Counters and per-vehicle state are restored such
// that subsequent Snapshot and Summary outputs are byte-identical to
// the originating collector's — independent of either side's shard
// count, since vehicles rehash onto the new stripes.
func (c *Collector) LoadSnapshot(s *Snapshot) error {
	if s.Version != SnapshotVersion {
		return fmt.Errorf("warranty: snapshot version %d, want %d", s.Version, SnapshotVersion)
	}
	c.lockAll()
	defer c.unlockAll()
	for _, sh := range c.shards {
		if len(sh.vehicles) != 0 {
			return fmt.Errorf("warranty: LoadSnapshot into a non-empty collector")
		}
	}
	prev := -1 << 62
	for _, vs := range s.Vehicles {
		if vs.Vehicle <= prev {
			return fmt.Errorf("warranty: snapshot vehicles out of order at %d", vs.Vehicle)
		}
		prev = vs.Vehicle
		st, err := importVehicle(vs)
		if err != nil {
			return fmt.Errorf("warranty: corrupt snapshot: %v", err)
		}
		sh := c.shardFor(vs.Vehicle)
		sh.vehicles[vs.Vehicle] = st
		// Per-shard frame counters re-derive from the vehicles now homed
		// here; the export's total was the sum over its own sharding.
		sh.frames += int64(st.frames)
	}
	c.events.Store(s.Events)
	c.corrupt.Store(s.Corrupt)
	c.malformed.Store(s.Malformed)
	return nil
}

// Validate checks a decoded snapshot without folding it anywhere: version
// match, strictly ascending vehicle ids, parsable enums. Coordinators call
// it per peer so a corrupt shard is attributed and dropped instead of
// poisoning the merge.
func (s *Snapshot) Validate() error {
	if s.Version != SnapshotVersion {
		return fmt.Errorf("warranty: snapshot version %d, want %d", s.Version, SnapshotVersion)
	}
	prev := -1 << 62
	for _, vs := range s.Vehicles {
		if vs.Vehicle <= prev {
			return fmt.Errorf("warranty: snapshot vehicles out of order at %d", vs.Vehicle)
		}
		prev = vs.Vehicle
		if _, err := importVehicle(vs); err != nil {
			return fmt.Errorf("warranty: corrupt snapshot: %v", err)
		}
	}
	return nil
}

// MergeSnapshots folds peer snapshots into the fleet Summary a single
// collector holding every vehicle would produce. Vehicle sets must be
// disjoint (the ring partitions vehicles across peers); a vehicle reported
// by two peers is a routing fault and fails the merge rather than being
// double-counted silently.
//
// Determinism argument: each vehicle's state was accumulated in stream
// order on exactly one peer — the same per-vehicle fold a single node
// runs. The cross-vehicle fold below sorts all vehicles ascending, the
// identical order the single node uses, so every floating-point
// accumulation happens in the same sequence. The fleet tally is folded
// with fleet.Tally.Merge in the callers' snapshot order — pure integer
// state, so any fold order yields the same analysis. The result is
// bit-identical to the single-node Summary for any shard count.
func MergeSnapshots(snaps []*Snapshot, threshold float64) (*Summary, error) {
	var totals storeTotals
	tally := fleet.NewTally()
	var entries []vehicleEntry
	seen := make(map[int]string)
	for _, s := range snaps {
		if s.Version != SnapshotVersion {
			return nil, fmt.Errorf("warranty: snapshot version %d, want %d", s.Version, SnapshotVersion)
		}
		totals.events += s.Events
		totals.corrupt += s.Corrupt
		totals.malformed += s.Malformed
		tally.Merge(fleet.TallyFromSnapshot(s.Tally))
		for _, vs := range s.Vehicles {
			if prev, dup := seen[vs.Vehicle]; dup {
				return nil, fmt.Errorf("warranty: vehicle %d reported by %q and %q — ring routing violated",
					vs.Vehicle, prev, s.Peer)
			}
			seen[vs.Vehicle] = s.Peer
			st, err := importVehicle(vs)
			if err != nil {
				return nil, fmt.Errorf("warranty: corrupt snapshot from %q: %v", s.Peer, err)
			}
			entries = append(entries, vehicleEntry{id: vs.Vehicle, st: st})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	return summarize(entries, totals, threshold, tally), nil
}
