// Package warranty is the OEM side of the paper's Section V-B interface:
// a fleet-scale warranty-analysis engine that ingests the JSON-lines
// diagnostic traces of fielded vehicles and maintains the fleet-level
// aggregates that drive maintenance decisions on-line — the no-fault-found
// audit against the OBD baseline (the paper's headline metric), the 20-80
// software-fault concentration of Section V-C, per-FRU trust trajectories
// and wearout trends, and the Fig. 8 fault-pattern signature statistics.
//
// The store is sharded by vehicle identity with one mutex stripe per
// shard: vehicles are independent, so concurrent uplinks only contend when
// they hash to the same stripe. All aggregates are order-independent
// across vehicles (per-vehicle state is folded in sorted vehicle order at
// summary time), so the result of a concurrent ingest is bit-identical to
// a sequential one — the determinism property of DESIGN §4.2 carried over
// to the fleet backend.
package warranty

import (
	"io"
	"sync"
	"sync/atomic"

	"decos/internal/core"
	"decos/internal/fleet"
	"decos/internal/trace"
)

// DefaultShards is the default number of mutex stripes.
const DefaultShards = 16

// Collector is the concurrent warranty-analysis store.
type Collector struct {
	shards []*shard

	events    atomic.Int64 // events ingested
	malformed atomic.Int64 // events dropped for unparsable fields
	corrupt   atomic.Int64 // undecodable trace lines skipped by readers
}

type shard struct {
	mu       sync.Mutex
	vehicles map[int]*vehicleState
	frames   int64 // frame events ingested into this shard
}

// NewCollector creates a collector with the given number of shards
// (values < 1 use DefaultShards).
func NewCollector(shards int) *Collector {
	if shards < 1 {
		shards = DefaultShards
	}
	c := &Collector{shards: make([]*shard, shards)}
	for i := range c.shards {
		c.shards[i] = &shard{vehicles: make(map[int]*vehicleState)}
	}
	return c
}

// truthRec is one ground-truth fault of a vehicle (from a "truth" event).
type truthRec struct {
	class   core.FaultClass
	subject string
	detail  string
}

// adviceRec is one advisor's standing advice for a FRU.
type adviceRec struct {
	action core.MaintenanceAction
	class  core.FaultClass
}

// trustAcc accumulates one FRU's trust trajectory on one vehicle:
// order-independent regression sums over (t seconds, trust) plus the
// endpoints in stream order.
type trustAcc struct {
	n                        int
	sumT, sumY, sumTY, sumTT float64
	min                      float64
	first, last              float64
	firstT, lastT            int64
}

func (a *trustAcc) add(tUS int64, y float64) {
	t := float64(tUS) / 1e6
	if a.n == 0 || y < a.min {
		a.min = y
	}
	if a.n == 0 || tUS < a.firstT {
		a.first, a.firstT = y, tUS
	}
	if a.n == 0 || tUS >= a.lastT {
		a.last, a.lastT = y, tUS
	}
	a.n++
	a.sumT += t
	a.sumY += y
	a.sumTY += t * y
	a.sumTT += t * t
}

// slope returns the least-squares trust slope in 1/s (0 with < 2 samples
// or a degenerate time base).
func (a *trustAcc) slope() float64 {
	if a.n < 2 {
		return 0
	}
	n := float64(a.n)
	den := n*a.sumTT - a.sumT*a.sumT
	if den == 0 {
		return 0
	}
	return (n*a.sumTY - a.sumT*a.sumY) / den
}

// patternAcc accumulates one ONA pattern's signature statistics on one
// vehicle (Fig. 8: which patterns fire, how often, with what confidence).
type patternAcc struct {
	count    int
	sumConf  float64
	subjects map[string]bool
}

// vehicleState is everything retained per vehicle. It is only ever
// mutated under its shard's mutex, in stream order.
type vehicleState struct {
	events    int
	sawHeader bool
	faultFree bool

	truths []truthRec
	advice map[string]map[string]adviceRec // source -> FRU -> advice

	frames    int
	symptoms  map[string]int // symptom kind -> count
	verdicts  int
	bySubject map[string]*subjectState // FRU string -> per-FRU state
	patterns  map[string]*patternAcc   // pattern -> stats
	incidents []string                 // job names of job-inherent verdicts
}

// subjectState is the per-FRU slice of a vehicle's state.
type subjectState struct {
	trust    trustAcc
	verdicts int
	patterns map[string]int
}

func newVehicleState() *vehicleState {
	return &vehicleState{
		advice:    make(map[string]map[string]adviceRec),
		symptoms:  make(map[string]int),
		bySubject: make(map[string]*subjectState),
		patterns:  make(map[string]*patternAcc),
	}
}

func (v *vehicleState) subject(name string) *subjectState {
	s := v.bySubject[name]
	if s == nil {
		s = &subjectState{patterns: make(map[string]int)}
		v.bySubject[name] = s
	}
	return s
}

func (c *Collector) shardFor(vehicle int) *shard {
	n := len(c.shards)
	return c.shards[((vehicle%n)+n)%n]
}

// Ingest folds one trace event into the store. Events of one vehicle must
// arrive in stream order (one uplink per vehicle); different vehicles may
// ingest concurrently.
func (c *Collector) Ingest(e trace.Event) {
	sh := c.shardFor(e.Vehicle)
	sh.mu.Lock()
	defer sh.mu.Unlock()

	v := sh.vehicles[e.Vehicle]
	if v == nil {
		v = newVehicleState()
		sh.vehicles[e.Vehicle] = v
	}
	v.events++
	c.events.Add(1)

	switch e.Kind {
	case "frame":
		v.frames++
		// Counted per shard under the lock already held — an atomic here
		// would be a measurable tax on the per-event ingest path.
		sh.frames++
	case "symptom":
		v.symptoms[e.Symptom] += e.Count
	case "verdict":
		class, err := core.ParseFaultClass(e.Class)
		if err != nil {
			c.malformed.Add(1)
			return
		}
		v.verdicts++
		s := v.subject(e.Subject)
		s.verdicts++
		if e.Pattern != "" {
			s.patterns[e.Pattern]++
			p := v.patterns[e.Pattern]
			if p == nil {
				p = &patternAcc{subjects: make(map[string]bool)}
				v.patterns[e.Pattern] = p
			}
			p.count++
			p.sumConf += e.Conf
			p.subjects[e.Subject] = true
		}
		if fleet.Relevant(class) {
			if f, err := core.ParseFRU(e.Subject); err == nil && !f.IsHardware() {
				v.incidents = append(v.incidents, f.Job)
			} else {
				c.malformed.Add(1)
			}
		}
	case "trust":
		if e.Trust != nil {
			v.subject(e.Subject).trust.add(e.T, *e.Trust)
		}
	case "vehicle":
		v.sawHeader = true
		v.faultFree = e.Detail == "fault-free"
	case "truth":
		class, err := core.ParseFaultClass(e.Class)
		if err != nil {
			c.malformed.Add(1)
			return
		}
		v.truths = append(v.truths, truthRec{class: class, subject: e.Subject, detail: e.Detail})
	case "advice":
		action, aerr := core.ParseMaintenanceAction(e.Action)
		class, cerr := core.ParseFaultClass(e.Class)
		if aerr != nil || cerr != nil || e.Source == "" {
			c.malformed.Add(1)
			return
		}
		m := v.advice[e.Source]
		if m == nil {
			m = make(map[string]adviceRec)
			v.advice[e.Source] = m
		}
		m[e.Subject] = adviceRec{action: action, class: class}
	case "injection":
		// Ground truth for the audit arrives via "truth" events; the
		// activation timeline itself is not aggregated.
	}
}

// IngestStream decodes a trace stream — NDJSON or binary, sniffed from
// the first bytes — and ingests every event. Corrupt records are skipped
// and counted, per the trace readers' semantics. maxLineBytes bounds one
// record's decode buffer (< 1 uses the default).
func (c *Collector) IngestStream(r io.Reader, maxLineBytes int) (events, corrupt int, err error) {
	rd, _ := trace.OpenReader(r)
	rd.SetMaxRecordBytes(maxLineBytes)
	err = rd.ReadAll(func(e trace.Event) {
		c.Ingest(e)
		events++
	})
	corrupt = rd.Corrupt()
	c.corrupt.Add(int64(corrupt))
	return events, corrupt, err
}

// Events returns the number of events ingested so far.
func (c *Collector) Events() int64 { return c.events.Load() }

// Frames returns the number of frame events ingested so far.
func (c *Collector) Frames() int64 {
	var n int64
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += sh.frames
		sh.mu.Unlock()
	}
	return n
}

// Corrupt returns the number of undecodable trace lines skipped.
func (c *Collector) Corrupt() int64 { return c.corrupt.Load() }

// Malformed returns the number of events dropped for unparsable fields.
func (c *Collector) Malformed() int64 { return c.malformed.Load() }

// Vehicles returns the number of distinct vehicles seen.
func (c *Collector) Vehicles() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += len(sh.vehicles)
		sh.mu.Unlock()
	}
	return n
}

// ShardDepth returns the deepest and shallowest per-shard vehicle counts —
// the skew a bad vehicle-id distribution would show up as.
func (c *Collector) ShardDepth() (max, min int) {
	for i, sh := range c.shards {
		sh.mu.Lock()
		n := len(sh.vehicles)
		sh.mu.Unlock()
		if i == 0 || n > max {
			max = n
		}
		if i == 0 || n < min {
			min = n
		}
	}
	return max, min
}
