package warranty

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestWarmStandbyKillRestart is the fleetd -state-dir contract: a
// collector killed after persisting its state and restarted from the
// file — with a different shard count, even — continues ingesting as if
// it never died. The final summary and snapshot export must be
// byte-identical to an uninterrupted collector's.
func TestWarmStandbyKillRestart(t *testing.T) {
	blobs := campaignBlobs(t, 10, 600)
	path := filepath.Join(t.TempDir(), StateFileName)

	// Uninterrupted reference: one collector sees every vehicle.
	ref := NewCollector(0)
	for v := 1; v <= len(blobs); v++ {
		if _, _, err := ref.IngestStream(bytes.NewReader(blobs[v]), 0); err != nil {
			t.Fatal(err)
		}
	}

	// First incarnation ingests half the fleet, then "dies" gracefully:
	// exactly what fleetd does on SIGTERM.
	first := NewCollector(4)
	for v := 1; v <= len(blobs)/2; v++ {
		if _, _, err := first.IngestStream(bytes.NewReader(blobs[v]), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := SaveState(path, first.Snapshot("peer-a")); err != nil {
		t.Fatalf("SaveState: %v", err)
	}

	// Second incarnation boots warm — different shard count on purpose:
	// the state is sharding-independent.
	snap, err := LoadState(path)
	if err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	second := NewCollector(7)
	if err := second.LoadSnapshot(snap); err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if second.Events() != first.Events() || second.Vehicles() != first.Vehicles() {
		t.Fatalf("restored %d events / %d vehicles, want %d / %d",
			second.Events(), second.Vehicles(), first.Events(), first.Vehicles())
	}
	for v := len(blobs)/2 + 1; v <= len(blobs); v++ {
		if _, _, err := second.IngestStream(bytes.NewReader(blobs[v]), 0); err != nil {
			t.Fatal(err)
		}
	}

	wantSummary := summaryJSON(t, ref.Summary(0))
	gotSummary := summaryJSON(t, second.Summary(0))
	if !bytes.Equal(gotSummary, wantSummary) {
		t.Error("summary after kill-and-restart differs from uninterrupted collector")
	}
	want, _ := json.Marshal(ref.Snapshot("peer-a"))
	got, _ := json.Marshal(second.Snapshot("peer-a"))
	if !bytes.Equal(got, want) {
		t.Error("snapshot export after kill-and-restart differs from uninterrupted collector")
	}
	if second.Frames() != ref.Frames() {
		t.Errorf("frames = %d after restart, want %d", second.Frames(), ref.Frames())
	}
}

// TestLoadSnapshotRefuses: version skew, non-empty targets and unordered
// vehicles are boot failures, not silent corruption.
func TestLoadSnapshotRefuses(t *testing.T) {
	blobs := campaignBlobs(t, 3, 300)
	col := NewCollector(0)
	for _, b := range blobs {
		if _, _, err := col.IngestStream(bytes.NewReader(b), 0); err != nil {
			t.Fatal(err)
		}
	}
	snap := col.Snapshot("p")

	bad := *snap
	bad.Version = SnapshotVersion + 1
	if err := NewCollector(0).LoadSnapshot(&bad); err == nil {
		t.Error("version skew accepted")
	}
	if err := col.LoadSnapshot(snap); err == nil {
		t.Error("load into a non-empty collector accepted")
	}
	if len(snap.Vehicles) >= 2 {
		disordered := *snap
		disordered.Vehicles = append([]VehicleSnapshot(nil), snap.Vehicles...)
		disordered.Vehicles[0], disordered.Vehicles[1] = disordered.Vehicles[1], disordered.Vehicles[0]
		if err := NewCollector(0).LoadSnapshot(&disordered); err == nil {
			t.Error("unordered vehicles accepted")
		}
	}
}

// TestStateFileAtomicAndMissing: LoadState distinguishes a cold start
// (os.IsNotExist) from a corrupt file, and SaveState replaces the target
// atomically without leaving temp files behind.
func TestStateFileAtomicAndMissing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, StateFileName)

	if _, err := LoadState(path); !os.IsNotExist(err) {
		t.Errorf("missing state: err = %v, want os.IsNotExist", err)
	}
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadState(path); err == nil || os.IsNotExist(err) {
		t.Errorf("corrupt state: err = %v, want decode failure", err)
	}

	col := NewCollector(0)
	for _, b := range campaignBlobs(t, 2, 300) {
		if _, _, err := col.IngestStream(bytes.NewReader(b), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := SaveState(path, col.Snapshot("p")); err != nil {
		t.Fatalf("SaveState over corrupt file: %v", err)
	}
	if _, err := LoadState(path); err != nil {
		t.Fatalf("LoadState after save: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("state dir has %d entries after save, want just the state file", len(entries))
	}
}
