// Package clock models the fault-tolerant clock synchronization core service
// of the DECOS time-triggered architecture (core service C2 in the paper's
// Fig. 1) together with the sparse time base ("action lattice") on which the
// diagnostic subsystem orders its observations.
//
// Each component owns a local oscillator with a systematic drift rate (a
// quartz property) plus short-term jitter. Once per TDMA round the cluster
// resynchronizes with the fault-tolerant average (FTA) algorithm: every node
// measures the deviation of every other node's clock from its own, discards
// the k largest and k smallest measurements (tolerating k arbitrary faulty
// clocks), and applies the mean of the rest as a correction. A node whose
// deviation exceeds the precision window — e.g. because of a defective
// quartz, one of the component-internal faults of the paper's Section
// IV-A.1c — loses synchronization and is excluded from the membership.
package clock

import (
	"fmt"
	"math"

	"decos/internal/sim"
)

// Oscillator is a local free-running clock. Local time progresses at
// (1 + DriftPPM·1e-6) of global simulated time, plus white measurement
// jitter. Real quartz drift for automotive-grade parts is on the order of
// 1e-5..1e-4; a "defective quartz" fault raises DriftPPM by orders of
// magnitude.
type Oscillator struct {
	DriftPPM  float64 // systematic rate deviation, parts per million
	JitterUS  float64 // stddev of per-reading jitter, microseconds
	offsetUS  float64 // accumulated state correction, microseconds
	baseAt    sim.Time
	baseLocal float64
	rng       *sim.RNG
}

// NewOscillator returns an oscillator with the given systematic drift and
// reading jitter. The rng is used only for jitter; pass nil for a jitter-free
// ideal oscillator.
func NewOscillator(driftPPM, jitterUS float64, rng *sim.RNG) *Oscillator {
	return &Oscillator{DriftPPM: driftPPM, JitterUS: jitterUS, rng: rng}
}

// Read returns the local clock reading (in local microseconds) at global
// time now.
func (o *Oscillator) Read(now sim.Time) float64 {
	elapsed := float64(now - o.baseAt)
	local := o.baseLocal + elapsed*(1+o.DriftPPM*1e-6) + o.offsetUS
	if o.rng != nil && o.JitterUS > 0 {
		local += o.rng.Norm(0, o.JitterUS)
	}
	return local
}

// Adjust applies a state correction of deltaUS local microseconds at global
// time now (the FTA correction term).
func (o *Oscillator) Adjust(now sim.Time, deltaUS float64) {
	// Fold current state into the base so the correction is a clean step.
	elapsed := float64(now - o.baseAt)
	o.baseLocal += elapsed*(1+o.DriftPPM*1e-6) + o.offsetUS
	o.baseAt = now
	o.offsetUS = deltaUS
}

// Deviation returns the deviation of the local clock from global time at
// time now, in microseconds (positive = local clock fast).
func (o *Oscillator) Deviation(now sim.Time) float64 {
	return o.Read(now) - float64(now)
}

// FTA computes the fault-tolerant average of the given deviation
// measurements, discarding the k smallest and k largest values. It returns
// the average of the remainder. If 2k >= len(devs) it returns 0 (no
// correction possible with so few readings).
func FTA(devs []float64, k int) float64 {
	n := len(devs)
	if n == 0 || 2*k >= n {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, devs)
	return ftaSorted(sorted, k)
}

// ftaSorted is FTA's core on a caller-owned scratch copy of the
// measurements; it sorts in place.
func ftaSorted(scratch []float64, k int) float64 {
	n := len(scratch)
	if n == 0 || 2*k >= n {
		return 0
	}
	insertionSort(scratch)
	sum := 0.0
	for _, v := range scratch[k : n-k] {
		sum += v
	}
	return sum / float64(n-2*k)
}

func insertionSort(a []float64) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// Cluster is the set of synchronized oscillators of one DECOS cluster.
type Cluster struct {
	Oscillators []*Oscillator
	// PrecisionUS is the synchronization window Π: a node whose post-sync
	// deviation from the ensemble exceeds Π is considered out of sync.
	PrecisionUS float64
	// Tolerated is k, the number of arbitrary faulty clocks the FTA step
	// tolerates.
	Tolerated int

	inSync []bool

	// Resync scratch, reused every round.
	devs        []float64
	idx         []int
	sortScratch []float64
}

// NewCluster builds a cluster of n oscillators with drifts drawn uniformly
// from [-maxDriftPPM, +maxDriftPPM] and the given jitter.
func NewCluster(n int, maxDriftPPM, jitterUS, precisionUS float64, k int, rng *sim.RNG) *Cluster {
	c := &Cluster{
		PrecisionUS: precisionUS,
		Tolerated:   k,
		inSync:      make([]bool, n),
	}
	for i := 0; i < n; i++ {
		drift := (2*rng.Float64() - 1) * maxDriftPPM
		c.Oscillators = append(c.Oscillators, NewOscillator(drift, jitterUS, rng))
		c.inSync[i] = true
	}
	return c
}

// InSync reports whether node i was within the precision window at the last
// Resync.
func (c *Cluster) InSync(i int) bool { return c.inSync[i] }

// Resync performs one FTA resynchronization round at global time now and
// returns the achieved precision (max pairwise deviation of in-sync nodes
// after correction). Nodes whose deviation from the fault-tolerant ensemble
// midpoint exceeds PrecisionUS are marked out of sync and do not contribute
// to subsequent corrections.
func (c *Cluster) Resync(now sim.Time) float64 {
	devs := c.devs[:0]
	idx := c.idx[:0]
	for i, o := range c.Oscillators {
		if !c.inSync[i] {
			continue
		}
		devs = append(devs, o.Deviation(now))
		idx = append(idx, i)
	}
	c.devs, c.idx = devs[:0], idx[:0]
	c.sortScratch = append(c.sortScratch[:0], devs...)
	mid := ftaSorted(c.sortScratch, c.Tolerated)
	// Correct each in-sync node toward the ensemble midpoint and check the
	// precision window.
	for j, i := range idx {
		corr := mid - devs[j]
		if math.Abs(devs[j]-mid) > c.PrecisionUS {
			c.inSync[i] = false
			continue
		}
		c.Oscillators[i].Adjust(now, corr)
	}
	return c.Precision(now)
}

// Readmit marks node i as in sync again (after repair/restart) and snaps
// its oscillator onto the synchronized ensemble. Snapping to the ensemble
// midpoint — not to an external time reference — matters: the ensemble's
// notion of time random-walks away from any external reference, and a node
// integrated against the wrong reference would immediately be expelled
// again.
func (c *Cluster) Readmit(now sim.Time, i int) {
	// Ensemble midpoint over the other in-sync nodes.
	var sum float64
	n := 0
	for j, o := range c.Oscillators {
		if j == i || !c.inSync[j] {
			continue
		}
		sum += o.Deviation(now)
		n++
	}
	target := 0.0
	if n > 0 {
		target = sum / float64(n)
	}
	c.inSync[i] = true
	c.Oscillators[i].Adjust(now, target-c.Oscillators[i].Deviation(now))
}

// Precision returns the maximum pairwise deviation among in-sync nodes at
// time now, in microseconds. It returns 0 when fewer than two nodes are in
// sync.
func (c *Cluster) Precision(now sim.Time) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	count := 0
	for i, o := range c.Oscillators {
		if !c.inSync[i] {
			continue
		}
		d := o.Deviation(now)
		lo = math.Min(lo, d)
		hi = math.Max(hi, d)
		count++
	}
	if count < 2 {
		return 0
	}
	return hi - lo
}

// SyncedCount returns the number of in-sync nodes.
func (c *Cluster) SyncedCount() int {
	n := 0
	for _, ok := range c.inSync {
		if ok {
			n++
		}
	}
	return n
}

func (c *Cluster) String() string {
	return fmt.Sprintf("clock.Cluster{n=%d, Π=%.1fµs, k=%d, synced=%d}",
		len(c.Oscillators), c.PrecisionUS, c.Tolerated, c.SyncedCount())
}
