package clock

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"decos/internal/sim"
)

func TestOscillatorIdealTracksGlobal(t *testing.T) {
	o := NewOscillator(0, 0, nil)
	for _, at := range []sim.Time{0, 1000, sim.Time(sim.Second)} {
		if got := o.Read(at); got != float64(at) {
			t.Errorf("ideal oscillator Read(%v) = %v", at, got)
		}
	}
}

func TestOscillatorDrift(t *testing.T) {
	o := NewOscillator(100, 0, nil) // 100 ppm fast
	at := sim.Time(sim.Second)      // 1e6 µs
	want := 1e6 * (1 + 100e-6)
	if got := o.Read(at); math.Abs(got-want) > 1e-6 {
		t.Errorf("Read = %v, want %v", got, want)
	}
	if dev := o.Deviation(at); math.Abs(dev-100) > 1e-6 {
		t.Errorf("Deviation = %v µs, want 100", dev)
	}
}

func TestOscillatorAdjustStepsAndDriftContinues(t *testing.T) {
	o := NewOscillator(50, 0, nil)
	t1 := sim.Time(sim.Second)
	dev := o.Deviation(t1)
	o.Adjust(t1, -dev) // snap onto global time
	if d := o.Deviation(t1); math.Abs(d) > 1e-9 {
		t.Fatalf("deviation after snap = %v", d)
	}
	// Drift accumulates again from the adjustment point.
	t2 := t1.Add(sim.Second)
	if d := o.Deviation(t2); math.Abs(d-50) > 1e-6 {
		t.Errorf("deviation 1s after snap = %v, want 50", d)
	}
}

func TestFTADiscardsExtremes(t *testing.T) {
	devs := []float64{-1000, 1, 2, 3, 1000}
	if got := FTA(devs, 1); math.Abs(got-2) > 1e-9 {
		t.Errorf("FTA = %v, want 2", got)
	}
}

func TestFTADegenerate(t *testing.T) {
	if FTA(nil, 1) != 0 {
		t.Error("FTA(nil) != 0")
	}
	if FTA([]float64{5, 6}, 1) != 0 {
		t.Error("FTA with 2k >= n should return 0")
	}
}

// Property: FTA with k=1 of any ≥3 values lies within [min, max] of the
// middle values, so a single arbitrarily faulty clock cannot drag the
// correction outside the range of the correct clocks.
func TestFTABoundedByCorrectClocks(t *testing.T) {
	f := func(correct []float64, faulty float64) bool {
		if len(correct) < 3 {
			return true
		}
		for _, v := range correct {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true
			}
		}
		if math.IsNaN(faulty) || math.IsInf(faulty, 0) {
			return true
		}
		all := append(append([]float64{}, correct...), faulty)
		got := FTA(all, 1)
		sorted := append([]float64{}, correct...)
		sort.Float64s(sorted)
		// The FTA average discards one extreme on each side, so with one
		// faulty value the result is bounded by the correct values' range.
		return got >= sorted[0]-1e-9 && got <= sorted[len(sorted)-1]+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestClusterResyncMaintainsPrecision(t *testing.T) {
	rng := sim.NewRNG(1)
	c := NewCluster(6, 100, 0, 50, 1, rng) // ±100 ppm, Π=50µs
	// Resync every 2 ms for 1000 rounds: with 100 ppm drift, per-round
	// divergence is ≤ 0.4 µs, so precision must stay well within Π.
	now := sim.Time(0)
	worst := 0.0
	for r := 0; r < 1000; r++ {
		now = now.Add(2 * sim.Millisecond)
		p := c.Resync(now)
		worst = math.Max(worst, p)
	}
	if c.SyncedCount() != 6 {
		t.Fatalf("lost sync: %d/6 nodes in sync", c.SyncedCount())
	}
	if worst > 10 {
		t.Errorf("worst precision %v µs, want well under Π=50", worst)
	}
}

func TestClusterDefectiveQuartzLosesSync(t *testing.T) {
	rng := sim.NewRNG(2)
	c := NewCluster(5, 50, 0, 20, 1, rng)
	// Node 0's quartz goes defective: drift jumps to 50 000 ppm (5%).
	c.Oscillators[0].DriftPPM = 50000
	now := sim.Time(0)
	lost := -1
	for r := 0; r < 100; r++ {
		now = now.Add(2 * sim.Millisecond)
		c.Resync(now)
		if !c.InSync(0) {
			lost = r
			break
		}
	}
	if lost < 0 {
		t.Fatal("defective quartz node never lost sync")
	}
	if c.SyncedCount() != 4 {
		t.Errorf("SyncedCount = %d, want 4", c.SyncedCount())
	}
	// The healthy majority keeps its precision.
	if p := c.Precision(now); p > 20 {
		t.Errorf("healthy ensemble precision %v µs after exclusion", p)
	}
}

func TestClusterReadmit(t *testing.T) {
	rng := sim.NewRNG(3)
	c := NewCluster(4, 50, 0, 20, 1, rng)
	c.Oscillators[1].DriftPPM = 100000
	now := sim.Time(0)
	for r := 0; r < 50 && c.InSync(1); r++ {
		now = now.Add(2 * sim.Millisecond)
		c.Resync(now)
	}
	if c.InSync(1) {
		t.Fatal("node 1 should have lost sync")
	}
	// Repair: quartz replaced, node readmitted.
	c.Oscillators[1].DriftPPM = 10
	c.Readmit(now, 1)
	if !c.InSync(1) {
		t.Fatal("Readmit did not restore sync flag")
	}
	for r := 0; r < 100; r++ {
		now = now.Add(2 * sim.Millisecond)
		c.Resync(now)
	}
	if !c.InSync(1) {
		t.Error("repaired node lost sync again")
	}
}

func TestPrecisionFewNodes(t *testing.T) {
	rng := sim.NewRNG(4)
	c := NewCluster(1, 50, 0, 20, 0, rng)
	if c.Precision(0) != 0 {
		t.Error("precision with one node should be 0")
	}
}

func TestSparseBaseGranules(t *testing.T) {
	b := NewSparseBase(100, 900) // 1 ms lattice period
	cases := []struct {
		t sim.Time
		g int64
	}{
		{0, 0}, {99, 0}, {100, 0}, {999, 0}, {1000, 1}, {1500, 1}, {2000, 2},
	}
	for _, c := range cases {
		if got := b.Granule(c.t); got != c.g {
			t.Errorf("Granule(%d) = %d, want %d", c.t, got, c.g)
		}
	}
	if b.GranuleStart(2) != 2000 {
		t.Errorf("GranuleStart(2) = %v", b.GranuleStart(2))
	}
}

func TestSparseBaseActivity(t *testing.T) {
	b := NewSparseBase(100, 900)
	if !b.InActivity(50) {
		t.Error("t=50 should be in activity granule")
	}
	if b.InActivity(500) {
		t.Error("t=500 should be in silence")
	}
}

func TestSparseBaseSimultaneity(t *testing.T) {
	b := NewSparseBase(100, 900)
	if !b.Simultaneous(10, 90) {
		t.Error("events in same granule not simultaneous")
	}
	if b.Simultaneous(10, 1010) {
		t.Error("events in different granules reported simultaneous")
	}
	if !b.Within(10, 3010, 3) {
		t.Error("Within(delta=3) failed for 3-granule gap")
	}
	if b.Within(10, 4010, 3) {
		t.Error("Within(delta=3) passed for 4-granule gap")
	}
	if !b.Within(3010, 10, 3) {
		t.Error("Within not symmetric")
	}
}

func TestSparseBasePanicsOnDense(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dense base did not panic")
		}
	}()
	NewSparseBase(100, 0)
}
