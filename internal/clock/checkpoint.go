package clock

import (
	"fmt"

	"decos/internal/ckpt"
	"decos/internal/sim"
)

// Snapshot serializes the cluster's mutable synchronization state: per
// oscillator the drift (mutable via the defective-quartz fault), jitter,
// and the folded correction state, plus the in-sync flags. The resync
// scratch buffers are derived state and excluded.
func (c *Cluster) Snapshot(e *ckpt.Encoder) {
	e.Int(len(c.Oscillators))
	for i, o := range c.Oscillators {
		e.Float64(o.DriftPPM)
		e.Float64(o.JitterUS)
		e.Float64(o.offsetUS)
		e.Varint(int64(o.baseAt))
		e.Float64(o.baseLocal)
		e.Bool(c.inSync[i])
	}
}

// Restore overwrites a freshly built cluster's oscillator and sync state.
// The oscillators' jitter RNG is the shared "clocks" stream, restored
// separately with the stream states.
func (c *Cluster) Restore(d *ckpt.Decoder) error {
	n := d.Len(1 << 16)
	if d.Err() == nil && n != len(c.Oscillators) {
		return fmt.Errorf("clock: checkpoint has %d oscillators, cluster has %d", n, len(c.Oscillators))
	}
	for i := 0; i < n && d.Err() == nil; i++ {
		o := c.Oscillators[i]
		o.DriftPPM = d.Float64()
		o.JitterUS = d.Float64()
		o.offsetUS = d.Float64()
		o.baseAt = sim.Time(d.Varint())
		o.baseLocal = d.Float64()
		c.inSync[i] = d.Bool()
	}
	return d.Err()
}
