package clock

import "decos/internal/sim"

// SparseBase is the sparse time base of the time-triggered architecture
// (Kopetz, "Sparse time versus dense time in distributed real-time
// systems"). Global time is partitioned into an alternating sequence of
// activity granules of duration Pi and silence intervals of duration Delta.
// Events that fall into the same granule are, by construction, simultaneous
// for every node of the cluster; events in different granules are
// consistently ordered. The diagnostic subsystem uses the granule index as
// its "action lattice" coordinate: two symptoms carry the same lattice index
// exactly when every correct observer agrees they happened at the same time.
type SparseBase struct {
	// Pi is the activity granule duration.
	Pi sim.Duration
	// Delta is the silence interval between granules.
	Delta sim.Duration
}

// NewSparseBase returns a sparse time base with the given granule and
// silence durations. It panics if either is non-positive: a dense time base
// (Delta == 0) would forfeit the consistent ordering the diagnosis relies on.
func NewSparseBase(pi, delta sim.Duration) *SparseBase {
	if pi <= 0 || delta <= 0 {
		panic("clock: sparse base requires positive granule and silence")
	}
	return &SparseBase{Pi: pi, Delta: delta}
}

// period returns the lattice period Pi+Delta.
func (b *SparseBase) period() sim.Duration { return b.Pi + b.Delta }

// Granule returns the action-lattice index of time t: the index of the
// activity granule containing t, or, if t falls into a silence interval, the
// index of the preceding granule (the event is attributed to the last
// completed activity interval).
func (b *SparseBase) Granule(t sim.Time) int64 {
	return t.Micros() / b.period().Micros()
}

// GranuleStart returns the start time of granule g.
func (b *SparseBase) GranuleStart(g int64) sim.Time {
	return sim.Time(g * b.period().Micros())
}

// InActivity reports whether t falls inside an activity granule (as opposed
// to a silence interval). A correct time-triggered system only generates
// events during activity granules.
func (b *SparseBase) InActivity(t sim.Time) bool {
	phase := t.Micros() % b.period().Micros()
	return phase < b.Pi.Micros()
}

// Simultaneous reports whether two events are simultaneous on the sparse
// base, i.e. fall into the same granule.
func (b *SparseBase) Simultaneous(t1, t2 sim.Time) bool {
	return b.Granule(t1) == b.Granule(t2)
}

// Within reports whether the two times fall within delta granules of each
// other — the "approximately at the same time (within a small delta)"
// condition of the massive-transient fault pattern in the paper's Fig. 8.
func (b *SparseBase) Within(t1, t2 sim.Time, delta int64) bool {
	g1, g2 := b.Granule(t1), b.Granule(t2)
	d := g1 - g2
	if d < 0 {
		d = -d
	}
	return d <= delta
}
