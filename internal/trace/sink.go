package trace

import (
	"encoding/json"
	"io"
	"sort"
)

// Sink consumes trace events. It is the pluggable back end of a Recorder:
// the same cluster instrumentation can stream NDJSON to a file or an
// uplink, feed in-process metrics, fan out to both, or be discarded —
// without the recording call sites knowing which. Implementations are used
// from the single-threaded simulator loop and need not be safe for
// concurrent use unless documented otherwise.
type Sink interface {
	// Record consumes one event. A non-nil error stops the recorder that
	// owns the sink (recording is best-effort observation; the simulation
	// itself never fails because a trace back end did).
	Record(e *Event) error
	// Close flushes and releases the sink. A recorder never calls Close
	// itself — the owner of the underlying resource does.
	Close() error
}

// NDJSONSink encodes events as JSON lines to an io.Writer — the on-disk
// and on-wire trace format (the offline warranty interface of the paper's
// Section V-B).
type NDJSONSink struct {
	enc *json.Encoder
	c   io.Closer
}

// NewNDJSONSink returns a sink writing one JSON object per line to w. If w
// is also an io.Closer, Close closes it.
func NewNDJSONSink(w io.Writer) *NDJSONSink {
	s := &NDJSONSink{enc: json.NewEncoder(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Record encodes e as one NDJSON line.
func (s *NDJSONSink) Record(e *Event) error { return s.enc.Encode(e) }

// Close closes the underlying writer when it is an io.Closer.
func (s *NDJSONSink) Close() error {
	if s.c != nil {
		return s.c.Close()
	}
	return nil
}

// CountingSink tallies events by kind without retaining them — the cheap
// metrics back end for long soak runs where a full NDJSON stream would be
// gigabytes.
type CountingSink struct {
	total  int
	byKind map[string]int
	lastT  int64
}

// NewCountingSink returns an empty counting sink.
func NewCountingSink() *CountingSink {
	return &CountingSink{byKind: make(map[string]int)}
}

// Record counts e.
func (s *CountingSink) Record(e *Event) error {
	s.total++
	s.byKind[e.Kind]++
	if e.T > s.lastT {
		s.lastT = e.T
	}
	return nil
}

// Close is a no-op.
func (s *CountingSink) Close() error { return nil }

// Total returns the number of events recorded.
func (s *CountingSink) Total() int { return s.total }

// Count returns the number of events of the given kind.
func (s *CountingSink) Count(kind string) int { return s.byKind[kind] }

// Kinds returns the observed event kinds in sorted order.
func (s *CountingSink) Kinds() []string {
	out := make([]string, 0, len(s.byKind))
	for k := range s.byKind {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// LastT returns the largest event timestamp seen, in microseconds.
func (s *CountingSink) LastT() int64 { return s.lastT }

// teeSink fans every event out to all children.
type teeSink struct{ sinks []Sink }

// Tee returns a sink duplicating every event to all the given sinks, in
// order. Record stops at — and returns — the first child error; Close
// closes every child and returns the first error.
func Tee(sinks ...Sink) Sink {
	// Flatten nested tees and drop no-ops so hot Record loops stay short.
	flat := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		switch v := s.(type) {
		case nil, nopSink:
		case *teeSink:
			flat = append(flat, v.sinks...)
		default:
			flat = append(flat, s)
		}
	}
	switch len(flat) {
	case 0:
		return Nop()
	case 1:
		return flat[0]
	}
	return &teeSink{sinks: flat}
}

func (t *teeSink) Record(e *Event) error {
	for _, s := range t.sinks {
		if err := s.Record(e); err != nil {
			return err
		}
	}
	return nil
}

func (t *teeSink) Close() error {
	var first error
	for _, s := range t.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// nopSink discards everything. It is a sentinel: attach points recognize
// it (IsNop) and skip instrumentation entirely, so a run configured with
// the no-op sink pays nothing on the simulator hot path.
type nopSink struct{}

func (nopSink) Record(*Event) error { return nil }
func (nopSink) Close() error        { return nil }

// Nop returns the no-op sink.
func Nop() Sink { return nopSink{} }

// IsNop reports whether s is nil or the no-op sink — i.e. recording
// through it could never observe anything, and instrumentation may be
// skipped altogether.
func IsNop(s Sink) bool {
	if s == nil {
		return true
	}
	_, ok := s.(nopSink)
	return ok
}
