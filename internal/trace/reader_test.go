package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func ptrInt(v int) *int { return &v }

func sampleEvents() []Event {
	tv := 0.42
	return []Event{
		{T: 1000, Kind: "frame", Sender: ptrInt(2), Slot: ptrInt(3), Status: "corrupt"},
		{T: 2000, Kind: "symptom", Symptom: "omission", Subject: "component[1]", Observer: ptrInt(0), Count: 4, Dev: 1.5},
		{T: 3000, Kind: "verdict", Subject: "job[A/A1@0]", Class: "job-inherent", Pattern: "software", Action: "inspect-transducer", Conf: 0.8},
		{T: 4000, Kind: "trust", Subject: "component[2]", Trust: &tv},
		{T: 5000, Kind: "injection", Class: "component-borderline", Subject: "component[0]", Detail: "tx connector fretting"},
	}
}

// TestReaderRoundTrip writes events with the Recorder and reads them back.
func TestReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf, Options{Vehicle: 7})
	for _, e := range sampleEvents() {
		rec.write(e)
	}
	if rec.Err != nil {
		t.Fatal(rec.Err)
	}

	r := NewReader(&buf)
	var got []Event
	if err := r.ReadAll(func(e Event) { got = append(got, e) }); err != nil {
		t.Fatal(err)
	}
	want := sampleEvents()
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.Vehicle != 7 {
			t.Errorf("event %d: vehicle = %d, want 7 (stamped)", i, e.Vehicle)
		}
		if e.Kind != want[i].Kind || e.T != want[i].T || e.Subject != want[i].Subject {
			t.Errorf("event %d mismatch: %+v vs %+v", i, e, want[i])
		}
	}
	if e := sampleEvents()[3]; got[3].Trust == nil || *got[3].Trust != *e.Trust {
		t.Error("trust value lost in round trip")
	}
	if r.Corrupt() != 0 || r.Lines() != len(want) {
		t.Errorf("lines=%d corrupt=%d, want %d/0", r.Lines(), r.Corrupt(), len(want))
	}
}

// TestReaderRecovery: corrupt lines are counted and skipped, never fatal.
func TestReaderRecovery(t *testing.T) {
	stream := `{"t_us":1,"kind":"frame"}
this is not json
{"t_us":2,"kind":"symptom","subject":"component[1]"}
{"t_us":3,   <- truncated
{"no_kind_field":true}

{"t_us":4,"kind":"trust","subject":"component[2]"}
`
	r := NewReader(strings.NewReader(stream))
	var kinds []string
	if err := r.ReadAll(func(e Event) { kinds = append(kinds, e.Kind) }); err != nil {
		t.Fatal(err)
	}
	if want := []string{"frame", "symptom", "trust"}; strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Errorf("kinds = %v, want %v", kinds, want)
	}
	if r.Corrupt() != 3 {
		t.Errorf("corrupt = %d, want 3", r.Corrupt())
	}
	if r.Lines() != 6 {
		t.Errorf("lines = %d, want 6 (empty line not counted)", r.Lines())
	}
}

// TestReaderBoundedLine: an over-long line is dropped without growing the
// decode buffer and without killing the stream.
func TestReaderBoundedLine(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(`{"t_us":1,"kind":"frame"}` + "\n")
	buf.WriteString(`{"t_us":2,"kind":"symptom","detail":"` + strings.Repeat("x", 1<<21) + `"}` + "\n")
	buf.WriteString(`{"t_us":3,"kind":"trust"}` + "\n")

	r := NewReader(&buf)
	r.SetMaxLineBytes(64 << 10)
	var kinds []string
	if err := r.ReadAll(func(e Event) { kinds = append(kinds, e.Kind) }); err != nil {
		t.Fatal(err)
	}
	if want := "frame,trust"; strings.Join(kinds, ",") != want {
		t.Errorf("kinds = %v, want %s", kinds, want)
	}
	if r.Corrupt() != 1 {
		t.Errorf("corrupt = %d, want 1", r.Corrupt())
	}
}

// TestReaderNoTrailingNewline: the final unterminated line still decodes.
func TestReaderNoTrailingNewline(t *testing.T) {
	r := NewReader(strings.NewReader(`{"t_us":9,"kind":"frame"}`))
	e, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if e.T != 9 || e.Kind != "frame" {
		t.Errorf("got %+v", e)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("want io.EOF, got %v", err)
	}
}

// TestReaderCorruptErrorsLineNumbers: recovery errors carry the 1-based
// line number of the skipped line.
func TestReaderCorruptErrorsLineNumbers(t *testing.T) {
	stream := `{"t_us":1,"kind":"frame"}
garbage
{"t_us":2,"kind":"trust"}
{"no_kind_field":true}
`
	r := NewReader(strings.NewReader(stream))
	if err := r.ReadAll(func(Event) {}); err != nil {
		t.Fatal(err)
	}
	errs := r.CorruptErrors()
	if len(errs) != 2 {
		t.Fatalf("CorruptErrors = %v, want 2 entries", errs)
	}
	if !strings.Contains(errs[0].Error(), "line 2") {
		t.Errorf("first error %q does not name line 2", errs[0])
	}
	if !strings.Contains(errs[1].Error(), "line 4") || !strings.Contains(errs[1].Error(), "without kind") {
		t.Errorf("second error %q does not name line 4 / missing kind", errs[1])
	}
}

// TestReaderTruncatedFinalLine: a stream cut off mid-record — the common
// failure of an interrupted uplink — is flagged as such, with the line
// number, and does not kill the rest of the read.
func TestReaderTruncatedFinalLine(t *testing.T) {
	stream := `{"t_us":1,"kind":"frame"}
{"t_us":2,"kind":"symptom"}
{"t_us":3,"kind":"ver`
	r := NewReader(strings.NewReader(stream))
	var kinds []string
	if err := r.ReadAll(func(e Event) { kinds = append(kinds, e.Kind) }); err != nil {
		t.Fatal(err)
	}
	if want := "frame,symptom"; strings.Join(kinds, ",") != want {
		t.Errorf("kinds = %v, want %s", kinds, want)
	}
	if r.Corrupt() != 1 {
		t.Fatalf("corrupt = %d, want 1", r.Corrupt())
	}
	msg := r.CorruptErrors()[0].Error()
	if !strings.Contains(msg, "line 3") {
		t.Errorf("error %q does not name line 3", msg)
	}
	if !strings.Contains(msg, "truncated final line") {
		t.Errorf("error %q does not flag the truncated final line", msg)
	}
}

// TestReaderCorruptErrorsBounded: detail retention is capped; the count
// keeps going.
func TestReaderCorruptErrorsBounded(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 40; i++ {
		b.WriteString("not json\n")
	}
	r := NewReader(strings.NewReader(b.String()))
	if err := r.ReadAll(func(Event) {}); err != nil {
		t.Fatal(err)
	}
	if r.Corrupt() != 40 {
		t.Errorf("corrupt = %d, want 40", r.Corrupt())
	}
	if got := len(r.CorruptErrors()); got != maxCorruptErrors {
		t.Errorf("retained %d errors, want cap %d", got, maxCorruptErrors)
	}
}
