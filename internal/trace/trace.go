// Package trace records a structured event stream of a cluster run as
// JSON-lines: failed frames, disseminated symptoms, verdict emissions,
// trust samples and injection activations. The format is the offline
// interface to the OEM's warranty-analysis tooling the paper's Section V-B
// sketches (off-line analysis of returned units informing fault-pattern
// design) — and a debugging aid for the simulator itself.
package trace

import (
	"fmt"
	"io"

	"decos/internal/component"
	"decos/internal/diagnosis"
	"decos/internal/faults"
	"decos/internal/sim"
	"decos/internal/tt"
)

// Event is one trace record. Fields are populated per Kind.
type Event struct {
	T    int64  `json:"t_us"`
	Kind string `json:"kind"` // frame | symptom | verdict | trust | injection | vehicle | truth | advice

	// Vehicle identifies the originating vehicle in fleet traces
	// (1-based; 0 = single-vehicle trace). Stamped on every event when
	// Options.Vehicle is set, so mixed fleet streams remain shardable.
	Vehicle int `json:"vehicle,omitempty"`

	// Source names the advisor an advice event came from ("decos"/"obd").
	Source string `json:"source,omitempty"`

	// frame
	Sender *int   `json:"sender,omitempty"`
	Slot   *int   `json:"slot,omitempty"`
	Round  *int64 `json:"round,omitempty"`
	Status string `json:"status,omitempty"`

	// symptom
	Symptom  string  `json:"symptom,omitempty"`
	Subject  string  `json:"subject,omitempty"`
	Observer *int    `json:"observer,omitempty"`
	Count    int     `json:"count,omitempty"`
	Dev      float64 `json:"dev,omitempty"`

	// verdict
	Class   string  `json:"class,omitempty"`
	Pattern string  `json:"pattern,omitempty"`
	Action  string  `json:"action,omitempty"`
	Conf    float64 `json:"conf,omitempty"`

	// trust
	Trust *float64 `json:"trust,omitempty"`

	// injection
	Detail string `json:"detail,omitempty"`
}

// Options selects what the recorder captures.
type Options struct {
	// AllFrames records every slot; default records only failed frames.
	AllFrames bool
	// TrustEveryEpochs samples trust levels every N assessment epochs
	// (0 disables trust sampling).
	TrustEveryEpochs int64
	// Vehicle stamps every event with a vehicle identity (1-based) for
	// fleet-scale traces; 0 leaves events unstamped.
	Vehicle int
}

// Recorder feeds trace events into a Sink (NDJSON by default).
type Recorder struct {
	sink Sink
	opts Options

	// Events counts written records; Err holds the first write error
	// (recording stops after it).
	Events int
	Err    error

	// Incremental cursors over the injector ledger and the trust-sampling
	// epochs; fields (not closure state) so checkpoints can carry them.
	ledgerSeen     int
	lastTrustEpoch int64
}

// Attach wires an NDJSON recorder onto a cluster (and, optionally, its
// diagnostics and injector — pass nil to skip either). It must be called
// before the first round runs.
func Attach(cl *component.Cluster, d *diagnosis.Diagnostics, inj *faults.Injector, w io.Writer, opts Options) *Recorder {
	return AttachSink(cl, d, inj, NewNDJSONSink(w), opts)
}

// AttachSink is Attach with a caller-chosen back end. A nil or no-op sink
// installs no instrumentation at all: the returned recorder is inert and
// the simulator hot path keeps its zero-allocation contract.
func AttachSink(cl *component.Cluster, d *diagnosis.Diagnostics, inj *faults.Injector, sink Sink, opts Options) *Recorder {
	r := &Recorder{sink: sink, opts: opts}
	if IsNop(sink) {
		return r
	}

	cl.Bus.Observe(func(f *tt.Frame, _ []tt.FrameStatus) {
		if !opts.AllFrames && !f.Status.Failed() {
			return
		}
		s, sl, rd := int(f.Sender), f.Slot, f.Round
		r.write(Event{
			T: f.At.Micros(), Kind: "frame",
			Sender: &s, Slot: &sl, Round: &rd, Status: f.Status.String(),
		})
	})

	cl.OnRound(func(round int64, now sim.Time) {
		if inj != nil {
			for _, a := range inj.Ledger()[r.ledgerSeen:] {
				r.write(Event{
					T: now.Micros(), Kind: "injection",
					Class: a.Class.String(), Subject: a.Culprit.String(), Detail: a.Detail,
				})
			}
			r.ledgerSeen = len(inj.Ledger())
		}
		if d == nil {
			return
		}
		if opts.TrustEveryEpochs > 0 {
			if e := d.Assessor.Epoch(); e >= r.lastTrustEpoch+opts.TrustEveryEpochs {
				r.lastTrustEpoch = e
				for i := 0; i < d.Reg.Len(); i++ {
					tv := float64(d.Assessor.Trust(diagnosis.FRUIndex(i)))
					r.write(Event{
						T: now.Micros(), Kind: "trust",
						Subject: d.Reg.FRU(diagnosis.FRUIndex(i)).String(), Trust: &tv,
					})
				}
			}
		}
	})

	if d != nil {
		// Per-stage attach points of the assessment pipeline: verdicts are
		// streamed from the adviser stage as they are emitted, symptoms
		// from the collector stage as it ingests them off the virtual
		// diagnostic network.
		d.Assessor.OnVerdict(func(v diagnosis.Verdict) {
			r.write(Event{
				T: v.At.Micros(), Kind: "verdict",
				Subject: v.FRU.String(), Class: v.Class.String(),
				Pattern: v.Pattern, Action: v.Action.String(), Conf: v.Confidence,
			})
		})
		d.Assessor.OnSymptom(func(s diagnosis.Symptom) {
			obs := int(s.Observer)
			subject := fmt.Sprint(int(s.Subject))
			if int(s.Subject) < d.Reg.Len() {
				subject = d.Reg.FRU(s.Subject).String()
			}
			r.write(Event{
				T: s.At.Micros(), Kind: "symptom",
				Symptom: s.Kind.String(), Subject: subject,
				Observer: &obs, Count: int(s.Count), Dev: float64(s.Deviation),
			})
		})
	}
	return r
}

func (r *Recorder) write(e Event) {
	if r.Err != nil || r.sink == nil {
		return
	}
	if e.Vehicle == 0 {
		e.Vehicle = r.opts.Vehicle
	}
	if err := r.sink.Record(&e); err != nil {
		r.Err = err
		return
	}
	r.Events++
}
