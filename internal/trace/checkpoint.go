package trace

import "decos/internal/ckpt"

// Snapshot serializes the recorder's cursors so a restored run resumes
// the event stream exactly where the checkpointed one stood: no event is
// re-emitted, none is skipped. The sink itself is external (the caller
// re-opens the output and positions it); write errors do not cross the
// wire.
func (r *Recorder) Snapshot(e *ckpt.Encoder) {
	e.Int(r.Events)
	e.Int(r.ledgerSeen)
	e.Varint(r.lastTrustEpoch)
}

// Restore replaces the recorder's cursors.
func (r *Recorder) Restore(d *ckpt.Decoder) error {
	r.Events = d.Int()
	r.ledgerSeen = d.Int()
	r.lastTrustEpoch = d.Varint()
	return d.Err()
}
