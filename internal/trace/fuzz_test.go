package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// FuzzBinaryReader throws arbitrary bytes at the binary decoder and holds
// it to its contract: never panic, never loop, never surface a decode
// problem as a transport error — corrupt records are counted and reported
// with byte offsets, and a valid prefix still decodes. The corpus is
// seeded with the golden stream plus truncated and bit-flipped variants
// so the fuzzer starts at the interesting boundaries instead of the empty
// string.
func FuzzBinaryReader(f *testing.F) {
	golden := encodeBinaryFuzz(f)
	f.Add(golden)
	f.Add([]byte{})
	f.Add(AppendHeader(nil))
	f.Add(golden[:len(golden)-1])
	f.Add(golden[:binaryHeaderLen+1])
	f.Add(golden[:len(golden)/2])
	for _, i := range []int{0, 4, 5, 6, len(golden) / 2, len(golden) - 1} {
		flipped := append([]byte(nil), golden...)
		flipped[i] ^= 0x40
		f.Add(flipped)
	}
	f.Add([]byte(`{"t_us":1,"kind":"frame","vehicle":3}` + "\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		rd := NewBinaryReader(bytes.NewReader(data))
		events := 0
		for {
			_, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				// Only stream-level faults may surface: bad magic or an
				// unsupported version — and only on streams that carry them.
				if len(data) >= len(binaryMagic) && HasBinaryHeader(data) &&
					!strings.Contains(err.Error(), "version") {
					t.Fatalf("well-headed stream failed fatally: %v", err)
				}
				break
			}
			events++
			if events > len(data) {
				t.Fatalf("decoded %d events from %d bytes", events, len(data))
			}
		}
		for _, cerr := range rd.CorruptErrors() {
			if !strings.Contains(cerr.Error(), "offset") {
				t.Fatalf("corruption reported without an offset: %v", cerr)
			}
		}
		if rd.Corrupt() > 0 && len(rd.CorruptErrors()) == 0 {
			t.Fatalf("%d corrupt records with no retained detail", rd.Corrupt())
		}

		// The sniffing path must make the same no-panic guarantee whichever
		// decoder the bytes select.
		srd, _ := OpenReader(bytes.NewReader(data))
		if err := srd.ReadAll(func(Event) {}); err != nil && err != io.EOF {
			if len(data) >= len(binaryMagic) && HasBinaryHeader(data) &&
				!strings.Contains(err.Error(), "version") {
				t.Fatalf("OpenReader on well-headed stream: %v", err)
			}
		}
	})
}

func encodeBinaryFuzz(f *testing.F) []byte {
	f.Helper()
	var buf bytes.Buffer
	s := NewBinarySink(&buf)
	events := goldenEvents()
	for i := range events {
		if err := s.Record(&events[i]); err != nil {
			f.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}
