package trace

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_v1.bin from goldenEvents")

// goldenEvents is one event of every kind, exercising every field of the
// v1 layout: present and absent optional values, exact-binary-fraction
// and repeating-fraction floats, negative timestamps, empty strings.
func goldenEvents() []Event {
	sender, slot, observer := 2, 5, 1
	round := int64(1234)
	trust := 0.8125
	return []Event{
		{T: 0, Kind: "vehicle", Vehicle: 7, Detail: "faulty"},
		{T: 1, Kind: "truth", Vehicle: 7, Subject: "job[das/job@2]", Class: "job-inherent-software", Detail: "injected"},
		{T: 250, Kind: "frame", Vehicle: 7, Sender: &sender, Slot: &slot, Round: &round, Status: "omission"},
		{T: 500, Kind: "frame", Vehicle: 7, Status: "crash"},
		{T: 750, Kind: "symptom", Vehicle: 7, Symptom: "omission", Subject: "component[2]",
			Observer: &observer, Count: 3, Dev: 0.1 + 0.2}, // 0.30000000000000004: must round-trip exactly
		{T: 1000, Kind: "trust", Vehicle: 7, Subject: "component[2]", Trust: &trust},
		{T: 1250, Kind: "trust", Vehicle: 7, Subject: "component[3]"},
		{T: 1500, Kind: "verdict", Vehicle: 7, Subject: "component[2]", Class: "component-borderline",
			Pattern: "connector-intermittent", Action: "inspect-connector", Conf: 0.875},
		{T: 1750, Kind: "injection", Vehicle: 7, Class: "component-external", Subject: "component[0]", Detail: "emi burst"},
		{T: 2000, Kind: "advice", Vehicle: 7, Source: "decos", Subject: "job[das/job@2]",
			Class: "job-inherent-software", Action: "update-software"},
		{T: -1, Kind: "vehicle"},
	}
}

func encodeBinary(t *testing.T, events []Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	s := NewBinarySink(&buf)
	for i := range events {
		if err := s.Record(&events[i]); err != nil {
			t.Fatalf("encode event %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// decodeAndCompare decodes the stream and compares each event against
// want as it arrives — pointer fields of a BinaryReader event are only
// valid until the next Next call, so comparison must be in-stream.
func decodeAndCompare(t *testing.T, rd EventReader, want []Event) {
	t.Helper()
	i := 0
	err := rd.ReadAll(func(e Event) {
		if i >= len(want) {
			t.Fatalf("decoded %d+ events, want %d", i+1, len(want))
		}
		if !reflect.DeepEqual(e, want[i]) {
			t.Errorf("event %d:\ngot  %+v\nwant %+v", i, e, want[i])
		}
		i++
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(want) {
		t.Fatalf("decoded %d events, want %d", i, len(want))
	}
	if rd.Corrupt() != 0 {
		t.Fatalf("clean stream reported %d corrupt records: %v", rd.Corrupt(), rd.CorruptErrors())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	events := goldenEvents()
	blob := encodeBinary(t, events)
	rd, f := OpenReader(bytes.NewReader(blob))
	if f != FormatBinary {
		t.Fatalf("sniffed %v, want binary", f)
	}
	decodeAndCompare(t, rd, events)
	if rd.Records() != len(events) {
		t.Fatalf("Records() = %d, want %d", rd.Records(), len(events))
	}
}

// TestGoldenFixture pins the v1 wire layout: the committed fixture must
// decode field-for-field to goldenEvents, and re-encoding goldenEvents
// must reproduce the committed bytes exactly. An accidental layout change
// fails both ways.
func TestGoldenFixture(t *testing.T) {
	path := filepath.Join("testdata", "golden_v1.bin")
	want := encodeBinary(t, goldenEvents())
	if *updateGolden {
		if err := os.WriteFile(path, want, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/trace -run TestGoldenFixture -update` after an intentional format change)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("committed fixture (%d bytes) != current encoder output (%d bytes): the v1 wire layout changed — bump BinaryVersion instead", len(got), len(want))
	}
	decodeAndCompare(t, NewBinaryReader(bytes.NewReader(got)), goldenEvents())
}

func TestOpenReaderSniffs(t *testing.T) {
	events := goldenEvents()
	var nd bytes.Buffer
	s := NewNDJSONSink(&nd)
	for i := range events {
		if err := s.Record(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	rd, f := OpenReader(bytes.NewReader(nd.Bytes()))
	if f != FormatNDJSON {
		t.Fatalf("NDJSON sniffed as %v", f)
	}
	decodeAndCompare(t, rd, events)

	if _, f := OpenReader(strings.NewReader("")); f != FormatNDJSON {
		t.Fatalf("empty stream sniffed as %v, want ndjson", f)
	}
	rd, f = OpenReader(bytes.NewReader(AppendHeader(nil)))
	if f != FormatBinary {
		t.Fatalf("header-only stream sniffed as %v, want binary", f)
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("header-only stream Next = %v, want io.EOF", err)
	}
}

// TestBinarySinkEmptyClose: a sink closed without records still writes
// the header, so an event-free capture remains a sniffable binary stream.
func TestBinarySinkEmptyClose(t *testing.T) {
	var buf bytes.Buffer
	if err := NewBinarySink(&buf).Close(); err != nil {
		t.Fatal(err)
	}
	if !HasBinaryHeader(buf.Bytes()) || buf.Len() != binaryHeaderLen {
		t.Fatalf("empty-stream close wrote % x", buf.Bytes())
	}
}

func TestBinarySinkUnknownKind(t *testing.T) {
	s := NewBinarySink(io.Discard)
	if err := s.Record(&Event{Kind: "wormhole"}); err == nil {
		t.Fatal("unknown kind encoded without error")
	}
	if err := s.Record(&Event{Kind: "frame", Status: "ok"}); err != nil {
		t.Fatalf("sink unusable after a rejected event: %v", err)
	}
}

// TestBinaryReaderSkipsCorruptRecord: a record whose payload fails to
// decode is skipped within its frame and the rest of the stream survives,
// with a record-numbered, offset-carrying error retained.
func TestBinaryReaderSkipsCorruptRecord(t *testing.T) {
	events := goldenEvents()[:3]
	blob := AppendHeader(nil)
	var err error
	blob, err = AppendEvent(blob, &events[0])
	if err != nil {
		t.Fatal(err)
	}
	blob = append(blob, 2, 0xFF, 0xFF) // framed record with an unknown kind tag
	blob, err = AppendEvent(blob, &events[1])
	if err != nil {
		t.Fatal(err)
	}

	rd := NewBinaryReader(bytes.NewReader(blob))
	var got []string
	if err := rd.ReadAll(func(e Event) { got = append(got, e.Kind) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != events[0].Kind || got[1] != events[1].Kind {
		t.Fatalf("decoded %v around the corrupt record", got)
	}
	if rd.Corrupt() != 1 || len(rd.CorruptErrors()) != 1 {
		t.Fatalf("corrupt = %d (%v), want 1", rd.Corrupt(), rd.CorruptErrors())
	}
	msg := rd.CorruptErrors()[0].Error()
	if !strings.Contains(msg, "record 2") || !strings.Contains(msg, "offset") {
		t.Fatalf("recovery error lacks record number / offset: %q", msg)
	}
}

// TestBinaryReaderTruncated: a stream cut mid-record decodes everything
// before the cut and reports the truncation with its offset — never a
// panic, never a silent clean EOF.
func TestBinaryReaderTruncated(t *testing.T) {
	events := goldenEvents()
	blob := encodeBinary(t, events)
	for _, cut := range []int{len(blob) - 1, len(blob) - 9, binaryHeaderLen + 1} {
		rd := NewBinaryReader(bytes.NewReader(blob[:cut]))
		n := 0
		if err := rd.ReadAll(func(Event) { n++ }); err != nil {
			t.Fatalf("cut=%d: transport error %v", cut, err)
		}
		if n >= len(events) {
			t.Fatalf("cut=%d: truncated stream yielded all %d events", cut, n)
		}
		if rd.Corrupt() != 1 {
			t.Fatalf("cut=%d: corrupt = %d, want 1", cut, rd.Corrupt())
		}
		if msg := rd.CorruptErrors()[0].Error(); !strings.Contains(msg, "offset") {
			t.Fatalf("cut=%d: truncation error lacks offset: %q", cut, msg)
		}
	}
}

// TestBinaryReaderFramingPoison: an oversized length prefix makes record
// boundaries unknowable; the stream is abandoned with one reported
// corruption instead of misparsing garbage.
func TestBinaryReaderFramingPoison(t *testing.T) {
	events := goldenEvents()[:2]
	blob := AppendHeader(nil)
	for i := range events {
		var err error
		if blob, err = AppendEvent(blob, &events[i]); err != nil {
			t.Fatal(err)
		}
	}
	poisoned := append([]byte(nil), blob...)
	poisoned = append(poisoned, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F) // ~2^41-byte record
	poisoned = append(poisoned, blob[binaryHeaderLen:]...)          // unreachable tail

	rd := NewBinaryReader(bytes.NewReader(poisoned))
	n := 0
	if err := rd.ReadAll(func(Event) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != len(events) {
		t.Fatalf("decoded %d events before the poison, want %d", n, len(events))
	}
	if rd.Corrupt() != 1 {
		t.Fatalf("corrupt = %d, want 1 (the poisoned tail, reported once)", rd.Corrupt())
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("poisoned reader Next = %v, want io.EOF", err)
	}
}

func TestBinaryReaderBadMagicAndVersion(t *testing.T) {
	rd := NewBinaryReader(strings.NewReader(`{"t_us":1,"kind":"frame"}` + "\n"))
	if _, err := rd.Next(); err == nil || err == io.EOF {
		t.Fatalf("NDJSON through the binary decoder = %v, want a bad-magic error", err)
	}

	skew := AppendHeader(nil)
	skew[len(skew)-1] = BinaryVersion + 1
	rd = NewBinaryReader(bytes.NewReader(skew))
	_, err := rd.Next()
	if err == nil || err == io.EOF || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future-version stream = %v, want a version error", err)
	}
	if _, err2 := rd.Next(); err2 != err {
		t.Fatalf("fatal error is not sticky: %v then %v", err, err2)
	}
}

func TestBinaryReaderRecordBound(t *testing.T) {
	blob := encodeBinary(t, goldenEvents())
	rd := NewBinaryReader(bytes.NewReader(blob))
	rd.SetMaxRecordBytes(4) // every record is larger than this
	if err := rd.ReadAll(func(Event) { t.Fatal("event decoded past the bound") }); err != nil {
		t.Fatal(err)
	}
	if rd.Corrupt() != 1 {
		t.Fatalf("corrupt = %d, want 1", rd.Corrupt())
	}
	if msg := rd.CorruptErrors()[0].Error(); !strings.Contains(msg, "bound") {
		t.Fatalf("bound violation error: %q", msg)
	}
}

// TestTranscodeBytes: NDJSON → binary → NDJSON preserves every event
// value-for-value, and ScanBinary agrees with the full decode on the
// record count.
func TestTranscodeBytes(t *testing.T) {
	events := goldenEvents()
	var nd bytes.Buffer
	s := NewNDJSONSink(&nd)
	for i := range events {
		if err := s.Record(&events[i]); err != nil {
			t.Fatal(err)
		}
	}

	bin, n, corrupt, err := TranscodeBytes(nd.Bytes(), FormatBinary)
	if err != nil || corrupt != 0 || n != len(events) {
		t.Fatalf("to binary: n=%d corrupt=%d err=%v", n, corrupt, err)
	}
	records, body, err := ScanBinary(bin)
	if err != nil || records != len(events) {
		t.Fatalf("ScanBinary: records=%d err=%v", records, err)
	}
	if len(body) != len(bin)-binaryHeaderLen {
		t.Fatalf("ScanBinary body %d bytes of %d", len(body), len(bin))
	}
	decodeAndCompare(t, NewBinaryReader(bytes.NewReader(bin)), events)

	back, n, corrupt, err := TranscodeBytes(bin, FormatNDJSON)
	if err != nil || corrupt != 0 || n != len(events) {
		t.Fatalf("back to ndjson: n=%d corrupt=%d err=%v", n, corrupt, err)
	}
	rd, f := OpenReader(bytes.NewReader(back))
	if f != FormatNDJSON {
		t.Fatalf("transcoded-back stream sniffs as %v", f)
	}
	decodeAndCompare(t, rd, events)

	if _, _, _, err := TranscodeBytes([]byte("not json at all\n"), FormatBinary); err != nil {
		t.Fatalf("corrupt-only input must transcode to an empty stream, got %v", err)
	}
	if _, _, err := ScanBinary([]byte("x")); err == nil {
		t.Fatal("ScanBinary accepted a non-binary blob")
	}
}

// TestBinarySizeWins sanity-checks the point of the format: the binary
// corpus is materially smaller than the NDJSON one.
func TestBinarySizeWins(t *testing.T) {
	events := goldenEvents()
	var nd bytes.Buffer
	s := NewNDJSONSink(&nd)
	for i := range events {
		if err := s.Record(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	bin := encodeBinary(t, events)
	if len(bin)*2 > nd.Len() {
		t.Fatalf("binary %dB vs NDJSON %dB — expected at least 2x smaller", len(bin), nd.Len())
	}
}
