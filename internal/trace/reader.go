package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// DefaultMaxLineBytes bounds a single trace line. Events are small (a few
// hundred bytes); the bound exists so a corrupt or hostile stream cannot
// grow the per-connection decode buffer without limit.
const DefaultMaxLineBytes = 1 << 20

// Reader is a streaming NDJSON decoder for trace events with line-level
// error recovery: a corrupt or over-long line is counted and skipped, not
// fatal, because a fleet trace aggregates many vehicles over flaky uplinks
// and one mangled record must not discard the rest of the stream.
type Reader struct {
	br  *bufio.Reader
	max int

	lines   int
	corrupt int
	errs    []error
}

// maxCorruptErrors bounds the recovery-error detail a Reader retains: a
// byte-shifted multi-gigabyte stream must not grow an error slice in step
// with its corruption count.
const maxCorruptErrors = 16

// NewReader wraps r. The decode buffer is bounded by DefaultMaxLineBytes;
// use SetMaxLineBytes to tighten or widen the bound before reading.
func NewReader(r io.Reader) *Reader {
	return newReader(bufio.NewReaderSize(r, 64<<10))
}

func newReader(br *bufio.Reader) *Reader {
	return &Reader{br: br, max: DefaultMaxLineBytes}
}

// SetMaxLineBytes bounds the size of a single line; longer lines are
// skipped and counted as corrupt. Values < 1 restore the default.
func (r *Reader) SetMaxLineBytes(n int) {
	if n < 1 {
		n = DefaultMaxLineBytes
	}
	r.max = n
}

// SetMaxRecordBytes is SetMaxLineBytes under the EventReader interface: a
// record of the NDJSON encoding is one line.
func (r *Reader) SetMaxRecordBytes(n int) { r.SetMaxLineBytes(n) }

// Lines returns the number of non-empty lines consumed so far.
func (r *Reader) Lines() int { return r.lines }

// Records returns the number of records (non-empty lines) consumed so
// far, under the EventReader interface.
func (r *Reader) Records() int { return r.lines }

// Corrupt returns the number of lines skipped as undecodable or over-long.
func (r *Reader) Corrupt() int { return r.corrupt }

// CorruptErrors returns line-recovery detail for skipped lines — each
// error names the 1-based line number and the reason — capped at the first
// 16 so a heavily mangled stream stays cheap to diagnose.
func (r *Reader) CorruptErrors() []error { return r.errs }

// noteCorrupt counts a skipped line and retains its recovery error.
func (r *Reader) noteCorrupt(err error) {
	r.corrupt++
	if len(r.errs) < maxCorruptErrors {
		r.errs = append(r.errs, err)
	}
}

// Next returns the next decodable event. It returns io.EOF at the end of
// the stream; any other error is a transport error from the underlying
// reader. Corrupt lines never surface as errors.
func (r *Reader) Next() (Event, error) {
	for {
		line, err := r.readLine()
		if len(line) > 0 {
			r.lines++
			var e Event
			switch uerr := json.Unmarshal(line, &e); {
			case uerr == nil && e.Kind != "":
				return e, nil
			case uerr != nil:
				detail := uerr.Error()
				if errors.Is(err, io.EOF) {
					detail += " (truncated final line?)"
				}
				r.noteCorrupt(fmt.Errorf("trace: line %d: %s", r.lines, detail))
			default:
				r.noteCorrupt(fmt.Errorf("trace: line %d: event without kind", r.lines))
			}
		}
		if err != nil {
			return Event{}, err
		}
	}
}

// readLine returns one newline-delimited line (without the terminator),
// skipping lines longer than the bound. The returned slice is only valid
// until the next call.
func (r *Reader) readLine() ([]byte, error) {
	var line []byte
	over := false
	for {
		chunk, err := r.br.ReadSlice('\n')
		if err == bufio.ErrBufferFull {
			if len(line)+len(chunk) > r.max {
				over = true // keep draining to the newline, then drop
				line = line[:0]
			} else {
				line = append(line, chunk...)
			}
			continue
		}
		if !over {
			line = append(line, chunk...)
		}
		if over || len(line) > r.max {
			// The oversized line just ended: count it once and drop it.
			r.lines++
			r.noteCorrupt(fmt.Errorf("trace: line %d: exceeds %d-byte line bound", r.lines, r.max))
			line = line[:0]
		}
		return bytes.TrimSpace(line), err
	}
}

// ReadAll decodes the whole stream, invoking fn per event. It returns the
// first transport error other than io.EOF.
func (r *Reader) ReadAll(fn func(Event)) error {
	for {
		e, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		fn(e)
	}
}
