package trace

import (
	"io"

	"decos/internal/core"
	"decos/internal/faults"
	"decos/internal/maintenance"
	"decos/internal/sim"
)

// Advisor names one diagnostic arm whose end-of-run advice is embedded in
// the trace ("decos", "obd", ...). A slice fixes the emission order so
// traces are byte-identical across runs.
type Advisor struct {
	Name string
	Adv  maintenance.Advisor
}

// NewRecorder returns an NDJSON recorder writing to w without attaching to
// any cluster — for synthesizing streams (tests, replays) and for
// audit-only traces.
func NewRecorder(w io.Writer, opts Options) *Recorder {
	return NewSinkRecorder(NewNDJSONSink(w), opts)
}

// NewSinkRecorder returns an unattached recorder over an arbitrary sink.
func NewSinkRecorder(sink Sink, opts Options) *Recorder {
	return &Recorder{sink: sink, opts: opts}
}

// WriteAudit appends the end-of-run audit block that makes a vehicle trace
// self-sufficient for off-line warranty analysis (paper Section V-B): a
// vehicle header, one ground-truth record per injected fault, and each
// advisor's standing advice for every FRU of interest. frus lists the FRUs
// to interrogate beyond the ground-truth subjects (typically all hardware
// FRUs, so fault-free vehicles expose false-alarm removals).
func (r *Recorder) WriteAudit(now sim.Time, faultFree bool, acts []*faults.Activation, advisors []Advisor, frus []core.FRU) {
	detail := "faulty"
	if faultFree {
		detail = "fault-free"
	}
	r.write(Event{T: now.Micros(), Kind: "vehicle", Detail: detail})

	subjects := append([]core.FRU{}, frus...)
	seen := make(map[core.FRU]bool, len(frus))
	for _, f := range frus {
		seen[f] = true
	}
	for _, a := range acts {
		s := maintenance.AuditSubject(a)
		r.write(Event{
			T: now.Micros(), Kind: "truth",
			Subject: s.String(), Class: a.Class.String(), Detail: a.Detail,
		})
		if !seen[s] {
			seen[s] = true
			subjects = append(subjects, s)
		}
	}
	for _, adv := range advisors {
		for _, f := range subjects {
			action, class, ok := adv.Adv.Advise(f)
			if !ok {
				continue
			}
			r.write(Event{
				T: now.Micros(), Kind: "advice", Source: adv.Name,
				Subject: f.String(), Class: class.String(), Action: action.String(),
			})
		}
	}
}
