package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestNDJSONSinkWritesLines(t *testing.T) {
	var buf bytes.Buffer
	s := NewNDJSONSink(&buf)
	if err := s.Record(&Event{Kind: "injection", T: 7}); err != nil {
		t.Fatal(err)
	}
	if err := s.Record(&Event{Kind: "symptom", T: 9}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2:\n%s", len(lines), buf.String())
	}
	r := NewReader(strings.NewReader(buf.String()))
	n := 0
	if err := r.ReadAll(func(Event) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != 2 || r.Corrupt() != 0 {
		t.Fatalf("round-trip read %d events (%d corrupt), want 2 clean", n, r.Corrupt())
	}
}

type closeRecorder struct {
	bytes.Buffer
	closed bool
}

func (c *closeRecorder) Close() error { c.closed = true; return nil }

func TestNDJSONSinkClosesCloser(t *testing.T) {
	w := &closeRecorder{}
	s := NewNDJSONSink(w)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !w.closed {
		t.Fatal("Close did not propagate to the underlying io.Closer")
	}
}

func TestCountingSink(t *testing.T) {
	s := NewCountingSink()
	for i := 0; i < 3; i++ {
		if err := s.Record(&Event{Kind: "symptom", T: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Record(&Event{Kind: "verdict", T: 9}); err != nil {
		t.Fatal(err)
	}
	if got := s.Total(); got != 4 {
		t.Fatalf("Total = %d, want 4", got)
	}
	if got := s.Count("symptom"); got != 3 {
		t.Fatalf("Count(symptom) = %d, want 3", got)
	}
	if got := s.LastT(); got != 9 {
		t.Fatalf("LastT = %d, want 9", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestNopSink(t *testing.T) {
	if !IsNop(nil) {
		t.Fatal("IsNop(nil) = false")
	}
	if !IsNop(Nop()) {
		t.Fatal("IsNop(Nop()) = false")
	}
	if IsNop(NewCountingSink()) {
		t.Fatal("IsNop(CountingSink) = true")
	}
	if err := Nop().Record(&Event{Kind: "injection"}); err != nil {
		t.Fatal(err)
	}
}

func TestTeeComposition(t *testing.T) {
	if !IsNop(Tee()) {
		t.Fatal("empty Tee should be no-op")
	}
	c := NewCountingSink()
	if got := Tee(c); got != c {
		t.Fatal("single-sink Tee should return the sink itself")
	}
	if got := Tee(nil, Nop(), c); got != c {
		t.Fatal("Tee should drop nil and no-op sinks")
	}
	c2 := NewCountingSink()
	tee := Tee(c, Tee(c2, Nop()))
	if err := tee.Record(&Event{Kind: "injection", T: 1}); err != nil {
		t.Fatal(err)
	}
	if c.Total() != 1 || c2.Total() != 1 {
		t.Fatalf("tee fan-out: counts %d/%d, want 1/1", c.Total(), c2.Total())
	}
	if err := tee.Close(); err != nil {
		t.Fatal(err)
	}
}

type failingSink struct{ err error }

func (f *failingSink) Record(*Event) error { return f.err }
func (f *failingSink) Close() error        { return f.err }

func TestTeePropagatesFirstError(t *testing.T) {
	boom := errors.New("boom")
	c := NewCountingSink()
	tee := Tee(c, &failingSink{err: boom})
	if err := tee.Record(&Event{Kind: "injection"}); !errors.Is(err, boom) {
		t.Fatalf("Record err = %v, want boom", err)
	}
	// Record stops at the first error; earlier branches saw the event.
	if c.Total() != 1 {
		t.Fatalf("earlier branch count = %d, want 1", c.Total())
	}
	if err := tee.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close err = %v, want boom", err)
	}
}
