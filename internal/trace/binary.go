package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
)

// Binary trace format v1 ("DCS-B"): the compact interchange encoding for
// high-volume fleet traces. NDJSON reflects every event through
// encoding/json on both ends of the uplink; at fleet scale that double
// reflection is the ingest bottleneck. The binary format encodes the same
// events with no reflection and no per-event allocation:
//
//	stream  = magic[4] version[1] record*
//	record  = uvarint(len(payload)) payload
//	payload = kind[1] varint(t_us) varint(vehicle) fields...
//
// Fields are laid out per kind (see appendPayload/decodePayload — the two
// halves of the layout contract, pinned by the committed golden fixture):
// strings are uvarint-length-prefixed bytes, optional values carry a
// one-byte presence flag, and float64s are IEEE 754 bits little-endian, so
// every float round-trips exactly. Integers use the zigzag varint
// encoding, so timestamps and counters stay small on the wire.
//
// Evolution rules: the version byte names the record layout. A decoder
// accepts only versions it knows (a newer stream fails loudly, it is
// never misparsed); adding a field or kind bumps the version. Records are
// length-prefixed precisely so a future decoder can skip payload bytes it
// does not understand within one version family. Streams concatenate at
// the record level only — a header mid-stream is framing corruption
// (decos-replay -transcode normalizes concatenated captures).

// binaryMagic opens every binary trace stream. The first byte is outside
// ASCII so no NDJSON (or any text) stream can ever alias it — that one
// byte is what OpenReader sniffs.
var binaryMagic = [4]byte{0xD1, 'T', 'R', 'C'}

// BinaryVersion is the current binary trace format version.
const BinaryVersion = 1

// binaryHeaderLen is the stream header size: magic plus version byte.
const binaryHeaderLen = len(binaryMagic) + 1

// Content types negotiated on POST /v1/ingest.
const (
	// ContentTypeNDJSON is the JSON-lines trace encoding.
	ContentTypeNDJSON = "application/x-ndjson"
	// ContentTypeBinary is the binary trace encoding.
	ContentTypeBinary = "application/x-decos-trace"
)

// Event kind tags of format version 1. Tag 0 is reserved as invalid.
const (
	tagFrame = iota + 1
	tagSymptom
	tagVerdict
	tagTrust
	tagInjection
	tagVehicle
	tagTruth
	tagAdvice
)

// kindNames maps wire tags back to Event.Kind strings. Indexing with a
// known tag returns a shared constant, so decoding a kind never allocates.
var kindNames = [...]string{
	tagFrame:     "frame",
	tagSymptom:   "symptom",
	tagVerdict:   "verdict",
	tagTrust:     "trust",
	tagInjection: "injection",
	tagVehicle:   "vehicle",
	tagTruth:     "truth",
	tagAdvice:    "advice",
}

// kindTag returns the wire tag for an event kind (0 when unknown).
func kindTag(kind string) byte {
	switch kind {
	case "frame":
		return tagFrame
	case "symptom":
		return tagSymptom
	case "verdict":
		return tagVerdict
	case "trust":
		return tagTrust
	case "injection":
		return tagInjection
	case "vehicle":
		return tagVehicle
	case "truth":
		return tagTruth
	case "advice":
		return tagAdvice
	}
	return 0
}

// AppendHeader appends the binary stream header (magic + version) to dst.
func AppendHeader(dst []byte) []byte {
	dst = append(dst, binaryMagic[:]...)
	return append(dst, BinaryVersion)
}

// HasBinaryHeader reports whether b begins with the binary trace magic —
// the sniff OpenReader and the ingest fast path share.
func HasBinaryHeader(b []byte) bool {
	return len(b) >= len(binaryMagic) && [4]byte(b[:4]) == binaryMagic
}

// payloadScratch pools the per-record payload build buffer so concurrent
// encoders (one sink per campaign worker) stay allocation-free in steady
// state.
var payloadScratch = sync.Pool{
	New: func() any { b := make([]byte, 0, 256); return &b },
}

// AppendEvent appends e as one length-prefixed binary record to dst and
// returns the extended slice. dst is unchanged when the event cannot be
// encoded (unknown kind). The stream header is the caller's job
// (AppendHeader once per stream); BinarySink handles both.
func AppendEvent(dst []byte, e *Event) ([]byte, error) {
	tag := kindTag(e.Kind)
	if tag == 0 {
		return dst, fmt.Errorf("trace: kind %q has no binary encoding", e.Kind)
	}
	sp := payloadScratch.Get().(*[]byte)
	p := appendPayload((*sp)[:0], tag, e)
	dst = binary.AppendUvarint(dst, uint64(len(p)))
	dst = append(dst, p...)
	*sp = p
	payloadScratch.Put(sp)
	return dst, nil
}

// appendPayload encodes the kind-tagged field layout. decodePayload is
// the exact mirror; change both together and bump BinaryVersion.
func appendPayload(p []byte, tag byte, e *Event) []byte {
	p = append(p, tag)
	p = binary.AppendVarint(p, e.T)
	p = binary.AppendVarint(p, int64(e.Vehicle))
	switch tag {
	case tagFrame:
		p = appendOptInt(p, e.Sender)
		p = appendOptInt(p, e.Slot)
		p = appendOptInt64(p, e.Round)
		p = appendString(p, e.Status)
	case tagSymptom:
		p = appendString(p, e.Symptom)
		p = appendString(p, e.Subject)
		p = appendOptInt(p, e.Observer)
		p = binary.AppendVarint(p, int64(e.Count))
		p = appendFloat(p, e.Dev)
	case tagVerdict:
		p = appendString(p, e.Subject)
		p = appendString(p, e.Class)
		p = appendString(p, e.Pattern)
		p = appendString(p, e.Action)
		p = appendFloat(p, e.Conf)
	case tagTrust:
		p = appendString(p, e.Subject)
		p = appendOptFloat(p, e.Trust)
	case tagInjection:
		p = appendString(p, e.Class)
		p = appendString(p, e.Subject)
		p = appendString(p, e.Detail)
	case tagVehicle:
		p = appendString(p, e.Detail)
	case tagTruth:
		p = appendString(p, e.Subject)
		p = appendString(p, e.Class)
		p = appendString(p, e.Detail)
	case tagAdvice:
		p = appendString(p, e.Source)
		p = appendString(p, e.Subject)
		p = appendString(p, e.Class)
		p = appendString(p, e.Action)
	}
	return p
}

func appendString(p []byte, s string) []byte {
	p = binary.AppendUvarint(p, uint64(len(s)))
	return append(p, s...)
}

func appendFloat(p []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(p, math.Float64bits(f))
}

func appendOptInt(p []byte, v *int) []byte {
	if v == nil {
		return append(p, 0)
	}
	p = append(p, 1)
	return binary.AppendVarint(p, int64(*v))
}

func appendOptInt64(p []byte, v *int64) []byte {
	if v == nil {
		return append(p, 0)
	}
	p = append(p, 1)
	return binary.AppendVarint(p, *v)
}

func appendOptFloat(p []byte, v *float64) []byte {
	if v == nil {
		return append(p, 0)
	}
	p = append(p, 1)
	return appendFloat(p, *v)
}

// BinarySink encodes events as length-prefixed binary records — the
// compact counterpart of NDJSONSink behind the same Sink interface. The
// stream header is emitted with the first record (or at Close for an
// empty stream, so even an event-free capture sniffs as binary). Record
// reuses one scratch buffer: steady-state encoding allocates nothing.
type BinarySink struct {
	w           io.Writer
	c           io.Closer
	buf         []byte
	wroteHeader bool
}

// NewBinarySink returns a sink writing the binary trace format to w. If w
// is also an io.Closer, Close closes it.
func NewBinarySink(w io.Writer) *BinarySink {
	s := &BinarySink{w: w}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Record encodes e as one binary record.
func (s *BinarySink) Record(e *Event) error {
	s.buf = s.buf[:0]
	if !s.wroteHeader {
		s.buf = AppendHeader(s.buf)
	}
	buf, err := AppendEvent(s.buf, e)
	if err != nil {
		return err
	}
	s.buf = buf
	if _, err := s.w.Write(buf); err != nil {
		return err
	}
	s.wroteHeader = true
	return nil
}

// Close writes the header of a still-empty stream and closes the
// underlying writer when it is an io.Closer.
func (s *BinarySink) Close() error {
	var werr error
	if !s.wroteHeader {
		_, werr = s.w.Write(AppendHeader(nil))
		s.wroteHeader = true
	}
	if s.c != nil {
		if cerr := s.c.Close(); werr == nil {
			werr = cerr
		}
	}
	return werr
}

// maxInterned bounds the decoder's string-intern table so a hostile
// stream full of unique subjects cannot grow it without limit; past the
// bound strings are still decoded, just freshly allocated.
const maxInterned = 4096

// BinaryReader is the streaming decoder for the binary trace format, with
// the same corruption-recovery stance as the NDJSON Reader: a record that
// fails to decode is counted and skipped (the frame length bounds the
// damage), while framing-level corruption — an unparsable or oversized
// length prefix, after which record boundaries are unknowable — poisons
// the remainder of the stream, which is reported once and abandoned.
//
// Decoding is allocation-free in steady state: record payloads land in a
// reused scratch buffer, strings are interned per reader, and the
// pointer-typed event fields (Sender/Slot/Round/Observer/Trust) point
// into reader-owned scratch. Those pointers are valid until the next call
// to Next — a consumer retaining frame, symptom or trust events across
// calls must copy the pointed-to values (string fields are stable).
type BinaryReader struct {
	br  *bufio.Reader
	max int

	headerDone bool
	dead       bool  // framing corrupted: remaining bytes are unreadable
	err        error // sticky fatal error (bad magic / unsupported version)
	off        int64 // bytes consumed, for corruption offsets

	records int
	corrupt int
	errs    []error

	buf      []byte
	interned map[string]string

	// Pointer-field scratch the returned events point into.
	sender, slot, observer int
	round                  int64
	trust                  float64
}

// NewBinaryReader wraps r. The per-record payload bound defaults to
// DefaultMaxLineBytes; use SetMaxRecordBytes to change it before reading.
func NewBinaryReader(r io.Reader) *BinaryReader {
	return newBinaryReader(bufio.NewReaderSize(r, 64<<10))
}

func newBinaryReader(br *bufio.Reader) *BinaryReader {
	return &BinaryReader{
		br:       br,
		max:      DefaultMaxLineBytes,
		interned: make(map[string]string),
	}
}

// SetMaxRecordBytes bounds one record's payload; a larger length prefix
// is indistinguishable from framing corruption and poisons the stream.
// Values < 1 restore the default.
func (r *BinaryReader) SetMaxRecordBytes(n int) {
	if n < 1 {
		n = DefaultMaxLineBytes
	}
	r.max = n
}

// Records returns the number of records consumed so far (corrupt ones
// included), mirroring Reader.Lines.
func (r *BinaryReader) Records() int { return r.records }

// Corrupt returns the number of records skipped as undecodable, plus one
// for a poisoned stream tail.
func (r *BinaryReader) Corrupt() int { return r.corrupt }

// CorruptErrors returns recovery detail for skipped records — each error
// names the 1-based record number and byte offset — capped like the
// NDJSON reader's.
func (r *BinaryReader) CorruptErrors() []error { return r.errs }

func (r *BinaryReader) noteCorrupt(err error) {
	r.corrupt++
	if len(r.errs) < maxCorruptErrors {
		r.errs = append(r.errs, err)
	}
}

// readHeader consumes and validates the stream header. An empty stream is
// accepted as zero events; anything else that is not a v1 header is a
// fatal (sticky) error.
func (r *BinaryReader) readHeader() error {
	var hdr [binaryHeaderLen]byte
	n, err := io.ReadFull(r.br, hdr[:])
	r.off += int64(n)
	switch {
	case err == io.EOF:
		r.headerDone = true // empty stream: no events
		return nil
	case err == io.ErrUnexpectedEOF && n >= len(binaryMagic) && HasBinaryHeader(hdr[:n]):
		// The magic is intact but the version byte was cut off: that is
		// truncation of a binary stream, not a foreign format.
		r.noteCorrupt(fmt.Errorf("trace: record 1 at offset %d: truncated stream header", n))
		r.dead = true
		r.headerDone = true
		return nil
	case err == io.ErrUnexpectedEOF || (err == nil && !HasBinaryHeader(hdr[:])):
		r.err = fmt.Errorf("trace: not a binary trace stream (bad magic at offset 0)")
		return r.err
	case err != nil:
		return err
	case hdr[len(binaryMagic)] != BinaryVersion:
		r.err = fmt.Errorf("trace: binary trace version %d not supported (this decoder reads version %d)",
			hdr[len(binaryMagic)], BinaryVersion)
		return r.err
	}
	r.headerDone = true
	return nil
}

// readFrameLen reads one record's uvarint length prefix. io.EOF is
// returned only at a clean record boundary; any other failure is noted as
// corruption and poisons the stream.
func (r *BinaryReader) readFrameLen() (int, error) {
	var x uint64
	var shift uint
	for i := 0; ; i++ {
		b, err := r.br.ReadByte()
		if err == io.EOF {
			if i == 0 {
				return 0, io.EOF
			}
			r.dead = true
			r.noteCorrupt(fmt.Errorf("trace: record %d at offset %d: truncated record header", r.records+1, r.off-int64(i)))
			return 0, io.EOF
		}
		if err != nil {
			return 0, err
		}
		r.off++
		if i == binary.MaxVarintLen64 || (shift == 63 && b > 1) {
			r.dead = true
			r.noteCorrupt(fmt.Errorf("trace: record %d at offset %d: malformed record length", r.records+1, r.off-int64(i)-1))
			return 0, io.EOF
		}
		x |= uint64(b&0x7f) << shift
		if b < 0x80 {
			if x > uint64(r.max) {
				r.dead = true
				r.noteCorrupt(fmt.Errorf("trace: record %d at offset %d: record length %d exceeds %d-byte bound",
					r.records+1, r.off-int64(i)-1, x, r.max))
				return 0, io.EOF
			}
			return int(x), nil
		}
		shift += 7
	}
}

// Next returns the next decodable event. It returns io.EOF at the end of
// the readable stream (a poisoned tail included — the corruption is
// reported through Corrupt/CorruptErrors, as with the NDJSON reader); a
// non-EOF error is a transport error or an unusable stream (bad magic,
// unsupported version).
func (r *BinaryReader) Next() (Event, error) {
	if r.err != nil {
		return Event{}, r.err
	}
	if !r.headerDone {
		if err := r.readHeader(); err != nil {
			return Event{}, err
		}
	}
	for {
		if r.dead {
			return Event{}, io.EOF
		}
		length, err := r.readFrameLen()
		if err != nil {
			return Event{}, err
		}
		if cap(r.buf) < length {
			r.buf = make([]byte, length, length+length/2)
		}
		payload := r.buf[:length]
		recOff := r.off
		n, err := io.ReadFull(r.br, payload)
		r.off += int64(n)
		r.records++
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			r.dead = true
			r.noteCorrupt(fmt.Errorf("trace: record %d at offset %d: truncated payload (%d of %d bytes)",
				r.records, recOff, n, length))
			return Event{}, io.EOF
		}
		if err != nil {
			return Event{}, err
		}
		e, derr := r.decodePayload(payload)
		if derr != nil {
			r.noteCorrupt(fmt.Errorf("trace: record %d at offset %d: %v", r.records, recOff, derr))
			continue
		}
		return e, nil
	}
}

// ReadAll decodes the whole stream, invoking fn per event. It returns the
// first error other than io.EOF.
func (r *BinaryReader) ReadAll(fn func(Event)) error {
	for {
		e, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		fn(e)
	}
}

// decodePayload is appendPayload's mirror. It must consume the payload
// exactly: trailing bytes mean the layouts disagree and the record is
// corrupt, not silently truncated.
func (r *BinaryReader) decodePayload(p []byte) (Event, error) {
	d := payloadDecoder{p: p}
	tag := d.byte()
	var e Event
	if tag == 0 || int(tag) >= len(kindNames) || d.err != nil {
		return e, fmt.Errorf("unknown kind tag 0x%02x", tag)
	}
	e.Kind = kindNames[tag]
	e.T = d.varint()
	e.Vehicle = int(d.varint())
	switch tag {
	case tagFrame:
		if d.opt() {
			r.sender = int(d.varint())
			e.Sender = &r.sender
		}
		if d.opt() {
			r.slot = int(d.varint())
			e.Slot = &r.slot
		}
		if d.opt() {
			r.round = d.varint()
			e.Round = &r.round
		}
		e.Status = r.intern(d.bytes())
	case tagSymptom:
		e.Symptom = r.intern(d.bytes())
		e.Subject = r.intern(d.bytes())
		if d.opt() {
			r.observer = int(d.varint())
			e.Observer = &r.observer
		}
		e.Count = int(d.varint())
		e.Dev = d.float()
	case tagVerdict:
		e.Subject = r.intern(d.bytes())
		e.Class = r.intern(d.bytes())
		e.Pattern = r.intern(d.bytes())
		e.Action = r.intern(d.bytes())
		e.Conf = d.float()
	case tagTrust:
		e.Subject = r.intern(d.bytes())
		if d.opt() {
			r.trust = d.float()
			e.Trust = &r.trust
		}
	case tagInjection:
		e.Class = r.intern(d.bytes())
		e.Subject = r.intern(d.bytes())
		e.Detail = r.intern(d.bytes())
	case tagVehicle:
		e.Detail = r.intern(d.bytes())
	case tagTruth:
		e.Subject = r.intern(d.bytes())
		e.Class = r.intern(d.bytes())
		e.Detail = r.intern(d.bytes())
	case tagAdvice:
		e.Source = r.intern(d.bytes())
		e.Subject = r.intern(d.bytes())
		e.Class = r.intern(d.bytes())
		e.Action = r.intern(d.bytes())
	}
	if d.err != nil {
		return Event{}, d.err
	}
	if d.off != len(p) {
		return Event{}, fmt.Errorf("%d trailing payload bytes", len(p)-d.off)
	}
	return e, nil
}

// intern returns a stable string for b, reusing prior decodes. Event
// vocabularies (kinds, FRU names, statuses, patterns) are small, so in
// steady state this is a hash lookup and no allocation.
func (r *BinaryReader) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := r.interned[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(r.interned) < maxInterned {
		r.interned[s] = s
	}
	return s
}

// payloadDecoder cursors over one record payload; the first failure
// sticks in err and all subsequent reads return zero values.
type payloadDecoder struct {
	p   []byte
	off int
	err error
}

func (d *payloadDecoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("truncated field at payload byte %d", d.off)
	}
}

func (d *payloadDecoder) byte() byte {
	if d.err != nil || d.off >= len(d.p) {
		d.fail()
		return 0
	}
	b := d.p[d.off]
	d.off++
	return b
}

func (d *payloadDecoder) opt() bool { return d.byte() == 1 }

func (d *payloadDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.p[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *payloadDecoder) bytes() []byte {
	if d.err != nil {
		return nil
	}
	n, w := binary.Uvarint(d.p[d.off:])
	if w <= 0 || n > uint64(len(d.p)-d.off-w) {
		d.fail()
		return nil
	}
	d.off += w
	b := d.p[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}

func (d *payloadDecoder) float() float64 {
	if d.err != nil || d.off+8 > len(d.p) {
		d.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.p[d.off:]))
	d.off += 8
	return v
}
