package trace_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"decos/internal/diagnosis"
	"decos/internal/scenario"
	"decos/internal/sim"
	"decos/internal/trace"
)

// traceRun drives a Fig. 10 system with a recorder attached. Because the
// recorder must attach before Start, we rebuild the scenario manually via
// its exported pieces — Fig10 already started the cluster, so we attach to
// a fresh one through the scenario helper and accept frame/symptom capture
// only from hooks that tolerate late attachment (bus observers and round
// hooks can be added at any time before the relevant events).
func traceRun(t *testing.T, opts trace.Options) (*scenario.System, *trace.Recorder, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	sys := scenario.Fig10(31, diagnosis.Options{})
	rec := trace.Attach(sys.Cluster, sys.Diag, sys.Injector, &buf, opts)
	return sys, rec, &buf
}

func TestRecorderCapturesIncident(t *testing.T) {
	sys, rec, buf := traceRun(t, trace.Options{TrustEveryEpochs: 10})
	sys.Injector.ConnectorTx(0, sim.Time(100*sim.Millisecond), 0, 0.3)
	sys.Run(2000)

	if rec.Err != nil {
		t.Fatalf("recorder error: %v", rec.Err)
	}
	if rec.Events == 0 {
		t.Fatal("no events recorded")
	}
	kinds := map[string]int{}
	dec := json.NewDecoder(buf)
	for dec.More() {
		var e trace.Event
		if err := dec.Decode(&e); err != nil {
			t.Fatalf("malformed JSONL: %v", err)
		}
		kinds[e.Kind]++
		if e.T < 0 {
			t.Fatalf("negative timestamp: %+v", e)
		}
	}
	for _, want := range []string{"frame", "symptom", "verdict", "injection", "trust"} {
		if kinds[want] == 0 {
			t.Errorf("no %q events captured (got %v)", want, kinds)
		}
	}
	// Only failed frames by default: count must be far below total slots.
	if kinds["frame"] > 4*2000/2 {
		t.Errorf("frame events = %d, expected failed-only subset", kinds["frame"])
	}
}

func TestRecorderHealthyRunIsQuiet(t *testing.T) {
	sys, rec, buf := traceRun(t, trace.Options{})
	sys.Run(1000)
	if rec.Err != nil {
		t.Fatal(rec.Err)
	}
	if rec.Events != 0 {
		t.Errorf("healthy run produced %d events:\n%s", rec.Events, buf.String())
	}
}

func TestRecorderAllFrames(t *testing.T) {
	sys, rec, _ := traceRun(t, trace.Options{AllFrames: true})
	sys.Run(50)
	if rec.Events < 190 { // 4 slots × 50 rounds, minus startup jitter
		t.Errorf("AllFrames recorded only %d events", rec.Events)
	}
}

func TestRecorderStopsOnWriteError(t *testing.T) {
	sys := scenario.Fig10(32, diagnosis.Options{})
	rec := trace.Attach(sys.Cluster, sys.Diag, sys.Injector, failWriter{}, trace.Options{AllFrames: true})
	sys.Run(20)
	if rec.Err == nil {
		t.Fatal("write error not surfaced")
	}
	if rec.Events != 0 {
		t.Errorf("events counted despite failing writer: %d", rec.Events)
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) {
	return 0, errFail
}

var errFail = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "synthetic write failure" }

func TestEventJSONShape(t *testing.T) {
	sys, _, buf := traceRun(t, trace.Options{})
	sys.Injector.SEU(sim.Time(50*sim.Millisecond), 1)
	sys.Run(500)
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	if !strings.Contains(first, `"kind"`) || !strings.Contains(first, `"t_us"`) {
		t.Errorf("unexpected JSON shape: %s", first)
	}
}
