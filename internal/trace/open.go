package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Format identifies a trace stream encoding.
type Format int

const (
	// FormatNDJSON is the JSON-lines encoding — human-readable, the
	// interop and archival format.
	FormatNDJSON Format = iota
	// FormatBinary is the length-prefixed binary encoding — the
	// high-volume ingest format.
	FormatBinary
)

// String returns the format's conventional short name.
func (f Format) String() string {
	if f == FormatBinary {
		return "binary"
	}
	return "ndjson"
}

// ContentType returns the HTTP media type for the format.
func (f Format) ContentType() string {
	if f == FormatBinary {
		return ContentTypeBinary
	}
	return ContentTypeNDJSON
}

// ParseFormat resolves a format name ("ndjson" or "binary").
func ParseFormat(s string) (Format, error) {
	switch s {
	case "ndjson":
		return FormatNDJSON, nil
	case "binary":
		return FormatBinary, nil
	}
	return 0, fmt.Errorf("trace: unknown format %q (ndjson or binary)", s)
}

// NewSink returns the encoding sink for the format over w.
func NewSink(w io.Writer, f Format) Sink {
	if f == FormatBinary {
		return NewBinarySink(w)
	}
	return NewNDJSONSink(w)
}

// EventReader is the streaming decoder interface both trace encodings
// implement: sequential event access with corruption counted and skipped
// rather than fatal, and record-numbered recovery detail.
type EventReader interface {
	// Next returns the next decodable event, io.EOF at end of stream.
	Next() (Event, error)
	// ReadAll decodes the remaining stream, invoking fn per event.
	ReadAll(fn func(Event)) error
	// Records returns the number of records (NDJSON lines) consumed.
	Records() int
	// Corrupt returns the number of records skipped as undecodable.
	Corrupt() int
	// CorruptErrors returns capped record-numbered recovery detail.
	CorruptErrors() []error
	// SetMaxRecordBytes bounds one record (one NDJSON line, one binary
	// payload); values < 1 restore the default.
	SetMaxRecordBytes(n int)
}

var (
	_ EventReader = (*Reader)(nil)
	_ EventReader = (*BinaryReader)(nil)
)

// OpenReader sniffs the stream's encoding from its first bytes and
// returns the matching decoder: a stream opening with the binary magic is
// binary, anything else — NDJSON lines, an empty stream — is NDJSON.
// This is how every trace consumer (fleetd ingest, decos-replay, the
// warranty collector) accepts both encodings through one call.
func OpenReader(r io.Reader) (EventReader, Format) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 64<<10)
	}
	head, _ := br.Peek(len(binaryMagic))
	if HasBinaryHeader(head) {
		return newBinaryReader(br), FormatBinary
	}
	return newReader(br), FormatNDJSON
}

// ScanBinary validates the framing of a complete in-memory binary trace
// blob — header present, every record length in bounds — and returns the
// record count and the body (the framed records after the header). It
// does not decode payloads; it is the cheap admission check for blobs
// that are about to be spliced into a larger stream (the cluster uplink
// batches this way).
func ScanBinary(blob []byte) (records int, body []byte, err error) {
	if !HasBinaryHeader(blob) || len(blob) < binaryHeaderLen {
		return 0, nil, fmt.Errorf("trace: not a binary trace blob (bad magic)")
	}
	if v := blob[len(binaryMagic)]; v != BinaryVersion {
		return 0, nil, fmt.Errorf("trace: binary trace version %d not supported", v)
	}
	body = blob[binaryHeaderLen:]
	for off := 0; off < len(body); records++ {
		length, n := binary.Uvarint(body[off:])
		if n <= 0 || length > uint64(DefaultMaxLineBytes) {
			return records, nil, fmt.Errorf("trace: record %d at offset %d: malformed record length",
				records+1, binaryHeaderLen+off)
		}
		off += n
		if uint64(len(body)-off) < length {
			return records, nil, fmt.Errorf("trace: record %d at offset %d: truncated payload",
				records+1, binaryHeaderLen+off-n)
		}
		off += int(length)
	}
	return records, body, nil
}

// TranscodeBytes re-encodes a complete trace blob into the given format
// (sniffing the input's). Undecodable input records are skipped and
// counted, per the readers' recovery semantics; err is reserved for an
// unusable stream or an encoding failure. Transcoding NDJSON→binary→
// NDJSON is value-preserving for every field the kind's layout carries —
// the warranty summaries from either blob are byte-identical.
func TranscodeBytes(blob []byte, to Format) (out []byte, events, corrupt int, err error) {
	rd, _ := OpenReader(bytes.NewReader(blob))
	var buf bytes.Buffer
	buf.Grow(len(blob))
	sink := NewSink(&buf, to)
	unencodable := 0
	err = rd.ReadAll(func(e Event) {
		if serr := sink.Record(&e); serr != nil {
			unencodable++ // e.g. an event kind v1 has no layout for
			return
		}
		events++
	})
	if cerr := sink.Close(); err == nil && cerr != nil {
		err = cerr
	}
	corrupt = rd.Corrupt() + unencodable
	if err != nil {
		return nil, events, corrupt, err
	}
	return buf.Bytes(), events, corrupt, nil
}
