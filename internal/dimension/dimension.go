// Package dimension synthesizes virtual-network configurations from a
// communication model — the tool-supported configuration step the paper's
// Section IV-B.2 describes (cf. TTP-Tools): frame-segment allocations and
// queue capacities are derived from assumed traffic characteristics.
//
// The package exists for both directions of the story: correctly stated
// models yield configurations under which no queue ever overflows, while a
// legacy application whose real traffic violates the modelled assumptions
// ("a subset of the assumptions … was made implicitly and not described in
// technical documentation") produces exactly the job-borderline
// configuration faults of the maintenance-oriented fault model.
package dimension

import (
	"fmt"
	"math"

	"decos/internal/tt"
	"decos/internal/vnet"
)

// ChannelModel states the assumed traffic of one channel.
type ChannelModel struct {
	Channel  vnet.ChannelID
	Producer tt.NodeID
	Network  string
	Kind     vnet.Kind
	// PayloadBytes is the per-message payload size.
	PayloadBytes int
	// MeanPerRound is the assumed mean message rate (ET only; TT state
	// channels publish exactly once per round).
	MeanPerRound float64
	// BurstFactor scales the mean to the assumed worst-case burst (ET
	// only; ≥ 1). Queues and segments are dimensioned for mean × burst.
	BurstFactor float64
	// LatencyRounds is the tolerated queuing delay: bursts may spread
	// over this many rounds before messages must have drained.
	LatencyRounds int
}

// messagesPerRound returns the dimensioning rate.
func (m ChannelModel) messagesPerRound() float64 {
	if m.Kind == vnet.TimeTriggered {
		return 1
	}
	b := m.BurstFactor
	if b < 1 {
		b = 1
	}
	return m.MeanPerRound * b
}

// Plan is a synthesized configuration: per-(network, node) frame-segment
// sizes and queue capacities.
type Plan struct {
	// SegmentBytes[network][node] is the frame allocation.
	SegmentBytes map[string]map[tt.NodeID]int
	// SendQueue[network][node] is the outbound queue capacity.
	SendQueue map[string]map[tt.NodeID]int
	// ReceiveQueue[channel] is the subscriber queue capacity.
	ReceiveQueue map[vnet.ChannelID]int
}

// Dimension synthesizes a plan from the channel models.
func Dimension(models []ChannelModel) Plan {
	p := Plan{
		SegmentBytes: map[string]map[tt.NodeID]int{},
		SendQueue:    map[string]map[tt.NodeID]int{},
		ReceiveQueue: map[vnet.ChannelID]int{},
	}
	for _, m := range models {
		rate := m.messagesPerRound()
		wire := vnet.WireSize(m.PayloadBytes)

		// Segment: enough for the per-round share of the (burst) rate,
		// at least one message.
		perRound := int(math.Ceil(rate))
		if perRound < 1 {
			perRound = 1
		}
		seg := perRound * wire
		if p.SegmentBytes[m.Network] == nil {
			p.SegmentBytes[m.Network] = map[tt.NodeID]int{}
			p.SendQueue[m.Network] = map[tt.NodeID]int{}
		}
		p.SegmentBytes[m.Network][m.Producer] += seg

		// Queues: absorb the modelled burst across the tolerated latency.
		lat := m.LatencyRounds
		if lat < 1 {
			lat = 1
		}
		q := int(math.Ceil(rate * float64(lat)))
		if q < 2 {
			q = 2
		}
		if m.Kind == vnet.EventTriggered {
			p.SendQueue[m.Network][m.Producer] += q
			p.ReceiveQueue[m.Channel] = q
		} else {
			p.ReceiveQueue[m.Channel] = 1
		}
	}
	return p
}

// Validate checks the plan against the core-network frame budget, given
// extra reserved bytes per node (e.g. the diagnostic network's segment).
func (p Plan) Validate(cfg tt.Config, reservedBytes int) error {
	total := map[tt.NodeID]int{}
	for _, perNode := range p.SegmentBytes {
		for n, b := range perNode {
			total[n] += b
		}
	}
	for n, b := range total {
		if b+reservedBytes > cfg.PayloadBytes {
			return fmt.Errorf("dimension: node %d needs %d+%d bytes, frame carries %d",
				n, b, reservedBytes, cfg.PayloadBytes)
		}
	}
	return nil
}

// Apply configures a network's endpoints per the plan. Channels must
// already be declared by the caller (the plan only sizes resources).
func (p Plan) Apply(n *vnet.Network, nodes []tt.NodeID) {
	for _, node := range nodes {
		seg := p.SegmentBytes[n.Name][node]
		if seg == 0 {
			continue
		}
		n.AddEndpoint(node, seg, p.SendQueue[n.Name][node])
	}
}

// Sufficient reports whether the plan's dimensioning covers actual traffic
// with the given observed mean rate and burst on channel ch — the check a
// correctly documented model passes and an implicit legacy assumption
// fails.
func (p Plan) Sufficient(ch vnet.ChannelID, observedMeanPerRound, observedBurst float64) bool {
	q := p.ReceiveQueue[ch]
	need := observedMeanPerRound * observedBurst
	return float64(q) >= need
}
