package dimension

import (
	"testing"

	"decos/internal/component"
	"decos/internal/core"
	"decos/internal/diagnosis"
	"decos/internal/sim"
	"decos/internal/tt"
	"decos/internal/vnet"
)

func models() []ChannelModel {
	return []ChannelModel{
		{Channel: 1, Producer: 0, Network: "a.tt", Kind: vnet.TimeTriggered, PayloadBytes: 8},
		{Channel: 10, Producer: 1, Network: "b.et", Kind: vnet.EventTriggered,
			PayloadBytes: 8, MeanPerRound: 2, BurstFactor: 3, LatencyRounds: 2},
	}
}

func TestDimensionSizes(t *testing.T) {
	p := Dimension(models())
	// TT channel: one 17-byte message per round.
	if got := p.SegmentBytes["a.tt"][0]; got != vnet.WireSize(8) {
		t.Errorf("TT segment = %d, want %d", got, vnet.WireSize(8))
	}
	if p.ReceiveQueue[1] != 1 {
		t.Errorf("TT receive queue = %d, want 1", p.ReceiveQueue[1])
	}
	// ET channel: 2×3 = 6 messages/round segment, 12-message queues.
	if got := p.SegmentBytes["b.et"][1]; got != 6*vnet.WireSize(8) {
		t.Errorf("ET segment = %d", got)
	}
	if p.ReceiveQueue[10] != 12 || p.SendQueue["b.et"][1] != 12 {
		t.Errorf("ET queues = %d/%d, want 12", p.ReceiveQueue[10], p.SendQueue["b.et"][1])
	}
}

func TestDimensionValidate(t *testing.T) {
	p := Dimension(models())
	if err := p.Validate(tt.UniformSchedule(2, 250, 256), 64); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	if err := p.Validate(tt.UniformSchedule(2, 250, 64), 64); err == nil {
		t.Error("over-budget plan accepted")
	}
}

func TestSufficiency(t *testing.T) {
	p := Dimension(models())
	if !p.Sufficient(10, 2, 3) {
		t.Error("plan insufficient for its own model")
	}
	// The legacy application actually sends 5/round with burst 4: the
	// undocumented assumption violates the model.
	if p.Sufficient(10, 5, 4) {
		t.Error("plan sufficient for traffic beyond the model")
	}
}

// End-to-end: a correctly modelled system runs overflow-free; the same
// system under traffic violating the model overflows and is classified as
// a job-borderline configuration fault.
func TestDimensionEndToEnd(t *testing.T) {
	run := func(actualMean float64) (overflows int, flagged bool) {
		cfg := tt.UniformSchedule(3, 250*sim.Microsecond, 256)
		cl := component.NewCluster(cfg, 9)
		c0 := cl.AddComponent(0, "a", 0, 0)
		c1 := cl.AddComponent(1, "b", 1, 0)
		cl.AddComponent(2, "c", 2, 0)

		das := cl.AddDAS("B", component.NonSafetyCritical)
		net := cl.AddNetwork(das, "b.et", vnet.EventTriggered)
		p := Dimension(models()[1:])
		p.Apply(net, []tt.NodeID{1})

		src := cl.AddJob(das, c1, "src", 0, &component.BurstyJob{Out: 10, MeanPerRound: actualMean})
		sink := cl.AddJob(das, c0, "sink", 0, &component.SinkJob{In: 10})
		cl.Produce(src, net, component.ChannelSpec{Channel: 10, Name: "load", Min: -1e12, Max: 1e12})
		in := cl.Subscribe(sink, 10, p.ReceiveQueue[10], false)

		diag := diagnosis.Attach(cl, 2, diagnosis.Options{})
		if err := cl.Start(); err != nil {
			t.Fatal(err)
		}
		cl.RunRounds(2000)
		// Depending on where the undersized resource bites, the config
		// verdict lands on the consumer's port or the producer's queue.
		_, okSink := diag.VerdictOf(core.SoftwareFRU(0, "B/sink"))
		_, okSrc := diag.VerdictOf(core.SoftwareFRU(1, "B/src"))
		return in.Stats.Overflows + net.Endpoint(1).TxOverflows, okSink || okSrc
	}

	// Traffic per the model: clean.
	if over, flagged := run(2); over != 0 || flagged {
		t.Errorf("modelled traffic overflowed (%d) or was flagged (%v)", over, flagged)
	}
	// Undocumented legacy behaviour: 6 msgs/round mean exceeds the model.
	over, flagged := run(6)
	if over == 0 {
		t.Error("model-violating traffic did not overflow")
	}
	if !flagged {
		t.Error("configuration fault not diagnosed")
	}
}
