package maintenance

import (
	"fmt"

	"decos/internal/core"
	"decos/internal/diagnosis"
	"decos/internal/sim"
)

// PreventivePolicy implements condition-based maintenance on top of the
// diagnostic DAS (paper Section III-E): the rising transient-failure rate
// is the wearout indicator of electronics, and a FRU whose trust
// trajectory forecasts a specification violation within the planning
// horizon is scheduled for replacement at the next service — before it
// fails permanently in the field.
type PreventivePolicy struct {
	// TrustThreshold is the trust level at which a FRU is considered due.
	TrustThreshold float64
	// Horizon is the planning window: FRUs forecast to cross the
	// threshold within it are scheduled now.
	Horizon sim.Duration
	// RiseFactor gates the wearout-trend indicator.
	RiseFactor float64
	// RULWindow is the number of trust samples the forecast uses.
	RULWindow int
}

// DefaultPreventivePolicy returns a policy tuned for the simulation's
// compressed time scale.
func DefaultPreventivePolicy() PreventivePolicy {
	return PreventivePolicy{
		TrustThreshold: 0.3,
		Horizon:        2 * sim.Second,
		RiseFactor:     1.5,
		RULWindow:      8,
	}
}

// Recommendation is one scheduled preventive action.
type Recommendation struct {
	FRU core.FRU
	// Due is the forecast time until the trust threshold is crossed
	// (0 = already below: replace at once).
	Due sim.Duration
	// Reason explains the indicator that triggered scheduling.
	Reason string
}

func (r Recommendation) String() string {
	return fmt.Sprintf("replace %v within %v (%s)", r.FRU, r.Due, r.Reason)
}

// Evaluate inspects every hardware FRU and returns the replacements the
// policy schedules, ordered by FRU index. External disturbances do not
// trigger recommendations: their trust dips recover and their trend is
// flat — exactly the FRUs whose replacement would be a no-fault-found
// removal.
func (p PreventivePolicy) Evaluate(d *diagnosis.Diagnostics) []Recommendation {
	var out []Recommendation
	for _, hw := range d.Reg.HardwareFRUs() {
		fru := d.Reg.FRU(hw)
		trend := d.Assessor.Trend(hw)
		rul, forecast := d.Assessor.RUL(hw, p.TrustThreshold, p.RULWindow)

		// A standing internal verdict always schedules (the corrective
		// path); the preventive path needs both the wearout indicator
		// and a within-horizon forecast.
		verdict, hasVerdict := d.Assessor.Current(hw)
		switch {
		case hasVerdict && verdict.Class == core.ComponentInternal:
			due := sim.Duration(0)
			if forecast {
				due = rul
			}
			out = append(out, Recommendation{
				FRU: fru, Due: due,
				Reason: fmt.Sprintf("diagnosed %s (%s)", verdict.Class, verdict.Pattern),
			})
		case trend.Wearing(p.RiseFactor) && forecast && rul <= p.Horizon:
			out = append(out, Recommendation{
				FRU: fru, Due: rul,
				Reason: fmt.Sprintf("wearout indicator: episode rate ×%.1f, trust forecast %v", trend.Growth, rul),
			})
		}
	}
	return out
}
