package maintenance

import (
	"testing"

	"decos/internal/core"
	"decos/internal/faults"
)

// tableAdvisor answers from a fixed map.
type tableAdvisor map[core.FRU]struct {
	action core.MaintenanceAction
	class  core.FaultClass
}

func (t tableAdvisor) Advise(f core.FRU) (core.MaintenanceAction, core.FaultClass, bool) {
	e, ok := t[f]
	if !ok {
		return core.ActionNone, core.ClassUnknown, false
	}
	return e.action, e.class, true
}

func act(class core.FaultClass, culprit core.FRU) *faults.Activation {
	return &faults.Activation{Class: class, Culprit: culprit, Affected: []core.FRU{culprit}}
}

func TestEvaluateCorrectDiagnosis(t *testing.T) {
	hw := core.HardwareFRU(1)
	ledger := []*faults.Activation{act(core.ComponentInternal, hw)}
	adv := tableAdvisor{hw: {core.ActionReplaceComponent, core.ComponentInternal}}
	r := Evaluate(ledger, adv)
	if r.Total != 1 || r.CorrectClass != 1 || r.CorrectActions != 1 {
		t.Errorf("report: %+v", r)
	}
	if r.NFFRemovals != 0 || r.TotalRemovals != 1 {
		t.Errorf("removals: %d NFF of %d", r.NFFRemovals, r.TotalRemovals)
	}
	if r.Cost != RemovalCost {
		t.Errorf("cost = %v", r.Cost)
	}
	if r.NFFRatio() != 0 || r.ClassAccuracy() != 1 || r.ActionAccuracy() != 1 {
		t.Error("ratios wrong")
	}
}

func TestEvaluateNFFOnExternalFault(t *testing.T) {
	// Replacing a component for an external transient is the classic
	// no-fault-found removal: the unit retests OK at the OEM.
	ext := &faults.Activation{
		Class:    core.ComponentExternal,
		Culprit:  faults.NoCulprit,
		Affected: []core.FRU{core.HardwareFRU(2)},
	}
	adv := tableAdvisor{core.HardwareFRU(2): {core.ActionReplaceComponent, core.ComponentInternal}}
	r := Evaluate([]*faults.Activation{ext}, adv)
	if r.NFFRemovals != 1 {
		t.Errorf("NFF = %d, want 1", r.NFFRemovals)
	}
	if r.CorrectActions != 0 || r.CorrectClass != 0 {
		t.Error("wrong diagnosis counted correct")
	}
	if r.Cost != RemovalCost {
		t.Errorf("cost = %v", r.Cost)
	}
}

func TestEvaluateExternalHandledCorrectly(t *testing.T) {
	ext := &faults.Activation{
		Class:    core.ComponentExternal,
		Culprit:  faults.NoCulprit,
		Affected: []core.FRU{core.HardwareFRU(2)},
	}
	adv := tableAdvisor{core.HardwareFRU(2): {core.ActionNone, core.ComponentExternal}}
	r := Evaluate([]*faults.Activation{ext}, adv)
	if r.CorrectActions != 1 || r.CorrectClass != 1 || r.NFFRemovals != 0 || r.Cost != 0 {
		t.Errorf("report: %+v", r)
	}
	if r.Missed != 0 {
		t.Error("external no-action counted as miss")
	}
}

func TestEvaluateMissedFault(t *testing.T) {
	hw := core.HardwareFRU(0)
	ledger := []*faults.Activation{act(core.ComponentBorderline, hw)}
	r := Evaluate(ledger, tableAdvisor{}) // no finding at all
	if r.Missed != 1 {
		t.Errorf("Missed = %d, want 1", r.Missed)
	}
	if r.MissRatio() != 1 {
		t.Errorf("MissRatio = %v", r.MissRatio())
	}
}

func TestEvaluateSoftwareFaultEquivalences(t *testing.T) {
	sw := core.SoftwareFRU(1, "A/x")
	// Merged inherent verdict (transducer-first inspection) is acceptable
	// for a software ground truth.
	ledger := []*faults.Activation{act(core.JobInherentSoftware, sw)}
	adv := tableAdvisor{sw: {core.ActionInspectTransducer, core.JobInherent}}
	r := Evaluate(ledger, adv)
	if r.CorrectClass != 1 || r.CorrectActions != 1 {
		t.Errorf("merged verdict rejected: %+v", r.Outcomes[0])
	}
	// Replacing the ECU for a software fault is an NFF removal.
	adv2 := tableAdvisor{sw: {core.ActionReplaceComponent, core.ComponentInternal}}
	r2 := Evaluate(ledger, adv2)
	if r2.NFFRemovals != 1 || r2.CorrectActions != 0 {
		t.Errorf("ECU swap for software fault not NFF: %+v", r2.Outcomes[0])
	}
}

func TestEvaluateSensorFault(t *testing.T) {
	sw := core.SoftwareFRU(1, "A/s")
	ledger := []*faults.Activation{act(core.JobInherentSensor, sw)}
	// Transducer inspection is correct workshop labour, not an LRU removal.
	r := Evaluate(ledger, tableAdvisor{sw: {core.ActionInspectTransducer, core.JobInherentSensor}})
	if r.NFFRemovals != 0 || r.CorrectActions != 1 || r.TotalRemovals != 0 || r.Cost != 0 {
		t.Errorf("sensor inspection judged wrong: %+v", r.Outcomes[0])
	}
	// Replacing the whole ECU is NFF.
	r2 := Evaluate(ledger, tableAdvisor{sw: {core.ActionReplaceComponent, core.ComponentInternal}})
	if r2.NFFRemovals != 1 {
		t.Error("ECU swap for transducer fault not NFF")
	}
}

func TestEvaluateConfigFault(t *testing.T) {
	sw := core.SoftwareFRU(2, "B/sink")
	ledger := []*faults.Activation{act(core.JobBorderline, sw)}
	r := Evaluate(ledger, tableAdvisor{sw: {core.ActionUpdateConfiguration, core.JobBorderline}})
	if r.CorrectActions != 1 || r.Cost != 0 {
		t.Errorf("config update judged wrong: %+v", r.Outcomes[0])
	}
}

func TestConfusionMatrix(t *testing.T) {
	hw := core.HardwareFRU(1)
	ledger := []*faults.Activation{
		act(core.ComponentInternal, hw),
		act(core.ComponentInternal, hw),
		act(core.ComponentBorderline, hw),
	}
	adv := tableAdvisor{hw: {core.ActionReplaceComponent, core.ComponentInternal}}
	r := Evaluate(ledger, adv)
	if r.Confusion[core.ComponentInternal][core.ComponentInternal] != 2 {
		t.Error("confusion matrix wrong for internal")
	}
	if r.Confusion[core.ComponentBorderline][core.ComponentInternal] != 1 {
		t.Error("confusion matrix wrong for borderline")
	}
	if r.Format() == "" {
		t.Error("empty Format()")
	}
}

func TestRatiosOnEmptyReport(t *testing.T) {
	r := Evaluate(nil, tableAdvisor{})
	if r.NFFRatio() != 0 || r.ClassAccuracy() != 0 || r.ActionAccuracy() != 0 || r.MissRatio() != 0 {
		t.Error("empty report ratios not zero")
	}
}
