// Package maintenance closes the loop of the reproduction: it plays the
// service station. Given the fault injector's ground-truth ledger and a
// diagnostic advisor (the DECOS diagnostic DAS or the OBD baseline), it
// determines the maintenance action actually taken per incident, audits it
// against the action the true fault class requires (paper Fig. 11), and
// accumulates the paper's headline metrics: the no-fault-found ratio and
// the removal cost at $800 per LRU removal.
package maintenance

import (
	"fmt"
	"sort"
	"strings"

	"decos/internal/core"
	"decos/internal/faults"
)

// RemovalCost is the average cost of removing a single line-replaceable
// unit (paper Section I: $800 per removal).
const RemovalCost = 800.0

// Advisor is the diagnostic interface the service technician consults: the
// recommended maintenance action for a FRU, the diagnosed fault class, and
// whether any finding exists.
type Advisor interface {
	Advise(f core.FRU) (core.MaintenanceAction, core.FaultClass, bool)
}

// Outcome is the audited result of one fault activation.
type Outcome struct {
	// Activation is the audited ground-truth entry; nil when the audit
	// runs from trace data (off-line warranty analysis) where only the
	// truth class survives.
	Activation *faults.Activation
	// Truth is the ground-truth class the outcome was judged against.
	Truth core.FaultClass
	// Diagnosed is the advisor's class for the culprit (or the affected
	// FRU for external faults); ClassUnknown when no finding existed.
	Diagnosed core.FaultClass
	// Action is the maintenance action taken.
	Action core.MaintenanceAction
	// CorrectClass reports whether the diagnosis matches ground truth
	// under the model's equivalences.
	CorrectClass bool
	// CorrectAction reports whether the action taken is the one the true
	// class requires.
	CorrectAction bool
	// NFF flags a hardware removal that cannot fix the true fault — the
	// unit will be retested OK at the OEM bench (no fault found).
	NFF bool
	// Missed flags a real fault needing maintenance that received none.
	Missed bool
	// Cost of the action in dollars (removals only).
	Cost float64
}

// Report aggregates outcomes of a campaign.
type Report struct {
	Outcomes []Outcome
	// Confusion[truth][diagnosed] counts classifications.
	Confusion map[core.FaultClass]map[core.FaultClass]int

	Total          int
	CorrectClass   int
	CorrectActions int
	NFFRemovals    int
	TotalRemovals  int
	Missed         int
	Cost           float64
}

// NFFRatio returns the fraction of hardware removals that were
// no-fault-found.
func (r *Report) NFFRatio() float64 {
	if r.TotalRemovals == 0 {
		return 0
	}
	return float64(r.NFFRemovals) / float64(r.TotalRemovals)
}

// ClassAccuracy returns the fraction of activations whose diagnosis
// matched ground truth.
func (r *Report) ClassAccuracy() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.CorrectClass) / float64(r.Total)
}

// ActionAccuracy returns the fraction of activations that received the
// action their true class requires.
func (r *Report) ActionAccuracy() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.CorrectActions) / float64(r.Total)
}

// MissRatio returns the fraction of maintenance-requiring activations left
// unaddressed.
func (r *Report) MissRatio() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Missed) / float64(r.Total)
}

// requiredAction returns the Fig. 11 action for the true class.
func requiredAction(truth core.FaultClass) core.MaintenanceAction {
	// Ground truth never carries the merged verdict, and for auditing we
	// treat a software fault without an update as correctly handled by
	// forward-to-OEM (no update assumed available).
	return core.ActionFor(truth, false)
}

// actionAcceptable reports whether the taken action correctly addresses
// the true class (allowing the equivalences of the model).
func actionAcceptable(truth core.FaultClass, action core.MaintenanceAction) bool {
	switch truth {
	case core.ComponentExternal:
		return action == core.ActionNone
	case core.ComponentBorderline:
		return action == core.ActionInspectConnector
	case core.ComponentInternal, core.JobExternal:
		return action == core.ActionReplaceComponent
	case core.JobBorderline:
		return action == core.ActionUpdateConfiguration
	case core.JobInherentSoftware:
		// Update, forward for fleet analysis, or transducer-first
		// inspection (the merged inherent verdict) all address the job.
		return action == core.ActionUpdateSoftware || action == core.ActionForwardToOEM ||
			action == core.ActionInspectTransducer
	case core.JobInherentSensor:
		return action == core.ActionInspectTransducer
	}
	return false
}

// nff reports whether taking the action for the true class removes
// hardware that would retest OK.
func nff(truth core.FaultClass, action core.MaintenanceAction) bool {
	if !action.Removal() {
		return false
	}
	switch truth {
	case core.ComponentInternal, core.JobExternal:
		return action != core.ActionReplaceComponent
	case core.JobInherentSensor:
		// Replacing the whole ECU for a transducer fault removes a good
		// ECU; inspecting/replacing the transducer is correct.
		return action == core.ActionReplaceComponent
	default:
		// External, borderline, configuration and software faults: any
		// hardware removal is a no-fault-found removal.
		return true
	}
}

// Evaluate audits one campaign: for every ledger activation, consult the
// advisor about the culprit (or, for external faults, the affected FRUs)
// and judge the result.
func Evaluate(ledger []*faults.Activation, adv Advisor) *Report {
	audit := ArmAudit{Report: Report{Confusion: make(map[core.FaultClass]map[core.FaultClass]int)}}
	for _, a := range ledger {
		audit.Audit(a, adv)
	}
	return &audit.Report
}

// Record accumulates one audited outcome into the report's counters and
// confusion matrix — the single accumulation path shared by the in-process
// campaign audit and the trace-fed warranty analysis.
func (r *Report) Record(out Outcome) {
	if r.Confusion == nil {
		r.Confusion = make(map[core.FaultClass]map[core.FaultClass]int)
	}
	r.Outcomes = append(r.Outcomes, out)
	r.Total++
	if r.Confusion[out.Truth] == nil {
		r.Confusion[out.Truth] = make(map[core.FaultClass]int)
	}
	r.Confusion[out.Truth][out.Diagnosed]++
	if out.CorrectClass {
		r.CorrectClass++
	}
	if out.CorrectAction {
		r.CorrectActions++
	}
	if out.Action.Removal() {
		r.TotalRemovals++
	}
	if out.NFF {
		r.NFFRemovals++
	}
	if out.Missed {
		r.Missed++
	}
	r.Cost += out.Cost
}

// AuditSubject returns the FRU an audit judges an activation by: the
// culprit, or the most-affected FRU (first listed) for external faults.
func AuditSubject(a *faults.Activation) core.FRU {
	if a.Culprit == faults.NoCulprit && len(a.Affected) > 0 {
		return a.Affected[0]
	}
	return a.Culprit
}

// Judge audits one classified incident given only the ground-truth class,
// the diagnosed class and the action taken — the pure audit rule, usable
// without an activation (off-line trace analysis). found=false states that
// the advisor had no finding for the subject.
func Judge(truth, diagnosed core.FaultClass, action core.MaintenanceAction, found bool) Outcome {
	if !found {
		action = core.ActionNone
		diagnosed = core.ClassUnknown
	}
	out := Outcome{
		Truth:     truth,
		Diagnosed: diagnosed,
		Action:    action,
	}
	out.CorrectClass = truth.Matches(diagnosed)
	out.CorrectAction = actionAcceptable(truth, action)
	out.NFF = nff(truth, action)
	out.Missed = requiredAction(truth) != core.ActionNone && action == core.ActionNone
	if action.Removal() {
		out.Cost = RemovalCost
	}
	return out
}

func auditOne(a *faults.Activation, adv Advisor) Outcome {
	action, diagnosed, found := adv.Advise(AuditSubject(a))
	out := Judge(a.Class, diagnosed, action, found)
	out.Activation = a
	return out
}

// Format renders the report as a human-readable table.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "incidents: %d  class-accuracy: %.1f%%  action-accuracy: %.1f%%\n",
		r.Total, 100*r.ClassAccuracy(), 100*r.ActionAccuracy())
	fmt.Fprintf(&b, "removals: %d  no-fault-found: %d (NFF ratio %.1f%%)  missed: %d  cost: $%.0f\n",
		r.TotalRemovals, r.NFFRemovals, 100*r.NFFRatio(), r.Missed, r.Cost)
	var truths []core.FaultClass
	for t := range r.Confusion {
		truths = append(truths, t)
	}
	sort.Slice(truths, func(i, j int) bool { return truths[i] < truths[j] })
	for _, truth := range truths {
		row := r.Confusion[truth]
		var diags []core.FaultClass
		for d := range row {
			diags = append(diags, d)
		}
		sort.Slice(diags, func(i, j int) bool { return diags[i] < diags[j] })
		fmt.Fprintf(&b, "  %-24s →", truth)
		for _, d := range diags {
			fmt.Fprintf(&b, " %s:%d", d, row[d])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
