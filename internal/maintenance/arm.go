package maintenance

import (
	"decos/internal/core"
	"decos/internal/faults"
)

// ArmAudit accumulates one diagnostic arm's audited performance: the
// Fig. 11 audit over ground-truth faults plus the false-alarm count over
// fault-free vehicles. It is the single adviser-side accumulation path
// shared by the in-process campaign audit and the trace-fed warranty
// engine — the fleet side runs the same audit code over replayed
// evidence that the onboard path runs live.
type ArmAudit struct {
	Report Report
	// FalseAlarms counts removal recommendations issued on fault-free
	// vehicles: hardware that would be pulled with nothing wrong on the
	// vehicle at all.
	FalseAlarms int
}

// Audit consults the advisor about one ground-truth activation and
// judges the result — the in-process form, where the activation is at
// hand.
func (a *ArmAudit) Audit(act *faults.Activation, adv Advisor) {
	a.Report.Record(auditOne(act, adv))
}

// Judged folds one incident judged from the fields that survive in a
// trace — the off-line warranty form of Audit.
func (a *ArmAudit) Judged(truth, diagnosed core.FaultClass, action core.MaintenanceAction, found bool) {
	a.Report.Record(Judge(truth, diagnosed, action, found))
}

// HealthyAdvice audits one piece of advice about a subject on a
// fault-free vehicle: any removal recommendation is a false alarm.
func (a *ArmAudit) HealthyAdvice(action core.MaintenanceAction) {
	if action.Removal() {
		a.FalseAlarms++
	}
}
