package maintenance_test

import (
	"testing"

	"decos/internal/core"
	"decos/internal/diagnosis"
	"decos/internal/faults"
	"decos/internal/maintenance"
	"decos/internal/scenario"
	"decos/internal/sim"
)

func TestPreventiveSchedulesWearingFRU(t *testing.T) {
	sys := scenario.Fig10(61, diagnosis.Options{})
	acc := faults.WearoutAcceleration{
		Onset: sim.Time(200 * sim.Millisecond), Tau: 500 * sim.Millisecond,
		BaseRatePerHour: 3600 * 4, MaxFactor: 40,
	}
	sys.Injector.Wearout(0, acc, 3600*20)
	sys.Run(3000)

	recs := maintenance.DefaultPreventivePolicy().Evaluate(sys.Diag)
	if len(recs) != 1 {
		t.Fatalf("recommendations = %v, want exactly the wearing FRU", recs)
	}
	if recs[0].FRU != core.HardwareFRU(0) {
		t.Errorf("scheduled %v, want component[0]", recs[0].FRU)
	}
	if recs[0].String() == "" {
		t.Error("empty recommendation string")
	}
}

func TestPreventiveIgnoresExternalDisturbance(t *testing.T) {
	sys := scenario.Fig10(62, diagnosis.Options{})
	sys.Injector.EMIBurst(sim.Time(400*sim.Millisecond), 0.5, 0, 2, 10*sim.Millisecond, 4)
	sys.Run(3000)
	recs := maintenance.DefaultPreventivePolicy().Evaluate(sys.Diag)
	if len(recs) != 0 {
		t.Errorf("EMI-disturbed components scheduled for replacement: %v", recs)
	}
}

func TestPreventiveHealthyClusterQuiet(t *testing.T) {
	sys := scenario.Fig10(63, diagnosis.Options{})
	sys.Run(2000)
	if recs := maintenance.DefaultPreventivePolicy().Evaluate(sys.Diag); len(recs) != 0 {
		t.Errorf("healthy cluster scheduled: %v", recs)
	}
}

func TestPreventiveCorrectivePathForDeadComponent(t *testing.T) {
	sys := scenario.Fig10(64, diagnosis.Options{})
	sys.Injector.PermanentFailSilent(1, sim.Time(200*sim.Millisecond))
	sys.Run(1500)
	recs := maintenance.DefaultPreventivePolicy().Evaluate(sys.Diag)
	if len(recs) != 1 || recs[0].FRU != core.HardwareFRU(1) {
		t.Fatalf("recommendations = %v, want component[1]", recs)
	}
	if recs[0].Due != 0 {
		t.Errorf("dead component due = %v, want immediate", recs[0].Due)
	}
}
