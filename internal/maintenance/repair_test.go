package maintenance

import (
	"testing"

	"decos/internal/core"
	"decos/internal/faults"
)

// TestRepairs pins the ground-truth repair table: for every true fault
// class, exactly the Fig. 11 action eliminates the fault (external faults
// excepted — they are transient and need no repair).
func TestRepairs(t *testing.T) {
	actions := []core.MaintenanceAction{
		core.ActionNone,
		core.ActionInspectConnector,
		core.ActionReplaceComponent,
		core.ActionUpdateConfiguration,
		core.ActionUpdateSoftware,
		core.ActionForwardToOEM,
		core.ActionInspectTransducer,
	}
	// fixing[truth] is the set of actions that repair a fault of that
	// class; an absent entry means every action "repairs" it.
	fixing := map[core.FaultClass][]core.MaintenanceAction{
		core.ComponentBorderline: {core.ActionInspectConnector},
		core.ComponentInternal:   {core.ActionReplaceComponent},
		core.JobExternal:         {core.ActionReplaceComponent},
		core.JobBorderline:       {core.ActionUpdateConfiguration},
		core.JobInherentSoftware: {core.ActionUpdateSoftware},
		core.JobInherentSensor:   {core.ActionInspectTransducer},
	}
	for truth, fixes := range fixing {
		for _, action := range actions {
			want := false
			for _, fix := range fixes {
				if action == fix {
					want = true
				}
			}
			if got := Repairs(action, truth); got != want {
				t.Errorf("Repairs(%v, %v) = %v, want %v", action, truth, got, want)
			}
		}
	}
	for _, action := range actions {
		if !Repairs(action, core.ComponentExternal) {
			t.Errorf("Repairs(%v, ComponentExternal) = false, want true (external faults are transient)", action)
		}
	}
	// The merged job-inherent verdict is a diagnosis, never ground truth:
	// no action counts as a repair for it.
	for _, action := range actions {
		if Repairs(action, core.JobInherent) {
			t.Errorf("Repairs(%v, JobInherent) = true, want false (not a ground-truth class)", action)
		}
	}
}

// TestApply: the correct action deactivates the activation (the customer's
// malfunction ends); a wrong action leaves the fault in the system.
func TestApply(t *testing.T) {
	a := &faults.Activation{Class: core.ComponentBorderline}
	if Apply(a, core.ActionReplaceComponent) {
		t.Fatal("Apply(ReplaceComponent) repaired a borderline connector fault")
	}
	if !a.Active() {
		t.Fatal("wrong action deactivated the fault")
	}
	if !Apply(a, core.ActionInspectConnector) {
		t.Fatal("Apply(InspectConnector) failed to repair a borderline fault")
	}
	if a.Active() {
		t.Fatal("correct action left the fault active")
	}
}

// TestApplyRunsCleanup: Apply triggers the activation's OnDeactivate
// hooks — the injector's manifestation hooks are actually unhooked.
func TestApplyRunsCleanup(t *testing.T) {
	a := &faults.Activation{Class: core.ComponentInternal}
	cleaned := false
	a.OnDeactivate(func() { cleaned = true })
	if !Apply(a, core.ActionReplaceComponent) {
		t.Fatal("Apply(ReplaceComponent) failed to repair an internal fault")
	}
	if !cleaned {
		t.Error("Deactivate did not run the OnDeactivate hook")
	}
}
