package maintenance

import (
	"decos/internal/core"
	"decos/internal/faults"
)

// Repairs reports whether a maintenance action eliminates a fault of the
// given true class — the physical ground truth behind the paper's central
// question: "whether a replacement of a particular component will put an
// end to spurious system malfunctions".
//
//   - External faults need no repair: they are transient by nature (any
//     action "resolves" them, but removals are wasted).
//   - Borderline faults live in the connector: only connector inspection
//     (re-seat/replace) helps; swapping the ECU leaves the loom half and
//     the problem returns.
//   - Internal faults are eliminated exactly by replacing the component.
//   - Configuration faults need the corrected configuration data.
//   - Software design faults need the corrected job version — a fresh ECU
//     runs the same software and fails the same way.
//   - Transducer faults need the transducer inspected/replaced.
func Repairs(action core.MaintenanceAction, truth core.FaultClass) bool {
	switch truth {
	case core.ComponentExternal:
		return true
	case core.ComponentBorderline:
		return action == core.ActionInspectConnector
	case core.ComponentInternal, core.JobExternal:
		return action == core.ActionReplaceComponent
	case core.JobBorderline:
		return action == core.ActionUpdateConfiguration
	case core.JobInherentSoftware:
		return action == core.ActionUpdateSoftware
	case core.JobInherentSensor:
		return action == core.ActionInspectTransducer
	}
	return false
}

// Apply performs the maintenance action against an activation: when the
// action addresses the true fault class, the fault is removed from the
// system (the activation deactivates); otherwise the system is left as it
// was — the customer returns with the same complaint. It reports whether
// the fault was eliminated.
func Apply(a *faults.Activation, action core.MaintenanceAction) bool {
	if !Repairs(action, a.Class) {
		return false
	}
	a.Deactivate()
	return true
}
