package vnet

import (
	"fmt"
	"sort"

	"decos/internal/ckpt"
	"decos/internal/sim"
	"decos/internal/tt"
)

// Checkpointing of the virtual-network layer. Configuration (networks,
// channels, layout, subscriptions) is rebuilt by the engine's build path;
// what a checkpoint carries is the mutable run state: per-channel
// sequence counters, endpoint outbound queues and published TT state,
// queue capacities (mutable through the misconfiguration faults), port
// receive queues and the LIF-visible port statistics the symptom
// detectors read.

func encodeMessage(e *ckpt.Encoder, m *Message) {
	e.Int(int(m.Channel))
	e.Uvarint(uint64(m.Seq))
	e.Varint(int64(m.SentAt))
	e.Bytes8(m.Payload)
}

func decodeMessage(d *ckpt.Decoder) Message {
	m := Message{
		Channel: ChannelID(d.Int()),
		Seq:     uint32(d.Uvarint()),
		SentAt:  sim.Time(d.Varint()),
	}
	if b := d.Bytes8(); len(b) > 0 {
		m.Payload = append([]byte(nil), b...)
	}
	return m
}

// Snapshot serializes one network's mutable state: channel sequence
// counters (ascending channel order) and per-endpoint outbound state
// (ascending node order).
func (n *Network) Snapshot(e *ckpt.Encoder) {
	chans := n.Channels()
	e.Int(len(chans))
	for _, ch := range chans {
		e.Int(int(ch))
		e.Uvarint(uint64(n.channels[ch].nextSeq))
	}
	nodes := make([]int, 0, len(n.endpoints))
	for id := range n.endpoints {
		nodes = append(nodes, int(id))
	}
	sort.Ints(nodes)
	e.Int(len(nodes))
	for _, id := range nodes {
		ep := n.endpoints[tt.NodeID(id)]
		e.Int(id)
		e.Int(ep.QueueCap)
		e.Int(ep.TxOverflows)
		e.Int(ep.TxMessages)
		e.Int(len(ep.outQueue))
		for i := range ep.outQueue {
			encodeMessage(e, &ep.outQueue[i])
		}
		// Published TT state in packing order; absent channels are marked.
		e.Int(len(ep.ttOrder))
		for _, ch := range ep.ttOrder {
			m := ep.outState[ch]
			e.Bool(m != nil)
			if m != nil {
				encodeMessage(e, m)
			}
		}
	}
}

// Restore overwrites a freshly built network's mutable state.
func (n *Network) Restore(d *ckpt.Decoder) error {
	nc := d.Len(1 << 16)
	for i := 0; i < nc && d.Err() == nil; i++ {
		ch := ChannelID(d.Int())
		cs := n.channels[ch]
		if cs == nil {
			return fmt.Errorf("vnet: checkpoint names undeclared channel %d on %s", ch, n.Name)
		}
		cs.nextSeq = uint32(d.Uvarint())
	}
	ne := d.Len(1 << 16)
	for i := 0; i < ne && d.Err() == nil; i++ {
		id := tt.NodeID(d.Int())
		ep := n.endpoints[id]
		if ep == nil {
			return fmt.Errorf("vnet: checkpoint names missing endpoint %d on %s", id, n.Name)
		}
		ep.QueueCap = d.Int()
		ep.TxOverflows = d.Int()
		ep.TxMessages = d.Int()
		nq := d.Len(1 << 20)
		ep.outQueue = ep.outQueue[:0]
		for j := 0; j < nq && d.Err() == nil; j++ {
			ep.outQueue = append(ep.outQueue, decodeMessage(d))
		}
		nt := d.Len(1 << 16)
		if d.Err() == nil && nt != len(ep.ttOrder) {
			return fmt.Errorf("vnet: checkpoint TT state count %d, endpoint has %d channels", nt, len(ep.ttOrder))
		}
		for j := 0; j < nt && d.Err() == nil; j++ {
			ch := ep.ttOrder[j]
			if d.Bool() {
				m := decodeMessage(d)
				ep.outState[ch] = &m
			} else {
				delete(ep.outState, ch)
			}
		}
	}
	return d.Err()
}

// sortedPorts returns every subscribed port in (channel, subscription)
// order — the canonical iteration the snapshot encoding is defined over.
func (f *Fabric) sortedPorts() []*InPort {
	chans := make([]int, 0, len(f.subs))
	for ch := range f.subs {
		chans = append(chans, int(ch))
	}
	sort.Ints(chans)
	var out []*InPort
	for _, ch := range chans {
		out = append(out, f.subs[ChannelID(ch)]...)
	}
	return out
}

// Snapshot serializes the fabric's mutable state: decode-error tally and
// every port's queue, capacity and statistics.
func (f *Fabric) Snapshot(e *ckpt.Encoder) {
	e.Int(f.DecodeErrors)
	ports := f.sortedPorts()
	e.Int(len(ports))
	for _, p := range ports {
		e.Int(int(p.Channel))
		e.Int(int(p.Node))
		e.Int(p.Capacity)
		e.Int(len(p.queue))
		for i := range p.queue {
			encodeMessage(e, &p.queue[i])
		}
		st := &p.Stats
		e.Int(st.Received)
		e.Int(st.CRCFailures)
		e.Int(st.FrameMisses)
		e.Int(st.Overflows)
		e.Int(st.SeqGaps)
		e.Uvarint(uint64(st.LastSeq))
		e.Bool(st.haveSeq)
		e.Varint(int64(st.LastArrival))
		e.Bytes8(st.LastValue)
		e.Bool(st.LastWasValid)
	}
}

// Restore overwrites a freshly built fabric's port state. The port set is
// structural (it follows from the build path), so a count or identity
// mismatch is corruption.
func (f *Fabric) Restore(d *ckpt.Decoder) error {
	f.DecodeErrors = d.Int()
	ports := f.sortedPorts()
	n := d.Len(1 << 20)
	if d.Err() == nil && n != len(ports) {
		return fmt.Errorf("vnet: checkpoint has %d ports, fabric has %d", n, len(ports))
	}
	for i := 0; i < n && d.Err() == nil; i++ {
		p := ports[i]
		ch, node := ChannelID(d.Int()), tt.NodeID(d.Int())
		if ch != p.Channel || node != p.Node {
			return fmt.Errorf("vnet: checkpoint port %d is ch=%d node=%d, fabric has ch=%d node=%d",
				i, ch, node, p.Channel, p.Node)
		}
		p.Capacity = d.Int()
		nq := d.Len(1 << 20)
		p.queue = p.queue[:0]
		for j := 0; j < nq && d.Err() == nil; j++ {
			p.queue = append(p.queue, decodeMessage(d))
		}
		st := &p.Stats
		st.Received = d.Int()
		st.CRCFailures = d.Int()
		st.FrameMisses = d.Int()
		st.Overflows = d.Int()
		st.SeqGaps = d.Int()
		st.LastSeq = uint32(d.Uvarint())
		st.haveSeq = d.Bool()
		st.LastArrival = sim.Time(d.Varint())
		if b := d.Bytes8(); len(b) > 0 {
			st.LastValue = append([]byte(nil), b...)
		} else {
			st.LastValue = nil
		}
		st.LastWasValid = d.Bool()
	}
	return d.Err()
}
