// Package vnet implements the DECOS virtual network high-level service:
// encapsulated overlay networks multiplexed onto the payload of the
// time-triggered core network's frames (paper Section II-D and [13]).
//
// Each virtual network (VN) owns a fixed byte segment in each producing
// node's frame, so a misbehaving job can never consume another DAS's
// bandwidth — the encapsulation service that makes per-FRU diagnosis
// possible. Two port semantics are provided: time-triggered state channels
// (the latest value is re-published every round) and event-triggered
// queued channels with bounded queues, whose overflows are exactly the
// "job borderline (configuration) fault" manifestation of the paper's
// Section III-D.
package vnet

import (
	"encoding/binary"
	"fmt"
	"math"

	"decos/internal/sim"
)

// ChannelID names one communication channel within a cluster. A channel has
// exactly one producing port and any number of subscribers.
type ChannelID uint16

// Message is one application-level message on a virtual network channel.
type Message struct {
	Channel ChannelID
	Seq     uint32
	Payload []byte
	// SentAt is the time the producer handed the message to the VN service.
	SentAt sim.Time
}

// Float returns the payload interpreted as a float64 value, the common case
// for sensor/actuator traffic. It returns NaN if the payload is too short.
func (m Message) Float() float64 {
	if len(m.Payload) < 8 {
		return math.NaN()
	}
	return math.Float64frombits(binary.BigEndian.Uint64(m.Payload))
}

// FloatPayload encodes a float64 as a message payload.
func FloatPayload(v float64) []byte {
	return AppendFloat(nil, v)
}

// AppendFloat appends the 8-byte payload encoding of v to dst and returns
// the extended slice — the allocation-free form of FloatPayload for callers
// with a scratch buffer.
func AppendFloat(dst []byte, v float64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(v))
	return append(dst, b[:]...)
}

// Wire format of one message inside a VN segment:
//
//	channel  uint16
//	seq      uint32
//	len      uint8   (payload length, <= MaxPayload)
//	payload  len bytes
//	crc      uint16  (CRC-16/CCITT over all preceding bytes)
//
// A segment is a sequence of such records; a zero channel-id word with zero
// length terminates the segment early (padding).
const (
	headerBytes = 2 + 4 + 1
	crcBytes    = 2
	// MaxPayload is the largest message payload the wire format carries.
	MaxPayload = 255
)

// WireSize returns the encoded size of a message with the given payload
// length.
func WireSize(payloadLen int) int { return headerBytes + payloadLen + crcBytes }

// crcTable is the byte-indexed lookup table for CRC-16/CCITT-FALSE
// (polynomial 0x1021). Every encoded and decoded message is checksummed,
// making the CRC the single hottest function of a full simulation;
// table-driven computation is ~8x faster than bit-at-a-time and produces
// identical checksums.
var crcTable = func() (t [256]uint16) {
	for i := range t {
		crc := uint16(i) << 8
		for b := 0; b < 8; b++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
		t[i] = crc
	}
	return
}()

// crc16 computes CRC-16/CCITT-FALSE.
func crc16(data []byte) uint16 {
	crc := uint16(0xffff)
	for _, b := range data {
		crc = crc<<8 ^ crcTable[byte(crc>>8)^b]
	}
	return crc
}

// encode appends the wire form of m to dst and returns the extended slice.
func encode(dst []byte, m Message) ([]byte, error) {
	if len(m.Payload) > MaxPayload {
		return dst, fmt.Errorf("vnet: payload %d exceeds max %d", len(m.Payload), MaxPayload)
	}
	start := len(dst)
	var hdr [headerBytes]byte
	binary.BigEndian.PutUint16(hdr[0:2], uint16(m.Channel))
	binary.BigEndian.PutUint32(hdr[2:6], m.Seq)
	hdr[6] = byte(len(m.Payload))
	dst = append(dst, hdr[:]...)
	dst = append(dst, m.Payload...)
	crc := crc16(dst[start:])
	var tail [crcBytes]byte
	binary.BigEndian.PutUint16(tail[:], crc)
	dst = append(dst, tail[:]...)
	return dst, nil
}

// decodeResult is one decoded message plus its integrity verdict.
type decodeResult struct {
	msg      Message
	crcValid bool
}

// decodeSegment parses all messages in a VN segment, appending to dst (a
// reusable scratch buffer). Messages whose CRC fails are still returned
// (with crcValid=false) when their framing is intact; undecodable trailing
// garbage terminates the parse with ok=false.
//
// The returned payloads alias the segment buffer: a consumer that retains
// one must copy it (InPort.deliver does).
func decodeSegment(dst []decodeResult, seg []byte) (out []decodeResult, ok bool) {
	out = dst
	ok = true
	for len(seg) >= headerBytes+crcBytes {
		ch := binary.BigEndian.Uint16(seg[0:2])
		plen := int(seg[6])
		if ch == 0 && plen == 0 {
			break // padding terminator
		}
		total := WireSize(plen)
		if total > len(seg) {
			ok = false
			break
		}
		rec := seg[:total]
		crc := binary.BigEndian.Uint16(rec[total-crcBytes:])
		m := Message{
			Channel: ChannelID(ch),
			Seq:     binary.BigEndian.Uint32(rec[2:6]),
			Payload: rec[headerBytes : headerBytes+plen],
		}
		out = append(out, decodeResult{msg: m, crcValid: crc16(rec[:total-crcBytes]) == crc})
		seg = seg[total:]
	}
	return out, ok
}
