package vnet

import (
	"fmt"

	"decos/internal/sim"
	"decos/internal/tt"
)

// Kind distinguishes the two virtual network paradigms of the DECOS
// architecture.
type Kind int

const (
	// TimeTriggered networks carry state messages: the producer's latest
	// value is re-published in every round (state semantics; a lost frame
	// only makes the state stale).
	TimeTriggered Kind = iota
	// EventTriggered networks carry event messages through bounded queues
	// (exactly-once intent; a lost frame loses messages, a full queue
	// overflows).
	EventTriggered
)

func (k Kind) String() string {
	if k == TimeTriggered {
		return "TT"
	}
	return "ET"
}

// Network is one encapsulated virtual network, typically owned by a single
// DAS (plus the dedicated virtual diagnostic network).
type Network struct {
	Name string
	Kind Kind
	// DAS is the name of the owning distributed application subsystem; the
	// diagnostic network uses "diagnosis".
	DAS string

	endpoints map[tt.NodeID]*Endpoint
	channels  map[ChannelID]*channelState
}

type channelState struct {
	id       ChannelID
	producer tt.NodeID
	nextSeq  uint32
}

// NewNetwork creates an empty virtual network.
func NewNetwork(name string, kind Kind, das string) *Network {
	return &Network{
		Name:      name,
		Kind:      kind,
		DAS:       das,
		endpoints: make(map[tt.NodeID]*Endpoint),
		channels:  make(map[ChannelID]*channelState),
	}
}

// Endpoint is the attachment of a network to one node: the byte budget the
// network owns in that node's frames, plus the outbound state/queue.
type Endpoint struct {
	Net  *Network
	Node tt.NodeID
	// AllocBytes is the segment size this network owns in the node's frame.
	AllocBytes int
	// QueueCap bounds the outbound event queue (ET networks only). A
	// mis-dimensioned QueueCap relative to the traffic model is the
	// paper's job-borderline configuration fault.
	QueueCap int

	outQueue []Message              // ET pending messages, FIFO
	outState map[ChannelID]*Message // TT latest value per produced channel
	ttOrder  []ChannelID            // deterministic packing order
	freeBufs [][]byte               // recycled ET payload buffers

	// TxOverflows counts messages dropped at the sender because the
	// outbound queue was full — the encapsulation service refusing to let
	// a job exceed its configured resources.
	TxOverflows int
	// TxMessages counts successfully accepted sends.
	TxMessages int

	packBuf []byte // reused segment scratch
}

// AddEndpoint attaches the network to a node with the given frame-segment
// budget and (for ET networks) outbound queue capacity.
func (n *Network) AddEndpoint(node tt.NodeID, allocBytes, queueCap int) *Endpoint {
	if _, dup := n.endpoints[node]; dup {
		panic(fmt.Sprintf("vnet: duplicate endpoint for node %d on %s", node, n.Name))
	}
	ep := &Endpoint{
		Net:        n,
		Node:       node,
		AllocBytes: allocBytes,
		QueueCap:   queueCap,
		outState:   make(map[ChannelID]*Message),
	}
	n.endpoints[node] = ep
	return ep
}

// Endpoint returns the endpoint at the given node, or nil.
func (n *Network) Endpoint(node tt.NodeID) *Endpoint { return n.endpoints[node] }

// DeclareChannel registers a channel produced at the given node. Channel ids
// are cluster-global; id 0 is reserved for padding.
func (n *Network) DeclareChannel(id ChannelID, producer tt.NodeID) {
	if id == 0 {
		panic("vnet: channel id 0 is reserved")
	}
	if _, dup := n.channels[id]; dup {
		panic(fmt.Sprintf("vnet: duplicate channel %d on %s", id, n.Name))
	}
	ep := n.endpoints[producer]
	if ep == nil {
		panic(fmt.Sprintf("vnet: channel %d producer node %d has no endpoint on %s", id, producer, n.Name))
	}
	n.channels[id] = &channelState{id: id, producer: producer}
	if n.Kind == TimeTriggered {
		ep.ttOrder = append(ep.ttOrder, id)
	}
}

// Producer returns the producing node of a channel and whether the channel
// exists on this network.
func (n *Network) Producer(id ChannelID) (tt.NodeID, bool) {
	cs, ok := n.channels[id]
	if !ok {
		return tt.NoNode, false
	}
	return cs.producer, true
}

// Channels returns all channel ids declared on the network, in ascending
// order.
func (n *Network) Channels() []ChannelID {
	out := make([]ChannelID, 0, len(n.channels))
	for id := range n.channels {
		out = append(out, id)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Send publishes a message on the given channel from its producing node at
// time now. For TT channels the value replaces the published state; for ET
// channels it is appended to the outbound queue. Send reports whether the
// message was accepted (false = queue overflow, counted on the endpoint).
// The payload is copied into endpoint-owned storage, so the caller may reuse
// its buffer immediately.
func (n *Network) Send(ch ChannelID, payload []byte, now sim.Time) bool {
	cs, ok := n.channels[ch]
	if !ok {
		panic(fmt.Sprintf("vnet: send on undeclared channel %d", ch))
	}
	ep := n.endpoints[cs.producer]
	seq := cs.nextSeq
	cs.nextSeq++
	if n.Kind == TimeTriggered {
		st := ep.outState[ch]
		if st == nil {
			st = &Message{}
			ep.outState[ch] = st
		}
		st.Channel, st.Seq, st.SentAt = ch, seq, now
		st.Payload = append(st.Payload[:0], payload...)
		ep.TxMessages++
		return true
	}
	if ep.QueueCap > 0 && len(ep.outQueue) >= ep.QueueCap {
		ep.TxOverflows++
		return false
	}
	m := Message{Channel: ch, Seq: seq, SentAt: now}
	m.Payload = append(ep.takeBuf(), payload...)
	ep.outQueue = append(ep.outQueue, m)
	ep.TxMessages++
	return true
}

// takeBuf pops a recycled payload buffer (or returns nil, making the append
// in Send allocate a fresh one).
func (ep *Endpoint) takeBuf() []byte {
	if n := len(ep.freeBufs); n > 0 {
		b := ep.freeBufs[n-1]
		ep.freeBufs = ep.freeBufs[:n-1]
		return b
	}
	return nil
}

// packSegment serializes the endpoint's pending traffic into at most
// AllocBytes and returns the segment (valid until the next packSegment on
// this endpoint — the fabric copies it into the frame buffer immediately).
// TT networks publish every produced channel's current state; ET networks
// drain the queue head-first as far as the budget allows.
func (ep *Endpoint) packSegment() []byte {
	if cap(ep.packBuf) < ep.AllocBytes {
		ep.packBuf = make([]byte, 0, ep.AllocBytes)
	}
	seg := ep.packBuf[:0]
	defer func() { ep.packBuf = seg[:0] }()
	if ep.Net.Kind == TimeTriggered {
		for _, ch := range ep.ttOrder {
			m := ep.outState[ch]
			if m == nil {
				continue
			}
			if WireSize(len(m.Payload)) > ep.AllocBytes-len(seg) {
				break
			}
			var err error
			seg, err = encode(seg, *m)
			if err != nil {
				panic(err)
			}
		}
		return seg
	}
	drained := 0
	for drained < len(ep.outQueue) {
		m := ep.outQueue[drained]
		if WireSize(len(m.Payload)) > ep.AllocBytes-len(seg) {
			break
		}
		var err error
		seg, err = encode(seg, m)
		if err != nil {
			panic(err)
		}
		if cap(m.Payload) > 0 {
			ep.freeBufs = append(ep.freeBufs, m.Payload[:0])
		}
		drained++
	}
	if drained > 0 {
		// Shift the remainder down instead of reslicing so the queue's
		// backing array (and its capacity) is kept across rounds.
		rest := copy(ep.outQueue, ep.outQueue[drained:])
		tail := ep.outQueue[rest:]
		for i := range tail {
			tail[i] = Message{}
		}
		ep.outQueue = ep.outQueue[:rest]
	}
	return seg
}

// QueueLen returns the number of messages waiting in the outbound queue.
func (ep *Endpoint) QueueLen() int { return len(ep.outQueue) }
