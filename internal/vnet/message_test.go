package vnet

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"decos/internal/sim"
)

func TestMessageRoundtrip(t *testing.T) {
	m := Message{Channel: 7, Seq: 42, Payload: []byte{1, 2, 3}, SentAt: 100}
	buf, err := encode(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != WireSize(3) {
		t.Errorf("wire size = %d, want %d", len(buf), WireSize(3))
	}
	out, ok := decodeSegment(nil, buf)
	if !ok || len(out) != 1 {
		t.Fatalf("decode failed: ok=%v n=%d", ok, len(out))
	}
	got := out[0]
	if !got.crcValid {
		t.Error("CRC invalid on clean roundtrip")
	}
	if got.msg.Channel != 7 || got.msg.Seq != 42 || !bytes.Equal(got.msg.Payload, []byte{1, 2, 3}) {
		t.Errorf("decoded %+v", got.msg)
	}
}

func TestMessageRoundtripProperty(t *testing.T) {
	f := func(ch uint16, seq uint32, payload []byte) bool {
		if ch == 0 {
			ch = 1
		}
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		m := Message{Channel: ChannelID(ch), Seq: seq, Payload: payload}
		buf, err := encode(nil, m)
		if err != nil {
			return false
		}
		out, ok := decodeSegment(nil, buf)
		if !ok || len(out) != 1 || !out[0].crcValid {
			return false
		}
		g := out[0].msg
		return g.Channel == m.Channel && g.Seq == m.Seq && bytes.Equal(g.Payload, m.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMultipleMessagesInSegment(t *testing.T) {
	var buf []byte
	for i := 0; i < 5; i++ {
		var err error
		buf, err = encode(buf, Message{Channel: ChannelID(i + 1), Seq: uint32(i), Payload: FloatPayload(float64(i))})
		if err != nil {
			t.Fatal(err)
		}
	}
	out, ok := decodeSegment(nil, buf)
	if !ok || len(out) != 5 {
		t.Fatalf("decoded %d messages, ok=%v", len(out), ok)
	}
	for i, r := range out {
		if !r.crcValid || r.msg.Float() != float64(i) {
			t.Errorf("message %d: valid=%v value=%v", i, r.crcValid, r.msg.Float())
		}
	}
}

func TestPaddingTerminatesSegment(t *testing.T) {
	buf, _ := encode(nil, Message{Channel: 3, Seq: 1, Payload: []byte{9}})
	padded := append(buf, make([]byte, 20)...) // zero padding
	out, ok := decodeSegment(nil, padded)
	if !ok || len(out) != 1 {
		t.Errorf("padding not terminated cleanly: ok=%v n=%d", ok, len(out))
	}
}

func TestCRCDetectsBitFlip(t *testing.T) {
	buf, _ := encode(nil, Message{Channel: 5, Seq: 9, Payload: FloatPayload(3.14)})
	detected := 0
	for bit := 0; bit < len(buf)*8; bit++ {
		mut := append([]byte(nil), buf...)
		mut[bit/8] ^= 1 << (bit % 8)
		out, _ := decodeSegment(nil, mut)
		flagged := true
		for _, r := range out {
			if r.crcValid && r.msg.Channel == 5 && r.msg.Seq == 9 &&
				bytes.Equal(r.msg.Payload, FloatPayload(3.14)) {
				flagged = false // undetected corruption reproducing the original
			}
		}
		if flagged {
			detected++
		}
	}
	// Every single-bit flip must be detected (CRC-16 has Hamming distance
	// ≥ 4 for short messages) or at minimum alter the framing.
	if detected != len(buf)*8 {
		t.Errorf("only %d/%d single-bit flips detected", detected, len(buf)*8)
	}
}

func TestTruncatedRecordFailsDecode(t *testing.T) {
	buf, _ := encode(nil, Message{Channel: 2, Seq: 1, Payload: []byte{1, 2, 3, 4}})
	_, ok := decodeSegment(nil, buf[:len(buf)-3])
	if ok {
		t.Error("truncated record decoded ok")
	}
}

func TestOversizedPayloadRejected(t *testing.T) {
	_, err := encode(nil, Message{Channel: 1, Payload: make([]byte, MaxPayload+1)})
	if err == nil {
		t.Error("oversized payload accepted")
	}
}

func TestFloatHelpers(t *testing.T) {
	m := Message{Payload: FloatPayload(-2.5)}
	if m.Float() != -2.5 {
		t.Errorf("Float() = %v", m.Float())
	}
	short := Message{Payload: []byte{1}}
	if !math.IsNaN(short.Float()) {
		t.Error("short payload did not yield NaN")
	}
	_ = sim.Time(0)
}
