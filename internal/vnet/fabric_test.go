package vnet

import (
	"testing"

	"decos/internal/sim"
	"decos/internal/tt"
)

// buildFabric wires a 3-node cluster with one TT network (channels 1,2
// produced by nodes 0,1) and one ET network (channel 10 produced by node 0).
func buildFabric(t *testing.T) (*Fabric, *Network, *Network) {
	t.Helper()
	cfg := tt.UniformSchedule(3, 250*sim.Microsecond, 128)
	f := NewFabric(cfg, sim.NewRNG(1))

	ttn := NewNetwork("dasA.tt", TimeTriggered, "dasA")
	ttn.AddEndpoint(0, 40, 0)
	ttn.AddEndpoint(1, 40, 0)
	ttn.DeclareChannel(1, 0)
	ttn.DeclareChannel(2, 1)

	etn := NewNetwork("dasB.et", EventTriggered, "dasB")
	etn.AddEndpoint(0, 40, 8)
	etn.DeclareChannel(10, 0)

	f.AddNetwork(ttn)
	f.AddNetwork(etn)
	return f, ttn, etn
}

func TestFabricSealLayout(t *testing.T) {
	f, _, _ := buildFabric(t)
	if err := f.Seal(); err != nil {
		t.Fatal(err)
	}
	// Node 0 carries both networks (40+40 ≤ 128), node 1 only the TT one.
	if got := len(f.layout[0]); got != 2 {
		t.Errorf("node 0 segments = %d, want 2", got)
	}
	if got := len(f.layout[1]); got != 1 {
		t.Errorf("node 1 segments = %d, want 1", got)
	}
}

func TestFabricSealOverflow(t *testing.T) {
	cfg := tt.UniformSchedule(2, 250, 16)
	f := NewFabric(cfg, sim.NewRNG(1))
	n := NewNetwork("big", TimeTriggered, "x")
	n.AddEndpoint(0, 64, 0)
	n.DeclareChannel(1, 0)
	f.AddNetwork(n)
	if err := f.Seal(); err == nil {
		t.Error("over-allocated layout accepted")
	}
}

func TestTTStateDelivery(t *testing.T) {
	f, ttn, _ := buildFabric(t)
	in := f.Subscribe(2, 1, 0, true)
	if err := f.Seal(); err != nil {
		t.Fatal(err)
	}

	ttn.Send(1, FloatPayload(42), 0)
	payload := f.BuildPayload(0)
	fr := tt.Frame{Round: 0, Slot: 0, Sender: 0, Payload: payload, Status: tt.FrameOK}
	f.ConsumeFrame(2, fr, tt.FrameOK, 100)

	m, ok := in.Peek()
	if !ok || m.Float() != 42 {
		t.Fatalf("TT state not delivered: ok=%v v=%v", ok, m.Float())
	}
	// State semantics: a newer value replaces, and is re-published every
	// round even without a new Send.
	ttn.Send(1, FloatPayload(43), 200)
	f.ConsumeFrame(2, tt.Frame{Sender: 0, Payload: f.BuildPayload(0)}, tt.FrameOK, 300)
	f.ConsumeFrame(2, tt.Frame{Sender: 0, Payload: f.BuildPayload(0)}, tt.FrameOK, 400)
	if in.QueueLen() != 1 {
		t.Errorf("overwrite port queue = %d, want 1", in.QueueLen())
	}
	m, _ = in.Peek()
	if m.Float() != 43 {
		t.Errorf("latest state = %v, want 43", m.Float())
	}
	if in.Stats.Received != 3 {
		t.Errorf("received = %d, want 3 (republished state)", in.Stats.Received)
	}
}

func TestETQueueFIFOAndAllocationLimit(t *testing.T) {
	f, _, etn := buildFabric(t)
	in := f.Subscribe(1, 10, 16, false)
	if err := f.Seal(); err != nil {
		t.Fatal(err)
	}

	// 8-byte payload → wire size 17; 40-byte segment fits 2 per round.
	for i := 0; i < 5; i++ {
		if !etn.Send(10, FloatPayload(float64(i)), 0) {
			t.Fatalf("send %d rejected", i)
		}
	}
	ep := etn.Endpoint(0)
	payload := f.BuildPayload(0)
	if ep.QueueLen() != 3 {
		t.Errorf("queue after first round = %d, want 3", ep.QueueLen())
	}
	f.ConsumeFrame(1, tt.Frame{Sender: 0, Payload: payload}, tt.FrameOK, 100)
	if in.QueueLen() != 2 {
		t.Errorf("delivered %d messages, want 2", in.QueueLen())
	}
	m, _ := in.Receive()
	if m.Float() != 0 {
		t.Errorf("FIFO violated: first = %v", m.Float())
	}
	// Next round drains the remainder.
	f.ConsumeFrame(1, tt.Frame{Sender: 0, Payload: f.BuildPayload(0)}, tt.FrameOK, 200)
	f.ConsumeFrame(1, tt.Frame{Sender: 0, Payload: f.BuildPayload(0)}, tt.FrameOK, 300)
	total := in.QueueLen()
	for _, want := range []float64{1, 2, 3, 4} {
		m, ok := in.Receive()
		if !ok || m.Float() != want {
			t.Fatalf("expected %v, got %v (ok=%v), queued=%d", want, m.Float(), ok, total)
		}
	}
}

func TestETSenderOverflow(t *testing.T) {
	f, _, etn := buildFabric(t)
	f.Subscribe(1, 10, 0, false)
	if err := f.Seal(); err != nil {
		t.Fatal(err)
	}
	ep := etn.Endpoint(0)
	accepted := 0
	for i := 0; i < 12; i++ {
		if etn.Send(10, FloatPayload(1), 0) {
			accepted++
		}
	}
	if accepted != 8 {
		t.Errorf("accepted %d sends with QueueCap=8", accepted)
	}
	if ep.TxOverflows != 4 {
		t.Errorf("TxOverflows = %d, want 4", ep.TxOverflows)
	}
}

func TestReceiveQueueOverflow(t *testing.T) {
	f, _, etn := buildFabric(t)
	in := f.Subscribe(1, 10, 1, false) // capacity 1: misconfigured consumer
	if err := f.Seal(); err != nil {
		t.Fatal(err)
	}
	etn.Send(10, FloatPayload(1), 0)
	etn.Send(10, FloatPayload(2), 0)
	f.ConsumeFrame(1, tt.Frame{Sender: 0, Payload: f.BuildPayload(0)}, tt.FrameOK, 100)
	if in.Stats.Overflows != 1 {
		t.Errorf("Overflows = %d, want 1", in.Stats.Overflows)
	}
	if in.QueueLen() != 1 {
		t.Errorf("queue = %d, want 1", in.QueueLen())
	}
}

func TestFrameMissRecordedOnOmission(t *testing.T) {
	f, _, _ := buildFabric(t)
	inTT := f.Subscribe(2, 1, 0, true)
	inET := f.Subscribe(2, 10, 4, false)
	inOther := f.Subscribe(2, 2, 0, true) // produced by node 1, not node 0
	if err := f.Seal(); err != nil {
		t.Fatal(err)
	}
	f.ConsumeFrame(2, tt.Frame{Sender: 0}, tt.FrameOmitted, 100)
	if inTT.Stats.FrameMisses != 1 || inET.Stats.FrameMisses != 1 {
		t.Errorf("misses TT=%d ET=%d, want 1/1", inTT.Stats.FrameMisses, inET.Stats.FrameMisses)
	}
	if inOther.Stats.FrameMisses != 0 {
		t.Errorf("channel of another producer recorded a miss")
	}
	f.ConsumeFrame(2, tt.Frame{Sender: 0}, tt.FrameTiming, 200)
	if inTT.Stats.FrameMisses != 2 {
		t.Errorf("timing failure not recorded as miss")
	}
}

func TestCorruptionConsistentAcrossReceivers(t *testing.T) {
	f, ttn, _ := buildFabric(t)
	in1 := f.Subscribe(1, 1, 0, true)
	in2 := f.Subscribe(2, 1, 0, true)
	if err := f.Seal(); err != nil {
		t.Fatal(err)
	}
	crcSplit := 0
	for round := int64(0); round < 200; round++ {
		ttn.Send(1, FloatPayload(7), sim.Time(round*1000))
		fr := tt.Frame{Round: round, Slot: 0, Sender: 0, Payload: f.BuildPayload(0),
			Status: tt.FrameCorrupted, CorruptBits: 2}
		before1, before2 := in1.Stats.CRCFailures, in2.Stats.CRCFailures
		f.ConsumeFrame(1, fr, tt.FrameCorrupted, sim.Time(round*1000))
		f.ConsumeFrame(2, fr, tt.FrameCorrupted, sim.Time(round*1000))
		d1, d2 := in1.Stats.CRCFailures-before1, in2.Stats.CRCFailures-before2
		if d1 != d2 {
			crcSplit++
		}
	}
	if crcSplit != 0 {
		t.Errorf("%d/200 corrupted frames observed differently by two receivers", crcSplit)
	}
	if in1.Stats.CRCFailures == 0 {
		t.Error("no CRC failures from corrupted frames")
	}
}

func TestSeqGapDetection(t *testing.T) {
	f, _, etn := buildFabric(t)
	in := f.Subscribe(1, 10, 0, false)
	if err := f.Seal(); err != nil {
		t.Fatal(err)
	}
	etn.Send(10, FloatPayload(1), 0)
	f.ConsumeFrame(1, tt.Frame{Sender: 0, Payload: f.BuildPayload(0)}, tt.FrameOK, 0)
	// Two messages are sent but the frame carrying them is lost.
	etn.Send(10, FloatPayload(2), 0)
	etn.Send(10, FloatPayload(3), 0)
	f.BuildPayload(0) // drains the queue onto the (lost) frame
	f.ConsumeFrame(1, tt.Frame{Sender: 0}, tt.FrameOmitted, 100)
	// Next message arrives with a sequence gap.
	etn.Send(10, FloatPayload(4), 0)
	f.ConsumeFrame(1, tt.Frame{Sender: 0, Payload: f.BuildPayload(0)}, tt.FrameOK, 200)
	if in.Stats.SeqGaps != 1 {
		t.Errorf("SeqGaps = %d, want 1", in.Stats.SeqGaps)
	}
	if in.Stats.FrameMisses != 1 {
		t.Errorf("FrameMisses = %d, want 1", in.Stats.FrameMisses)
	}
}

func TestEncapsulationIsolation(t *testing.T) {
	// A flooding producer on the ET network cannot disturb the TT network's
	// segment: the layout is fixed per network.
	f, ttn, etn := buildFabric(t)
	inTT := f.Subscribe(2, 1, 0, true)
	if err := f.Seal(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		etn.Send(10, FloatPayload(float64(i)), 0) // mostly overflows
	}
	ttn.Send(1, FloatPayload(5), 0)
	f.ConsumeFrame(2, tt.Frame{Sender: 0, Payload: f.BuildPayload(0)}, tt.FrameOK, 100)
	if m, ok := inTT.Peek(); !ok || m.Float() != 5 {
		t.Errorf("TT traffic disturbed by ET flood: ok=%v v=%v", ok, m.Float())
	}
	if etn.Endpoint(0).TxOverflows == 0 {
		t.Error("flood did not overflow the encapsulated queue")
	}
}

func TestSubscribeUnknownChannelPanics(t *testing.T) {
	f, _, _ := buildFabric(t)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	f.Subscribe(0, 999, 0, false)
}

func TestNetworkDeclarationPanics(t *testing.T) {
	n := NewNetwork("x", TimeTriggered, "d")
	n.AddEndpoint(0, 16, 0)
	for name, fn := range map[string]func(){
		"zero channel":       func() { n.DeclareChannel(0, 0) },
		"missing endpoint":   func() { n.DeclareChannel(5, 3) },
		"duplicate endpoint": func() { n.AddEndpoint(0, 8, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
	n.DeclareChannel(5, 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate channel: no panic")
			}
		}()
		n.DeclareChannel(5, 0)
	}()
}

func TestNetworkAccessors(t *testing.T) {
	f, ttn, _ := buildFabric(t)
	if f.Network("dasA.tt") != ttn || f.Network("nope") != nil {
		t.Error("Network lookup wrong")
	}
	chs := ttn.Channels()
	if len(chs) != 2 || chs[0] != 1 || chs[1] != 2 {
		t.Errorf("Channels() = %v", chs)
	}
	if p, ok := ttn.Producer(2); !ok || p != 1 {
		t.Errorf("Producer(2) = %v,%v", p, ok)
	}
	if TimeTriggered.String() != "TT" || EventTriggered.String() != "ET" {
		t.Error("Kind.String wrong")
	}
}
