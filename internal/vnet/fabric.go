package vnet

import (
	"fmt"

	"decos/internal/sim"
	"decos/internal/tt"
)

// InPort is a subscriber's receive port on one channel. The port keeps a
// bounded queue (event semantics) or just the latest state (state
// semantics follows from capacity 1 with overwrite), plus the observation
// statistics the symptom detectors of the diagnostic subsystem read.
type InPort struct {
	Channel ChannelID
	Node    tt.NodeID
	// Capacity bounds the receive queue; incoming messages beyond it are
	// dropped and counted as overflows. Capacity <= 0 means unbounded.
	Capacity int
	// Overwrite makes the port keep only the newest message (state port).
	Overwrite bool

	queue []Message

	Stats PortStats
}

// PortStats are the LIF-visible observations of one receive port.
type PortStats struct {
	Received     int // messages delivered correctly
	CRCFailures  int // messages received with an invalid CRC (value failures)
	FrameMisses  int // producer frames omitted / timing-failed while subscribed
	Overflows    int // messages dropped because the receive queue was full
	SeqGaps      int // sequence discontinuities (lost messages detected)
	LastSeq      uint32
	haveSeq      bool
	LastArrival  sim.Time
	LastValue    []byte
	LastWasValid bool
}

// Receive pops the oldest queued message. ok is false when the queue is
// empty.
func (p *InPort) Receive() (Message, bool) {
	if len(p.queue) == 0 {
		return Message{}, false
	}
	m := p.queue[0]
	// Shift instead of reslicing so the queue's backing array is reused.
	n := copy(p.queue, p.queue[1:])
	p.queue[n] = Message{}
	p.queue = p.queue[:n]
	return m, true
}

// Peek returns the newest message without consuming it. On a state port
// (Overwrite) the payload is only valid until the next delivery; copy it to
// retain it across rounds.
func (p *InPort) Peek() (Message, bool) {
	if len(p.queue) == 0 {
		return Message{}, false
	}
	return p.queue[len(p.queue)-1], true
}

// QueueLen returns the number of queued messages.
func (p *InPort) QueueLen() int { return len(p.queue) }

func (p *InPort) deliver(m Message, crcValid bool, now sim.Time) {
	if !crcValid {
		p.Stats.CRCFailures++
		p.Stats.LastWasValid = false
		return
	}
	// The decoded payload aliases the frame buffer; own it before
	// retaining (queue and Stats keep references past the slot). A state
	// port recycles the buffer of the value it is about to displace — by
	// the time this delivery returns, nothing references it (Stats is
	// repointed below, and Peek'd payloads are documented as transient).
	var buf []byte
	if p.Overwrite && len(p.queue) == 1 {
		buf = p.queue[0].Payload[:0]
	}
	m.Payload = append(buf, m.Payload...)
	if p.Stats.haveSeq && m.Seq != p.Stats.LastSeq+1 && m.Seq > p.Stats.LastSeq {
		p.Stats.SeqGaps++
	}
	p.Stats.LastSeq = m.Seq
	p.Stats.haveSeq = true
	p.Stats.Received++
	p.Stats.LastArrival = now
	p.Stats.LastValue = m.Payload
	p.Stats.LastWasValid = true
	if p.Overwrite {
		p.queue = p.queue[:0]
		p.queue = append(p.queue, m)
		return
	}
	if p.Capacity > 0 && len(p.queue) >= p.Capacity {
		p.Stats.Overflows++
		return
	}
	p.queue = append(p.queue, m)
}

// segment is one network's byte range within a node's frame payload.
type segment struct {
	net    *Network
	offset int
	length int
}

// Fabric wires a set of virtual networks onto a time-triggered cluster: it
// computes the per-node frame layout, packs outbound segments into frames
// and dispatches received segments to subscriber ports.
type Fabric struct {
	cfg      tt.Config
	networks []*Network
	layout   map[tt.NodeID][]segment
	subs     map[ChannelID][]*InPort
	// corruptSeed makes bit-flip placement for a corrupted frame a pure
	// function of the frame's coordinates, so every receiver of one
	// corrupted broadcast observes the same damaged bytes.
	corruptSeed uint64

	// Per-node frame buffers and a decode scratch list, reused across
	// rounds: frames are fully consumed within their slot event, so the
	// buffer's contents are dead by the time the node builds its next
	// frame.
	frameBufs map[tt.NodeID][]byte
	decodeBuf []decodeResult

	// DecodeErrors counts frames whose segment structure was undecodable
	// after corruption.
	DecodeErrors int
	sealed       bool
}

// NewFabric creates a fabric for the given core-network configuration. The
// rng seeds bit-corruption placement for corrupted frames.
func NewFabric(cfg tt.Config, rng *sim.RNG) *Fabric {
	return &Fabric{
		cfg:         cfg,
		layout:      make(map[tt.NodeID][]segment),
		subs:        make(map[ChannelID][]*InPort),
		corruptSeed: rng.Uint64(),
		frameBufs:   make(map[tt.NodeID][]byte),
	}
}

// AddNetwork registers a virtual network. All networks must be added before
// Seal.
func (f *Fabric) AddNetwork(n *Network) {
	if f.sealed {
		panic("vnet: AddNetwork after Seal")
	}
	f.networks = append(f.networks, n)
}

// Subscribe attaches an in-port at the given node to a channel. The channel
// must exist on one of the fabric's networks.
func (f *Fabric) Subscribe(node tt.NodeID, ch ChannelID, capacity int, overwrite bool) *InPort {
	if f.findChannel(ch) == nil {
		panic(fmt.Sprintf("vnet: subscribe to unknown channel %d", ch))
	}
	p := &InPort{Channel: ch, Node: node, Capacity: capacity, Overwrite: overwrite}
	f.subs[ch] = append(f.subs[ch], p)
	return p
}

func (f *Fabric) findChannel(ch ChannelID) *Network {
	for _, n := range f.networks {
		if _, ok := n.Producer(ch); ok {
			return n
		}
	}
	return nil
}

// Seal computes the frame layout. It fails if any node's total allocation
// exceeds the frame payload size.
func (f *Fabric) Seal() error {
	if f.sealed {
		return nil
	}
	for _, node := range f.cfg.Nodes() {
		off := 0
		for _, n := range f.networks {
			ep := n.Endpoint(node)
			if ep == nil || ep.AllocBytes == 0 {
				continue
			}
			f.layout[node] = append(f.layout[node], segment{net: n, offset: off, length: ep.AllocBytes})
			off += ep.AllocBytes
		}
		if off > f.cfg.PayloadBytes {
			return fmt.Errorf("vnet: node %d allocation %d exceeds frame payload %d", node, off, f.cfg.PayloadBytes)
		}
	}
	f.sealed = true
	return nil
}

// PortsAt returns all in-ports subscribed at the given node, in channel
// order (stable across runs). The diagnostic monitors scan these.
func (f *Fabric) PortsAt(node tt.NodeID) []*InPort {
	var chans []int
	for ch := range f.subs {
		chans = append(chans, int(ch))
	}
	for i := 1; i < len(chans); i++ {
		for j := i; j > 0 && chans[j] < chans[j-1]; j-- {
			chans[j], chans[j-1] = chans[j-1], chans[j]
		}
	}
	var out []*InPort
	for _, ch := range chans {
		for _, p := range f.subs[ChannelID(ch)] {
			if p.Node == node {
				out = append(out, p)
			}
		}
	}
	return out
}

// PortTotals are the fabric-wide sums of every subscribed port's
// observation statistics — the virtual-network layer's telemetry view
// (CRC drops, misses, queue overflows, detected losses).
type PortTotals struct {
	Received     int64
	CRCFailures  int64
	FrameMisses  int64
	Overflows    int64
	SeqGaps      int64
	DecodeErrors int64
}

// Totals sums the port statistics across all subscriptions. It allocates
// nothing and is cheap enough to call every round; like the ports
// themselves it is not safe for use concurrently with the simulation loop.
func (f *Fabric) Totals() PortTotals {
	t := PortTotals{DecodeErrors: int64(f.DecodeErrors)}
	for _, ports := range f.subs {
		for _, p := range ports {
			t.Received += int64(p.Stats.Received)
			t.CRCFailures += int64(p.Stats.CRCFailures)
			t.FrameMisses += int64(p.Stats.FrameMisses)
			t.Overflows += int64(p.Stats.Overflows)
			t.SeqGaps += int64(p.Stats.SeqGaps)
		}
	}
	return t
}

// Networks returns the registered networks in registration order.
func (f *Fabric) Networks() []*Network { return f.networks }

// Network returns the registered network with the given name, or nil.
func (f *Fabric) Network(name string) *Network {
	for _, n := range f.networks {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// BuildPayload assembles node's frame payload for one round by packing each
// attached network's segment at its fixed offset. The returned buffer is
// reused on the node's next BuildPayload: frames are consumed within their
// TDMA slot, so nothing holds it longer.
func (f *Fabric) BuildPayload(node tt.NodeID) []byte {
	if !f.sealed {
		panic("vnet: BuildPayload before Seal")
	}
	segs := f.layout[node]
	if len(segs) == 0 {
		return nil
	}
	last := segs[len(segs)-1]
	size := last.offset + last.length
	buf := f.frameBufs[node]
	if cap(buf) < size {
		buf = make([]byte, size)
		f.frameBufs[node] = buf
	} else {
		buf = buf[:size]
		clear(buf)
	}
	for _, s := range segs {
		packed := s.net.Endpoint(node).packSegment()
		copy(buf[s.offset:s.offset+s.length], packed)
	}
	return buf
}

// ConsumeFrame dispatches one received frame at one receiver. Correct
// frames are decoded per the sender's layout and delivered to the
// receiver's subscribed ports; corrupted frames have CorruptBits random bits
// flipped first (so CRC checks fail realistically); omitted/timing frames
// record a miss on every subscribed port fed by the sender.
func (f *Fabric) ConsumeFrame(receiver tt.NodeID, fr tt.Frame, st tt.FrameStatus, now sim.Time) {
	if !f.sealed {
		panic("vnet: ConsumeFrame before Seal")
	}
	if fr.Sender == tt.NoNode {
		return
	}
	segs := f.layout[fr.Sender]
	if len(segs) == 0 {
		return
	}
	if st == tt.FrameOmitted || st == tt.FrameTiming {
		for _, s := range segs {
			for ch, prod := range s.net.channels {
				if prod.producer != fr.Sender {
					continue
				}
				for _, p := range f.subs[ch] {
					if p.Node == receiver {
						p.Stats.FrameMisses++
					}
				}
			}
		}
		return
	}

	payload := fr.Payload
	if st == tt.FrameCorrupted {
		payload = append([]byte(nil), payload...)
		bits := fr.CorruptBits
		if bits <= 0 {
			bits = 1
		}
		crng := sim.NewRNG(f.corruptSeed ^ uint64(fr.Round)*0x9e3779b97f4a7c15 ^ uint64(fr.Slot)<<48)
		for i := 0; i < bits && len(payload) > 0; i++ {
			pos := crng.Intn(len(payload) * 8)
			payload[pos/8] ^= 1 << (pos % 8)
		}
	}

	for _, s := range segs {
		end := s.offset + s.length
		if end > len(payload) {
			end = len(payload)
		}
		if s.offset >= end {
			continue
		}
		msgs, ok := decodeSegment(f.decodeBuf[:0], payload[s.offset:end])
		f.decodeBuf = msgs[:0]
		if !ok {
			f.DecodeErrors++
		}
		for _, r := range msgs {
			// Receivers know the static channel-to-sender mapping: a
			// record claiming a channel not produced by this frame's
			// sender is mis-framed corruption, not that channel's
			// traffic.
			if prod, known := s.net.Producer(r.msg.Channel); !known || prod != fr.Sender {
				f.DecodeErrors++
				continue
			}
			for _, p := range f.subs[r.msg.Channel] {
				if p.Node == receiver {
					p.deliver(r.msg, r.crcValid, now)
				}
			}
		}
	}
}
