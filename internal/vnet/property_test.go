package vnet

import (
	"testing"
	"testing/quick"

	"decos/internal/sim"
	"decos/internal/tt"
)

// Property: over a lossless channel, every accepted message is either
// delivered to the subscriber or still waiting in the sender queue —
// no message is duplicated or silently dropped, for any traffic pattern
// and queue dimensioning.
func TestETConservationProperty(t *testing.T) {
	f := func(seed uint64, queueCap8, rounds8, burst8 uint8) bool {
		queueCap := int(queueCap8%16) + 1
		rounds := int(rounds8%50) + 1
		burstMean := float64(burst8%5) + 0.5

		cfg := tt.UniformSchedule(1, 250, 64)
		fab := NewFabric(cfg, sim.NewRNG(seed))
		n := NewNetwork("p", EventTriggered, "p")
		ep := n.AddEndpoint(0, 40, queueCap)
		n.DeclareChannel(1, 0)
		fab.AddNetwork(n)
		in := fab.Subscribe(0, 1, 0, false)
		if err := fab.Seal(); err != nil {
			return false
		}

		rng := sim.NewRNG(seed ^ 0xabcd)
		for r := 0; r < rounds; r++ {
			k := rng.Poisson(burstMean)
			for i := 0; i < k; i++ {
				n.Send(1, FloatPayload(float64(i)), sim.Time(r))
			}
			payload := fab.BuildPayload(0)
			fab.ConsumeFrame(0, tt.Frame{Sender: 0, Round: int64(r), Payload: payload}, tt.FrameOK, sim.Time(r))
		}
		// Conservation: accepted = delivered + still queued at sender.
		return ep.TxMessages == in.Stats.Received+ep.QueueLen()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: sequence numbers observed by a subscriber are strictly
// increasing across any pattern of frame losses — gaps may appear but
// never reordering or duplication.
func TestSeqMonotoneUnderLossProperty(t *testing.T) {
	f := func(seed uint64, dropPattern uint32) bool {
		cfg := tt.UniformSchedule(1, 250, 64)
		fab := NewFabric(cfg, sim.NewRNG(seed))
		n := NewNetwork("p", EventTriggered, "p")
		n.AddEndpoint(0, 40, 64)
		n.DeclareChannel(1, 0)
		fab.AddNetwork(n)
		in := fab.Subscribe(0, 1, 0, false)
		if err := fab.Seal(); err != nil {
			return false
		}
		for r := 0; r < 32; r++ {
			n.Send(1, FloatPayload(float64(r)), sim.Time(r))
			payload := fab.BuildPayload(0)
			st := tt.FrameOK
			if dropPattern&(1<<uint(r)) != 0 {
				st = tt.FrameOmitted
				payload = nil
			}
			fab.ConsumeFrame(0, tt.Frame{Sender: 0, Round: int64(r), Payload: payload}, st, sim.Time(r))
		}
		last := int64(-1)
		for {
			m, ok := in.Receive()
			if !ok {
				break
			}
			if int64(m.Seq) <= last {
				return false
			}
			last = int64(m.Seq)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the fixed frame layout means one network's traffic volume can
// never displace another network's segment — a TT state message survives
// any ET flood.
func TestEncapsulationProperty(t *testing.T) {
	f := func(seed uint64, flood uint16) bool {
		cfg := tt.UniformSchedule(1, 250, 96)
		fab := NewFabric(cfg, sim.NewRNG(seed))
		ttn := NewNetwork("tt", TimeTriggered, "a")
		ttn.AddEndpoint(0, 20, 0)
		ttn.DeclareChannel(1, 0)
		etn := NewNetwork("et", EventTriggered, "b")
		etn.AddEndpoint(0, 40, 8)
		etn.DeclareChannel(2, 0)
		fab.AddNetwork(ttn)
		fab.AddNetwork(etn)
		in := fab.Subscribe(0, 1, 0, true)
		if err := fab.Seal(); err != nil {
			return false
		}
		for i := 0; i < int(flood%2000); i++ {
			etn.Send(2, FloatPayload(1), 0)
		}
		ttn.Send(1, FloatPayload(7), 0)
		fab.ConsumeFrame(0, tt.Frame{Sender: 0, Payload: fab.BuildPayload(0)}, tt.FrameOK, 0)
		m, ok := in.Peek()
		return ok && m.Float() == 7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
