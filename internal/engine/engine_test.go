package engine_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"decos/internal/component"
	"decos/internal/engine"
	"decos/internal/faults"
	"decos/internal/sim"
	"decos/internal/trace"
	"decos/internal/tt"
)

// smallOptions is a minimal runnable configuration: four components, one
// DAS, one trivial job each.
func smallOptions(seed uint64) []engine.Option {
	return []engine.Option{
		engine.WithTopology(4, 250*sim.Microsecond, 64),
		engine.WithSeed(seed),
		engine.WithClocks(100, 0.1, 25, 1),
		engine.WithBuild(func(cl *component.Cluster) {
			cl.Env.DefineConst("x", 1)
			das := cl.AddDAS("T", component.NonSafetyCritical)
			for i := 0; i < 4; i++ {
				c := cl.AddComponent(tt.NodeID(i), fmt.Sprintf("c%d", i), float64(i), 0)
				cl.AddJob(das, c, fmt.Sprintf("j%d", i), 0,
					component.JobFunc(func(ctx *component.Context) {}))
			}
		}),
	}
}

func TestNewValidatesTopology(t *testing.T) {
	if _, err := engine.New(); err == nil {
		t.Fatal("New() without topology should fail")
	}
	if _, err := engine.New(engine.WithTopology(4, 0, 64)); err == nil {
		t.Fatal("New() with zero slot length should fail")
	}
	if _, err := engine.New(engine.WithTopology(0, 250*sim.Microsecond, 64)); err == nil {
		t.Fatal("New() with zero nodes should fail")
	}
}

func TestRunCompletesRounds(t *testing.T) {
	eng := engine.MustNew(smallOptions(1)...)
	if err := eng.Run(context.Background(), 50); err != nil {
		t.Fatal(err)
	}
	// The bus counter names the round in progress: after 50 full rounds it
	// sits on index 49, same as Cluster.RunRounds.
	if got := eng.Round(); got != 49 {
		t.Fatalf("Round = %d, want 49", got)
	}
}

// TestRunCancellation: a cancelled context aborts the run mid-way with
// ctx.Err(); the cluster halts partway with observable state intact.
func TestRunCancellation(t *testing.T) {
	eng := engine.MustNew(smallOptions(1)...)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := eng.Run(ctx, 1000); err != context.Canceled {
		t.Fatalf("Run err = %v, want context.Canceled", err)
	}
	if got := eng.Round(); got >= 1000 {
		t.Fatalf("Round = %d after immediate cancel, want < 1000", got)
	}
	// The engine stays usable: a fresh context resumes the run.
	if err := eng.Run(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
}

// TestNopSinkInstallsNoRecorder: the no-op sink must skip instrumentation
// entirely (the zero-allocation hot-path contract).
func TestNopSinkInstallsNoRecorder(t *testing.T) {
	eng := engine.MustNew(append(smallOptions(1),
		engine.WithSink(trace.Nop(), trace.Options{}))...)
	if eng.Recorder != nil {
		t.Fatal("no-op sink must not attach a recorder")
	}
}

// TestSinkReceivesEvents: a real sink attached through the engine observes
// the run.
func TestSinkReceivesEvents(t *testing.T) {
	counting := trace.NewCountingSink()
	eng := engine.MustNew(append(smallOptions(1),
		engine.WithSink(counting, trace.Options{AllFrames: true}))...)
	if eng.Recorder == nil {
		t.Fatal("sink configured but no recorder attached")
	}
	eng.RunRounds(20)
	if counting.Total() == 0 {
		t.Fatal("counting sink observed no events over 20 rounds with AllFrames")
	}
	if counting.Count("frame") == 0 {
		t.Fatalf("no frame events; kinds seen: %v", counting.Kinds())
	}
}

// TestTraceWriterMatchesDirectAttach: tracing through the engine produces
// the same stream as the pre-engine direct trace.Attach wiring.
func TestTraceWriterMatchesDirectAttach(t *testing.T) {
	var viaEngine bytes.Buffer
	eng := engine.MustNew(append(smallOptions(7),
		engine.WithTraceWriter(&viaEngine, trace.Options{AllFrames: true}))...)
	eng.RunRounds(30)

	var direct bytes.Buffer
	eng2 := engine.MustNew(smallOptions(7)...)
	trace.AttachSink(eng2.Cluster, eng2.Diag, eng2.Injector,
		trace.NewNDJSONSink(&direct), trace.Options{AllFrames: true})
	eng2.RunRounds(30)

	if viaEngine.String() != direct.String() {
		t.Fatalf("engine-attached trace differs from direct attach:\n%d vs %d bytes",
			viaEngine.Len(), direct.Len())
	}
}

// TestFaultManifestHooks: WithFaults hooks run against the started
// cluster's injector, in registration order.
func TestFaultManifestHooks(t *testing.T) {
	var order []int
	eng := engine.MustNew(append(smallOptions(1),
		engine.WithFaults(func(inj *faults.Injector) {
			if inj == nil {
				t.Error("manifest hook received nil injector")
			}
			order = append(order, 1)
		}),
		engine.WithFaults(func(inj *faults.Injector) { order = append(order, 2) }),
	)...)
	if eng.Injector == nil {
		t.Fatal("engine without explicit faults still builds an injector")
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("manifest hooks ran as %v, want [1 2]", order)
	}
}
