package engine

import (
	"fmt"
	"io"

	"decos/internal/ckpt"
	"decos/internal/component"
	"decos/internal/diagnosis"
	"decos/internal/sim"
)

// Engine checkpoints (DESIGN §12). A checkpoint captures the entire
// cluster state at a round boundary — scheduler clock, RNG stream
// states, bus membership and hook-id horizon, virtual-network queues and
// port statistics, job-private state, environment actuations, the full
// diagnostic pipeline (histories, α-counts, trust records, verdicts) and
// the fault injector's phase — as one canonical ckpt stream, such that a
// run restored from the checkpoint is byte-identical to the uninterrupted
// run from the same seed.
//
// Restore works by reconstruction: the engine is rebuilt from the same
// Options (the build pipeline re-executes deterministically at t=0,
// recreating every closure — job implementations, fault role handlers,
// trace hooks), then every subsystem's numeric state is overwritten from
// the stream, pending fault timers are re-armed in original arm order,
// and the TDMA slot chain is re-armed last so same-instant events keep
// their original queue order.

// CheckpointSink receives encoded checkpoints at the configured round
// cadence. The byte slice is freshly allocated per call; the sink owns
// it. A sink error latches into Engine.CkptErr and stops checkpointing.
type CheckpointSink func(round int64, encoded []byte) error

// WithCheckpointSink enables periodic checkpointing: after every
// everyRounds-th completed round the engine encodes its full state and
// hands it to sink. A nil sink or non-positive cadence installs no hook
// at all — the hot path keeps its zero-allocation contract, exactly like
// the no-op trace sink and the nil telemetry registry.
func WithCheckpointSink(sink CheckpointSink, everyRounds int64) Option {
	return func(c *Config) { c.ckptSink, c.ckptEvery = sink, everyRounds }
}

// WithRestore makes New restore the engine from the checkpoint stream on
// r instead of starting fresh. The remaining options must describe the
// same system the checkpoint was taken from (same topology, seed, build
// hooks and fault manifest); the meta section is validated against them.
func WithRestore(r io.Reader) Option {
	return func(c *Config) { c.restore = r }
}

// Restore rebuilds an engine from a checkpoint stream: engine.Restore(r,
// opts...) is New(append(opts, WithRestore(r))...). The restored run
// continues bit-identically to the uninterrupted run the checkpoint was
// taken from.
func Restore(r io.Reader, opts ...Option) (*Engine, error) {
	return New(append(append([]Option{}, opts...), WithRestore(r))...)
}

// Checkpoint encodes the engine's complete state into w. Valid at round
// boundaries only: after New (round -1), between Run calls, or inside a
// checkpoint sink. Mid-round state (in-flight slots) is deliberately not
// serializable.
func (e *Engine) Checkpoint(w io.Writer) error {
	enc := ckpt.NewEncoder()
	e.encode(enc)
	_, err := enc.WriteTo(w)
	return err
}

func (e *Engine) installCheckpointHook() {
	if e.cfg.ckptSink == nil || e.cfg.ckptEvery <= 0 {
		return
	}
	e.Cluster.Bus.OnRound(func(round int64) {
		if e.CkptErr != nil || e.rounds%e.cfg.ckptEvery != 0 {
			return
		}
		enc := ckpt.NewEncoder()
		e.encode(enc)
		if err := e.cfg.ckptSink(round, enc.Bytes()); err != nil {
			e.CkptErr = err
		}
	})
}

func (e *Engine) encode(enc *ckpt.Encoder) {
	cl := e.Cluster
	enc.Begin("meta")
	enc.Varint(e.rounds)
	enc.Int(e.cfg.Nodes)
	enc.Varint(int64(e.cfg.SlotLen))
	enc.Int(e.cfg.SlotBytes)
	enc.Uint64(e.cfg.Seed)
	enc.Bool(cl.Bus.Clocks != nil)
	enc.Bool(e.Diag != nil)
	enc.Bool(e.OBD != nil)
	enc.Bool(e.Recorder != nil)
	enc.End()

	enc.Begin("sched")
	cl.Sched.Snapshot(enc)
	enc.End()
	enc.Begin("streams")
	cl.Streams.Snapshot(enc)
	enc.End()
	if cl.Bus.Clocks != nil {
		enc.Begin("clock")
		cl.Bus.Clocks.Snapshot(enc)
		enc.End()
	}
	enc.Begin("tt")
	cl.Bus.Snapshot(enc)
	enc.End()
	enc.Begin("vnet")
	nets := cl.Fabric.Networks()
	enc.Int(len(nets))
	for _, n := range nets {
		n.Snapshot(enc)
	}
	enc.End()
	enc.Begin("fabric")
	cl.Fabric.Snapshot(enc)
	enc.End()
	enc.Begin("jobs")
	cl.SnapshotJobs(enc)
	enc.End()
	enc.Begin("env")
	cl.Env.Snapshot(enc)
	enc.End()
	if e.Diag != nil {
		enc.Begin("diag")
		e.Diag.Snapshot(enc)
		enc.End()
	}
	if e.OBD != nil {
		enc.Begin("obd")
		e.OBD.Snapshot(enc)
		enc.End()
	}
	if s := e.classifierSnapshotter(); s != nil {
		enc.Begin("cls")
		s.Snapshot(enc)
		enc.End()
	}
	if e.Recorder != nil {
		enc.Begin("trace")
		e.Recorder.Snapshot(enc)
		enc.End()
	}
	enc.Begin("faults")
	e.Injector.Snapshot(enc)
	enc.End()
}

// restoreEngine is the WithRestore build path: parse, validate the meta
// fingerprint, reconstruct, overwrite state, re-arm.
func restoreEngine(cfg Config) (e *Engine, err error) {
	// Subsystem Restore methods validate lengths, ids and enum ranges,
	// but a corrupted stream can still trip invariants that panic by
	// design on programmer error (hook-id horizons, scheduling in the
	// past). Arbitrary bytes reach this path — checkpoint files travel
	// through disks and pipelines — so panics degrade to errors here: a
	// corrupt checkpoint must never take the process down.
	defer func() {
		if p := recover(); p != nil {
			e, err = nil, fmt.Errorf("engine: restore: corrupt checkpoint: %v", p)
		}
	}()
	var data []byte
	if data, err = io.ReadAll(cfg.restore); err != nil {
		return nil, fmt.Errorf("engine: restore: read checkpoint: %w", err)
	}
	var d *ckpt.Decoder
	if d, err = ckpt.NewDecoder(data); err != nil {
		return nil, fmt.Errorf("engine: restore: %w", err)
	}
	if err := d.Need("meta"); err != nil {
		return nil, fmt.Errorf("engine: restore: %w", err)
	}
	rounds := d.Varint()
	nodes, slotLen, slotBytes := d.Int(), sim.Duration(d.Varint()), d.Int()
	seed := d.Uint64()
	hasClocks, hasDiag, hasOBD, hasTrace := d.Bool(), d.Bool(), d.Bool(), d.Bool()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("engine: restore: meta: %w", err)
	}
	if nodes != cfg.Nodes || slotLen != cfg.SlotLen || slotBytes != cfg.SlotBytes {
		return nil, fmt.Errorf("engine: restore: checkpoint topology %d nodes %v/%dB, options say %d nodes %v/%dB",
			nodes, slotLen, slotBytes, cfg.Nodes, cfg.SlotLen, cfg.SlotBytes)
	}
	if seed != cfg.Seed {
		return nil, fmt.Errorf("engine: restore: checkpoint seed %d, options say %d — the manifest reconstruction would diverge", seed, cfg.Seed)
	}

	if e, err = build(cfg, true); err != nil {
		return nil, err
	}
	cl := e.Cluster
	if hasClocks != (cl.Bus.Clocks != nil) || hasDiag != (e.Diag != nil) || hasOBD != (e.OBD != nil) || hasTrace != (e.Recorder != nil) {
		return nil, fmt.Errorf("engine: restore: checkpoint attachments (clocks=%v diag=%v obd=%v trace=%v) do not match options (clocks=%v diag=%v obd=%v trace=%v)",
			hasClocks, hasDiag, hasOBD, hasTrace,
			cl.Bus.Clocks != nil, e.Diag != nil, e.OBD != nil, e.Recorder != nil)
	}

	// Restore-order invariant: the scheduler first (drops every event the
	// reconstruction armed, including the initial slot event, and sets the
	// clock), plain state next, the injector second-to-last (reinstalls
	// bus hooks — needs the bus's restored hook-id horizon — and re-arms
	// pending timers in original arm order), the slot chain last (so the
	// next slot event queues behind same-instant fault timers, as it did
	// in the uninterrupted run).
	restore := func(name string, s ckpt.Snapshotter) {
		if err != nil {
			return
		}
		if err = d.Need(name); err != nil {
			err = fmt.Errorf("engine: restore: %w", err)
			return
		}
		if rerr := s.Restore(d); rerr != nil {
			err = fmt.Errorf("engine: restore %s: %w", name, rerr)
		}
	}
	restore("sched", cl.Sched)
	restore("streams", cl.Streams)
	if hasClocks {
		restore("clock", cl.Bus.Clocks)
	}
	restore("tt", cl.Bus)
	if err == nil {
		if err = d.Need("vnet"); err == nil {
			nets := cl.Fabric.Networks()
			if n := d.Len(1 << 16); n != len(nets) && d.Err() == nil {
				err = fmt.Errorf("engine: restore vnet: checkpoint has %d networks, build made %d", n, len(nets))
			}
			for _, n := range nets {
				if err != nil {
					break
				}
				if rerr := n.Restore(d); rerr != nil {
					err = fmt.Errorf("engine: restore vnet: %w", rerr)
				}
			}
		} else {
			err = fmt.Errorf("engine: restore: %w", err)
		}
	}
	restore("fabric", cl.Fabric)
	restore("jobs", clusterJobs{cl})
	restore("env", cl.Env)
	if hasDiag {
		restore("diag", e.Diag)
	}
	if hasOBD {
		restore("obd", e.OBD)
	}
	if s := e.classifierSnapshotter(); s != nil && d.Has("cls") {
		restore("cls", s)
	}
	if hasTrace {
		restore("trace", e.Recorder)
	}
	restore("faults", e.Injector)
	if err != nil {
		return nil, err
	}
	cl.Bus.Rearm()
	e.rounds = rounds
	e.installCheckpointHook()
	return e, nil
}

// classifierSnapshotter returns the active classification stage as a
// Snapshotter when it carries its own run state (the Bayesian stage's
// posterior). Nil for the stateless DECOS default — default runs keep
// their exact pre-existing checkpoint bytes — and nil for the OBD
// stage, whose state the "obd" section already carries.
func (e *Engine) classifierSnapshotter() ckpt.Snapshotter {
	if e.Diag == nil {
		return nil
	}
	cls := e.Diag.Assessor.Classifier()
	if e.OBD != nil && cls == diagnosis.Classifier(e.OBD) {
		return nil
	}
	s, _ := cls.(ckpt.Snapshotter)
	return s
}

// clusterJobs adapts the cluster's job-state snapshot methods to the
// Snapshotter shape used by the section table.
type clusterJobs struct{ cl *component.Cluster }

func (j clusterJobs) Snapshot(e *ckpt.Encoder)      { j.cl.SnapshotJobs(e) }
func (j clusterJobs) Restore(d *ckpt.Decoder) error { return j.cl.RestoreJobs(d) }
