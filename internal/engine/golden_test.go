package engine_test

import (
	"os"
	"path/filepath"
	"testing"

	"decos/internal/experiments"
)

// TestGoldenExperimentSnapshots pins E2, E8 and E13 under the canonical seed to
// byte-identical snapshots captured before the engine refactor: the run
// engine must assemble exactly the system the hand-rolled wiring did.
// Regenerate deliberately with `go run ./tools/goldengen` after a change
// that intends to alter results.
func TestGoldenExperimentSnapshots(t *testing.T) {
	const seed = 20050404
	for _, id := range []string{"E2", "E8", "E13"} {
		t.Run(id, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", id+"_seed20050404.golden"))
			if err != nil {
				t.Fatal(err)
			}
			r, ok := experiments.ByID(id, seed)
			if !ok {
				t.Fatalf("experiment %s not registered", id)
			}
			if got := r.String(); got != string(want) {
				t.Errorf("%s output drifted from the pre-refactor snapshot\n--- got ---\n%s--- want ---\n%s",
					id, got, want)
			}
		})
	}
}
