// Package engine is the single cluster-run harness of the reproduction:
// every consumer — the E1–E13 experiments, the scenario systems
// (Fig. 10, the scalability grid), the fault-injection campaign and the
// command-line tools — assembles its cluster through the same
// functional-options builder and drives it through the same
// context-aware Run lifecycle.
//
// Before the engine existed each of those call sites hand-rolled the
// identical wiring: TDMA schedule, cluster construction, clock-ensemble
// attachment, diagnosis/OBD attachment, trace recording, start, run
// loop. The engine folds that into one composable pipeline
//
//	schedule → cluster → clocks → topology → diagnosis/OBD → trace → start
//
// so a new workload is an engine configuration, not a new copy of the
// wiring — the same argument "Diagnosable-by-Design" makes for diagnosis
// infrastructure as an architectural layer rather than per-experiment
// scaffolding.
//
// The builder is behaviour-preserving by construction: it performs
// exactly the calls the hand-rolled sites performed, in the same order,
// against the same named RNG streams, so a run under a given seed is
// bit-identical to the pre-engine wiring (guarded by the golden-snapshot
// tests in this package).
package engine

import (
	"context"
	"fmt"
	"io"

	"decos/internal/baseline"
	"decos/internal/clock"
	"decos/internal/component"
	"decos/internal/diagnosis"
	"decos/internal/faults"
	"decos/internal/sim"
	"decos/internal/telemetry"
	"decos/internal/trace"
	"decos/internal/tt"
)

// ClockSpec describes the fault-tolerant clock ensemble of a cluster: one
// oscillator per component, drifts drawn uniformly from ±MaxDriftPPM, FTA
// resynchronization tolerating K faulty clocks within precision window Π.
type ClockSpec struct {
	MaxDriftPPM float64 // uniform drift bound, parts per million
	JitterUS    float64 // per-reading jitter stddev, microseconds
	PrecisionUS float64 // synchronization window Π, microseconds
	Tolerated   int     // K, arbitrary faulty clocks tolerated by FTA
}

// Config is the resolved build plan of an Engine. Construct it through
// Options; the zero value is not runnable.
type Config struct {
	Nodes     int
	SlotLen   sim.Duration
	SlotBytes int
	Seed      uint64

	clocks        *ClockSpec
	build         []func(cl *component.Cluster)
	diagNode      tt.NodeID
	diagOpts      diagnosis.Options
	withDiag      bool
	withOBD       bool
	classifier    diagnosis.Classifier
	obdClassifier bool
	manifest      []func(inj *faults.Injector)
	sink          trace.Sink
	traceOpts     trace.Options
	metrics       *telemetry.Registry
	ckptSink      CheckpointSink
	ckptEvery     int64
	restore       io.Reader
}

// Option configures an Engine build.
type Option func(*Config)

// WithTopology sets the cluster dimensions: node count, TDMA slot length
// and per-slot frame payload bytes (a uniform schedule, one slot per
// node — the layout every current scenario uses).
func WithTopology(nodes int, slotLen sim.Duration, slotBytes int) Option {
	return func(c *Config) { c.Nodes, c.SlotLen, c.SlotBytes = nodes, slotLen, slotBytes }
}

// WithSeed sets the master seed all named RNG streams derive from.
func WithSeed(seed uint64) Option {
	return func(c *Config) { c.Seed = seed }
}

// WithClocks attaches a fault-tolerant clock ensemble (core service C2)
// sized to the topology. This is the single home of the clock wiring the
// experiments and scenarios previously each hand-rolled.
func WithClocks(maxDriftPPM, jitterUS, precisionUS float64, tolerated int) Option {
	return func(c *Config) {
		c.clocks = &ClockSpec{
			MaxDriftPPM: maxDriftPPM, JitterUS: jitterUS,
			PrecisionUS: precisionUS, Tolerated: tolerated,
		}
	}
}

// WithBuild registers a topology-population hook: components, DASs,
// networks, jobs and environment signals are added here, before
// diagnosis attaches and the cluster starts. Hooks run in registration
// order.
func WithBuild(build func(cl *component.Cluster)) Option {
	return func(c *Config) { c.build = append(c.build, build) }
}

// WithDiagnosis attaches the DECOS diagnostic DAS with its analysis stage
// on the given node.
func WithDiagnosis(node tt.NodeID, opts diagnosis.Options) Option {
	return func(c *Config) { c.diagNode, c.diagOpts, c.withDiag = node, opts, true }
}

// WithOBD attaches the conventional on-board-diagnosis baseline.
func WithOBD() Option {
	return func(c *Config) { c.withOBD = true }
}

// WithClassifier swaps the classification stage of the diagnostic
// pipeline (default: the DECOS fault-model classifier). The collector
// and adviser stages run unchanged around it. Requires WithDiagnosis.
func WithClassifier(cls diagnosis.Classifier) Option {
	return func(c *Config) { c.classifier = cls }
}

// WithOBDClassifier attaches the OBD baseline (as WithOBD does) and
// selects it as the diagnostic pipeline's classification stage, so the
// engine's diagnoser runs conventional DTC classification through the
// shared collector/adviser pipeline. Requires WithDiagnosis.
func WithOBDClassifier() Option {
	return func(c *Config) { c.withOBD, c.obdClassifier = true, true }
}

// WithFaults registers a fault-manifest hook invoked with the cluster's
// injector once the cluster is started — the declarative home for
// scripted injections. Hooks run in registration order.
func WithFaults(apply func(inj *faults.Injector)) Option {
	return func(c *Config) { c.manifest = append(c.manifest, apply) }
}

// WithSink routes trace recording into the given sink. A nil or no-op
// sink installs no instrumentation (the hot path keeps its
// zero-allocation contract); any other sink receives the event stream
// selected by opts.
func WithSink(sink trace.Sink, opts trace.Options) Option {
	return func(c *Config) { c.sink, c.traceOpts = sink, opts }
}

// WithTraceWriter is WithSink over an NDJSON sink on w.
func WithTraceWriter(w io.Writer, opts trace.Options) Option {
	return WithSink(trace.NewNDJSONSink(w), opts)
}

// WithTelemetry publishes the run's health metrics into the given
// registry: round throughput, per-stage assessment latencies (collect /
// classify / advise, via the pipeline's attach points), and the simulator
// layer counters (scheduled and pooled events, frame statuses, guardian
// blocks, CRC drops). A nil registry — like the no-op trace sink —
// installs no instrumentation at all, preserving the zero-allocation hot
// path and bit-identical outputs.
//
// Counters and histograms are mirrored into plain atomic metrics once per
// round from the simulator thread, so snapshotting the registry from
// another goroutine is race-free.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(c *Config) { c.metrics = reg }
}

// Engine is one assembled, started cluster with its attached observers.
// Fields for unrequested attachments are nil.
type Engine struct {
	Cluster  *component.Cluster
	Diag     *diagnosis.Diagnostics
	OBD      *baseline.OBD
	Injector *faults.Injector
	Recorder *trace.Recorder
	// Telemetry is the registry passed to WithTelemetry (nil when the run
	// is uninstrumented).
	Telemetry *telemetry.Registry

	// CkptErr holds the first checkpoint-sink error; checkpointing stops
	// after it (mirroring the trace recorder's error latch).
	CkptErr error

	cfg    Config
	rounds int64
}

// New assembles and starts a cluster from the given options. The build
// pipeline is fixed — schedule, cluster, clocks, topology hooks,
// diagnosis, OBD, classifier selection, trace, seal/start, injector,
// fault manifest — so every consumer constructs byte-identical systems
// for identical options.
func New(opts ...Option) (*Engine, error) {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.restore != nil {
		return restoreEngine(cfg)
	}
	e, err := build(cfg, false)
	if err != nil {
		return nil, err
	}
	e.installCheckpointHook()
	return e, nil
}

// build runs the assembly pipeline. In restoring mode the injector
// suppresses manifest-time timer arming: the manifest re-registers every
// fault's role handlers and filter closures, while the checkpoint's
// pending-timer list is the authoritative phase (see engine.Restore).
func build(cfg Config, restoring bool) (*Engine, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("engine: topology with %d nodes (use WithTopology)", cfg.Nodes)
	}
	if cfg.SlotLen <= 0 || cfg.SlotBytes <= 0 {
		return nil, fmt.Errorf("engine: invalid slot spec %v/%dB (use WithTopology)", cfg.SlotLen, cfg.SlotBytes)
	}

	schedule := tt.UniformSchedule(cfg.Nodes, cfg.SlotLen, cfg.SlotBytes)
	cl := component.NewCluster(schedule, cfg.Seed)
	if cs := cfg.clocks; cs != nil {
		cl.Bus.Clocks = clock.NewCluster(cfg.Nodes, cs.MaxDriftPPM, cs.JitterUS,
			cs.PrecisionUS, cs.Tolerated, cl.Streams.Stream("clocks"))
	}
	for _, build := range cfg.build {
		build(cl)
	}

	e := &Engine{Cluster: cl, cfg: cfg}
	// The engine's round counter is the state version of the run: it
	// advances once per completed round (first hook, so the checkpoint
	// hook — installed last — sees the incremented value).
	cl.Bus.OnRound(func(int64) { e.rounds++ })
	if cfg.withDiag {
		e.Diag = diagnosis.Attach(cl, cfg.diagNode, cfg.diagOpts)
	}
	if cfg.withOBD {
		e.OBD = baseline.Attach(cl)
	}
	if cfg.classifier != nil || cfg.obdClassifier {
		if e.Diag == nil {
			return nil, fmt.Errorf("engine: classifier options require WithDiagnosis")
		}
		cls := cfg.classifier
		if cfg.obdClassifier {
			cls = e.OBD
		}
		e.Diag.Assessor.SetClassifier(cls)
	}
	e.Injector = faults.NewInjector(cl)
	if restoring {
		e.Injector.SetReconstructing(true)
	}
	if !trace.IsNop(cfg.sink) {
		e.Recorder = trace.AttachSink(cl, e.Diag, e.Injector, cfg.sink, cfg.traceOpts)
	}
	if cfg.metrics.Enabled() {
		e.Telemetry = cfg.metrics
		instrument(e, cfg.metrics)
	}
	if err := cl.Start(); err != nil {
		return nil, fmt.Errorf("engine: start: %w", err)
	}
	for _, apply := range cfg.manifest {
		apply(e.Injector)
	}
	return e, nil
}

// MustNew is New, panicking on configuration errors — for scenario
// constructors whose configuration is static and whose failure is a
// programming bug, not a runtime condition.
func MustNew(opts ...Option) *Engine {
	e, err := New(opts...)
	if err != nil {
		panic(err)
	}
	return e
}

// Run advances the cluster by n TDMA rounds under the context: it returns
// ctx.Err() when cancelled mid-run (the cluster halts partway, observable
// state intact) and nil on completion. context.Background() — or any
// context that cannot be cancelled — is free and keeps runs bit-identical
// to the ctx-free path.
func (e *Engine) Run(ctx context.Context, n int64) error {
	return e.Cluster.RunRoundsCtx(ctx, n)
}

// RunRounds advances the cluster by n TDMA rounds without a context.
func (e *Engine) RunRounds(n int64) { e.Cluster.RunRounds(n) }

// Now returns the cluster's current simulated time.
func (e *Engine) Now() sim.Time { return e.Cluster.Sched.Now() }

// Round returns the cluster's current TDMA round.
func (e *Engine) Round() int64 { return e.Cluster.Round() }

// StateVersion returns the monotonic version of the checkpointable
// cluster state: the number of completed TDMA rounds. It is carried
// across Checkpoint/Restore, so cadence assertions (a sink configured
// with WithCheckpointSink fires at versions N, 2N, ...) hold on restored
// runs exactly as on uninterrupted ones.
func (e *Engine) StateVersion() int64 { return e.rounds }
