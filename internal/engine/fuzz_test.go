package engine_test

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"

	"decos/internal/diagnosis"
	"decos/internal/engine"
	"decos/internal/scenario"
	"decos/internal/trace"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden_ckpt_v1.bin from the current encoder")

// The committed fixture pins the DCS-C v1 wire format: a checkpoint of
// the rich-manifest Fig. 10 run (trace attached, trust sampling every 2
// epochs) taken after goldenCkptRounds completed rounds.
const (
	goldenCkptFile   = "golden_ckpt_v1.bin"
	goldenCkptRounds = 80
)

// restoreGolden rebuilds the golden run's system from checkpoint bytes
// through the error-returning constructor — the exact path external
// checkpoint files (decos-sim -checkpoint-dir, decos-whatif -ckpt) take.
func restoreGolden(data []byte) (*scenario.System, error) {
	var tr bytes.Buffer
	return scenario.Fig10Restored(bytes.NewReader(data), 20050404, diagnosis.Options{}, nil,
		engine.WithFaults(richManifest),
		engine.WithTraceWriter(&tr, trace.Options{AllFrames: true, TrustEveryEpochs: 2}))
}

func generateGoldenCkpt(tb testing.TB) []byte {
	var tr bytes.Buffer
	sys := fig10Ckpt(&tr)
	sys.Cluster.RunToRound(goldenCkptRounds)
	var buf bytes.Buffer
	if err := sys.Engine.Checkpoint(&buf); err != nil {
		tb.Fatalf("Checkpoint: %v", err)
	}
	return buf.Bytes()
}

// TestGoldenCheckpointV1 holds the checkpoint wire format stable: the
// committed v1 fixture must still restore, and re-encoding the restored
// engine must reproduce the fixture byte for byte. A deliberate format
// change regenerates it with `go test ./internal/engine/ -run Golden
// -update-golden` — and is a DESIGN §12 version-bump conversation, not a
// routine refresh, because persisted fleet checkpoints outlive releases.
func TestGoldenCheckpointV1(t *testing.T) {
	path := filepath.Join("testdata", goldenCkptFile)
	if *updateGolden {
		if err := os.WriteFile(path, generateGoldenCkpt(t), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture (regenerate with -update-golden): %v", err)
	}
	if got := generateGoldenCkpt(t); !bytes.Equal(got, want) {
		t.Fatalf("current encoder produces %d bytes differing from the committed v1 fixture (%d bytes) — wire format drift",
			len(got), len(want))
	}
	sys, err := restoreGolden(want)
	if err != nil {
		t.Fatalf("restoring the v1 fixture: %v", err)
	}
	if v := sys.Engine.StateVersion(); v != goldenCkptRounds {
		t.Fatalf("restored StateVersion = %d, want %d", v, goldenCkptRounds)
	}
	var re bytes.Buffer
	if err := sys.Engine.Checkpoint(&re); err != nil {
		t.Fatalf("re-encoding restored engine: %v", err)
	}
	if !bytes.Equal(re.Bytes(), want) {
		t.Fatal("restore → re-encode of the v1 fixture is not the identity")
	}
}

// FuzzCheckpointReader throws arbitrary bytes at the restore path and
// holds it to its contract: a corrupt, truncated or mismatched
// checkpoint surfaces as an error — never a panic, never a half-restored
// engine. Bytes that do pass every validation must yield an engine whose
// own re-encoding succeeds. The corpus seeds at the interesting
// boundaries: the golden fixture, its truncations, bit flips in the
// header and body, and plain garbage.
func FuzzCheckpointReader(f *testing.F) {
	golden := generateGoldenCkpt(f)
	f.Add(golden)
	f.Add([]byte{})
	f.Add(golden[:1])
	f.Add(golden[:16])
	f.Add(golden[:len(golden)/2])
	f.Add(golden[:len(golden)-1])
	for _, i := range []int{0, 8, 24, len(golden) / 3, len(golden) / 2, len(golden) - 1} {
		flipped := append([]byte(nil), golden...)
		flipped[i] ^= 0x40
		f.Add(flipped)
	}
	f.Add([]byte("not a checkpoint"))

	f.Fuzz(func(t *testing.T, data []byte) {
		sys, err := restoreGolden(data)
		if err != nil {
			return
		}
		// Every validation passed: the engine must be whole enough to
		// checkpoint itself again.
		if err := sys.Engine.Checkpoint(io.Discard); err != nil {
			t.Fatalf("restored engine cannot re-checkpoint: %v", err)
		}
	})
}
