package engine

import (
	"time"

	"decos/internal/diagnosis"
	"decos/internal/sim"
	"decos/internal/telemetry"
)

// instrument wires an enabled telemetry registry onto an assembled engine.
// The design constraint is the same as the trace layer's: the simulator
// loop is single-threaded and its layer counters (scheduler, bus, fabric)
// are plain fields, so the round hook — running on the simulator thread —
// mirrors them into atomic gauges once per round. Everything the registry
// then holds is atomic, so HTTP handlers and periodic dumpers may snapshot
// from any goroutine without racing the simulation.
func instrument(e *Engine, reg *telemetry.Registry) {
	cl := e.Cluster

	rounds := reg.Counter("engine.rounds")
	roundNS := reg.Histogram("engine.round_wall_ns")

	simScheduled := reg.Gauge("sim.events_scheduled")
	simFired := reg.Gauge("sim.events_fired")
	simPooled := reg.Gauge("sim.events_pooled")
	simPending := reg.Gauge("sim.events_pending")

	framesOK := reg.Gauge("tt.frames_ok")
	framesOmitted := reg.Gauge("tt.frames_omitted")
	framesCorrupted := reg.Gauge("tt.frames_corrupted")
	framesTiming := reg.Gauge("tt.frames_timing")
	guardianBlocks := reg.Gauge("tt.guardian_blocks")

	crcFailures := reg.Gauge("vnet.crc_failures")
	frameMisses := reg.Gauge("vnet.frame_misses")
	overflows := reg.Gauge("vnet.overflows")
	seqGaps := reg.Gauge("vnet.seq_gaps")
	decodeErrors := reg.Gauge("vnet.decode_errors")

	var lastWall time.Time
	cl.OnRound(func(round int64, now sim.Time) {
		rounds.Inc()
		wall := time.Now()
		if !lastWall.IsZero() {
			roundNS.Observe(wall.Sub(lastWall).Nanoseconds())
		}
		lastWall = wall

		st := cl.Sched.Stats()
		simScheduled.Set(int64(st.Scheduled))
		simFired.Set(int64(st.Fired))
		simPooled.Set(int64(st.Pooled))
		simPending.Set(int64(st.Pending))

		fc := cl.Bus.FrameCounts()
		framesOK.Set(fc.OK)
		framesOmitted.Set(fc.Omitted)
		framesCorrupted.Set(fc.Corrupted)
		framesTiming.Set(fc.Timing)
		guardianBlocks.Set(fc.GuardianBlocks)

		pt := cl.Fabric.Totals()
		crcFailures.Set(pt.CRCFailures)
		frameMisses.Set(pt.FrameMisses)
		overflows.Set(pt.Overflows)
		seqGaps.Set(pt.SeqGaps)
		decodeErrors.Set(pt.DecodeErrors)
	})

	if e.Diag == nil {
		return
	}
	symptoms := reg.Counter("diag.symptoms")
	e.Diag.Assessor.OnSymptom(func(diagnosis.Symptom) { symptoms.Inc() })
	verdicts := reg.Counter("diag.verdicts")
	e.Diag.Assessor.OnVerdict(func(diagnosis.Verdict) { verdicts.Inc() })

	var stageHists [diagnosis.NumStages]*telemetry.Histogram
	stageHists[diagnosis.StageCollect] = reg.Histogram("diag.collect_ns")
	stageHists[diagnosis.StageClassify] = reg.Histogram("diag.classify_ns")
	stageHists[diagnosis.StageAdvise] = reg.Histogram("diag.advise_ns")
	epochs := reg.Counter("diag.epochs")
	e.Diag.Assessor.OnStageTiming(func(stage diagnosis.Stage, wallNS int64) {
		if stage == diagnosis.StageAdvise {
			epochs.Inc()
		}
		if int(stage) < len(stageHists) {
			stageHists[stage].Observe(wallNS)
		}
	})
}
