package engine

import (
	"context"
	"errors"
	"net/http"
	"time"
)

// Serve runs srv until the context is cancelled, then drains it
// gracefully for at most grace. It is the HTTP leg of the engine's run
// lifecycle: the same context that cancels a simulation run or a campaign
// shuts the warranty daemon down, so one SIGTERM stops every long-running
// loop of a process.
//
// It returns nil after a clean drain, the shutdown error when draining
// failed or timed out, and the listener error when the server failed
// before cancellation (http.ErrServerClosed is not an error).
func Serve(ctx context.Context, srv *http.Server, grace time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}

	shCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
