package engine_test

import (
	"bytes"
	"testing"

	"decos/internal/diagnosis"
	"decos/internal/engine"
	"decos/internal/faults"
	"decos/internal/scenario"
	"decos/internal/sim"
	"decos/internal/trace"
)

// richManifest exercises every phase-carrying fault mechanism at once:
// connector drop hooks, an EMI burst window, a pending SEU, intermittent
// episode timers, a babbling idiot and a sensor value fault — so a
// checkpoint taken mid-run carries pending timers, installed bus hooks,
// phase flags and a deactivation in one stream.
func richManifest(inj *faults.Injector) {
	cl := inj.Cluster()
	inj.ConnectorTx(0, sim.Time(2000), sim.Time(90000), 0.3)
	inj.EMIBurst(sim.Time(10000), 0.5, 0, 2.0, 3*sim.Millisecond, 64)
	inj.SEU(sim.Time(30000), 2)
	inj.IntermittentInternal(2, sim.Time(5000), 2e7, sim.Time(110000))
	inj.PermanentBabbling(3, sim.Time(55000))
	inj.SensorStuck(cl.Component(0).JobNamed("A1"), sim.Time(20000), 42)
}

// fig10Ckpt assembles the Fig. 10 system with the rich manifest, tracing
// into w, plus any extra options (a checkpoint sink or a restore source).
func fig10Ckpt(w *bytes.Buffer, extra ...engine.Option) *scenario.System {
	opts := append([]engine.Option{
		engine.WithFaults(richManifest),
		engine.WithTraceWriter(w, trace.Options{AllFrames: true, TrustEveryEpochs: 2}),
	}, extra...)
	return scenario.Fig10With(20050404, diagnosis.Options{}, opts...)
}

func checkpointBytes(t *testing.T, e *engine.Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := e.Checkpoint(&buf); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	return buf.Bytes()
}

// TestRestoreByteIdentical is the core determinism contract: a run
// restored from a mid-run checkpoint finishes in byte-identical state —
// same final checkpoint encoding, same trace suffix — as the
// uninterrupted run, for every checkpoint cadence point.
func TestRestoreByteIdentical(t *testing.T) {
	const total = 120

	// Golden: uninterrupted run, no checkpointing at all.
	var goldTrace bytes.Buffer
	gold := fig10Ckpt(&goldTrace)
	gold.Cluster.RunToRound(total)
	goldFinal := checkpointBytes(t, gold.Engine)

	// Checkpointing run: same seed, sink every 40 rounds.
	type point struct {
		round    int64
		data     []byte
		traceLen int
	}
	var points []point
	var ckptTrace bytes.Buffer
	sink := func(round int64, data []byte) error {
		points = append(points, point{round, data, ckptTrace.Len()})
		return nil
	}
	run2 := fig10Ckpt(&ckptTrace, engine.WithCheckpointSink(sink, 40))
	run2.Cluster.RunToRound(total)
	if run2.Engine.CkptErr != nil {
		t.Fatalf("checkpoint sink error: %v", run2.Engine.CkptErr)
	}
	if len(points) != 3 {
		t.Fatalf("sink fired %d times over %d rounds at cadence 40, want 3", len(points), total)
	}
	for i, p := range points {
		if want := int64(40*(i+1) - 1); p.round != want {
			t.Errorf("checkpoint %d taken at round %d, want %d", i, p.round, want)
		}
	}
	if v := run2.Engine.StateVersion(); v != total {
		t.Errorf("StateVersion = %d after %d rounds, want %d", v, total, total)
	}

	// Checkpointing must not perturb the run.
	if !bytes.Equal(ckptTrace.Bytes(), goldTrace.Bytes()) {
		t.Fatal("trace of checkpointing run differs from uninterrupted run")
	}
	if got := checkpointBytes(t, run2.Engine); !bytes.Equal(got, goldFinal) {
		t.Fatal("final state of checkpointing run differs from uninterrupted run")
	}

	// Restore from every cadence point and run to the end.
	for _, p := range points {
		var resTrace bytes.Buffer
		res := fig10Ckpt(&resTrace,
			engine.WithRestore(bytes.NewReader(p.data)),
			engine.WithCheckpointSink(func(int64, []byte) error { return nil }, 40))
		if v, want := res.Engine.StateVersion(), p.round+1; v != want {
			t.Errorf("restored StateVersion = %d, want %d", v, want)
		}
		res.Cluster.RunToRound(total)
		if got := checkpointBytes(t, res.Engine); !bytes.Equal(got, goldFinal) {
			t.Errorf("run restored from round %d: final state differs from uninterrupted run", p.round)
			continue
		}
		if want := goldTrace.Bytes()[p.traceLen:]; !bytes.Equal(resTrace.Bytes(), want) {
			t.Errorf("run restored from round %d: trace suffix differs (%d vs %d bytes)",
				p.round, resTrace.Len(), len(want))
		}
		if v := res.Engine.StateVersion(); v != total {
			t.Errorf("restored StateVersion = %d after finish, want %d", v, total)
		}
	}
}

// TestRestoreAtBoot: a checkpoint taken before any round ran (pending
// manifest timers only) restores and replays the full run identically.
func TestRestoreAtBoot(t *testing.T) {
	var goldTrace bytes.Buffer
	gold := fig10Ckpt(&goldTrace)
	boot := checkpointBytes(t, gold.Engine)
	gold.Cluster.RunToRound(60)
	goldFinal := checkpointBytes(t, gold.Engine)

	var resTrace bytes.Buffer
	res := fig10Ckpt(&resTrace, engine.WithRestore(bytes.NewReader(boot)))
	if v := res.Engine.StateVersion(); v != 0 {
		t.Errorf("StateVersion = %d at boot restore, want 0", v)
	}
	res.Cluster.RunToRound(60)
	if got := checkpointBytes(t, res.Engine); !bytes.Equal(got, goldFinal) {
		t.Fatal("run restored from boot checkpoint differs from direct run")
	}
	if !bytes.Equal(resTrace.Bytes(), goldTrace.Bytes()) {
		t.Fatal("trace of boot-restored run differs from direct run")
	}
}

// TestRestoreValidatesOptions: topology and seed mismatches are refused
// up front (a mismatched manifest reconstruction would silently diverge).
func TestRestoreValidatesOptions(t *testing.T) {
	var w bytes.Buffer
	sys := fig10Ckpt(&w)
	data := checkpointBytes(t, sys.Engine)

	if _, err := engine.Restore(bytes.NewReader(data),
		engine.WithTopology(5, 250*sim.Microsecond, 256),
		engine.WithSeed(20050404)); err == nil {
		t.Error("restore with mismatched topology should fail")
	}
	if _, err := engine.Restore(bytes.NewReader(data),
		engine.WithTopology(4, 250*sim.Microsecond, 256),
		engine.WithSeed(99)); err == nil {
		t.Error("restore with mismatched seed should fail")
	}
	if _, err := engine.Restore(bytes.NewReader([]byte("not a checkpoint")),
		engine.WithTopology(4, 250*sim.Microsecond, 256)); err == nil {
		t.Error("restore from garbage should fail")
	}
}
