package engine_test

import (
	"context"
	"testing"

	"decos/internal/diagnosis"
	"decos/internal/engine"
	"decos/internal/telemetry"
)

func diagOptions(seed uint64) []engine.Option {
	return append(smallOptions(seed), engine.WithDiagnosis(0, diagnosis.Options{}))
}

// TestWithTelemetryPopulatesRegistry: an instrumented run publishes the
// engine, simulator, bus and diagnosis metrics.
func TestWithTelemetryPopulatesRegistry(t *testing.T) {
	reg := telemetry.New()
	eng := engine.MustNew(append(diagOptions(1), engine.WithTelemetry(reg))...)
	if eng.Telemetry != reg {
		t.Fatal("engine did not adopt the registry")
	}
	if err := eng.Run(context.Background(), 50); err != nil {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	if got := s.Counters["engine.rounds"]; got != 50 {
		t.Errorf("engine.rounds = %d, want 50", got)
	}
	for _, name := range []string{"sim.events_scheduled", "sim.events_fired", "tt.frames_ok"} {
		if s.Gauges[name] <= 0 {
			t.Errorf("gauge %s = %d, want > 0", name, s.Gauges[name])
		}
	}
	// The TDMA slot chain self-advances via InlineTo, which fires without
	// enqueueing — so fired outruns scheduled on a healthy run.
	if s.Gauges["sim.events_fired"] < s.Gauges["sim.events_scheduled"] {
		t.Errorf("fired %d < scheduled %d after a drained run",
			s.Gauges["sim.events_fired"], s.Gauges["sim.events_scheduled"])
	}
	// The healthy small cluster drops nothing.
	for _, name := range []string{"tt.frames_corrupted", "vnet.crc_failures"} {
		if s.Gauges[name] != 0 {
			t.Errorf("gauge %s = %d, want 0 on a healthy run", name, s.Gauges[name])
		}
	}
	// 50 rounds with the default epoch length must have closed epochs, and
	// every stage histogram observes once per epoch/round.
	if s.Counters["diag.epochs"] == 0 {
		t.Error("diag.epochs = 0, want > 0")
	}
	if got := s.Histograms["diag.collect_ns"].Count; got != 50 {
		t.Errorf("diag.collect_ns count = %d, want 50 (one per round)", got)
	}
	if got := s.Histograms["diag.classify_ns"].Count; got != s.Counters["diag.epochs"] {
		t.Errorf("diag.classify_ns count = %d, want one per epoch (%d)",
			got, s.Counters["diag.epochs"])
	}
	if got := s.Histograms["engine.round_wall_ns"].Count; got != 49 {
		t.Errorf("engine.round_wall_ns count = %d, want 49 (rounds minus the first)", got)
	}
}

// TestTelemetrySimCountersDeterministic: the mirrored simulation counters
// are pure functions of the seed — wall-clock timings vary, the simulated
// state does not.
func TestTelemetrySimCountersDeterministic(t *testing.T) {
	run := func() telemetry.Snapshot {
		reg := telemetry.New()
		eng := engine.MustNew(append(diagOptions(7), engine.WithTelemetry(reg))...)
		if err := eng.Run(context.Background(), 40); err != nil {
			t.Fatal(err)
		}
		return reg.Snapshot()
	}
	a, b := run(), run()
	for name, av := range a.Gauges {
		if bv := b.Gauges[name]; av != bv {
			t.Errorf("gauge %s differs across identical runs: %d vs %d", name, av, bv)
		}
	}
	for name, av := range a.Counters {
		if bv := b.Counters[name]; av != bv {
			t.Errorf("counter %s differs across identical runs: %d vs %d", name, av, bv)
		}
	}
}

// TestWithTelemetryNilIsDisabled: a nil registry must leave the engine
// entirely uninstrumented — the zero-overhead contract.
func TestWithTelemetryNilIsDisabled(t *testing.T) {
	eng := engine.MustNew(append(diagOptions(1), engine.WithTelemetry(nil))...)
	if eng.Telemetry != nil {
		t.Fatal("nil registry should leave Engine.Telemetry nil")
	}
	if err := eng.Run(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
}
