// Package bayes implements the probabilistic third classifier of the
// diagnostic pipeline (DESIGN §14): a naive-Bayes belief stage that
// maintains, per FRU, a posterior distribution over candidate fault
// hypotheses — healthy, isolated transient, EMI-correlated burst,
// connector/contact fault, wearout, internal intermittent, internal
// permanent for hardware FRUs; healthy, job-inherent, transducer and
// configuration fault for software FRUs — and updates it every
// assessment epoch with the same α-count and symptom-history evidence
// the DECOS fault-model classifier consumes, but folded in as full
// Bernoulli likelihoods instead of hard ONA thresholds: every epoch
// each hypothesis is charged for the signature features it predicts
// but that are absent, as well as credited for the ones present.
//
// The stage emits ranked verdicts with calibrated confidence: the
// finding's Confidence is the posterior mass of the winning fault
// class (hypotheses mapping to the same maintenance class pool their
// mass), an explicit abstention withholds any verdict while the
// evidence is insufficient (posterior below MinConfidence or within
// MinMargin of the runner-up), and two mechanisms bound the damage a
// lying sensor can do to the belief state: every epoch's log-likelihood
// steps are measured relative to the epoch's best-explaining hypothesis
// and clamped so no hypothesis falls more than StepClamp nats behind
// the leader in a single epoch, and the log posterior is geometrically
// forgotten toward the prior so corrupted evidence decays instead of
// accumulating without bound.
//
// The classifier is a drop-in diagnosis.Classifier (selected with
// engine.WithClassifier, a pack manifest's `classifier = "bayes"` or
// the -classifier CLI flags) and a ckpt.Snapshotter: the posterior
// state round-trips through DCS-C engine checkpoints bit-identically,
// so a restored bayes run continues exactly where the checkpoint left
// off.
package bayes

import (
	"math"

	"decos/internal/core"
	"decos/internal/diagnosis"
)

// ln and exp alias the math intrinsics; both are deterministic for a
// given platform, which is all the bit-identity contract needs (the
// posterior is platform-local state, serialized as exact IEEE bits).
func ln(x float64) float64  { return math.Log(x) }
func exp(x float64) float64 { return math.Exp(x) }

// Hypothesis enumerates the candidate per-FRU fault hypotheses the
// posterior ranges over. Hardware FRUs use hypHealthy..hypPermanent,
// software FRUs hypHealthy plus hypJobInherent..hypConfig.
type Hypothesis uint8

const (
	hypHealthy Hypothesis = iota
	hypTransient
	hypEMI
	hypConnector
	hypWearout
	hypIntermittent
	hypPermanent
	hypJobInherent
	hypSensor
	hypConfig
	numHyp
)

// String returns the hypothesis name used in finding patterns.
func (h Hypothesis) String() string {
	switch h {
	case hypHealthy:
		return "healthy"
	case hypTransient:
		return "transient"
	case hypEMI:
		return "emi"
	case hypConnector:
		return "connector"
	case hypWearout:
		return "wearout"
	case hypIntermittent:
		return "intermittent"
	case hypPermanent:
		return "permanent"
	case hypJobInherent:
		return "job-inherent"
	case hypSensor:
		return "sensor"
	case hypConfig:
		return "config"
	default:
		return "?"
	}
}

// class maps a hypothesis to its maintenance-oriented fault class
// (ClassUnknown for healthy).
func (h Hypothesis) class() core.FaultClass {
	switch h {
	case hypTransient, hypEMI:
		return core.ComponentExternal
	case hypConnector:
		return core.ComponentBorderline
	case hypWearout, hypIntermittent, hypPermanent:
		return core.ComponentInternal
	case hypJobInherent:
		return core.JobInherent
	case hypSensor:
		return core.JobInherentSensor
	case hypConfig:
		return core.JobBorderline
	default:
		return core.ClassUnknown
	}
}

// persistence maps a hypothesis to the fault-persistence dimension.
func (h Hypothesis) persistence() core.Persistence {
	switch h {
	case hypTransient, hypEMI:
		return core.Transient
	case hypConnector, hypWearout, hypIntermittent, hypSensor:
		return core.Intermittent
	default:
		return core.Permanent
	}
}

// Options tunes the belief stage. Zero values take the defaults of
// DefaultOptions.
type Options struct {
	// PriorHealthy is the prior probability mass of the healthy
	// hypothesis; the remainder is split uniformly over the fault
	// hypotheses of the FRU's kind.
	PriorHealthy float64
	// Forget is the per-epoch retention factor of the (centred) log
	// posterior: 1 never forgets, smaller values decay old evidence
	// toward the prior — the graceful-degradation backstop against a
	// corrupted evidence stream.
	Forget float64
	// StepClamp bounds one epoch's relative log-likelihood demotion per
	// hypothesis (in nats): steps are measured against the epoch's
	// best-explaining hypothesis, so no single epoch — however loud a
	// stuck sensor screams — can drop any hypothesis more than StepClamp
	// nats behind the leader.
	StepClamp float64
	// MinConfidence is the posterior class mass below which the stage
	// abstains ("insufficient evidence": no finding at all).
	MinConfidence float64
	// MinMargin is the minimum lead over the runner-up fault class;
	// closer races abstain too.
	MinMargin float64
}

// DefaultOptions returns the tuning used throughout the experiments.
func DefaultOptions() Options {
	return Options{
		PriorHealthy:  0.85,
		Forget:        0.94,
		StepClamp:     6.0,
		MinConfidence: 0.5,
		MinMargin:     0.08,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.PriorHealthy <= 0 || o.PriorHealthy >= 1 {
		o.PriorHealthy = d.PriorHealthy
	}
	if o.Forget <= 0 || o.Forget > 1 {
		o.Forget = d.Forget
	}
	if o.StepClamp <= 0 {
		o.StepClamp = d.StepClamp
	}
	if o.MinConfidence <= 0 {
		o.MinConfidence = d.MinConfidence
	}
	if o.MinMargin <= 0 {
		o.MinMargin = d.MinMargin
	}
	return o
}

// Classifier is the Bayesian classification stage. Construct with New;
// the zero value is not usable. The classifier is stateful (one belief
// state per engine) — every engine needs its own instance.
type Classifier struct {
	opts Options

	// logp is the centred log posterior, nFRU rows × numHyp columns.
	// Centred means max-subtracted after every update: the stored
	// numbers are scale-free, which keeps the float trajectory (and
	// therefore the checkpoint bytes) identical across snapshot/restore.
	logp   []float64
	nFRU   int
	epochs int64
	// abstained counts epochs×FRUs where evidence was present but the
	// posterior did not clear the emission bar.
	abstained uint64

	findings []diagnosis.Finding
	ranked   []diagnosis.RankedVerdict
	// hwActive marks hardware FRUs with frame-level symptoms this
	// epoch — the spatial-correlation pass reads it.
	hwActive []bool
	// swSick marks software FRUs with value violations this epoch.
	swSick []bool
	// soleObs[f] is the single observer reporting every window symptom
	// of hardware FRU f (-1 when none or several); accuses[o] counts
	// the subjects observer o sole-accuses. Both feed the framed/accuser
	// features of the receive-side connector hypothesis and are
	// recomputed from the symptom history every epoch (not belief
	// state, so they stay out of the checkpoint).
	soleObs []int32
	accuses []int32
	// framed marks hardware FRUs whose window evidence is explained away
	// by a mass-accusing sole observer this epoch.
	framed []bool
	// accused marks hardware FRUs carrying a standing verdict with a
	// non-external class. When the posterior later decays back to a
	// healthy MAP (evidence stopped and Forget drained the lead), the
	// stage downgrades the verdict to an external transient — the
	// Bayesian analogue of the rule engine's isolated-transient
	// residual, so environmental stress that subsides does not leave a
	// stale removal recommendation. Belief state: checkpointed.
	accused []bool
	// granScratch backs the episode-rate queries.
	granScratch []int64
}

// New returns a Bayesian classifier with default tuning. The belief
// state sizes itself to the registry on the first Classify (or on
// Restore).
func New() *Classifier { return NewWithOptions(Options{}) }

// NewWithOptions returns a classifier with the given tuning.
func NewWithOptions(opts Options) *Classifier {
	return &Classifier{opts: opts.withDefaults()}
}

// Name identifies the stage in verdict provenance and CLI selection.
func (c *Classifier) Name() string { return "bayes" }

// Options returns the effective (defaulted) tuning.
func (c *Classifier) Options() Options { return c.opts }

// Epochs returns the number of assessment epochs folded into the
// posterior.
func (c *Classifier) Epochs() int64 { return c.epochs }

// Abstentions returns how many FRU-epochs had symptomatic evidence but
// withheld a verdict as insufficient.
func (c *Classifier) Abstentions() uint64 { return c.abstained }

// hypRange returns the hypothesis set of a FRU kind: hardware FRUs
// range over the component hypotheses, software FRUs over the job
// hypotheses. hypHealthy belongs to both.
func hypRange(hardware bool) []Hypothesis {
	if hardware {
		return hwHyps
	}
	return swHyps
}

var (
	hwHyps = []Hypothesis{hypHealthy, hypTransient, hypEMI, hypConnector, hypWearout, hypIntermittent, hypPermanent}
	swHyps = []Hypothesis{hypHealthy, hypJobInherent, hypSensor, hypConfig}
)

// Symptom filters shared by every epoch (allocated once; KindIn returns
// a closure).
var (
	fltFrame     = diagnosis.KindIn(diagnosis.SymOmission, diagnosis.SymCorruption, diagnosis.SymTiming)
	fltOmission  = diagnosis.KindIn(diagnosis.SymOmission)
	fltTiming    = diagnosis.KindIn(diagnosis.SymTiming)
	fltCorrupt   = diagnosis.KindIn(diagnosis.SymCorruption)
	fltOmOrTim   = diagnosis.KindIn(diagnosis.SymOmission, diagnosis.SymTiming)
	fltValueViol = diagnosis.KindIn(diagnosis.SymValue, diagnosis.SymStale, diagnosis.SymStuck, diagnosis.SymReplica)
	fltStuck     = diagnosis.KindIn(diagnosis.SymStuck)
	fltDrift     = diagnosis.KindIn(diagnosis.SymDeviation)
	fltOverflow  = diagnosis.KindIn(diagnosis.SymOverflow)
)

// Hardware evidence features, in likelihood-table column order.
const (
	fhAny      = iota // any frame-level symptom this epoch
	fhOm              // omissions this epoch
	fhTim             // timing violations this epoch
	fhCor             // coding violations this epoch
	fhMulti           // multi-bit corruption (large value deviation)
	fhBurst           // spatially correlated neighbour also symptomatic
	fhDuty            // near-continuous loss over the permanent window
	fhAlpha           // α-count past threshold (recurrence at this FRU)
	fhRise            // episode rate rising across the window (wearout)
	fhMultiObs        // seen by ≥2 observers
	fhRecur           // ≥ MinRecurrentGranules distinct symptomatic granules
	fhAccuser         // sole-accuses ≥2 subjects over the window — the
	// signature of its own receive-side connector chatter
	numHWFeat
)

// hwLik[h][f] is P(feature f observed | hypothesis h) — the Bernoulli
// likelihood tables of DESIGN §14. Rows index hwHyps order. Under the
// full Bernoulli update a hypothesis pays ln(1−p) for every signature
// feature that is absent, so the discriminating columns are the ones
// with a high p in exactly one row: fhBurst for EMI, fhRise for
// wearout, fhDuty for permanent, fhAccuser for the receive-side
// connector.
var hwLik = map[Hypothesis][numHWFeat]float64{
	hypHealthy:      {0.04, 0.02, 0.02, 0.02, 0.01, 0.02, 0.004, 0.01, 0.01, 0.02, 0.01, 0.02},
	hypTransient:    {0.90, 0.25, 0.25, 0.80, 0.35, 0.06, 0.01, 0.06, 0.05, 0.60, 0.10, 0.02},
	hypEMI:          {0.95, 0.35, 0.30, 0.90, 0.75, 0.90, 0.02, 0.25, 0.08, 0.70, 0.35, 0.02},
	hypConnector:    {0.80, 0.85, 0.25, 0.15, 0.05, 0.05, 0.15, 0.85, 0.15, 0.60, 0.75, 0.35},
	hypWearout:      {0.90, 0.55, 0.35, 0.50, 0.30, 0.05, 0.10, 0.60, 0.85, 0.55, 0.70, 0.02},
	hypIntermittent: {0.90, 0.45, 0.50, 0.60, 0.30, 0.05, 0.05, 0.75, 0.15, 0.55, 0.80, 0.02},
	hypPermanent:    {0.97, 0.97, 0.25, 0.05, 0.02, 0.05, 0.90, 0.80, 0.08, 0.80, 0.90, 0.02},
}

// Software evidence features.
const (
	fsVal       = iota // value-domain violations this epoch
	fsStuck            // stuck-at signature
	fsDrift            // in-spec drift toward the boundary
	fsOver             // queue overflows beyond OverflowMin over the window
	fsAlpha            // software α-count past threshold
	fsHostDirty        // hosting component's own α-count is loaded
	fsSiblings         // sibling jobs on the host are sick too
	numSWFeat
)

var swLik = map[Hypothesis][numSWFeat]float64{
	hypHealthy:     {0.03, 0.01, 0.02, 0.01, 0.01, 0.35, 0.35},
	hypJobInherent: {0.90, 0.15, 0.30, 0.05, 0.80, 0.08, 0.08},
	hypSensor:      {0.85, 0.60, 0.60, 0.02, 0.70, 0.08, 0.08},
	hypConfig:      {0.45, 0.05, 0.05, 0.95, 0.30, 0.10, 0.10},
}

// ensureInit sizes the belief state to the registry.
func (c *Classifier) ensureInit(reg *diagnosis.Registry) {
	if c.nFRU == reg.Len() && c.logp != nil {
		return
	}
	c.nFRU = reg.Len()
	c.logp = make([]float64, c.nFRU*int(numHyp))
	c.hwActive = make([]bool, c.nFRU)
	c.swSick = make([]bool, c.nFRU)
	c.soleObs = make([]int32, c.nFRU)
	c.accuses = make([]int32, c.nFRU)
	c.framed = make([]bool, c.nFRU)
	c.accused = make([]bool, c.nFRU)
	for i := 0; i < c.nFRU; i++ {
		c.resetRow(diagnosis.FRUIndex(i), reg.IsHardware(diagnosis.FRUIndex(i)))
	}
}

// resetRow reinstates the prior for one FRU.
func (c *Classifier) resetRow(f diagnosis.FRUIndex, hardware bool) {
	row := c.row(f)
	for i := range row {
		row[i] = negInf
	}
	hyps := hypRange(hardware)
	faulty := (1 - c.opts.PriorHealthy) / float64(len(hyps)-1)
	for _, h := range hyps {
		p := faulty
		if h == hypHealthy {
			p = c.opts.PriorHealthy
		}
		row[h] = ln(p)
	}
	c.centre(row, hyps)
}

// negInf is the log probability of hypotheses outside the FRU's kind.
// A large negative constant rather than math.Inf keeps every arithmetic
// path finite (Inf−Inf would poison the centring subtraction).
const negInf = -1e300

func (c *Classifier) row(f diagnosis.FRUIndex) []float64 {
	i := int(f) * int(numHyp)
	return c.logp[i : i+int(numHyp)]
}

// centre subtracts the row maximum so the stored log posterior is
// scale-free (numerically stable and canonical for checkpointing).
func (c *Classifier) centre(row []float64, hyps []Hypothesis) {
	max := row[hyps[0]]
	for _, h := range hyps[1:] {
		if row[h] > max {
			max = row[h]
		}
	}
	for _, h := range hyps {
		row[h] -= max
	}
}

// posterior materializes the normalized posterior of one FRU into out
// (len numHyp), returning the normalizer.
func (c *Classifier) posterior(f diagnosis.FRUIndex, hardware bool, out []float64) {
	row := c.row(f)
	hyps := hypRange(hardware)
	var sum float64
	for i := range out {
		out[i] = 0
	}
	for _, h := range hyps {
		out[h] = exp(row[h])
		sum += out[h]
	}
	for _, h := range hyps {
		out[h] /= sum
	}
}

// Posterior returns the FRU's current posterior over its hypothesis
// set as (hypothesis name, probability) pairs in fixed hypothesis
// order. For inspection and tests; allocates.
func (c *Classifier) Posterior(f diagnosis.FRUIndex, hardware bool) map[string]float64 {
	if int(f) >= c.nFRU {
		return nil
	}
	var post [numHyp]float64
	c.posterior(f, hardware, post[:])
	out := make(map[string]float64, len(hypRange(hardware)))
	for _, h := range hypRange(hardware) {
		out[h.String()] = post[h]
	}
	return out
}

// Classify implements diagnosis.Classifier: one belief update per
// assessment epoch, followed by MAP emission with abstention. Findings
// are returned in ascending subject order (hardware FRUs precede
// software FRUs in registry order) and concluded classes are recorded
// in ctx.Decided. The returned slice is owned by the classifier and
// valid until the next call.
func (c *Classifier) Classify(ctx *diagnosis.EvalContext) []diagnosis.Finding {
	c.ensureInit(ctx.Reg)
	c.epochs++
	g := ctx.Granule
	epochFrom := g - ctx.Opts.EpochRounds + 1
	if epochFrom < 0 {
		epochFrom = 0
	}
	winFrom := g - ctx.Window + 1
	if winFrom < 0 {
		winFrom = 0
	}

	// Pass 1: per-epoch activity marks, feeding the spatial-correlation
	// and sibling features, plus the window-scale accusation graph — who
	// is the sole observer behind each subject's symptoms — that exposes
	// a receive-side connector fault (the accuser reports omissions
	// about everyone while everyone else sees clean frames).
	hw := ctx.Reg.HardwareFRUs()
	for i := range c.accuses {
		c.accuses[i] = 0
	}
	for _, f := range hw {
		c.hwActive[f] = ctx.Hist.Count(f, epochFrom, g, fltFrame) > 0
		// The accusation graph mirrors ConnectorRxONA: omission symptoms
		// only, a single stray omission is not connector evidence.
		c.soleObs[f] = -1
		if obs := ctx.Hist.Observers(f, winFrom, g, fltOmission); len(obs) == 1 &&
			ctx.Hist.Count(f, winFrom, g, fltOmission) >= 2 {
			c.soleObs[f] = int32(obs[0])
		}
	}
	for _, f := range hw {
		if o := c.soleObs[f]; o >= 0 && int(o) < c.nFRU {
			c.accuses[o]++
		}
	}
	sw := ctx.Reg.SoftwareFRUs()
	for _, f := range sw {
		c.swSick[f] = ctx.Hist.Count(f, epochFrom, g, fltValueViol) > 0
	}

	// The recurrence counters are owned by the active classification
	// stage (the DECOS classifier steps them inside its own Classify),
	// so this stage must advance them itself or the α-evidence features
	// would never fire. Framed subjects do not accumulate recurrence —
	// the same gating the DECOS pipeline applies to explained symptoms.
	for _, f := range hw {
		c.framed[f] = c.soleObs[f] >= 0 && c.accuses[c.soleObs[f]] >= 2 && c.accuses[f] < 2
		ctx.Alpha.Step(f, c.hwActive[f] && !c.framed[f], 1)
	}
	for _, f := range sw {
		ctx.SW.Step(f, c.swSick[f], 1)
	}

	c.findings = c.findings[:0]
	for _, f := range hw {
		c.updateHardware(ctx, f, epochFrom, winFrom, g)
		c.emit(ctx, f, true)
	}
	for _, f := range sw {
		c.updateSoftware(ctx, f, epochFrom, winFrom, g)
		c.emit(ctx, f, false)
	}
	return c.findings
}

// updateHardware folds one epoch of frame-level evidence into the
// component FRU's posterior.
func (c *Classifier) updateHardware(ctx *diagnosis.EvalContext, f diagnosis.FRUIndex, epochFrom, winFrom, g int64) {
	om := ctx.Hist.Count(f, epochFrom, g, fltOmission)
	tim := ctx.Hist.Count(f, epochFrom, g, fltTiming)
	cor := ctx.Hist.Count(f, epochFrom, g, fltCorrupt)

	var feat [numHWFeat]bool
	feat[fhAny] = om+tim+cor > 0
	feat[fhOm] = om > 0
	feat[fhTim] = tim > 0
	feat[fhCor] = cor > 0
	feat[fhMulti] = ctx.Hist.MaxDeviation(f, epochFrom, g, fltCorrupt) >= ctx.Opts.MultiBitThreshold
	feat[fhAlpha] = ctx.Alpha.Exceeded(f)

	if feat[fhAny] {
		// Spatial correlation: another component within the proximity
		// radius is symptomatic in the same epoch.
		for _, o := range ctx.Reg.HardwareFRUs() {
			if o != f && c.hwActive[o] && ctx.Reg.Distance(f, o) <= ctx.Opts.ProximityRadius {
				feat[fhBurst] = true
				break
			}
		}
		feat[fhMultiObs] = len(ctx.Hist.Observers(f, epochFrom, g, fltFrame)) >= 2
	}

	// Window-scale features: duty cycle over the permanent window and
	// the episode-rate trend over the full lookback.
	permFrom := g - ctx.Opts.PermanentWindow + 1
	if permFrom < 0 {
		permFrom = 0
	}
	span := g - permFrom + 1
	loss := ctx.Hist.ActiveGranules(f, permFrom, g, fltOmOrTim)
	feat[fhDuty] = float64(len(loss)) >= ctx.Opts.PermanentDuty*float64(span)

	episodes := ctx.Hist.ActiveGranules(f, winFrom, g, fltFrame)
	feat[fhRecur] = len(episodes) >= ctx.Opts.MinRecurrentGranules
	mid := winFrom + (g-winFrom)/2
	early, late := 0, 0
	for _, gr := range episodes {
		if gr <= mid {
			early++
		} else {
			late++
		}
	}
	feat[fhRise] = late >= 4 && early >= 1 && float64(late) >= ctx.Opts.RiseFactor*float64(early)

	// Accusation-graph explain-away: when every window omission about
	// this subject comes from one observer who sole-accuses several
	// subjects, the symptoms are re-attributed to that observer's own
	// receiver — the framed subject's evidence is discarded wholesale
	// (its epoch looks quiet), and the accuser inherits the omissions
	// it reported plus the accuser signature.
	if c.framed[f] {
		feat = [numHWFeat]bool{}
	}
	if c.accuses[f] >= 2 {
		feat[fhAny], feat[fhOm], feat[fhRecur], feat[fhAccuser] = true, true, true, true
	}

	// Quiet epochs carry no update at all: the fault hypotheses model
	// evidence while a fault manifests, so their posterior decays toward
	// the prior through forgetting instead of being driven down — a
	// one-shot transient must stay explainable after it ends.
	quiet := true
	for _, on := range feat {
		if on {
			quiet = false
			break
		}
	}
	if !quiet {
		c.applyStep(f, hwHyps, func(h Hypothesis) float64 { return logLikHW(h, &feat) })
	}
	c.forgetRow(f, true)
}

// updateSoftware folds one epoch of port-level evidence into the job
// FRU's posterior.
func (c *Classifier) updateSoftware(ctx *diagnosis.EvalContext, f diagnosis.FRUIndex, epochFrom, winFrom, g int64) {
	var feat [numSWFeat]bool
	feat[fsVal] = c.swSick[f]
	feat[fsStuck] = ctx.Hist.Count(f, epochFrom, g, fltStuck) > 0
	feat[fsDrift] = ctx.Hist.Count(f, epochFrom, g, fltDrift) > 0
	feat[fsOver] = ctx.Hist.Count(f, winFrom, g, fltOverflow) >= ctx.Opts.OverflowMin
	feat[fsAlpha] = ctx.SW.Exceeded(f)

	host := ctx.Reg.HostOf(f)
	feat[fsHostDirty] = ctx.Alpha.Score(host) > ctx.Opts.AlphaThreshold/2
	for _, sib := range ctx.Reg.JobsOn(host) {
		if sib != f && c.swSick[sib] {
			feat[fsSiblings] = true
			break
		}
	}

	quiet := true
	for _, on := range feat {
		if on {
			quiet = false
			break
		}
	}
	if !quiet {
		c.applyStep(f, swHyps, func(h Hypothesis) float64 { return logLikSW(h, &feat) })
	}
	c.forgetRow(f, false)
}

// applyStep folds one epoch's log-likelihoods into the FRU's posterior.
// Steps are taken relative to the epoch's best-explaining hypothesis
// and clamped below at −StepClamp: the stored row is centred anyway, so
// only differences matter, and the relative clamp bounds how far any
// hypothesis can fall behind the leader per epoch without flattening
// the ordering of the plausible ones (an absolute clamp would floor
// every strongly-surprised hypothesis to the same value).
func (c *Classifier) applyStep(f diagnosis.FRUIndex, hyps []Hypothesis, ll func(Hypothesis) float64) {
	var step [numHyp]float64
	best := negInf
	for _, h := range hyps {
		step[h] = ll(h)
		if step[h] > best {
			best = step[h]
		}
	}
	row := c.row(f)
	for _, h := range hyps {
		s := step[h] - best
		if s < -c.opts.StepClamp {
			s = -c.opts.StepClamp
		}
		row[h] += s
	}
}

// logLikHW is the full Bernoulli epoch log-likelihood of the observed
// hardware feature vector under hypothesis h: present features
// contribute ln(p), absent ones ln(1−p), so a hypothesis is penalized
// for the signature features it predicts but that did not appear —
// without this term, any high-likelihood row would explain every
// symptomatic epoch.
func logLikHW(h Hypothesis, feat *[numHWFeat]bool) float64 {
	lik := hwLik[h]
	var ll float64
	for i, on := range feat {
		if on {
			ll += ln(lik[i])
		} else {
			ll += ln(1 - lik[i])
		}
	}
	return ll
}

func logLikSW(h Hypothesis, feat *[numSWFeat]bool) float64 {
	lik := swLik[h]
	var ll float64
	for i, on := range feat {
		if on {
			ll += ln(lik[i])
		} else {
			ll += ln(1 - lik[i])
		}
	}
	return ll
}

// forgetRow decays the centred log posterior toward the prior — the
// second half of the graceful-degradation contract.
func (c *Classifier) forgetRow(f diagnosis.FRUIndex, hardware bool) {
	row := c.row(f)
	hyps := hypRange(hardware)
	faulty := (1 - c.opts.PriorHealthy) / float64(len(hyps)-1)
	for _, h := range hyps {
		prior := faulty
		if h == hypHealthy {
			prior = c.opts.PriorHealthy
		}
		row[h] = c.opts.Forget*row[h] + (1-c.opts.Forget)*ln(prior)
	}
	c.centre(row, hyps)
}

// emit applies the MAP-with-abstention rule for one FRU and appends a
// finding when the evidence clears the bar.
func (c *Classifier) emit(ctx *diagnosis.EvalContext, f diagnosis.FRUIndex, hardware bool) {
	var post [numHyp]float64
	c.posterior(f, hardware, post[:])

	// Pool hypothesis mass by maintenance class; remember the dominant
	// hypothesis inside each class for pattern and persistence.
	healthy := post[hypHealthy]
	bestClass, runnerUp := 0.0, 0.0
	var bestHyp Hypothesis
	var bestHypMass float64
	var bestClassOf core.FaultClass
	for _, cl := range classPools(hardware) {
		mass := 0.0
		var top Hypothesis
		var topMass float64
		for _, h := range hypRange(hardware) {
			if h.class() != cl {
				continue
			}
			mass += post[h]
			if post[h] > topMass {
				top, topMass = h, post[h]
			}
		}
		if mass > bestClass {
			runnerUp = bestClass
			bestClass, bestClassOf = mass, cl
			bestHyp, bestHypMass = top, topMass
		} else if mass > runnerUp {
			runnerUp = mass
		}
	}
	_ = bestHypMass

	symptomatic := c.hwActive[f] || c.swSick[f]
	if bestClass <= healthy {
		// Healthy is the MAP class. If this FRU still carries an
		// actionable verdict from an earlier accusation, the evidence
		// behind it has stopped recurring and Forget has drained the
		// posterior lead — downgrade to an external transient (no
		// maintenance action), exactly as the rule engine's
		// isolated-transient residual reclassifies a subsided stress.
		if hardware && c.accused[f] && !symptomatic {
			c.findings = append(c.findings, diagnosis.Finding{
				Subject:     f,
				Class:       core.ComponentExternal,
				Persistence: core.Transient,
				Pattern:     "bayes-recovered",
				Confidence:  healthy,
			})
			ctx.Decided[f] = core.ComponentExternal
			c.accused[f] = false
		}
		return
	}
	if bestClass < c.opts.MinConfidence || bestClass-maxf(runnerUp, healthy) < c.opts.MinMargin {
		if symptomatic {
			c.abstained++ // insufficient evidence: explicit abstention
		}
		return
	}
	c.findings = append(c.findings, diagnosis.Finding{
		Subject:     f,
		Class:       bestClassOf,
		Persistence: bestHyp.persistence(),
		Pattern:     "bayes-" + bestHyp.String(),
		Confidence:  bestClass,
	})
	ctx.Decided[f] = bestClassOf
	if hardware {
		c.accused[f] = bestClassOf != core.ComponentExternal
	}
}

// classPools lists the fault classes a FRU kind's hypotheses map to.
func classPools(hardware bool) []core.FaultClass {
	if hardware {
		return hwClasses
	}
	return swClasses
}

var (
	hwClasses = []core.FaultClass{core.ComponentExternal, core.ComponentBorderline, core.ComponentInternal}
	swClasses = []core.FaultClass{core.JobInherent, core.JobInherentSensor, core.JobBorderline}
)

// Ranked implements diagnosis.Ranker: the FRU's fault classes ordered
// by posterior mass, healthy included as ClassUnknown. The returned
// slice is owned by the classifier and valid until the next call.
func (c *Classifier) Ranked(subject diagnosis.FRUIndex) []diagnosis.RankedVerdict {
	if int(subject) >= c.nFRU {
		return nil
	}
	// The belief state does not retain the registry; hardware-ness is
	// recovered from the stored row (software rows hold negInf-derived
	// zeros for hardware hypotheses and vice versa).
	hardware := c.row(subject)[hypTransient] > negInf/2
	var post [numHyp]float64
	c.posterior(subject, hardware, post[:])

	c.ranked = c.ranked[:0]
	c.ranked = append(c.ranked, diagnosis.RankedVerdict{
		Class: core.ClassUnknown, Pattern: "bayes-healthy", Confidence: post[hypHealthy],
	})
	for _, cl := range classPools(hardware) {
		mass := 0.0
		var top Hypothesis
		var topMass float64
		for _, h := range hypRange(hardware) {
			if h.class() != cl {
				continue
			}
			mass += post[h]
			if post[h] > topMass {
				top, topMass = h, post[h]
			}
		}
		c.ranked = append(c.ranked, diagnosis.RankedVerdict{
			Class: cl, Pattern: "bayes-" + top.String(), Confidence: mass,
		})
	}
	// Insertion sort, descending confidence (stable for equal masses:
	// fixed class order above).
	for i := 1; i < len(c.ranked); i++ {
		for j := i; j > 0 && c.ranked[j].Confidence > c.ranked[j-1].Confidence; j-- {
			c.ranked[j], c.ranked[j-1] = c.ranked[j-1], c.ranked[j]
		}
	}
	return c.ranked
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
