package bayes

import (
	"bytes"
	"fmt"
	"testing"

	"decos/internal/ckpt"
	"decos/internal/component"
	"decos/internal/core"
	"decos/internal/diagnosis"
	"decos/internal/sim"
	"decos/internal/tt"
)

// The unit tests drive the classifier against a synthetic EvalContext —
// four components far enough apart that spatial correlation never fires
// — so each belief-stage contract (abstention, indictment, framing,
// recovery, checkpointing) is exercised without a running cluster. The
// end-to-end contracts (determinism inside a Fig. 10 engine, checkpoint
// restore mid-run) live in internal/scenario/bayes_test.go.

// rig owns one classifier and the external evidence state an assessor
// would hand it each epoch.
type rig struct {
	c   *Classifier
	ctx *diagnosis.EvalContext
	g   int64
}

func newRig(c *Classifier) *rig {
	cl := component.NewCluster(tt.UniformSchedule(4, 250*sim.Microsecond, 32), 1)
	for i := 0; i < 4; i++ {
		// 10 apart: well beyond the default ProximityRadius of 3.
		cl.AddComponent(tt.NodeID(i), fmt.Sprintf("c%d", i), float64(10*i), 0)
	}
	opts := diagnosis.DefaultOptions()
	return &rig{
		c: c,
		ctx: &diagnosis.EvalContext{
			Hist:      diagnosis.NewHistory(opts.RetainGranules),
			Reg:       diagnosis.NewRegistry(cl),
			Alpha:     diagnosis.NewAlphaCount(opts.AlphaK, opts.AlphaThreshold),
			SW:        diagnosis.NewAlphaCount(opts.AlphaK, opts.AlphaThreshold),
			Window:    opts.WindowGranules,
			Opts:      opts,
			Explained: make(map[diagnosis.FRUIndex]bool),
			Decided:   make(map[diagnosis.FRUIndex]core.FaultClass),
		},
	}
}

// omit records one omission symptom about subject as seen by observer.
func (r *rig) omit(subject, observer diagnosis.FRUIndex, g int64) {
	r.ctx.Hist.Add(diagnosis.Symptom{
		Kind: diagnosis.SymOmission, Observer: observer, Subject: subject,
		Granule: g, At: sim.Time(g), Count: 1,
	})
}

// epoch advances one assessment period, calling evidence for every
// granule of the epoch, and returns the epoch's findings.
func (r *rig) epoch(evidence func(g int64)) []diagnosis.Finding {
	from := r.g + 1
	r.g += r.ctx.Opts.EpochRounds
	if evidence != nil {
		for g := from; g <= r.g; g++ {
			evidence(g)
		}
	}
	r.ctx.Granule = r.g
	for k := range r.ctx.Decided {
		delete(r.ctx.Decided, k)
	}
	return r.c.Classify(r.ctx)
}

// TestQuietClusterEmitsNothing: with no symptoms at all the stage stays
// at the prior — no findings, no abstentions (abstaining requires
// symptomatic evidence), and the ranked view leads with healthy.
func TestQuietClusterEmitsNothing(t *testing.T) {
	r := newRig(New())
	for i := 0; i < 12; i++ {
		if f := r.epoch(nil); len(f) != 0 {
			t.Fatalf("epoch %d: findings on a quiet cluster: %+v", i, f)
		}
	}
	if n := r.c.Epochs(); n != 12 {
		t.Errorf("Epochs() = %d, want 12", n)
	}
	if n := r.c.Abstentions(); n != 0 {
		t.Errorf("Abstentions() = %d on a quiet cluster, want 0", n)
	}
	ranked := r.c.Ranked(0)
	if len(ranked) == 0 || ranked[0].Class != core.ClassUnknown {
		t.Fatalf("quiet Ranked(0) does not lead with healthy: %+v", ranked)
	}
	if ranked[0].Confidence < 0.8 {
		t.Errorf("healthy confidence %.3f after quiet epochs, want >= 0.8", ranked[0].Confidence)
	}
}

// TestOneShotGlitchAbstains: a single stray omission must not indict —
// the prior plus the abstention bar absorb one epoch of weak evidence,
// and forgetting restores the healthy belief afterwards.
func TestOneShotGlitchAbstains(t *testing.T) {
	r := newRig(New())
	f := r.epoch(func(g int64) {
		if g == 10 {
			r.omit(0, 1, g)
		}
	})
	if len(f) != 0 {
		t.Fatalf("one stray omission produced findings: %+v", f)
	}
	for i := 0; i < 20; i++ {
		if f := r.epoch(nil); len(f) != 0 {
			t.Fatalf("quiet epoch %d after the glitch produced findings: %+v", i, f)
		}
	}
	// Forgetting converges on the prior, where healthy holds 0.85.
	if h := r.c.Posterior(0, true)["healthy"]; h < 0.8 {
		t.Errorf("healthy posterior %.3f after the glitch decayed, want >= 0.8", h)
	}
}

// TestPermanentLossIndictment: near-continuous omissions seen by two
// observers must converge on an internal-permanent verdict with
// calibrated confidence, and the ranked posterior must agree with the
// emitted finding.
func TestPermanentLossIndictment(t *testing.T) {
	r := newRig(New())
	var last []diagnosis.Finding
	for i := 0; i < 10; i++ {
		last = r.epoch(func(g int64) {
			r.omit(0, 1, g)
			r.omit(0, 2, g)
		})
	}
	if len(last) != 1 || last[0].Subject != 0 {
		t.Fatalf("final findings = %+v, want exactly one about FRU 0", last)
	}
	v := last[0]
	if v.Class != core.ComponentInternal || v.Pattern != "bayes-permanent" {
		t.Errorf("verdict %s/%s, want component-internal/bayes-permanent", v.Class, v.Pattern)
	}
	if v.Persistence != core.Permanent {
		t.Errorf("persistence %v, want permanent", v.Persistence)
	}
	if v.Confidence < r.c.Options().MinConfidence || v.Confidence > 1 {
		t.Errorf("confidence %.3f outside [%.2f, 1]", v.Confidence, r.c.Options().MinConfidence)
	}
	if cl := r.ctx.Decided[0]; cl != core.ComponentInternal {
		t.Errorf("Decided[0] = %v, want component-internal", cl)
	}

	ranked := r.c.Ranked(0)
	if len(ranked) != 4 { // healthy + the three hardware classes
		t.Fatalf("Ranked(0) has %d entries, want 4: %+v", len(ranked), ranked)
	}
	if ranked[0].Class != core.ComponentInternal {
		t.Errorf("top ranked class %v, want component-internal", ranked[0].Class)
	}
	sum := 0.0
	for i, rv := range ranked {
		sum += rv.Confidence
		if i > 0 && rv.Confidence > ranked[i-1].Confidence {
			t.Errorf("ranked verdicts not in descending confidence: %+v", ranked)
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("ranked confidences sum to %.4f, want 1", sum)
	}
	if ranked[0].Confidence != v.Confidence {
		t.Errorf("ranked top %.4f != finding confidence %.4f", ranked[0].Confidence, v.Confidence)
	}
}

// TestRecoveryDowngrade: when the evidence behind a standing internal
// verdict stops recurring, forgetting drains the posterior back to a
// healthy MAP and the stage downgrades the verdict to an external
// transient — no stale removal recommendation survives a subsided
// stress.
func TestRecoveryDowngrade(t *testing.T) {
	r := newRig(New())
	for i := 0; i < 10; i++ {
		r.epoch(func(g int64) {
			r.omit(0, 1, g)
			r.omit(0, 2, g)
		})
	}

	recovered := false
	for i := 0; i < 80 && !recovered; i++ {
		for _, f := range r.epoch(nil) {
			if f.Subject != 0 {
				continue
			}
			if f.Pattern == "bayes-recovered" {
				if f.Class != core.ComponentExternal || f.Persistence != core.Transient {
					t.Fatalf("recovery downgrade is %s/%v, want component-external/transient", f.Class, f.Persistence)
				}
				recovered = true
			}
		}
	}
	if !recovered {
		t.Fatal("no bayes-recovered downgrade within 80 quiet epochs")
	}
	// The downgrade fires once; the belief stays healthy afterwards.
	for i := 0; i < 10; i++ {
		if f := r.epoch(nil); len(f) != 0 {
			t.Fatalf("findings after the recovery downgrade: %+v", f)
		}
	}
}

// TestLyingObserverFramed is the sensor-fault degradation contract: an
// observer whose receive-side connector chatters reports omissions
// about everyone. The accusation graph must re-attribute the evidence —
// indicting the accuser's connector, never the framed subjects.
func TestLyingObserverFramed(t *testing.T) {
	r := newRig(New())
	var accuserIndicted bool
	for i := 0; i < 10; i++ {
		findings := r.epoch(func(g int64) {
			if g%2 == 0 { // a chattering receiver, not a dead bus
				r.omit(0, 3, g)
				r.omit(1, 3, g)
				r.omit(2, 3, g)
			}
		})
		for _, f := range findings {
			switch {
			case f.Subject == 3 && f.Class == core.ComponentBorderline:
				accuserIndicted = true
			case f.Subject != 3:
				t.Fatalf("epoch %d: framed subject indicted: %+v", i, f)
			}
		}
	}
	if !accuserIndicted {
		t.Fatalf("accuser never indicted; posterior(3) = %v", r.c.Posterior(3, true))
	}
	// The framed subjects' beliefs never moved off healthy.
	for f := diagnosis.FRUIndex(0); f < 3; f++ {
		if h := r.c.Posterior(f, true)["healthy"]; h < 0.8 {
			t.Errorf("framed FRU %d healthy posterior %.3f, want >= 0.8", f, h)
		}
	}
}

func snapshotBytes(t *testing.T, c *Classifier) []byte {
	t.Helper()
	e := ckpt.NewEncoder()
	e.Begin("cls")
	c.Snapshot(e)
	e.End()
	return e.Bytes()
}

func restoreFrom(t *testing.T, data []byte, opts Options) *Classifier {
	t.Helper()
	d, err := ckpt.NewDecoder(data)
	if err != nil {
		t.Fatalf("decoding snapshot: %v", err)
	}
	if !d.Section("cls") {
		t.Fatal("snapshot has no cls section")
	}
	c := NewWithOptions(opts)
	if err := c.Restore(d); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	return c
}

// TestCheckpointRoundTrip: Snapshot → Restore → Snapshot must be
// byte-identical, and a restored classifier fed the same evidence as
// the uninterrupted one must produce the same findings and the same
// next checkpoint — the bit-identity contract the engine's "cls"
// section relies on.
func TestCheckpointRoundTrip(t *testing.T) {
	evidence := func(r *rig) func(g int64) {
		return func(g int64) {
			r.omit(0, 1, g)
			r.omit(0, 2, g)
		}
	}

	full := newRig(New())
	for i := 0; i < 6; i++ {
		full.epoch(evidence(full))
	}
	mid := snapshotBytes(t, full.c)
	if got := snapshotBytes(t, restoreFrom(t, mid, Options{})); !bytes.Equal(mid, got) {
		t.Fatalf("restore→snapshot not byte-identical: %d vs %d bytes", len(mid), len(got))
	}

	// Continue the full run and, in parallel, a run restored at epoch 6.
	// The external evidence state (history, α-counts) is rebuilt by
	// replaying the same epochs on a fresh rig, exactly as the engine
	// restores its own sections alongside the classifier's.
	resumed := newRig(New())
	for i := 0; i < 6; i++ {
		resumed.epoch(evidence(resumed))
	}
	resumed.c = restoreFrom(t, mid, Options{})

	for i := 0; i < 4; i++ {
		a := full.epoch(evidence(full))
		b := resumed.epoch(evidence(resumed))
		if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
			t.Fatalf("epoch %d diverged:\n  full:    %+v\n  resumed: %+v", 6+i, a, b)
		}
	}
	if a, b := snapshotBytes(t, full.c), snapshotBytes(t, resumed.c); !bytes.Equal(a, b) {
		t.Fatal("final checkpoints differ between the full and the resumed run")
	}
}

// TestRestoreRejectsLayoutMismatch: a checkpoint written with a
// different hypothesis count must be refused, not misinterpreted.
func TestRestoreRejectsLayoutMismatch(t *testing.T) {
	e := ckpt.NewEncoder()
	e.Begin("cls")
	e.Int(1)               // nFRU
	e.Int(int(numHyp) + 1) // wrong hypothesis count
	e.Varint(0)
	e.Uvarint(0)
	e.End()
	d, err := ckpt.NewDecoder(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !d.Section("cls") {
		t.Fatal("no cls section")
	}
	if err := New().Restore(d); err == nil {
		t.Fatal("Restore accepted a checkpoint with a mismatched hypothesis count")
	}
}
