package bayes

import (
	"fmt"

	"decos/internal/ckpt"
)

// Checkpoint layout of the Bayesian classifier ("cls" section of the
// engine stream, DESIGN §14): the posterior is plain numeric state —
// FRU count, hypothesis count (layout guard), epoch and abstention
// counters, then the centred log posterior rows as exact IEEE 754
// bits, then the per-FRU accused flags (standing non-external verdicts
// awaiting a possible recovery downgrade). Tuning is configuration, not
// state: Restore runs on a freshly constructed classifier carrying the
// same Options.

// Snapshot implements ckpt.Snapshotter.
func (c *Classifier) Snapshot(e *ckpt.Encoder) {
	e.Int(c.nFRU)
	e.Int(int(numHyp))
	e.Varint(c.epochs)
	e.Uvarint(c.abstained)
	for _, v := range c.logp {
		e.Float64(v)
	}
	for _, a := range c.accused {
		e.Bool(a)
	}
}

// Restore implements ckpt.Snapshotter: it overwrites the belief state
// with the checkpointed posterior. The restored floats are the exact
// bits Snapshot wrote, so a restored run's posterior trajectory — and
// therefore its verdicts and its next checkpoint — is bit-identical to
// the uninterrupted run.
func (c *Classifier) Restore(d *ckpt.Decoder) error {
	nFRU := d.Len(1 << 16)
	nHyp := d.Int()
	epochs := d.Varint()
	abstained := d.Uvarint()
	if err := d.Err(); err != nil {
		return err
	}
	if nHyp != int(numHyp) {
		return fmt.Errorf("bayes: checkpoint has %d hypotheses, classifier knows %d", nHyp, numHyp)
	}
	logp := make([]float64, nFRU*int(numHyp))
	for i := range logp {
		logp[i] = d.Float64()
	}
	accused := make([]bool, nFRU)
	for i := range accused {
		accused[i] = d.Bool()
	}
	if err := d.Err(); err != nil {
		return err
	}
	c.nFRU = nFRU
	c.epochs = epochs
	c.abstained = abstained
	c.logp = logp
	c.accused = accused
	c.hwActive = make([]bool, nFRU)
	c.swSick = make([]bool, nFRU)
	c.soleObs = make([]int32, nFRU)
	c.accuses = make([]int32, nFRU)
	c.framed = make([]bool, nFRU)
	return nil
}
