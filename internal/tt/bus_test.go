package tt

import (
	"testing"

	"decos/internal/clock"
	"decos/internal/sim"
)

// recController is a minimal controller that records everything it observes.
type recController struct {
	id       NodeID
	payload  []byte
	built    []int // slots in which BuildFrame was called
	statuses []FrameStatus
	senders  []NodeID
	rounds   []int64
}

func (r *recController) BuildFrame(round int64, slot int) []byte {
	r.built = append(r.built, slot)
	return r.payload
}

func (r *recController) OnSlot(f Frame, st FrameStatus) {
	r.statuses = append(r.statuses, st)
	r.senders = append(r.senders, f.Sender)
}

func (r *recController) OnRoundEnd(round int64) { r.rounds = append(r.rounds, round) }

func newCluster(t *testing.T, n int) (*sim.Scheduler, *Bus, []*recController) {
	t.Helper()
	sched := sim.NewScheduler()
	cfg := UniformSchedule(n, 250*sim.Microsecond, 32)
	bus := NewBus(cfg, sched)
	ctrls := make([]*recController, n)
	for i := 0; i < n; i++ {
		ctrls[i] = &recController{id: NodeID(i), payload: []byte{byte(i)}}
		bus.Attach(NodeID(i), ctrls[i])
	}
	bus.Start()
	return sched, bus, ctrls
}

func runRounds(sched *sim.Scheduler, cfg Config, rounds int64) {
	// Stop just before the first slot of the next round.
	sched.RunUntil(sim.Time(rounds*cfg.RoundDuration().Micros() - 1))
}

func TestConfigValidate(t *testing.T) {
	good := UniformSchedule(4, 250, 32)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{SlotDuration: 0, Slots: []NodeID{0}, PayloadBytes: 8},
		{SlotDuration: 250, Slots: nil, PayloadBytes: 8},
		{SlotDuration: 250, Slots: []NodeID{0}, PayloadBytes: 0},
		{SlotDuration: 250, Slots: []NodeID{NoNode}, PayloadBytes: 8},
		{SlotDuration: 250, Slots: []NodeID{-7}, PayloadBytes: 8},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestConfigGeometry(t *testing.T) {
	cfg := UniformSchedule(4, 250*sim.Microsecond, 32)
	if cfg.RoundDuration() != sim.Millisecond {
		t.Errorf("RoundDuration = %v, want 1ms", cfg.RoundDuration())
	}
	if got := cfg.SlotStart(2, 1); got != sim.Time(2*1000+250) {
		t.Errorf("SlotStart(2,1) = %v", got)
	}
	if got := cfg.SlotsOf(2); len(got) != 1 || got[0] != 2 {
		t.Errorf("SlotsOf(2) = %v", got)
	}
	nodes := cfg.Nodes()
	if len(nodes) != 4 || nodes[0] != 0 || nodes[3] != 3 {
		t.Errorf("Nodes() = %v", nodes)
	}
}

func TestBusDeliversAllFramesToAllNodes(t *testing.T) {
	sched, bus, ctrls := newCluster(t, 4)
	runRounds(sched, bus.Cfg, 3)
	for i, c := range ctrls {
		if len(c.built) != 3 {
			t.Errorf("node %d built %d frames, want 3", i, len(c.built))
		}
		if len(c.statuses) != 12 {
			t.Errorf("node %d observed %d slots, want 12", i, len(c.statuses))
		}
		for j, st := range c.statuses {
			if st != FrameOK {
				t.Errorf("node %d slot %d status %v", i, j, st)
			}
		}
		if len(c.rounds) != 3 || c.rounds[2] != 2 {
			t.Errorf("node %d rounds %v", i, c.rounds)
		}
	}
}

func TestBusLoopback(t *testing.T) {
	sched, bus, ctrls := newCluster(t, 2)
	runRounds(sched, bus.Cfg, 1)
	// Node 0 observes its own frame (sender 0) and node 1's.
	if ctrls[0].senders[0] != 0 || ctrls[0].senders[1] != 1 {
		t.Errorf("loopback senders = %v", ctrls[0].senders)
	}
	_ = bus
}

func TestFailSilentNodeOmitsAndLeavesMembership(t *testing.T) {
	sched, bus, ctrls := newCluster(t, 4)
	runRounds(sched, bus.Cfg, 2)
	bus.SetAlive(2, false)
	runRounds(sched, bus.Cfg, 5)

	// Every live node saw omissions from node 2 after round 2.
	for _, obs := range []int{0, 1, 3} {
		c := ctrls[obs]
		last := c.statuses[len(c.statuses)-2] // slot of node 2 in final round
		if last != FrameOmitted {
			t.Errorf("node %d saw %v from dead node, want omitted", obs, last)
		}
	}
	// Membership: views of live nodes agree and exclude node 2.
	round := bus.Round()
	for _, obs := range []NodeID{0, 1, 3} {
		m := bus.Membership(obs)
		if m.Member(2, round) {
			t.Errorf("node %d still counts dead node 2 as member", obs)
		}
		if !m.Member(0, round) || !m.Member(1, round) || !m.Member(3, round) {
			t.Errorf("node %d dropped a live member", obs)
		}
		if !m.Agrees(bus.Membership(0), round) {
			t.Errorf("membership views disagree (node %d vs 0)", obs)
		}
	}
	if bus.Membership(0).Failures(2) == 0 {
		t.Error("no failures recorded for dead node")
	}
}

func TestGuardianBlocksBabbling(t *testing.T) {
	sched, bus, ctrls := newCluster(t, 4)
	bus.SetBabbling(3, true)
	runRounds(sched, bus.Cfg, 4)
	// Guardian blocked 3 foreign-slot attempts per round.
	if bus.GuardianBlocks != 12 {
		t.Errorf("GuardianBlocks = %d, want 12", bus.GuardianBlocks)
	}
	// No receiver saw any corruption: strong fault isolation (C3).
	for i, c := range ctrls {
		for j, st := range c.statuses {
			if st != FrameOK {
				t.Errorf("node %d slot %d status %v despite guardian", i, j, st)
			}
		}
	}
}

func TestBabblingWithoutGuardianCorruptsBus(t *testing.T) {
	sched, bus, ctrls := newCluster(t, 4)
	bus.GuardianEnabled = false
	bus.SetBabbling(3, true)
	runRounds(sched, bus.Cfg, 2)
	corrupted := 0
	for _, st := range ctrls[0].statuses {
		if st == FrameCorrupted {
			corrupted++
		}
	}
	// Slots of nodes 0,1,2 are destroyed each round; node 3's own slot is fine.
	if corrupted != 6 {
		t.Errorf("corrupted slots = %d, want 6", corrupted)
	}
}

func TestTxFaultSeenByAllReceivers(t *testing.T) {
	sched, bus, ctrls := newCluster(t, 3)
	id := bus.AddTxFault(func(f *Frame) {
		if f.Sender == 1 {
			f.Status = FrameCorrupted
			f.CorruptBits = 3
		}
	})
	runRounds(sched, bus.Cfg, 1)
	for i, c := range ctrls {
		if c.statuses[1] != FrameCorrupted {
			t.Errorf("node %d saw %v for corrupted frame", i, c.statuses[1])
		}
	}
	bus.RemoveFault(id)
	runRounds(sched, bus.Cfg, 2)
	for i, c := range ctrls {
		if st := c.statuses[len(c.statuses)-2]; st != FrameOK {
			t.Errorf("node %d still sees fault after removal: %v", i, st)
		}
	}
}

func TestRxFaultAffectsOnlyOneReceiver(t *testing.T) {
	sched, bus, ctrls := newCluster(t, 3)
	// Inbound connector fault at node 2: it sees omissions from everyone.
	bus.AddRxFault(func(rcv NodeID, f *Frame, st FrameStatus) FrameStatus {
		if rcv == 2 {
			return FrameOmitted
		}
		return st
	})
	runRounds(sched, bus.Cfg, 2)
	for _, st := range ctrls[2].statuses {
		if st != FrameOmitted {
			t.Errorf("node 2 saw %v, want omitted", st)
		}
	}
	for _, i := range []int{0, 1} {
		for _, st := range ctrls[i].statuses {
			if st != FrameOK {
				t.Errorf("node %d saw %v, want ok", i, st)
			}
		}
	}
}

func TestOutOfSyncSenderProducesTimingFailures(t *testing.T) {
	sched := sim.NewScheduler()
	cfg := UniformSchedule(4, 250*sim.Microsecond, 32)
	bus := NewBus(cfg, sched)
	rng := sim.NewRNG(5)
	bus.Clocks = clock.NewCluster(4, 50, 0, 20, 1, rng)
	ctrls := make([]*recController, 4)
	for i := range ctrls {
		ctrls[i] = &recController{id: NodeID(i), payload: []byte{byte(i)}}
		bus.Attach(NodeID(i), ctrls[i])
	}
	bus.Start()
	// Defective quartz on node 1.
	bus.Clocks.Oscillators[1].DriftPPM = 100000
	runRounds(sched, cfg, 50)
	if bus.Clocks.InSync(1) {
		t.Fatal("node 1 never lost sync")
	}
	// After sync loss, receivers classify node 1's frames as timing failures.
	last := ctrls[0].statuses[len(ctrls[0].statuses)-3] // node 1 slot in last round
	if last != FrameTiming {
		t.Errorf("status from out-of-sync sender = %v, want timing", last)
	}
	round := bus.Round()
	if bus.Membership(0).Member(1, round) {
		t.Error("out-of-sync node still a member")
	}
}

func TestPayloadTruncatedToConfiguredSize(t *testing.T) {
	sched := sim.NewScheduler()
	cfg := UniformSchedule(2, 250*sim.Microsecond, 4)
	bus := NewBus(cfg, sched)
	big := &recController{id: 0, payload: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	small := &recController{id: 1, payload: []byte{9}}
	bus.Attach(0, big)
	bus.Attach(1, small)
	var got []byte
	bus.Observe(func(f *Frame, _ []FrameStatus) {
		if f.Sender == 0 {
			got = f.Payload
		}
	})
	bus.Start()
	runRounds(sched, cfg, 1)
	if len(got) != 4 {
		t.Errorf("payload length = %d, want truncation to 4", len(got))
	}
}

func TestObserverSeesPerReceiverStatus(t *testing.T) {
	sched, bus, _ := newCluster(t, 3)
	bus.AddRxFault(func(rcv NodeID, f *Frame, st FrameStatus) FrameStatus {
		if rcv == 1 && f.Sender == 0 {
			return FrameCorrupted
		}
		return st
	})
	var sawSplit bool
	bus.Observe(func(f *Frame, per []FrameStatus) {
		if f.Sender == 0 && per[1] == FrameCorrupted && per[0] == FrameOK && per[2] == FrameOK {
			sawSplit = true
		}
	})
	runRounds(sched, bus.Cfg, 1)
	if !sawSplit {
		t.Error("observer did not see per-receiver status split")
	}
}

func TestAttachAfterStartPanics(t *testing.T) {
	sched := sim.NewScheduler()
	bus := NewBus(UniformSchedule(1, 250, 8), sched)
	bus.Attach(0, &recController{})
	bus.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("Attach after Start did not panic")
		}
	}()
	bus.Attach(1, &recController{})
}

func TestStartWithMissingControllerPanics(t *testing.T) {
	sched := sim.NewScheduler()
	bus := NewBus(UniformSchedule(2, 250, 8), sched)
	bus.Attach(0, &recController{})
	defer func() {
		if recover() == nil {
			t.Fatal("Start with unattached node did not panic")
		}
	}()
	bus.Start()
}

func TestSlotTimingIsPredictable(t *testing.T) {
	// Core service C1: transport latency is exactly the schedule.
	sched := sim.NewScheduler()
	cfg := UniformSchedule(4, 250*sim.Microsecond, 8)
	bus := NewBus(cfg, sched)
	for i := 0; i < 4; i++ {
		bus.Attach(NodeID(i), &recController{payload: []byte{1}})
	}
	var times []sim.Time
	bus.Observe(func(f *Frame, _ []FrameStatus) { times = append(times, f.At) })
	bus.Start()
	runRounds(sched, cfg, 2)
	for i, at := range times {
		want := sim.Time(int64(i) * 250)
		if at != want {
			t.Fatalf("slot %d fired at %v, want %v", i, at, want)
		}
	}
}

func TestSetAliveUnattachedPanics(t *testing.T) {
	_, bus, _ := newCluster(t, 2)
	cases := []struct {
		name string
		call func()
	}{
		{"SetAlive", func() { bus.SetAlive(NodeID(7), false) }},
		{"SetBabbling", func() { bus.SetBabbling(NodeID(7), true) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s on unattached node did not panic", tc.name)
				}
			}()
			tc.call()
		})
	}
	// Attached nodes stay togglable.
	bus.SetAlive(1, false)
	bus.SetBabbling(1, true)
	bus.SetBabbling(1, false)
	bus.SetAlive(1, true)
}
