package tt

import "decos/internal/sim"

// FrameStatus classifies how a frame was observed at a receiver. It is the
// LIF-visible failure-mode vocabulary of the core network: a correct frame,
// an omission (nothing arrived in the slot), a value failure (content does
// not conform to its specification — modelled as a CRC/coding violation),
// or a timing failure (the send instant was outside the slot's receive
// window, e.g. because the sender lost clock synchronization).
type FrameStatus uint8

const (
	// FrameOK is a frame received correctly within its slot.
	FrameOK FrameStatus = iota
	// FrameOmitted means no frame was observed in the slot.
	FrameOmitted
	// FrameCorrupted means a frame arrived but failed its coding check
	// (value-domain failure at the core-network level).
	FrameCorrupted
	// FrameTiming means a frame arrived outside its receive window
	// (time-domain failure).
	FrameTiming
)

func (s FrameStatus) String() string {
	switch s {
	case FrameOK:
		return "ok"
	case FrameOmitted:
		return "omitted"
	case FrameCorrupted:
		return "corrupted"
	case FrameTiming:
		return "timing"
	default:
		return "invalid"
	}
}

// Failed reports whether the status represents any deviation from correct
// reception.
func (s FrameStatus) Failed() bool { return s != FrameOK }

// Frame is one TDMA broadcast transmission.
type Frame struct {
	// Round and Slot locate the frame in the TDMA schedule.
	Round int64
	Slot  int
	// Sender is the node the schedule assigns to this slot.
	Sender NodeID
	// At is the nominal global start time of the slot.
	At sim.Time
	// Payload is the frame contents handed down by the virtual network
	// layer. Nil when the sender omitted the frame.
	Payload []byte
	// Status is the frame's condition as transmitted (after sender-side
	// faults). Individual receivers may observe a worse status through
	// receiver-side faults.
	Status FrameStatus
	// CorruptBits is the number of payload bits flipped by a value fault,
	// recorded so the fault-pattern analysis can distinguish single-bit
	// SEUs from multi-bit EMI corruption (paper Fig. 8, value dimension).
	CorruptBits int
}
