package tt

import (
	"testing"
	"testing/quick"

	"decos/internal/sim"
)

// Property: all live nodes' membership views agree at every round boundary
// for any pattern of node deaths and revivals — core service C4.
func TestMembershipConsistencyProperty(t *testing.T) {
	f := func(seed uint64, killPattern, reviveRound uint8) bool {
		sched := sim.NewScheduler()
		cfg := UniformSchedule(4, 250*sim.Microsecond, 16)
		bus := NewBus(cfg, sched)
		ctrls := make([]*recController, 4)
		for i := range ctrls {
			ctrls[i] = &recController{id: NodeID(i), payload: []byte{byte(i)}}
			bus.Attach(NodeID(i), ctrls[i])
		}
		consistent := true
		bus.OnRound(func(round int64) {
			var ref *Membership
			for n := NodeID(0); n < 4; n++ {
				if !bus.Alive(n) {
					continue
				}
				m := bus.Membership(n)
				if ref == nil {
					ref = m
					continue
				}
				if !m.Agrees(ref, round) {
					consistent = false
				}
			}
		})
		bus.Start()

		// Deterministic kill/revive schedule derived from the inputs.
		victim := NodeID(killPattern % 3)
		killAt := int64(killPattern%17) + 1
		reviveAt := killAt + int64(reviveRound%13) + 1
		sched.At(cfg.SlotStart(killAt, 0), "kill", func() { bus.SetAlive(victim, false) })
		sched.At(cfg.SlotStart(reviveAt, 0), "revive", func() { bus.SetAlive(victim, true) })

		sched.RunUntil(sim.Time(40*cfg.RoundDuration().Micros() - 1))
		return consistent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the guardian keeps foreign slots untouched for any set of
// babbling nodes — core service C3 holds regardless of how many FCRs
// babble simultaneously.
func TestGuardianIsolationProperty(t *testing.T) {
	f := func(babblers uint8) bool {
		sched := sim.NewScheduler()
		cfg := UniformSchedule(4, 250*sim.Microsecond, 16)
		bus := NewBus(cfg, sched)
		for i := 0; i < 4; i++ {
			bus.Attach(NodeID(i), &recController{id: NodeID(i), payload: []byte{byte(i)}})
		}
		babbling := map[NodeID]bool{}
		for n := NodeID(0); n < 4; n++ {
			if babblers&(1<<uint(n)) != 0 {
				bus.SetBabbling(n, true)
				babbling[n] = true
			}
		}
		ok := true
		bus.Observe(func(fr *Frame, _ []FrameStatus) {
			// Non-babbling senders' frames must stay intact.
			if !babbling[fr.Sender] && fr.Status.Failed() {
				ok = false
			}
		})
		bus.Start()
		sched.RunUntil(sim.Time(10*cfg.RoundDuration().Micros() - 1))
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
