package tt

// Membership is one node's view of which cluster nodes are currently
// operational — core service C4 (consistent diagnosis of failing nodes).
// Because the medium is a broadcast bus and every correct node sees the same
// frame stream, correct nodes' membership views agree; the consistency tests
// in this package assert exactly that.
//
// The per-sender records live in dense slices indexed by NodeID — Record is
// on the per-slot hot path of every receiver.
type Membership struct {
	nodes     []NodeID
	lastOK    []int64 // indexed by NodeID, -1 = never
	lastSeen  []int64
	failCount []int
}

// NewMembership creates a view covering the given nodes.
func NewMembership(nodes []NodeID) *Membership {
	size := 0
	for _, n := range nodes {
		if int(n)+1 > size {
			size = int(n) + 1
		}
	}
	m := &Membership{
		nodes:     append([]NodeID(nil), nodes...),
		lastOK:    make([]int64, size),
		lastSeen:  make([]int64, size),
		failCount: make([]int, size),
	}
	for i := range m.lastOK {
		m.lastOK[i] = -1
		m.lastSeen[i] = -1
	}
	return m
}

// Record notes the observed status of sender's frame in the given round.
func (m *Membership) Record(sender NodeID, round int64, st FrameStatus) {
	if sender < 0 || int(sender) >= len(m.lastSeen) {
		return
	}
	m.lastSeen[sender] = round
	if st == FrameOK {
		m.lastOK[sender] = round
	} else {
		m.failCount[sender]++
	}
}

// Member reports whether node n is considered operational as of the given
// round: its most recent observed frame was correct.
func (m *Membership) Member(n NodeID, round int64) bool {
	if n < 0 || int(n) >= len(m.lastSeen) {
		return false
	}
	seen := m.lastSeen[n]
	if seen < 0 {
		return false
	}
	return m.lastOK[n] == seen
}

// LastOK returns the last round in which node n's frame was received
// correctly, or -1.
func (m *Membership) LastOK(n NodeID) int64 {
	if n < 0 || int(n) >= len(m.lastOK) {
		return -1
	}
	return m.lastOK[n]
}

// Failures returns the cumulative count of failed frames observed from n.
func (m *Membership) Failures(n NodeID) int {
	if n < 0 || int(n) >= len(m.failCount) {
		return 0
	}
	return m.failCount[n]
}

// Vector returns the membership bit per node (in the node order supplied at
// construction) as of the given round.
func (m *Membership) Vector(round int64) []bool {
	v := make([]bool, len(m.nodes))
	for i, n := range m.nodes {
		v[i] = m.Member(n, round)
	}
	return v
}

// Agrees reports whether two membership views coincide for the given round.
func (m *Membership) Agrees(other *Membership, round int64) bool {
	if len(m.nodes) != len(other.nodes) {
		return false
	}
	a, b := m.Vector(round), other.Vector(round)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
