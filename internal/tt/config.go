// Package tt implements the time-triggered core network of the DECOS
// integrated architecture: a TDMA broadcast bus with a static slot schedule,
// slot enforcement (the bus-guardian function), a consistent membership
// service, and hooks through which the fault-injection layer perturbs
// transmission and reception.
//
// The package provides the four core services the paper's waist-line
// architecture requires of any base architecture (Section II-B):
//
//	C1  predictable transport of messages   — the TDMA schedule itself
//	C2  fault-tolerant clock sync           — via internal/clock, driven here
//	C3  strong fault isolation              — slot guardian + per-node FCRs
//	C4  consistent diagnosis of failing nodes — the membership service
package tt

import (
	"fmt"

	"decos/internal/sim"
)

// NodeID identifies a node (a DECOS component's communication controller) on
// the core network.
type NodeID int

// NoNode marks an unassigned slot.
const NoNode NodeID = -1

// Config is the static TDMA configuration of a cluster. It is immutable
// during a run, matching the pre-run configuration of time-triggered
// communication controllers.
type Config struct {
	// SlotDuration is the length of one TDMA slot.
	SlotDuration sim.Duration
	// Slots maps slot index within a round to the sending node. A node may
	// own several slots; NoNode leaves a slot idle.
	Slots []NodeID
	// PayloadBytes is the frame payload size available to the virtual
	// network layer per slot.
	PayloadBytes int
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.SlotDuration <= 0 {
		return fmt.Errorf("tt: non-positive slot duration %v", c.SlotDuration)
	}
	if len(c.Slots) == 0 {
		return fmt.Errorf("tt: empty slot schedule")
	}
	if c.PayloadBytes <= 0 {
		return fmt.Errorf("tt: non-positive payload size %d", c.PayloadBytes)
	}
	owned := false
	for _, n := range c.Slots {
		if n != NoNode {
			owned = true
			if n < 0 {
				return fmt.Errorf("tt: invalid node id %d in schedule", n)
			}
		}
	}
	if !owned {
		return fmt.Errorf("tt: schedule assigns no slots")
	}
	return nil
}

// RoundDuration returns the length of one TDMA round.
func (c Config) RoundDuration() sim.Duration {
	return c.SlotDuration * sim.Duration(len(c.Slots))
}

// SlotStart returns the global start time of the given slot of the given
// round.
func (c Config) SlotStart(round int64, slot int) sim.Time {
	return sim.Time((round*int64(len(c.Slots)) + int64(slot)) * c.SlotDuration.Micros())
}

// SlotsOf returns the slot indices owned by node n.
func (c Config) SlotsOf(n NodeID) []int {
	var out []int
	for i, owner := range c.Slots {
		if owner == n {
			out = append(out, i)
		}
	}
	return out
}

// Nodes returns the sorted set of node ids that own at least one slot.
func (c Config) Nodes() []NodeID {
	seen := map[NodeID]bool{}
	var out []NodeID
	for _, n := range c.Slots {
		if n != NoNode && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	// Insertion sort: node counts are tiny.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// UniformSchedule returns a Config in which nodes 0..n-1 each own exactly one
// slot, in node order.
func UniformSchedule(n int, slotDur sim.Duration, payloadBytes int) Config {
	slots := make([]NodeID, n)
	for i := range slots {
		slots[i] = NodeID(i)
	}
	return Config{SlotDuration: slotDur, Slots: slots, PayloadBytes: payloadBytes}
}
