package tt

import (
	"fmt"

	"decos/internal/clock"
	"decos/internal/sim"
)

// Controller is the interface a node (a DECOS component's communication
// controller plus application layer) presents to the core network.
type Controller interface {
	// BuildFrame is called when one of the node's slots begins; it returns
	// the frame payload (at most Config.PayloadBytes; longer payloads are
	// truncated by the guardian, shorter ones are allowed).
	BuildFrame(round int64, slot int) []byte
	// OnSlot is called on every node for every slot with the frame as this
	// node received it. A node also observes its own transmissions
	// (loop-back), as time-triggered controllers do.
	OnSlot(f Frame, status FrameStatus)
	// OnRoundEnd is called after the final slot of each round, in node-id
	// order. Application jobs execute here.
	OnRoundEnd(round int64)
}

// TxFault perturbs a frame on the sender side / the shared medium. It may
// modify the frame in place (set Status, clear Payload, set CorruptBits).
// All receivers observe the perturbed frame.
type TxFault func(f *Frame)

// RxFault perturbs reception at one receiver. It receives the frame as
// transmitted and the status as seen so far, and returns the (possibly
// degraded) status. Receiver-side faults model inbound connector problems.
type RxFault func(receiver NodeID, f *Frame, status FrameStatus) FrameStatus

// SlotObserver is called once per slot after delivery, with the per-receiver
// statuses. The diagnostic layer and tests attach here.
type SlotObserver func(f *Frame, perReceiver map[NodeID]FrameStatus)

// Bus is the shared TDMA broadcast medium of one cluster, together with the
// slot guardian and the membership service.
type Bus struct {
	Cfg   Config
	Sched *sim.Scheduler

	// Clocks, when non-nil, is resynchronized once per round; a sender that
	// is out of sync produces timing-failed frames until readmitted.
	Clocks *clock.Cluster

	nodes      map[NodeID]Controller
	nodeOrder  []NodeID
	alive      map[NodeID]bool
	babbling   map[NodeID]bool
	txFaults   map[int]TxFault
	rxFaults   map[int]RxFault
	observers  []SlotObserver
	roundHooks []func(round int64)
	nextHookID int

	round int64

	// GuardianEnabled controls slot enforcement. With the guardian off
	// (ablation A3 territory), a babbling node corrupts every slot.
	GuardianEnabled bool
	// GuardianBlocks counts transmission attempts outside the sender's slot
	// that the guardian suppressed.
	GuardianBlocks int

	membership map[NodeID]*Membership

	running bool
}

// NewBus creates a bus for the given configuration. It panics on an invalid
// configuration: cluster configs are static and checked at build time.
func NewBus(cfg Config, sched *sim.Scheduler) *Bus {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Bus{
		Cfg:             cfg,
		Sched:           sched,
		nodes:           make(map[NodeID]Controller),
		alive:           make(map[NodeID]bool),
		babbling:        make(map[NodeID]bool),
		txFaults:        make(map[int]TxFault),
		rxFaults:        make(map[int]RxFault),
		GuardianEnabled: true,
		membership:      make(map[NodeID]*Membership),
	}
}

// Attach registers the controller for node n. All nodes must be attached
// before Start.
func (b *Bus) Attach(n NodeID, c Controller) {
	if b.running {
		panic("tt: Attach after Start")
	}
	if _, dup := b.nodes[n]; dup {
		panic(fmt.Sprintf("tt: duplicate controller for node %d", n))
	}
	b.nodes[n] = c
	b.nodeOrder = append(b.nodeOrder, n)
	for i := len(b.nodeOrder) - 1; i > 0 && b.nodeOrder[i] < b.nodeOrder[i-1]; i-- {
		b.nodeOrder[i], b.nodeOrder[i-1] = b.nodeOrder[i-1], b.nodeOrder[i]
	}
	b.alive[n] = true
	b.membership[n] = NewMembership(b.Cfg.Nodes())
}

// SetAlive powers a node on or off. A powered-off node omits all its frames
// (fail-silent), the failure mode a correct architecture converts arbitrary
// component failures into at the interface.
func (b *Bus) SetAlive(n NodeID, alive bool) { b.alive[n] = alive }

// Alive reports whether node n is powered.
func (b *Bus) Alive(n NodeID) bool { return b.alive[n] }

// SetBabbling marks a node as a babbling idiot: it attempts to transmit in
// every slot. With the guardian enabled the attempts are blocked and
// counted; with it disabled they corrupt the legitimate sender's frame.
func (b *Bus) SetBabbling(n NodeID, babbling bool) { b.babbling[n] = babbling }

// AddTxFault installs a sender-side fault hook and returns a handle for
// removal.
func (b *Bus) AddTxFault(f TxFault) int {
	id := b.nextHookID
	b.nextHookID++
	b.txFaults[id] = f
	return id
}

// AddRxFault installs a receiver-side fault hook and returns a handle.
func (b *Bus) AddRxFault(f RxFault) int {
	id := b.nextHookID
	b.nextHookID++
	b.rxFaults[id] = f
	return id
}

// RemoveFault uninstalls a fault hook by handle. Unknown handles are
// ignored.
func (b *Bus) RemoveFault(id int) {
	delete(b.txFaults, id)
	delete(b.rxFaults, id)
}

// Observe installs a slot observer.
func (b *Bus) Observe(o SlotObserver) { b.observers = append(b.observers, o) }

// OnRound installs a callback fired after every round completes (after all
// controllers' OnRoundEnd), regardless of node liveness.
func (b *Bus) OnRound(f func(round int64)) { b.roundHooks = append(b.roundHooks, f) }

// Membership returns node n's membership view.
func (b *Bus) Membership(n NodeID) *Membership { return b.membership[n] }

// Round returns the index of the round currently in progress (or about to
// start).
func (b *Bus) Round() int64 { return b.round }

// Start schedules the first slot. The bus then self-schedules forever; run
// the scheduler with RunUntil to bound the simulation.
func (b *Bus) Start() {
	if b.running {
		panic("tt: Start called twice")
	}
	for _, n := range b.Cfg.Nodes() {
		if _, ok := b.nodes[n]; !ok {
			panic(fmt.Sprintf("tt: schedule assigns slots to unattached node %d", n))
		}
	}
	b.running = true
	b.scheduleSlot(0, 0)
}

func (b *Bus) scheduleSlot(round int64, slot int) {
	at := b.Cfg.SlotStart(round, slot)
	// A static event name: slot scheduling is the simulator's hottest
	// allocation site and the coordinates are recoverable from the time.
	b.Sched.At(at, "tt.slot", func() {
		b.fireSlot(round, slot)
	})
}

func (b *Bus) fireSlot(round int64, slot int) {
	b.round = round
	sender := b.Cfg.Slots[slot]
	f := &Frame{
		Round:  round,
		Slot:   slot,
		Sender: sender,
		At:     b.Sched.Now(),
		Status: FrameOK,
	}

	// Sender side.
	switch {
	case sender == NoNode:
		f.Status = FrameOmitted
	case !b.alive[sender]:
		f.Status = FrameOmitted
	case b.Clocks != nil && int(sender) < len(b.Clocks.Oscillators) && !b.Clocks.InSync(int(sender)):
		// A sender that lost clock synchronization transmits outside its
		// receive window: receivers classify the frame as a timing failure.
		f.Status = FrameTiming
		f.Payload = b.nodes[sender].BuildFrame(round, slot)
	default:
		f.Payload = b.nodes[sender].BuildFrame(round, slot)
		if len(f.Payload) > b.Cfg.PayloadBytes {
			f.Payload = f.Payload[:b.Cfg.PayloadBytes]
		}
	}

	// Babbling idiots attempt to transmit in this (foreign) slot.
	for _, n := range b.nodeOrder {
		if !b.babbling[n] || n == sender || !b.alive[n] {
			continue
		}
		if b.GuardianEnabled {
			b.GuardianBlocks++
			continue
		}
		// Without slot enforcement the medium sees two simultaneous
		// transmissions: the legitimate frame is destroyed.
		if f.Status == FrameOK {
			f.Status = FrameCorrupted
			f.CorruptBits += 8 * len(f.Payload)
		}
	}

	// Sender-side / medium fault hooks, in insertion order.
	for id := 0; id < b.nextHookID; id++ {
		if tf, ok := b.txFaults[id]; ok {
			tf(f)
		}
	}

	// Delivery: every attached node observes the slot.
	per := make(map[NodeID]FrameStatus, len(b.nodeOrder))
	for _, n := range b.nodeOrder {
		st := f.Status
		for id := 0; id < b.nextHookID; id++ {
			if rf, ok := b.rxFaults[id]; ok {
				st = rf(n, f, st)
			}
		}
		per[n] = st
		if b.alive[n] {
			b.membership[n].Record(f.Sender, round, st)
			b.nodes[n].OnSlot(*f, st)
		}
	}

	for _, o := range b.observers {
		o(f, per)
	}

	// Advance the schedule.
	if slot+1 < len(b.Cfg.Slots) {
		b.scheduleSlot(round, slot+1)
		return
	}
	b.endRound(round)
	b.scheduleSlot(round+1, 0)
}

func (b *Bus) endRound(round int64) {
	if b.Clocks != nil {
		b.Clocks.Resync(b.Sched.Now())
	}
	for _, n := range b.nodeOrder {
		if b.alive[n] {
			b.nodes[n].OnRoundEnd(round)
		}
	}
	for _, f := range b.roundHooks {
		f(round)
	}
}
