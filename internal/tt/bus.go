package tt

import (
	"fmt"

	"decos/internal/clock"
	"decos/internal/sim"
)

// Controller is the interface a node (a DECOS component's communication
// controller plus application layer) presents to the core network.
type Controller interface {
	// BuildFrame is called when one of the node's slots begins; it returns
	// the frame payload (at most Config.PayloadBytes; longer payloads are
	// truncated by the guardian, shorter ones are allowed).
	BuildFrame(round int64, slot int) []byte
	// OnSlot is called on every node for every slot with the frame as this
	// node received it. A node also observes its own transmissions
	// (loop-back), as time-triggered controllers do.
	OnSlot(f Frame, status FrameStatus)
	// OnRoundEnd is called after the final slot of each round, in node-id
	// order. Application jobs execute here.
	OnRoundEnd(round int64)
}

// TxFault perturbs a frame on the sender side / the shared medium. It may
// modify the frame in place (set Status, clear Payload, set CorruptBits).
// All receivers observe the perturbed frame.
type TxFault func(f *Frame)

// RxFault perturbs reception at one receiver. It receives the frame as
// transmitted and the status as seen so far, and returns the (possibly
// degraded) status. Receiver-side faults model inbound connector problems.
type RxFault func(receiver NodeID, f *Frame, status FrameStatus) FrameStatus

// SlotObserver is called once per slot after delivery, with the per-receiver
// statuses indexed by NodeID (entries for unattached ids are meaningless).
// The diagnostic layer and tests attach here. Both the frame and the status
// slice are reused across slots: they are valid only for the duration of the
// callback and must be copied if retained.
type SlotObserver func(f *Frame, perReceiver []FrameStatus)

type txHook struct {
	id int
	fn TxFault
}

type rxHook struct {
	id int
	fn RxFault
}

// Bus is the shared TDMA broadcast medium of one cluster, together with the
// slot guardian and the membership service.
type Bus struct {
	Cfg   Config
	Sched *sim.Scheduler

	// Clocks, when non-nil, is resynchronized once per round; a sender that
	// is out of sync produces timing-failed frames until readmitted.
	Clocks *clock.Cluster

	// Dense per-node tables indexed by NodeID; nodes[n] == nil means
	// unattached.
	nodes      []Controller
	alive      []bool
	babbling   []bool
	membership []*Membership

	nodeOrder []NodeID // attached nodes, ascending
	babblers  int      // number of nodes currently babbling

	txFaults   []txHook // insertion (== id) order
	rxFaults   []rxHook
	observers  []SlotObserver
	roundHooks []func(round int64)
	nextHookID int

	round int64

	// GuardianEnabled controls slot enforcement. With the guardian off
	// (ablation A3 territory), a babbling node corrupts every slot.
	GuardianEnabled bool
	// GuardianBlocks counts transmission attempts outside the sender's slot
	// that the guardian suppressed.
	GuardianBlocks int

	// statusCounts tallies transmitted frames by FrameStatus (as seen on
	// the medium, before receiver-side degradation) — the bus's own
	// telemetry, maintained as plain increments on the slot path.
	statusCounts [4]int64

	// Per-slot scratch, reused every slot (see SlotObserver).
	frame  Frame
	per    []FrameStatus
	slotFn sim.BoundFn

	running bool
}

// NewBus creates a bus for the given configuration. It panics on an invalid
// configuration: cluster configs are static and checked at build time.
func NewBus(cfg Config, sched *sim.Scheduler) *Bus {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	b := &Bus{
		Cfg:             cfg,
		Sched:           sched,
		GuardianEnabled: true,
	}
	b.slotFn = func(round, slot int64) { b.fireSlot(round, int(slot)) }
	return b
}

// grow extends the dense node tables to cover id n.
func (b *Bus) grow(n NodeID) {
	for len(b.nodes) <= int(n) {
		b.nodes = append(b.nodes, nil)
		b.alive = append(b.alive, false)
		b.babbling = append(b.babbling, false)
		b.membership = append(b.membership, nil)
		b.per = append(b.per, FrameOK)
	}
}

// attached reports whether node n has a controller.
func (b *Bus) attached(n NodeID) bool {
	return n >= 0 && int(n) < len(b.nodes) && b.nodes[n] != nil
}

// Attach registers the controller for node n. All nodes must be attached
// before Start.
func (b *Bus) Attach(n NodeID, c Controller) {
	if b.running {
		panic("tt: Attach after Start")
	}
	if n < 0 {
		panic(fmt.Sprintf("tt: invalid node id %d", n))
	}
	b.grow(n)
	if b.nodes[n] != nil {
		panic(fmt.Sprintf("tt: duplicate controller for node %d", n))
	}
	b.nodes[n] = c
	b.nodeOrder = append(b.nodeOrder, n)
	for i := len(b.nodeOrder) - 1; i > 0 && b.nodeOrder[i] < b.nodeOrder[i-1]; i-- {
		b.nodeOrder[i], b.nodeOrder[i-1] = b.nodeOrder[i-1], b.nodeOrder[i]
	}
	b.alive[n] = true
	b.membership[n] = NewMembership(b.Cfg.Nodes())
}

// SetAlive powers a node on or off. A powered-off node omits all its frames
// (fail-silent), the failure mode a correct architecture converts arbitrary
// component failures into at the interface. The node must be attached:
// powering phantom nodes is always a harness bug, so it panics.
func (b *Bus) SetAlive(n NodeID, alive bool) {
	if !b.attached(n) {
		panic(fmt.Sprintf("tt: SetAlive on unattached node %d", n))
	}
	b.alive[n] = alive
}

// Alive reports whether node n is powered. Unattached ids report false.
func (b *Bus) Alive(n NodeID) bool {
	return n >= 0 && int(n) < len(b.alive) && b.alive[n]
}

// SetBabbling marks a node as a babbling idiot: it attempts to transmit in
// every slot. With the guardian enabled the attempts are blocked and
// counted; with it disabled they corrupt the legitimate sender's frame.
// Like SetAlive, the node must be attached.
func (b *Bus) SetBabbling(n NodeID, babbling bool) {
	if !b.attached(n) {
		panic(fmt.Sprintf("tt: SetBabbling on unattached node %d", n))
	}
	if b.babbling[n] != babbling {
		if babbling {
			b.babblers++
		} else {
			b.babblers--
		}
	}
	b.babbling[n] = babbling
}

// AddTxFault installs a sender-side fault hook and returns a handle for
// removal.
func (b *Bus) AddTxFault(f TxFault) int {
	id := b.nextHookID
	b.nextHookID++
	b.txFaults = append(b.txFaults, txHook{id: id, fn: f})
	return id
}

// AddRxFault installs a receiver-side fault hook and returns a handle.
func (b *Bus) AddRxFault(f RxFault) int {
	id := b.nextHookID
	b.nextHookID++
	b.rxFaults = append(b.rxFaults, rxHook{id: id, fn: f})
	return id
}

// RemoveFault uninstalls a fault hook by handle. Unknown handles are
// ignored.
func (b *Bus) RemoveFault(id int) {
	for i, h := range b.txFaults {
		if h.id == id {
			b.txFaults = append(b.txFaults[:i], b.txFaults[i+1:]...)
			return
		}
	}
	for i, h := range b.rxFaults {
		if h.id == id {
			b.rxFaults = append(b.rxFaults[:i], b.rxFaults[i+1:]...)
			return
		}
	}
}

// Observe installs a slot observer.
func (b *Bus) Observe(o SlotObserver) { b.observers = append(b.observers, o) }

// OnRound installs a callback fired after every round completes (after all
// controllers' OnRoundEnd), regardless of node liveness.
func (b *Bus) OnRound(f func(round int64)) { b.roundHooks = append(b.roundHooks, f) }

// Membership returns node n's membership view (nil for unattached ids).
func (b *Bus) Membership(n NodeID) *Membership {
	if n < 0 || int(n) >= len(b.membership) {
		return nil
	}
	return b.membership[n]
}

// Round returns the index of the round currently in progress (or about to
// start).
func (b *Bus) Round() int64 { return b.round }

// Start schedules the first slot. The bus then self-schedules forever; run
// the scheduler with RunUntil to bound the simulation.
func (b *Bus) Start() {
	if b.running {
		panic("tt: Start called twice")
	}
	for _, n := range b.Cfg.Nodes() {
		if !b.attached(n) {
			panic(fmt.Sprintf("tt: schedule assigns slots to unattached node %d", n))
		}
	}
	b.running = true
	// A static event name: slot scheduling is the simulator's hottest
	// path and the coordinates are recoverable from the time.
	b.Sched.AtFunc(b.Cfg.SlotStart(0, 0), "tt.slot", b.slotFn, 0, 0)
}

// fireSlot runs the slot at (round, slot), then as many consecutive slots as
// the scheduler lets it run inline: when no foreign event is due before the
// next slot's start time, going back through the event queue would be a
// no-op, so the bus advances the clock directly and keeps going.
func (b *Bus) fireSlot(round int64, slot int) {
	for {
		b.runSlot(round, slot)
		if slot+1 < len(b.Cfg.Slots) {
			slot++
		} else {
			b.endRound(round)
			round++
			slot = 0
		}
		at := b.Cfg.SlotStart(round, slot)
		if !b.Sched.InlineTo(at) {
			b.Sched.AtFunc(at, "tt.slot", b.slotFn, round, int64(slot))
			return
		}
	}
}

func (b *Bus) runSlot(round int64, slot int) {
	b.round = round
	sender := b.Cfg.Slots[slot]
	f := &b.frame
	*f = Frame{
		Round:  round,
		Slot:   slot,
		Sender: sender,
		At:     b.Sched.Now(),
		Status: FrameOK,
	}

	// Sender side.
	switch {
	case sender == NoNode:
		f.Status = FrameOmitted
	case !b.alive[sender]:
		f.Status = FrameOmitted
	case b.Clocks != nil && int(sender) < len(b.Clocks.Oscillators) && !b.Clocks.InSync(int(sender)):
		// A sender that lost clock synchronization transmits outside its
		// receive window: receivers classify the frame as a timing failure.
		f.Status = FrameTiming
		f.Payload = b.nodes[sender].BuildFrame(round, slot)
	default:
		f.Payload = b.nodes[sender].BuildFrame(round, slot)
		if len(f.Payload) > b.Cfg.PayloadBytes {
			f.Payload = f.Payload[:b.Cfg.PayloadBytes]
		}
	}

	// Babbling idiots attempt to transmit in this (foreign) slot.
	if b.babblers > 0 {
		for _, n := range b.nodeOrder {
			if !b.babbling[n] || n == sender || !b.alive[n] {
				continue
			}
			if b.GuardianEnabled {
				b.GuardianBlocks++
				continue
			}
			// Without slot enforcement the medium sees two simultaneous
			// transmissions: the legitimate frame is destroyed.
			if f.Status == FrameOK {
				f.Status = FrameCorrupted
				f.CorruptBits += 8 * len(f.Payload)
			}
		}
	}

	// Sender-side / medium fault hooks, in insertion order.
	for _, h := range b.txFaults {
		h.fn(f)
	}

	// Delivery: every attached node observes the slot.
	per := b.per
	for _, n := range b.nodeOrder {
		st := f.Status
		for _, h := range b.rxFaults {
			st = h.fn(n, f, st)
		}
		per[n] = st
		if b.alive[n] {
			b.membership[n].Record(f.Sender, round, st)
			b.nodes[n].OnSlot(*f, st)
		}
	}

	for _, o := range b.observers {
		o(f, per)
	}

	if int(f.Status) < len(b.statusCounts) {
		b.statusCounts[f.Status]++
	}
}

// FrameCounts are the bus's lifetime frame tallies by transmitted status,
// plus the guardian's suppression count.
type FrameCounts struct {
	Total, OK, Omitted, Corrupted, Timing int64
	GuardianBlocks                        int64
}

// FrameCounts returns the frame tallies. Not safe for use concurrently
// with the (single-threaded) simulation loop.
func (b *Bus) FrameCounts() FrameCounts {
	c := FrameCounts{
		OK:             b.statusCounts[FrameOK],
		Omitted:        b.statusCounts[FrameOmitted],
		Corrupted:      b.statusCounts[FrameCorrupted],
		Timing:         b.statusCounts[FrameTiming],
		GuardianBlocks: int64(b.GuardianBlocks),
	}
	c.Total = c.OK + c.Omitted + c.Corrupted + c.Timing
	return c
}

func (b *Bus) endRound(round int64) {
	if b.Clocks != nil {
		b.Clocks.Resync(b.Sched.Now())
	}
	for _, n := range b.nodeOrder {
		if b.alive[n] {
			b.nodes[n].OnRoundEnd(round)
		}
	}
	for _, f := range b.roundHooks {
		f(round)
	}
}
