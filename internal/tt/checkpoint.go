package tt

import (
	"fmt"
	"sort"

	"decos/internal/ckpt"
)

// Checkpointing of the TDMA bus. A checkpoint is taken inside a round
// hook — after the last slot of round R has been delivered and every
// controller's OnRoundEnd has run, before the slot chain event for round
// R+1 exists. The bus's semantic state at that boundary is numeric:
// liveness, babbling flags, guardian tallies, per-node membership
// records. Fault hooks (tx/rx filters) are closures and are restored by
// their owner, the fault injector, through InstallTxFault/InstallRxFault
// with their original ids — hook ids order the filter composition, so
// preserving them preserves frame perturbation semantics exactly.

// Snapshot serializes the bus's mutable state.
func (b *Bus) Snapshot(e *ckpt.Encoder) {
	e.Varint(b.round)
	e.Int(b.nextHookID)
	e.Bool(b.GuardianEnabled)
	e.Int(b.GuardianBlocks)
	for _, c := range b.statusCounts {
		e.Varint(c)
	}
	e.Int(len(b.nodeOrder))
	for _, n := range b.nodeOrder {
		e.Int(int(n))
		e.Bool(b.alive[n])
		e.Bool(b.babbling[n])
		m := b.membership[n]
		e.Int(len(m.lastOK))
		for i := range m.lastOK {
			e.Varint(m.lastOK[i])
			e.Varint(m.lastSeen[i])
			e.Int(m.failCount[i])
		}
	}
}

// Restore overwrites a freshly built (attached and started) bus's state.
// It does not schedule anything; call Rearm after every subsystem's state
// — including the injector's hooks and timers — is back in place.
func (b *Bus) Restore(d *ckpt.Decoder) error {
	b.round = d.Varint()
	b.nextHookID = d.Int()
	b.GuardianEnabled = d.Bool()
	b.GuardianBlocks = d.Int()
	for i := range b.statusCounts {
		b.statusCounts[i] = d.Varint()
	}
	n := d.Len(1 << 16)
	if d.Err() == nil && n != len(b.nodeOrder) {
		return fmt.Errorf("tt: checkpoint has %d nodes, bus has %d", n, len(b.nodeOrder))
	}
	b.babblers = 0
	for i := 0; i < n && d.Err() == nil; i++ {
		id := NodeID(d.Int())
		if !b.attached(id) {
			return fmt.Errorf("tt: checkpoint names unattached node %d", id)
		}
		b.alive[id] = d.Bool()
		b.babbling[id] = d.Bool()
		if b.babbling[id] {
			b.babblers++
		}
		m := b.membership[id]
		sz := d.Len(1 << 16)
		if d.Err() == nil && sz != len(m.lastOK) {
			return fmt.Errorf("tt: checkpoint membership size %d, view has %d", sz, len(m.lastOK))
		}
		for j := 0; j < sz && d.Err() == nil; j++ {
			m.lastOK[j] = d.Varint()
			m.lastSeen[j] = d.Varint()
			m.failCount[j] = d.Int()
		}
	}
	return d.Err()
}

// Rearm schedules the slot chain continuation a checkpoint interrupted:
// the first slot of the earliest round starting at or after the restored
// clock. (Derived from the clock, not b.round: at a round boundary the
// next round is b.round+1, but a checkpoint taken at t=0 — before any
// slot ran — must re-arm round 0, where b.round is also 0.) It must be
// called exactly once per restore, last among the re-arming subsystems,
// so the slot event's queue position (freshest at its fire time) matches
// the uninterrupted run's.
func (b *Bus) Rearm() {
	if !b.running {
		panic("tt: Rearm before Start")
	}
	now := int64(b.Sched.Now())
	rd := b.Cfg.RoundDuration().Micros()
	r := now / rd
	if now%rd != 0 {
		r++
	}
	b.Sched.AtFunc(b.Cfg.SlotStart(r, 0), "tt.slot", b.slotFn, r, 0)
}

// InstallTxFault reinstalls a sender-side fault hook under its original
// id (restore path only — AddTxFault allocates fresh ids). The id must
// come from a checkpoint, i.e. be below the restored id horizon.
func (b *Bus) InstallTxFault(id int, f TxFault) {
	if id >= b.nextHookID {
		panic(fmt.Sprintf("tt: InstallTxFault id %d beyond horizon %d", id, b.nextHookID))
	}
	b.txFaults = append(b.txFaults, txHook{id: id, fn: f})
	sort.SliceStable(b.txFaults, func(i, j int) bool { return b.txFaults[i].id < b.txFaults[j].id })
}

// InstallRxFault reinstalls a receiver-side fault hook under its original
// id (restore path only).
func (b *Bus) InstallRxFault(id int, f RxFault) {
	if id >= b.nextHookID {
		panic(fmt.Sprintf("tt: InstallRxFault id %d beyond horizon %d", id, b.nextHookID))
	}
	b.rxFaults = append(b.rxFaults, rxHook{id: id, fn: f})
	sort.SliceStable(b.rxFaults, func(i, j int) bool { return b.rxFaults[i].id < b.rxFaults[j].id })
}
