package scenario

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"decos/internal/core"
	"decos/internal/diagnosis"
	"decos/internal/sim"
)

func TestFig10HealthyOperation(t *testing.T) {
	sys := Fig10(1, diagnosis.Options{})
	sys.Run(2000)
	// The pipeline actuates.
	if _, ok := sys.Cluster.Env.LastActuation("brake"); !ok {
		t.Error("DAS A pipeline produced no actuation")
	}
	// The TMR set votes continuously.
	if sys.Voter.Voted < 1900 {
		t.Errorf("voter succeeded only %d/2000 rounds", sys.Voter.Voted)
	}
	if sys.Voter.NoMajority != 0 {
		t.Errorf("healthy TMR lost majority %d times", sys.Voter.NoMajority)
	}
	// No diagnostic verdicts.
	if n := len(sys.Diag.Assessor.Emitted()); n != 0 {
		t.Errorf("healthy system produced %d verdicts: %v", n, sys.Diag.Assessor.Emitted())
	}
	if len(sys.OBD.DTCs()) != 0 {
		t.Errorf("healthy system stored DTCs: %v", sys.OBD.DTCs())
	}
}

func TestFig10Determinism(t *testing.T) {
	a := Fig10(42, diagnosis.Options{})
	b := Fig10(42, diagnosis.Options{})
	a.Injector.ConnectorTx(0, sim.Time(50*sim.Millisecond), 0, 0.3)
	b.Injector.ConnectorTx(0, sim.Time(50*sim.Millisecond), 0, 0.3)
	a.Run(1500)
	b.Run(1500)
	if a.Diag.Assessor.SymptomsReceived != b.Diag.Assessor.SymptomsReceived {
		t.Error("symptom streams diverged for identical seeds")
	}
	va, oka := a.Diag.VerdictOf(core.HardwareFRU(0))
	vb, okb := b.Diag.VerdictOf(core.HardwareFRU(0))
	if oka != okb || va.Class != vb.Class || va.Pattern != vb.Pattern {
		t.Errorf("verdicts diverged: %v/%v vs %v/%v", va, oka, vb, okb)
	}
}

func TestFig10ContainmentMatrix(t *testing.T) {
	// Fig. 10's core claim: a job-inherent fault stays inside its DAS; a
	// component-internal fault hits jobs of multiple DASs on that
	// component; TMR masks the single-component fault.
	sys := Fig10(7, diagnosis.Options{})
	sys.Run(500)
	// Kill component 2 — it hosts A3 (DAS A), C2 (DAS C) and S2 (DAS S).
	sys.Injector.PermanentFailSilent(2, sys.Cluster.Sched.Now().Add(50*sim.Millisecond))
	votedBefore := sys.Voter.Voted
	sys.Run(2000)
	// TMR masked the loss of S2: voting continued.
	if sys.Voter.Voted-votedBefore < 1900 {
		t.Errorf("TMR did not mask component loss: %d votes in 2000 rounds",
			sys.Voter.Voted-votedBefore)
	}
	if sys.Voter.Missing[1] < 1900 { // S2 is replica index 1
		t.Errorf("replica S2 not reported missing: %v", sys.Voter.Missing)
	}
	// DAS A (sensor on c0, control on c1) keeps running: the sensor chain
	// up to the control command is unaffected.
	if sys.Control.Steps < 2400 {
		t.Errorf("control job starved: %d steps", sys.Control.Steps)
	}
	// Diagnosis blames the component, not the jobs.
	v, ok := sys.Diag.VerdictOf(core.HardwareFRU(2))
	if !ok || v.Class != core.ComponentInternal {
		t.Errorf("component 2 verdict: %v ok=%v", v, ok)
	}
	for _, job := range []string{"A/A3", "C/C2", "S/S2"} {
		if v, ok := sys.Diag.VerdictOf(core.SoftwareFRU(2, job)); ok {
			t.Errorf("job %s blamed for hardware fault: %v (%s)", job, v.Class, v.Pattern)
		}
	}
}

func TestFig10JobFaultContained(t *testing.T) {
	sys := Fig10(8, diagnosis.Options{})
	sys.Injector.Bohrbug(sys.Sensor, ChSpeed,
		func(v float64, now sim.Time) bool { return v > 55 }, 400)
	sys.Run(2500)
	// Only the faulty job is accused; the TMR set and DAS C are untouched.
	if sys.Voter.NoMajority != 0 {
		t.Error("job fault in DAS A disturbed DAS S voting")
	}
	v, ok := sys.Diag.VerdictOf(core.SoftwareFRU(0, "A/A1"))
	if !ok || (v.Class != core.JobInherent && v.Class != core.JobInherentSensor) {
		t.Errorf("A1 verdict: %v ok=%v", v, ok)
	}
	if v, ok := sys.Diag.VerdictOf(core.HardwareFRU(0)); ok && v.Class != core.ComponentExternal {
		t.Errorf("hardware blamed: %v", v.Class)
	}
}

func TestInjectCoversAllKinds(t *testing.T) {
	for _, kind := range AllKinds() {
		sys := Fig10(100+uint64(kind), diagnosis.Options{})
		a := sys.Inject(kind, sim.Time(100*sim.Millisecond), sim.Time(sim.Second))
		if a == nil {
			t.Fatalf("kind %v returned nil activation", kind)
		}
		if len(sys.Injector.Ledger()) != 1 {
			t.Errorf("kind %v: ledger has %d entries", kind, len(sys.Injector.Ledger()))
		}
		if kind.String() == "" {
			t.Errorf("kind %d has empty name", kind)
		}
		sys.Run(200) // smoke: nothing panics
	}
}

func TestCampaignSmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign run in -short mode")
	}
	c := Campaign{
		Vehicles:       12,
		Rounds:         2500,
		Seed:           1,
		FaultFreeShare: 0.25,
	}
	res := c.Run()
	total := res.DECOS.Total + res.FaultFreeCount
	if total != 12 {
		t.Fatalf("vehicles accounted: %d", total)
	}
	// The headline claim: DECOS classification is far better than OBD.
	if res.DECOS.ActionAccuracy() <= res.OBD.ActionAccuracy() {
		t.Errorf("DECOS action accuracy %.2f not better than OBD %.2f",
			res.DECOS.ActionAccuracy(), res.OBD.ActionAccuracy())
	}
	if res.DECOS.NFFRatio() > 0.5 && res.DECOS.TotalRemovals > 2 {
		t.Errorf("DECOS NFF ratio suspiciously high: %.2f (%d/%d)",
			res.DECOS.NFFRatio(), res.DECOS.NFFRemovals, res.DECOS.TotalRemovals)
	}
	if res.DECOSFalseAlarms > 0 {
		t.Errorf("DECOS raised %d false removal alarms on healthy vehicles", res.DECOSFalseAlarms)
	}
}

func TestCampaignParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short mode")
	}
	base := Campaign{Vehicles: 8, Rounds: 2000, Seed: 5, FaultFreeShare: 0.25}
	seq := base
	seq.Workers = 1
	par := base
	par.Workers = 8
	a, b := seq.Run(), par.Run()
	if a.DECOS.Total != b.DECOS.Total ||
		a.DECOS.CorrectClass != b.DECOS.CorrectClass ||
		a.DECOS.NFFRemovals != b.DECOS.NFFRemovals ||
		a.OBD.CorrectActions != b.OBD.CorrectActions ||
		a.FaultFreeCount != b.FaultFreeCount {
		t.Errorf("parallel campaign diverged:\nseq: %+v\npar: %+v", a.DECOS, b.DECOS)
	}
	for i := range a.DECOS.Outcomes {
		if a.DECOS.Outcomes[i].Diagnosed != b.DECOS.Outcomes[i].Diagnosed ||
			a.DECOS.Outcomes[i].Action != b.DECOS.Outcomes[i].Action {
			t.Fatalf("outcome %d diverged", i)
		}
	}
}

func TestNormalizeMixDegenerate(t *testing.T) {
	// A mix without any positive weight used to make sample() index
	// kinds[-1]; it must instead fall back to the default distribution.
	defKinds, defWeights := normalizeMix(DefaultMix())
	for name, mix := range map[string]map[FaultKind]float64{
		"empty":       {},
		"all-zero":    {KindEMI: 0, KindSEU: 0},
		"negative":    {KindEMI: -1},
		"nil-entries": {KindWearout: 0},
	} {
		kinds, weights := normalizeMix(mix)
		if len(kinds) != len(defKinds) || len(weights) != len(defWeights) {
			t.Fatalf("%s: fallback mismatch: %d kinds, want %d", name, len(kinds), len(defKinds))
		}
		for i := range kinds {
			if kinds[i] != defKinds[i] || weights[i] != defWeights[i] {
				t.Fatalf("%s: fallback diverges from DefaultMix at %d", name, i)
			}
		}
	}
	// End-to-end: a campaign configured with a degenerate mix must run.
	c := Campaign{Vehicles: 1, Rounds: 600, Seed: 3, Mix: map[FaultKind]float64{KindEMI: 0}}
	if res := c.Run(); res.DECOS.Total+res.FaultFreeCount != 1 {
		t.Fatalf("vehicle unaccounted: %+v", res)
	}
}

func TestDefaultMixNormalizes(t *testing.T) {
	kinds, weights := normalizeMix(DefaultMix())
	if len(kinds) != int(numKinds) {
		t.Errorf("mix covers %d kinds, want %d", len(kinds), numKinds)
	}
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("weights sum to %v", sum)
	}
	rng := sim.NewRNG(1)
	counts := make([]int, len(kinds))
	for i := 0; i < 10000; i++ {
		counts[sample(rng, weights)]++
	}
	for i, n := range counts {
		if n == 0 {
			t.Errorf("kind %v never sampled", kinds[i])
		}
	}
}

// TestCampaignCancellation: cancelling a campaign mid-run returns a
// partial, flagged result — only completed vehicles merged — and leaves no
// worker goroutines behind.
func TestCampaignCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short mode")
	}
	before := runtime.NumGoroutine()
	c := Campaign{
		Vehicles:       16,
		Rounds:         4000,
		Seed:           3,
		FaultFreeShare: 0.25,
		Workers:        4,
	}
	// Cancel once the first vehicle's trace lands: some work done, most
	// vehicles still pending.
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	res := c.RunTracedContext(ctx, func(v int, ndjson []byte) {
		if len(ndjson) == 0 {
			t.Errorf("vehicle %d: empty trace", v)
		}
		once.Do(cancel)
	})
	if !res.Partial {
		t.Fatal("cancelled campaign not flagged Partial")
	}
	if res.Completed == 0 || res.Completed >= c.Vehicles {
		t.Fatalf("Completed = %d, want in (0, %d)", res.Completed, c.Vehicles)
	}
	if got := res.DECOS.Total + res.FaultFreeCount; got > res.Completed {
		t.Fatalf("merged %d vehicles but only %d completed", got, res.Completed)
	}

	// Workers must have exited; allow the runtime a moment to reap them.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, now)
	}
}

// TestCampaignContextComplete: an uncancelled context is invisible — the
// result matches Run() exactly.
func TestCampaignContextComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short mode")
	}
	base := Campaign{Vehicles: 6, Rounds: 1500, Seed: 9, FaultFreeShare: 0.25}
	a := base.Run()
	b := base.RunContext(context.Background())
	if b.Partial {
		t.Fatal("complete campaign flagged Partial")
	}
	if b.Completed != base.Vehicles {
		t.Fatalf("Completed = %d, want %d", b.Completed, base.Vehicles)
	}
	if a.DECOS.Total != b.DECOS.Total || a.DECOS.CorrectClass != b.DECOS.CorrectClass ||
		a.FaultFreeCount != b.FaultFreeCount {
		t.Errorf("context run diverged from plain run:\na: %+v\nb: %+v", a.DECOS, b.DECOS)
	}
}
