package scenario

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync"

	"decos/internal/core"
	"decos/internal/diagnosis"
	"decos/internal/engine"
	"decos/internal/faults"
	"decos/internal/fleet"
	"decos/internal/maintenance"
	"decos/internal/pack"
	"decos/internal/sim"
	"decos/internal/trace"
	"decos/internal/tt"
)

// FaultKind enumerates the injectable fault types of a campaign, covering
// every class of the maintenance-oriented fault model.
type FaultKind int

const (
	KindEMI FaultKind = iota
	KindSEU
	KindConnectorTx
	KindConnectorRx
	KindWearout
	KindIntermittent
	KindPermanent
	KindQuartz
	KindConfig
	KindBohrbug
	KindHeisenbug
	KindJobCrash
	KindSensorStuck
	KindSensorDrift
	KindPowerDip

	numKinds
)

func (k FaultKind) String() string {
	names := [...]string{
		"emi", "seu", "connector-tx", "connector-rx", "wearout",
		"intermittent", "permanent", "quartz", "config", "bohrbug",
		"heisenbug", "job-crash", "sensor-stuck", "sensor-drift",
		"power-dip",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// AllKinds returns every fault kind.
func AllKinds() []FaultKind {
	out := make([]FaultKind, numKinds)
	for i := range out {
		out[i] = FaultKind(i)
	}
	return out
}

// DefaultMix approximates the field distributions the paper cites: external
// transients dominate (high transient FIT), connector problems account for
// a large share of electrical failures (~30 %, Swingler), internal
// permanents are rare (100 FIT), and software/configuration faults follow
// the 20-80 observation.
func DefaultMix() map[FaultKind]float64 {
	return map[FaultKind]float64{
		KindEMI:          0.16,
		KindSEU:          0.14,
		KindConnectorTx:  0.14,
		KindConnectorRx:  0.08,
		KindWearout:      0.07,
		KindIntermittent: 0.07,
		KindPermanent:    0.05,
		KindQuartz:       0.04,
		KindConfig:       0.07,
		KindBohrbug:      0.05,
		KindHeisenbug:    0.05,
		KindJobCrash:     0.02,
		KindSensorStuck:  0.03,
		KindSensorDrift:  0.03,
		KindPowerDip:     0.06,
	}
}

// Inject performs one randomized injection of the given kind on a Fig. 10
// system. at is the activation instant; horizon the vehicle's total
// simulated span (used to bound open windows). It returns the ledger entry.
//
// Hardware fault targets are restricted to components 0..2 so the analysis
// stage of the diagnostic DAS (component 3) stays operational; in a
// production deployment the diagnostic DAS is itself replicated.
func (s *System) Inject(kind FaultKind, at sim.Time, horizon sim.Time) *faults.Activation {
	return s.InjectWith(s.Injector, kind, at, horizon)
}

// InjectWith is Inject against an explicit injector. It exists for the
// two call sites that cannot use the system's own injector field: fault
// manifests (engine.WithFaults hooks run before the System struct is
// wired, see Fig10Faulted) and counterfactual replay (decos-whatif
// injects hypotheses into a restored engine).
func (s *System) InjectWith(inj *faults.Injector, kind FaultKind, at sim.Time, horizon sim.Time) *faults.Activation {
	rng := inj.Cluster().Streams.Stream("campaign")
	comp := tt.NodeID(rng.Intn(3))
	switch kind {
	case KindEMI:
		// Epicenter near a random pair of proximate components.
		x := []float64{0.5, 5.5}[rng.Intn(2)]
		return inj.EMIBurst(at, x, 0, 2, faults.EMIBurstDuration, 4)
	case KindSEU:
		return inj.SEU(at, comp)
	case KindConnectorTx:
		return inj.ConnectorTx(comp, at, 0, 0.2+0.3*rng.Float64())
	case KindConnectorRx:
		return inj.ConnectorRx(comp, at, 0, 0.2+0.3*rng.Float64())
	case KindWearout:
		acc := faults.WearoutAcceleration{
			Onset:           at,
			Tau:             400 * sim.Millisecond,
			BaseRatePerHour: 3600 * 4,
			MaxFactor:       40,
		}
		return inj.Wearout(comp, acc, 3600*20)
	case KindIntermittent:
		return inj.IntermittentInternal(comp, at, 3600*6, 0)
	case KindPermanent:
		return inj.PermanentFailSilent(comp, at)
	case KindQuartz:
		return inj.DefectiveQuartz(comp, at, 50_000+rng.Float64()*100_000)
	case KindConfig:
		return inj.MisconfigureQueue(s.Sink, ChLoad, 1)
	case KindBohrbug:
		return inj.Bohrbug(s.Sensor, ChSpeed,
			func(v float64, now sim.Time) bool { return now >= at && v > 55 }, 400)
	case KindHeisenbug:
		return inj.Heisenbug(s.Sensor, ChSpeed, 0.04, 500, false)
	case KindJobCrash:
		return inj.JobCrash(s.Sensor, at)
	case KindSensorStuck:
		return inj.SensorStuck(s.Sensor, at, 60)
	case KindSensorDrift:
		return inj.SensorDrift(s.Sensor, at, 3600*50)
	case KindPowerDip:
		return inj.PowerDip(comp, at, faults.TransientOutage)
	default:
		panic("scenario: unknown fault kind")
	}
}

// InjectAt is InjectWith with the hardware target pinned to an explicit
// component instead of drawn from the campaign stream. It exists for
// counterfactual replay (decos-whatif's wrong-FRU hypothesis: the same
// fault kind manifesting on a different component); kinds without a
// component target — EMI, software and configuration faults — fall back
// to InjectWith's randomized targeting.
func (s *System) InjectAt(inj *faults.Injector, kind FaultKind, comp tt.NodeID, at sim.Time, horizon sim.Time) *faults.Activation {
	rng := inj.Cluster().Streams.Stream("campaign")
	switch kind {
	case KindSEU:
		return inj.SEU(at, comp)
	case KindConnectorTx:
		return inj.ConnectorTx(comp, at, 0, 0.2+0.3*rng.Float64())
	case KindConnectorRx:
		return inj.ConnectorRx(comp, at, 0, 0.2+0.3*rng.Float64())
	case KindWearout:
		acc := faults.WearoutAcceleration{
			Onset:           at,
			Tau:             400 * sim.Millisecond,
			BaseRatePerHour: 3600 * 4,
			MaxFactor:       40,
		}
		return inj.Wearout(comp, acc, 3600*20)
	case KindIntermittent:
		return inj.IntermittentInternal(comp, at, 3600*6, 0)
	case KindPermanent:
		return inj.PermanentFailSilent(comp, at)
	case KindQuartz:
		return inj.DefectiveQuartz(comp, at, 50_000+rng.Float64()*100_000)
	case KindPowerDip:
		return inj.PowerDip(comp, at, faults.TransientOutage)
	default:
		return s.InjectWith(inj, kind, at, horizon)
	}
}

// Campaign describes a fleet-scale fault-injection experiment: Vehicles
// independent Fig. 10 systems, each running Rounds TDMA rounds with one
// fault drawn from Mix (a share of vehicles stays fault-free to measure
// false alarms).
type Campaign struct {
	Vehicles int
	Rounds   int64
	Seed     uint64
	// Mix weights fault kinds; nil uses DefaultMix.
	Mix map[FaultKind]float64
	// FaultFreeShare is the fraction of vehicles without any fault.
	FaultFreeShare float64
	// FaultsPerVehicle is the number of simultaneous faults injected into
	// each faulty vehicle (distinct kinds; default 1). Higher values
	// stress the classification: overlapping manifestations are the hard
	// case of FRU-level diagnosis.
	FaultsPerVehicle int
	// Workers bounds the number of vehicles simulated concurrently.
	// Vehicles are fully independent simulations, so the campaign is
	// embarrassingly parallel; results are identical for any worker
	// count (all randomness is pre-drawn sequentially). 0 or 1 runs
	// sequentially.
	Workers int
	// Classifier selects the diagnostic pipeline's classification stage
	// for every vehicle: "" or "decos" keeps the DECOS rule engine, "obd"
	// swaps the threshold baseline into the pipeline, "bayes" installs
	// the Bayesian posterior stage (a fresh posterior per vehicle —
	// vehicles are independent realizations). The OBD baseline advisor
	// stays attached alongside regardless, so CampaignResult.OBD always
	// reports the baseline while CampaignResult.DECOS reports whatever
	// stage runs in the pipeline.
	Classifier string
	// ChunkRounds > 0 runs every vehicle in chunks of that many rounds,
	// checkpointing the engine between chunks and restoring each
	// continuation into a freshly built engine (engine.WithRestore). The
	// result is bit-identical to an unchunked run — this is the campaign-
	// scale exercise of the checkpoint determinism contract, and the
	// execution shape of resumable long-horizon campaigns.
	ChunkRounds int64
	// Opts tunes the diagnostic subsystem.
	Opts diagnosis.Options
}

// CampaignResult carries the audited comparison of both diagnosers plus
// false-alarm statistics.
type CampaignResult struct {
	DECOS *maintenance.Report
	OBD   *maintenance.Report
	// FalseAlarms counts hardware-removal recommendations for FRUs that
	// were never a culprit, per diagnoser, across fault-free vehicles.
	DECOSFalseAlarms int
	OBDFalseAlarms   int
	FaultFreeCount   int
	// Fleet tallies every job-inherent verdict across the fleet (Section
	// V-C): the 20-80 concentration and systematic-fault separation.
	Fleet *fleet.Tally
	// Partial flags a result cut short by context cancellation: only
	// Completed vehicles are merged; in-flight vehicles are discarded
	// whole, so the numbers that are present remain exact.
	Partial   bool
	Completed int
}

// vehiclePlan is one vehicle's pre-drawn randomness, fixed before any
// concurrent work starts so the campaign result is independent of the
// worker count.
type vehiclePlan struct {
	seed      uint64
	faultFree bool
	kinds     []FaultKind
	atFrac    []float64
}

// vehicleOutcome is one simulated vehicle's audit material.
type vehicleOutcome struct {
	faultFree        bool
	decosFalseAlarms int
	obdFalseAlarms   int
	acts             []*faults.Activation
	diag             maintenance.Advisor
	obd              maintenance.Advisor
	incidents        []fleet.Incident
}

// TraceSink receives one vehicle's complete NDJSON trace, audit block
// included. Vehicles are 1-based. It is invoked from worker goroutines:
// implementations must be safe for concurrent use.
type TraceSink func(vehicle int, ndjson []byte)

// Run executes the campaign — in parallel when Workers > 1 — and audits
// both diagnosers against the shared ground truth.
func (c Campaign) Run() *CampaignResult { return c.run(context.Background(), nil) }

// RunContext is Run under a context: cancellation stops feeding vehicles,
// aborts in-flight simulations at the next scheduler poll, and returns a
// partial result (Partial=true) merging only the vehicles that completed.
// Workers exit before RunContext returns — no goroutines are leaked.
func (c Campaign) RunContext(ctx context.Context) *CampaignResult { return c.run(ctx, nil) }

// RunTraced is Run doubling as the fleet load generator: every vehicle
// additionally records a JSON-lines trace (failed frames, symptoms,
// verdicts, trust samples, injections, end-of-run audit) and hands it to
// sink — the off-line warranty-analysis interface of Section V-B at fleet
// scale. Recording only observes, so the returned result is bit-identical
// to Run's for the same seeds. Workers ≤ 0 uses runtime.NumCPU().
func (c Campaign) RunTraced(sink TraceSink) *CampaignResult {
	return c.RunTracedContext(context.Background(), sink)
}

// RunTracedContext is RunTraced under a context, with RunContext's
// partial-result semantics; cancelled vehicles hand nothing to sink.
func (c Campaign) RunTracedContext(ctx context.Context, sink TraceSink) *CampaignResult {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	return c.run(ctx, sink)
}

func (c Campaign) run(ctx context.Context, sink TraceSink) *CampaignResult {
	mix := c.Mix
	if mix == nil {
		mix = DefaultMix()
	}
	kinds, weights := normalizeMix(mix)
	perVehicle := c.FaultsPerVehicle
	if perVehicle <= 0 {
		perVehicle = 1
	}

	// Draw all randomness up front, sequentially.
	pickRNG := sim.NewRNG(c.Seed ^ 0xcafef00d)
	plans := make([]vehiclePlan, c.Vehicles)
	for v := range plans {
		p := vehiclePlan{
			seed:      c.Seed + uint64(v)*7919,
			faultFree: pickRNG.Bool(c.FaultFreeShare),
		}
		if !p.faultFree {
			used := map[FaultKind]bool{}
			for len(p.kinds) < perVehicle && len(used) < len(kinds) {
				kind := kinds[sample(pickRNG, weights)]
				if used[kind] {
					continue
				}
				used[kind] = true
				p.kinds = append(p.kinds, kind)
				p.atFrac = append(p.atFrac, 0.1+0.3*pickRNG.Float64())
			}
		}
		plans[v] = p
	}

	outcomes := make([]vehicleOutcome, c.Vehicles)
	done := make([]bool, c.Vehicles)
	// runOne simulates vehicle v end to end and reports whether it
	// completed. A cancelled vehicle is discarded whole — no partial
	// outcome, no trace handed to sink — so merged numbers stay exact.
	runOne := func(v int) bool {
		if ctx.Err() != nil {
			return false
		}
		p := plans[v]
		// Each vehicle gets its own classifier instance (the Bayesian
		// stage is stateful; posteriors must not leak across vehicles).
		extra := pack.ClassifierOptions(c.Classifier)
		var buf bytes.Buffer
		if sink != nil {
			extra = append(extra, engine.WithTraceWriter(&buf,
				trace.Options{TrustEveryEpochs: 5, Vehicle: v + 1}))
		}
		// The injections ride in the fault manifest (Fig10Faulted), not as
		// post-build calls: a manifest is what a checkpoint restore can
		// reconstruct, so chunked execution replays it per chunk.
		horizon := sim.Time(c.Rounds * tt.UniformSchedule(4, 250*sim.Microsecond, 256).RoundDuration().Micros())
		plan := make([]InjectPlan, 0, len(p.kinds))
		for i, kind := range p.kinds {
			plan = append(plan, InjectPlan{
				Kind: kind, At: sim.Time(float64(horizon) * p.atFrac[i]), Horizon: horizon,
			})
		}
		sys := Fig10Faulted(p.seed, c.Opts, plan, extra...)
		if c.ChunkRounds > 0 {
			// Chunked resume: run, checkpoint, rebuild restored, repeat.
			// The trace buffer is shared across chunk engines — the restored
			// recorder's cursors continue the stream seamlessly.
			for ran := int64(0); ran < c.Rounds; {
				step := c.ChunkRounds
				if ran+step > c.Rounds {
					step = c.Rounds - ran
				}
				ran += step
				if err := sys.Cluster.RunToRoundCtx(ctx, ran); err != nil {
					return false
				}
				if ran >= c.Rounds {
					break
				}
				var ck bytes.Buffer
				if err := sys.Engine.Checkpoint(&ck); err != nil {
					panic(fmt.Sprintf("scenario: chunk checkpoint: %v", err))
				}
				sys = Fig10Faulted(p.seed, c.Opts, plan,
					append(append([]engine.Option{}, extra...),
						engine.WithRestore(bytes.NewReader(ck.Bytes())))...)
			}
		} else if err := sys.RunCtx(ctx, c.Rounds); err != nil {
			return false
		}
		rec := sys.Engine.Recorder
		out := vehicleOutcome{
			faultFree: p.faultFree, diag: sys.Diag, obd: sys.OBD,
			acts: sys.Injector.Ledger(),
		}
		if p.faultFree {
			out.decosFalseAlarms = countRemovalAdvice(sys, sys.Diag)
			out.obdFalseAlarms = countRemovalAdvice(sys, sys.OBD)
		}
		for _, vd := range sys.Diag.Assessor.Emitted() {
			if fleet.Relevant(vd.Class) {
				out.incidents = append(out.incidents, fleet.Incident{
					Vehicle: v + 1, Job: vd.FRU.Job, Class: vd.Class, Pattern: vd.Pattern,
				})
			}
		}
		if rec != nil {
			rec.WriteAudit(horizon, p.faultFree, out.acts,
				[]trace.Advisor{{Name: "decos", Adv: sys.Diag}, {Name: "obd", Adv: sys.OBD}},
				hardwareFRUs(sys))
			sink(v+1, buf.Bytes())
		}
		outcomes[v] = out
		return true
	}

	if c.Workers > 1 {
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < c.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for v := range work {
					done[v] = runOne(v)
				}
			}()
		}
	feed:
		for v := 0; v < c.Vehicles; v++ {
			select {
			case work <- v:
			case <-ctx.Done():
				break feed
			}
		}
		close(work)
		wg.Wait()
	} else {
		for v := 0; v < c.Vehicles && ctx.Err() == nil; v++ {
			done[v] = runOne(v)
		}
	}

	// Merge in vehicle order: deterministic regardless of Workers. Only
	// completed vehicles contribute.
	res := &CampaignResult{Fleet: fleet.NewTally()}
	var decosLedger, obdLedger []auditPair
	for v, out := range outcomes {
		if !done[v] {
			continue
		}
		res.Completed++
		for _, inc := range out.incidents {
			res.Fleet.Observe(inc.Vehicle, inc.Job)
		}
		if out.faultFree {
			res.FaultFreeCount++
			res.DECOSFalseAlarms += out.decosFalseAlarms
			res.OBDFalseAlarms += out.obdFalseAlarms
			continue
		}
		for _, act := range out.acts {
			decosLedger = append(decosLedger, auditPair{act: act, adv: out.diag})
			obdLedger = append(obdLedger, auditPair{act: act, adv: out.obd})
		}
	}
	res.DECOS = evaluatePairs(decosLedger)
	res.OBD = evaluatePairs(obdLedger)
	res.Partial = ctx.Err() != nil && res.Completed < c.Vehicles
	return res
}

type auditPair struct {
	act *faults.Activation
	adv maintenance.Advisor
}

// evaluatePairs audits activations that live on different advisor
// instances (one per vehicle), through the same arm-audit accumulation
// the trace-fed warranty engine runs.
func evaluatePairs(pairs []auditPair) *maintenance.Report {
	audit := maintenance.ArmAudit{
		Report: maintenance.Report{Confusion: map[core.FaultClass]map[core.FaultClass]int{}},
	}
	for _, p := range pairs {
		audit.Audit(p.act, p.adv)
	}
	return &audit.Report
}

// hardwareFRUs lists the hardware FRUs of a system (the audit block
// interrogates advisors about each so false alarms are trace-visible).
func hardwareFRUs(sys *System) []core.FRU {
	var out []core.FRU
	for _, c := range sys.Cluster.Components() {
		out = append(out, core.HardwareFRU(int(c.ID)))
	}
	return out
}

// countRemovalAdvice counts hardware FRUs the advisor would remove on a
// fault-free vehicle, folding each recommendation through the shared
// arm audit (every removal there is a false alarm).
func countRemovalAdvice(sys *System, adv maintenance.Advisor) int {
	var audit maintenance.ArmAudit
	for _, c := range sys.Cluster.Components() {
		if action, _, ok := adv.Advise(core.HardwareFRU(int(c.ID))); ok {
			audit.HealthyAdvice(action)
		}
	}
	return audit.FalseAlarms
}

func normalizeMix(mix map[FaultKind]float64) ([]FaultKind, []float64) {
	var kinds []FaultKind
	for _, k := range AllKinds() {
		if mix[k] > 0 {
			kinds = append(kinds, k)
		}
	}
	if len(kinds) == 0 {
		// A mix without any positive weight (empty map, or all entries
		// zero/negative) would leave sample() choosing from nothing and
		// index kinds[-1]; treat it like a nil Mix and fall back to the
		// default field distribution.
		return normalizeMix(DefaultMix())
	}
	total := 0.0
	for _, k := range kinds {
		total += mix[k]
	}
	weights := make([]float64, len(kinds))
	for i, k := range kinds {
		weights[i] = mix[k] / total
	}
	return kinds, weights
}

func sample(rng *sim.RNG, weights []float64) int {
	u := rng.Float64()
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}
