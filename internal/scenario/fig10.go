// Package scenario provides canonical cluster configurations and the
// fault-injection campaign driver used by the experiments: most notably the
// system of the paper's Fig. 10 — three application DASs (two non-safety-
// critical, one safety-critical TMR triple) spread over four components —
// with both the DECOS diagnostic architecture and the OBD baseline
// attached.
package scenario

import (
	"context"
	"io"

	"decos/internal/baseline"
	"decos/internal/component"
	"decos/internal/diagnosis"
	"decos/internal/engine"
	"decos/internal/faults"
	"decos/internal/pack"
	"decos/internal/sim"
	"decos/internal/tt"
)

// Channel plan of the Fig. 10 system. The wiring itself lives in the
// pack package (the declarative manifest layer); these aliases keep the
// scenario API stable.
const (
	ChSpeed = pack.ChSpeed // DAS A: wheel speed (A1 → A2)
	ChCmd   = pack.ChCmd   // DAS A: brake command (A2 → A3)
	ChLoad  = pack.ChLoad  // DAS C: event traffic (C1 → C2)
	ChS1    = pack.ChS1    // DAS S: replica 1 pressure
	ChS2    = pack.ChS2    // DAS S: replica 2 pressure
	ChS3    = pack.ChS3    // DAS S: replica 3 pressure
	ChVoted = pack.ChVoted // DAS S: voted pressure
)

// System is one fully assembled Fig. 10 cluster with diagnostics, the OBD
// baseline and a fault injector, built on the shared run engine.
type System struct {
	Engine   *engine.Engine
	Cluster  *component.Cluster
	Diag     *diagnosis.Diagnostics
	OBD      *baseline.OBD
	Injector *faults.Injector
	Voter    *component.VoterJob

	// Handy job handles.
	Sensor, Control, Actuator, Bursty, Sink *component.Instance
	Replicas                                [3]*component.Instance
	VoterJob                                *component.Instance
}

// DiagNode hosts the diagnostic DAS's analysis stage.
const DiagNode tt.NodeID = 3

// Fig10 builds the canonical system with the given seed and diagnostic
// options. The cluster is started and ready to run.
func Fig10(seed uint64, opts diagnosis.Options) *System {
	return fig10Engine(seed, opts, nil)
}

// Fig10With is Fig10 with extra engine options composed onto the
// canonical configuration — trace sinks, fault manifests, classifier
// selection (engine.WithOBDClassifier and friends).
func Fig10With(seed uint64, opts diagnosis.Options, extra ...engine.Option) *System {
	return fig10Engine(seed, opts, extra)
}

// InjectPlan is one planned campaign injection: the randomized targeting
// happens at manifest time (drawing from the "campaign" stream), so the
// same plan on the same seed always hits the same FRU.
type InjectPlan struct {
	Kind FaultKind
	At   sim.Time
	// Horizon bounds open activation windows (the vehicle's total span).
	Horizon sim.Time
}

// Fig10Faulted is Fig10With with the injections routed through the
// engine's fault manifest instead of applied after build. This is the
// checkpoint-compatible form: engine.WithRestore reconstructs a run by
// re-executing the manifest, so injections living outside it would be
// invisible to a restore. The activations land in the injector's ledger
// in plan order.
func Fig10Faulted(seed uint64, opts diagnosis.Options, plan []InjectPlan, extra ...engine.Option) *System {
	sys := &System{}
	return sys.assemble(seed, opts, append([]engine.Option{
		engine.WithFaults(func(inj *faults.Injector) {
			for _, p := range plan {
				sys.InjectWith(inj, p.Kind, p.At, p.Horizon)
			}
		}),
	}, extra...))
}

// Fig10Restored rebuilds a Fig. 10 system from an engine checkpoint:
// Fig10Faulted's configuration plus engine.WithRestore, through the
// error-returning constructor. Checkpoint bytes are external input
// (files, uplinks), so a corrupt or mismatched stream must surface as an
// error, not a panic.
func Fig10Restored(r io.Reader, seed uint64, opts diagnosis.Options, plan []InjectPlan, extra ...engine.Option) (*System, error) {
	sys := &System{}
	return sys.assembleE(seed, opts, append([]engine.Option{
		engine.WithFaults(func(inj *faults.Injector) {
			for _, p := range plan {
				sys.InjectWith(inj, p.Kind, p.At, p.Horizon)
			}
		}),
		engine.WithRestore(r),
	}, extra...))
}

// fig10Engine assembles the Fig. 10 system through the run engine; extra
// options (a trace sink, a fault manifest) compose onto the canonical
// configuration.
func fig10Engine(seed uint64, opts diagnosis.Options, extra []engine.Option) *System {
	return (&System{}).assemble(seed, opts, extra)
}

func (sys *System) assemble(seed uint64, opts diagnosis.Options, extra []engine.Option) *System {
	s, err := sys.assembleE(seed, opts, extra)
	if err != nil {
		panic(err)
	}
	return s
}

func (sys *System) assembleE(seed uint64, opts diagnosis.Options, extra []engine.Option) (*System, error) {
	t := pack.Fig10Topology()
	eopts := append(t.Options(seed, opts, sys.buildFig10), extra...)
	eng, err := engine.New(eopts...)
	if err != nil {
		return nil, err
	}
	sys.Engine = eng
	sys.Cluster = eng.Cluster
	sys.Diag = eng.Diag
	sys.OBD = eng.OBD
	sys.Injector = eng.Injector
	return sys, nil
}

// buildFig10 populates the Fig. 10 topology through the pack layer's
// canonical wiring, then binds the System's job handles from the built
// cluster.
func (s *System) buildFig10(cl *component.Cluster) {
	pack.Fig10Build(cl)

	dasA, dasC, dasS := cl.DAS("A"), cl.DAS("C"), cl.DAS("S")
	s.Sensor = dasA.JobNamed("A1")
	s.Control = dasA.JobNamed("A2")
	s.Actuator = dasA.JobNamed("A3")
	s.Bursty = dasC.JobNamed("C1")
	s.Sink = dasC.JobNamed("C2")
	for i := 0; i < 3; i++ {
		s.Replicas[i] = dasS.JobNamed("S" + string(rune('1'+i)))
	}
	s.VoterJob = dasS.JobNamed("V")
	s.Voter = s.VoterJob.Impl.(*component.VoterJob)
}

// Run advances the system by n TDMA rounds.
func (s *System) Run(n int64) { s.Cluster.RunRounds(n) }

// RunCtx advances the system by n TDMA rounds under the context; it
// returns ctx.Err() when cancelled mid-run, nil on completion.
func (s *System) RunCtx(ctx context.Context, n int64) error {
	return s.Cluster.RunRoundsCtx(ctx, n)
}
