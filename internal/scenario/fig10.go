// Package scenario provides canonical cluster configurations and the
// fault-injection campaign driver used by the experiments: most notably the
// system of the paper's Fig. 10 — three application DASs (two non-safety-
// critical, one safety-critical TMR triple) spread over four components —
// with both the DECOS diagnostic architecture and the OBD baseline
// attached.
package scenario

import (
	"context"
	"io"

	"decos/internal/baseline"
	"decos/internal/component"
	"decos/internal/diagnosis"
	"decos/internal/engine"
	"decos/internal/faults"
	"decos/internal/sim"
	"decos/internal/tt"
	"decos/internal/vnet"
)

// Channel plan of the Fig. 10 system.
const (
	ChSpeed vnet.ChannelID = 1  // DAS A: wheel speed (A1 → A2)
	ChCmd   vnet.ChannelID = 2  // DAS A: brake command (A2 → A3)
	ChLoad  vnet.ChannelID = 10 // DAS C: event traffic (C1 → C2)
	ChS1    vnet.ChannelID = 21 // DAS S: replica 1 pressure
	ChS2    vnet.ChannelID = 22 // DAS S: replica 2 pressure
	ChS3    vnet.ChannelID = 23 // DAS S: replica 3 pressure
	ChVoted vnet.ChannelID = 24 // DAS S: voted pressure
)

// System is one fully assembled Fig. 10 cluster with diagnostics, the OBD
// baseline and a fault injector, built on the shared run engine.
type System struct {
	Engine   *engine.Engine
	Cluster  *component.Cluster
	Diag     *diagnosis.Diagnostics
	OBD      *baseline.OBD
	Injector *faults.Injector
	Voter    *component.VoterJob

	// Handy job handles.
	Sensor, Control, Actuator, Bursty, Sink *component.Instance
	Replicas                                [3]*component.Instance
	VoterJob                                *component.Instance
}

// DiagNode hosts the diagnostic DAS's analysis stage.
const DiagNode tt.NodeID = 3

// Fig10 builds the canonical system with the given seed and diagnostic
// options. The cluster is started and ready to run.
func Fig10(seed uint64, opts diagnosis.Options) *System {
	return fig10Engine(seed, opts, nil)
}

// Fig10With is Fig10 with extra engine options composed onto the
// canonical configuration — trace sinks, fault manifests, classifier
// selection (engine.WithOBDClassifier and friends).
func Fig10With(seed uint64, opts diagnosis.Options, extra ...engine.Option) *System {
	return fig10Engine(seed, opts, extra)
}

// InjectPlan is one planned campaign injection: the randomized targeting
// happens at manifest time (drawing from the "campaign" stream), so the
// same plan on the same seed always hits the same FRU.
type InjectPlan struct {
	Kind FaultKind
	At   sim.Time
	// Horizon bounds open activation windows (the vehicle's total span).
	Horizon sim.Time
}

// Fig10Faulted is Fig10With with the injections routed through the
// engine's fault manifest instead of applied after build. This is the
// checkpoint-compatible form: engine.WithRestore reconstructs a run by
// re-executing the manifest, so injections living outside it would be
// invisible to a restore. The activations land in the injector's ledger
// in plan order.
func Fig10Faulted(seed uint64, opts diagnosis.Options, plan []InjectPlan, extra ...engine.Option) *System {
	sys := &System{}
	return sys.assemble(seed, opts, append([]engine.Option{
		engine.WithFaults(func(inj *faults.Injector) {
			for _, p := range plan {
				sys.InjectWith(inj, p.Kind, p.At, p.Horizon)
			}
		}),
	}, extra...))
}

// Fig10Restored rebuilds a Fig. 10 system from an engine checkpoint:
// Fig10Faulted's configuration plus engine.WithRestore, through the
// error-returning constructor. Checkpoint bytes are external input
// (files, uplinks), so a corrupt or mismatched stream must surface as an
// error, not a panic.
func Fig10Restored(r io.Reader, seed uint64, opts diagnosis.Options, plan []InjectPlan, extra ...engine.Option) (*System, error) {
	sys := &System{}
	return sys.assembleE(seed, opts, append([]engine.Option{
		engine.WithFaults(func(inj *faults.Injector) {
			for _, p := range plan {
				sys.InjectWith(inj, p.Kind, p.At, p.Horizon)
			}
		}),
		engine.WithRestore(r),
	}, extra...))
}

// fig10Engine assembles the Fig. 10 system through the run engine; extra
// options (a trace sink, a fault manifest) compose onto the canonical
// configuration.
func fig10Engine(seed uint64, opts diagnosis.Options, extra []engine.Option) *System {
	return (&System{}).assemble(seed, opts, extra)
}

func (sys *System) assemble(seed uint64, opts diagnosis.Options, extra []engine.Option) *System {
	s, err := sys.assembleE(seed, opts, extra)
	if err != nil {
		panic(err)
	}
	return s
}

func (sys *System) assembleE(seed uint64, opts diagnosis.Options, extra []engine.Option) (*System, error) {
	eopts := append([]engine.Option{
		engine.WithTopology(4, 250*sim.Microsecond, 256),
		engine.WithSeed(seed),
		engine.WithClocks(50, 0, 20, 1),
		engine.WithBuild(sys.buildFig10),
		engine.WithDiagnosis(DiagNode, opts),
		engine.WithOBD(),
	}, extra...)
	eng, err := engine.New(eopts...)
	if err != nil {
		return nil, err
	}
	sys.Engine = eng
	sys.Cluster = eng.Cluster
	sys.Diag = eng.Diag
	sys.OBD = eng.OBD
	sys.Injector = eng.Injector
	return sys, nil
}

// buildFig10 populates the Fig. 10 topology: three application DASs (two
// non-safety-critical, one safety-critical TMR triple) over four
// components.
func (s *System) buildFig10(cl *component.Cluster) {
	c0 := cl.AddComponent(0, "front-left", 0, 0)
	c1 := cl.AddComponent(1, "front-right", 1, 0)
	c2 := cl.AddComponent(2, "rear-left", 5, 0)
	c3 := cl.AddComponent(3, "rear-right", 6, 0)

	cl.Env.DefineSine("wheel.speed", 30, 200*sim.Millisecond, 50)
	cl.Env.DefineSine("brake.pressure", 20, 300*sim.Millisecond, 50)

	// DAS A (non-safety-critical): wheel-speed pipeline A1 → A2 → A3.
	dasA := cl.AddDAS("A", component.NonSafetyCritical)
	nA := cl.AddNetwork(dasA, "A.tt", vnet.TimeTriggered)
	nA.AddEndpoint(0, 40, 0)
	nA.AddEndpoint(1, 40, 0)
	a1 := cl.AddJob(dasA, c0, "A1", 0, &component.SensorJob{
		Signal: "wheel.speed", Out: ChSpeed,
		PhysMin: -10, PhysMax: 110, FrozenWindow: 20,
	})
	a2 := cl.AddJob(dasA, c1, "A2", 0,
		&component.ControlJob{In: ChSpeed, Out: ChCmd, Gain: 2, InMin: 0, InMax: 100})
	a3 := cl.AddJob(dasA, c2, "A3", 0, &component.ActuatorJob{In: ChCmd, Actuator: "brake"})
	cl.Produce(a1, nA, component.ChannelSpec{
		Channel: ChSpeed, Name: "wheel.speed", Min: 0, Max: 100,
		MaxAgeRounds: 3, StuckRounds: 20, Sensor: true,
	})
	cl.Produce(a2, nA, component.ChannelSpec{Channel: ChCmd, Name: "brake.cmd", Min: 0, Max: 200, MaxAgeRounds: 3})
	cl.Subscribe(a2, ChSpeed, 0, true)
	cl.Subscribe(a3, ChCmd, 4, false)

	// DAS C (non-safety-critical): event-triggered comfort traffic.
	dasC := cl.AddDAS("C", component.NonSafetyCritical)
	nC := cl.AddNetwork(dasC, "C.et", vnet.EventTriggered)
	nC.AddEndpoint(1, 60, 16)
	c1j := cl.AddJob(dasC, c1, "C1", 1, &component.BurstyJob{Out: ChLoad, MeanPerRound: 2})
	c2j := cl.AddJob(dasC, c2, "C2", 1, &component.SinkJob{In: ChLoad})
	cl.Produce(c1j, nC, component.ChannelSpec{Channel: ChLoad, Name: "load", Min: -1e12, Max: 1e12})
	cl.Subscribe(c2j, ChLoad, 8, false)

	// DAS S (safety-critical): TMR pressure sensing on three components,
	// voted on a fourth (Fig. 10's S1, S2, S3).
	dasS := cl.AddDAS("S", component.SafetyCritical)
	nS := cl.AddNetwork(dasS, "S.tt", vnet.TimeTriggered)
	nS.AddEndpoint(0, 20, 0)
	nS.AddEndpoint(2, 20, 0)
	nS.AddEndpoint(3, 20, 0)
	nS.AddEndpoint(1, 20, 0)
	var reps [3]*component.Instance
	repChans := [3]vnet.ChannelID{ChS1, ChS2, ChS3}
	repComps := [3]*component.Component{c0, c2, c3}
	for i := 0; i < 3; i++ {
		reps[i] = cl.AddJob(dasS, repComps[i], "S"+string(rune('1'+i)), 2,
			&component.SensorJob{
				Signal: "brake.pressure", Out: repChans[i],
				PhysMin: -10, PhysMax: 110, FrozenWindow: 20,
			})
		cl.Produce(reps[i], nS, component.ChannelSpec{
			Channel: repChans[i], Name: "pressure", Min: 0, Max: 100,
			MaxAgeRounds: 3, StuckRounds: 20, Sensor: true,
		})
	}
	voter := &component.VoterJob{Ins: repChans, Out: ChVoted, Tolerance: 1.0}
	vj := cl.AddJob(dasS, c1, "V", 2, voter)
	for _, ch := range repChans {
		cl.Subscribe(vj, ch, 0, true)
	}
	cl.Produce(vj, nS, component.ChannelSpec{Channel: ChVoted, Name: "voted", Min: 0, Max: 100, MaxAgeRounds: 3})

	s.Voter = voter
	s.Sensor, s.Control, s.Actuator = a1, a2, a3
	s.Bursty, s.Sink = c1j, c2j
	s.Replicas, s.VoterJob = reps, vj
}

// Run advances the system by n TDMA rounds.
func (s *System) Run(n int64) { s.Cluster.RunRounds(n) }

// RunCtx advances the system by n TDMA rounds under the context; it
// returns ctx.Err() when cancelled mid-run, nil on completion.
func (s *System) RunCtx(ctx context.Context, n int64) error {
	return s.Cluster.RunRoundsCtx(ctx, n)
}
