package scenario

import (
	"context"
	"testing"
)

// TestCampaignMonteCarlo covers the confidence-campaign mode: N seeded
// replicates aggregate to mean ± 95 % CI per audit metric, the
// replicate seeding is deterministic (the whole result reproduces), and
// cancellation yields a partial aggregate instead of blocking.
func TestCampaignMonteCarlo(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated campaigns in -short mode")
	}
	c := Campaign{
		Vehicles:       4,
		Rounds:         1200,
		Seed:           20050404,
		FaultFreeShare: 0.25,
		Workers:        2,
		Classifier:     "bayes",
	}
	const n = 3
	mc := c.MonteCarlo(context.Background(), n)

	if mc.Partial || mc.Completed != n {
		t.Fatalf("completed %d/%d replicates, partial=%v", mc.Completed, n, mc.Partial)
	}
	for name, s := range map[string]Stat{
		"pipeline accuracy": mc.PipelineAccuracy,
		"pipeline NFF":      mc.PipelineNFF,
		"baseline accuracy": mc.BaselineAccuracy,
		"baseline NFF":      mc.BaselineNFF,
		"false alarms":      mc.FalseAlarms,
	} {
		if s.N != n {
			t.Errorf("%s aggregates %d samples, want %d", name, s.N, n)
		}
		if s.CI95 < 0 {
			t.Errorf("%s CI95 = %f, want >= 0", name, s.CI95)
		}
		if s.Min > s.Mean || s.Mean > s.Max {
			t.Errorf("%s mean %.4f outside [%.4f, %.4f]", name, s.Mean, s.Min, s.Max)
		}
	}
	if mc.PipelineAccuracy.Mean <= 0 {
		t.Errorf("pipeline accuracy mean %.4f, want > 0", mc.PipelineAccuracy.Mean)
	}

	// Replicates are seeded from (Seed, r) alone: the aggregate must
	// reproduce bit-identically.
	if again := c.MonteCarlo(context.Background(), n); *again != *mc {
		t.Errorf("Monte Carlo aggregate not reproducible:\n  first:  %+v\n  second: %+v", mc, again)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if part := c.MonteCarlo(cancelled, n); !part.Partial || part.Completed != 0 {
		t.Errorf("cancelled campaign: completed %d, partial=%v; want 0 and true",
			part.Completed, part.Partial)
	}
}
