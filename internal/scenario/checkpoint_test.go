package scenario

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"decos/internal/diagnosis"
)

// collectTraces is a concurrency-safe TraceSink keeping each vehicle's
// stream.
type collectTraces struct {
	mu sync.Mutex
	by map[int][]byte
}

func (c *collectTraces) sink(vehicle int, ndjson []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.by[vehicle] = bytes.Clone(ndjson)
}

// TestCampaignChunkedBitIdentical: a campaign executed in checkpoint/
// restore chunks (every vehicle torn down and rebuilt from its checkpoint
// mid-run, at a cadence that does not divide the horizon) produces the
// exact result and byte-identical per-vehicle traces of the unchunked
// campaign — the fleet-scale form of the restore determinism contract.
func TestCampaignChunkedBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-vehicle campaign in -short mode")
	}
	base := Campaign{
		Vehicles:         6,
		Rounds:           300,
		Seed:             20050404,
		FaultFreeShare:   0.3,
		FaultsPerVehicle: 2,
		Workers:          2,
		Opts:             diagnosis.Options{},
	}

	plain := &collectTraces{by: map[int][]byte{}}
	want := base.RunTraced(plain.sink)

	chunked := base
	chunked.ChunkRounds = 125 // three chunks: 125 + 125 + 50
	chunkedTraces := &collectTraces{by: map[int][]byte{}}
	got := chunked.RunTraced(chunkedTraces.sink)

	// Compare through JSON: the reports retain *faults.Activation ground
	// truth whose reconstructed role-handler closures never compare equal
	// pointer-wise; the serialized view is the semantic content.
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("chunked campaign result differs from unchunked:\nunchunked: %s\nchunked:   %s", wantJSON, gotJSON)
	}
	if len(plain.by) != len(chunkedTraces.by) {
		t.Fatalf("trace counts differ: %d vs %d vehicles", len(plain.by), len(chunkedTraces.by))
	}
	for v, tr := range plain.by {
		if !bytes.Equal(tr, chunkedTraces.by[v]) {
			t.Errorf("vehicle %d: chunked trace differs (%d vs %d bytes)",
				v, len(tr), len(chunkedTraces.by[v]))
		}
	}
}
