package scenario

import (
	"fmt"

	"decos/internal/component"
	"decos/internal/diagnosis"
	"decos/internal/engine"
	"decos/internal/sim"
	"decos/internal/tt"
	"decos/internal/vnet"
)

// Grid builds an n-component cluster (n ≥ 3) for scalability studies: a
// chain of sensor→control DASs, one DAS per adjacent component pair, with
// the diagnostic DAS's analysis stage on the last component. Channel i+1
// carries the i-th sensor's signal.
func Grid(n int, seed uint64, opts diagnosis.Options) *System {
	return GridWith(n, seed, opts)
}

// GridWith is Grid with extra engine options composed onto the canonical
// configuration — checkpoint sinks, restore sources, trace writers.
func GridWith(n int, seed uint64, opts diagnosis.Options, extra ...engine.Option) *System {
	if n < 3 {
		panic("scenario: grid needs at least 3 components")
	}
	sys := &System{}
	eng := engine.MustNew(append([]engine.Option{
		engine.WithTopology(n, 250*sim.Microsecond, 160),
		engine.WithSeed(seed),
		engine.WithClocks(50, 0, 20, 1),
		engine.WithBuild(buildGrid(n)),
		engine.WithDiagnosis(tt.NodeID(n-1), opts),
		engine.WithOBD(),
	}, extra...)...)
	sys.Engine = eng
	sys.Cluster = eng.Cluster
	sys.Diag = eng.Diag
	sys.OBD = eng.OBD
	sys.Injector = eng.Injector
	return sys
}

// buildGrid returns the chain-topology population hook for n components.
func buildGrid(n int) func(cl *component.Cluster) {
	return func(cl *component.Cluster) {
		comps := make([]*component.Component, n)
		for i := 0; i < n; i++ {
			comps[i] = cl.AddComponent(tt.NodeID(i), fmt.Sprintf("c%d", i), float64(i), 0)
		}
		cl.Env.DefineSine("signal", 30, 200*sim.Millisecond, 50)

		for i := 0; i+1 < n; i++ {
			das := cl.AddDAS(fmt.Sprintf("D%d", i), component.NonSafetyCritical)
			net := cl.AddNetwork(das, fmt.Sprintf("D%d.tt", i), vnet.TimeTriggered)
			net.AddEndpoint(tt.NodeID(i), 20, 0)
			ch := vnet.ChannelID(i + 1)
			sensor := cl.AddJob(das, comps[i], "sense", 0, &component.SensorJob{
				Signal: "signal", Out: ch,
				PhysMin: -10, PhysMax: 110, FrozenWindow: 20,
			})
			consumer := cl.AddJob(das, comps[i+1], "consume", 1, component.JobFunc(func(ctx *component.Context) {
				ctx.Latest(ch)
			}))
			cl.Produce(sensor, net, component.ChannelSpec{
				Channel: ch, Name: "signal", Min: 0, Max: 100,
				MaxAgeRounds: 3, StuckRounds: 20, Sensor: true,
			})
			cl.Subscribe(consumer, ch, 0, true)
		}
	}
}
