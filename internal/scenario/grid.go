package scenario

import (
	"decos/internal/diagnosis"
	"decos/internal/engine"
	"decos/internal/pack"
)

// Grid builds an n-component cluster (n ≥ 3) for scalability studies: a
// chain of sensor→control DASs, one DAS per adjacent component pair, with
// the diagnostic DAS's analysis stage on the last component. Channel i+1
// carries the i-th sensor's signal.
func Grid(n int, seed uint64, opts diagnosis.Options) *System {
	return GridWith(n, seed, opts)
}

// GridWith is Grid with extra engine options composed onto the canonical
// configuration — checkpoint sinks, restore sources, trace writers.
func GridWith(n int, seed uint64, opts diagnosis.Options, extra ...engine.Option) *System {
	if n < 3 {
		panic("scenario: grid needs at least 3 components")
	}
	sys := &System{}
	t := pack.GridTopology(n)
	eng := engine.MustNew(append(t.Options(seed, opts, nil), extra...)...)
	sys.Engine = eng
	sys.Cluster = eng.Cluster
	sys.Diag = eng.Diag
	sys.OBD = eng.OBD
	sys.Injector = eng.Injector
	return sys
}
