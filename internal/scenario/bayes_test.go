package scenario

import (
	"bytes"
	"context"
	"testing"

	"decos/internal/bayes"
	"decos/internal/diagnosis"
	"decos/internal/engine"
	"decos/internal/sim"
)

// bayesPlan is an intermittent-internal injection the posterior must
// integrate over many epochs — the interesting case for checkpointing,
// because the belief state mid-accumulation is not reconstructible from
// the symptom history alone.
func bayesPlan(rounds int64) []InjectPlan {
	horizon := sim.Time(rounds) * sim.Time(sim.Millisecond)
	return []InjectPlan{{
		Kind: KindIntermittent, At: sim.Time(300 * sim.Millisecond), Horizon: horizon,
	}}
}

// TestBayesPosteriorDeterminism runs the same seeded system twice with
// the Bayesian stage installed and requires bit-identical engine
// checkpoints — the checkpoint carries the full posterior ("cls"
// section), so equality pins the belief state float for float.
func TestBayesPosteriorDeterminism(t *testing.T) {
	const (
		seed   = 4242
		rounds = 3000
	)
	run := func() []byte {
		sys := Fig10Faulted(seed, diagnosis.Options{}, bayesPlan(rounds),
			engine.WithClassifier(bayes.New()))
		sys.Run(rounds)
		var ck bytes.Buffer
		if err := sys.Engine.Checkpoint(&ck); err != nil {
			t.Fatal(err)
		}
		return ck.Bytes()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("empty checkpoint")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("double run diverged: %d vs %d checkpoint bytes", len(a), len(b))
	}
}

// TestBayesCheckpointRestoreRerun cuts a Bayesian run mid-flight,
// restores the checkpoint into a freshly built engine and runs the
// remainder: the final checkpoint — posterior included — must be
// bit-identical to the uninterrupted run's, and the standing verdicts
// must agree. This is the ckpt.Snapshotter contract of the posterior
// state at system scale.
func TestBayesCheckpointRestoreRerun(t *testing.T) {
	const (
		seed   = 4242
		rounds = 3000
		cut    = 1400
	)
	plan := bayesPlan(rounds)
	build := func(extra ...engine.Option) *System {
		return Fig10Faulted(seed, diagnosis.Options{}, plan,
			append([]engine.Option{engine.WithClassifier(bayes.New())}, extra...)...)
	}

	full := build()
	full.Run(rounds)
	var want bytes.Buffer
	if err := full.Engine.Checkpoint(&want); err != nil {
		t.Fatal(err)
	}
	if len(full.Diag.Assessor.CurrentAll()) == 0 {
		t.Fatal("Bayesian stage emitted no verdict — the round trip would be vacuous")
	}

	half := build()
	half.Run(cut)
	var ck bytes.Buffer
	if err := half.Engine.Checkpoint(&ck); err != nil {
		t.Fatal(err)
	}

	resumed := build(engine.WithRestore(bytes.NewReader(ck.Bytes())))
	if err := resumed.Cluster.RunToRoundCtx(context.Background(), rounds); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := resumed.Engine.Checkpoint(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("restored run diverges from uninterrupted run: %d vs %d checkpoint bytes",
			got.Len(), want.Len())
	}

	wantV := full.Diag.Assessor.CurrentAll()
	gotV := resumed.Diag.Assessor.CurrentAll()
	if len(wantV) != len(gotV) {
		t.Fatalf("verdict count %d after restore, want %d", len(gotV), len(wantV))
	}
	for i := range wantV {
		if wantV[i].FRU != gotV[i].FRU || wantV[i].Class != gotV[i].Class ||
			wantV[i].Pattern != gotV[i].Pattern || wantV[i].Confidence != gotV[i].Confidence {
			t.Errorf("verdict %d: %+v after restore, want %+v", i, gotV[i], wantV[i])
		}
	}
}
