package scenario

import (
	"testing"

	"decos/internal/baseline"
	"decos/internal/bayes"
	"decos/internal/ckpt"
	"decos/internal/core"
	"decos/internal/diagnosis"
	"decos/internal/engine"
	"decos/internal/sim"
)

// All three first-class diagnosers satisfy the pipeline's
// classification-stage contract; the Bayesian stage additionally
// checkpoints its posterior and ranks verdicts.
var (
	_ diagnosis.Classifier = (*diagnosis.FaultModelClassifier)(nil)
	_ diagnosis.Classifier = (*baseline.OBD)(nil)
	_ diagnosis.Classifier = (*bayes.Classifier)(nil)
	_ ckpt.Snapshotter     = (*bayes.Classifier)(nil)
	_ diagnosis.Ranker     = (*bayes.Classifier)(nil)
)

// TestClassifiersInterchangeable is the contract test of the staged
// pipeline: the DECOS fault-model classifier, the OBD baseline and the
// Bayesian posterior stage plug into the same Collector → Classifier →
// Adviser pipeline, and for a fault all three can see — a permanent
// fail-silent component, well past the OBD 500 ms DTC threshold — each
// drives a verdict through the identical downstream surface
// (VerdictOf / Advise), with the maintenance action derived by the
// shared adviser rule.
func TestClassifiersInterchangeable(t *testing.T) {
	const seed = 20050404
	run := func(extra ...engine.Option) *System {
		sys := Fig10With(seed, diagnosis.Options{}, extra...)
		// Kill component 2 early so the failure persists far beyond the
		// OBD recording threshold.
		sys.Injector.PermanentFailSilent(2, sim.Time(50*sim.Millisecond))
		sys.Run(4000)
		return sys
	}

	decos := run()
	obd := run(engine.WithOBDClassifier())
	bayesian := run(engine.WithClassifier(bayes.New()))

	if name := decos.Diag.Assessor.Classifier().Name(); name != "decos" {
		t.Fatalf("default classifier = %q, want decos", name)
	}
	if name := obd.Diag.Assessor.Classifier().Name(); name != "obd" {
		t.Fatalf("selected classifier = %q, want obd", name)
	}
	if name := bayesian.Diag.Assessor.Classifier().Name(); name != "bayes" {
		t.Fatalf("selected classifier = %q, want bayes", name)
	}

	fru := core.HardwareFRU(2)
	for _, sys := range []*System{decos, obd, bayesian} {
		name := sys.Diag.Assessor.Classifier().Name()

		v, ok := sys.Diag.VerdictOf(fru)
		if !ok {
			t.Fatalf("%s: no verdict for the dead component", name)
		}
		if v.Class != core.ComponentInternal {
			t.Errorf("%s: class = %v, want ComponentInternal", name, v.Class)
		}
		// The action comes from the shared adviser stage, so it must agree
		// with the Fig. 11 derivation rule for the diagnosed class.
		wantClass, wantAction := diagnosis.DeriveAction(v.Class, false)
		if v.Action != wantAction || v.Class != wantClass {
			t.Errorf("%s: verdict %v/%v disagrees with DeriveAction → %v/%v",
				name, v.Class, v.Action, wantClass, wantAction)
		}

		// The maintenance.Advisor surface is the same code path on both.
		action, class, found := sys.Diag.Advise(fru)
		if !found || action != v.Action || class != v.Class {
			t.Errorf("%s: Advise = (%v, %v, %v), want verdict (%v, %v, true)",
				name, action, class, found, v.Action, v.Class)
		}

		// Healthy components stay unaccused under either classifier.
		if hv, ok := sys.Diag.VerdictOf(core.HardwareFRU(1)); ok {
			t.Errorf("%s: healthy component 1 accused: %+v", name, hv)
		}
	}

	// The OBD path must also agree with its own standalone advisory view —
	// the baseline's Advise routes through the same shared derivation.
	action, class, found := obd.OBD.Advise(fru)
	if !found || class != core.ComponentInternal || action != core.ActionReplaceComponent {
		t.Errorf("OBD.Advise = (%v, %v, %v), want (replace-component, ComponentInternal, true)",
			action, class, found)
	}
}
