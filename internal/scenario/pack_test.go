package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"testing"

	"decos/internal/diagnosis"
	"decos/internal/engine"
	"decos/internal/faults"
	"decos/internal/pack"
	"decos/internal/sim"
	"decos/internal/trace"
)

// TestCampaignKindsContract pins pack.CampaignKinds — the names a
// manifest's campaign mix may weight — to the FaultKind enum. The pack
// package cannot import scenario, so it carries its own copy of the
// list; this test is what keeps the two in lockstep.
func TestCampaignKindsContract(t *testing.T) {
	var want []string
	for _, k := range AllKinds() {
		want = append(want, k.String())
	}
	if !reflect.DeepEqual(pack.CampaignKinds, want) {
		t.Fatalf("pack.CampaignKinds out of sync with scenario.AllKinds:\npack:     %v\nscenario: %v",
			pack.CampaignKinds, want)
	}
	for _, k := range AllKinds() {
		got, ok := ParseKind(k.String())
		if !ok || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := ParseKind("gremlin"); ok {
		t.Error("ParseKind accepted an unknown kind")
	}
}

// traceOf runs a freshly built engine for n rounds and returns its
// binary trace bytes.
func traceOf(t *testing.T, n int64, build func(w *bytes.Buffer) *engine.Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	eng := build(&buf)
	eng.RunRounds(n)
	return buf.Bytes()
}

var traceOpts = trace.Options{AllFrames: true, TrustEveryEpochs: 2}

// TestManifestFig10ByteIdentical is the refactor's core guarantee: a
// manifest declaring the Fig. 10 topology drives the engine through the
// exact option composition the Go constructor produces, so the two runs
// emit byte-identical traces — RNG draws, frame payloads, verdict
// timing and all. The fault list exercises the manifest's injector
// mapping against hand-written injections of the same primitives.
func TestManifestFig10ByteIdentical(t *testing.T) {
	const (
		seed   = 20050404
		rounds = 600
	)
	goAPI := traceOf(t, rounds, func(w *bytes.Buffer) *engine.Engine {
		sys := Fig10With(seed, diagnosis.Options{},
			engine.WithFaults(func(inj *faults.Injector) {
				inj.DefectiveQuartz(1, sim.Time(200*sim.Millisecond), 90_000)
				cl := inj.Cluster()
				inj.SensorStuck(cl.DAS("A").JobNamed("A1"), sim.Time(300*sim.Millisecond), 42.5)
			}),
			engine.WithTraceWriter(w, traceOpts))
		return sys.Engine
	})

	manifest := traceOf(t, rounds, func(w *bytes.Buffer) *engine.Engine {
		m, err := pack.Parse([]byte(fmt.Sprintf(`pack = 1
name = "round-trip"
seed = %d
rounds = %d
[topology]
kind = "fig10"
[[faults]]
kind = "quartz"
component = 1
at_ms = 200
drift_ppm = 90000
[[faults]]
kind = "sensor-stuck"
job = "A/A1"
at_ms = 300
value = 42.5
`, seed, rounds)), "round-trip.toml")
		if err != nil {
			t.Fatal(err)
		}
		eng, err := m.Engine(engine.WithTraceWriter(w, traceOpts))
		if err != nil {
			t.Fatal(err)
		}
		return eng
	})

	if len(goAPI) == 0 {
		t.Fatal("Go API run produced no trace")
	}
	if !bytes.Equal(goAPI, manifest) {
		t.Fatalf("manifest run diverges from the Go constructor: %d vs %d trace bytes",
			len(manifest), len(goAPI))
	}
}

// TestManifestGridByteIdentical is the same round-trip over the
// scalability grid topology.
func TestManifestGridByteIdentical(t *testing.T) {
	const (
		seed   = 1234
		nodes  = 6
		rounds = 400
	)
	goAPI := traceOf(t, rounds, func(w *bytes.Buffer) *engine.Engine {
		sys := GridWith(nodes, seed, diagnosis.Options{},
			engine.WithTraceWriter(w, traceOpts))
		return sys.Engine
	})
	manifest := traceOf(t, rounds, func(w *bytes.Buffer) *engine.Engine {
		m, err := pack.Parse([]byte(fmt.Sprintf(`pack = 1
name = "grid-round-trip"
seed = %d
rounds = %d
[topology]
kind = "grid"
nodes = %d
`, seed, rounds, nodes)), "grid-round-trip.toml")
		if err != nil {
			t.Fatal(err)
		}
		eng, err := m.Engine(engine.WithTraceWriter(w, traceOpts))
		if err != nil {
			t.Fatal(err)
		}
		return eng
	})
	if len(goAPI) == 0 {
		t.Fatal("Go API run produced no trace")
	}
	if !bytes.Equal(goAPI, manifest) {
		t.Fatalf("manifest run diverges from the Go constructor: %d vs %d trace bytes",
			len(manifest), len(goAPI))
	}
}

// TestShippedPacksConform is the conformance contract: every manifest
// shipped under packs/ parses, validates, runs against both classifiers
// and meets its own expectations — and scoring it twice produces the
// identical result (packs are pure functions of their manifests). One
// subtest per pack, so a regression names the pack that broke.
func TestShippedPacksConform(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	dir, ok := pack.FindPacksDir(wd)
	if !ok {
		t.Fatal("no packs/ directory above the test")
	}
	files, err := pack.Discover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 10 {
		t.Fatalf("pack library shrank to %d manifests, want ≥ 10", len(files))
	}
	ctx := context.Background()
	for _, path := range files {
		m, err := pack.Load(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		t.Run(m.Name, func(t *testing.T) {
			t.Parallel()
			first := Conform(ctx, m)
			if first.Error != "" {
				t.Fatalf("conformance error: %s", first.Error)
			}
			if !first.Pass {
				for _, cs := range first.Classifiers {
					for _, c := range cs.Checks {
						if !c.Pass {
							t.Errorf("%s: %s — %s", cs.Classifier, c.Desc, c.Detail)
						}
					}
				}
				t.Fatal("pack does not meet its own expectations")
			}
			if len(first.Classifiers) == 0 {
				t.Fatal("pack scored no classifiers")
			}
			for _, cs := range first.Classifiers {
				if cs.Classifier == pack.ClassifierDECOS && cs.Total == 0 {
					t.Error("pack carries no DECOS expectations — a vacuous 1.0 score")
				}
			}
			second := Conform(ctx, m)
			a, _ := json.Marshal(stripWallClock(first))
			b, _ := json.Marshal(stripWallClock(second))
			if !bytes.Equal(a, b) {
				t.Fatalf("conformance is not deterministic:\nfirst:  %s\nsecond: %s", a, b)
			}
		})
	}
}

// stripWallClock zeroes the per-leg wall-clock before the determinism
// comparison: timing is the one report field allowed to vary between
// otherwise identical runs.
func stripWallClock(pr *pack.PackResult) *pack.PackResult {
	out := *pr
	out.Classifiers = append([]pack.ClassifierScore(nil), pr.Classifiers...)
	for i := range out.Classifiers {
		out.Classifiers[i].WallClockMS = 0
	}
	return &out
}
