package scenario

import (
	"context"
	"math"
)

// Stat summarizes one metric over Monte Carlo replicates: sample mean,
// half-width of the normal-approximation 95 % confidence interval
// (1.96·s/√n, 0 when n < 2) and the observed range.
type Stat struct {
	Mean     float64
	CI95     float64
	Min, Max float64
	N        int
}

// newStat folds a sample slice into a Stat.
func newStat(xs []float64) Stat {
	s := Stat{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	if s.N == 0 {
		s.Min, s.Max = 0, 0
		return s
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N < 2 {
		return s
	}
	ss := 0.0
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(s.N-1))
	s.CI95 = 1.96 * sd / math.Sqrt(float64(s.N))
	return s
}

// MonteCarloResult aggregates N replicate campaigns. Pipeline metrics
// describe whatever classification stage Campaign.Classifier installs;
// Baseline metrics describe the OBD advisor attached alongside.
type MonteCarloResult struct {
	Replicates int
	// Completed counts replicates that ran to the end; a cancelled run
	// aggregates only those (Partial is then true).
	Completed int
	Partial   bool

	PipelineAccuracy Stat
	PipelineNFF      Stat
	BaselineAccuracy Stat
	BaselineNFF      Stat
	// FalseAlarms is the pipeline's false-alarm count on fault-free
	// vehicles per replicate.
	FalseAlarms Stat
}

// MonteCarlo runs n seeded replicates of the campaign and returns
// mean ± 95 % CI per audit metric. Replicate r reseeds the whole
// campaign with a seed derived from Seed and r, so replicates draw
// independent fault mixes, targets and activation instants — the
// between-replicate spread measures how sensitive a verdict-accuracy
// claim is to the draw, which a single campaign run cannot show.
// Replicates run sequentially (each already parallelizes over
// Workers); cancellation stops after the current replicate.
func (c Campaign) MonteCarlo(ctx context.Context, n int) *MonteCarloResult {
	mc := &MonteCarloResult{Replicates: n}
	var pAcc, pNFF, bAcc, bNFF, fa []float64
	for r := 0; r < n; r++ {
		if ctx.Err() != nil {
			break
		}
		rc := c
		// 0x9e3779b97f4a7c15 is the 64-bit golden-ratio increment; the
		// multiplied offset keeps replicate seed streams disjoint from the
		// per-vehicle seed lattice (Seed + v·7919) inside each replicate.
		rc.Seed = c.Seed + uint64(r)*0x9e3779b97f4a7c15
		res := rc.RunContext(ctx)
		if res.Partial {
			break
		}
		mc.Completed++
		pAcc = append(pAcc, res.DECOS.ClassAccuracy())
		pNFF = append(pNFF, res.DECOS.NFFRatio())
		bAcc = append(bAcc, res.OBD.ClassAccuracy())
		bNFF = append(bNFF, res.OBD.NFFRatio())
		fa = append(fa, float64(res.DECOSFalseAlarms))
	}
	mc.Partial = mc.Completed < n
	mc.PipelineAccuracy = newStat(pAcc)
	mc.PipelineNFF = newStat(pNFF)
	mc.BaselineAccuracy = newStat(bAcc)
	mc.BaselineNFF = newStat(bNFF)
	mc.FalseAlarms = newStat(fa)
	return mc
}
