package scenario

import (
	"context"
	"fmt"
	"time"

	"decos/internal/pack"
)

// ParseKind maps a campaign-mix kind name from a scenario pack onto the
// FaultKind enum. The name set is pinned to pack.CampaignKinds by a
// contract test (pack cannot import scenario, so it carries its own
// copy of the list for validation).
func ParseKind(name string) (FaultKind, bool) {
	for _, k := range AllKinds() {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// CampaignFromManifest maps a validated campaign pack onto the fleet
// campaign driver. The pack's seed, rounds and diagnosis overrides
// carry over; an empty mix falls back to the paper's default field
// distribution, exactly like a nil Campaign.Mix.
func CampaignFromManifest(m *pack.Manifest) Campaign {
	cs := m.Campaign
	if cs == nil {
		panic("scenario: CampaignFromManifest on a single-vehicle pack")
	}
	c := Campaign{
		Vehicles:         cs.Vehicles,
		Rounds:           m.Rounds,
		Seed:             m.Seed,
		FaultFreeShare:   cs.FaultFreeShare,
		FaultsPerVehicle: cs.FaultsPerVehicle,
		Classifier:       m.Classifier,
		Opts:             m.Diagnosis.Options(),
	}
	if len(cs.Mix) > 0 {
		mix := make(map[FaultKind]float64, len(cs.Mix))
		for name, w := range cs.Mix {
			k, ok := ParseKind(name)
			if !ok {
				// Validation pins mix keys to pack.CampaignKinds.
				panic(fmt.Sprintf("scenario: campaign mix kind %q (validate first)", name))
			}
			mix[k] = w
		}
		c.Mix = mix
	}
	return c
}

// Conform scores one pack against every classifier: single-vehicle
// packs run through the pack conformance runner; campaign packs run the
// fleet twice — one pass with the DECOS pipeline (which audits the OBD
// baseline alongside, yielding two legs for one run cost) and one pass
// with the Bayesian pipeline. The pack's own classifier selection is
// ignored: conformance always pins the stage per leg.
func Conform(ctx context.Context, m *pack.Manifest) *pack.PackResult {
	return ConformFor(ctx, m, pack.Classifiers)
}

// ConformFor is Conform restricted to the named classifiers; campaign
// legs that are not asked for are not simulated.
func ConformFor(ctx context.Context, m *pack.Manifest, clss []string) *pack.PackResult {
	if m.Campaign == nil {
		return pack.ConformSingleFor(ctx, m, clss)
	}
	want := map[string]bool{}
	for _, cls := range clss {
		want[cls] = true
	}
	legs := map[string]pack.CampaignLeg{}
	partial := false
	if want[pack.ClassifierDECOS] || want[pack.ClassifierOBD] {
		base := CampaignFromManifest(m)
		base.Classifier = ""
		start := time.Now()
		res := base.RunContext(ctx)
		baseMS := float64(time.Since(start).Microseconds()) / 1e3
		partial = partial || res.Partial
		if want[pack.ClassifierDECOS] {
			legs[pack.ClassifierDECOS] = pack.CampaignLeg{
				Report: res.DECOS, FalseAlarms: res.DECOSFalseAlarms, WallClockMS: baseMS}
		}
		if want[pack.ClassifierOBD] {
			legs[pack.ClassifierOBD] = pack.CampaignLeg{
				Report: res.OBD, FalseAlarms: res.OBDFalseAlarms, WallClockMS: baseMS}
		}
	}
	if want[pack.ClassifierBayes] {
		bc := CampaignFromManifest(m)
		bc.Classifier = pack.ClassifierBayes
		start := time.Now()
		bres := bc.RunContext(ctx)
		partial = partial || bres.Partial
		legs[pack.ClassifierBayes] = pack.CampaignLeg{
			Report: bres.DECOS, FalseAlarms: bres.DECOSFalseAlarms,
			WallClockMS: float64(time.Since(start).Microseconds()) / 1e3}
	}
	pr := pack.ScoreCampaign(m, legs)
	if partial {
		pr.Error = "campaign cancelled before all vehicles completed"
		pr.Pass = false
	}
	return pr
}

// ConformAll scores every pack in sequence into one report.
func ConformAll(ctx context.Context, ms []*pack.Manifest) *pack.Report {
	rep := &pack.Report{Version: pack.Version}
	for _, m := range ms {
		rep.Add(Conform(ctx, m))
	}
	return rep
}
