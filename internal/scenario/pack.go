package scenario

import (
	"context"
	"fmt"

	"decos/internal/pack"
)

// ParseKind maps a campaign-mix kind name from a scenario pack onto the
// FaultKind enum. The name set is pinned to pack.CampaignKinds by a
// contract test (pack cannot import scenario, so it carries its own
// copy of the list for validation).
func ParseKind(name string) (FaultKind, bool) {
	for _, k := range AllKinds() {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// CampaignFromManifest maps a validated campaign pack onto the fleet
// campaign driver. The pack's seed, rounds and diagnosis overrides
// carry over; an empty mix falls back to the paper's default field
// distribution, exactly like a nil Campaign.Mix.
func CampaignFromManifest(m *pack.Manifest) Campaign {
	cs := m.Campaign
	if cs == nil {
		panic("scenario: CampaignFromManifest on a single-vehicle pack")
	}
	c := Campaign{
		Vehicles:         cs.Vehicles,
		Rounds:           m.Rounds,
		Seed:             m.Seed,
		FaultFreeShare:   cs.FaultFreeShare,
		FaultsPerVehicle: cs.FaultsPerVehicle,
		Opts:             m.Diagnosis.Options(),
	}
	if len(cs.Mix) > 0 {
		mix := make(map[FaultKind]float64, len(cs.Mix))
		for name, w := range cs.Mix {
			k, ok := ParseKind(name)
			if !ok {
				// Validation pins mix keys to pack.CampaignKinds.
				panic(fmt.Sprintf("scenario: campaign mix kind %q (validate first)", name))
			}
			mix[k] = w
		}
		c.Mix = mix
	}
	return c
}

// Conform scores one pack against both classifiers: single-vehicle
// packs run through the pack conformance runner, campaign packs through
// the fleet campaign driver (which audits the DECOS diagnoser and the
// OBD baseline in one pass).
func Conform(ctx context.Context, m *pack.Manifest) *pack.PackResult {
	if m.Campaign == nil {
		return pack.ConformSingle(ctx, m)
	}
	res := CampaignFromManifest(m).RunContext(ctx)
	pr := pack.ScoreCampaign(m, res.DECOS, res.OBD, res.DECOSFalseAlarms, res.OBDFalseAlarms)
	if res.Partial {
		pr.Error = "campaign cancelled before all vehicles completed"
		pr.Pass = false
	}
	return pr
}

// ConformAll scores every pack in sequence into one report.
func ConformAll(ctx context.Context, ms []*pack.Manifest) *pack.Report {
	rep := &pack.Report{Version: pack.Version}
	for _, m := range ms {
		rep.Add(Conform(ctx, m))
	}
	return rep
}
