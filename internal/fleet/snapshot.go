package fleet

import "sort"

// TallyJob is one job's serialized tally state: its incident count and the
// distinct vehicles it was observed on, vehicles ascending.
type TallyJob struct {
	Job       string `json:"job"`
	Incidents int    `json:"incidents"`
	Vehicles  []int  `json:"vehicles"`
}

// TallySnapshot is the canonical wire form of a Tally, the unit a warranty
// shard exports so a coordinator can fold per-shard fleet correlation with
// Tally.Merge. Jobs are sorted by name and vehicle sets ascending, so two
// tallies holding the same observations serialize to identical bytes
// regardless of ingestion order.
type TallySnapshot struct {
	Jobs []TallyJob `json:"jobs,omitempty"`
}

// Snapshot exports the tally's full state in canonical order.
func (t *Tally) Snapshot() TallySnapshot {
	var s TallySnapshot
	for job, jt := range t.byJob {
		vs := make([]int, 0, len(jt.vehicles))
		for v := range jt.vehicles {
			vs = append(vs, v)
		}
		sort.Ints(vs)
		s.Jobs = append(s.Jobs, TallyJob{Job: job, Incidents: jt.incidents, Vehicles: vs})
	}
	sort.Slice(s.Jobs, func(i, j int) bool { return s.Jobs[i].Job < s.Jobs[j].Job })
	return s
}

// TallyFromSnapshot rebuilds a Tally from its wire form. The total
// incident count is recomputed from the per-job counts, so a snapshot
// cannot smuggle in an inconsistent total.
func TallyFromSnapshot(s TallySnapshot) *Tally {
	t := NewTally()
	for _, j := range s.Jobs {
		jt := &jobTally{incidents: j.Incidents, vehicles: make(map[int]bool, len(j.Vehicles))}
		for _, v := range j.Vehicles {
			jt.vehicles[v] = true
		}
		t.byJob[j.Job] = jt
		t.incidents += j.Incidents
	}
	return t
}
