package fleet

import (
	"math"
	"strings"
	"testing"

	"decos/internal/core"
)

func TestSystematicVsLocal(t *testing.T) {
	a := NewAggregator(100)
	// Job "A/ctl" flagged on 40 vehicles: a shipped software fault.
	for v := 0; v < 40; v++ {
		a.Add(Incident{Vehicle: v, Job: "A/ctl", Class: core.JobInherent, Pattern: "job-inherent"})
	}
	// Job "A/sense" flagged on 2 vehicles: their sensors.
	a.Add(Incident{Vehicle: 7, Job: "A/sense", Class: core.JobInherentSensor, Pattern: "job-inherent-sensor"})
	a.Add(Incident{Vehicle: 9, Job: "A/sense", Class: core.JobInherentSensor, Pattern: "job-inherent-sensor"})

	stats := a.Analyze(0.1)
	if len(stats) != 2 {
		t.Fatalf("stats = %d entries", len(stats))
	}
	if stats[0].Job != "A/ctl" || !stats[0].Systematic || stats[0].Vehicles != 40 {
		t.Errorf("ctl stat wrong: %+v", stats[0])
	}
	if stats[1].Job != "A/sense" || stats[1].Systematic {
		t.Errorf("sense stat wrong: %+v", stats[1])
	}
	if !strings.Contains(a.Report(0.1), "SYSTEMATIC") {
		t.Error("report lacks systematic flag")
	}
}

func TestDuplicateVehicleCountedOnce(t *testing.T) {
	a := NewAggregator(10)
	for i := 0; i < 5; i++ {
		a.Add(Incident{Vehicle: 3, Job: "X/j", Class: core.JobInherent})
	}
	stats := a.Analyze(0.5)
	if stats[0].Vehicles != 1 {
		t.Errorf("vehicle deduplication failed: %d", stats[0].Vehicles)
	}
	if len(a.Incidents()) != 5 {
		t.Errorf("incident count = %d", len(a.Incidents()))
	}
}

func TestNonInherentIncidentsIgnored(t *testing.T) {
	a := NewAggregator(10)
	a.Add(Incident{Vehicle: 1, Job: "X/j", Class: core.ComponentInternal})
	if len(a.Incidents()) != 0 {
		t.Error("hardware incident accepted into fleet analysis")
	}
}

func TestPareto2080(t *testing.T) {
	a := NewAggregator(1000)
	// 10 jobs; 2 of them (20 %) cause 80 of 100 incidents.
	v := 0
	addN := func(job string, n int) {
		for i := 0; i < n; i++ {
			a.Add(Incident{Vehicle: v, Job: job, Class: core.JobInherent})
			v++
		}
	}
	addN("hot/1", 45)
	addN("hot/2", 35)
	for i := 0; i < 8; i++ {
		addN("cold/"+string(rune('a'+i)), 2+i%2)
	}
	got := a.Pareto(0.2)
	if math.Abs(got-0.8) > 0.08 {
		t.Errorf("Pareto(0.2) = %v, want ≈0.8", got)
	}
	if a.Pareto(1.0) != 1.0 {
		t.Errorf("Pareto(1.0) = %v", a.Pareto(1.0))
	}
}

func TestParetoEmpty(t *testing.T) {
	a := NewAggregator(5)
	if a.Pareto(0.2) != 0 {
		t.Error("empty Pareto non-zero")
	}
}

func TestNewAggregatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero fleet size accepted")
		}
	}()
	NewAggregator(0)
}
