package fleet

import (
	"reflect"
	"testing"

	"decos/internal/sim"
)

// observation is one (vehicle, job) incident of a synthetic fleet stream.
type observation struct {
	vehicle int
	job     string
}

// randomStream draws a skewed synthetic incident stream: few jobs carry
// most incidents (the 20-80 shape the Pareto metric is sensitive to).
func randomStream(rng *sim.RNG, n, vehicles, jobs int) []observation {
	names := make([]string, jobs)
	for j := range names {
		names[j] = "job[" + string(rune('A'+j%26)) + "/j@0]" + string(rune('0'+j/26))
	}
	out := make([]observation, n)
	for i := range out {
		// Quadratic skew towards low job indices.
		f := rng.Float64()
		j := int(f * f * float64(jobs))
		if j >= jobs {
			j = jobs - 1
		}
		out[i] = observation{vehicle: 1 + rng.Intn(vehicles), job: names[j]}
	}
	return out
}

// analysis is everything downstream consumers read off a tally.
type analysis struct {
	incidents int
	jobs      int
	pareto20  float64
	stats     []JobStat
	snap      TallySnapshot
}

func analyze(t *Tally, fleetSize int) analysis {
	return analysis{
		incidents: t.Incidents(),
		jobs:      t.Jobs(),
		pareto20:  t.Pareto(0.2),
		stats:     t.Analyze(fleetSize, 0.15),
		snap:      t.Snapshot(),
	}
}

// TestTallyMergeOrderInsensitive pins the invariant the coordinator's
// bit-identical guarantee rests on: a random event stream split into K
// shards and folded back in shuffled orders — and in arbitrary
// associativity groupings — must produce Analyze/Pareto output identical
// to the unsharded fold.
func TestTallyMergeOrderInsensitive(t *testing.T) {
	const fleetSize = 64
	for _, tc := range []struct {
		seed   uint64
		events int
		shards int
	}{
		{seed: 1, events: 500, shards: 2},
		{seed: 2, events: 2000, shards: 4},
		{seed: 3, events: 5000, shards: 7},
		{seed: 4, events: 1, shards: 4},
		{seed: 5, events: 0, shards: 3},
	} {
		rng := sim.NewRNG(tc.seed)
		stream := randomStream(rng, tc.events, fleetSize, 23)

		// Reference: one tally folds the whole stream in order.
		single := NewTally()
		for _, o := range stream {
			single.Observe(o.vehicle, o.job)
		}
		want := analyze(single, fleetSize)

		// Shard by vehicle (the ring's partition law: one vehicle, one
		// shard), preserving per-shard stream order.
		shards := make([]*Tally, tc.shards)
		for i := range shards {
			shards[i] = NewTally()
		}
		for _, o := range stream {
			shards[o.vehicle%tc.shards].Observe(o.vehicle, o.job)
		}

		// Fold the shards in several shuffled orders.
		for trial := 0; trial < 8; trial++ {
			order := rng.Perm(tc.shards)
			merged := NewTally()
			for _, i := range order {
				merged.Merge(shards[i])
			}
			if got := analyze(merged, fleetSize); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d order %v: merged analysis diverged:\ngot  %+v\nwant %+v",
					tc.seed, order, got, want)
			}
		}

		// Associativity: merge((s0,s1),(s2,...)) versus the flat left fold.
		left := NewTally()
		left.Merge(shards[0])
		if tc.shards > 1 {
			left.Merge(shards[1])
		}
		right := NewTally()
		for _, sh := range shards[2:] {
			right.Merge(sh)
		}
		grouped := NewTally()
		grouped.Merge(left)
		grouped.Merge(right)
		if got := analyze(grouped, fleetSize); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: grouped merge diverged:\ngot  %+v\nwant %+v", tc.seed, got, want)
		}
	}
}

// TestTallySnapshotRoundTrip: export → import reproduces the tally exactly
// (same analysis, same canonical snapshot), and the exported form is
// canonical — identical bytes for identical observations regardless of
// ingestion order.
func TestTallySnapshotRoundTrip(t *testing.T) {
	rng := sim.NewRNG(42)
	stream := randomStream(rng, 1500, 40, 17)

	fwd, rev := NewTally(), NewTally()
	for _, o := range stream {
		fwd.Observe(o.vehicle, o.job)
	}
	for i := len(stream) - 1; i >= 0; i-- {
		rev.Observe(stream[i].vehicle, stream[i].job)
	}
	if !reflect.DeepEqual(fwd.Snapshot(), rev.Snapshot()) {
		t.Fatal("snapshot not canonical: ingestion order leaked into the export")
	}

	back := TallyFromSnapshot(fwd.Snapshot())
	if got, want := analyze(back, 40), analyze(fwd, 40); !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip diverged:\ngot  %+v\nwant %+v", got, want)
	}
}
