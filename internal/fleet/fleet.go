// Package fleet implements the engineering-feedback loop of the paper's
// Section V-C: correlating the field data gathered by the online diagnostic
// services of a representative vehicle population. Because every vehicle
// runs the same job software but has its own transducers and hardware, a
// job-inherent verdict that recurs across many vehicles evidences a
// software design fault (a Heisenbug that escaped testing), while an
// isolated verdict points at that vehicle's transducer or hardware. The
// package also measures the 20-80 concentration the paper cites (Fenton &
// Ohlsson): a small share of the software modules causes the majority of
// field failures.
package fleet

import (
	"fmt"
	"sort"
	"strings"

	"decos/internal/core"
)

// Incident is one job-inherent finding reported by one vehicle's
// diagnostic DAS.
type Incident struct {
	Vehicle int
	// Job is the software FRU's qualified name ("das/job").
	Job string
	// Class is the reported class (JobInherent or a subclass).
	Class core.FaultClass
	// Pattern is the ONA pattern name, retained for engineering review.
	Pattern string
}

// Aggregator accumulates incidents across a fleet.
type Aggregator struct {
	fleetSize int
	byJob     map[string]map[int]bool // job -> set of reporting vehicles
	incidents []Incident
}

// NewAggregator creates an aggregator for a fleet of the given size.
func NewAggregator(fleetSize int) *Aggregator {
	if fleetSize <= 0 {
		panic("fleet: fleet size must be positive")
	}
	return &Aggregator{fleetSize: fleetSize, byJob: make(map[string]map[int]bool)}
}

// Add records one incident.
func (a *Aggregator) Add(inc Incident) {
	if !inc.Class.Matches(core.JobInherent) && inc.Class != core.JobInherent &&
		inc.Class != core.JobInherentSoftware && inc.Class != core.JobInherentSensor {
		return // only job-inherent findings participate in fleet analysis
	}
	set := a.byJob[inc.Job]
	if set == nil {
		set = make(map[int]bool)
		a.byJob[inc.Job] = set
	}
	set[inc.Vehicle] = true
	a.incidents = append(a.incidents, inc)
}

// Incidents returns all recorded incidents.
func (a *Aggregator) Incidents() []Incident { return a.incidents }

// JobStat is the fleet statistic of one software module.
type JobStat struct {
	Job string
	// Vehicles is the number of distinct vehicles reporting the job.
	Vehicles int
	// Share is Vehicles / fleet size.
	Share float64
	// Systematic classifies the fault as a software design fault (true)
	// or a vehicle-local transducer/hardware issue (false).
	Systematic bool
}

// Analyze classifies each reported job: systematic when its share of the
// fleet exceeds threshold (software is identical on every vehicle, so a
// design fault reproduces across the population; a transducer fault does
// not). Results are ordered by descending share.
func (a *Aggregator) Analyze(threshold float64) []JobStat {
	var out []JobStat
	for job, set := range a.byJob {
		share := float64(len(set)) / float64(a.fleetSize)
		out = append(out, JobStat{
			Job:        job,
			Vehicles:   len(set),
			Share:      share,
			Systematic: share >= threshold,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Vehicles != out[j].Vehicles {
			return out[i].Vehicles > out[j].Vehicles
		}
		return out[i].Job < out[j].Job
	})
	return out
}

// Pareto returns the fraction of all incidents caused by the top topShare
// fraction of reported jobs — the paper's 20-80 observation evaluates to
// Pareto(0.2) ≈ 0.8 when the rule holds.
func (a *Aggregator) Pareto(topShare float64) float64 {
	counts := map[string]int{}
	for _, inc := range a.incidents {
		counts[inc.Job]++
	}
	if len(counts) == 0 {
		return 0
	}
	var jobs []string
	for j := range counts {
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(i, k int) bool {
		if counts[jobs[i]] != counts[jobs[k]] {
			return counts[jobs[i]] > counts[jobs[k]]
		}
		return jobs[i] < jobs[k]
	})
	top := int(topShare*float64(len(jobs)) + 0.5)
	if top < 1 {
		top = 1
	}
	if top > len(jobs) {
		top = len(jobs)
	}
	covered := 0
	for _, j := range jobs[:top] {
		covered += counts[j]
	}
	return float64(covered) / float64(len(a.incidents))
}

// Report renders the analysis as a table.
func (a *Aggregator) Report(threshold float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet of %d vehicles, %d job-inherent incidents\n", a.fleetSize, len(a.incidents))
	for _, s := range a.Analyze(threshold) {
		kind := "vehicle-local (transducer/hardware)"
		if s.Systematic {
			kind = "SYSTEMATIC software design fault → OEM"
		}
		fmt.Fprintf(&b, "  %-16s %3d vehicles (%.0f%%)  %s\n", s.Job, s.Vehicles, 100*s.Share, kind)
	}
	fmt.Fprintf(&b, "Pareto: top 20%% of modules cause %.0f%% of incidents\n", 100*a.Pareto(0.2))
	return b.String()
}
