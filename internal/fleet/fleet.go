// Package fleet implements the engineering-feedback loop of the paper's
// Section V-C: correlating the field data gathered by the online diagnostic
// services of a representative vehicle population. Because every vehicle
// runs the same job software but has its own transducers and hardware, a
// job-inherent verdict that recurs across many vehicles evidences a
// software design fault (a Heisenbug that escaped testing), while an
// isolated verdict points at that vehicle's transducer or hardware. The
// package also measures the 20-80 concentration the paper cites (Fenton &
// Ohlsson): a small share of the software modules causes the majority of
// field failures.
package fleet

import (
	"fmt"
	"strings"

	"decos/internal/core"
)

// Incident is one job-inherent finding reported by one vehicle's
// diagnostic DAS.
type Incident struct {
	Vehicle int
	// Job is the software FRU's qualified name ("das/job").
	Job string
	// Class is the reported class (JobInherent or a subclass).
	Class core.FaultClass
	// Pattern is the ONA pattern name, retained for engineering review.
	Pattern string
}

// Aggregator accumulates incidents across a fleet: a recording layer over
// the incremental Tally that additionally retains the incident records for
// engineering review.
type Aggregator struct {
	fleetSize int
	tally     *Tally
	incidents []Incident
}

// NewAggregator creates an aggregator for a fleet of the given size.
func NewAggregator(fleetSize int) *Aggregator {
	if fleetSize <= 0 {
		panic("fleet: fleet size must be positive")
	}
	return &Aggregator{fleetSize: fleetSize, tally: NewTally()}
}

// Add records one incident.
func (a *Aggregator) Add(inc Incident) {
	if !Relevant(inc.Class) {
		return // only job-inherent findings participate in fleet analysis
	}
	a.tally.Observe(inc.Vehicle, inc.Job)
	a.incidents = append(a.incidents, inc)
}

// Incidents returns all recorded incidents.
func (a *Aggregator) Incidents() []Incident { return a.incidents }

// JobStat is the fleet statistic of one software module.
type JobStat struct {
	Job string `json:"job"`
	// Vehicles is the number of distinct vehicles reporting the job.
	Vehicles int `json:"vehicles"`
	// Share is Vehicles / fleet size.
	Share float64 `json:"share"`
	// Systematic classifies the fault as a software design fault (true)
	// or a vehicle-local transducer/hardware issue (false).
	Systematic bool `json:"systematic"`
}

// Analyze classifies each reported job: systematic when its share of the
// fleet exceeds threshold (software is identical on every vehicle, so a
// design fault reproduces across the population; a transducer fault does
// not). Results are ordered by descending share.
func (a *Aggregator) Analyze(threshold float64) []JobStat {
	return a.tally.Analyze(a.fleetSize, threshold)
}

// Pareto returns the fraction of all incidents caused by the top topShare
// fraction of reported jobs — the paper's 20-80 observation evaluates to
// Pareto(0.2) ≈ 0.8 when the rule holds.
func (a *Aggregator) Pareto(topShare float64) float64 {
	return a.tally.Pareto(topShare)
}

// Report renders the analysis as a table.
func (a *Aggregator) Report(threshold float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet of %d vehicles, %d job-inherent incidents\n", a.fleetSize, len(a.incidents))
	for _, s := range a.Analyze(threshold) {
		kind := "vehicle-local (transducer/hardware)"
		if s.Systematic {
			kind = "SYSTEMATIC software design fault → OEM"
		}
		fmt.Fprintf(&b, "  %-16s %3d vehicles (%.0f%%)  %s\n", s.Job, s.Vehicles, 100*s.Share, kind)
	}
	fmt.Fprintf(&b, "Pareto: top 20%% of modules cause %.0f%% of incidents\n", 100*a.Pareto(0.2))
	return b.String()
}
