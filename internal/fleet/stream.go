package fleet

import (
	"sort"

	"decos/internal/core"
)

// Relevant reports whether a diagnosed class participates in fleet
// correlation: only job-inherent findings (software, sensor, or the merged
// verdict) carry the Section V-C engineering-feedback signal.
func Relevant(c core.FaultClass) bool {
	return c == core.JobInherent || c == core.JobInherentSoftware || c == core.JobInherentSensor
}

// Tally is the incremental form of the fleet-correlation math: per-job
// incident counts and distinct-vehicle sets that can be fed one observation
// at a time (streaming trace ingestion) and merged across shards. The
// classic Aggregator is a thin recording layer over it.
type Tally struct {
	incidents int
	byJob     map[string]*jobTally
}

type jobTally struct {
	incidents int
	vehicles  map[int]bool
}

// NewTally returns an empty tally.
func NewTally() *Tally {
	return &Tally{byJob: make(map[string]*jobTally)}
}

// Observe records one job-inherent incident of a vehicle. Callers filter
// with Relevant first (or use Aggregator.Add, which does).
func (t *Tally) Observe(vehicle int, job string) {
	jt := t.byJob[job]
	if jt == nil {
		jt = &jobTally{vehicles: make(map[int]bool)}
		t.byJob[job] = jt
	}
	jt.incidents++
	jt.vehicles[vehicle] = true
	t.incidents++
}

// Merge folds another tally into this one. Merging shard tallies in a
// fixed order yields results independent of ingestion concurrency.
func (t *Tally) Merge(o *Tally) {
	for job, ojt := range o.byJob {
		jt := t.byJob[job]
		if jt == nil {
			jt = &jobTally{vehicles: make(map[int]bool)}
			t.byJob[job] = jt
		}
		jt.incidents += ojt.incidents
		for v := range ojt.vehicles {
			jt.vehicles[v] = true
		}
	}
	t.incidents += o.incidents
}

// Incidents returns the total number of observations.
func (t *Tally) Incidents() int { return t.incidents }

// Jobs returns the number of distinct reported jobs.
func (t *Tally) Jobs() int { return len(t.byJob) }

// Analyze classifies each reported job against the fleet size: systematic
// when its distinct-vehicle share reaches threshold (identical software on
// every vehicle ⇒ a design fault reproduces across the population; a
// transducer fault does not). Ordered by descending vehicle count.
func (t *Tally) Analyze(fleetSize int, threshold float64) []JobStat {
	var out []JobStat
	for job, jt := range t.byJob {
		share := float64(len(jt.vehicles)) / float64(fleetSize)
		out = append(out, JobStat{
			Job:        job,
			Vehicles:   len(jt.vehicles),
			Share:      share,
			Systematic: share >= threshold,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Vehicles != out[j].Vehicles {
			return out[i].Vehicles > out[j].Vehicles
		}
		return out[i].Job < out[j].Job
	})
	return out
}

// Pareto returns the fraction of all incidents caused by the top topShare
// fraction of reported jobs — the paper's 20-80 observation evaluates to
// Pareto(0.2) ≈ 0.8 when the rule holds.
func (t *Tally) Pareto(topShare float64) float64 {
	if len(t.byJob) == 0 {
		return 0
	}
	jobs := make([]string, 0, len(t.byJob))
	for j := range t.byJob {
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(i, k int) bool {
		if t.byJob[jobs[i]].incidents != t.byJob[jobs[k]].incidents {
			return t.byJob[jobs[i]].incidents > t.byJob[jobs[k]].incidents
		}
		return jobs[i] < jobs[k]
	})
	top := int(topShare*float64(len(jobs)) + 0.5)
	if top < 1 {
		top = 1
	}
	if top > len(jobs) {
		top = len(jobs)
	}
	covered := 0
	for _, j := range jobs[:top] {
		covered += t.byJob[j].incidents
	}
	return float64(covered) / float64(t.incidents)
}
