package fleet

import (
	"math"
	"testing"

	"decos/internal/core"
)

func TestRelevant(t *testing.T) {
	for _, c := range []core.FaultClass{core.JobInherent, core.JobInherentSoftware, core.JobInherentSensor} {
		if !Relevant(c) {
			t.Errorf("Relevant(%v) = false, want true", c)
		}
	}
	for _, c := range []core.FaultClass{
		core.ClassUnknown, core.ComponentExternal, core.ComponentBorderline,
		core.ComponentInternal, core.JobExternal, core.JobBorderline,
	} {
		if Relevant(c) {
			t.Errorf("Relevant(%v) = true, want false", c)
		}
	}
}

func TestTallyObserve(t *testing.T) {
	ta := NewTally()
	if ta.Incidents() != 0 || ta.Jobs() != 0 {
		t.Fatalf("empty tally: incidents=%d jobs=%d", ta.Incidents(), ta.Jobs())
	}
	ta.Observe(1, "A/A1")
	ta.Observe(2, "A/A1")
	ta.Observe(2, "A/A1") // repeat incident, same vehicle
	ta.Observe(3, "S/S2")
	if got := ta.Incidents(); got != 4 {
		t.Errorf("Incidents = %d, want 4", got)
	}
	if got := ta.Jobs(); got != 2 {
		t.Errorf("Jobs = %d, want 2", got)
	}
}

func TestTallyMerge(t *testing.T) {
	shard1 := NewTally()
	shard1.Observe(1, "A/A1")
	shard1.Observe(2, "A/A1")
	shard2 := NewTally()
	shard2.Observe(2, "A/A1") // vehicle 2 also seen on shard 1
	shard2.Observe(3, "S/S2")

	merged := NewTally()
	merged.Merge(shard1)
	merged.Merge(shard2)

	if got := merged.Incidents(); got != 4 {
		t.Errorf("merged Incidents = %d, want 4", got)
	}
	stats := merged.Analyze(10, 0.25)
	if len(stats) != 2 {
		t.Fatalf("Analyze returned %d jobs, want 2", len(stats))
	}
	// A/A1: vehicles {1,2} — the distinct-vehicle set deduplicates across
	// shards. S/S2: vehicle {3}.
	if stats[0].Job != "A/A1" || stats[0].Vehicles != 2 {
		t.Errorf("top job = %+v, want A/A1 with 2 vehicles", stats[0])
	}
	if stats[1].Job != "S/S2" || stats[1].Vehicles != 1 {
		t.Errorf("second job = %+v, want S/S2 with 1 vehicle", stats[1])
	}
}

func TestTallyAnalyzeThreshold(t *testing.T) {
	ta := NewTally()
	for v := 0; v < 8; v++ {
		ta.Observe(v, "A/A1") // 8 of 10 vehicles: systematic
	}
	ta.Observe(0, "S/S2") // 1 of 10: vehicle-local

	stats := ta.Analyze(10, 0.3)
	if !stats[0].Systematic {
		t.Errorf("A/A1 at 80%% share not flagged systematic: %+v", stats[0])
	}
	if math.Abs(stats[0].Share-0.8) > 1e-12 {
		t.Errorf("A/A1 share = %v, want 0.8", stats[0].Share)
	}
	if stats[1].Systematic {
		t.Errorf("S/S2 at 10%% share flagged systematic: %+v", stats[1])
	}
}

func TestTallyPareto(t *testing.T) {
	if got := NewTally().Pareto(0.2); got != 0 {
		t.Errorf("empty Pareto = %v, want 0", got)
	}

	// Ten jobs; the two hottest carry 80 of 100 incidents — the paper's
	// 20-80 observation: Pareto(0.2) = 0.8.
	ta := NewTally()
	counts := []int{50, 30, 5, 4, 3, 3, 2, 1, 1, 1}
	for j, n := range counts {
		for i := 0; i < n; i++ {
			ta.Observe(i, "job"+string(rune('A'+j)))
		}
	}
	if got := ta.Pareto(0.2); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("Pareto(0.2) = %v, want 0.8", got)
	}
	// The full set always covers everything.
	if got := ta.Pareto(1.0); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("Pareto(1.0) = %v, want 1.0", got)
	}
}
