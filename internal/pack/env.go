package pack

// expand maps an environment profile onto a deterministic series of
// fault specs. The expansion is pure arithmetic over the profile's
// window, period and intensity — no randomness — so a pack replays
// bit-identically under its seed and a checkpoint restore reconstructs
// every activation by re-running the manifest. Targets rotate
// round-robin over the profile's component list (default: every
// component except the diagnostic node, which must stay operational to
// observe the stress).
func (e *EnvProfile) expand(t *Topology) []FaultSpec {
	targets := e.Components
	if len(targets) == 0 {
		for id := 0; id < t.Nodes; id++ {
			if id != t.DiagNode {
				targets = append(targets, id)
			}
		}
	}
	if len(targets) == 0 {
		return nil
	}
	var out []FaultSpec
	k := 0
	for at := e.FromMS; at < e.ToMS && k < MaxEnvEvents; at += e.PeriodMS {
		comp := targets[k%len(targets)]
		switch e.Profile {
		case "vibration":
			// Vibration shakes marginal solder joints and sockets: transient
			// internal episodes at a rate growing with intensity, one
			// per-component activation window per period.
			out = append(out, FaultSpec{
				Kind:        "intermittent",
				AtMS:        at,
				EndMS:       minf(at+e.PeriodMS, e.ToMS),
				Component:   comp,
				RatePerHour: 3600 * (2 + 6*e.Intensity),
			})
		case "thermal-cycling":
			// Temperature excursions push the oscillator out of spec for a
			// fraction of each cycle; the ensemble readmits the clock when
			// the temperature returns.
			out = append(out, FaultSpec{
				Kind:       "transient-quartz",
				AtMS:       at,
				DurationMS: 0.4 * e.PeriodMS,
				Component:  comp,
				DriftPPM:   30_000 + 120_000*e.Intensity,
			})
		case "emi-storm":
			// Radiated interference bursts with an epicenter at the target
			// component; radius and corrupted bits grow with intensity.
			out = append(out, FaultSpec{
				Kind:      "emi-burst",
				AtMS:      at,
				Component: comp,
				Radius:    1.5 + 2.5*e.Intensity,
				Bits:      2 + int(6*e.Intensity),
			})
		case "connector-chatter":
			// Intermittent contact on the harness: alternating tx/rx drop
			// windows covering a share of each period.
			kind := "connector-tx"
			if k%2 == 1 {
				kind = "connector-rx"
			}
			out = append(out, FaultSpec{
				Kind:      kind,
				AtMS:      at,
				EndMS:     minf(at+0.4*e.PeriodMS, e.ToMS),
				Component: comp,
				Rate:      0.15 + 0.4*e.Intensity,
			})
		case "power-sags":
			// Supply sags: short outages whose depth (duration) follows the
			// intensity.
			out = append(out, FaultSpec{
				Kind:       "power-dip",
				AtMS:       at,
				DurationMS: 50 * (0.5 + e.Intensity),
				Component:  comp,
			})
		}
		k++
	}
	return out
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
