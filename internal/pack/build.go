package pack

import (
	"fmt"

	"decos/internal/bayes"
	"decos/internal/component"
	"decos/internal/diagnosis"
	"decos/internal/engine"
	"decos/internal/sim"
	"decos/internal/tt"
	"decos/internal/vnet"
)

// EngineOptions compiles the manifest into the engine option list:
// topology, seed, clocks, build hook, diagnosis, OBD, the manifest's
// classifier selection, and — when the pack declares faults or
// environment profiles — a fault-manifest hook. Extra options
// (classifier overrides, trace sinks, checkpoint sinks) compose on top.
// The option sequence matches the hand-written scenario constructors
// exactly, so a pack run is byte-identical to the equivalent Go-built
// run under the same seed.
func (m *Manifest) EngineOptions(extra ...engine.Option) []engine.Option {
	opts := m.Topology.Options(m.Seed, m.Diagnosis.Options(), nil)
	opts = append(opts, ClassifierOptions(m.Classifier)...)
	if len(m.Faults) > 0 || len(m.Environment) > 0 {
		opts = append(opts, engine.WithFaults(m.ApplyFaults))
	}
	return append(opts, extra...)
}

// ClassifierOptions maps a classifier name onto the engine options
// selecting that classification stage. The empty name and "decos" are
// the default pipeline (no option at all — the engine wiring stays
// byte-identical to pre-selector builds); "bayes" instances a fresh
// Bayesian stage, so every engine gets its own belief state.
func ClassifierOptions(name string) []engine.Option {
	switch name {
	case ClassifierOBD:
		return []engine.Option{engine.WithOBDClassifier()}
	case ClassifierBayes:
		return []engine.Option{engine.WithClassifier(bayes.New())}
	}
	return nil
}

// Options compiles a resolved topology into the canonical engine option
// prefix: schedule geometry, seed, clock ensemble, population hook,
// diagnosis attachment and the OBD baseline. A nil hook uses the
// topology's own BuildHook; callers that need job handles (the scenario
// constructors) pass a wrapper that builds and then binds. This is the
// single composition point both the manifest loader and the legacy Go
// constructors go through.
func (t *Topology) Options(seed uint64, diagOpts diagnosis.Options, hook func(cl *component.Cluster)) []engine.Option {
	if hook == nil {
		hook = t.BuildHook()
	}
	c := t.Clocks
	return []engine.Option{
		engine.WithTopology(t.Nodes, t.SlotLen(), t.SlotBytes),
		engine.WithSeed(seed),
		engine.WithClocks(c.MaxDriftPPM, c.JitterUS, c.PrecisionUS, c.Tolerated),
		engine.WithBuild(hook),
		engine.WithDiagnosis(tt.NodeID(t.DiagNode), diagOpts),
		engine.WithOBD(),
	}
}

// Fig10Topology returns the resolved topology of the paper's Fig. 10
// system — what a manifest with kind "fig10" resolves to after
// validation.
func Fig10Topology() Topology {
	return Topology{Kind: "fig10", Nodes: 4, SlotLenUS: 250, SlotBytes: 256, DiagNode: 3, Clocks: DefaultClocks()}
}

// GridTopology returns the resolved n-component chain topology — what a
// manifest with kind "grid" resolves to after validation.
func GridTopology(n int) Topology {
	return Topology{Kind: "grid", Nodes: n, SlotLenUS: 250, SlotBytes: 160, DiagNode: n - 1, Clocks: DefaultClocks()}
}

// Engine assembles and starts the pack's cluster. Fault and environment
// specs are routed through the engine's fault manifest, so checkpoint
// restores of pack runs reconstruct every injection.
func (m *Manifest) Engine(extra ...engine.Option) (*engine.Engine, error) {
	return engine.New(m.EngineOptions(extra...)...)
}

// Options converts the manifest's diagnosis overrides into
// diagnosis.Options. Zero-valued fields keep the attachment defaults,
// exactly like a zero diagnosis.Options in Go.
func (s *DiagnosisSpec) Options() diagnosis.Options {
	return diagnosis.Options{
		EpochRounds:           s.EpochRounds,
		WindowGranules:        s.WindowGranules,
		RetainGranules:        s.RetainGranules,
		ProximityRadius:       s.ProximityRadius,
		BurstGranules:         s.BurstGranules,
		MultiBitThreshold:     s.MultiBitThreshold,
		PermanentWindow:       s.PermanentWindow,
		PermanentDuty:         s.PermanentDuty,
		RiseFactor:            s.RiseFactor,
		AlphaK:                s.AlphaK,
		AlphaThreshold:        s.AlphaThreshold,
		MinRecurrentGranules:  s.MinRecurrentGranules,
		OverflowMin:           s.OverflowMin,
		JobInternalAssertions: s.JobInternalAssertions,
	}
}

// BuildHook returns the topology-population hook for engine.WithBuild.
// The built-in kinds are the single home of the Fig. 10 and grid
// wiring — the scenario package's constructors call through here.
func (t *Topology) BuildHook() func(cl *component.Cluster) {
	switch t.Kind {
	case "fig10":
		return Fig10Build
	case "grid":
		return GridBuild(t.Nodes)
	case "custom":
		spec := *t
		return func(cl *component.Cluster) { buildCustom(cl, &spec) }
	}
	panic(fmt.Sprintf("pack: no build hook for topology kind %q (validate first)", t.Kind))
}

// Channel plan of the Fig. 10 system (mirrored by scenario's exported
// constants; the contract test in scenario pins the two sets equal).
const (
	ChSpeed vnet.ChannelID = 1  // DAS A: wheel speed (A1 → A2)
	ChCmd   vnet.ChannelID = 2  // DAS A: brake command (A2 → A3)
	ChLoad  vnet.ChannelID = 10 // DAS C: event traffic (C1 → C2)
	ChS1    vnet.ChannelID = 21 // DAS S: replica 1 pressure
	ChS2    vnet.ChannelID = 22 // DAS S: replica 2 pressure
	ChS3    vnet.ChannelID = 23 // DAS S: replica 3 pressure
	ChVoted vnet.ChannelID = 24 // DAS S: voted pressure
)

// Fig10Build populates the paper's Fig. 10 topology: three application
// DASs (two non-safety-critical, one safety-critical TMR triple) over
// four components. This is the canonical wiring; the scenario package
// resolves its job handles from the built cluster.
func Fig10Build(cl *component.Cluster) {
	c0 := cl.AddComponent(0, "front-left", 0, 0)
	c1 := cl.AddComponent(1, "front-right", 1, 0)
	c2 := cl.AddComponent(2, "rear-left", 5, 0)
	c3 := cl.AddComponent(3, "rear-right", 6, 0)

	cl.Env.DefineSine("wheel.speed", 30, 200*sim.Millisecond, 50)
	cl.Env.DefineSine("brake.pressure", 20, 300*sim.Millisecond, 50)

	// DAS A (non-safety-critical): wheel-speed pipeline A1 → A2 → A3.
	dasA := cl.AddDAS("A", component.NonSafetyCritical)
	nA := cl.AddNetwork(dasA, "A.tt", vnet.TimeTriggered)
	nA.AddEndpoint(0, 40, 0)
	nA.AddEndpoint(1, 40, 0)
	a1 := cl.AddJob(dasA, c0, "A1", 0, &component.SensorJob{
		Signal: "wheel.speed", Out: ChSpeed,
		PhysMin: -10, PhysMax: 110, FrozenWindow: 20,
	})
	a2 := cl.AddJob(dasA, c1, "A2", 0,
		&component.ControlJob{In: ChSpeed, Out: ChCmd, Gain: 2, InMin: 0, InMax: 100})
	a3 := cl.AddJob(dasA, c2, "A3", 0, &component.ActuatorJob{In: ChCmd, Actuator: "brake"})
	cl.Produce(a1, nA, component.ChannelSpec{
		Channel: ChSpeed, Name: "wheel.speed", Min: 0, Max: 100,
		MaxAgeRounds: 3, StuckRounds: 20, Sensor: true,
	})
	cl.Produce(a2, nA, component.ChannelSpec{Channel: ChCmd, Name: "brake.cmd", Min: 0, Max: 200, MaxAgeRounds: 3})
	cl.Subscribe(a2, ChSpeed, 0, true)
	cl.Subscribe(a3, ChCmd, 4, false)

	// DAS C (non-safety-critical): event-triggered comfort traffic.
	dasC := cl.AddDAS("C", component.NonSafetyCritical)
	nC := cl.AddNetwork(dasC, "C.et", vnet.EventTriggered)
	nC.AddEndpoint(1, 60, 16)
	c1j := cl.AddJob(dasC, c1, "C1", 1, &component.BurstyJob{Out: ChLoad, MeanPerRound: 2})
	c2j := cl.AddJob(dasC, c2, "C2", 1, &component.SinkJob{In: ChLoad})
	cl.Produce(c1j, nC, component.ChannelSpec{Channel: ChLoad, Name: "load", Min: -1e12, Max: 1e12})
	cl.Subscribe(c2j, ChLoad, 8, false)

	// DAS S (safety-critical): TMR pressure sensing on three components,
	// voted on a fourth (Fig. 10's S1, S2, S3).
	dasS := cl.AddDAS("S", component.SafetyCritical)
	nS := cl.AddNetwork(dasS, "S.tt", vnet.TimeTriggered)
	nS.AddEndpoint(0, 20, 0)
	nS.AddEndpoint(2, 20, 0)
	nS.AddEndpoint(3, 20, 0)
	nS.AddEndpoint(1, 20, 0)
	var reps [3]*component.Instance
	repChans := [3]vnet.ChannelID{ChS1, ChS2, ChS3}
	repComps := [3]*component.Component{c0, c2, c3}
	for i := 0; i < 3; i++ {
		reps[i] = cl.AddJob(dasS, repComps[i], "S"+string(rune('1'+i)), 2,
			&component.SensorJob{
				Signal: "brake.pressure", Out: repChans[i],
				PhysMin: -10, PhysMax: 110, FrozenWindow: 20,
			})
		cl.Produce(reps[i], nS, component.ChannelSpec{
			Channel: repChans[i], Name: "pressure", Min: 0, Max: 100,
			MaxAgeRounds: 3, StuckRounds: 20, Sensor: true,
		})
	}
	voter := &component.VoterJob{Ins: repChans, Out: ChVoted, Tolerance: 1.0}
	vj := cl.AddJob(dasS, c1, "V", 2, voter)
	for _, ch := range repChans {
		cl.Subscribe(vj, ch, 0, true)
	}
	cl.Produce(vj, nS, component.ChannelSpec{Channel: ChVoted, Name: "voted", Min: 0, Max: 100, MaxAgeRounds: 3})
}

// GridBuild returns the chain-topology population hook for n components:
// one sensor→consumer DAS per adjacent pair, channel i+1 carrying the
// i-th sensor's signal.
func GridBuild(n int) func(cl *component.Cluster) {
	return func(cl *component.Cluster) {
		comps := make([]*component.Component, n)
		for i := 0; i < n; i++ {
			comps[i] = cl.AddComponent(tt.NodeID(i), fmt.Sprintf("c%d", i), float64(i), 0)
		}
		cl.Env.DefineSine("signal", 30, 200*sim.Millisecond, 50)

		for i := 0; i+1 < n; i++ {
			das := cl.AddDAS(fmt.Sprintf("D%d", i), component.NonSafetyCritical)
			net := cl.AddNetwork(das, fmt.Sprintf("D%d.tt", i), vnet.TimeTriggered)
			net.AddEndpoint(tt.NodeID(i), 20, 0)
			ch := vnet.ChannelID(i + 1)
			sensor := cl.AddJob(das, comps[i], "sense", 0, &component.SensorJob{
				Signal: "signal", Out: ch,
				PhysMin: -10, PhysMax: 110, FrozenWindow: 20,
			})
			consumer := cl.AddJob(das, comps[i+1], "consume", 1, component.JobFunc(func(ctx *component.Context) {
				ctx.Latest(ch)
			}))
			cl.Produce(sensor, net, component.ChannelSpec{
				Channel: ch, Name: "signal", Min: 0, Max: 100,
				MaxAgeRounds: 3, StuckRounds: 20, Sensor: true,
			})
			cl.Subscribe(consumer, ch, 0, true)
		}
	}
}

// buildCustom populates a fully declarative FRU graph: components in
// manifest order, then signals, then DASs — per DAS its networks with
// endpoints, then per job AddJob followed by that job's produces and
// subscribes. The per-job interleaving preserves the relative order of
// channel declarations and subscriptions, which is what the virtual
// network fabric's determinism depends on.
func buildCustom(cl *component.Cluster, t *Topology) {
	comps := make(map[int]*component.Component, len(t.Components))
	for _, cs := range t.Components {
		comps[cs.ID] = cl.AddComponent(tt.NodeID(cs.ID), cs.Name, cs.X, cs.Y)
	}
	for _, sg := range t.Signals {
		cl.Env.DefineSine(sg.Name, sg.Amplitude, sim.Duration(sg.PeriodMS*float64(sim.Millisecond)), sg.Offset)
	}
	for _, ds := range t.DASs {
		crit := component.NonSafetyCritical
		if ds.Critical {
			crit = component.SafetyCritical
		}
		das := cl.AddDAS(ds.Name, crit)
		nets := make(map[string]*vnet.Network, len(ds.Networks))
		for _, ns := range ds.Networks {
			kind := vnet.TimeTriggered
			if ns.Kind == "et" {
				kind = vnet.EventTriggered
			}
			net := cl.AddNetwork(das, ns.Name, kind)
			for _, ep := range ns.Endpoints {
				net.AddEndpoint(tt.NodeID(ep.Node), ep.AllocBytes, ep.QueueCap)
			}
			nets[ns.Name] = net
		}
		for _, js := range ds.Jobs {
			j := cl.AddJob(das, comps[js.Component], js.Name, js.Partition, buildJobImpl(&js))
			for _, ps := range js.Produce {
				cl.Produce(j, nets[ps.Network], component.ChannelSpec{
					Channel:      vnet.ChannelID(ps.Channel),
					Name:         ps.Name,
					Min:          ps.Min,
					Max:          ps.Max,
					MaxAgeRounds: int64(ps.MaxAgeRounds),
					StuckRounds:  int64(ps.StuckRounds),
					Sensor:       ps.Sensor,
				})
			}
			for _, ss := range js.Subscribe {
				cl.Subscribe(j, vnet.ChannelID(ss.Channel), ss.Capacity, ss.Overwrite)
			}
		}
	}
}

// buildJobImpl instantiates the job implementation a JobSpec names.
func buildJobImpl(js *JobSpec) component.Job {
	switch js.Type {
	case "sensor":
		return &component.SensorJob{
			Signal: js.Signal, Out: vnet.ChannelID(js.Out),
			PhysMin: js.PhysMin, PhysMax: js.PhysMax, FrozenWindow: js.FrozenWindow,
		}
	case "control":
		return &component.ControlJob{
			In: vnet.ChannelID(js.In), Out: vnet.ChannelID(js.Out),
			Gain: js.Gain, InMin: js.InMin, InMax: js.InMax,
		}
	case "actuator":
		return &component.ActuatorJob{In: vnet.ChannelID(js.In), Actuator: js.Actuator}
	case "bursty":
		return &component.BurstyJob{Out: vnet.ChannelID(js.Out), MeanPerRound: js.MeanPerRound}
	case "sink":
		return &component.SinkJob{In: vnet.ChannelID(js.In)}
	case "voter":
		var ins [3]vnet.ChannelID
		for i := 0; i < 3 && i < len(js.Ins); i++ {
			ins[i] = vnet.ChannelID(js.Ins[i])
		}
		return &component.VoterJob{Ins: ins, Out: vnet.ChannelID(js.Out), Tolerance: js.Tolerance}
	case "observer":
		ch := vnet.ChannelID(js.Watch)
		return component.JobFunc(func(ctx *component.Context) {
			ctx.Latest(ch)
		})
	}
	panic(fmt.Sprintf("pack: no implementation for job type %q (validate first)", js.Type))
}
