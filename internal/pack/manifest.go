// Package pack is the declarative scenario layer of the reproduction:
// a versioned manifest format (JSON or TOML) describing a complete
// operating scenario — topology, fault mix, environment profiles,
// diagnosis tuning, seeds, duration and expected verdicts — compiled
// into the same engine.Option composition the hand-written scenario
// constructors produce.
//
// Before this layer existed every workload was Go code: the Fig. 10
// system, the scalability grid and the campaign mixes each hand-rolled
// their cluster wiring, so adding a scenario meant a code change in
// internal/scenario. A pack turns that into a data file:
//
//	pack  = 1
//	name  = "highway-emi-corridor"
//	seed  = 20050404
//	rounds = 3000
//	[topology]
//	kind = "fig10"
//	[[environment]]
//	profile   = "emi-storm"
//	from_ms   = 300
//	to_ms     = 2400
//	period_ms = 300
//	intensity = 0.7
//	[expect]
//	[[expect.verdicts]]
//	fru   = "component[0]"
//	class = "component-external"
//
// Manifests are validated strictly: unknown fields, out-of-range rates
// and dangling FRU references are rejected with errors that name the
// offending field path and source line. The conformance runner
// (cmd/decos-conform) runs every pack against the DECOS, OBD and
// Bayesian classifiers and scores the verdicts against the pack's
// expectations.
package pack

import "decos/internal/sim"

// Version is the manifest schema version this package reads and writes.
const Version = 1

// Limits applied during validation. They bound resource use of a single
// pack run, not the simulator itself.
const (
	MaxRounds      = 1_000_000
	MaxNodes       = 256
	MaxFaults      = 256
	MaxEnvEvents   = 256
	MaxEnvProfiles = 32
)

// Manifest is one parsed, validated scenario pack.
type Manifest struct {
	// Pack is the schema version (must equal Version).
	Pack int
	// Name identifies the pack (lowercase slug).
	Name string
	// Description is free documentation text.
	Description string
	// Seed is the master seed of the run; every RNG stream derives from
	// it, so a pack is a pure function of its manifest.
	Seed uint64
	// Rounds is the simulated horizon in TDMA rounds.
	Rounds int64
	// Classifier selects the diagnostic pipeline's classification stage
	// for plain (non-conformance) runs: "decos" (default), "obd" or
	// "bayes". The conformance runner ignores it — it always scores all
	// classifiers side by side.
	Classifier string

	Topology    Topology
	Diagnosis   DiagnosisSpec
	Faults      []FaultSpec
	Environment []EnvProfile
	// Campaign, when present, turns the pack into a fleet campaign over
	// the topology (fig10 only) instead of a single-vehicle run.
	Campaign *CampaignSpec
	Expect   Expect

	// Source is the file the manifest was loaded from ("" for in-memory
	// manifests); it prefixes error and report locations.
	Source string
}

// Horizon returns the simulated span of the run.
func (m *Manifest) Horizon() sim.Time {
	return sim.Time(m.Rounds * m.Topology.RoundDuration().Micros())
}

// ClockSpec mirrors engine.ClockSpec in manifest form.
type ClockSpec struct {
	MaxDriftPPM float64
	JitterUS    float64
	PrecisionUS float64
	Tolerated   int
}

// DefaultClocks is the clock ensemble every current scenario uses.
func DefaultClocks() ClockSpec {
	return ClockSpec{MaxDriftPPM: 50, JitterUS: 0, PrecisionUS: 20, Tolerated: 1}
}

// Topology describes the cluster graph. Kind selects either a built-in
// topology ("fig10", "grid") or a fully declarative custom FRU graph
// ("custom") listing components, environment signals and DASs.
type Topology struct {
	Kind string // "fig10" | "grid" | "custom"
	// Nodes is the component count (grid: required; fig10: fixed at 4;
	// custom: derived from Components).
	Nodes int
	// SlotLenUS and SlotBytes dimension the uniform TDMA schedule.
	SlotLenUS int64
	SlotBytes int
	// DiagNode hosts the diagnostic DAS's analysis stage.
	DiagNode int
	Clocks   ClockSpec

	// Custom graph (Kind == "custom").
	Components []ComponentSpec
	Signals    []SignalSpec
	DASs       []DASSpec
}

// SlotLen returns the TDMA slot length.
func (t *Topology) SlotLen() sim.Duration {
	return sim.Duration(t.SlotLenUS) * sim.Microsecond
}

// RoundDuration returns the TDMA round duration (uniform schedule: one
// slot per node).
func (t *Topology) RoundDuration() sim.Duration {
	return sim.Duration(t.Nodes) * t.SlotLen()
}

// ComponentSpec places one node computer (hardware FRU).
type ComponentSpec struct {
	ID   int
	Name string
	X, Y float64
}

// SignalSpec registers one sinusoidal environment signal:
// amplitude·sin(2π·t/period) + offset.
type SignalSpec struct {
	Name      string
	Amplitude float64
	PeriodMS  float64
	Offset    float64
}

// DASSpec declares a distributed application subsystem with its virtual
// networks and jobs.
type DASSpec struct {
	Name     string
	Critical bool
	Networks []NetworkSpec
	Jobs     []JobSpec
}

// NetworkSpec declares a virtual network. Kind is "tt" (state semantics)
// or "et" (event semantics).
type NetworkSpec struct {
	Name      string
	Kind      string // "tt" | "et"
	Endpoints []EndpointSpec
}

// EndpointSpec attaches a network to a node with a frame-segment byte
// allocation and (for ET networks) a send-queue capacity.
type EndpointSpec struct {
	Node       int
	AllocBytes int
	QueueCap   int
}

// JobSpec deploys one job. Type selects the implementation; the
// remaining fields parameterize it. Produce/Subscribe declare the job's
// LIF channels in order.
type JobSpec struct {
	Name      string
	Component int
	Partition int
	Type      string // sensor | control | actuator | bursty | sink | voter | observer

	// sensor
	Signal       string
	PhysMin      float64
	PhysMax      float64
	FrozenWindow int
	// control
	In    int
	Gain  float64
	InMin float64
	InMax float64
	// sensor/control/bursty/voter output channel
	Out int
	// actuator
	Actuator string
	// bursty
	MeanPerRound float64
	// voter
	Ins       []int
	Tolerance float64
	// observer (consumes the latest state value, side-effect free)
	Watch int

	Produce   []ProduceSpec
	Subscribe []SubscribeSpec
}

// ProduceSpec declares a published channel with its LIF specification.
type ProduceSpec struct {
	Network      string
	Channel      int
	Name         string
	Min, Max     float64
	MaxAgeRounds int
	StuckRounds  int
	Sensor       bool
}

// SubscribeSpec attaches the job to a channel.
type SubscribeSpec struct {
	Channel   int
	Capacity  int
	Overwrite bool
}

// DiagnosisSpec overrides a subset of diagnosis.Options. Zero values
// keep the defaults (diagnosis.DefaultOptions), exactly like the Go API.
type DiagnosisSpec struct {
	EpochRounds           int64
	WindowGranules        int64
	RetainGranules        int64
	ProximityRadius       float64
	BurstGranules         int64
	MultiBitThreshold     float64
	PermanentWindow       int64
	PermanentDuty         float64
	RiseFactor            float64
	AlphaK                float64
	AlphaThreshold        float64
	MinRecurrentGranules  int
	OverflowMin           int
	JobInternalAssertions bool
}

// FaultSpec is one declarative injection, routed through the engine's
// fault manifest (engine.WithFaults) so checkpoint restores reconstruct
// it. Kind names the injector primitive; the remaining fields
// parameterize it (validation enforces the per-kind requirements).
type FaultSpec struct {
	Kind string

	AtMS       float64
	EndMS      float64
	DurationMS float64

	// Hardware target (component node id); -1 when unset.
	Component int
	// Software target ("DAS/job", e.g. "A/A1").
	Job string
	// Channel targeted by job-level faults.
	Channel int

	// Probabilities and values.
	Rate      float64 // drop/corruption probability per frame or send
	Value     float64 // stuck-at / bad output value
	Threshold float64 // bohrbug trigger: inject when value > threshold
	Omit      bool    // heisenbug: omit instead of corrupting

	// EMI geometry.
	X, Y, Radius float64
	Bits         int

	// Rates and drifts.
	DriftPPM        float64
	DriftPerHour    float64
	RatePerHour     float64
	TauMS           float64
	BaseRatePerHour float64
	MaxFactor       float64

	// Queue misconfiguration.
	QueueCap int
}

// At returns the activation instant.
func (f *FaultSpec) At() sim.Time { return msToTime(f.AtMS) }

// End returns the deactivation instant (0 = open window).
func (f *FaultSpec) End() sim.Time { return msToTime(f.EndMS) }

// Duration returns the configured duration (0 = kind default).
func (f *FaultSpec) Duration() sim.Duration { return sim.Duration(msToTime(f.DurationMS)) }

func msToTime(ms float64) sim.Time {
	return sim.Time(ms * float64(sim.Millisecond))
}

// EnvProfile is one environment stressor: a named physical process
// (vibration, thermal cycling, EMI storms, connector chatter, supply
// sags) mapped onto a deterministic series of injector activations with
// arithmetic phases — no randomness, so packs replay bit-identically
// and checkpoint restores reconstruct every activation.
type EnvProfile struct {
	Profile   string // vibration | thermal-cycling | emi-storm | connector-chatter | power-sags
	FromMS    float64
	ToMS      float64
	PeriodMS  float64
	Intensity float64 // (0, 1]
	// Components targets specific nodes; empty targets every component
	// except the diagnostic node.
	Components []int
}

// CampaignSpec turns the pack into a fleet campaign: Vehicles
// independent realizations of the topology, each with faults drawn from
// Mix (scenario.Campaign semantics).
type CampaignSpec struct {
	Vehicles         int
	FaultFreeShare   float64
	FaultsPerVehicle int
	// Mix weights fault kinds by campaign kind name (scenario.FaultKind
	// strings); empty uses the default field distribution.
	Mix map[string]float64
}

// VerdictExpect asserts one diagnostic outcome: the named FRU carries a
// verdict whose class matches (core.FaultClass.Matches equivalences
// honored) and, when Action is set, whose advised action equals it.
// Classifier scopes the assertion ("decos", "obd", "bayes", "" = all).
type VerdictExpect struct {
	FRU        string
	Class      string
	Action     string
	Classifier string
}

// Expect is the pack's scored contract. Every assertion contributes one
// check to the conformance score; MinScore / MinScoreOBD / MinScoreBayes
// set the pass thresholds per classifier (DECOS defaults to 1.0, OBD and
// Bayes to 0 — the alternatives are scored and reported but only gate
// when asked to).
type Expect struct {
	// Healthy asserts a clean bill: no standing verdicts and no removal
	// advice on any hardware FRU.
	Healthy bool
	// MaxFalseAlarms bounds removal recommendations for FRUs that were
	// never a culprit (-1 = unchecked).
	MaxFalseAlarms int
	Verdicts       []VerdictExpect
	MinScore       float64
	MinScoreOBD    float64
	MinScoreBayes  float64

	// Campaign expectations (campaign packs only).
	MinClassAccuracy float64
	MaxNFFRatio      float64 // -1 = unchecked
	DECOSBeatsOBD    bool
}
