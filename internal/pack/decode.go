package pack

import (
	"fmt"
	"math"
)

// decoder carries the first decode error across the schema walk; every
// accessor is a no-op once an error is latched, so call sites read
// straight-line.
type decoder struct {
	source string
	err    error
}

func (d *decoder) fail(line int, field, format string, args ...any) {
	if d.err == nil {
		d.err = errf(d.source, line, field, format, args...)
	}
}

// objDec decodes one table node under a field path, tracking which keys
// the schema consumed so leftovers are rejected as unknown fields.
type objDec struct {
	d    *decoder
	obj  *object
	path string
	line int
	seen map[string]bool
}

func (d *decoder) object(v *value, path string) *objDec {
	obj, ok := v.raw.(*object)
	if !ok {
		d.fail(v.line, path, "expected a table, got %s", typeName(v))
		return &objDec{d: d, obj: newObject(), path: path, line: v.line, seen: map[string]bool{}}
	}
	return &objDec{d: d, obj: obj, path: path, line: v.line, seen: map[string]bool{}}
}

func (o *objDec) field(key string) string {
	if o.path == "" {
		return key
	}
	return o.path + "." + key
}

// finish rejects keys the schema never consumed.
func (o *objDec) finish() {
	for _, k := range o.obj.keys {
		if !o.seen[k] {
			v := o.obj.vals[k]
			o.d.fail(v.line, o.field(k), "unknown field (known fields: %s)", sortedKeys(o.seen))
			return
		}
	}
}

func (o *objDec) lookup(key string) (*value, bool) {
	o.seen[key] = true
	return o.obj.get(key)
}

// has marks a key consumed and reports presence without decoding it.
func (o *objDec) str(key, def string) string {
	v, ok := o.lookup(key)
	if !ok {
		return def
	}
	s, isStr := v.raw.(string)
	if !isStr {
		o.d.fail(v.line, o.field(key), "expected a string, got %s", typeName(v))
		return def
	}
	return s
}

func (o *objDec) boolean(key string, def bool) bool {
	v, ok := o.lookup(key)
	if !ok {
		return def
	}
	b, isBool := v.raw.(bool)
	if !isBool {
		o.d.fail(v.line, o.field(key), "expected a bool, got %s", typeName(v))
		return def
	}
	return b
}

func (o *objDec) int64(key string, def int64) int64 {
	v, ok := o.lookup(key)
	if !ok {
		return def
	}
	i, isInt := v.raw.(int64)
	if !isInt {
		o.d.fail(v.line, o.field(key), "expected an integer, got %s", typeName(v))
		return def
	}
	return i
}

func (o *objDec) integer(key string, def int) int {
	return int(o.int64(key, int64(def)))
}

func (o *objDec) uint64(key string, def uint64) uint64 {
	v, ok := o.lookup(key)
	if !ok {
		return def
	}
	i, isInt := v.raw.(int64)
	if !isInt {
		o.d.fail(v.line, o.field(key), "expected an integer, got %s", typeName(v))
		return def
	}
	if i < 0 {
		o.d.fail(v.line, o.field(key), "must be non-negative, got %d", i)
		return def
	}
	return uint64(i)
}

// float accepts both integer and float literals (a pack author writing
// `rate = 1` should not be told 1 is not a number).
func (o *objDec) float(key string, def float64) float64 {
	v, ok := o.lookup(key)
	if !ok {
		return def
	}
	switch n := v.raw.(type) {
	case float64:
		if math.IsNaN(n) || math.IsInf(n, 0) {
			o.d.fail(v.line, o.field(key), "must be finite")
			return def
		}
		return n
	case int64:
		return float64(n)
	}
	o.d.fail(v.line, o.field(key), "expected a number, got %s", typeName(v))
	return def
}

// table returns the nested table decoder, or nil when the key is absent.
func (o *objDec) table(key string) *objDec {
	v, ok := o.lookup(key)
	if !ok {
		return nil
	}
	return o.d.object(v, o.field(key))
}

// tables returns one decoder per element of an array-of-tables key.
func (o *objDec) tables(key string) []*objDec {
	v, ok := o.lookup(key)
	if !ok {
		return nil
	}
	arr, isArr := v.raw.([]*value)
	if !isArr {
		o.d.fail(v.line, o.field(key), "expected an array of tables, got %s", typeName(v))
		return nil
	}
	out := make([]*objDec, 0, len(arr))
	for i, elem := range arr {
		out = append(out, o.d.object(elem, fmt.Sprintf("%s[%d]", o.field(key), i)))
	}
	return out
}

// intList decodes an array of integers.
func (o *objDec) intList(key string) []int {
	v, ok := o.lookup(key)
	if !ok {
		return nil
	}
	arr, isArr := v.raw.([]*value)
	if !isArr {
		o.d.fail(v.line, o.field(key), "expected an array of integers, got %s", typeName(v))
		return nil
	}
	out := make([]int, 0, len(arr))
	for i, elem := range arr {
		n, isInt := elem.raw.(int64)
		if !isInt {
			o.d.fail(elem.line, fmt.Sprintf("%s[%d]", o.field(key), i), "expected an integer, got %s", typeName(elem))
			return nil
		}
		out = append(out, int(n))
	}
	return out
}

// floatMap decodes a table of string → number (campaign mixes).
func (o *objDec) floatMap(key string) map[string]float64 {
	v, ok := o.lookup(key)
	if !ok {
		return nil
	}
	obj, isObj := v.raw.(*object)
	if !isObj {
		o.d.fail(v.line, o.field(key), "expected a table, got %s", typeName(v))
		return nil
	}
	out := make(map[string]float64, len(obj.keys))
	for _, k := range obj.keys {
		elem := obj.vals[k]
		switch n := elem.raw.(type) {
		case float64:
			out[k] = n
		case int64:
			out[k] = float64(n)
		default:
			o.d.fail(elem.line, o.field(key)+"."+k, "expected a number, got %s", typeName(elem))
			return nil
		}
	}
	return out
}

// decodeManifest walks the document tree into a Manifest. Structural
// errors (wrong types, unknown fields) surface here; semantic rules live
// in validate.go.
func decodeManifest(root *value, source string) (*Manifest, error) {
	d := &decoder{source: source}
	doc := d.object(root, "")

	m := &Manifest{Source: source}
	m.Pack = doc.integer("pack", 0)
	m.Name = doc.str("name", "")
	m.Description = doc.str("description", "")
	m.Seed = doc.uint64("seed", 0)
	m.Rounds = doc.int64("rounds", 0)
	m.Classifier = doc.str("classifier", "")

	if topo := doc.table("topology"); topo != nil {
		decodeTopology(topo, &m.Topology)
	}
	if diag := doc.table("diagnosis"); diag != nil {
		decodeDiagnosis(diag, &m.Diagnosis)
	}
	for _, fd := range doc.tables("faults") {
		m.Faults = append(m.Faults, decodeFault(fd))
	}
	for _, ed := range doc.tables("environment") {
		m.Environment = append(m.Environment, decodeEnv(ed))
	}
	if cd := doc.table("campaign"); cd != nil {
		m.Campaign = decodeCampaign(cd)
	}
	m.Expect = Expect{MaxFalseAlarms: -1, MaxNFFRatio: -1, MinScore: 1}
	if ed := doc.table("expect"); ed != nil {
		decodeExpect(ed, &m.Expect)
	}
	doc.finish()
	if d.err != nil {
		return nil, d.err
	}
	return m, nil
}

func decodeTopology(o *objDec, t *Topology) {
	t.Kind = o.str("kind", "")
	t.Nodes = o.integer("nodes", 0)
	t.SlotLenUS = o.int64("slot_len_us", 0)
	t.SlotBytes = o.integer("slot_bytes", 0)
	t.DiagNode = o.integer("diag_node", -1)
	t.Clocks = DefaultClocks()
	if cd := o.table("clocks"); cd != nil {
		t.Clocks.MaxDriftPPM = cd.float("max_drift_ppm", t.Clocks.MaxDriftPPM)
		t.Clocks.JitterUS = cd.float("jitter_us", t.Clocks.JitterUS)
		t.Clocks.PrecisionUS = cd.float("precision_us", t.Clocks.PrecisionUS)
		t.Clocks.Tolerated = cd.integer("tolerated", t.Clocks.Tolerated)
		cd.finish()
	}
	for _, c := range o.tables("components") {
		t.Components = append(t.Components, ComponentSpec{
			ID:   c.integer("id", -1),
			Name: c.str("name", ""),
			X:    c.float("x", 0),
			Y:    c.float("y", 0),
		})
		c.finish()
	}
	for _, s := range o.tables("signals") {
		t.Signals = append(t.Signals, SignalSpec{
			Name:      s.str("name", ""),
			Amplitude: s.float("amplitude", 0),
			PeriodMS:  s.float("period_ms", 0),
			Offset:    s.float("offset", 0),
		})
		s.finish()
	}
	for _, dd := range o.tables("dass") {
		t.DASs = append(t.DASs, decodeDAS(dd))
	}
	o.finish()
}

func decodeDAS(o *objDec) DASSpec {
	das := DASSpec{
		Name:     o.str("name", ""),
		Critical: o.boolean("critical", false),
	}
	for _, nd := range o.tables("networks") {
		net := NetworkSpec{
			Name: nd.str("name", ""),
			Kind: nd.str("kind", "tt"),
		}
		for _, ep := range nd.tables("endpoints") {
			net.Endpoints = append(net.Endpoints, EndpointSpec{
				Node:       ep.integer("node", -1),
				AllocBytes: ep.integer("alloc_bytes", 0),
				QueueCap:   ep.integer("queue_cap", 0),
			})
			ep.finish()
		}
		nd.finish()
		das.Networks = append(das.Networks, net)
	}
	for _, jd := range o.tables("jobs") {
		das.Jobs = append(das.Jobs, decodeJob(jd))
	}
	o.finish()
	return das
}

func decodeJob(o *objDec) JobSpec {
	j := JobSpec{
		Name:      o.str("name", ""),
		Component: o.integer("component", -1),
		Partition: o.integer("partition", 0),
		Type:      o.str("type", ""),

		Signal:       o.str("signal", ""),
		PhysMin:      o.float("phys_min", -10),
		PhysMax:      o.float("phys_max", 110),
		FrozenWindow: o.integer("frozen_window", 20),

		In:    o.integer("in", 0),
		Gain:  o.float("gain", 1),
		InMin: o.float("in_min", 0),
		InMax: o.float("in_max", 100),

		Out:      o.integer("out", 0),
		Actuator: o.str("actuator", ""),

		MeanPerRound: o.float("mean_per_round", 1),

		Ins:       o.intList("ins"),
		Tolerance: o.float("tolerance", 1),

		Watch: o.integer("watch", 0),
	}
	for _, pd := range o.tables("produce") {
		j.Produce = append(j.Produce, ProduceSpec{
			Network:      pd.str("network", ""),
			Channel:      pd.integer("channel", 0),
			Name:         pd.str("name", ""),
			Min:          pd.float("min", 0),
			Max:          pd.float("max", 100),
			MaxAgeRounds: pd.integer("max_age_rounds", 0),
			StuckRounds:  pd.integer("stuck_rounds", 0),
			Sensor:       pd.boolean("sensor", false),
		})
		pd.finish()
	}
	for _, sd := range o.tables("subscribe") {
		j.Subscribe = append(j.Subscribe, SubscribeSpec{
			Channel:   sd.integer("channel", 0),
			Capacity:  sd.integer("capacity", 0),
			Overwrite: sd.boolean("overwrite", false),
		})
		sd.finish()
	}
	o.finish()
	return j
}

func decodeDiagnosis(o *objDec, s *DiagnosisSpec) {
	s.EpochRounds = o.int64("epoch_rounds", 0)
	s.WindowGranules = o.int64("window_granules", 0)
	s.RetainGranules = o.int64("retain_granules", 0)
	s.ProximityRadius = o.float("proximity_radius", 0)
	s.BurstGranules = o.int64("burst_granules", 0)
	s.MultiBitThreshold = o.float("multi_bit_threshold", 0)
	s.PermanentWindow = o.int64("permanent_window", 0)
	s.PermanentDuty = o.float("permanent_duty", 0)
	s.RiseFactor = o.float("rise_factor", 0)
	s.AlphaK = o.float("alpha_k", 0)
	s.AlphaThreshold = o.float("alpha_threshold", 0)
	s.MinRecurrentGranules = o.integer("min_recurrent_granules", 0)
	s.OverflowMin = o.integer("overflow_min", 0)
	s.JobInternalAssertions = o.boolean("job_internal_assertions", false)
	o.finish()
}

func decodeFault(o *objDec) FaultSpec {
	f := FaultSpec{
		Kind: o.str("kind", ""),

		AtMS:       o.float("at_ms", 0),
		EndMS:      o.float("end_ms", 0),
		DurationMS: o.float("duration_ms", 0),

		Component: o.integer("component", -1),
		Job:       o.str("job", ""),
		Channel:   o.integer("channel", 0),

		Rate:      o.float("rate", 0),
		Value:     o.float("value", 0),
		Threshold: o.float("threshold", 0),
		Omit:      o.boolean("omit", false),

		X:      o.float("x", 0),
		Y:      o.float("y", 0),
		Radius: o.float("radius", 0),
		Bits:   o.integer("bits", 0),

		DriftPPM:        o.float("drift_ppm", 0),
		DriftPerHour:    o.float("drift_per_hour", 0),
		RatePerHour:     o.float("rate_per_hour", 0),
		TauMS:           o.float("tau_ms", 0),
		BaseRatePerHour: o.float("base_rate_per_hour", 0),
		MaxFactor:       o.float("max_factor", 0),

		QueueCap: o.integer("queue_cap", 0),
	}
	o.finish()
	return f
}

func decodeEnv(o *objDec) EnvProfile {
	e := EnvProfile{
		Profile:    o.str("profile", ""),
		FromMS:     o.float("from_ms", 0),
		ToMS:       o.float("to_ms", 0),
		PeriodMS:   o.float("period_ms", 0),
		Intensity:  o.float("intensity", 0.5),
		Components: o.intList("components"),
	}
	o.finish()
	return e
}

func decodeCampaign(o *objDec) *CampaignSpec {
	c := &CampaignSpec{
		Vehicles:         o.integer("vehicles", 0),
		FaultFreeShare:   o.float("fault_free_share", 0.2),
		FaultsPerVehicle: o.integer("faults_per_vehicle", 1),
		Mix:              o.floatMap("mix"),
	}
	o.finish()
	return c
}

func decodeExpect(o *objDec, e *Expect) {
	e.Healthy = o.boolean("healthy", false)
	e.MaxFalseAlarms = o.integer("max_false_alarms", -1)
	e.MinScore = o.float("min_score", 1)
	e.MinScoreOBD = o.float("min_score_obd", 0)
	e.MinScoreBayes = o.float("min_score_bayes", 0)
	e.MinClassAccuracy = o.float("min_class_accuracy", 0)
	e.MaxNFFRatio = o.float("max_nff_ratio", -1)
	e.DECOSBeatsOBD = o.boolean("decos_beats_obd", false)
	for _, vd := range o.tables("verdicts") {
		e.Verdicts = append(e.Verdicts, VerdictExpect{
			FRU:        vd.str("fru", ""),
			Class:      vd.str("class", ""),
			Action:     vd.str("action", ""),
			Classifier: vd.str("classifier", ""),
		})
		vd.finish()
	}
	o.finish()
}
