package pack

import (
	"fmt"
	"sort"
	"strings"

	"decos/internal/core"
)

// Fault kinds a manifest may declare. Each maps onto one injector
// primitive of internal/faults (applied in apply.go).
var faultKinds = map[string]bool{
	"emi-burst":          true,
	"seu":                true,
	"power-dip":          true,
	"connector-tx":       true,
	"connector-rx":       true,
	"wearout":            true,
	"intermittent":       true,
	"permanent-silent":   true,
	"permanent-babbling": true,
	"quartz":             true,
	"transient-quartz":   true,
	"misconfig-queue":    true,
	"bohrbug":            true,
	"heisenbug":          true,
	"job-crash":          true,
	"sensor-stuck":       true,
	"sensor-drift":       true,
}

// Environment profiles a manifest may declare (expanded in env.go).
var envProfiles = map[string]bool{
	"vibration":         true,
	"thermal-cycling":   true,
	"emi-storm":         true,
	"connector-chatter": true,
	"power-sags":        true,
}

// CampaignKinds are the fault-kind names a campaign mix may weight —
// the string forms of scenario.FaultKind. The scenario package asserts
// this list matches its own (it imports pack; pack cannot import it).
var CampaignKinds = []string{
	"emi", "seu", "connector-tx", "connector-rx", "wearout",
	"intermittent", "permanent", "quartz", "config", "bohrbug",
	"heisenbug", "job-crash", "sensor-stuck", "sensor-drift", "power-dip",
}

var campaignKinds = func() map[string]bool {
	m := make(map[string]bool, len(CampaignKinds))
	for _, k := range CampaignKinds {
		m[k] = true
	}
	return m
}()

// topologyInfo is the validator's view of the resolved topology: which
// components exist and which DAS/job pairs faults may target.
type topologyInfo struct {
	nodes int
	// jobs maps "DAS/job" → hosting component.
	jobs map[string]int
	// signals defined by the topology (sensor jobs must reference one).
	signals map[string]bool
}

// Validate checks the manifest's semantic rules — topology shape, fault
// parameter ranges, dangling FRU/job references, expectation classes —
// and fills topology defaults (slot spec, diagnosis node). Parse and
// Load call it; manifests constructed in Go can call it directly.
func (m *Manifest) Validate() error {
	v := &validator{m: m}
	v.run()
	return v.err
}

type validator struct {
	m   *Manifest
	err error
}

func (v *validator) failf(field, format string, args ...any) {
	if v.err == nil {
		v.err = errf(v.m.Source, 0, field, format, args...)
	}
}

func (v *validator) run() {
	m := v.m
	if m.Pack != Version {
		v.failf("pack", "unsupported schema version %d (this build reads version %d)", m.Pack, Version)
		return
	}
	if m.Name == "" {
		v.failf("name", "required")
	} else if !isSlug(m.Name) {
		v.failf("name", "must be a lowercase slug (a-z, 0-9, '-'), got %q", m.Name)
	}
	if m.Rounds < 1 || m.Rounds > MaxRounds {
		v.failf("rounds", "must be in [1, %d], got %d", MaxRounds, m.Rounds)
	}
	switch m.Classifier {
	case "", ClassifierDECOS, ClassifierOBD, ClassifierBayes:
	default:
		v.failf("classifier", "must be %q, %q or %q, got %q", ClassifierDECOS, ClassifierOBD, ClassifierBayes, m.Classifier)
	}
	info := v.topology()
	if v.err != nil {
		return
	}
	v.faults(info)
	v.environment(info)
	v.campaign()
	v.expect(info)
}

func isSlug(s string) bool {
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
		default:
			return false
		}
	}
	return s != "" && s[0] != '-' && s[len(s)-1] != '-'
}

// topology validates the topology section, fills its defaults and
// returns the resolved info for cross-reference checks.
func (v *validator) topology() *topologyInfo {
	t := &v.m.Topology
	if t.Clocks == (ClockSpec{}) {
		// Go-constructed manifests leave the ensemble zeroed; the decoder
		// fills it, but validation must too so both paths resolve alike.
		t.Clocks = DefaultClocks()
	}
	switch t.Kind {
	case "fig10":
		return v.fig10Topology(t)
	case "grid":
		return v.gridTopology(t)
	case "custom":
		return v.customTopology(t)
	case "":
		v.failf("topology.kind", "required (one of fig10, grid, custom)")
	default:
		v.failf("topology.kind", "unknown kind %q (one of fig10, grid, custom)", t.Kind)
	}
	return nil
}

func (v *validator) fig10Topology(t *Topology) *topologyInfo {
	if t.Nodes != 0 && t.Nodes != 4 {
		v.failf("topology.nodes", "fig10 is a 4-component system, got %d", t.Nodes)
	}
	t.Nodes = 4
	defaultSlot(t, 250, 256)
	if t.DiagNode < 0 {
		t.DiagNode = 3
	}
	if t.DiagNode >= t.Nodes {
		v.failf("topology.diag_node", "must be < %d, got %d", t.Nodes, t.DiagNode)
	}
	if len(t.Components) > 0 || len(t.Signals) > 0 || len(t.DASs) > 0 {
		v.failf("topology", "components/signals/dass are only valid for kind \"custom\"")
	}
	return &topologyInfo{
		nodes: 4,
		jobs: map[string]int{
			"A/A1": 0, "A/A2": 1, "A/A3": 2,
			"C/C1": 1, "C/C2": 2,
			"S/S1": 0, "S/S2": 2, "S/S3": 3, "S/V": 1,
		},
		signals: map[string]bool{"wheel.speed": true, "brake.pressure": true},
	}
}

func (v *validator) gridTopology(t *Topology) *topologyInfo {
	if t.Nodes < 3 {
		v.failf("topology.nodes", "grid needs at least 3 components, got %d", t.Nodes)
		return nil
	}
	if t.Nodes > MaxNodes {
		v.failf("topology.nodes", "must be ≤ %d, got %d", MaxNodes, t.Nodes)
		return nil
	}
	defaultSlot(t, 250, 160)
	if t.DiagNode < 0 {
		t.DiagNode = t.Nodes - 1
	}
	if t.DiagNode >= t.Nodes {
		v.failf("topology.diag_node", "must be < %d, got %d", t.Nodes, t.DiagNode)
	}
	if len(t.Components) > 0 || len(t.Signals) > 0 || len(t.DASs) > 0 {
		v.failf("topology", "components/signals/dass are only valid for kind \"custom\"")
	}
	info := &topologyInfo{nodes: t.Nodes, jobs: map[string]int{}, signals: map[string]bool{"signal": true}}
	for i := 0; i+1 < t.Nodes; i++ {
		info.jobs[fmt.Sprintf("D%d/sense", i)] = i
		info.jobs[fmt.Sprintf("D%d/consume", i)] = i + 1
	}
	return info
}

func (v *validator) customTopology(t *Topology) *topologyInfo {
	if len(t.Components) == 0 {
		v.failf("topology.components", "custom topology requires at least one component")
		return nil
	}
	if len(t.Components) > MaxNodes {
		v.failf("topology.components", "must be ≤ %d components, got %d", MaxNodes, len(t.Components))
		return nil
	}
	maxID := 0
	seen := map[int]bool{}
	for i, c := range t.Components {
		field := fmt.Sprintf("topology.components[%d]", i)
		if c.ID < 0 {
			v.failf(field+".id", "required (non-negative component id)")
			return nil
		}
		if c.Name == "" {
			v.failf(field+".name", "required")
		}
		if seen[c.ID] {
			v.failf(field+".id", "duplicate component id %d", c.ID)
		}
		seen[c.ID] = true
		if c.ID > maxID {
			maxID = c.ID
		}
	}
	if t.Nodes == 0 {
		t.Nodes = maxID + 1
	}
	if t.Nodes < maxID+1 {
		v.failf("topology.nodes", "must cover component ids (max id %d, nodes %d)", maxID, t.Nodes)
	}
	for id := 0; id < t.Nodes; id++ {
		if !seen[id] {
			v.failf("topology.components", "component ids must be dense 0..%d (missing %d: the TDMA schedule assigns one slot per node)", t.Nodes-1, id)
			break
		}
	}
	defaultSlot(t, 250, 256)
	if t.DiagNode < 0 {
		t.DiagNode = t.Nodes - 1
	}
	if t.DiagNode >= t.Nodes {
		v.failf("topology.diag_node", "must be < %d, got %d", t.Nodes, t.DiagNode)
	}

	info := &topologyInfo{nodes: t.Nodes, jobs: map[string]int{}, signals: map[string]bool{}}
	for i, s := range t.Signals {
		field := fmt.Sprintf("topology.signals[%d]", i)
		if s.Name == "" {
			v.failf(field+".name", "required")
		}
		if s.PeriodMS <= 0 {
			v.failf(field+".period_ms", "must be > 0, got %g", s.PeriodMS)
		}
		info.signals[s.Name] = true
	}
	if len(t.DASs) == 0 {
		v.failf("topology.dass", "custom topology requires at least one DAS")
		return info
	}
	dasNames := map[string]bool{}
	for di, das := range t.DASs {
		v.customDAS(di, das, info, dasNames)
	}
	return info
}

// customDAS validates one DAS of a custom topology and registers its
// jobs into info.
func (v *validator) customDAS(di int, das DASSpec, info *topologyInfo, dasNames map[string]bool) {
	field := fmt.Sprintf("topology.dass[%d]", di)
	if das.Name == "" {
		v.failf(field+".name", "required")
		return
	}
	if strings.ContainsAny(das.Name, "/@[]") {
		v.failf(field+".name", "must not contain '/', '@' or brackets (FRU syntax), got %q", das.Name)
	}
	if dasNames[das.Name] {
		v.failf(field+".name", "duplicate DAS %q", das.Name)
	}
	dasNames[das.Name] = true

	nets := map[string]string{} // name → kind
	for ni, net := range das.Networks {
		nf := fmt.Sprintf("%s.networks[%d]", field, ni)
		if net.Name == "" {
			v.failf(nf+".name", "required")
			continue
		}
		if net.Kind != "tt" && net.Kind != "et" {
			v.failf(nf+".kind", "must be \"tt\" or \"et\", got %q", net.Kind)
		}
		if _, dup := nets[net.Name]; dup {
			v.failf(nf+".name", "duplicate network %q", net.Name)
		}
		nets[net.Name] = net.Kind
		if len(net.Endpoints) == 0 {
			v.failf(nf+".endpoints", "network needs at least one endpoint")
		}
		for ei, ep := range net.Endpoints {
			ef := fmt.Sprintf("%s.endpoints[%d]", nf, ei)
			if ep.Node < 0 || ep.Node >= info.nodes {
				v.failf(ef+".node", "must be in [0, %d), got %d", info.nodes, ep.Node)
			}
			if ep.AllocBytes <= 0 {
				v.failf(ef+".alloc_bytes", "must be > 0, got %d", ep.AllocBytes)
			}
			if net.Kind == "et" && ep.QueueCap <= 0 {
				v.failf(ef+".queue_cap", "event-triggered endpoints need a send-queue capacity")
			}
		}
	}
	if len(das.Jobs) == 0 {
		v.failf(field+".jobs", "DAS needs at least one job")
	}
	for ji, job := range das.Jobs {
		v.customJob(field, das.Name, ji, job, info, nets)
	}
}

func (v *validator) customJob(dasField, dasName string, ji int, job JobSpec, info *topologyInfo, nets map[string]string) {
	field := fmt.Sprintf("%s.jobs[%d]", dasField, ji)
	if job.Name == "" {
		v.failf(field+".name", "required")
		return
	}
	if strings.ContainsAny(job.Name, "/@[]") {
		v.failf(field+".name", "must not contain '/', '@' or brackets (FRU syntax), got %q", job.Name)
	}
	if job.Component < 0 || job.Component >= info.nodes {
		v.failf(field+".component", "must be in [0, %d), got %d", info.nodes, job.Component)
	}
	if job.Partition < 0 {
		v.failf(field+".partition", "must be ≥ 0, got %d", job.Partition)
	}
	ref := dasName + "/" + job.Name
	if _, dup := info.jobs[ref]; dup {
		v.failf(field+".name", "duplicate job %q in DAS %q", job.Name, dasName)
	}
	info.jobs[ref] = job.Component

	switch job.Type {
	case "sensor":
		if !info.signals[job.Signal] {
			v.failf(field+".signal", "unknown signal %q (declare it in topology.signals)", job.Signal)
		}
		if job.Out <= 0 {
			v.failf(field+".out", "sensor needs an output channel > 0")
		}
	case "control":
		if job.In <= 0 || job.Out <= 0 {
			v.failf(field, "control needs in and out channels > 0")
		}
	case "actuator":
		if job.In <= 0 {
			v.failf(field+".in", "actuator needs an input channel > 0")
		}
		if job.Actuator == "" {
			v.failf(field+".actuator", "required")
		}
	case "bursty":
		if job.Out <= 0 {
			v.failf(field+".out", "bursty needs an output channel > 0")
		}
		if job.MeanPerRound <= 0 {
			v.failf(field+".mean_per_round", "must be > 0, got %g", job.MeanPerRound)
		}
	case "sink":
		if job.In <= 0 {
			v.failf(field+".in", "sink needs an input channel > 0")
		}
	case "voter":
		if len(job.Ins) != 3 {
			v.failf(field+".ins", "voter needs exactly 3 input channels, got %d", len(job.Ins))
		}
		if job.Out <= 0 {
			v.failf(field+".out", "voter needs an output channel > 0")
		}
	case "observer":
		if job.Watch <= 0 {
			v.failf(field+".watch", "observer needs a channel > 0 to watch")
		}
	case "":
		v.failf(field+".type", "required (sensor, control, actuator, bursty, sink, voter, observer)")
	default:
		v.failf(field+".type", "unknown type %q (sensor, control, actuator, bursty, sink, voter, observer)", job.Type)
	}

	for pi, p := range job.Produce {
		pf := fmt.Sprintf("%s.produce[%d]", field, pi)
		if _, ok := nets[p.Network]; !ok {
			v.failf(pf+".network", "unknown network %q in DAS %q", p.Network, dasName)
		}
		if p.Channel <= 0 {
			v.failf(pf+".channel", "must be > 0, got %d", p.Channel)
		}
		if p.Name == "" {
			v.failf(pf+".name", "required")
		}
		if p.Min >= p.Max {
			v.failf(pf, "min %g must be < max %g", p.Min, p.Max)
		}
	}
	for si, s := range job.Subscribe {
		sf := fmt.Sprintf("%s.subscribe[%d]", field, si)
		if s.Channel <= 0 {
			v.failf(sf+".channel", "must be > 0, got %d", s.Channel)
		}
		if s.Capacity < 0 {
			v.failf(sf+".capacity", "must be ≥ 0, got %d", s.Capacity)
		}
	}
}

func defaultSlot(t *Topology, slotUS int64, slotBytes int) {
	if t.SlotLenUS < 1 {
		t.SlotLenUS = slotUS
	}
	if t.SlotBytes < 1 {
		t.SlotBytes = slotBytes
	}
}

// faults validates every fault spec against the resolved topology.
func (v *validator) faults(info *topologyInfo) {
	if len(v.m.Faults) > MaxFaults {
		v.failf("faults", "too many faults (%d > %d)", len(v.m.Faults), MaxFaults)
		return
	}
	horizonMS := float64(v.m.Horizon()) / 1000
	for i, f := range v.m.Faults {
		field := fmt.Sprintf("faults[%d]", i)
		if !faultKinds[f.Kind] {
			v.failf(field+".kind", "unknown kind %q (known: %s)", f.Kind, strings.Join(sortedKindNames(faultKinds), ", "))
			return
		}
		if f.AtMS < 0 {
			v.failf(field+".at_ms", "must be ≥ 0, got %g", f.AtMS)
		}
		if f.AtMS > horizonMS {
			v.failf(field+".at_ms", "activation at %gms is past the run horizon (%gms = rounds × round length)", f.AtMS, horizonMS)
		}
		if f.EndMS != 0 && f.EndMS <= f.AtMS {
			v.failf(field+".end_ms", "must be after at_ms (%g ≤ %g)", f.EndMS, f.AtMS)
		}
		if f.DurationMS < 0 {
			v.failf(field+".duration_ms", "must be ≥ 0, got %g", f.DurationMS)
		}
		v.faultKind(field, i, &v.m.Faults[i], info)
	}
}

// faultKind enforces the per-kind parameter requirements.
func (v *validator) faultKind(field string, i int, f *FaultSpec, info *topologyInfo) {
	needComp := func() {
		if f.Component < 0 || f.Component >= info.nodes {
			v.failf(field+".component", "kind %q targets a component: must be in [0, %d), got %d", f.Kind, info.nodes, f.Component)
		}
	}
	needJob := func() {
		if f.Job == "" {
			v.failf(field+".job", "kind %q targets a job (\"DAS/job\")", f.Kind)
			return
		}
		if _, ok := info.jobs[f.Job]; !ok {
			v.failf(field+".job", "unknown job %q (topology defines: %s)", f.Job, strings.Join(sortedJobRefs(info.jobs), ", "))
		}
	}
	needRate01 := func(key string, rate float64) {
		if rate <= 0 || rate > 1 {
			v.failf(field+"."+key, "must be in (0, 1], got %g", rate)
		}
	}
	switch f.Kind {
	case "emi-burst":
		if f.Radius <= 0 {
			v.failf(field+".radius", "must be > 0, got %g", f.Radius)
		}
		if f.Bits < 1 {
			v.failf(field+".bits", "must be ≥ 1, got %d", f.Bits)
		}
	case "seu", "power-dip", "permanent-silent", "permanent-babbling":
		needComp()
	case "connector-tx", "connector-rx":
		needComp()
		needRate01("rate", f.Rate)
	case "wearout":
		needComp()
		if f.TauMS <= 0 {
			v.failf(field+".tau_ms", "must be > 0, got %g", f.TauMS)
		}
		if f.BaseRatePerHour <= 0 {
			v.failf(field+".base_rate_per_hour", "must be > 0, got %g", f.BaseRatePerHour)
		}
		if f.MaxFactor < 1 {
			v.failf(field+".max_factor", "must be ≥ 1, got %g", f.MaxFactor)
		}
	case "intermittent":
		needComp()
		if f.RatePerHour <= 0 {
			v.failf(field+".rate_per_hour", "must be > 0, got %g", f.RatePerHour)
		}
	case "quartz":
		needComp()
		if f.DriftPPM == 0 {
			v.failf(field+".drift_ppm", "required (non-zero oscillator drift)")
		}
	case "transient-quartz":
		needComp()
		if f.DriftPPM == 0 {
			v.failf(field+".drift_ppm", "required (non-zero oscillator drift)")
		}
		if f.DurationMS <= 0 {
			v.failf(field+".duration_ms", "transient quartz drift needs a window, got %g", f.DurationMS)
		}
	case "misconfig-queue":
		needJob()
		if f.Channel <= 0 {
			v.failf(field+".channel", "must be > 0, got %d", f.Channel)
		}
		if f.QueueCap < 1 {
			v.failf(field+".queue_cap", "must be ≥ 1, got %d", f.QueueCap)
		}
	case "bohrbug":
		needJob()
		if f.Channel <= 0 {
			v.failf(field+".channel", "must be > 0, got %d", f.Channel)
		}
	case "heisenbug":
		needJob()
		if f.Channel <= 0 {
			v.failf(field+".channel", "must be > 0, got %d", f.Channel)
		}
		needRate01("rate", f.Rate)
	case "job-crash":
		needJob()
	case "sensor-stuck":
		needJob()
	case "sensor-drift":
		needJob()
		if f.DriftPerHour == 0 {
			v.failf(field+".drift_per_hour", "required (non-zero drift)")
		}
	}
	_ = i
}

func (v *validator) environment(info *topologyInfo) {
	if len(v.m.Environment) > MaxEnvProfiles {
		v.failf("environment", "too many profiles (%d > %d)", len(v.m.Environment), MaxEnvProfiles)
		return
	}
	horizonMS := float64(v.m.Horizon()) / 1000
	for i, e := range v.m.Environment {
		field := fmt.Sprintf("environment[%d]", i)
		if !envProfiles[e.Profile] {
			v.failf(field+".profile", "unknown profile %q (known: %s)", e.Profile, strings.Join(sortedKindNames(envProfiles), ", "))
			return
		}
		if e.FromMS < 0 {
			v.failf(field+".from_ms", "must be ≥ 0, got %g", e.FromMS)
		}
		if e.ToMS <= e.FromMS {
			v.failf(field+".to_ms", "must be after from_ms (%g ≤ %g)", e.ToMS, e.FromMS)
		}
		if e.ToMS > horizonMS {
			v.failf(field+".to_ms", "window ends at %gms, past the run horizon (%gms)", e.ToMS, horizonMS)
		}
		if e.PeriodMS <= 0 {
			v.failf(field+".period_ms", "must be > 0, got %g", e.PeriodMS)
		}
		if e.Intensity <= 0 || e.Intensity > 1 {
			v.failf(field+".intensity", "must be in (0, 1], got %g", e.Intensity)
		}
		events := (e.ToMS - e.FromMS) / e.PeriodMS
		if events > MaxEnvEvents {
			v.failf(field+".period_ms", "profile expands to %.0f events (> %d): raise period_ms or shrink the window", events, MaxEnvEvents)
		}
		for j, c := range e.Components {
			if c < 0 || c >= info.nodes {
				v.failf(fmt.Sprintf("%s.components[%d]", field, j), "must be in [0, %d), got %d", info.nodes, c)
			}
		}
	}
}

func (v *validator) campaign() {
	c := v.m.Campaign
	if c == nil {
		return
	}
	if v.m.Topology.Kind != "fig10" {
		v.failf("campaign", "campaigns run over the fig10 topology, got %q", v.m.Topology.Kind)
	}
	if len(v.m.Faults) > 0 || len(v.m.Environment) > 0 {
		v.failf("campaign", "campaign packs draw faults from the mix; faults/environment sections are not allowed")
	}
	if c.Vehicles < 1 {
		v.failf("campaign.vehicles", "must be ≥ 1, got %d", c.Vehicles)
	}
	if c.FaultFreeShare < 0 || c.FaultFreeShare > 1 {
		v.failf("campaign.fault_free_share", "must be in [0, 1], got %g", c.FaultFreeShare)
	}
	if c.FaultsPerVehicle < 0 {
		v.failf("campaign.faults_per_vehicle", "must be ≥ 0, got %d", c.FaultsPerVehicle)
	}
	for kind, w := range c.Mix {
		if !campaignKinds[kind] {
			v.failf("campaign.mix."+kind, "unknown campaign fault kind (known: %s)", strings.Join(CampaignKinds, ", "))
			return
		}
		if w < 0 {
			v.failf("campaign.mix."+kind, "weight must be ≥ 0, got %g", w)
		}
	}
}

func (v *validator) expect(info *topologyInfo) {
	e := &v.m.Expect
	if e.MinScore < 0 || e.MinScore > 1 {
		v.failf("expect.min_score", "must be in [0, 1], got %g", e.MinScore)
	}
	if e.MinScoreOBD < 0 || e.MinScoreOBD > 1 {
		v.failf("expect.min_score_obd", "must be in [0, 1], got %g", e.MinScoreOBD)
	}
	if e.MinScoreBayes < 0 || e.MinScoreBayes > 1 {
		v.failf("expect.min_score_bayes", "must be in [0, 1], got %g", e.MinScoreBayes)
	}
	if e.MinClassAccuracy < 0 || e.MinClassAccuracy > 1 {
		v.failf("expect.min_class_accuracy", "must be in [0, 1], got %g", e.MinClassAccuracy)
	}
	if e.Healthy && len(e.Verdicts) > 0 {
		v.failf("expect.healthy", "healthy packs cannot also expect verdicts")
	}
	if v.m.Campaign != nil && (e.Healthy || len(e.Verdicts) > 0) {
		v.failf("expect", "campaign packs score fleet aggregates (min_class_accuracy, max_nff_ratio, decos_beats_obd), not per-FRU verdicts")
	}
	for i, ve := range e.Verdicts {
		field := fmt.Sprintf("expect.verdicts[%d]", i)
		fru, err := core.ParseFRU(ve.FRU)
		if err != nil {
			v.failf(field+".fru", "%v", err)
			continue
		}
		if fru.IsHardware() {
			if fru.Component < 0 || fru.Component >= info.nodes {
				v.failf(field+".fru", "component %d out of range [0, %d)", fru.Component, info.nodes)
			}
		} else {
			ref := jobRefOf(ve.FRU)
			if _, ok := info.jobs[ref]; !ok {
				v.failf(field+".fru", "unknown job FRU %q (topology defines: %s)", ve.FRU, strings.Join(sortedJobRefs(info.jobs), ", "))
			}
		}
		if ve.Class == "" {
			v.failf(field+".class", "required")
		} else if _, err := core.ParseFaultClass(ve.Class); err != nil {
			v.failf(field+".class", "%v", err)
		}
		if ve.Action != "" {
			if _, err := core.ParseMaintenanceAction(ve.Action); err != nil {
				v.failf(field+".action", "%v", err)
			}
		}
		switch ve.Classifier {
		case "", "decos", "obd", "bayes":
		default:
			v.failf(field+".classifier", "must be \"decos\", \"obd\", \"bayes\" or empty (all), got %q", ve.Classifier)
		}
	}
}

// jobRefOf converts a job FRU string "job[das/job@3]" into the "das/job"
// reference the topology info indexes.
func jobRefOf(fruStr string) string {
	s := strings.TrimPrefix(fruStr, "job[")
	s = strings.TrimSuffix(s, "]")
	if at := strings.LastIndex(s, "@"); at >= 0 {
		s = s[:at]
	}
	return s
}

func sortedKindNames(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedJobRefs(jobs map[string]int) []string {
	out := make([]string, 0, len(jobs))
	for k := range jobs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
