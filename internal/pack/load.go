package pack

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// MaxManifestBytes bounds a manifest file; packs are configuration, not
// data, and a runaway file should fail early.
const MaxManifestBytes = 1 << 20

// Parse decodes and validates a manifest from raw bytes. The format is
// chosen by the source's extension (.json / .toml); without one the
// document is sniffed — JSON documents open with '{' or '['.
func Parse(data []byte, source string) (*Manifest, error) {
	if len(data) > MaxManifestBytes {
		return nil, errf(source, 0, "", "manifest is %d bytes (limit %d)", len(data), MaxManifestBytes)
	}
	var root *value
	var err error
	switch {
	case strings.HasSuffix(source, ".json"):
		root, err = parseJSON(data, source)
	case strings.HasSuffix(source, ".toml"):
		root, err = parseTOML(data, source)
	case looksLikeJSON(data):
		root, err = parseJSON(data, source)
	default:
		root, err = parseTOML(data, source)
	}
	if err != nil {
		return nil, err
	}
	m, err := decodeManifest(root, source)
	if err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Load reads, decodes and validates a manifest file.
func Load(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("pack: %w", err)
	}
	return Parse(data, path)
}

// Discover lists the manifest files (.json/.toml) directly under dir,
// sorted by name — the shipped pack library under packs/.
func Discover(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("pack: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasSuffix(name, ".json") || strings.HasSuffix(name, ".toml") {
			out = append(out, filepath.Join(dir, name))
		}
	}
	sort.Strings(out)
	return out, nil
}

// FindPacksDir locates the repository's packs/ directory by walking up
// from dir (tests and experiments run from their package directory, the
// CLIs from anywhere inside the checkout). The repo root is recognized
// by its go.mod.
func FindPacksDir(dir string) (string, bool) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", false
	}
	for {
		packs := filepath.Join(abs, "packs")
		if st, err := os.Stat(packs); err == nil && st.IsDir() {
			return packs, true
		}
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return "", false
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", false
		}
		abs = parent
	}
}
