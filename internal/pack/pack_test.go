package pack

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

const minimalTOML = `pack = 1
name = "minimal"
seed = 7
rounds = 100

[topology]
kind = "fig10"
`

// The same scenario expressed in both front-end formats. The parsers
// feed one shared document tree, so the decoded manifests must be
// field-for-field identical.
const richTOML = `pack = 1
name = "rich"
description = "round-trip fixture"
seed = 20050404
rounds = 2000

[topology]
kind = "fig10"

[diagnosis]
epoch_rounds = 16
alpha_k = 3.5

[[faults]]
kind = "quartz"
component = 1
at_ms = 200
drift_ppm = 90000

[[faults]]
kind = "sensor-stuck"
job = "A/A1"
at_ms = 300
value = 42.5

[[environment]]
profile = "vibration"
from_ms = 400
to_ms = 900
period_ms = 250
intensity = 0.5
components = [0, 2]

[expect]
max_false_alarms = 0

[[expect.verdicts]]
fru = "component[1]"
class = "component-internal"
action = "replace-component"
classifier = "decos"
`

const richJSON = `{
  "pack": 1,
  "name": "rich",
  "description": "round-trip fixture",
  "seed": 20050404,
  "rounds": 2000,
  "topology": {"kind": "fig10"},
  "diagnosis": {"epoch_rounds": 16, "alpha_k": 3.5},
  "faults": [
    {"kind": "quartz", "component": 1, "at_ms": 200, "drift_ppm": 90000},
    {"kind": "sensor-stuck", "job": "A/A1", "at_ms": 300, "value": 42.5}
  ],
  "environment": [
    {"profile": "vibration", "from_ms": 400, "to_ms": 900, "period_ms": 250,
     "intensity": 0.5, "components": [0, 2]}
  ],
  "expect": {
    "max_false_alarms": 0,
    "verdicts": [
      {"fru": "component[1]", "class": "component-internal",
       "action": "replace-component", "classifier": "decos"}
    ]
  }
}`

func TestParseMinimal(t *testing.T) {
	m, err := Parse([]byte(minimalTOML), "minimal.toml")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "minimal" || m.Seed != 7 || m.Rounds != 100 {
		t.Fatalf("header fields: %+v", m)
	}
	// Validation resolves the fig10 topology to its fixed dimensions.
	top := m.Topology
	if top.Nodes != 4 || top.SlotLenUS != 250 || top.SlotBytes != 256 || top.DiagNode != 3 {
		t.Fatalf("fig10 defaults not resolved: %+v", top)
	}
	if top.Clocks != DefaultClocks() {
		t.Fatalf("clock defaults not resolved: %+v", top.Clocks)
	}
	// Expectation defaults: unchecked bounds, DECOS gated at 1.0.
	e := m.Expect
	if e.MaxFalseAlarms != -1 || e.MaxNFFRatio != -1 || e.MinScore != 1 || e.MinScoreOBD != 0 {
		t.Fatalf("expect defaults: %+v", e)
	}
}

func TestTOMLAndJSONDecodeIdentically(t *testing.T) {
	mt, err := Parse([]byte(richTOML), "rich.toml")
	if err != nil {
		t.Fatalf("toml: %v", err)
	}
	mj, err := Parse([]byte(richJSON), "rich.json")
	if err != nil {
		t.Fatalf("json: %v", err)
	}
	mt.Source, mj.Source = "", ""
	if !reflect.DeepEqual(mt, mj) {
		t.Fatalf("formats disagree:\ntoml: %+v\njson: %+v", mt, mj)
	}
}

// TestGoConstructedManifestValidates pins that a manifest built in Go
// (no decoder pass) resolves the same defaults validation gives decoded
// ones — in particular the clock ensemble.
func TestGoConstructedManifestValidates(t *testing.T) {
	// DiagNode -1 means "default" — the decoder's sentinel for an unset
	// field, resolved by validation to the last grid node.
	m := &Manifest{Pack: Version, Name: "in-memory", Seed: 1, Rounds: 10,
		Topology: Topology{Kind: "grid", Nodes: 6, DiagNode: -1}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Topology.Clocks != DefaultClocks() {
		t.Fatalf("clocks not defaulted: %+v", m.Topology.Clocks)
	}
	if m.Topology.DiagNode != 5 {
		t.Fatalf("grid diag node = %d, want 5", m.Topology.DiagNode)
	}
}

// TestParseErrors holds the strict-validation contract: malformed input
// is rejected with an error naming the source, the offending field path
// and — for decode-level failures — the source line.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		doc   string
		wants []string
	}{
		{"bad version", "v.toml", "pack = 99\nname = \"x\"\nrounds = 1\n[topology]\nkind = \"fig10\"\n",
			[]string{"v.toml:", "pack:", "unsupported schema version 99"}},
		{"missing topology kind", "k.toml", "pack = 1\nname = \"x\"\nrounds = 1\n",
			[]string{"topology.kind:", "required"}},
		{"unknown top-level field", "u.toml", "pack = 1\nname = \"x\"\nrounds = 1\nbogus = 3\n[topology]\nkind = \"fig10\"\n",
			[]string{"u.toml:4:", "bogus", "unknown field"}},
		{"wrong field type", "t.json", `{"pack": 1, "name": "x", "rounds": "many", "topology": {"kind": "fig10"}}`,
			[]string{"t.json:1:", "rounds"}},
		{"bad slug", "s.toml", "pack = 1\nname = \"Not A Slug\"\nrounds = 1\n[topology]\nkind = \"fig10\"\n",
			[]string{"name:", "slug"}},
		{"rounds out of range", "r.toml", "pack = 1\nname = \"x\"\nrounds = 0\n[topology]\nkind = \"fig10\"\n",
			[]string{"rounds:", "must be in [1"}},
		{"unknown fault kind", "f.toml", "pack = 1\nname = \"x\"\nrounds = 1\n[topology]\nkind = \"fig10\"\n[[faults]]\nkind = \"gremlin\"\n",
			[]string{"faults[0].kind", "gremlin"}},
		{"heisenbug rate out of range", "h.toml", "pack = 1\nname = \"x\"\nrounds = 1\n[topology]\nkind = \"fig10\"\n[[faults]]\nkind = \"heisenbug\"\njob = \"A/A1\"\nchannel = 1\nrate = 1.5\n",
			[]string{"faults[0].rate"}},
		{"dangling job reference", "j.toml", "pack = 1\nname = \"x\"\nrounds = 100\n[topology]\nkind = \"fig10\"\n[[faults]]\nkind = \"job-crash\"\njob = \"A/Z9\"\nat_ms = 10\n",
			[]string{"faults[0].job", "A/Z9"}},
		{"unknown env profile", "e.toml", "pack = 1\nname = \"x\"\nrounds = 1\n[topology]\nkind = \"fig10\"\n[[environment]]\nprofile = \"monsoon\"\nfrom_ms = 1\nto_ms = 2\nperiod_ms = 1\nintensity = 0.5\n",
			[]string{"environment[0].profile", "monsoon"}},
		{"unknown campaign kind", "c.toml", "pack = 1\nname = \"x\"\nrounds = 1\n[topology]\nkind = \"fig10\"\n[campaign]\nvehicles = 2\n[campaign.mix]\ngremlin = 1.0\n",
			[]string{"campaign.mix.gremlin", "unknown campaign fault kind"}},
		{"campaign with faults", "cf.toml", "pack = 1\nname = \"x\"\nrounds = 100\n[topology]\nkind = \"fig10\"\n[campaign]\nvehicles = 2\n[[faults]]\nkind = \"seu\"\ncomponent = 1\nat_ms = 5\n",
			[]string{"campaign:", "not allowed"}},
		{"verdict FRU out of range", "vf.toml", "pack = 1\nname = \"x\"\nrounds = 1\n[topology]\nkind = \"fig10\"\n[expect]\n[[expect.verdicts]]\nfru = \"component[9]\"\nclass = \"component-internal\"\n",
			[]string{"expect.verdicts[0].fru", "out of range"}},
		{"verdict class unknown", "vc.toml", "pack = 1\nname = \"x\"\nrounds = 1\n[topology]\nkind = \"fig10\"\n[expect]\n[[expect.verdicts]]\nfru = \"component[1]\"\nclass = \"phase-of-moon\"\n",
			[]string{"expect.verdicts[0].class"}},
		{"toml syntax", "x.toml", "pack = = 1\n", []string{"x.toml:1:"}},
		{"json syntax", "x.json", `{"pack": }`, []string{"x.json:"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc), tc.src)
			if err == nil {
				t.Fatal("parse accepted malformed manifest")
			}
			for _, want := range tc.wants {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q does not mention %q", err, want)
				}
			}
		})
	}
}

// TestErrorType pins that load failures surface as *pack.Error so
// callers can address source/line/field programmatically.
func TestErrorType(t *testing.T) {
	_, err := Parse([]byte("pack = 99\nname = \"x\"\nrounds = 1\n[topology]\nkind = \"fig10\"\n"), "e.toml")
	var pe *Error
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T, want *pack.Error", err)
	}
	if pe.Source != "e.toml" || pe.Field != "pack" {
		t.Fatalf("error fields: %+v", pe)
	}
}

// TestEnvironmentExpansionDeterministic pins the contract that keeps
// packs replayable: an environment profile expands to an arithmetic —
// not randomized — series of activations, so two expansions of the same
// profile are identical and bounded by MaxEnvEvents.
func TestEnvironmentExpansionDeterministic(t *testing.T) {
	m, err := Parse([]byte(`pack = 1
name = "env"
seed = 1
rounds = 3000
[topology]
kind = "fig10"
[[environment]]
profile = "thermal-cycling"
from_ms = 100
to_ms = 2000
period_ms = 150
intensity = 0.7
`), "env.toml")
	if err != nil {
		t.Fatal(err)
	}
	a := m.Environment[0].expand(&m.Topology)
	b := m.Environment[0].expand(&m.Topology)
	if len(a) == 0 {
		t.Fatal("profile expanded to no activations")
	}
	if len(a) > MaxEnvEvents {
		t.Fatalf("%d activations exceed MaxEnvEvents=%d", len(a), MaxEnvEvents)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two expansions of the same profile differ")
	}
	for i, f := range a {
		if !faultKinds[f.Kind] {
			t.Fatalf("expansion[%d] has unknown kind %q", i, f.Kind)
		}
	}
}

// TestExportedTopologiesValidate pins that the Topology values the
// scenario constructors build from are exactly what a manifest with the
// same kind resolves to.
func TestExportedTopologiesValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		top  Topology
	}{
		{"fig10", Fig10Topology()},
		{"grid", GridTopology(8)},
	} {
		m := &Manifest{Pack: Version, Name: tc.name, Seed: 1, Rounds: 10, Topology: tc.top}
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
		if !reflect.DeepEqual(m.Topology, tc.top) {
			t.Errorf("%s: validation changed the resolved topology:\n got %+v\nwant %+v", tc.name, m.Topology, tc.top)
		}
	}
}
