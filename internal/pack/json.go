package pack

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"strings"
)

// parseJSON reads a JSON document into the shared value tree, attaching
// 1-based source lines to every node. Lines come from the decoder's byte
// offset mapped through the newline index of the input — encoding/json
// reports offsets, not positions, so the mapping is ours.
func parseJSON(data []byte, source string) (*value, error) {
	lines := newLineIndex(data)
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()

	root, err := decodeJSONValue(dec, lines, source)
	if err != nil {
		return nil, err
	}
	// Reject trailing content after the document.
	if tok, err := dec.Token(); err != io.EOF {
		line := lines.line(dec.InputOffset())
		if err != nil {
			return nil, jsonError(err, lines, source)
		}
		return nil, errf(source, line, "", "unexpected trailing content %v after document", tok)
	}
	return root, nil
}

// decodeJSONValue consumes one JSON value from the decoder.
func decodeJSONValue(dec *json.Decoder, lines *lineIndex, source string) (*value, error) {
	tok, err := dec.Token()
	if err != nil {
		return nil, jsonError(err, lines, source)
	}
	// The offset points just past the token — close enough for the line of
	// scalar tokens and opening delimiters.
	line := lines.line(dec.InputOffset())
	switch t := tok.(type) {
	case json.Delim:
		switch t {
		case '{':
			obj := newObject()
			for dec.More() {
				keyTok, err := dec.Token()
				if err != nil {
					return nil, jsonError(err, lines, source)
				}
				key, ok := keyTok.(string)
				if !ok {
					return nil, errf(source, lines.line(dec.InputOffset()), "", "object key must be a string, got %v", keyTok)
				}
				keyLine := lines.line(dec.InputOffset())
				val, err := decodeJSONValue(dec, lines, source)
				if err != nil {
					return nil, err
				}
				if _, dup := obj.get(key); dup {
					return nil, errf(source, keyLine, key, "duplicate key")
				}
				// The key's line is the authoritative position of the field.
				val.line = keyLine
				obj.set(key, val)
			}
			if _, err := dec.Token(); err != nil { // consume '}'
				return nil, jsonError(err, lines, source)
			}
			return &value{raw: obj, line: line}, nil
		case '[':
			var arr []*value
			for dec.More() {
				elem, err := decodeJSONValue(dec, lines, source)
				if err != nil {
					return nil, err
				}
				arr = append(arr, elem)
			}
			if _, err := dec.Token(); err != nil { // consume ']'
				return nil, jsonError(err, lines, source)
			}
			return &value{raw: arr, line: line}, nil
		}
		return nil, errf(source, line, "", "unexpected delimiter %v", t)
	case string:
		return &value{raw: t, line: line}, nil
	case bool:
		return &value{raw: t, line: line}, nil
	case nil:
		return &value{raw: nil, line: line}, nil
	case json.Number:
		// Integers stay integers: schema fields that require ints reject
		// floats, and 1e3-style notation is accepted for float fields only.
		if i, err := t.Int64(); err == nil && !strings.ContainsAny(t.String(), ".eE") {
			return &value{raw: i, line: line}, nil
		}
		f, err := t.Float64()
		if err != nil {
			return nil, errf(source, line, "", "invalid number %q", t.String())
		}
		return &value{raw: f, line: line}, nil
	}
	return nil, errf(source, line, "", "unexpected token %v", tok)
}

// jsonError converts an encoding/json error into a line-addressed Error.
func jsonError(err error, lines *lineIndex, source string) error {
	var syn *json.SyntaxError
	if errors.As(err, &syn) {
		return errf(source, lines.line(syn.Offset), "", "syntax error: %s", syn.Error())
	}
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return errf(source, lines.last(), "", "unexpected end of document")
	}
	return errf(source, 0, "", "%s", err.Error())
}

// lineIndex maps byte offsets to 1-based line numbers.
type lineIndex struct {
	// starts[i] is the byte offset where line i+1 begins.
	starts []int64
}

func newLineIndex(data []byte) *lineIndex {
	idx := &lineIndex{starts: []int64{0}}
	for i, b := range data {
		if b == '\n' {
			idx.starts = append(idx.starts, int64(i+1))
		}
	}
	return idx
}

func (idx *lineIndex) line(offset int64) int {
	lo, hi := 0, len(idx.starts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if idx.starts[mid] <= offset {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo + 1
}

func (idx *lineIndex) last() int { return len(idx.starts) }

// looksLikeJSON reports whether the document's first non-space byte opens
// a JSON value — the format sniff used when the file extension is absent
// or ambiguous.
func looksLikeJSON(data []byte) bool {
	for _, b := range data {
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		case '{', '[':
			return true
		default:
			return false
		}
	}
	return false
}
