package pack

import (
	"errors"
	"os"
	"strings"
	"testing"
)

// FuzzPackManifest throws arbitrary bytes at both manifest front ends
// and holds the loader to its contract: never panic, never accept a
// document that fails validation, and address every rejection as a
// *pack.Error carrying the source name. The corpus seeds with the
// shipped pack library plus syntax-boundary fragments so the fuzzer
// starts at the interesting shapes instead of the empty string.
func FuzzPackManifest(f *testing.F) {
	if dir, ok := FindPacksDir("."); ok {
		files, err := Discover(dir)
		if err != nil {
			f.Fatal(err)
		}
		for _, path := range files {
			data, err := os.ReadFile(path)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(data)
		}
	}
	f.Add([]byte(minimalTOML))
	f.Add([]byte(richTOML))
	f.Add([]byte(richJSON))
	f.Add([]byte{})
	f.Add([]byte("pack = 1"))
	f.Add([]byte(`{"pack": 1, "topology": {"kind": "fig10"`))
	f.Add([]byte("[[faults]]\nkind = \"quartz\"\nrate = 1e309\n"))
	f.Add([]byte("[topology]\nkind = \"custom\"\ncomponents = [{id = 0, name = \"a\"}]\n"))
	f.Add([]byte("a = { b = [1, \"two\", {c = true}] }\n"))
	f.Add([]byte(`{"pack": 1, "name": "x", "seed": 18446744073709551615}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, source := range []string{"fuzz.toml", "fuzz.json", "fuzz"} {
			m, err := Parse(data, source)
			if err != nil {
				var pe *Error
				if !errors.As(err, &pe) {
					t.Fatalf("%s: rejection is %T, want *pack.Error: %v", source, err, err)
				}
				if !strings.Contains(err.Error(), source) {
					t.Fatalf("%s: rejection does not name the source: %v", source, err)
				}
				continue
			}
			// Accepted documents are fully validated: re-validating the
			// decoded manifest must be a no-op, and the topology must have
			// resolved to something an engine can be built from.
			if err := m.Validate(); err != nil {
				t.Fatalf("%s: accepted manifest fails re-validation: %v", source, err)
			}
			if m.Topology.Nodes < 1 || m.Topology.SlotLenUS < 1 || m.Topology.SlotBytes < 1 {
				t.Fatalf("%s: accepted manifest has unresolved topology: %+v", source, m.Topology)
			}
		}
	})
}
