package pack

import (
	"fmt"
	"sort"
	"strings"
)

// value is one node of the parsed document tree, shared by the JSON and
// TOML front ends so schema decoding and validation run once over a
// single representation. raw is nil, bool, string, int64, float64,
// []*value, or *object; line is the 1-based source line of the node.
type value struct {
	raw  any
	line int
}

// object is a key-ordered map node. Insertion order is preserved so
// error messages walk the document top to bottom.
type object struct {
	keys []string
	vals map[string]*value
}

func newObject() *object {
	return &object{vals: make(map[string]*value)}
}

func (o *object) set(key string, v *value) {
	if _, dup := o.vals[key]; !dup {
		o.keys = append(o.keys, key)
	}
	o.vals[key] = v
}

func (o *object) get(key string) (*value, bool) {
	v, ok := o.vals[key]
	return v, ok
}

// Error is one manifest load failure, addressed by source file, line and
// field path — "packs/x.toml:12: faults[2].rate: must be in (0, 1]".
type Error struct {
	Source string // file the manifest came from ("" for in-memory)
	Line   int    // 1-based source line (0 when unknown)
	Field  string // dotted field path ("" for document-level errors)
	Msg    string
}

func (e *Error) Error() string {
	var b strings.Builder
	if e.Source != "" {
		b.WriteString(e.Source)
		b.WriteString(":")
	}
	if e.Line > 0 {
		fmt.Fprintf(&b, "%d:", e.Line)
	}
	if b.Len() > 0 {
		b.WriteString(" ")
	}
	if e.Field != "" {
		b.WriteString(e.Field)
		b.WriteString(": ")
	}
	b.WriteString(e.Msg)
	return b.String()
}

// errf builds a field-addressed Error.
func errf(source string, line int, field, format string, args ...any) *Error {
	return &Error{Source: source, Line: line, Field: field, Msg: fmt.Sprintf(format, args...)}
}

// typeName names a value's dynamic type for error messages.
func typeName(v *value) string {
	switch v.raw.(type) {
	case nil:
		return "null"
	case bool:
		return "bool"
	case string:
		return "string"
	case int64:
		return "integer"
	case float64:
		return "float"
	case []*value:
		return "array"
	case *object:
		return "table"
	}
	return fmt.Sprintf("%T", v.raw)
}

// sortedKeys returns an object's keys sorted — for "unknown field"
// suggestions in error messages.
func sortedKeys(known map[string]bool) string {
	keys := make([]string, 0, len(known))
	for k := range known {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}
