package pack

import (
	"strconv"
	"strings"
)

// parseTOML reads a TOML document (the subset scenario packs use) into
// the shared value tree. Supported: comments, bare and quoted keys,
// dotted keys, [table] and [[array-of-tables]] headers, basic and
// literal strings with escapes, integers (decimal, hex, underscores),
// floats, booleans, single- and multi-line arrays, and inline tables.
// Unsupported (rejected with a line-addressed error): date-times,
// multi-line strings, and +/- infinity/nan literals.
//
// A hand-written parser keeps the repository dependency-free; strictness
// matters more than completeness here, so anything outside the subset is
// an explicit error rather than a silent skip.
func parseTOML(data []byte, source string) (*value, error) {
	p := &tomlParser{source: source, root: newObject()}
	p.lines = strings.Split(string(data), "\n")
	p.current = p.root
	for p.lineNo = 1; p.lineNo <= len(p.lines); p.lineNo++ {
		if err := p.parseLine(); err != nil {
			return nil, err
		}
	}
	return &value{raw: p.root, line: 1}, nil
}

type tomlParser struct {
	source string
	lines  []string
	lineNo int // 1-based, the line parseLine is consuming

	root *object
	// current is the table key/value lines land in ([table] headers
	// switch it).
	current *object
}

func (p *tomlParser) errf(field, format string, args ...any) error {
	return errf(p.source, p.lineNo, field, format, args...)
}

// parseLine consumes one logical line: blank, comment, table header or
// key/value (possibly spanning lines for multi-line arrays).
func (p *tomlParser) parseLine() error {
	line := strings.TrimSpace(p.lines[p.lineNo-1])
	if line == "" || strings.HasPrefix(line, "#") {
		return nil
	}
	if strings.HasPrefix(line, "[[") {
		return p.parseArrayHeader(line)
	}
	if strings.HasPrefix(line, "[") {
		return p.parseTableHeader(line)
	}
	return p.parseKeyValue(line)
}

// parseTableHeader handles `[a.b.c]`.
func (p *tomlParser) parseTableHeader(line string) error {
	inner, ok := cutHeader(line, "[", "]")
	if !ok {
		return p.errf("", "malformed table header %q", line)
	}
	path, err := p.parseKeyPath(inner)
	if err != nil {
		return err
	}
	tbl, err := p.descend(p.root, path)
	if err != nil {
		return err
	}
	p.current = tbl
	return nil
}

// parseArrayHeader handles `[[a.b]]`: appends a fresh table to the
// array-of-tables at the path and makes it current.
func (p *tomlParser) parseArrayHeader(line string) error {
	inner, ok := cutHeader(line, "[[", "]]")
	if !ok {
		return p.errf("", "malformed array-of-tables header %q", line)
	}
	path, err := p.parseKeyPath(inner)
	if err != nil {
		return err
	}
	parent, err := p.descend(p.root, path[:len(path)-1])
	if err != nil {
		return err
	}
	leaf := path[len(path)-1]
	elem := newObject()
	if existing, ok := parent.get(leaf); ok {
		arr, isArr := existing.raw.([]*value)
		if !isArr {
			return p.errf(strings.Join(path, "."), "not an array of tables (already defined as %s)", typeName(existing))
		}
		existing.raw = append(arr, &value{raw: elem, line: p.lineNo})
	} else {
		parent.set(leaf, &value{raw: []*value{{raw: elem, line: p.lineNo}}, line: p.lineNo})
	}
	p.current = elem
	return nil
}

// cutHeader strips the bracket pair and an optional trailing comment.
func cutHeader(line, open, close string) (string, bool) {
	rest := strings.TrimPrefix(line, open)
	end := strings.Index(rest, close)
	if end < 0 {
		return "", false
	}
	tail := strings.TrimSpace(rest[end+len(close):])
	if tail != "" && !strings.HasPrefix(tail, "#") {
		return "", false
	}
	return strings.TrimSpace(rest[:end]), true
}

// descend walks (creating as needed) nested tables along path. When a
// path segment holds an array of tables, descent continues in its last
// element (TOML's [table-array.subtable] rule). Scalars along the path
// are a hard error — redefinition is never silent.
func (p *tomlParser) descend(from *object, path []string) (*object, error) {
	cur := from
	for i, seg := range path {
		v, ok := cur.get(seg)
		if !ok {
			next := newObject()
			cur.set(seg, &value{raw: next, line: p.lineNo})
			cur = next
			continue
		}
		switch raw := v.raw.(type) {
		case *object:
			cur = raw
		case []*value:
			if len(raw) == 0 {
				return nil, p.errf(strings.Join(path[:i+1], "."), "cannot extend empty array")
			}
			last := raw[len(raw)-1]
			obj, isObj := last.raw.(*object)
			if !isObj {
				return nil, p.errf(strings.Join(path[:i+1], "."), "cannot extend non-table array element")
			}
			cur = obj
		default:
			return nil, p.errf(strings.Join(path[:i+1], "."), "already defined as %s", typeName(v))
		}
	}
	return cur, nil
}

// parseKeyPath splits a dotted key, honoring quoted segments.
func (p *tomlParser) parseKeyPath(s string) ([]string, error) {
	var path []string
	rest := strings.TrimSpace(s)
	for rest != "" {
		var seg string
		var err error
		if rest[0] == '"' || rest[0] == '\'' {
			seg, rest, err = p.scanQuoted(rest)
			if err != nil {
				return nil, err
			}
		} else {
			end := strings.IndexAny(rest, ".")
			if end < 0 {
				seg, rest = rest, ""
			} else {
				seg, rest = rest[:end], rest[end:]
			}
			seg = strings.TrimSpace(seg)
			if !isBareKey(seg) {
				return nil, p.errf("", "invalid key %q", seg)
			}
		}
		path = append(path, seg)
		rest = strings.TrimSpace(rest)
		if rest == "" {
			break
		}
		if rest[0] != '.' {
			return nil, p.errf("", "invalid key separator in %q", s)
		}
		rest = strings.TrimSpace(rest[1:])
		if rest == "" {
			return nil, p.errf("", "key path ends with a dot: %q", s)
		}
	}
	if len(path) == 0 {
		return nil, p.errf("", "empty key")
	}
	return path, nil
}

func isBareKey(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// scanQuoted consumes a leading quoted string from s, returning the
// unescaped content and the remainder.
func (p *tomlParser) scanQuoted(s string) (content, rest string, err error) {
	quote := s[0]
	if len(s) >= 3 && s[1] == quote && s[2] == quote {
		return "", "", p.errf("", "multi-line strings are not supported")
	}
	var b strings.Builder
	i := 1
	for i < len(s) {
		c := s[i]
		if c == quote {
			return b.String(), s[i+1:], nil
		}
		if quote == '"' && c == '\\' {
			if i+1 >= len(s) {
				return "", "", p.errf("", "unterminated escape in string")
			}
			esc := s[i+1]
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			case 'u', 'U':
				n := 4
				if esc == 'U' {
					n = 8
				}
				if i+2+n > len(s) {
					return "", "", p.errf("", "truncated unicode escape")
				}
				code, perr := strconv.ParseUint(s[i+2:i+2+n], 16, 32)
				if perr != nil {
					return "", "", p.errf("", "invalid unicode escape %q", s[i:i+2+n])
				}
				b.WriteRune(rune(code))
				i += n
			default:
				return "", "", p.errf("", "unsupported escape \\%c", esc)
			}
			i += 2
			continue
		}
		b.WriteByte(c)
		i++
	}
	return "", "", p.errf("", "unterminated string")
}

// parseKeyValue handles `key = value`, descending dotted keys relative
// to the current table.
func (p *tomlParser) parseKeyValue(line string) error {
	eq := p.findEquals(line)
	if eq < 0 {
		return p.errf("", "expected key = value, got %q", line)
	}
	path, err := p.parseKeyPath(line[:eq])
	if err != nil {
		return err
	}
	tbl, err := p.descend(p.current, path[:len(path)-1])
	if err != nil {
		return err
	}
	leaf := path[len(path)-1]
	if _, dup := tbl.get(leaf); dup {
		return p.errf(strings.Join(path, "."), "duplicate key")
	}
	raw := strings.TrimSpace(line[eq+1:])
	v, rest, err := p.parseValue(raw)
	if err != nil {
		return err
	}
	rest = strings.TrimSpace(rest)
	if rest != "" && !strings.HasPrefix(rest, "#") {
		return p.errf(strings.Join(path, "."), "trailing content %q after value", rest)
	}
	tbl.set(leaf, v)
	return nil
}

// findEquals locates the key/value separator outside of quotes.
func (p *tomlParser) findEquals(line string) int {
	inQuote := byte(0)
	for i := 0; i < len(line); i++ {
		c := line[i]
		if inQuote != 0 {
			if c == '\\' && inQuote == '"' {
				i++
			} else if c == inQuote {
				inQuote = 0
			}
			continue
		}
		switch c {
		case '"', '\'':
			inQuote = c
		case '=':
			return i
		}
	}
	return -1
}

// parseValue consumes one value from the front of s, returning the
// remainder. Multi-line arrays pull further physical lines from the
// parser.
func (p *tomlParser) parseValue(s string) (*value, string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, "", p.errf("", "missing value")
	}
	line := p.lineNo
	switch {
	case s[0] == '"' || s[0] == '\'':
		content, rest, err := p.scanQuoted(s)
		if err != nil {
			return nil, "", err
		}
		return &value{raw: content, line: line}, rest, nil
	case s[0] == '[':
		return p.parseArray(s[1:])
	case s[0] == '{':
		return p.parseInlineTable(s[1:])
	case strings.HasPrefix(s, "true"):
		return &value{raw: true, line: line}, s[4:], nil
	case strings.HasPrefix(s, "false"):
		return &value{raw: false, line: line}, s[5:], nil
	}
	// Number: scan to the first delimiter.
	end := len(s)
	for i := 0; i < len(s); i++ {
		if c := s[i]; c == ',' || c == ']' || c == '}' || c == '#' || c == ' ' || c == '\t' {
			end = i
			break
		}
	}
	tok := s[:end]
	rest := s[end:]
	clean := strings.ReplaceAll(tok, "_", "")
	if i, err := strconv.ParseInt(clean, 0, 64); err == nil && !strings.ContainsAny(clean, ".eEpP") {
		return &value{raw: i, line: line}, rest, nil
	}
	if f, err := strconv.ParseFloat(clean, 64); err == nil {
		lower := strings.ToLower(clean)
		if strings.Contains(lower, "inf") || strings.Contains(lower, "nan") {
			return nil, "", p.errf("", "non-finite numbers are not supported")
		}
		return &value{raw: f, line: line}, rest, nil
	}
	return nil, "", p.errf("", "invalid value %q", tok)
}

// parseArray consumes array elements after the opening '[', pulling
// additional physical lines as needed.
func (p *tomlParser) parseArray(s string) (*value, string, error) {
	line := p.lineNo
	var elems []*value
	for {
		s = strings.TrimSpace(s)
		// Exhausted this physical line (or hit a comment): continue on the
		// next one — TOML arrays may span lines.
		for s == "" || strings.HasPrefix(s, "#") {
			if p.lineNo >= len(p.lines) {
				return nil, "", p.errf("", "unterminated array")
			}
			p.lineNo++
			s = strings.TrimSpace(p.lines[p.lineNo-1])
		}
		if s[0] == ']' {
			return &value{raw: elems, line: line}, s[1:], nil
		}
		elem, rest, err := p.parseValue(s)
		if err != nil {
			return nil, "", err
		}
		elems = append(elems, elem)
		s = strings.TrimSpace(rest)
		for s == "" || strings.HasPrefix(s, "#") {
			if p.lineNo >= len(p.lines) {
				return nil, "", p.errf("", "unterminated array")
			}
			p.lineNo++
			s = strings.TrimSpace(p.lines[p.lineNo-1])
		}
		switch s[0] {
		case ',':
			s = s[1:]
		case ']':
			return &value{raw: elems, line: line}, s[1:], nil
		default:
			return nil, "", p.errf("", "expected ',' or ']' in array, got %q", s)
		}
	}
}

// parseInlineTable consumes `key = value` pairs after the opening '{'.
// Inline tables are single-line per the TOML spec.
func (p *tomlParser) parseInlineTable(s string) (*value, string, error) {
	line := p.lineNo
	obj := newObject()
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "}") {
		return &value{raw: obj, line: line}, s[1:], nil
	}
	for {
		s = strings.TrimSpace(s)
		eq := p.findEquals(s)
		if eq < 0 {
			return nil, "", p.errf("", "expected key = value in inline table, got %q", s)
		}
		path, err := p.parseKeyPath(s[:eq])
		if err != nil {
			return nil, "", err
		}
		if len(path) != 1 {
			return nil, "", p.errf("", "dotted keys are not supported in inline tables")
		}
		if _, dup := obj.get(path[0]); dup {
			return nil, "", p.errf(path[0], "duplicate key in inline table")
		}
		elem, rest, err := p.parseValue(s[eq+1:])
		if err != nil {
			return nil, "", err
		}
		obj.set(path[0], elem)
		s = strings.TrimSpace(rest)
		if s == "" {
			return nil, "", p.errf("", "unterminated inline table")
		}
		switch s[0] {
		case ',':
			s = s[1:]
		case '}':
			return &value{raw: obj, line: line}, s[1:], nil
		default:
			return nil, "", p.errf("", "expected ',' or '}' in inline table, got %q", s)
		}
	}
}
