package pack

import (
	"context"
	"fmt"
	"strings"
	"time"

	"decos/internal/core"
	"decos/internal/engine"
	"decos/internal/maintenance"
)

// Classifier names the runner scores every pack against.
const (
	ClassifierDECOS = "decos"
	ClassifierOBD   = "obd"
	ClassifierBayes = "bayes"
)

// Classifiers lists every classification stage the conformance runner
// scores, in report order.
var Classifiers = []string{ClassifierDECOS, ClassifierOBD, ClassifierBayes}

// Check is one scored assertion of a conformance run.
type Check struct {
	Desc   string `json:"desc"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail,omitempty"`
}

// ClassifierScore is one classifier's scored run of a pack.
type ClassifierScore struct {
	Classifier string  `json:"classifier"`
	Checks     []Check `json:"checks"`
	Satisfied  int     `json:"satisfied"`
	Total      int     `json:"total"`
	Score      float64 `json:"score"`
	MinScore   float64 `json:"min_score"`
	Pass       bool    `json:"pass"`
	// WallClockMS is the wall-clock cost of this classifier's run leg
	// (build + simulate + score). Campaign legs that share one fleet run
	// report the shared run's cost.
	WallClockMS float64 `json:"wall_clock_ms"`
}

// PackResult is one pack's conformance outcome across every classifier.
type PackResult struct {
	Name        string            `json:"name"`
	Source      string            `json:"source,omitempty"`
	Seed        uint64            `json:"seed"`
	Rounds      int64             `json:"rounds"`
	Campaign    bool              `json:"campaign,omitempty"`
	Classifiers []ClassifierScore `json:"classifiers,omitempty"`
	Error       string            `json:"error,omitempty"`
	Pass        bool              `json:"pass"`
}

// Report is the machine-readable conformance report over a pack library.
type Report struct {
	Version int          `json:"version"`
	Packs   []PackResult `json:"packs"`
	Total   int          `json:"total"`
	Passed  int          `json:"passed"`
	Failed  int          `json:"failed"`
}

// Add appends a pack result and updates the totals.
func (r *Report) Add(pr *PackResult) {
	r.Packs = append(r.Packs, *pr)
	r.Total++
	if pr.Pass {
		r.Passed++
	} else {
		r.Failed++
	}
}

// Format renders the report as a human-readable table (the JSON form is
// the machine interface).
func (r *Report) Format() string {
	var b strings.Builder
	for _, p := range r.Packs {
		status := "PASS"
		if !p.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "%-4s %-32s", status, p.Name)
		if p.Error != "" {
			fmt.Fprintf(&b, " error: %s\n", p.Error)
			continue
		}
		for _, cs := range p.Classifiers {
			marker := ""
			if !cs.Pass {
				marker = "!"
			}
			fmt.Fprintf(&b, "  %s %d/%d (min %.2f, %.0fms)%s", cs.Classifier, cs.Satisfied, cs.Total, cs.MinScore, cs.WallClockMS, marker)
		}
		b.WriteString("\n")
		for _, cs := range p.Classifiers {
			for _, c := range cs.Checks {
				if !c.Pass && !cs.Pass {
					fmt.Fprintf(&b, "       %s: FAIL %s — %s\n", cs.Classifier, c.Desc, c.Detail)
				}
			}
		}
	}
	fmt.Fprintf(&b, "packs: %d  passed: %d  failed: %d\n", r.Total, r.Passed, r.Failed)
	return b.String()
}

// ConformSingle runs a single-vehicle pack against every classifier and
// scores its expectations. Campaign packs are scored by the scenario
// layer (which owns the fleet campaign driver); calling this on one
// returns an error result.
func ConformSingle(ctx context.Context, m *Manifest) *PackResult {
	return ConformSingleFor(ctx, m, Classifiers)
}

// ConformSingleFor is ConformSingle restricted to the named classifiers
// (the -classifier CLI flags time one stage without paying for the
// others).
func ConformSingleFor(ctx context.Context, m *Manifest, clss []string) *PackResult {
	pr := &PackResult{Name: m.Name, Source: m.Source, Seed: m.Seed, Rounds: m.Rounds}
	if m.Campaign != nil {
		pr.Error = "campaign pack: score through the scenario conformance runner"
		return pr
	}
	pr.Pass = true
	for _, cls := range clss {
		cs, err := conformClassifier(ctx, m, cls)
		if err != nil {
			pr.Error = err.Error()
			pr.Pass = false
			return pr
		}
		pr.Classifiers = append(pr.Classifiers, *cs)
		if !cs.Pass {
			pr.Pass = false
		}
	}
	return pr
}

// conformClassifier runs the pack once under the named classifier and
// scores every expectation scoped to it. The manifest's own classifier
// selection is bypassed: conformance always pins the stage explicitly.
func conformClassifier(ctx context.Context, m *Manifest, cls string) (*ClassifierScore, error) {
	start := time.Now()
	mc := *m
	mc.Classifier = ""
	eng, err := mc.Engine(ClassifierOptions(cls)...)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", cls, err)
	}
	if err := eng.Run(ctx, m.Rounds); err != nil {
		return nil, fmt.Errorf("%s: run: %w", cls, err)
	}
	cs := &ClassifierScore{Classifier: cls, MinScore: m.minScoreFor(cls)}
	e := &m.Expect

	if e.Healthy {
		verdicts := eng.Diag.Assessor.CurrentAll()
		check := Check{Desc: "healthy: no standing verdicts", Pass: len(verdicts) == 0}
		if !check.Pass {
			var names []string
			for _, v := range verdicts {
				names = append(names, fmt.Sprintf("%s=%s", v.FRU, v.Class))
			}
			check.Detail = strings.Join(names, ", ")
		}
		cs.Checks = append(cs.Checks, check)
	}

	for _, ve := range e.Verdicts {
		if ve.Classifier != "" && ve.Classifier != cls {
			continue
		}
		cs.Checks = append(cs.Checks, checkVerdict(eng, ve))
	}

	if e.MaxFalseAlarms >= 0 {
		cs.Checks = append(cs.Checks, checkFalseAlarms(eng, e.MaxFalseAlarms))
	}

	cs.finish()
	cs.WallClockMS = float64(time.Since(start).Microseconds()) / 1e3
	return cs, nil
}

// checkVerdict scores one expected verdict against the engine's
// diagnoser (whatever classifier is installed in its pipeline).
func checkVerdict(eng *engine.Engine, ve VerdictExpect) Check {
	desc := fmt.Sprintf("verdict %s is %s", ve.FRU, ve.Class)
	if ve.Action != "" {
		desc += " → " + ve.Action
	}
	fru, err := core.ParseFRU(ve.FRU)
	if err != nil {
		return Check{Desc: desc, Detail: err.Error()}
	}
	want, err := core.ParseFaultClass(ve.Class)
	if err != nil {
		return Check{Desc: desc, Detail: err.Error()}
	}
	action, got, found := eng.Diag.Advise(fru)
	if !found {
		return Check{Desc: desc, Detail: "no standing verdict"}
	}
	if !want.Matches(got) {
		return Check{Desc: desc, Detail: fmt.Sprintf("diagnosed %s", got)}
	}
	if ve.Action != "" {
		wantAction, err := core.ParseMaintenanceAction(ve.Action)
		if err != nil {
			return Check{Desc: desc, Detail: err.Error()}
		}
		if action != wantAction {
			return Check{Desc: desc, Detail: fmt.Sprintf("advised %s", action)}
		}
	}
	return Check{Desc: desc, Pass: true}
}

// checkFalseAlarms bounds removal advice on hardware FRUs that were
// never a culprit, through the shared arm-audit rule.
func checkFalseAlarms(eng *engine.Engine, max int) Check {
	culprit := map[int]bool{}
	for _, a := range eng.Injector.Ledger() {
		if a.Culprit.IsHardware() && a.Culprit.Component >= 0 {
			culprit[a.Culprit.Component] = true
		}
	}
	var audit maintenance.ArmAudit
	for _, c := range eng.Cluster.Components() {
		if culprit[int(c.ID)] {
			continue
		}
		if action, _, ok := eng.Diag.Advise(core.HardwareFRU(int(c.ID))); ok {
			audit.HealthyAdvice(action)
		}
	}
	check := Check{
		Desc: fmt.Sprintf("false alarms ≤ %d", max),
		Pass: audit.FalseAlarms <= max,
	}
	if !check.Pass {
		check.Detail = fmt.Sprintf("%d non-culprit removals advised", audit.FalseAlarms)
	}
	return check
}

// minScoreFor returns the pass threshold for a classifier: packs assert
// DECOS behaviour by default (min 1.0) and score the OBD and Bayesian
// alternatives report-only (min 0) unless the pack raises them.
func (m *Manifest) minScoreFor(cls string) float64 {
	switch cls {
	case ClassifierOBD:
		return m.Expect.MinScoreOBD
	case ClassifierBayes:
		return m.Expect.MinScoreBayes
	}
	return m.Expect.MinScore
}

// finish computes the score and pass verdict from the check list. A
// pack with no checks for a classifier scores 1.0 vacuously — shipped
// packs are required (by the conformance contract test) to carry at
// least one expectation.
func (cs *ClassifierScore) finish() {
	cs.Total = len(cs.Checks)
	for _, c := range cs.Checks {
		if c.Pass {
			cs.Satisfied++
		}
	}
	if cs.Total == 0 {
		cs.Score = 1
	} else {
		cs.Score = float64(cs.Satisfied) / float64(cs.Total)
	}
	cs.Pass = cs.Score >= cs.MinScore
}

// CampaignLeg is one classifier's audited fleet outcome, handed to
// ScoreCampaign by the scenario campaign driver (pack cannot import it).
type CampaignLeg struct {
	Report      *maintenance.Report
	FalseAlarms int
	WallClockMS float64
}

// ScoreCampaign scores a campaign pack from the audited fleet reports
// of every classifier the caller ran: one leg per Classifiers name
// present in the map (absent names score no column — that is how
// classifier-restricted CLI runs skip legs).
func ScoreCampaign(m *Manifest, legs map[string]CampaignLeg) *PackResult {
	pr := &PackResult{
		Name: m.Name, Source: m.Source, Seed: m.Seed, Rounds: m.Rounds,
		Campaign: true, Pass: true,
	}
	decos := legs[ClassifierDECOS].Report
	obd := legs[ClassifierOBD].Report
	for _, cls := range Classifiers {
		leg, ok := legs[cls]
		if !ok {
			continue
		}
		rep, falseAlarms := leg.Report, leg.FalseAlarms
		cs := &ClassifierScore{Classifier: cls, MinScore: m.minScoreFor(cls), WallClockMS: leg.WallClockMS}
		e := &m.Expect
		if e.MinClassAccuracy > 0 {
			acc := rep.ClassAccuracy()
			cs.Checks = append(cs.Checks, Check{
				Desc:   fmt.Sprintf("class accuracy ≥ %.2f", e.MinClassAccuracy),
				Pass:   acc >= e.MinClassAccuracy,
				Detail: fmt.Sprintf("measured %.3f", acc),
			})
		}
		if e.MaxNFFRatio >= 0 {
			nff := rep.NFFRatio()
			cs.Checks = append(cs.Checks, Check{
				Desc:   fmt.Sprintf("NFF ratio ≤ %.2f", e.MaxNFFRatio),
				Pass:   nff <= e.MaxNFFRatio,
				Detail: fmt.Sprintf("measured %.3f", nff),
			})
		}
		if e.MaxFalseAlarms >= 0 {
			cs.Checks = append(cs.Checks, Check{
				Desc:   fmt.Sprintf("false alarms ≤ %d", e.MaxFalseAlarms),
				Pass:   falseAlarms <= e.MaxFalseAlarms,
				Detail: fmt.Sprintf("measured %d", falseAlarms),
			})
		}
		if e.DECOSBeatsOBD && decos != nil && obd != nil {
			// The architecture claim: strictly better fault classification
			// without paying for it in no-fault-found removals.
			cs.Checks = append(cs.Checks, Check{
				Desc: "DECOS outperforms OBD (class accuracy up, NFF no worse)",
				Pass: decos.ClassAccuracy() > obd.ClassAccuracy() &&
					decos.NFFRatio() <= obd.NFFRatio(),
				Detail: fmt.Sprintf("accuracy %.3f vs %.3f, NFF %.3f vs %.3f",
					decos.ClassAccuracy(), obd.ClassAccuracy(),
					decos.NFFRatio(), obd.NFFRatio()),
			})
		}
		cs.finish()
		pr.Classifiers = append(pr.Classifiers, *cs)
		if !cs.Pass {
			pr.Pass = false
		}
	}
	return pr
}
