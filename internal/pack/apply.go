package pack

import (
	"fmt"
	"strings"

	"decos/internal/component"
	"decos/internal/faults"
	"decos/internal/sim"
	"decos/internal/tt"
	"decos/internal/vnet"
)

// ApplyFaults is the manifest's engine.WithFaults hook: it applies the
// declared faults in order, then the deterministic expansion of every
// environment profile. It runs after cluster start, so job references
// resolve against the built topology; validation has already checked
// them, so lookup failures here are programming errors and panic.
func (m *Manifest) ApplyFaults(inj *faults.Injector) {
	for i := range m.Faults {
		applyFault(inj, &m.Faults[i])
	}
	for i := range m.Environment {
		for _, f := range m.Environment[i].expand(&m.Topology) {
			applyFault(inj, &f)
		}
	}
}

// resolveJob returns the job instance a "DAS/job" reference names.
func resolveJob(cl *component.Cluster, ref string) *component.Instance {
	dasName, jobName, ok := strings.Cut(ref, "/")
	if !ok {
		panic(fmt.Sprintf("pack: job reference %q is not DAS/job", ref))
	}
	das := cl.DAS(dasName)
	if das == nil {
		panic(fmt.Sprintf("pack: unknown DAS %q", dasName))
	}
	j := das.JobNamed(jobName)
	if j == nil {
		panic(fmt.Sprintf("pack: unknown job %q in DAS %q", jobName, dasName))
	}
	return j
}

// applyFault maps one validated FaultSpec onto its injector primitive.
func applyFault(inj *faults.Injector, f *FaultSpec) {
	cl := inj.Cluster()
	comp := tt.NodeID(f.Component)
	at := f.At()
	switch f.Kind {
	case "emi-burst":
		x, y := f.X, f.Y
		if f.Component >= 0 {
			// Component-targeted burst: epicenter at the component.
			c := cl.Component(comp)
			x, y = c.X, c.Y
		}
		inj.EMIBurst(at, x, y, f.Radius, f.Duration(), f.Bits)
	case "seu":
		inj.SEU(at, comp)
	case "power-dip":
		inj.PowerDip(comp, at, f.Duration())
	case "connector-tx":
		inj.ConnectorTx(comp, at, f.End(), f.Rate)
	case "connector-rx":
		inj.ConnectorRx(comp, at, f.End(), f.Rate)
	case "wearout":
		inj.Wearout(comp, faults.WearoutAcceleration{
			Onset:           at,
			Tau:             sim.Duration(f.TauMS * float64(sim.Millisecond)),
			BaseRatePerHour: f.BaseRatePerHour,
			MaxFactor:       f.MaxFactor,
		}, f.DriftPerHour)
	case "intermittent":
		inj.IntermittentInternal(comp, at, f.RatePerHour, f.End())
	case "permanent-silent":
		inj.PermanentFailSilent(comp, at)
	case "permanent-babbling":
		inj.PermanentBabbling(comp, at)
	case "quartz":
		inj.DefectiveQuartz(comp, at, f.DriftPPM)
	case "transient-quartz":
		inj.TransientQuartz(comp, at, f.Duration(), f.DriftPPM)
	case "misconfig-queue":
		inj.MisconfigureQueue(resolveJob(cl, f.Job), vnet.ChannelID(f.Channel), f.QueueCap)
	case "bohrbug":
		threshold := f.Threshold
		bad := f.Value
		inj.Bohrbug(resolveJob(cl, f.Job), vnet.ChannelID(f.Channel),
			func(v float64, now sim.Time) bool { return now >= at && v > threshold }, bad)
	case "heisenbug":
		inj.Heisenbug(resolveJob(cl, f.Job), vnet.ChannelID(f.Channel), f.Rate, f.Value, f.Omit)
	case "job-crash":
		inj.JobCrash(resolveJob(cl, f.Job), at)
	case "sensor-stuck":
		inj.SensorStuck(resolveJob(cl, f.Job), at, f.Value)
	case "sensor-drift":
		inj.SensorDrift(resolveJob(cl, f.Job), at, f.DriftPerHour)
	default:
		panic(fmt.Sprintf("pack: no injector primitive for kind %q (validate first)", f.Kind))
	}
}
