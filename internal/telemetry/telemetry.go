// Package telemetry is the self-observation layer of the reproduction: a
// stdlib-only metrics registry of atomic counters, gauges and fixed-bucket
// histograms that every pipeline stage — simulator, diagnosis, fleet
// ingestion — can publish into, the same way the DECOS diagnoser publishes
// out-of-norm assertions: cheap enough to leave on in production, silent
// when disabled.
//
// The disabled path is zero-overhead by the same sentinel pattern as
// trace.Sink's no-op: every method is nil-safe, so a nil *Registry hands
// out nil metric handles and a nil handle's Add/Set/Observe is a single
// branch with no stores, no allocation and no contention. Consumers hold
// the handle, not the registry:
//
//	rounds := reg.Counter("engine.rounds") // nil reg -> nil handle
//	...
//	rounds.Inc() // no-op when disabled, one atomic add when enabled
//
// Enabled metrics are safe for concurrent use. Snapshots are deterministic
// (sorted names, pure counter state), so two identical runs publish
// identical snapshots.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The nil counter
// discards updates and reads as zero.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero for the nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The nil gauge discards updates
// and reads as zero.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (zero for the nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a named collection of metrics. The zero value is not usable;
// construct with New. A nil *Registry is the disabled registry: every
// lookup returns a nil handle and Snapshot returns the empty snapshot.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	funcs      map[string]func() int64
}

// New returns an empty enabled registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		funcs:      make(map[string]func() int64),
	}
}

// Enabled reports whether the registry records anything (false for nil).
func (r *Registry) Enabled() bool { return r != nil }

// Counter returns the named counter, creating it on first use. A nil
// registry returns the nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns the nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. A nil
// registry returns the nil (no-op) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = newHistogram()
		r.histograms[name] = h
	}
	return h
}

// GaugeFunc registers a gauge computed at snapshot time — the bridge for
// state another subsystem already maintains (store sizes, queue depths).
// f must be safe to call from any goroutine; it replaces any previous
// function under the same name. A nil registry ignores the registration.
func (r *Registry) GaugeFunc(name string, f func() int64) {
	if r == nil || f == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = f
}

// Snapshot is a point-in-time copy of every metric, keyed by name.
// Computed gauges (GaugeFunc) appear alongside stored gauges. JSON
// marshalling is deterministic: encoding/json emits map keys sorted.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the current value of every metric. It is safe to call
// concurrently with metric updates; a nil registry returns the zero
// snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for n, h := range r.histograms {
		hists[n] = h
	}
	funcs := make(map[string]func() int64, len(r.funcs))
	for n, f := range r.funcs {
		funcs[n] = f
	}
	r.mu.Unlock()

	// Values are read outside the lock: registration is frozen in the
	// copies above, and the reads themselves are atomic (or, for computed
	// gauges, delegated to the provider's own synchronization).
	if len(counters) > 0 {
		s.Counters = make(map[string]int64, len(counters))
		for n, c := range counters {
			s.Counters[n] = c.Value()
		}
	}
	if len(gauges) > 0 || len(funcs) > 0 {
		s.Gauges = make(map[string]int64, len(gauges)+len(funcs))
		for n, g := range gauges {
			s.Gauges[n] = g.Value()
		}
		for n, f := range funcs {
			s.Gauges[n] = f()
		}
	}
	if len(hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(hists))
		for n, h := range hists {
			s.Histograms[n] = h.Snapshot()
		}
	}
	return s
}

// Names returns the names of all registered metrics, sorted, with computed
// gauges included — the registry's table of contents.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms)+len(r.funcs))
	for n := range r.counters {
		out = append(out, n)
	}
	for n := range r.gauges {
		out = append(out, n)
	}
	for n := range r.histograms {
		out = append(out, n)
	}
	for n := range r.funcs {
		out = append(out, n)
	}
	r.mu.Unlock()
	sort.Strings(out)
	return out
}
