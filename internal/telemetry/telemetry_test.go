package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	if again := r.Counter("a.count"); again != c {
		t.Error("Counter did not return the same handle on second lookup")
	}

	g := r.Gauge("a.gauge")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
	if again := r.Gauge("a.gauge"); again != g {
		t.Error("Gauge did not return the same handle on second lookup")
	}
}

func TestNilRegistryAndHandlesAreNoOps(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Error("nil registry reports Enabled")
	}
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out non-nil handles")
	}
	// All of these must be safe no-ops.
	c.Inc()
	c.Add(5)
	g.Set(5)
	g.Add(5)
	h.Observe(5)
	r.GaugeFunc("x", func() int64 { return 1 })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil handles recorded values")
	}
	if s := r.Snapshot(); s.Counters != nil || s.Gauges != nil || s.Histograms != nil {
		t.Error("nil registry snapshot is not empty")
	}
	if n := r.Names(); n != nil {
		t.Errorf("nil registry Names = %v, want nil", n)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
	if got := buf.String(); got != "{}\n" {
		t.Errorf("nil WriteJSON = %q, want {}\\n", got)
	}
}

func TestDisabledPathAllocatesNothing(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(3)
		h.Observe(3)
	})
	if allocs != 0 {
		t.Errorf("disabled-path updates allocated %.1f times per run, want 0", allocs)
	}
}

func TestEnabledUpdatesAllocateNothing(t *testing.T) {
	r := New()
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(3)
		h.Observe(3)
	})
	if allocs != 0 {
		t.Errorf("enabled-path updates allocated %.1f times per run, want 0", allocs)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("lat")
	// 100 observations at 100, one outlier at 1e9.
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	h.Observe(1_000_000_000)
	s := h.Snapshot()
	if s.Count != 101 {
		t.Fatalf("count = %d, want 101", s.Count)
	}
	if s.Min != 100 || s.Max != 1_000_000_000 {
		t.Errorf("min/max = %d/%d, want 100/1000000000", s.Min, s.Max)
	}
	wantSum := int64(100*100 + 1_000_000_000)
	if s.Sum != wantSum {
		t.Errorf("sum = %d, want %d", s.Sum, wantSum)
	}
	// 100 is in bucket bits.Len64(100)=7, upper bound 2^7-1=127. The p50
	// estimate is that bucket's upper bound; p99 likewise (rank 100 of 101
	// still lands in the 100s bucket).
	if s.P50 != 127 {
		t.Errorf("p50 = %d, want 127", s.P50)
	}
	if s.P99 != 127 {
		t.Errorf("p99 = %d, want 127", s.P99)
	}
	if len(s.Buckets) != 2 {
		t.Fatalf("non-empty buckets = %d, want 2 (%v)", len(s.Buckets), s.Buckets)
	}
	if s.Buckets[0].Le != 127 || s.Buckets[0].Count != 100 {
		t.Errorf("bucket[0] = %+v, want {127 100}", s.Buckets[0])
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	r := New()
	h := r.Histogram("edge")
	h.Observe(0)
	h.Observe(-5) // clamped to 0
	h.Observe(math.MaxInt64)
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if s.Min != 0 {
		t.Errorf("min = %d, want 0", s.Min)
	}
	if s.Max != math.MaxInt64 {
		t.Errorf("max = %d, want MaxInt64", s.Max)
	}
	// Zero bucket holds two observations; p50 (rank 2 of 3) is zero.
	if s.P50 != 0 {
		t.Errorf("p50 = %d, want 0", s.P50)
	}
	// p99 lands in the top bucket; its upper bound is clamped to max.
	if s.P99 != math.MaxInt64 {
		t.Errorf("p99 = %d, want MaxInt64", s.P99)
	}
}

func TestQuantileClampedToObservedMax(t *testing.T) {
	r := New()
	h := r.Histogram("clamp")
	h.Observe(1000) // bucket upper bound 1023
	s := h.Snapshot()
	if s.P50 != 1000 || s.P99 != 1000 {
		t.Errorf("p50/p99 = %d/%d, want 1000/1000 (clamped to observed max)", s.P50, s.P99)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := New()
	v := int64(0)
	r.GaugeFunc("depth", func() int64 { return v })
	v = 9
	s := r.Snapshot()
	if got := s.Gauges["depth"]; got != 9 {
		t.Errorf("computed gauge = %d, want 9", got)
	}
	// Registration under the same name replaces the function.
	r.GaugeFunc("depth", func() int64 { return 1 })
	if got := r.Snapshot().Gauges["depth"]; got != 1 {
		t.Errorf("re-registered gauge = %d, want 1", got)
	}
}

func TestNames(t *testing.T) {
	r := New()
	r.Counter("b.counter")
	r.Gauge("a.gauge")
	r.Histogram("c.hist")
	r.GaugeFunc("d.func", func() int64 { return 0 })
	got := r.Names()
	want := []string{"a.gauge", "b.counter", "c.hist", "d.func"}
	if len(got) != len(want) {
		t.Fatalf("Names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names = %v, want %v", got, want)
		}
	}
}

// TestSnapshotDeterminism checks the core contract for reproducible
// experiments: two registries fed identical update sequences serialize to
// byte-identical JSON, regardless of registration interleavings.
func TestSnapshotDeterminism(t *testing.T) {
	build := func(order []string) []byte {
		r := New()
		for _, n := range order {
			r.Counter("count." + n)
		}
		for _, n := range order {
			r.Counter("count." + n).Add(int64(len(n)))
			r.Gauge("gauge." + n).Set(42)
			r.Histogram("hist." + n).Observe(100)
		}
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.Bytes()
	}
	a := build([]string{"x", "y", "z"})
	b := build([]string{"z", "x", "y"})
	if !bytes.Equal(a, b) {
		t.Errorf("snapshots differ across registration orders:\n%s\n%s", a, b)
	}
	// And the JSON is valid.
	var s Snapshot
	if err := json.Unmarshal(a, &s); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}
	if s.Counters["count.x"] != 1 || s.Gauges["gauge.z"] != 42 || s.Histograms["hist.y"].Count != 1 {
		t.Errorf("round-tripped snapshot lost values: %+v", s)
	}
}
