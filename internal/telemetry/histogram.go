package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// histBuckets is the fixed bucket count of every histogram: base-2
// exponential buckets, bucket i holding values whose bit length is i
// (i.e. [2^(i-1), 2^i-1]; bucket 0 holds exactly zero). 48 buckets cover
// nanosecond latencies up to ~1.6 days, so no observation is ever out of
// range in practice and the last bucket absorbs the rest.
const histBuckets = 48

// Histogram is a fixed-bucket distribution of non-negative int64
// observations — latencies in nanoseconds, sizes in bytes. Observe is
// allocation-free and lock-free; the nil histogram discards observations.
// Negative values are clamped to zero (durations can go negative on
// clock steps; they carry no information worth a panic).
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
}

// Count returns the number of observations (zero for the nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Bucket is one non-empty histogram bucket: Count observations at most Le.
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the JSON form of a histogram: totals, extremes,
// estimated quantiles and the non-empty buckets.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	Mean    float64  `json:"mean"`
	P50     int64    `json:"p50"`
	P99     int64    `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot captures the histogram's current state. Quantiles are upper
// bounds of the bucket the rank falls in — coarse (a factor of two) but
// monotone and allocation-free to maintain. Concurrent Observe calls may
// leave count/sum momentarily inconsistent by one observation; snapshots
// of a quiesced histogram are exact.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	if s.Count == 0 {
		return s
	}
	s.Min = h.min.Load()
	s.Max = h.max.Load()
	s.Mean = float64(s.Sum) / float64(s.Count)

	var counts [histBuckets]int64
	total := int64(0)
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s.P50 = h.quantile(&counts, total, 0.50)
	s.P99 = h.quantile(&counts, total, 0.99)
	for i, c := range counts {
		if c > 0 {
			s.Buckets = append(s.Buckets, Bucket{Le: bucketLe(i), Count: c})
		}
	}
	return s
}

// bucketLe returns the inclusive upper bound of bucket i. The last bucket
// absorbs every out-of-range observation, so it is open-ended.
func bucketLe(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= histBuckets-1 {
		return math.MaxInt64
	}
	return int64(1)<<i - 1
}

func (h *Histogram) quantile(counts *[histBuckets]int64, total int64, q float64) int64 {
	if total == 0 {
		return 0
	}
	// Nearest-rank: the smallest value with at least ceil(q*total)
	// observations at or below it.
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	seen := int64(0)
	for i, c := range counts {
		seen += c
		if seen >= rank {
			le := bucketLe(i)
			if mx := h.max.Load(); le > mx {
				le = mx
			}
			return le
		}
	}
	return h.max.Load()
}
