package telemetry

import (
	"sync"
	"testing"
)

// TestConcurrentWritersAndSnapshots hammers one registry from many
// goroutines — counter/gauge/histogram writers, handle lookups, and
// snapshotters — and checks the totals. Run under -race this is the
// package's data-race proof; the CI -race leg exists for this test.
func TestConcurrentWritersAndSnapshots(t *testing.T) {
	const (
		writers = 8
		perG    = 10_000
	)
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Handles looked up concurrently must converge on one metric.
			c := r.Counter("race.count")
			h := r.Histogram("race.hist")
			g := r.Gauge("race.gauge")
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(int64(i))
				g.Set(int64(w))
			}
		}(w)
	}
	// Concurrent snapshotters (the HTTP handler path).
	done := make(chan struct{})
	var snaps sync.WaitGroup
	for s := 0; s < 2; s++ {
		snaps.Add(1)
		go func() {
			defer snaps.Done()
			for {
				select {
				case <-done:
					return
				default:
					_ = r.Snapshot()
					_ = r.Names()
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	snaps.Wait()

	s := r.Snapshot()
	if got := s.Counters["race.count"]; got != writers*perG {
		t.Errorf("counter = %d, want %d", got, writers*perG)
	}
	h := s.Histograms["race.hist"]
	if h.Count != writers*perG {
		t.Errorf("histogram count = %d, want %d", h.Count, writers*perG)
	}
	if h.Min != 0 || h.Max != perG-1 {
		t.Errorf("histogram min/max = %d/%d, want 0/%d", h.Min, h.Max, perG-1)
	}
	wantSum := int64(writers) * int64(perG) * int64(perG-1) / 2
	if h.Sum != wantSum {
		t.Errorf("histogram sum = %d, want %d", h.Sum, wantSum)
	}
	if g := s.Gauges["race.gauge"]; g < 0 || g >= writers {
		t.Errorf("gauge = %d, want one of the writer ids [0,%d)", g, writers)
	}
}
