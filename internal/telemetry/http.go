package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
)

// Handler returns an http.Handler serving the registry as JSON.
//
// The default view is the structured Snapshot (counters / gauges /
// histograms, names sorted). With ?format=expvar the response is the flat
// one-level object expvar's /debug/vars emits — "name": value — with
// histograms inlined as objects, so existing expvar scrapers ingest it
// unchanged. A nil registry serves empty snapshots, never an error:
// metrics being disabled is an observation, not a failure.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if req.URL.Query().Get("format") == "expvar" {
			_ = r.writeExpvar(w)
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}

// WriteJSON writes the snapshot as one compact JSON line — the periodic-
// dump format of the command-line tools.
func (r *Registry) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(r.Snapshot())
}

// writeExpvar writes the flat expvar-style view: every metric a top-level
// key. encoding/json sorts map keys, so the view is deterministic.
func (r *Registry) writeExpvar(w io.Writer) error {
	s := r.Snapshot()
	flat := make(map[string]any, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n, v := range s.Counters {
		flat[n] = v
	}
	for n, v := range s.Gauges {
		flat[n] = v
	}
	for n, v := range s.Histograms {
		flat[n] = v
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(flat)
}
