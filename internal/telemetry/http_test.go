package telemetry

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"testing"
)

func TestHandlerStructuredView(t *testing.T) {
	r := New()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(-2)
	r.Histogram("h").Observe(100)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var s Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if s.Counters["c"] != 3 || s.Gauges["g"] != -2 || s.Histograms["h"].Count != 1 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestHandlerExpvarView(t *testing.T) {
	r := New()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(-2)
	r.Histogram("h").Observe(100)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "?format=expvar")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var flat map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&flat); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(flat) != 3 {
		t.Fatalf("flat view has %d keys, want 3: %v", len(flat), flat)
	}
	if string(flat["c"]) != "3" || string(flat["g"]) != "-2" {
		t.Errorf("flat scalars = %s / %s", flat["c"], flat["g"])
	}
	var h HistogramSnapshot
	if err := json.Unmarshal(flat["h"], &h); err != nil || h.Count != 1 {
		t.Errorf("flat histogram = %s (err %v)", flat["h"], err)
	}
}

func TestHandlerNilRegistry(t *testing.T) {
	var r *Registry
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	for _, q := range []string{"", "?format=expvar"} {
		resp, err := srv.Client().Get(srv.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %q status = %d, want 200", q, resp.StatusCode)
		}
		var v map[string]any
		if err := json.Unmarshal(body, &v); err != nil {
			t.Errorf("GET %q body %q is not JSON: %v", q, body, err)
		}
		if len(v) != 0 {
			t.Errorf("GET %q = %v, want empty object", q, v)
		}
	}
}
