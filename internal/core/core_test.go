package core

import (
	"testing"
	"testing/quick"
)

func TestClassStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range append(Classes(), ClassUnknown, JobInherent) {
		s := c.String()
		if s == "" || seen[s] {
			t.Errorf("class %d has empty/duplicate string %q", int(c), s)
		}
		seen[s] = true
	}
	if FaultClass(99).String() == "" {
		t.Error("out-of-range class has empty string")
	}
}

func TestClassesComplete(t *testing.T) {
	if len(Classes()) != 7 {
		t.Errorf("Classes() = %d entries, want 7", len(Classes()))
	}
}

func TestIsHardware(t *testing.T) {
	hw := map[FaultClass]bool{
		ComponentExternal:   true,
		ComponentBorderline: true,
		ComponentInternal:   true,
		JobExternal:         true,
		JobBorderline:       false,
		JobInherentSoftware: false,
		JobInherentSensor:   false,
	}
	for c, want := range hw {
		if c.IsHardware() != want {
			t.Errorf("%v.IsHardware() = %v", c, !want)
		}
	}
}

func TestMatchesEquivalences(t *testing.T) {
	cases := []struct {
		truth, diag FaultClass
		want        bool
	}{
		{ComponentInternal, ComponentInternal, true},
		{ComponentInternal, JobExternal, true},
		{JobExternal, ComponentInternal, true},
		{JobInherentSoftware, JobInherent, true},
		{JobInherentSensor, JobInherent, true},
		{JobInherentSoftware, JobInherentSensor, false},
		{ComponentExternal, ComponentInternal, false},
		{ComponentBorderline, ComponentExternal, false},
		{JobBorderline, JobInherent, false},
	}
	for _, c := range cases {
		if got := c.truth.Matches(c.diag); got != c.want {
			t.Errorf("%v.Matches(%v) = %v, want %v", c.truth, c.diag, got, c.want)
		}
	}
}

func TestMatchesReflexive(t *testing.T) {
	f := func(n uint8) bool {
		c := FaultClass(int(n) % int(numClasses))
		return c.Matches(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFRU(t *testing.T) {
	hw := HardwareFRU(3)
	if !hw.IsHardware() || hw.String() != "component[3]" {
		t.Errorf("hardware FRU wrong: %v", hw)
	}
	sw := SoftwareFRU(2, "A/control")
	if sw.IsHardware() {
		t.Error("software FRU claims hardware")
	}
	if sw.String() != "job[A/control@2]" {
		t.Errorf("String() = %q", sw.String())
	}
	// FRUs are comparable map keys.
	m := map[FRU]int{hw: 1, sw: 2}
	if m[HardwareFRU(3)] != 1 || m[SoftwareFRU(2, "A/control")] != 2 {
		t.Error("FRU equality broken")
	}
}

func TestChainOrderingEnforced(t *testing.T) {
	var c Chain
	c.Append(Stage{Kind: StageFault, FRU: HardwareFRU(1), Detail: "PCB crack"})
	c.Append(Stage{Kind: StageError, FRU: HardwareFRU(1), Detail: "bit flip"})
	c.Append(Stage{Kind: StageFailure, FRU: HardwareFRU(1), Detail: "omission"})
	c.Append(Stage{Kind: StageFailure, FRU: HardwareFRU(1), Detail: "omission"})
	if !c.Complete() {
		t.Error("complete chain not recognized")
	}
	root, ok := c.Root()
	if !ok || root.Detail != "PCB crack" {
		t.Errorf("Root() = %+v, %v", root, ok)
	}
	if len(c.Failures()) != 2 {
		t.Errorf("Failures() = %d, want 2", len(c.Failures()))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("regressing stage kind accepted")
		}
	}()
	c.Append(Stage{Kind: StageFault})
}

func TestChainIncomplete(t *testing.T) {
	var c Chain
	if c.Complete() {
		t.Error("empty chain complete")
	}
	c.Append(Stage{Kind: StageFault, FRU: HardwareFRU(0), Detail: "latent"})
	if c.Complete() {
		t.Error("fault-only chain complete (latent fault never failed)")
	}
	if c.String() == "" {
		t.Error("empty String()")
	}
}

func TestFig8Patterns(t *testing.T) {
	ps := Fig8Patterns()
	if len(ps) != 3 {
		t.Fatalf("Fig8Patterns() = %d", len(ps))
	}
	// The table of Fig. 8, row by row.
	w := ps[0]
	if w.Time != TimeIncreasingFrequency || w.Space != SpaceOneComponent ||
		w.Value != ValueIncreasingDeviation || w.Implies != ComponentInternal {
		t.Errorf("wearout pattern wrong: %v", w)
	}
	m := ps[1]
	if m.Time != TimeSimultaneous || m.Space != SpaceMultipleProximate ||
		m.Value != ValueMultiBitFlips || m.Implies != ComponentExternal {
		t.Errorf("massive-transient pattern wrong: %v", m)
	}
	c := ps[2]
	if c.Time != TimeArbitrary || c.Space != SpaceOneComponent ||
		c.Value != ValueOmissions || c.Implies != ComponentBorderline {
		t.Errorf("connector pattern wrong: %v", c)
	}
}

func TestActionForCoversFig11(t *testing.T) {
	cases := []struct {
		class  FaultClass
		update bool
		want   MaintenanceAction
	}{
		{ComponentExternal, false, ActionNone},
		{ComponentBorderline, false, ActionInspectConnector},
		{ComponentInternal, false, ActionReplaceComponent},
		{JobExternal, false, ActionReplaceComponent},
		{JobBorderline, false, ActionUpdateConfiguration},
		{JobInherentSensor, false, ActionInspectTransducer},
		{JobInherentSoftware, true, ActionUpdateSoftware},
		{JobInherentSoftware, false, ActionForwardToOEM},
		{JobInherent, false, ActionInspectTransducer},
		{ClassUnknown, false, ActionInvestigate},
	}
	for _, c := range cases {
		if got := ActionFor(c.class, c.update); got != c.want {
			t.Errorf("ActionFor(%v, %v) = %v, want %v", c.class, c.update, got, c.want)
		}
	}
}

func TestActionRemoval(t *testing.T) {
	if !ActionReplaceComponent.Removal() {
		t.Error("component replacement not flagged as removal")
	}
	for _, a := range []MaintenanceAction{ActionNone, ActionInspectConnector,
		ActionInspectTransducer, ActionUpdateConfiguration, ActionUpdateSoftware,
		ActionForwardToOEM, ActionInvestigate} {
		if a.Removal() {
			t.Errorf("%v flagged as removal", a)
		}
	}
}

func TestTrustLevel(t *testing.T) {
	if TrustLevel(1.5).Clamp() != 1 || TrustLevel(-0.1).Clamp() != 0 || TrustLevel(0.4).Clamp() != 0.4 {
		t.Error("Clamp wrong")
	}
	if !TrustLevel(0.2).Suspect(0.5) || TrustLevel(0.8).Suspect(0.5) {
		t.Error("Suspect wrong")
	}
}

func TestEnumStringsTotal(t *testing.T) {
	for i := 0; i <= 3; i++ {
		if TimeSignature(i).String() == "" {
			t.Errorf("TimeSignature(%d) empty", i)
		}
		if i <= 3 && SpaceSignature(i).String() == "" {
			t.Errorf("SpaceSignature(%d) empty", i)
		}
	}
	for i := 0; i <= 4; i++ {
		if ValueSignature(i).String() == "" {
			t.Errorf("ValueSignature(%d) empty", i)
		}
	}
	for i := 0; i <= 2; i++ {
		if Persistence(i).String() == "" {
			t.Errorf("Persistence(%d) empty", i)
		}
	}
	for i := 0; i <= 7; i++ {
		if MaintenanceAction(i).String() == "" {
			t.Errorf("MaintenanceAction(%d) empty", i)
		}
	}
	if StageFault.String() != "fault" || StageError.String() != "error" || StageFailure.String() != "failure" {
		t.Error("stage strings wrong")
	}
}
