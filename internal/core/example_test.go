package core_test

import (
	"fmt"

	"decos/internal/core"
)

// The Fig. 11 mapping: every fault class resolves to exactly one
// maintenance action.
func ExampleActionFor() {
	for _, class := range core.Classes() {
		fmt.Printf("%-24s → %s\n", class, core.ActionFor(class, false))
	}
	// Output:
	// component-external       → no-action
	// component-borderline     → inspect-connector
	// component-internal       → replace-component
	// job-external             → replace-component
	// job-borderline           → update-configuration
	// job-inherent-software    → forward-to-oem
	// job-inherent-sensor      → inspect-transducer
}

// Building and reversing a fault-error-failure chain (Fig. 3).
func ExampleChain() {
	var c core.Chain
	fru := core.HardwareFRU(2)
	c.Append(core.Stage{Kind: core.StageFault, FRU: fru, Detail: "crack in PCB"})
	c.Append(core.Stage{Kind: core.StageError, FRU: fru, Detail: "bit flip in frame buffer"})
	c.Append(core.Stage{Kind: core.StageFailure, FRU: fru, Detail: "corrupted frame on the bus"})
	root, _ := c.Root()
	fmt.Println("complete:", c.Complete())
	fmt.Println("root cause:", root.Detail)
	// Output:
	// complete: true
	// root cause: crack in PCB
}

// The model's audit equivalences: a job-external fault IS a
// component-internal fault, and the merged inherent verdict covers both
// subclasses.
func ExampleFaultClass_Matches() {
	fmt.Println(core.ComponentInternal.Matches(core.JobExternal))
	fmt.Println(core.JobInherentSensor.Matches(core.JobInherent))
	fmt.Println(core.ComponentExternal.Matches(core.ComponentInternal))
	// Output:
	// true
	// true
	// false
}
