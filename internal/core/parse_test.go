package core

import "testing"

func TestParseFaultClassRoundTrip(t *testing.T) {
	for c := ClassUnknown; c < numClasses; c++ {
		got, err := ParseFaultClass(c.String())
		if err != nil || got != c {
			t.Errorf("ParseFaultClass(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseFaultClass("nonsense"); err == nil {
		t.Error("ParseFaultClass accepted nonsense")
	}
}

func TestParseMaintenanceActionRoundTrip(t *testing.T) {
	for a := ActionNone; a <= ActionInvestigate; a++ {
		got, err := ParseMaintenanceAction(a.String())
		if err != nil || got != a {
			t.Errorf("ParseMaintenanceAction(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseMaintenanceAction(""); err == nil {
		t.Error("ParseMaintenanceAction accepted empty string")
	}
}

func TestParseFRURoundTrip(t *testing.T) {
	frus := []FRU{
		HardwareFRU(0),
		HardwareFRU(17),
		SoftwareFRU(3, "A/A1"),
		SoftwareFRU(0, "diag/assessor"),
	}
	for _, f := range frus {
		got, err := ParseFRU(f.String())
		if err != nil || got != f {
			t.Errorf("ParseFRU(%q) = %v, %v", f.String(), got, err)
		}
	}
	for _, bad := range []string{"", "component[x]", "job[noat]", "widget[1]"} {
		if _, err := ParseFRU(bad); err == nil {
			t.Errorf("ParseFRU(%q) accepted", bad)
		}
	}
}
