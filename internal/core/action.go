package core

import "fmt"

// MaintenanceAction is the service-station consequence of a classified
// fault (paper Fig. 11 and Section V-C).
type MaintenanceAction int

const (
	// ActionNone: component-external faults are transient; no maintenance
	// action is taken (replacing the FRU would only raise the NFF ratio).
	ActionNone MaintenanceAction = iota
	// ActionInspectConnector: borderline faults require closer inspection
	// of connectors/wiring; replacement only on wearout phenomena
	// (fretting, corrosion).
	ActionInspectConnector
	// ActionReplaceComponent: component-internal (= job-external) faults
	// are eliminated only by replacing the component (ECU / LRM).
	ActionReplaceComponent
	// ActionUpdateConfiguration: job-borderline faults require an update
	// of the virtual-network configuration data of the DAS.
	ActionUpdateConfiguration
	// ActionInspectTransducer: sensor/actuator faults require inspection
	// and possibly transducer replacement.
	ActionInspectTransducer
	// ActionUpdateSoftware: software design faults require a job software
	// update, if the OEM has acknowledged the fault and distributed a
	// corrected version.
	ActionUpdateSoftware
	// ActionForwardToOEM: software fault without an available update —
	// field data is forwarded for fleet analysis (engineering feedback).
	ActionForwardToOEM
	// ActionInvestigate: the evidence supports no classification; manual
	// troubleshooting is required (the costly path the model minimizes).
	ActionInvestigate
)

func (a MaintenanceAction) String() string {
	switch a {
	case ActionNone:
		return "no-action"
	case ActionInspectConnector:
		return "inspect-connector"
	case ActionReplaceComponent:
		return "replace-component"
	case ActionUpdateConfiguration:
		return "update-configuration"
	case ActionInspectTransducer:
		return "inspect-transducer"
	case ActionUpdateSoftware:
		return "update-software"
	case ActionForwardToOEM:
		return "forward-to-oem"
	case ActionInvestigate:
		return "investigate"
	default:
		return fmt.Sprintf("MaintenanceAction(%d)", int(a))
	}
}

// Removal reports whether the action removes a line-replaceable unit — the
// events whose cost the paper quantifies ($800 per LRU removal) and whose
// unnecessary instances constitute the no-fault-found problem. Transducer
// or connector inspections are workshop labour, not LRU removals.
func (a MaintenanceAction) Removal() bool {
	return a == ActionReplaceComponent
}

// ActionFor maps a diagnosed fault class to the maintenance action of the
// paper's Fig. 11. updateAvailable states whether the OEM has released a
// corrected job version (relevant for software faults only).
func ActionFor(c FaultClass, updateAvailable bool) MaintenanceAction {
	switch c {
	case ComponentExternal:
		return ActionNone
	case ComponentBorderline:
		return ActionInspectConnector
	case ComponentInternal, JobExternal:
		return ActionReplaceComponent
	case JobBorderline:
		return ActionUpdateConfiguration
	case JobInherentSensor:
		return ActionInspectTransducer
	case JobInherentSoftware:
		if updateAvailable {
			return ActionUpdateSoftware
		}
		return ActionForwardToOEM
	case JobInherent:
		// Without job-internal information the inherent verdict cannot
		// separate transducer from software; the technician inspects the
		// transducer first (Fig. 11's "further inspection").
		return ActionInspectTransducer
	default:
		return ActionInvestigate
	}
}

// TrustLevel is the per-FRU health score the diagnostic DAS outputs
// (Section II-D): 1 = full conformance with the specification, 0 = certain
// violation. It is the basis for the maintenance engineer's replace/keep
// decision (Fig. 9).
type TrustLevel float64

// Clamp bounds the trust level to [0, 1].
func (t TrustLevel) Clamp() TrustLevel {
	if t < 0 {
		return 0
	}
	if t > 1 {
		return 1
	}
	return t
}

// Suspect reports whether the trust level indicates a likely specification
// violation (below the given threshold).
func (t TrustLevel) Suspect(threshold float64) bool { return float64(t) < threshold }
