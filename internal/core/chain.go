package core

import (
	"fmt"

	"decos/internal/sim"
)

// The fault-error-failure chain (paper Fig. 3, after Laprie): a fault is the
// adjudged cause of an error; an error is the unintended state; a failure is
// the deviation of the delivered service from the specification at the LIF.
// The diagnostic subsystem reverses this chain: from observed failures back
// to a fault classified at FRU level.

// StageKind labels one link of the chain.
type StageKind int

const (
	// StageFault is the root cause, stated at FRU level.
	StageFault StageKind = iota
	// StageError is an unintended internal state.
	StageError
	// StageFailure is a LIF-visible service deviation.
	StageFailure
)

func (k StageKind) String() string {
	switch k {
	case StageFault:
		return "fault"
	case StageError:
		return "error"
	case StageFailure:
		return "failure"
	default:
		return fmt.Sprintf("StageKind(%d)", int(k))
	}
}

// Stage is one link in a recorded fault-error-failure chain.
type Stage struct {
	Kind StageKind
	At   sim.Time
	// FRU locates the stage.
	FRU FRU
	// Detail is a human-readable description ("crack in PCB", "state
	// variable speed out of range", "omission in slot 3").
	Detail string
}

// Chain is a recorded fault-error-failure trace for one incident: the
// ground-truth ledger of the fault injector and the explanation artifact of
// the diagnostic assessment (experiment E2).
type Chain struct {
	Stages []Stage
}

// Append adds a stage. Stages must be appended in causal order
// (fault → error* → failure*); Append panics when the kind regresses, which
// would indicate a bookkeeping bug in the simulator.
func (c *Chain) Append(s Stage) {
	if n := len(c.Stages); n > 0 && s.Kind < c.Stages[n-1].Kind {
		panic(fmt.Sprintf("core: chain stage %v after %v", s.Kind, c.Stages[n-1].Kind))
	}
	c.Stages = append(c.Stages, s)
}

// Root returns the fault stage, ok=false for an empty chain.
func (c *Chain) Root() (Stage, bool) {
	if len(c.Stages) == 0 || c.Stages[0].Kind != StageFault {
		return Stage{}, false
	}
	return c.Stages[0], true
}

// Failures returns the failure stages of the chain.
func (c *Chain) Failures() []Stage {
	var out []Stage
	for _, s := range c.Stages {
		if s.Kind == StageFailure {
			out = append(out, s)
		}
	}
	return out
}

// Complete reports whether the chain runs from a fault to at least one
// failure — i.e. the incident became observable at a LIF.
func (c *Chain) Complete() bool {
	_, hasRoot := c.Root()
	return hasRoot && len(c.Failures()) > 0
}

func (c *Chain) String() string {
	s := ""
	for i, st := range c.Stages {
		if i > 0 {
			s += " -> "
		}
		s += fmt.Sprintf("%s(%s: %s)", st.Kind, st.FRU, st.Detail)
	}
	return s
}
