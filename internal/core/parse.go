package core

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseFaultClass is the inverse of FaultClass.String. It accepts every
// name the model emits (including "unknown") so trace streams round-trip.
func ParseFaultClass(s string) (FaultClass, error) {
	for c := ClassUnknown; c < numClasses; c++ {
		if c.String() == s {
			return c, nil
		}
	}
	return ClassUnknown, fmt.Errorf("core: unknown fault class %q", s)
}

// ParseMaintenanceAction is the inverse of MaintenanceAction.String.
func ParseMaintenanceAction(s string) (MaintenanceAction, error) {
	for a := ActionNone; a <= ActionInvestigate; a++ {
		if a.String() == s {
			return a, nil
		}
	}
	return ActionNone, fmt.Errorf("core: unknown maintenance action %q", s)
}

// ParseFRU is the inverse of FRU.String: "component[3]" for hardware FRUs,
// "job[das/job@3]" for software FRUs.
func ParseFRU(s string) (FRU, error) {
	switch {
	case strings.HasPrefix(s, "component[") && strings.HasSuffix(s, "]"):
		n, err := strconv.Atoi(s[len("component[") : len(s)-1])
		if err != nil {
			return FRU{}, fmt.Errorf("core: bad FRU %q: %v", s, err)
		}
		return HardwareFRU(n), nil
	case strings.HasPrefix(s, "job[") && strings.HasSuffix(s, "]"):
		body := s[len("job[") : len(s)-1]
		at := strings.LastIndex(body, "@")
		if at < 0 {
			return FRU{}, fmt.Errorf("core: bad FRU %q: missing @component", s)
		}
		n, err := strconv.Atoi(body[at+1:])
		if err != nil {
			return FRU{}, fmt.Errorf("core: bad FRU %q: %v", s, err)
		}
		return SoftwareFRU(n, body[:at]), nil
	}
	return FRU{}, fmt.Errorf("core: bad FRU %q", s)
}
