package core

import "fmt"

// The fault-pattern vocabulary of the paper's Fig. 8: a fault pattern is
// the characteristic manifestation of a fault type on the distributed state
// in the three judgment dimensions time, space and value. The diagnostic
// subsystem encodes patterns as Out-of-Norm Assertions; this package defines
// the dimension signatures and the canonical patterns of Fig. 8.

// TimeSignature characterizes the temporal shape of a symptom cluster.
type TimeSignature int

const (
	// TimeArbitrary: occurrences at arbitrary instants (connector fault).
	TimeArbitrary TimeSignature = iota
	// TimeIncreasingFrequency: rate grows as time progresses (wearout).
	TimeIncreasingFrequency
	// TimeSimultaneous: occurrences within a small delta on the sparse
	// time base (massive transient disturbance).
	TimeSimultaneous
	// TimePersistent: continuously present from onset (permanent fault).
	TimePersistent
)

func (s TimeSignature) String() string {
	return [...]string{"arbitrary", "increasing-frequency", "simultaneous", "persistent"}[s]
}

// SpaceSignature characterizes the spatial footprint of a symptom cluster.
type SpaceSignature int

const (
	// SpaceOneComponent: all symptoms trace to one component.
	SpaceOneComponent SpaceSignature = iota
	// SpaceMultipleProximate: multiple components with spatial proximity.
	SpaceMultipleProximate
	// SpaceOneJob: all symptoms trace to one job (software FRU).
	SpaceOneJob
	// SpaceMultipleJobsOneComponent: several jobs of different DASs on the
	// same component (the correlated-failure footprint of an internal
	// hardware fault, Fig. 10).
	SpaceMultipleJobsOneComponent
)

func (s SpaceSignature) String() string {
	return [...]string{"one-component", "multiple-proximate", "one-job", "multiple-jobs-one-component"}[s]
}

// ValueSignature characterizes the value-domain manifestation.
type ValueSignature int

const (
	// ValueOmissions: message omissions on a channel.
	ValueOmissions ValueSignature = iota
	// ValueMultiBitFlips: multiple bit flips (EMI burst corruption).
	ValueMultiBitFlips
	// ValueIncreasingDeviation: increasing deviation from the correct
	// value, at the verge of becoming incorrect (wearout).
	ValueIncreasingDeviation
	// ValueOutOfSpec: content violates the LIF value specification.
	ValueOutOfSpec
	// ValueTimingViolation: send instants violate the LIF time spec.
	ValueTimingViolation
)

func (s ValueSignature) String() string {
	return [...]string{"omissions", "multi-bit-flips", "increasing-deviation", "out-of-spec", "timing-violation"}[s]
}

// Pattern is one fault pattern: a named signature triple plus the fault
// class it evidences.
type Pattern struct {
	Name    string
	Time    TimeSignature
	Space   SpaceSignature
	Value   ValueSignature
	Implies FaultClass
}

func (p Pattern) String() string {
	return fmt.Sprintf("%s{time=%s, space=%s, value=%s => %s}",
		p.Name, p.Time, p.Space, p.Value, p.Implies)
}

// The three example patterns of Fig. 8, plus the correlated-job pattern of
// Fig. 10 that identifies component-internal faults in an integrated
// architecture.
var (
	// PatternWearout: increasing frequency over time, one component only,
	// increasing value deviation.
	PatternWearout = Pattern{
		Name:    "wearout",
		Time:    TimeIncreasingFrequency,
		Space:   SpaceOneComponent,
		Value:   ValueIncreasingDeviation,
		Implies: ComponentInternal,
	}
	// PatternMassiveTransient: approximately simultaneous, multiple
	// components with spatial proximity, multiple bit flips.
	PatternMassiveTransient = Pattern{
		Name:    "massive-transient",
		Time:    TimeSimultaneous,
		Space:   SpaceMultipleProximate,
		Value:   ValueMultiBitFlips,
		Implies: ComponentExternal,
	}
	// PatternConnector: arbitrary times, one component only, omissions on
	// a channel.
	PatternConnector = Pattern{
		Name:    "connector",
		Time:    TimeArbitrary,
		Space:   SpaceOneComponent,
		Value:   ValueOmissions,
		Implies: ComponentBorderline,
	}
	// PatternCorrelatedJobs: persistent correlated failures of multiple
	// jobs of different DASs on one component.
	PatternCorrelatedJobs = Pattern{
		Name:    "correlated-jobs",
		Time:    TimePersistent,
		Space:   SpaceMultipleJobsOneComponent,
		Value:   ValueOutOfSpec,
		Implies: ComponentInternal,
	}
)

// Fig8Patterns returns the three fault patterns of the paper's Fig. 8.
func Fig8Patterns() []Pattern {
	return []Pattern{PatternWearout, PatternMassiveTransient, PatternConnector}
}
