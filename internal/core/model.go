// Package core defines the maintenance-oriented fault model of the DECOS
// integrated diagnostic architecture — the primary contribution of the
// reproduced paper.
//
// The model stops the fault-error-failure recursion at the level of the
// field-replaceable unit (FRU): a complete component for hardware faults and
// a job for software faults (paper Section III-A/B). Experienced failures
// are classified into the fault classes of the paper's Fig. 6; each class
// maps to exactly one maintenance action (Fig. 11). Characteristic
// manifestations of fault types on the distributed state are described by
// fault patterns over the time, space and value dimensions (Fig. 8), which
// the diagnostic subsystem encodes as Out-of-Norm Assertions.
package core

import "fmt"

// FaultClass is the maintenance-oriented fault classification of Fig. 6.
// The boundary classification (external / borderline / internal) is applied
// at the component FRU for hardware faults and refined inside the component
// at the job FRU for software faults.
type FaultClass int

const (
	// ClassUnknown is the verdict when the diagnostic evidence does not
	// support any classification.
	ClassUnknown FaultClass = iota

	// ComponentExternal faults originate outside the component boundary
	// and have no permanent effect on the component (EMI bursts, single
	// event upsets, environmental stress transients).
	ComponentExternal
	// ComponentBorderline faults cannot be attributed to either side of
	// the component boundary: connector and wiring faults.
	ComponentBorderline
	// ComponentInternal faults originate inside the component FRU (PCB
	// crack, defective quartz, IC wearout, permanent silicon defects) and
	// can only be eliminated by replacing the component.
	ComponentInternal

	// JobExternal faults affect a job from inside its component but
	// outside the job boundary; observing correlated job-external faults
	// of several jobs on one component implies a component-internal
	// hardware fault.
	JobExternal
	// JobBorderline faults are configuration faults of the architectural
	// services at the job's ports (mis-dimensioned queues, wrong virtual
	// network parameters).
	JobBorderline
	// JobInherentSoftware faults are software design faults (Bohrbugs and
	// Heisenbugs) inside the job.
	JobInherentSoftware
	// JobInherentSensor faults are transducer (sensor/actuator) faults of
	// the job's exclusive I/O hardware. Without job-internal information
	// they are indistinguishable from software faults (paper Section
	// III-D); the merged verdict is JobInherent.
	JobInherentSensor
	// JobInherent is the merged inherent verdict available from interface
	// state alone.
	JobInherent

	numClasses
)

// String returns the paper's name for the class.
func (c FaultClass) String() string {
	switch c {
	case ClassUnknown:
		return "unknown"
	case ComponentExternal:
		return "component-external"
	case ComponentBorderline:
		return "component-borderline"
	case ComponentInternal:
		return "component-internal"
	case JobExternal:
		return "job-external"
	case JobBorderline:
		return "job-borderline"
	case JobInherentSoftware:
		return "job-inherent-software"
	case JobInherentSensor:
		return "job-inherent-sensor"
	case JobInherent:
		return "job-inherent"
	default:
		return fmt.Sprintf("FaultClass(%d)", int(c))
	}
}

// Classes lists all concrete fault classes of the model (excluding
// ClassUnknown and the merged JobInherent verdict).
func Classes() []FaultClass {
	return []FaultClass{
		ComponentExternal, ComponentBorderline, ComponentInternal,
		JobExternal, JobBorderline, JobInherentSoftware, JobInherentSensor,
	}
}

// IsHardware reports whether the class concerns the hardware FRU (the
// component).
func (c FaultClass) IsHardware() bool {
	switch c {
	case ComponentExternal, ComponentBorderline, ComponentInternal, JobExternal:
		return true
	}
	return false
}

// Matches reports whether a diagnosed class d is a correct verdict for
// ground truth c, honouring the model's equivalences: a job-external fault
// IS the manifestation of a component-internal fault (Section IV-B.3), and
// the merged JobInherent verdict is correct for both inherent subclasses.
func (c FaultClass) Matches(d FaultClass) bool {
	if c == d {
		return true
	}
	switch c {
	case ComponentInternal:
		return d == JobExternal
	case JobExternal:
		return d == ComponentInternal
	case JobInherentSoftware, JobInherentSensor:
		return d == JobInherent
	}
	return false
}

// Persistence classifies how a fault manifests over time — the property the
// α-count mechanism discriminates.
type Persistence int

const (
	// Transient faults manifest once or briefly and disappear.
	Transient Persistence = iota
	// Intermittent faults recur at the same location (connector fretting,
	// solder cracks, wearout).
	Intermittent
	// Permanent faults persist until repair.
	Permanent
)

func (p Persistence) String() string {
	switch p {
	case Transient:
		return "transient"
	case Intermittent:
		return "intermittent"
	case Permanent:
		return "permanent"
	default:
		return fmt.Sprintf("Persistence(%d)", int(p))
	}
}

// FRU identifies one field-replaceable unit: the component for hardware
// faults (Job == "") or a job for software faults.
type FRU struct {
	// Component is the node id of the component, as a stable integer.
	Component int
	// Job is the job's qualified name ("das/job"), empty for the hardware
	// FRU.
	Job string
}

// HardwareFRU returns the hardware FRU of a component.
func HardwareFRU(component int) FRU { return FRU{Component: component} }

// SoftwareFRU returns the software FRU of a job hosted on a component.
func SoftwareFRU(component int, job string) FRU {
	return FRU{Component: component, Job: job}
}

// IsHardware reports whether the FRU is a component (hardware).
func (f FRU) IsHardware() bool { return f.Job == "" }

func (f FRU) String() string {
	if f.IsHardware() {
		return fmt.Sprintf("component[%d]", f.Component)
	}
	return fmt.Sprintf("job[%s@%d]", f.Job, f.Component)
}
