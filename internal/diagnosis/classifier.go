package diagnosis

// A Classifier is the second stage of the staged assessment pipeline —
// the paper's fault-classification phase (Fig. 10): handed the epoch's
// evaluation context (distributed-state history, FRU registry,
// recurrence counters) it concludes per-FRU findings. Two first-class
// implementations exist: the DECOS fault-model classifier below and the
// OBD baseline (internal/baseline), which plugs its DTC rule into the
// same pipeline so collector and adviser stages are shared.
type Classifier interface {
	Name() string
	// Classify evaluates one assessment epoch. The returned slice is
	// owned by the classifier and valid only until the next call;
	// findings are in ascending Subject order. Implementations record
	// every concluded class in ctx.Decided — the adviser's trust update
	// reads it.
	Classify(ctx *EvalContext) []Finding
}

// FaultModelClassifier classifies against the maintenance-oriented fault
// model: the ONA suite in priority order, with the α-count recurrence
// step between the gating and residual assertions (Section V-A).
type FaultModelClassifier struct {
	onas []ONA

	// Per-epoch scratch, reused across epochs: the finding map, the
	// subject sort buffer and the output slice.
	decided     map[FRUIndex]Finding
	subjectsBuf []FRUIndex
	findings    []Finding
}

// NewFaultModelClassifier builds the classifier over the default ONA
// suite.
func NewFaultModelClassifier() *FaultModelClassifier {
	return &FaultModelClassifier{
		onas:    DefaultONAs(),
		decided: make(map[FRUIndex]Finding),
	}
}

// Name implements Classifier.
func (c *FaultModelClassifier) Name() string { return "decos" }

// Classify implements Classifier: gating assertions, the α-count step
// over this epoch's evidence, the residual assertions, then the findings
// in deterministic subject order.
func (c *FaultModelClassifier) Classify(ctx *EvalContext) []Finding {
	decided := c.decided
	clear(decided)
	// Gating assertions first: spatial correlation (massive transient)
	// and receiver-side connector attribution. Both also gate the α-count
	// update, so symptoms they explain do not accumulate as recurrence
	// evidence against the FRUs they name.
	for _, ona := range c.onas[:GatingONAs] {
		for _, f := range ona.Evaluate(ctx) {
			if _, dup := decided[f.Subject]; dup {
				continue
			}
			decided[f.Subject] = f
			ctx.Explained[f.Subject] = true
			ctx.Decided[f.Subject] = f.Class
			for _, e := range f.Explains {
				if _, dup := decided[e]; !dup {
					ctx.Explained[e] = true
				}
			}
		}
	}

	// α-count step over this epoch's evidence.
	epochFrom := ctx.Granule - ctx.Opts.EpochRounds + 1
	if epochFrom < 0 {
		epochFrom = 0
	}
	for _, hw := range ctx.Reg.HardwareFRUs() {
		erroneous := !ctx.Explained[hw] && ctx.Hist.Count(hw, epochFrom, ctx.Granule, frameLevel) > 0
		ctx.Alpha.Step(hw, erroneous, 1)
	}
	for _, sw := range ctx.Reg.SoftwareFRUs() {
		erroneous := ctx.Hist.Count(sw, epochFrom, ctx.Granule, valueViolation) > 0
		ctx.SW.Step(sw, erroneous, 1)
	}

	// Remaining assertions in priority order.
	for _, ona := range c.onas[GatingONAs:] {
		for _, f := range ona.Evaluate(ctx) {
			if _, dup := decided[f.Subject]; dup || ctx.Explained[f.Subject] {
				continue
			}
			decided[f.Subject] = f
			ctx.Decided[f.Subject] = f.Class
			for _, e := range f.Explains {
				if _, dup := decided[e]; !dup {
					ctx.Explained[e] = true
				}
			}
		}
	}

	// Findings in deterministic subject order.
	subjects := c.subjectsBuf[:0]
	for s := range decided {
		subjects = append(subjects, s)
	}
	for i := 1; i < len(subjects); i++ {
		for j := i; j > 0 && subjects[j] < subjects[j-1]; j-- {
			subjects[j], subjects[j-1] = subjects[j-1], subjects[j]
		}
	}
	c.subjectsBuf = subjects[:0]
	out := c.findings[:0]
	for _, s := range subjects {
		out = append(out, decided[s])
	}
	c.findings = out[:0]
	return out
}
