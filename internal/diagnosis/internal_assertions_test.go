package diagnosis

import (
	"testing"

	"decos/internal/component"
	"decos/internal/core"
	"decos/internal/sim"
)

// The Section III-D extension: with job-internal assertions enabled, the
// merged job-inherent verdict splits exactly into software and transducer
// subclasses. These tests reuse the standard rig but flip the option on.

func newAssertedRig(t *testing.T, seed uint64) *rig {
	t.Helper()
	r := newRigWithOptions(t, seed, Options{JobInternalAssertions: true})
	return r
}

func TestInternalAssertionsSplitSensorStuck(t *testing.T) {
	r := newAssertedRig(t, 21)
	sensor := r.cl.DAS("A").JobNamed("sensor")
	r.inj.SensorStuck(sensor, sim.Time(200*sim.Millisecond), 77)
	r.cl.RunRounds(2500)
	v := r.verdict(t, r.jobFRU("A", "sensor"))
	if v.Class != core.JobInherentSensor {
		t.Errorf("verdict = %v (%s), want exact sensor subclass", v.Class, v.Pattern)
	}
	if v.Pattern != "job-inherent-sensor/internal" {
		t.Errorf("pattern = %s", v.Pattern)
	}
}

func TestInternalAssertionsSplitSensorDrift(t *testing.T) {
	r := newAssertedRig(t, 22)
	sensor := r.cl.DAS("A").JobNamed("sensor")
	r.inj.SensorDrift(sensor, sim.Time(100*sim.Millisecond), 3600*60)
	r.cl.RunRounds(3000)
	v := r.verdict(t, r.jobFRU("A", "sensor"))
	if v.Class != core.JobInherentSensor {
		t.Errorf("verdict = %v (%s), want exact sensor subclass", v.Class, v.Pattern)
	}
}

func TestInternalAssertionsSplitBohrbug(t *testing.T) {
	r := newAssertedRig(t, 23)
	sensor := r.cl.DAS("A").JobNamed("sensor")
	// A Bohrbug emitting a constant value — at the interface this is
	// indistinguishable from a stuck sensor, but the job's internal
	// transducer checks pass, so the verdict must be software.
	r.inj.Bohrbug(sensor, chSpeed, func(v float64, now sim.Time) bool { return true }, 60)
	r.cl.RunRounds(2500)
	v := r.verdict(t, r.jobFRU("A", "sensor"))
	if v.Class != core.JobInherentSoftware {
		t.Errorf("verdict = %v (%s), want exact software subclass", v.Class, v.Pattern)
	}
	if v.Action != core.ActionForwardToOEM {
		t.Errorf("action = %v, want forward-to-oem", v.Action)
	}
}

func TestInternalAssertionsSplitHeisenbug(t *testing.T) {
	r := newAssertedRig(t, 24)
	sensor := r.cl.DAS("A").JobNamed("sensor")
	r.inj.Heisenbug(sensor, chSpeed, 0.05, 500, false)
	r.cl.RunRounds(3000)
	v := r.verdict(t, r.jobFRU("A", "sensor"))
	if v.Class != core.JobInherentSoftware {
		t.Errorf("verdict = %v (%s), want exact software subclass", v.Class, v.Pattern)
	}
}

func TestWithoutExtensionStaysMerged(t *testing.T) {
	// Baseline behaviour unchanged: the constant-value Bohrbug keeps the
	// merged verdict without job-internal information.
	r := newRig(t, 25)
	sensor := r.cl.DAS("A").JobNamed("sensor")
	r.inj.Bohrbug(sensor, chSpeed, func(v float64, now sim.Time) bool { return true }, 60)
	r.cl.RunRounds(2500)
	v := r.verdict(t, r.jobFRU("A", "sensor"))
	if v.Class == core.JobInherentSoftware {
		t.Errorf("exact software verdict without job-internal information: %s", v.Pattern)
	}
}

var _ component.SelfChecker = (*component.SensorJob)(nil)
