package diagnosis

import (
	"math"

	"decos/internal/sim"
)

// Condition-based maintenance (paper Section III-E): the increase of
// transient failures is the wearout indicator of electronics — the
// measurable analogue of a brake pad's remaining thickness. This file
// turns the indicator into schedulable numbers: the episode-rate trend of
// a hardware FRU and a remaining-useful-life estimate derived from the
// trust trajectory.

// WearoutTrend quantifies the transient-episode trend of a hardware FRU
// over the retained history: the symptomatic-granule rate in the older and
// newer half of the window and their ratio.
type WearoutTrend struct {
	EarlyRate float64 // symptomatic granules per granule, older half
	LateRate  float64 // newer half
	// Growth is LateRate/EarlyRate (1 = stable; math.Inf(1) when episodes
	// only just appeared).
	Growth float64
	// Deviation is the latest value-deviation magnitude of hosted jobs.
	Deviation float64
}

// Wearing reports whether the trend satisfies the wearout indicator: a
// rising episode rate with actual late-phase activity.
func (w WearoutTrend) Wearing(riseFactor float64) bool {
	return w.LateRate > 0 && w.Growth >= riseFactor
}

// Trend computes the wearout trend of a hardware FRU. Unlike the ONA
// predicates (which use the correlation window), the maintenance trend
// spans the full retained history — the longest view available — since its
// purpose is replacement scheduling, not fault classification.
func (a *Assessor) Trend(hw FRUIndex) WearoutTrend {
	g := a.Hist.Latest()
	from := g - a.opts.RetainGranules + 1
	if from < 0 {
		from = 0
	}
	mid := (from + g) / 2
	span1 := float64(mid - from + 1)
	span2 := float64(g - mid)
	if span1 <= 0 || span2 <= 0 {
		return WearoutTrend{Growth: 1}
	}
	early := float64(len(a.Hist.ActiveGranules(hw, from, mid, KindIn(SymCorruption))))
	late := float64(len(a.Hist.ActiveGranules(hw, mid+1, g, KindIn(SymCorruption))))
	t := WearoutTrend{
		EarlyRate: early / span1,
		LateRate:  late / span2,
	}
	switch {
	case early == 0 && late == 0:
		t.Growth = 1
	case early == 0:
		t.Growth = math.Inf(1)
	default:
		t.Growth = t.LateRate / t.EarlyRate
	}
	for _, sw := range a.Reg.JobsOn(hw) {
		if d := a.Hist.MaxDeviation(sw, mid+1, g, KindIn(SymDeviation, SymValue)); d > t.Deviation {
			t.Deviation = d
		}
	}
	return t
}

// RUL estimates the remaining useful life of a FRU by extrapolating its
// trust trajectory: a least-squares line through the last window trust
// samples, intersected with the given trust threshold. Results:
//
//   - remaining > 0: estimated time until the FRU's trust crosses the
//     threshold (schedule replacement within this horizon);
//   - remaining == 0: already below threshold (replace now);
//   - ok == false: the trajectory is flat or improving — no wearout-driven
//     replacement is forecast.
//
// The estimate is deliberately simple (linear in the trust domain); its
// role is to order maintenance, not to predict failure physics.
func (a *Assessor) RUL(f FRUIndex, threshold float64, window int) (remaining sim.Duration, ok bool) {
	hist := a.trustHist[f]
	if len(hist) < 2 {
		return 0, false
	}
	if window <= 1 || window > len(hist) {
		window = len(hist)
	}
	pts := hist[len(hist)-window:]
	last := pts[len(pts)-1]
	if float64(last.Trust) <= threshold {
		return 0, true
	}
	// Least squares over (t, trust).
	n := float64(len(pts))
	var sx, sy, sxx, sxy float64
	for _, p := range pts {
		x := p.At.Seconds()
		y := float64(p.Trust)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, false
	}
	slope := (n*sxy - sx*sy) / den
	if slope >= -1e-9 {
		return 0, false // flat or recovering
	}
	secondsLeft := (float64(last.Trust) - threshold) / -slope
	return sim.Duration(secondsLeft * float64(sim.Second)), true
}
