package diagnosis

import (
	"testing"

	"decos/internal/core"
	"decos/internal/sim"
)

// Targeted concurrent-fault cases: two simultaneous faults of different
// classes on different FRUs must both be classified (the statistical
// version is experiment E9; these pin specific hard pairs).

func TestConcurrentConnectorAndSoftwareFault(t *testing.T) {
	r := newRig(t, 71)
	// Connector on component 2; Bohrbug in the sensor job on component 0.
	r.inj.ConnectorTx(2, sim.Time(100*sim.Millisecond), 0, 0.3)
	sensor := r.cl.DAS("A").JobNamed("sensor")
	r.inj.Bohrbug(sensor, chSpeed, func(v float64, now sim.Time) bool { return v > 60 }, 400)
	r.cl.RunRounds(3000)

	v1 := r.verdict(t, core.HardwareFRU(2))
	if v1.Class != core.ComponentBorderline {
		t.Errorf("connector verdict = %v (%s)", v1.Class, v1.Pattern)
	}
	v2 := r.verdict(t, r.jobFRU("A", "sensor"))
	if !core.JobInherentSoftware.Matches(v2.Class) {
		t.Errorf("software verdict = %v (%s)", v2.Class, v2.Pattern)
	}
}

func TestConcurrentPermanentAndConfigFault(t *testing.T) {
	r := newRig(t, 72)
	r.inj.PermanentFailSilent(0, sim.Time(200*sim.Millisecond))
	sink := r.cl.DAS("B").JobNamed("sink")
	r.inj.MisconfigureQueue(sink, chBurst, 1)
	r.cl.RunRounds(2500)

	v1 := r.verdict(t, core.HardwareFRU(0))
	if v1.Class != core.ComponentInternal || v1.Persistence != core.Permanent {
		t.Errorf("permanent verdict = %v/%v", v1.Class, v1.Persistence)
	}
	v2 := r.verdict(t, r.jobFRU("B", "sink"))
	if v2.Class != core.JobBorderline {
		t.Errorf("config verdict = %v (%s)", v2.Class, v2.Pattern)
	}
}

func TestConcurrentEMIAndConnector(t *testing.T) {
	// An EMI burst over components 0/1 while component 2 has a fretting
	// connector: the spatial correlation must not swallow the connector
	// evidence, nor the connector recurrence taint the burst victims.
	r := newRig(t, 73)
	r.inj.EMIBurst(sim.Time(400*sim.Millisecond), 0.5, 0, 2, 10*sim.Millisecond, 4)
	r.inj.ConnectorTx(2, sim.Time(100*sim.Millisecond), 0, 0.3)
	r.cl.RunRounds(3000)

	for _, n := range []int{0, 1} {
		v := r.verdict(t, core.HardwareFRU(n))
		if v.Class != core.ComponentExternal {
			t.Errorf("burst victim %d verdict = %v (%s)", n, v.Class, v.Pattern)
		}
	}
	v := r.verdict(t, core.HardwareFRU(2))
	if v.Class != core.ComponentBorderline {
		t.Errorf("connector verdict = %v (%s)", v.Class, v.Pattern)
	}
}

func TestConcurrentSensorFaultsOnDistinctComponents(t *testing.T) {
	r := newRig(t, 74)
	sensor := r.cl.DAS("A").JobNamed("sensor")
	r.inj.SensorStuck(sensor, sim.Time(200*sim.Millisecond), 77)
	r.inj.ConnectorRx(1, sim.Time(150*sim.Millisecond), 0, 0.4)
	r.cl.RunRounds(3000)

	v1 := r.verdict(t, core.HardwareFRU(1))
	if v1.Class != core.ComponentBorderline || v1.Pattern != "connector-rx" {
		t.Errorf("rx-connector verdict = %v (%s)", v1.Class, v1.Pattern)
	}
	// The stuck sensor is observed by the control job on component 1 —
	// whose inbound connector drops 40 % of frames. The evidence still
	// gets through (state republication is redundant in time).
	v2 := r.verdict(t, r.jobFRU("A", "sensor"))
	if !core.JobInherentSensor.Matches(v2.Class) {
		t.Errorf("sensor verdict = %v (%s)", v2.Class, v2.Pattern)
	}
}
