// Package diagnosis implements the DECOS integrated diagnostic services
// (paper Section II-D and V): local symptom detection against the LIF
// specifications at every component, dissemination of symptom messages over
// a dedicated virtual diagnostic network, and the encapsulated diagnostic
// DAS that evaluates Out-of-Norm Assertions (ONAs) on the distributed
// state, maintains α-counts and per-FRU trust levels, classifies
// experienced failures into the maintenance-oriented fault model's classes
// and derives the maintenance action of the paper's Fig. 11.
package diagnosis

import (
	"fmt"

	"decos/internal/component"
	"decos/internal/core"
	"decos/internal/tt"
	"decos/internal/vnet"
)

// FRUIndex is a compact identifier for a FRU inside symptom messages. The
// registry mapping indices to FRUs is static configuration data shared by
// all diagnostic participants.
type FRUIndex uint16

// NoFRU marks "no subject" (never a valid index).
const NoFRU FRUIndex = 0xffff

// ChannelMeta is the static per-channel knowledge of the diagnostic
// configuration: the LIF spec and the producing FRUs.
type ChannelMeta struct {
	Spec component.ChannelSpec
	// ProducerJob is the software FRU producing the channel.
	ProducerJob FRUIndex
	// ProducerComp is the hardware FRU hosting the producer.
	ProducerComp FRUIndex
	// DAS names the owning subsystem.
	DAS string
}

// Registry is the static diagnostic configuration of one cluster: FRU
// table, channel metadata and component geometry. It is derived
// deterministically from the cluster configuration.
type Registry struct {
	frus    []core.FRU
	index   map[core.FRU]FRUIndex
	hwOf    map[FRUIndex]FRUIndex // software FRU -> hosting hardware FRU
	dasOf   map[FRUIndex]string   // software FRU -> DAS name
	compPos map[FRUIndex][2]float64
	channel map[vnet.ChannelID]ChannelMeta
	node    map[FRUIndex]tt.NodeID // hardware FRU -> node id

	// Cached index lists. The registry is immutable after construction and
	// these are queried on every assessment epoch; callers must not modify
	// the returned slices.
	hw     []FRUIndex
	sw     []FRUIndex
	jobsOn map[FRUIndex][]FRUIndex
}

// NewRegistry builds the registry for a cluster: one hardware FRU per
// component (in node order), then one software FRU per job (in DAS/job
// order).
func NewRegistry(cl *component.Cluster) *Registry {
	r := &Registry{
		index:   make(map[core.FRU]FRUIndex),
		hwOf:    make(map[FRUIndex]FRUIndex),
		dasOf:   make(map[FRUIndex]string),
		compPos: make(map[FRUIndex][2]float64),
		channel: make(map[vnet.ChannelID]ChannelMeta),
		node:    make(map[FRUIndex]tt.NodeID),
	}
	add := func(f core.FRU) FRUIndex {
		idx := FRUIndex(len(r.frus))
		r.frus = append(r.frus, f)
		r.index[f] = idx
		return idx
	}
	for _, c := range cl.Components() {
		idx := add(core.HardwareFRU(int(c.ID)))
		r.compPos[idx] = [2]float64{c.X, c.Y}
		r.node[idx] = c.ID
	}
	for _, d := range cl.DASs() {
		for _, j := range d.Jobs {
			idx := add(core.SoftwareFRU(int(j.Comp.ID), d.Name+"/"+j.Name))
			r.hwOf[idx] = r.index[core.HardwareFRU(int(j.Comp.ID))]
			r.dasOf[idx] = d.Name
		}
	}
	for ch, spec := range cl.Specs() {
		j := cl.Producer(ch)
		if j == nil {
			continue
		}
		jobFRU := core.SoftwareFRU(int(j.Comp.ID), j.DAS.Name+"/"+j.Name)
		r.channel[ch] = ChannelMeta{
			Spec:         spec,
			ProducerJob:  r.index[jobFRU],
			ProducerComp: r.index[core.HardwareFRU(int(j.Comp.ID))],
			DAS:          j.DAS.Name,
		}
	}
	r.jobsOn = make(map[FRUIndex][]FRUIndex)
	for i, f := range r.frus {
		idx := FRUIndex(i)
		if f.IsHardware() {
			r.hw = append(r.hw, idx)
		} else {
			r.sw = append(r.sw, idx)
			r.jobsOn[r.hwOf[idx]] = append(r.jobsOn[r.hwOf[idx]], idx)
		}
	}
	return r
}

// Len returns the number of registered FRUs.
func (r *Registry) Len() int { return len(r.frus) }

// FRU returns the FRU at the given index.
func (r *Registry) FRU(i FRUIndex) core.FRU {
	if int(i) >= len(r.frus) {
		panic(fmt.Sprintf("diagnosis: FRU index %d out of range", i))
	}
	return r.frus[i]
}

// Index returns the index of a FRU; ok=false if unknown.
func (r *Registry) Index(f core.FRU) (FRUIndex, bool) {
	i, ok := r.index[f]
	return i, ok
}

// HardwareIndex returns the hardware FRU index of a component node.
func (r *Registry) HardwareIndex(n tt.NodeID) (FRUIndex, bool) {
	return r.Index(core.HardwareFRU(int(n)))
}

// Node returns the node id of a hardware FRU.
func (r *Registry) Node(i FRUIndex) (tt.NodeID, bool) {
	n, ok := r.node[i]
	return n, ok
}

// HostOf returns the hardware FRU hosting a software FRU (or the argument
// itself if it already is hardware).
func (r *Registry) HostOf(i FRUIndex) FRUIndex {
	if hw, ok := r.hwOf[i]; ok {
		return hw
	}
	return i
}

// DASOf returns the DAS name of a software FRU ("" for hardware FRUs).
func (r *Registry) DASOf(i FRUIndex) string { return r.dasOf[i] }

// IsHardware reports whether index i names a component.
func (r *Registry) IsHardware(i FRUIndex) bool {
	return int(i) < len(r.frus) && r.frus[i].IsHardware()
}

// JobsOn returns the software FRU indices hosted on hardware FRU hw. The
// returned slice is shared registry state; callers must not modify it.
func (r *Registry) JobsOn(hw FRUIndex) []FRUIndex { return r.jobsOn[hw] }

// Position returns the coordinates of a hardware FRU.
func (r *Registry) Position(i FRUIndex) ([2]float64, bool) {
	p, ok := r.compPos[i]
	return p, ok
}

// Distance returns the Euclidean distance between two hardware FRUs (+Inf
// when either is unknown).
func (r *Registry) Distance(a, b FRUIndex) float64 {
	pa, oka := r.compPos[a]
	pb, okb := r.compPos[b]
	if !oka || !okb {
		return 1e308
	}
	dx, dy := pa[0]-pb[0], pa[1]-pb[1]
	d2 := dx*dx + dy*dy
	// Cheap sqrt via Newton (avoid importing math for one call site).
	if d2 == 0 {
		return 0
	}
	x := d2
	for i := 0; i < 32; i++ {
		x = 0.5 * (x + d2/x)
	}
	return x
}

// Channel returns the metadata of a channel; ok=false if the channel has no
// registered spec.
func (r *Registry) Channel(ch vnet.ChannelID) (ChannelMeta, bool) {
	m, ok := r.channel[ch]
	return m, ok
}

// HardwareFRUs returns all hardware FRU indices in node order. The returned
// slice is shared registry state; callers must not modify it.
func (r *Registry) HardwareFRUs() []FRUIndex { return r.hw }

// SoftwareFRUs returns all software FRU indices. The returned slice is
// shared registry state; callers must not modify it.
func (r *Registry) SoftwareFRUs() []FRUIndex { return r.sw }
