package diagnosis

import (
	"testing"

	"decos/internal/sim"
	"decos/internal/vnet"
)

// Monitor-level unit tests exercising detector edges through the rig.

func TestDeviationWarningEmitted(t *testing.T) {
	// Drift the sensor close to — but inside — the spec boundary: the
	// monitor must emit deviation warnings (the "verge of becoming
	// incorrect" signal) without any hard value violation.
	r := newRig(t, 81)
	sensor := r.cl.DAS("A").JobNamed("sensor")
	// Spec is [0,100], mid 50, warn at |pos| ≥ 0.85 → |v-50| ≥ 42.5. The
	// sine spans 20..80, so add a static offset pushing peaks to ~93.
	r.inj.SensorDrift(sensor, 0, 0) // no-op drift, keeps ledger clean
	sensor.SensorFault = func(name string, v float64, now sim.Time) float64 {
		return v + 13 // peaks at 93: inside spec, beyond warn fraction
	}
	r.cl.RunRounds(1000)
	sw, _ := r.diag.Reg.Index(r.jobFRU("A", "sensor"))
	h := r.diag.Assessor.Hist
	dev := h.Count(sw, 0, h.Latest(), KindIn(SymDeviation))
	if dev == 0 {
		t.Error("no deviation warnings for near-boundary values")
	}
	if viol := h.Count(sw, 0, h.Latest(), KindIn(SymValue)); viol != 0 {
		t.Errorf("%d hard violations for in-spec values", viol)
	}
	// Deviation alone must not convict the job.
	if v, ok := r.diag.Assessor.Current(sw); ok {
		t.Errorf("near-boundary job convicted: %v (%s)", v.Class, v.Pattern)
	}
}

func TestReplicaSymptomsFromVoter(t *testing.T) {
	// Make one TMR replica disagree; the voter's monitor must emit
	// replica symptoms against the deviating producer job.
	r := newRig(t, 82)
	_ = r
	// The rig has no voter; use the Fig. 10 system via scenario-level
	// tests instead — here we check the monitor handles voter absence.
	for _, m := range r.diag.Monitors {
		if len(m.voters) != 0 {
			t.Errorf("rig monitor %d claims voters", m.Node)
		}
	}
}

func TestOnSymptomHook(t *testing.T) {
	r := newRig(t, 83)
	var seen []Symptom
	r.diag.Assessor.OnSymptom(func(s Symptom) { seen = append(seen, s) })
	r.inj.ConnectorTx(0, sim.Time(50*sim.Millisecond), 0, 0.3)
	r.cl.RunRounds(500)
	if len(seen) == 0 {
		t.Fatal("hook never fired")
	}
	if len(seen) != r.diag.Assessor.SymptomsReceived {
		t.Errorf("hook fired %d times, received %d", len(seen), r.diag.Assessor.SymptomsReceived)
	}
}

func TestMonitorKeepLog(t *testing.T) {
	r := newRigWithOptions(t, 84, Options{KeepMonitorLogs: true})
	r.inj.ConnectorTx(0, sim.Time(50*sim.Millisecond), 0, 0.3)
	r.cl.RunRounds(500)
	logged := 0
	for _, m := range r.diag.Monitors {
		logged += len(m.LocalLog)
		if len(m.LocalLog) != m.SymptomsSent {
			t.Errorf("monitor %d log %d != sent %d", m.Node, len(m.LocalLog), m.SymptomsSent)
		}
	}
	if logged == 0 {
		t.Error("nothing logged with KeepMonitorLogs")
	}
}

func TestCRCFailuresMergeIntoFrameKey(t *testing.T) {
	// Channel-level CRC failures aggregate under the frame-level key
	// (channel 0) to conserve diagnostic bandwidth.
	r := newRigWithOptions(t, 85, Options{KeepMonitorLogs: true})
	r.inj.IntermittentInternal(0, sim.Time(50*sim.Millisecond), 3600*20, 0)
	r.cl.RunRounds(1000)
	for _, m := range r.diag.Monitors {
		for _, s := range m.LocalLog {
			if s.Kind == SymCorruption && s.Channel != 0 {
				t.Fatalf("corruption symptom with channel %d", s.Channel)
			}
		}
	}
	_ = vnet.ChannelID(0)
}
