package diagnosis

import (
	"testing"

	"decos/internal/core"
	"decos/internal/faults"
	"decos/internal/sim"
)

func TestTrendDetectsWearout(t *testing.T) {
	// Deep retention so the trend horizon spans the whole degradation,
	// and a slow acceleration so the early half stays below saturation.
	r := newRigWithOptions(t, 41, Options{RetainGranules: 4800, WindowGranules: 400})
	acc := faults.WearoutAcceleration{
		Onset: sim.Time(100 * sim.Millisecond), Tau: 1500 * sim.Millisecond,
		BaseRatePerHour: 3600 * 4, MaxFactor: 10,
	}
	r.inj.Wearout(0, acc, 3600*10)
	r.cl.RunRounds(5000)
	hw0, _ := r.diag.Reg.HardwareIndex(0)
	trend := r.diag.Assessor.Trend(hw0)
	if !trend.Wearing(1.5) {
		t.Errorf("wearout not detected: %+v", trend)
	}
	if trend.LateRate <= trend.EarlyRate {
		t.Errorf("rate not rising: %+v", trend)
	}
	// A healthy component trends flat.
	hw2, _ := r.diag.Reg.HardwareIndex(2)
	if ht := r.diag.Assessor.Trend(hw2); ht.Wearing(1.5) {
		t.Errorf("healthy component flagged wearing: %+v", ht)
	}
}

func TestRULForecastsDegradingFRU(t *testing.T) {
	r := newRig(t, 42)
	acc := faults.WearoutAcceleration{
		Onset: sim.Time(200 * sim.Millisecond), Tau: 600 * sim.Millisecond,
		BaseRatePerHour: 3600 * 2, MaxFactor: 30,
	}
	r.inj.Wearout(0, acc, 0)
	r.cl.RunRounds(1200) // early phase: trust starting to decline
	hw0, _ := r.diag.Reg.HardwareIndex(0)
	trust := float64(r.diag.Assessor.Trust(hw0))
	if trust >= 0.999 {
		t.Skip("trust has not started declining at this seed; trend too early")
	}
	rul, ok := r.diag.Assessor.RUL(hw0, 0.2, 8)
	if !ok {
		t.Fatalf("no RUL forecast for degrading FRU (trust %.3f)", trust)
	}
	if trust > 0.2 && rul <= 0 {
		t.Errorf("RUL = %v for trust %.3f", rul, trust)
	}
	// The forecast must come due: run on and verify trust actually
	// crossed the threshold within a generous multiple of the estimate.
	r.cl.RunRounds(2500)
	if got := float64(r.diag.Assessor.Trust(hw0)); got > 0.2 {
		t.Errorf("trust %.3f never crossed threshold despite forecast %v", got, rul)
	}
}

func TestRULHealthyFRUHasNoForecast(t *testing.T) {
	r := newRig(t, 43)
	r.cl.RunRounds(1000)
	hw1, _ := r.diag.Reg.HardwareIndex(1)
	if _, ok := r.diag.Assessor.RUL(hw1, 0.2, 8); ok {
		t.Error("healthy FRU received a replacement forecast")
	}
}

func TestRULAlreadyBelowThreshold(t *testing.T) {
	r := newRig(t, 44)
	r.inj.PermanentFailSilent(0, sim.Time(100*sim.Millisecond))
	r.cl.RunRounds(1500)
	hw0, _ := r.diag.Reg.HardwareIndex(0)
	rul, ok := r.diag.Assessor.RUL(hw0, 0.5, 8)
	if !ok || rul != 0 {
		t.Errorf("dead FRU: rul=%v ok=%v, want 0/true", rul, ok)
	}
	_ = core.ComponentInternal
}

func TestRULDegenerateInputs(t *testing.T) {
	r := newRig(t, 45)
	// No epochs yet: no history.
	hw0, _ := r.diag.Reg.HardwareIndex(0)
	if _, ok := r.diag.Assessor.RUL(hw0, 0.2, 4); ok {
		t.Error("forecast from empty history")
	}
}
