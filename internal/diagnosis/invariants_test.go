package diagnosis_test

import (
	"testing"

	"decos/internal/core"
	"decos/internal/diagnosis"
	"decos/internal/scenario"
	"decos/internal/sim"
	"decos/internal/tt"
)

// System-level invariants that must hold for every verdict the assessor
// ever emits, across a sweep of single-fault scenarios.

func TestVerdictInvariants(t *testing.T) {
	for _, kind := range scenario.AllKinds() {
		sys := scenario.Fig10(900+uint64(kind)*77, diagnosis.Options{})
		sys.Inject(kind, sim.Time(300*sim.Millisecond), sim.Time(3*sim.Second))
		sys.Run(3000)

		for _, v := range sys.Diag.Assessor.Emitted() {
			// 1. The action always follows the Fig. 11 mapping for the
			//    diagnosed class (modulo the software-update flag, which
			//    is off here).
			if want := core.ActionFor(v.Class, false); v.Action != want {
				t.Errorf("%v: verdict %v carries action %v, mapping says %v",
					kind, v.Class, v.Action, want)
			}
			// 2. Hardware classes attach to hardware FRUs, job classes to
			//    software FRUs.
			switch v.Class {
			case core.ComponentExternal, core.ComponentBorderline, core.ComponentInternal:
				if !v.FRU.IsHardware() {
					t.Errorf("%v: hardware class %v on software FRU %v", kind, v.Class, v.FRU)
				}
			case core.JobBorderline, core.JobInherent, core.JobInherentSoftware, core.JobInherentSensor:
				if v.FRU.IsHardware() {
					t.Errorf("%v: job class %v on hardware FRU %v", kind, v.Class, v.FRU)
				}
			}
			// 3. Confidence is a probability-like score.
			if v.Confidence <= 0 || v.Confidence > 1 {
				t.Errorf("%v: confidence %v out of range", kind, v.Confidence)
			}
			// 4. A verdict implies evidence: the subject has symptoms in
			//    the retained history — checkable only while the emission
			//    epoch still lies inside the retention horizon (verdicts
			//    are sticky; their evidence may age out afterwards).
			hist := sys.Diag.Assessor.Hist
			retainedFrom := hist.Latest() - sys.Diag.Assessor.Options().RetainGranules
			if v.At.Micros()/1000 > retainedFrom { // 1 ms rounds → granule ≈ ms
				if hist.Count(v.Subject, 0, hist.Latest(), nil) == 0 {
					t.Errorf("%v: verdict for %v without any retained symptoms", kind, v.FRU)
				}
			}
		}

		// 5. Trust levels stay in [0,1] for every FRU.
		for i := 0; i < sys.Diag.Reg.Len(); i++ {
			tr := float64(sys.Diag.Assessor.Trust(diagnosis.FRUIndex(i)))
			if tr < 0 || tr > 1 {
				t.Fatalf("%v: trust %v out of bounds", kind, tr)
			}
		}
	}
}

// No verdict may ever name the diagnostic analysis host as a removal
// candidate in these single-fault scenarios (faults target components
// 0..2), and fault-free FRUs must keep full trust.
func TestInnocentFRUsKeepTrust(t *testing.T) {
	sys := scenario.Fig10(999, diagnosis.Options{})
	sys.Injector.PermanentFailSilent(0, sim.Time(200*sim.Millisecond))
	sys.Run(2000)
	for _, n := range []int{1, 2, 3} {
		hw, _ := sys.Diag.Reg.HardwareIndex(tt.NodeID(n))
		if tr := float64(sys.Diag.Assessor.Trust(hw)); tr < 0.99 {
			t.Errorf("innocent component %d trust = %v", n, tr)
		}
	}
}
