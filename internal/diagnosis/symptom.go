package diagnosis

import (
	"encoding/binary"
	"fmt"
	"math"

	"decos/internal/sim"
	"decos/internal/vnet"
)

// Kind classifies one symptom: a detected deviation of an interface state
// variable from its LIF specification (paper Section V-A). Kinds map onto
// the three judgment dimensions — omission/timing/stale are time-domain,
// corruption/value/stuck are value-domain; the space dimension comes from
// the subject FRU and the observer.
type Kind uint8

const (
	// SymOmission: a frame or message expected in a slot did not arrive.
	SymOmission Kind = iota
	// SymCorruption: a frame or message failed its coding (CRC) check;
	// Deviation carries the flipped-bit estimate.
	SymCorruption
	// SymTiming: a frame arrived outside its receive window.
	SymTiming
	// SymValue: a message value violated the channel's value spec;
	// Deviation carries the normalized overshoot.
	SymValue
	// SymDeviation: a value is still within spec but drifting toward the
	// boundary ("at the verge of becoming incorrect", Fig. 8); Deviation
	// carries the normalized position in [0,1].
	SymDeviation
	// SymStale: a state channel's sequence number froze beyond its
	// staleness bound.
	SymStale
	// SymStuck: a dynamic signal stayed bit-identical beyond its
	// plausibility window (stuck-at transducer manifestation).
	SymStuck
	// SymOverflow: a port queue overflowed although producers conformed to
	// their specs (configuration-fault manifestation).
	SymOverflow
	// SymReplica: a TMR replica deviated from the voted majority.
	SymReplica
	// SymInternal: a job-internal assertion flagged the job's transducer
	// (only emitted when the job-internal-assertions extension is
	// enabled; Section III-D).
	SymInternal

	numKinds
)

func (k Kind) String() string {
	switch k {
	case SymOmission:
		return "omission"
	case SymCorruption:
		return "corruption"
	case SymTiming:
		return "timing"
	case SymValue:
		return "value"
	case SymDeviation:
		return "deviation"
	case SymStale:
		return "stale"
	case SymStuck:
		return "stuck"
	case SymOverflow:
		return "overflow"
	case SymReplica:
		return "replica"
	case SymInternal:
		return "internal-assertion"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// TimeDomain reports whether the kind is a time-domain violation.
func (k Kind) TimeDomain() bool {
	return k == SymOmission || k == SymTiming || k == SymStale
}

// ValueDomain reports whether the kind is a value-domain violation.
func (k Kind) ValueDomain() bool {
	return k == SymCorruption || k == SymValue || k == SymDeviation || k == SymStuck
}

// Symptom is one aggregated observation disseminated on the virtual
// diagnostic network: per detection round, per (kind, subject, channel),
// the observing component sends one record with a count.
type Symptom struct {
	Kind Kind
	// Observer is the hardware FRU index of the detecting component.
	Observer FRUIndex
	// Subject is the FRU the symptom concerns (component for frame-level
	// symptoms, job for port-level symptoms).
	Subject FRUIndex
	// Channel is the affected channel, 0 for frame-level symptoms.
	Channel vnet.ChannelID
	// Granule is the action-lattice index (round) of the observation on
	// the sparse time base.
	Granule int64
	// At is the send instant (diagnostic bookkeeping, not part of the
	// judged state).
	At sim.Time
	// Count aggregates same-kind observations within the granule.
	Count uint16
	// Deviation carries the value-domain magnitude (bits flipped,
	// normalized overshoot, ...), maximum over the aggregate.
	Deviation float32
}

func (s Symptom) String() string {
	return fmt.Sprintf("sym{%s subj=%d obs=%d ch=%d g=%d n=%d dev=%.3f}",
		s.Kind, s.Subject, s.Observer, s.Channel, s.Granule, s.Count, s.Deviation)
}

// symptomWireBytes is the encoded size of one symptom record.
const symptomWireBytes = 1 + 2 + 2 + 2 + 8 + 2 + 4

// Encode serializes the symptom for transmission on the diagnostic
// network.
func (s Symptom) Encode() []byte {
	return s.appendWire(nil)
}

// appendWire appends the wire encoding to dst and returns the extended
// slice. Monitors pass a per-monitor scratch buffer: the network copies the
// payload on Send, so the buffer is immediately reusable.
func (s Symptom) appendWire(dst []byte) []byte {
	n := len(dst)
	dst = append(dst, make([]byte, symptomWireBytes)...)
	b := dst[n:]
	b[0] = byte(s.Kind)
	binary.BigEndian.PutUint16(b[1:3], uint16(s.Observer))
	binary.BigEndian.PutUint16(b[3:5], uint16(s.Subject))
	binary.BigEndian.PutUint16(b[5:7], uint16(s.Channel))
	binary.BigEndian.PutUint64(b[7:15], uint64(s.Granule))
	binary.BigEndian.PutUint16(b[15:17], s.Count)
	binary.BigEndian.PutUint32(b[17:21], math.Float32bits(s.Deviation))
	return dst
}

// DecodeSymptom parses a symptom record; ok=false on malformed input.
func DecodeSymptom(b []byte) (Symptom, bool) {
	if len(b) != symptomWireBytes || Kind(b[0]) >= numKinds {
		return Symptom{}, false
	}
	return Symptom{
		Kind:      Kind(b[0]),
		Observer:  FRUIndex(binary.BigEndian.Uint16(b[1:3])),
		Subject:   FRUIndex(binary.BigEndian.Uint16(b[3:5])),
		Channel:   vnet.ChannelID(binary.BigEndian.Uint16(b[5:7])),
		Granule:   int64(binary.BigEndian.Uint64(b[7:15])),
		Count:     binary.BigEndian.Uint16(b[15:17]),
		Deviation: math.Float32frombits(binary.BigEndian.Uint32(b[17:21])),
	}, true
}
