package diagnosis

import "decos/internal/core"

// RankedVerdict is one entry of a classifier's ranked belief over a
// FRU's fault classes: the class, the pattern name of the dominant
// hypothesis behind it, and the calibrated confidence (posterior mass).
// ClassUnknown represents the healthy hypothesis.
type RankedVerdict struct {
	Class      core.FaultClass
	Pattern    string
	Confidence float64
}

// Ranker is the optional classifier extension for stages that maintain
// a full belief distribution rather than hard conclusions (the Bayesian
// stage): Ranked returns the subject's fault classes ordered by
// descending confidence. Consumers (decos-whatif's verdict diff, the
// calibration experiment) type-assert the active Classifier against it;
// stages without a belief state simply don't implement it.
type Ranker interface {
	Ranked(subject FRUIndex) []RankedVerdict
}
