package diagnosis

import (
	"fmt"
	"sort"

	"decos/internal/ckpt"
	"decos/internal/core"
	"decos/internal/sim"
	"decos/internal/vnet"
)

// Checkpointing of the diagnostic subsystem. The registry, tracker
// topology and pipeline wiring are configuration rebuilt by the engine's
// build path; a checkpoint carries the evidence: the distributed-state
// history, recurrence scores, trust trajectories, standing verdicts, and
// every monitor's incremental-scan cursors. A checkpoint is taken at a
// round boundary, after monitors flushed and the assessor drained, so
// the only in-flight symptom state is the accumulator of monitors on
// dead nodes (whose round hook did not run) — it is carried too.

func encodeSymptom(e *ckpt.Encoder, s *Symptom) {
	e.Uvarint(uint64(s.Kind))
	e.Int(int(s.Observer))
	e.Int(int(s.Subject))
	e.Int(int(s.Channel))
	e.Varint(s.Granule)
	e.Varint(int64(s.At))
	e.Uvarint(uint64(s.Count))
	e.Float32(s.Deviation)
}

func decodeSymptom(d *ckpt.Decoder) Symptom {
	return Symptom{
		Kind:      Kind(d.Uvarint()),
		Observer:  FRUIndex(d.Int()),
		Subject:   FRUIndex(d.Int()),
		Channel:   vnet.ChannelID(d.Int()),
		Granule:   d.Varint(),
		At:        sim.Time(d.Varint()),
		Count:     uint16(d.Uvarint()),
		Deviation: d.Float32(),
	}
}

// Snapshot serializes the distributed-state history (subjects ascending,
// each list already granule-sorted by construction).
func (h *History) Snapshot(e *ckpt.Encoder) {
	e.Varint(h.latest)
	e.Uvarint(h.total)
	subjects := h.Subjects()
	e.Int(len(subjects))
	for _, subj := range subjects {
		e.Int(int(subj))
		list := h.bySubject[subj]
		e.Int(len(list))
		for i := range list {
			encodeSymptom(e, &list[i])
		}
	}
}

// Restore replaces the history's content.
func (h *History) Restore(d *ckpt.Decoder) error {
	h.latest = d.Varint()
	h.total = d.Uvarint()
	clear(h.bySubject)
	n := d.Len(1 << 20)
	for i := 0; i < n && d.Err() == nil; i++ {
		subj := FRUIndex(d.Int())
		nl := d.Len(1 << 24)
		list := make([]Symptom, 0, nl)
		for k := 0; k < nl && d.Err() == nil; k++ {
			list = append(list, decodeSymptom(d))
		}
		if d.Err() == nil {
			h.bySubject[subj] = list
		}
	}
	return d.Err()
}

// Snapshot serializes the recurrence scores in FRU-index order.
func (a *AlphaCount) Snapshot(e *ckpt.Encoder) {
	idx := make([]int, 0, len(a.score))
	for f := range a.score {
		idx = append(idx, int(f))
	}
	sort.Ints(idx)
	e.Int(len(idx))
	for _, f := range idx {
		e.Int(f)
		e.Float64(a.score[FRUIndex(f)])
	}
}

// Restore replaces the recurrence scores.
func (a *AlphaCount) Restore(d *ckpt.Decoder) error {
	clear(a.score)
	n := d.Len(1 << 20)
	for i := 0; i < n && d.Err() == nil; i++ {
		f := FRUIndex(d.Int())
		a.score[f] = d.Float64()
	}
	return d.Err()
}

func encodeVerdict(e *ckpt.Encoder, v *Verdict) {
	e.Varint(v.Epoch)
	e.Varint(int64(v.At))
	e.Int(int(v.Subject))
	e.Int(int(v.Class))
	e.Int(int(v.Persistence))
	e.String(v.Pattern)
	e.Float64(v.Confidence)
	e.Int(int(v.Action))
}

func (ad *Adviser) decodeVerdict(d *ckpt.Decoder) Verdict {
	v := Verdict{
		Epoch:       d.Varint(),
		At:          sim.Time(d.Varint()),
		Subject:     FRUIndex(d.Int()),
		Class:       core.FaultClass(d.Int()),
		Persistence: core.Persistence(d.Int()),
		Pattern:     d.String(),
		Confidence:  d.Float64(),
		Action:      core.MaintenanceAction(d.Int()),
	}
	// The FRU identity is registry-derived, not wire state.
	if d.Err() == nil && int(v.Subject) < ad.reg.Len() {
		v.FRU = ad.reg.FRU(v.Subject)
	}
	return v
}

// Snapshot serializes trust levels and trajectories (registry order),
// standing verdicts (subject order) and the emission log.
func (ad *Adviser) Snapshot(e *ckpt.Encoder) {
	e.Varint(ad.epoch)
	e.Int(ad.reg.Len())
	for i := 0; i < ad.reg.Len(); i++ {
		f := FRUIndex(i)
		e.Float64(ad.trust[f])
		hist := ad.trustHist[f]
		e.Int(len(hist))
		for _, p := range hist {
			e.Varint(int64(p.At))
			e.Varint(p.Granule)
			e.Float64(float64(p.Trust))
		}
	}
	cur := ad.CurrentAll()
	e.Int(len(cur))
	for i := range cur {
		encodeVerdict(e, &cur[i])
	}
	e.Int(len(ad.emitted))
	for i := range ad.emitted {
		encodeVerdict(e, &ad.emitted[i])
	}
}

// Restore replaces the adviser's state.
func (ad *Adviser) Restore(d *ckpt.Decoder) error {
	ad.epoch = d.Varint()
	n := d.Len(1 << 20)
	if d.Err() == nil && n != ad.reg.Len() {
		return fmt.Errorf("diagnosis: checkpoint has %d FRUs, registry has %d", n, ad.reg.Len())
	}
	clear(ad.trustHist)
	for i := 0; i < n && d.Err() == nil; i++ {
		f := FRUIndex(i)
		ad.trust[f] = d.Float64()
		nh := d.Len(1 << 24)
		var hist []TrustPoint
		if nh > 0 {
			hist = make([]TrustPoint, 0, nh)
		}
		for k := 0; k < nh && d.Err() == nil; k++ {
			hist = append(hist, TrustPoint{
				At:      sim.Time(d.Varint()),
				Granule: d.Varint(),
				Trust:   core.TrustLevel(d.Float64()),
			})
		}
		if len(hist) > 0 {
			ad.trustHist[f] = hist
		}
	}
	clear(ad.current)
	nc := d.Len(1 << 20)
	for i := 0; i < nc && d.Err() == nil; i++ {
		v := ad.decodeVerdict(d)
		ad.current[v.Subject] = v
	}
	ne := d.Len(1 << 20)
	ad.emitted = ad.emitted[:0]
	for i := 0; i < ne && d.Err() == nil; i++ {
		ad.emitted = append(ad.emitted, ad.decodeVerdict(d))
	}
	return d.Err()
}

// Snapshot serializes the whole assessment pipeline: collector counters,
// history, recurrence scores and the adviser.
func (a *Assessor) Snapshot(e *ckpt.Encoder) {
	e.Int(a.SymptomsReceived)
	e.Int(a.DecodeFailures)
	a.Hist.Snapshot(e)
	a.Alpha.Snapshot(e)
	a.SW.Snapshot(e)
	a.Adviser.Snapshot(e)
}

// Restore replaces the pipeline's state.
func (a *Assessor) Restore(d *ckpt.Decoder) error {
	a.SymptomsReceived = d.Int()
	a.DecodeFailures = d.Int()
	if err := a.Hist.Restore(d); err != nil {
		return err
	}
	if err := a.Alpha.Restore(d); err != nil {
		return err
	}
	if err := a.SW.Restore(d); err != nil {
		return err
	}
	return a.Adviser.Restore(d)
}

// Snapshot serializes one monitor's scan cursors and counters. The
// tracker sets are structural (derived from the build path) and carried
// only as counts for validation.
func (m *Monitor) Snapshot(e *ckpt.Encoder) {
	e.Int(m.SymptomsSent)
	// In-flight accumulator: empty after a flush, but a monitor on a dead
	// node may hold observations its skipped round hook never flushed.
	keys := make([]accKey, 0, len(m.acc))
	for k := range m.acc {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return accKeyLess(keys[i], keys[j]) })
	e.Int(len(keys))
	for _, k := range keys {
		v := m.acc[k]
		e.Uvarint(uint64(k.kind))
		e.Int(int(k.subject))
		e.Int(int(k.channel))
		e.Int(v.count)
		e.Float64(v.dev)
	}
	e.Int(len(m.ports))
	for _, pt := range m.ports {
		e.Uvarint(uint64(pt.lastSeq))
		e.Bool(pt.haveSeq)
		e.Varint(pt.lastChangeAt)
		e.Bytes8(pt.lastValue)
		e.Varint(pt.sameValue)
		e.Int(pt.prevCRC)
		e.Int(pt.prevOverflows)
		e.Int(pt.prevReceived)
		e.Bool(pt.everReceived)
		e.Varint(pt.stuckReported)
		e.Bool(pt.staleReporting)
	}
	e.Int(len(m.voters))
	for _, vt := range m.voters {
		for i := 0; i < 3; i++ {
			e.Int(vt.prevDisagree[i])
		}
	}
	e.Int(len(m.txs))
	for _, tx := range m.txs {
		e.Int(tx.prev)
	}
	e.Int(len(m.LocalLog))
	for i := range m.LocalLog {
		encodeSymptom(e, &m.LocalLog[i])
	}
}

// Restore replaces the monitor's cursors and counters.
func (m *Monitor) Restore(d *ckpt.Decoder) error {
	m.SymptomsSent = d.Int()
	clear(m.acc)
	na := d.Len(1 << 20)
	for i := 0; i < na && d.Err() == nil; i++ {
		k := accKey{
			kind:    Kind(d.Uvarint()),
			subject: FRUIndex(d.Int()),
			channel: vnet.ChannelID(d.Int()),
		}
		m.acc[k] = accVal{count: d.Int(), dev: d.Float64()}
	}
	np := d.Len(1 << 20)
	if d.Err() == nil && np != len(m.ports) {
		return fmt.Errorf("diagnosis: checkpoint has %d port trackers on node %d, monitor has %d", np, m.Node, len(m.ports))
	}
	for i := 0; i < np && d.Err() == nil; i++ {
		pt := m.ports[i]
		pt.lastSeq = uint32(d.Uvarint())
		pt.haveSeq = d.Bool()
		pt.lastChangeAt = d.Varint()
		if b := d.Bytes8(); len(b) > 0 {
			pt.lastValue = append(pt.lastValue[:0], b...)
		} else {
			pt.lastValue = pt.lastValue[:0]
		}
		pt.sameValue = d.Varint()
		pt.prevCRC = d.Int()
		pt.prevOverflows = d.Int()
		pt.prevReceived = d.Int()
		pt.everReceived = d.Bool()
		pt.stuckReported = d.Varint()
		pt.staleReporting = d.Bool()
	}
	nv := d.Len(1 << 20)
	if d.Err() == nil && nv != len(m.voters) {
		return fmt.Errorf("diagnosis: checkpoint has %d voter trackers on node %d, monitor has %d", nv, m.Node, len(m.voters))
	}
	for i := 0; i < nv && d.Err() == nil; i++ {
		for k := 0; k < 3; k++ {
			m.voters[i].prevDisagree[k] = d.Int()
		}
	}
	nt := d.Len(1 << 20)
	if d.Err() == nil && nt != len(m.txs) {
		return fmt.Errorf("diagnosis: checkpoint has %d tx trackers on node %d, monitor has %d", nt, m.Node, len(m.txs))
	}
	for i := 0; i < nt && d.Err() == nil; i++ {
		m.txs[i].prev = d.Int()
	}
	nl := d.Len(1 << 24)
	m.LocalLog = m.LocalLog[:0]
	for i := 0; i < nl && d.Err() == nil; i++ {
		m.LocalLog = append(m.LocalLog, decodeSymptom(d))
	}
	return d.Err()
}

// Snapshot serializes the wired diagnostic architecture: the assessment
// pipeline followed by every monitor in component order.
func (dg *Diagnostics) Snapshot(e *ckpt.Encoder) {
	dg.Assessor.Snapshot(e)
	e.Int(len(dg.Monitors))
	for _, m := range dg.Monitors {
		m.Snapshot(e)
	}
}

// Restore replaces the architecture's state.
func (dg *Diagnostics) Restore(d *ckpt.Decoder) error {
	if err := dg.Assessor.Restore(d); err != nil {
		return err
	}
	n := d.Len(1 << 16)
	if d.Err() == nil && n != len(dg.Monitors) {
		return fmt.Errorf("diagnosis: checkpoint has %d monitors, cluster has %d", n, len(dg.Monitors))
	}
	for i := 0; i < n && d.Err() == nil; i++ {
		if err := dg.Monitors[i].Restore(d); err != nil {
			return err
		}
	}
	return d.Err()
}
