package diagnosis

// History is the distributed state the diagnostic DAS operates on: the
// recent symptom stream, ordered by action-lattice granule, indexed by
// subject FRU. ONAs are predicates over this store (paper Section V-A).
type History struct {
	// RetainGranules bounds how far back symptoms are kept.
	RetainGranules int64

	bySubject map[FRUIndex][]Symptom
	latest    int64
	total     uint64
}

// NewHistory returns a store retaining the given number of granules.
func NewHistory(retain int64) *History {
	if retain <= 0 {
		panic("diagnosis: history retention must be positive")
	}
	return &History{RetainGranules: retain, bySubject: make(map[FRUIndex][]Symptom)}
}

// Add inserts a symptom and prunes expired entries for its subject.
// Symptoms may arrive out of granule order (the diagnostic network queues
// under load), so insertion keeps each subject's list granule-sorted —
// front-pruning stays exact.
func (h *History) Add(s Symptom) {
	if s.Granule > h.latest {
		h.latest = s.Granule
	}
	h.total++
	list := h.bySubject[s.Subject]
	i := len(list)
	for i > 0 && list[i-1].Granule > s.Granule {
		i--
	}
	list = append(list, Symptom{})
	copy(list[i+1:], list[i:])
	list[i] = s
	cut := h.latest - h.RetainGranules
	start := 0
	for start < len(list) && list[start].Granule < cut {
		start++
	}
	h.bySubject[s.Subject] = list[start:]
}

// Latest returns the newest granule seen.
func (h *History) Latest() int64 { return h.latest }

// Total returns the number of symptoms ever added.
func (h *History) Total() uint64 { return h.total }

// Subjects returns all FRUs with retained symptoms, in index order.
func (h *History) Subjects() []FRUIndex {
	var out []FRUIndex
	for f := range h.bySubject {
		out = append(out, f)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Filter is a symptom predicate used in window queries; nil matches all.
type Filter func(Symptom) bool

// KindIn returns a Filter matching any of the given kinds.
func KindIn(kinds ...Kind) Filter {
	return func(s Symptom) bool {
		for _, k := range kinds {
			if s.Kind == k {
				return true
			}
		}
		return false
	}
}

// list returns the subject's retained symptoms, granule-sorted. Shared
// internal state: same-package query helpers iterate it without copying.
func (h *History) list(subject FRUIndex) []Symptom { return h.bySubject[subject] }

// Window returns the subject's symptoms with granule in [from, to]
// (inclusive) that pass the filter.
func (h *History) Window(subject FRUIndex, from, to int64, f Filter) []Symptom {
	var out []Symptom
	for _, s := range h.bySubject[subject] {
		if s.Granule > to {
			break
		}
		if s.Granule >= from && (f == nil || f(s)) {
			out = append(out, s)
		}
	}
	return out
}

// Count sums the Count fields of matching symptoms in the window. The
// subject list is granule-sorted, so the scan stops at the window's end and
// allocates nothing — ONAs call this many times per epoch.
func (h *History) Count(subject FRUIndex, from, to int64, f Filter) int {
	n := 0
	for _, s := range h.bySubject[subject] {
		if s.Granule > to {
			break
		}
		if s.Granule >= from && (f == nil || f(s)) {
			n += int(s.Count)
		}
	}
	return n
}

// Observers returns the distinct observers reporting matching symptoms for
// the subject in the window.
func (h *History) Observers(subject FRUIndex, from, to int64, f Filter) []FRUIndex {
	var out []FRUIndex
	for _, s := range h.bySubject[subject] {
		if s.Granule > to {
			break
		}
		if s.Granule < from || (f != nil && !f(s)) {
			continue
		}
		dup := false
		for _, o := range out {
			if o == s.Observer {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, s.Observer)
		}
	}
	return out
}

// ActiveGranules returns the distinct granules with matching symptoms for
// the subject in the window, ascending. The list is granule-sorted, so
// distinctness is a comparison against the previous entry.
func (h *History) ActiveGranules(subject FRUIndex, from, to int64, f Filter) []int64 {
	var out []int64
	for _, s := range h.bySubject[subject] {
		if s.Granule > to {
			break
		}
		if s.Granule < from || (f != nil && !f(s)) {
			continue
		}
		if len(out) == 0 || out[len(out)-1] != s.Granule {
			out = append(out, s.Granule)
		}
	}
	return out
}

// MaxDeviation returns the maximum Deviation of matching symptoms in the
// window.
func (h *History) MaxDeviation(subject FRUIndex, from, to int64, f Filter) float64 {
	max := 0.0
	for _, s := range h.bySubject[subject] {
		if s.Granule > to {
			break
		}
		if s.Granule >= from && (f == nil || f(s)) {
			if d := float64(s.Deviation); d > max {
				max = d
			}
		}
	}
	return max
}
