package diagnosis

import (
	"testing"

	"decos/internal/clock"
	"decos/internal/component"
	"decos/internal/core"
	"decos/internal/faults"
	"decos/internal/sim"
	"decos/internal/tt"
	"decos/internal/vnet"
)

const (
	chSpeed vnet.ChannelID = 1
	chCmd   vnet.ChannelID = 2
	chBurst vnet.ChannelID = 10
)

// rig is the standard diagnostic test cluster: four components, a TT
// control DAS (sensor@0 → control@1 → actuator@2), an ET DAS (bursty@1 →
// sink@3), diagnostics hosted on component 3.
type rig struct {
	cl   *component.Cluster
	inj  *faults.Injector
	diag *Diagnostics
}

func newRig(t *testing.T, seed uint64) *rig {
	t.Helper()
	return newRigWithOptions(t, seed, Options{})
}

func newRigWithOptions(t *testing.T, seed uint64, opts Options) *rig {
	t.Helper()
	cfg := tt.UniformSchedule(4, 250*sim.Microsecond, 256)
	cl := component.NewCluster(cfg, seed)
	cl.Bus.Clocks = clock.NewCluster(4, 50, 0, 20, 1, cl.Streams.Stream("clocks"))
	c0 := cl.AddComponent(0, "c0", 0, 0)
	c1 := cl.AddComponent(1, "c1", 1, 0)
	c2 := cl.AddComponent(2, "c2", 5, 0)
	c3 := cl.AddComponent(3, "c3", 6, 0)

	cl.Env.DefineSine("speed", 30, 200*sim.Millisecond, 50)

	dasA := cl.AddDAS("A", component.NonSafetyCritical)
	nA := cl.AddNetwork(dasA, "A.tt", vnet.TimeTriggered)
	nA.AddEndpoint(0, 40, 0)
	nA.AddEndpoint(1, 40, 0)
	sensor := cl.AddJob(dasA, c0, "sensor", 0, &component.SensorJob{
		Signal: "speed", Out: chSpeed,
		PhysMin: -10, PhysMax: 110, FrozenWindow: 20,
	})
	control := cl.AddJob(dasA, c1, "control", 0,
		&component.ControlJob{In: chSpeed, Out: chCmd, Gain: 2, InMin: 0, InMax: 100})
	actuator := cl.AddJob(dasA, c2, "actuator", 0, &component.ActuatorJob{In: chCmd, Actuator: "brake"})
	cl.Produce(sensor, nA, component.ChannelSpec{
		Channel: chSpeed, Name: "speed", Min: 0, Max: 100,
		MaxAgeRounds: 3, StuckRounds: 20, Sensor: true,
	})
	cl.Produce(control, nA, component.ChannelSpec{Channel: chCmd, Name: "cmd", Min: 0, Max: 200, MaxAgeRounds: 3})
	cl.Subscribe(control, chSpeed, 0, true)
	cl.Subscribe(actuator, chCmd, 4, false)

	dasB := cl.AddDAS("B", component.NonSafetyCritical)
	nB := cl.AddNetwork(dasB, "B.et", vnet.EventTriggered)
	nB.AddEndpoint(1, 60, 16)
	bj := cl.AddJob(dasB, c1, "bursty", 1, &component.BurstyJob{Out: chBurst, MeanPerRound: 2})
	sj := cl.AddJob(dasB, c3, "sink", 1, &component.SinkJob{In: chBurst})
	cl.Produce(bj, nB, component.ChannelSpec{Channel: chBurst, Name: "burst", Min: -1e12, Max: 1e12})
	cl.Subscribe(sj, chBurst, 8, false)

	diag := Attach(cl, 3, opts)
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	return &rig{cl: cl, inj: faults.NewInjector(cl), diag: diag}
}

func (r *rig) verdict(t *testing.T, f core.FRU) Verdict {
	t.Helper()
	v, ok := r.diag.VerdictOf(f)
	if !ok {
		t.Fatalf("no verdict for %v; emitted: %v", f, r.diag.Assessor.Emitted())
	}
	return v
}

func (r *rig) jobFRU(das, name string) core.FRU {
	j := r.cl.DAS(das).JobNamed(name)
	return core.SoftwareFRU(int(j.Comp.ID), das+"/"+name)
}

func TestHealthyClusterStaysClean(t *testing.T) {
	r := newRig(t, 1)
	r.cl.RunRounds(1000)
	if n := len(r.diag.Assessor.Emitted()); n != 0 {
		t.Fatalf("healthy cluster produced %d verdicts: %v", n, r.diag.Assessor.Emitted())
	}
	for i := 0; i < r.diag.Reg.Len(); i++ {
		if tr := r.diag.Assessor.Trust(FRUIndex(i)); tr < 0.99 {
			t.Errorf("FRU %d trust = %v on healthy cluster", i, tr)
		}
	}
	if r.diag.Assessor.SymptomsReceived != 0 {
		t.Errorf("healthy cluster disseminated %d symptoms", r.diag.Assessor.SymptomsReceived)
	}
}

func TestPermanentFailSilentClassified(t *testing.T) {
	r := newRig(t, 2)
	r.inj.PermanentFailSilent(0, sim.Time(100*sim.Millisecond))
	r.cl.RunRounds(1000)
	v := r.verdict(t, core.HardwareFRU(0))
	if v.Class != core.ComponentInternal || v.Persistence != core.Permanent {
		t.Errorf("verdict = %v/%v (%s)", v.Class, v.Persistence, v.Pattern)
	}
	if v.Pattern != "permanent-silence" {
		t.Errorf("pattern = %s", v.Pattern)
	}
	if v.Action != core.ActionReplaceComponent {
		t.Errorf("action = %v", v.Action)
	}
	if tr := r.diag.TrustOf(core.HardwareFRU(0)); tr > 0.3 {
		t.Errorf("dead component trust = %v", tr)
	}
}

func TestDefectiveQuartzClassifiedAsSyncLoss(t *testing.T) {
	r := newRig(t, 3)
	r.inj.DefectiveQuartz(1, sim.Time(100*sim.Millisecond), 100_000)
	r.cl.RunRounds(1000)
	v := r.verdict(t, core.HardwareFRU(1))
	if v.Class != core.ComponentInternal || v.Pattern != "sync-loss" {
		t.Errorf("verdict = %v (%s)", v.Class, v.Pattern)
	}
}

func TestConnectorTxClassifiedBorderline(t *testing.T) {
	r := newRig(t, 4)
	r.inj.ConnectorTx(0, sim.Time(50*sim.Millisecond), 0, 0.3)
	r.cl.RunRounds(2000)
	v := r.verdict(t, core.HardwareFRU(0))
	if v.Class != core.ComponentBorderline || v.Pattern != "connector-tx" {
		t.Errorf("verdict = %v (%s)", v.Class, v.Pattern)
	}
	if v.Action != core.ActionInspectConnector {
		t.Errorf("action = %v", v.Action)
	}
}

func TestConnectorRxClassifiedBorderlineAtReceiver(t *testing.T) {
	r := newRig(t, 5)
	r.inj.ConnectorRx(1, sim.Time(50*sim.Millisecond), 0, 0.4)
	r.cl.RunRounds(2000)
	v := r.verdict(t, core.HardwareFRU(1))
	if v.Class != core.ComponentBorderline || v.Pattern != "connector-rx" {
		t.Errorf("verdict = %v (%s)", v.Class, v.Pattern)
	}
	// The senders it failed to hear must NOT be blamed.
	for _, other := range []int{0, 2} {
		if v, ok := r.diag.VerdictOf(core.HardwareFRU(other)); ok && v.Class != core.ComponentExternal {
			t.Errorf("innocent sender %d blamed: %v (%s)", other, v.Class, v.Pattern)
		}
	}
}

func TestEMIBurstClassifiedExternal(t *testing.T) {
	r := newRig(t, 6)
	r.inj.EMIBurst(sim.Time(150*sim.Millisecond), 0.5, 0, 2, 10*sim.Millisecond, 4)
	r.cl.RunRounds(1200)
	for _, n := range []int{0, 1} {
		v := r.verdict(t, core.HardwareFRU(n))
		if v.Class != core.ComponentExternal || v.Pattern != "massive-transient" {
			t.Errorf("component %d: verdict = %v (%s)", n, v.Class, v.Pattern)
		}
		if v.Action != core.ActionNone {
			t.Errorf("component %d: action = %v", n, v.Action)
		}
	}
	// Distant components unaffected.
	if _, ok := r.diag.VerdictOf(core.HardwareFRU(2)); ok {
		t.Error("distant component received a verdict")
	}
	// Trust of hit components recovers (external = transient).
	hw0, _ := r.diag.Reg.HardwareIndex(0)
	if tr := r.diag.Assessor.Trust(hw0); tr < 0.8 {
		t.Errorf("trust after external burst = %v, want recovery", tr)
	}
}

func TestPowerDipClassifiedExternal(t *testing.T) {
	r := newRig(t, 26)
	r.inj.PowerDip(1, sim.Time(200*sim.Millisecond), 50*sim.Millisecond)
	r.cl.RunRounds(1500)
	v := r.verdict(t, core.HardwareFRU(1))
	if v.Class != core.ComponentExternal {
		t.Errorf("verdict = %v (%s), want external (transient outage ≤ hypothesis bound)", v.Class, v.Pattern)
	}
	if v.Action != core.ActionNone {
		t.Errorf("action = %v", v.Action)
	}
	// The component is back and publishing (restart + state resync).
	round := r.cl.Round()
	if !r.cl.Bus.Membership(0).Member(1, round) {
		t.Error("component not reintegrated after dip")
	}
}

func TestSEUClassifiedIsolatedTransient(t *testing.T) {
	r := newRig(t, 7)
	r.inj.SEU(sim.Time(100*sim.Millisecond), 2)
	r.cl.RunRounds(1000)
	v := r.verdict(t, core.HardwareFRU(2))
	if v.Class != core.ComponentExternal || v.Pattern != "isolated-transient" {
		t.Errorf("verdict = %v (%s)", v.Class, v.Pattern)
	}
	if v.Action != core.ActionNone {
		t.Errorf("action = %v", v.Action)
	}
}

func TestWearoutClassifiedInternal(t *testing.T) {
	r := newRig(t, 8)
	acc := faults.WearoutAcceleration{
		Onset:           sim.Time(100 * sim.Millisecond),
		Tau:             400 * sim.Millisecond,
		BaseRatePerHour: 3600 * 4, // 4 episodes/s initially
		MaxFactor:       40,
	}
	r.inj.Wearout(0, acc, 3600*30) // sensor values drift upward
	r.cl.RunRounds(3000)           // 3 s
	v := r.verdict(t, core.HardwareFRU(0))
	if v.Class != core.ComponentInternal {
		t.Fatalf("verdict = %v (%s)", v.Class, v.Pattern)
	}
	if v.Pattern != "wearout" && v.Pattern != "recurrent-transient" {
		t.Errorf("pattern = %s", v.Pattern)
	}
	if v.Action != core.ActionReplaceComponent {
		t.Errorf("action = %v", v.Action)
	}
	// Fig. 9 trajectory A: trust declines.
	hw0, _ := r.diag.Reg.HardwareIndex(0)
	if tr := r.diag.Assessor.Trust(hw0); tr > 0.5 {
		t.Errorf("wearout trust = %v, want declining", tr)
	}
}

func TestIntermittentInternalClassified(t *testing.T) {
	r := newRig(t, 9)
	r.inj.IntermittentInternal(2, sim.Time(100*sim.Millisecond), 3600*6, 0)
	r.cl.RunRounds(2500)
	v := r.verdict(t, core.HardwareFRU(2))
	if v.Class != core.ComponentInternal {
		t.Errorf("verdict = %v (%s)", v.Class, v.Pattern)
	}
}

func TestMisconfiguredQueueClassifiedJobBorderline(t *testing.T) {
	r := newRig(t, 10)
	sink := r.cl.DAS("B").JobNamed("sink")
	r.inj.MisconfigureQueue(sink, chBurst, 1)
	r.cl.RunRounds(1500)
	v := r.verdict(t, r.jobFRU("B", "sink"))
	if v.Class != core.JobBorderline || v.Pattern != "configuration" {
		t.Errorf("verdict = %v (%s)", v.Class, v.Pattern)
	}
	if v.Action != core.ActionUpdateConfiguration {
		t.Errorf("action = %v", v.Action)
	}
	// The (conforming) producer is not blamed.
	if v, ok := r.diag.VerdictOf(r.jobFRU("B", "bursty")); ok {
		t.Errorf("conforming producer blamed: %v (%s)", v.Class, v.Pattern)
	}
}

func TestBohrbugClassifiedJobInherent(t *testing.T) {
	r := newRig(t, 11)
	sensor := r.cl.DAS("A").JobNamed("sensor")
	r.inj.Bohrbug(sensor, chSpeed, func(v float64, now sim.Time) bool { return v > 60 }, 400)
	r.cl.RunRounds(2000)
	v := r.verdict(t, r.jobFRU("A", "sensor"))
	if v.Class != core.JobInherent && v.Class != core.JobInherentSensor {
		t.Fatalf("verdict = %v (%s)", v.Class, v.Pattern)
	}
	// Downstream control job (validates inputs) is not blamed.
	if v, ok := r.diag.VerdictOf(r.jobFRU("A", "control")); ok {
		t.Errorf("downstream job blamed: %v (%s)", v.Class, v.Pattern)
	}
	// The hosting component's hardware is not blamed.
	if v, ok := r.diag.VerdictOf(core.HardwareFRU(0)); ok && v.Class != core.ComponentExternal {
		t.Errorf("hardware blamed for software fault: %v (%s)", v.Class, v.Pattern)
	}
}

func TestHeisenbugClassifiedJobInherent(t *testing.T) {
	r := newRig(t, 12)
	sensor := r.cl.DAS("A").JobNamed("sensor")
	r.inj.Heisenbug(sensor, chSpeed, 0.05, 500, false)
	r.cl.RunRounds(3000)
	v := r.verdict(t, r.jobFRU("A", "sensor"))
	if v.Class != core.JobInherent && v.Class != core.JobInherentSensor {
		t.Errorf("verdict = %v (%s)", v.Class, v.Pattern)
	}
}

func TestJobCrashClassifiedJobInherent(t *testing.T) {
	r := newRig(t, 13)
	sensor := r.cl.DAS("A").JobNamed("sensor")
	r.inj.JobCrash(sensor, sim.Time(200*sim.Millisecond))
	r.cl.RunRounds(1500)
	v := r.verdict(t, r.jobFRU("A", "sensor"))
	if v.Class != core.JobInherent && v.Class != core.JobInherentSensor {
		t.Errorf("verdict = %v (%s)", v.Class, v.Pattern)
	}
}

func TestSensorStuckClassifiedSensor(t *testing.T) {
	r := newRig(t, 14)
	sensor := r.cl.DAS("A").JobNamed("sensor")
	r.inj.SensorStuck(sensor, sim.Time(200*sim.Millisecond), 77)
	r.cl.RunRounds(2500)
	v := r.verdict(t, r.jobFRU("A", "sensor"))
	if v.Class != core.JobInherentSensor {
		t.Errorf("verdict = %v (%s), want sensor subclass", v.Class, v.Pattern)
	}
	if v.Action != core.ActionInspectTransducer {
		t.Errorf("action = %v", v.Action)
	}
}

func TestSensorDriftClassifiedInherent(t *testing.T) {
	r := newRig(t, 15)
	sensor := r.cl.DAS("A").JobNamed("sensor")
	r.inj.SensorDrift(sensor, sim.Time(100*sim.Millisecond), 3600*60) // +60/s
	r.cl.RunRounds(3000)
	v := r.verdict(t, r.jobFRU("A", "sensor"))
	// Drift exits the spec range → value violations confined to one job.
	if v.Class != core.JobInherent && v.Class != core.JobInherentSensor {
		t.Errorf("verdict = %v (%s)", v.Class, v.Pattern)
	}
	truth := core.JobInherentSensor
	if !truth.Matches(v.Class) {
		t.Errorf("verdict %v does not match ground truth", v.Class)
	}
}

func TestVerdictClearedAfterRepair(t *testing.T) {
	r := newRig(t, 16)
	r.inj.PermanentFailSilent(0, sim.Time(50*sim.Millisecond))
	r.cl.RunRounds(600)
	hw0, _ := r.diag.Reg.HardwareIndex(0)
	if _, ok := r.diag.Assessor.Current(hw0); !ok {
		t.Fatal("no verdict before repair")
	}
	// Repair: replace the component.
	r.cl.Bus.SetAlive(0, true)
	r.diag.Assessor.ClearVerdict(hw0)
	if _, ok := r.diag.Assessor.Current(hw0); ok {
		t.Error("verdict survives ClearVerdict")
	}
	if r.diag.Assessor.Trust(hw0) != 1 {
		t.Error("trust not restored")
	}
	r.cl.RunRounds(600)
	if v, ok := r.diag.Assessor.Current(hw0); ok && v.Class != core.ComponentExternal {
		t.Errorf("repaired component re-accused: %v (%s)", v.Class, v.Pattern)
	}
}

func TestDiagnosticTrafficFlows(t *testing.T) {
	r := newRig(t, 17)
	r.inj.ConnectorTx(0, sim.Time(50*sim.Millisecond), 0, 0.3)
	r.cl.RunRounds(500)
	if r.diag.Assessor.SymptomsReceived == 0 {
		t.Fatal("no symptoms reached the assessor")
	}
	sent := 0
	for _, m := range r.diag.Monitors {
		sent += m.SymptomsSent
	}
	if sent == 0 {
		t.Fatal("monitors sent nothing")
	}
	if r.diag.Assessor.SymptomsReceived > sent {
		t.Errorf("received %d > sent %d", r.diag.Assessor.SymptomsReceived, sent)
	}
}

func TestRegistryBasics(t *testing.T) {
	r := newRig(t, 18)
	reg := r.diag.Reg
	if reg.Len() != 4+5 { // 4 components + 5 jobs
		t.Errorf("registry size = %d, want 9", reg.Len())
	}
	if len(reg.HardwareFRUs()) != 4 || len(reg.SoftwareFRUs()) != 5 {
		t.Error("FRU partition wrong")
	}
	hw1, ok := reg.HardwareIndex(1)
	if !ok {
		t.Fatal("no hardware index for node 1")
	}
	jobs := reg.JobsOn(hw1)
	if len(jobs) != 2 { // control + bursty
		t.Errorf("jobs on c1 = %d, want 2", len(jobs))
	}
	for _, j := range jobs {
		if reg.HostOf(j) != hw1 {
			t.Error("HostOf wrong")
		}
	}
	if reg.HostOf(hw1) != hw1 {
		t.Error("HostOf(hardware) != self")
	}
	if d := reg.Distance(hw1, hw1); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	meta, ok := reg.Channel(chSpeed)
	if !ok || !meta.Spec.Sensor || meta.DAS != "A" {
		t.Errorf("channel meta wrong: %+v ok=%v", meta, ok)
	}
	if n, ok := reg.Node(hw1); !ok || n != 1 {
		t.Error("Node lookup wrong")
	}
	if reg.DASOf(jobs[0]) == "" {
		t.Error("DASOf empty for software FRU")
	}
}

func TestTrustTrajectoriesFig9(t *testing.T) {
	// Trajectory A: degrading FRU (wearout) — trust declines steadily.
	// Trajectory B: FRU under brief external disturbance — dips, recovers.
	r := newRig(t, 19)
	acc := faults.WearoutAcceleration{
		Onset: sim.Time(100 * sim.Millisecond), Tau: 400 * sim.Millisecond,
		BaseRatePerHour: 3600 * 4, MaxFactor: 40,
	}
	r.inj.Wearout(0, acc, 0)
	r.inj.EMIBurst(sim.Time(300*sim.Millisecond), 5.5, 0, 1.2, 10*sim.Millisecond, 4)
	// (burst hits components 2 and 3 at x=5,6)
	r.cl.RunRounds(3000)

	hw0, _ := r.diag.Reg.HardwareIndex(0)
	hw2, _ := r.diag.Reg.HardwareIndex(2)
	histA := r.diag.Assessor.TrustHistory(hw0)
	histB := r.diag.Assessor.TrustHistory(hw2)
	if len(histA) < 10 || len(histB) < 10 {
		t.Fatalf("trust histories too short: %d, %d", len(histA), len(histB))
	}
	if final := histA[len(histA)-1].Trust; final > 0.4 {
		t.Errorf("trajectory A final trust = %v, want low", final)
	}
	// B dipped below 1 at some point but recovered.
	minB := core.TrustLevel(1)
	for _, p := range histB {
		if p.Trust < minB {
			minB = p.Trust
		}
	}
	if minB >= 1 {
		t.Error("trajectory B never dipped")
	}
	if final := histB[len(histB)-1].Trust; final < 0.9 {
		t.Errorf("trajectory B final trust = %v, want recovered", final)
	}
}
