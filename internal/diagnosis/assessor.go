package diagnosis

import (
	"decos/internal/core"
	"decos/internal/sim"
	"decos/internal/vnet"
)

// Options tunes the diagnostic subsystem. Zero values are replaced by the
// defaults of DefaultOptions.
type Options struct {
	// EpochRounds is the assessment period: ONAs are evaluated and trust
	// levels updated every EpochRounds TDMA rounds.
	EpochRounds int64
	// WindowGranules is the ONA lookback horizon.
	WindowGranules int64
	// RetainGranules bounds the distributed-state history.
	RetainGranules int64
	// ProximityRadius is the spatial-correlation radius of the
	// massive-transient pattern.
	ProximityRadius float64
	// BurstGranules is the temporal delta of the massive-transient
	// pattern ("approximately at the same time").
	BurstGranules int64
	// MultiBitThreshold is the flipped-bit count separating multi-bit
	// (EMI) from single-bit (SEU) corruption.
	MultiBitThreshold float64
	// PermanentWindow and PermanentDuty define continuous service loss.
	PermanentWindow int64
	PermanentDuty   float64
	// RiseFactor is the episode-rate growth identifying wearout.
	RiseFactor float64
	// AlphaK and AlphaThreshold parameterize the α-count mechanism.
	AlphaK         float64
	AlphaThreshold float64
	// MinRecurrentGranules is the minimum distinct symptomatic granules
	// for recurrence-based patterns.
	MinRecurrentGranules int
	// OverflowMin is the minimum overflow count for a configuration
	// verdict.
	OverflowMin int
	// DiagAllocBytes and DiagQueueCap dimension the virtual diagnostic
	// network per component.
	DiagAllocBytes int
	DiagQueueCap   int
	// DiagChannelBase is the first channel id of the diagnostic network.
	DiagChannelBase vnet.ChannelID
	// UpdateAvailable reports whether the OEM has released a corrected
	// version of a software FRU (drives update-software vs
	// forward-to-OEM). Nil means no updates available.
	UpdateAvailable func(core.FRU) bool
	// JobInternalAssertions enables the Section III-D extension: monitors
	// query jobs implementing component.SelfChecker, and the job-inherent
	// verdict splits exactly into the software and transducer subclasses.
	JobInternalAssertions bool
	// KeepMonitorLogs retains every emitted symptom on each monitor.
	KeepMonitorLogs bool
}

// DefaultOptions returns the tuning used throughout the experiments.
func DefaultOptions() Options {
	return Options{
		EpochRounds:       50,
		WindowGranules:    400,
		RetainGranules:    1200,
		ProximityRadius:   3.0,
		BurstGranules:     15,
		MultiBitThreshold: 2,
		// The fault hypothesis bounds transient outages at 50 ms (50
		// granules); continuous loss must persist well beyond that before
		// it counts as permanent.
		PermanentWindow:      80,
		PermanentDuty:        0.9,
		RiseFactor:           2,
		AlphaK:               0.9,
		AlphaThreshold:       2.5,
		MinRecurrentGranules: 3,
		OverflowMin:          3,
		DiagAllocBytes:       64,
		DiagQueueCap:         512,
		DiagChannelBase:      60000,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.EpochRounds <= 0 {
		o.EpochRounds = d.EpochRounds
	}
	if o.WindowGranules <= 0 {
		o.WindowGranules = d.WindowGranules
	}
	if o.RetainGranules <= 0 {
		o.RetainGranules = d.RetainGranules
	}
	if o.ProximityRadius <= 0 {
		o.ProximityRadius = d.ProximityRadius
	}
	if o.BurstGranules <= 0 {
		o.BurstGranules = d.BurstGranules
	}
	if o.MultiBitThreshold <= 0 {
		o.MultiBitThreshold = d.MultiBitThreshold
	}
	if o.PermanentWindow <= 0 {
		o.PermanentWindow = d.PermanentWindow
	}
	if o.PermanentDuty <= 0 {
		o.PermanentDuty = d.PermanentDuty
	}
	if o.RiseFactor <= 0 {
		o.RiseFactor = d.RiseFactor
	}
	if o.AlphaK <= 0 {
		o.AlphaK = d.AlphaK
	}
	if o.AlphaThreshold <= 0 {
		o.AlphaThreshold = d.AlphaThreshold
	}
	if o.MinRecurrentGranules <= 0 {
		o.MinRecurrentGranules = d.MinRecurrentGranules
	}
	if o.OverflowMin <= 0 {
		o.OverflowMin = d.OverflowMin
	}
	if o.DiagAllocBytes <= 0 {
		o.DiagAllocBytes = d.DiagAllocBytes
	}
	if o.DiagQueueCap <= 0 {
		o.DiagQueueCap = d.DiagQueueCap
	}
	if o.DiagChannelBase == 0 {
		o.DiagChannelBase = d.DiagChannelBase
	}
	return o
}

// Verdict is one classification of one FRU by the diagnostic DAS.
type Verdict struct {
	Epoch       int64
	At          sim.Time
	Subject     FRUIndex
	FRU         core.FRU
	Class       core.FaultClass
	Persistence core.Persistence
	Pattern     string
	Confidence  float64
	Action      core.MaintenanceAction
}

// TrustPoint is one sample of a FRU's trust trajectory (Fig. 9).
type TrustPoint struct {
	At      sim.Time
	Granule int64
	Trust   core.TrustLevel
}

// Assessor is the analysis stage of the diagnostic DAS: it consumes the
// symptom stream from the virtual diagnostic network, maintains the
// distributed-state history, α-counts and per-FRU trust levels, and
// evaluates the ONA suite at every assessment epoch.
type Assessor struct {
	Reg   *Registry
	Hist  *History
	Alpha *AlphaCount
	SW    *AlphaCount

	onas []ONA
	opts Options

	ports []*vnet.InPort

	trust     map[FRUIndex]float64
	trustHist map[FRUIndex][]TrustPoint
	current   map[FRUIndex]Verdict
	emitted   []Verdict
	epoch     int64

	// Epoch evaluation scratch, reused every epoch: the context (and its
	// ONA scratch), the per-epoch finding map and the subject sort buffer.
	evalCtx     *EvalContext
	decided     map[FRUIndex]Finding
	subjectsBuf []FRUIndex

	// SymptomsReceived counts decoded symptom records.
	SymptomsReceived int
	// DecodeFailures counts undecodable diagnostic messages (corrupted
	// diagnostic traffic).
	DecodeFailures int

	symptomHooks []func(Symptom)
}

// OnSymptom registers a callback invoked for every ingested symptom (trace
// recording, live dashboards).
func (a *Assessor) OnSymptom(f func(Symptom)) { a.symptomHooks = append(a.symptomHooks, f) }

// NewAssessor creates an assessor over the given registry.
func NewAssessor(reg *Registry, opts Options) *Assessor {
	opts = opts.withDefaults()
	a := &Assessor{
		Reg:       reg,
		Hist:      NewHistory(opts.RetainGranules),
		Alpha:     NewAlphaCount(opts.AlphaK, opts.AlphaThreshold),
		SW:        NewAlphaCount(opts.AlphaK, opts.AlphaThreshold),
		onas:      DefaultONAs(),
		opts:      opts,
		trust:     make(map[FRUIndex]float64),
		trustHist: make(map[FRUIndex][]TrustPoint),
		current:   make(map[FRUIndex]Verdict),
		decided:   make(map[FRUIndex]Finding),
	}
	a.evalCtx = &EvalContext{
		Hist:      a.Hist,
		Reg:       a.Reg,
		Alpha:     a.Alpha,
		SW:        a.SW,
		Window:    a.opts.WindowGranules,
		Opts:      a.opts,
		Explained: make(map[FRUIndex]bool),
		Decided:   make(map[FRUIndex]core.FaultClass),
	}
	for i := 0; i < reg.Len(); i++ {
		a.trust[FRUIndex(i)] = 1
	}
	return a
}

// Options returns the effective (defaulted) options.
func (a *Assessor) Options() Options { return a.opts }

// Ingest adds one symptom to the distributed state (used directly by tests
// and by the fast-path campaign driver; the attached cluster path goes
// through the diagnostic network ports).
func (a *Assessor) Ingest(s Symptom) {
	a.Hist.Add(s)
	a.SymptomsReceived++
	for _, f := range a.symptomHooks {
		f(s)
	}
}

// drainPorts decodes everything queued on the diagnostic in-ports.
func (a *Assessor) drainPorts() {
	for _, p := range a.ports {
		for {
			m, ok := p.Receive()
			if !ok {
				break
			}
			s, ok := DecodeSymptom(m.Payload)
			if !ok {
				a.DecodeFailures++
				continue
			}
			a.Ingest(s)
		}
	}
}

// onRound is invoked once per TDMA round by the attached cluster.
func (a *Assessor) onRound(round int64, now sim.Time) {
	a.drainPorts()
	if (round+1)%a.opts.EpochRounds == 0 {
		a.evaluateEpoch(round, now)
	}
}

// EvaluateNow forces an epoch evaluation at the given granule/time (used by
// the fast-path campaign driver).
func (a *Assessor) EvaluateNow(granule int64, now sim.Time) {
	a.evaluateEpoch(granule, now)
}

func (a *Assessor) evaluateEpoch(granule int64, now sim.Time) {
	a.epoch++
	ctx := a.evalCtx
	ctx.Granule = granule
	clear(ctx.Explained)
	clear(ctx.Decided)

	decided := a.decided
	clear(decided)
	// Gating assertions first: spatial correlation (massive transient)
	// and receiver-side connector attribution. Both also gate the α-count
	// update, so symptoms they explain do not accumulate as recurrence
	// evidence against the FRUs they name.
	for _, ona := range a.onas[:GatingONAs] {
		for _, f := range ona.Evaluate(ctx) {
			if _, dup := decided[f.Subject]; dup {
				continue
			}
			decided[f.Subject] = f
			ctx.Explained[f.Subject] = true
			ctx.Decided[f.Subject] = f.Class
			for _, e := range f.Explains {
				if _, dup := decided[e]; !dup {
					ctx.Explained[e] = true
				}
			}
		}
	}

	// α-count step over this epoch's evidence.
	epochFrom := granule - a.opts.EpochRounds + 1
	if epochFrom < 0 {
		epochFrom = 0
	}
	for _, hw := range a.Reg.HardwareFRUs() {
		erroneous := !ctx.Explained[hw] && a.Hist.Count(hw, epochFrom, granule, frameLevel) > 0
		a.Alpha.Step(hw, erroneous, 1)
	}
	for _, sw := range a.Reg.SoftwareFRUs() {
		erroneous := a.Hist.Count(sw, epochFrom, granule, valueViolation) > 0
		a.SW.Step(sw, erroneous, 1)
	}

	// Remaining assertions in priority order.
	for _, ona := range a.onas[GatingONAs:] {
		for _, f := range ona.Evaluate(ctx) {
			if _, dup := decided[f.Subject]; dup || ctx.Explained[f.Subject] {
				continue
			}
			decided[f.Subject] = f
			ctx.Decided[f.Subject] = f.Class
			for _, e := range f.Explains {
				if _, dup := decided[e]; !dup {
					ctx.Explained[e] = true
				}
			}
		}
	}

	// Emit verdicts (deterministic order).
	subjects := a.subjectsBuf[:0]
	for s := range decided {
		subjects = append(subjects, s)
	}
	for i := 1; i < len(subjects); i++ {
		for j := i; j > 0 && subjects[j] < subjects[j-1]; j-- {
			subjects[j], subjects[j-1] = subjects[j-1], subjects[j]
		}
	}
	a.subjectsBuf = subjects[:0]
	for _, s := range subjects {
		f := decided[s]
		fru := a.Reg.FRU(s)
		update := false
		if a.opts.UpdateAvailable != nil {
			update = a.opts.UpdateAvailable(fru)
		}
		// The merged inherent verdict consults the software-update flag
		// too: with an acknowledged update the software subclass is
		// implied.
		actionClass := f.Class
		if f.Class == core.JobInherent && update {
			actionClass = core.JobInherentSoftware
		}
		v := Verdict{
			Epoch:       a.epoch,
			At:          now,
			Subject:     s,
			FRU:         fru,
			Class:       f.Class,
			Persistence: f.Persistence,
			Pattern:     f.Pattern,
			Confidence:  f.Confidence,
			Action:      core.ActionFor(actionClass, update),
		}
		prev, had := a.current[s]
		a.current[s] = v
		if !had || prev.Class != v.Class || prev.Pattern != v.Pattern {
			a.emitted = append(a.emitted, v)
		}
	}

	a.updateTrust(decided, granule, now, epochFrom)
}

func (a *Assessor) updateTrust(decided map[FRUIndex]Finding, granule int64, now sim.Time, epochFrom int64) {
	for i := 0; i < a.Reg.Len(); i++ {
		f := FRUIndex(i)
		var weight int
		if a.Reg.IsHardware(f) {
			weight = a.Hist.Count(f, epochFrom, granule, frameLevel)
		} else {
			weight = a.Hist.Count(f, epochFrom, granule, trustValueKinds)
		}
		t := a.trust[f]
		if weight == 0 {
			t += 0.1 * (1 - t)
		} else {
			sev := float64(weight) / 20
			if sev > 1 {
				sev = 1
			}
			impact := 0.35
			if v, ok := decided[f]; ok && v.Class == core.ComponentExternal {
				impact = 0.12 // external hits erode confidence only briefly
			}
			t -= impact * sev
		}
		t = float64(core.TrustLevel(t).Clamp())
		a.trust[f] = t
		a.trustHist[f] = append(a.trustHist[f], TrustPoint{At: now, Granule: granule, Trust: core.TrustLevel(t)})
	}
}

// Trust returns the FRU's current trust level.
func (a *Assessor) Trust(f FRUIndex) core.TrustLevel {
	return core.TrustLevel(a.trust[f])
}

// TrustHistory returns the FRU's trust trajectory, one point per epoch.
func (a *Assessor) TrustHistory(f FRUIndex) []TrustPoint { return a.trustHist[f] }

// Current returns the FRU's standing verdict.
func (a *Assessor) Current(f FRUIndex) (Verdict, bool) {
	v, ok := a.current[f]
	return v, ok
}

// CurrentAll returns the standing verdict of every FRU that has one, in
// subject order.
func (a *Assessor) CurrentAll() []Verdict {
	var out []Verdict
	for i := 0; i < a.Reg.Len(); i++ {
		if v, ok := a.current[FRUIndex(i)]; ok {
			out = append(out, v)
		}
	}
	return out
}

// Emitted returns every verdict emission (first classifications and class
// changes) in order.
func (a *Assessor) Emitted() []Verdict { return a.emitted }

// Epoch returns the number of completed assessment epochs.
func (a *Assessor) Epoch() int64 { return a.epoch }

// ClearVerdict forgets the FRU's verdict and resets its recurrence scores
// (after a repair action).
func (a *Assessor) ClearVerdict(f FRUIndex) {
	delete(a.current, f)
	a.Alpha.Reset(f)
	a.SW.Reset(f)
	a.trust[f] = 1
}
