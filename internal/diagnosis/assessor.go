package diagnosis

import (
	"time"

	"decos/internal/core"
	"decos/internal/sim"
	"decos/internal/vnet"
)

// Options tunes the diagnostic subsystem. Zero values are replaced by the
// defaults of DefaultOptions.
type Options struct {
	// EpochRounds is the assessment period: ONAs are evaluated and trust
	// levels updated every EpochRounds TDMA rounds.
	EpochRounds int64
	// WindowGranules is the ONA lookback horizon.
	WindowGranules int64
	// RetainGranules bounds the distributed-state history.
	RetainGranules int64
	// ProximityRadius is the spatial-correlation radius of the
	// massive-transient pattern.
	ProximityRadius float64
	// BurstGranules is the temporal delta of the massive-transient
	// pattern ("approximately at the same time").
	BurstGranules int64
	// MultiBitThreshold is the flipped-bit count separating multi-bit
	// (EMI) from single-bit (SEU) corruption.
	MultiBitThreshold float64
	// PermanentWindow and PermanentDuty define continuous service loss.
	PermanentWindow int64
	PermanentDuty   float64
	// RiseFactor is the episode-rate growth identifying wearout.
	RiseFactor float64
	// AlphaK and AlphaThreshold parameterize the α-count mechanism.
	AlphaK         float64
	AlphaThreshold float64
	// MinRecurrentGranules is the minimum distinct symptomatic granules
	// for recurrence-based patterns.
	MinRecurrentGranules int
	// OverflowMin is the minimum overflow count for a configuration
	// verdict.
	OverflowMin int
	// DiagAllocBytes and DiagQueueCap dimension the virtual diagnostic
	// network per component.
	DiagAllocBytes int
	DiagQueueCap   int
	// DiagChannelBase is the first channel id of the diagnostic network.
	DiagChannelBase vnet.ChannelID
	// UpdateAvailable reports whether the OEM has released a corrected
	// version of a software FRU (drives update-software vs
	// forward-to-OEM). Nil means no updates available.
	UpdateAvailable func(core.FRU) bool
	// JobInternalAssertions enables the Section III-D extension: monitors
	// query jobs implementing component.SelfChecker, and the job-inherent
	// verdict splits exactly into the software and transducer subclasses.
	JobInternalAssertions bool
	// KeepMonitorLogs retains every emitted symptom on each monitor.
	KeepMonitorLogs bool
}

// DefaultOptions returns the tuning used throughout the experiments.
func DefaultOptions() Options {
	return Options{
		EpochRounds:       50,
		WindowGranules:    400,
		RetainGranules:    1200,
		ProximityRadius:   3.0,
		BurstGranules:     15,
		MultiBitThreshold: 2,
		// The fault hypothesis bounds transient outages at 50 ms (50
		// granules); continuous loss must persist well beyond that before
		// it counts as permanent.
		PermanentWindow:      80,
		PermanentDuty:        0.9,
		RiseFactor:           2,
		AlphaK:               0.9,
		AlphaThreshold:       2.5,
		MinRecurrentGranules: 3,
		OverflowMin:          3,
		DiagAllocBytes:       64,
		DiagQueueCap:         512,
		DiagChannelBase:      60000,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.EpochRounds <= 0 {
		o.EpochRounds = d.EpochRounds
	}
	if o.WindowGranules <= 0 {
		o.WindowGranules = d.WindowGranules
	}
	if o.RetainGranules <= 0 {
		o.RetainGranules = d.RetainGranules
	}
	if o.ProximityRadius <= 0 {
		o.ProximityRadius = d.ProximityRadius
	}
	if o.BurstGranules <= 0 {
		o.BurstGranules = d.BurstGranules
	}
	if o.MultiBitThreshold <= 0 {
		o.MultiBitThreshold = d.MultiBitThreshold
	}
	if o.PermanentWindow <= 0 {
		o.PermanentWindow = d.PermanentWindow
	}
	if o.PermanentDuty <= 0 {
		o.PermanentDuty = d.PermanentDuty
	}
	if o.RiseFactor <= 0 {
		o.RiseFactor = d.RiseFactor
	}
	if o.AlphaK <= 0 {
		o.AlphaK = d.AlphaK
	}
	if o.AlphaThreshold <= 0 {
		o.AlphaThreshold = d.AlphaThreshold
	}
	if o.MinRecurrentGranules <= 0 {
		o.MinRecurrentGranules = d.MinRecurrentGranules
	}
	if o.OverflowMin <= 0 {
		o.OverflowMin = d.OverflowMin
	}
	if o.DiagAllocBytes <= 0 {
		o.DiagAllocBytes = d.DiagAllocBytes
	}
	if o.DiagQueueCap <= 0 {
		o.DiagQueueCap = d.DiagQueueCap
	}
	if o.DiagChannelBase == 0 {
		o.DiagChannelBase = d.DiagChannelBase
	}
	return o
}

// Verdict is one classification of one FRU by the diagnostic DAS.
type Verdict struct {
	Epoch       int64
	At          sim.Time
	Subject     FRUIndex
	FRU         core.FRU
	Class       core.FaultClass
	Persistence core.Persistence
	Pattern     string
	Confidence  float64
	Action      core.MaintenanceAction
}

// TrustPoint is one sample of a FRU's trust trajectory (Fig. 9).
type TrustPoint struct {
	At      sim.Time
	Granule int64
	Trust   core.TrustLevel
}

// Assessor is the analysis stage of the diagnostic DAS, assembled as the
// explicit three-stage evidence pipeline of Fig. 9–11: the embedded
// Collector ingests the symptom stream from the virtual diagnostic
// network into the distributed-state history, the Classifier concludes
// per-FRU findings at every assessment epoch, and the embedded Adviser
// derives maintenance actions and maintains per-FRU trust trajectories.
// The hand-offs are typed — swap the classification stage (SetClassifier,
// engine.WithClassifier) and the same collector and adviser, including
// their trace attach points, run a different diagnoser.
type Assessor struct {
	Reg *Registry
	*Collector
	*Adviser

	// Alpha and SW are the recurrence counters handed to the classifier
	// through the evaluation context: hardware FRUs score frame-level
	// evidence, software FRUs value-domain evidence.
	Alpha *AlphaCount
	SW    *AlphaCount

	classifier Classifier
	opts       Options
	evalCtx    *EvalContext
	stageTimer func(stage Stage, wallNS int64)
}

// Stage identifies one stage of the assessment pipeline for telemetry.
type Stage uint8

const (
	// StageCollect is the per-round symptom drain off the virtual
	// diagnostic network.
	StageCollect Stage = iota
	// StageClassify is the per-epoch ONA/classifier evaluation.
	StageClassify
	// StageAdvise is the per-epoch verdict derivation and trust update.
	StageAdvise
	// NumStages is the stage count, for sizing lookup tables.
	NumStages
)

// NewAssessor creates an assessor over the given registry, wired as the
// default DECOS pipeline (fault-model classifier).
func NewAssessor(reg *Registry, opts Options) *Assessor {
	opts = opts.withDefaults()
	a := &Assessor{
		Reg:        reg,
		Collector:  NewCollector(opts.RetainGranules),
		Adviser:    NewAdviser(reg, opts),
		Alpha:      NewAlphaCount(opts.AlphaK, opts.AlphaThreshold),
		SW:         NewAlphaCount(opts.AlphaK, opts.AlphaThreshold),
		classifier: NewFaultModelClassifier(),
		opts:       opts,
	}
	a.evalCtx = &EvalContext{
		Hist:      a.Hist,
		Reg:       a.Reg,
		Alpha:     a.Alpha,
		SW:        a.SW,
		Window:    a.opts.WindowGranules,
		Opts:      a.opts,
		Explained: make(map[FRUIndex]bool),
		Decided:   make(map[FRUIndex]core.FaultClass),
	}
	return a
}

// Options returns the effective (defaulted) options.
func (a *Assessor) Options() Options { return a.opts }

// SetClassifier swaps the pipeline's classification stage (nil restores
// the DECOS fault-model classifier). Call it before the first assessment
// epoch runs.
func (a *Assessor) SetClassifier(c Classifier) {
	if c == nil {
		c = NewFaultModelClassifier()
	}
	a.classifier = c
}

// Classifier returns the active classification stage.
func (a *Assessor) Classifier() Classifier { return a.classifier }

// OnStageTiming registers a wall-clock observer of the pipeline stages:
// f(stage, ns) fires after every stage execution — the collect stage once
// per round, classify and advise once per assessment epoch. With no
// observer registered (the default) the pipeline takes no timestamps at
// all, so the disabled path stays free; timings are wall-clock and never
// influence simulated behaviour.
func (a *Assessor) OnStageTiming(f func(stage Stage, wallNS int64)) { a.stageTimer = f }

// onRound is invoked once per TDMA round by the attached cluster.
func (a *Assessor) onRound(round int64, now sim.Time) {
	if a.stageTimer != nil {
		t0 := time.Now()
		a.Drain()
		a.stageTimer(StageCollect, time.Since(t0).Nanoseconds())
	} else {
		a.Drain()
	}
	if (round+1)%a.opts.EpochRounds == 0 {
		a.evaluateEpoch(round, now)
	}
}

// EvaluateNow forces an epoch evaluation at the given granule/time (used by
// the fast-path campaign driver).
func (a *Assessor) EvaluateNow(granule int64, now sim.Time) {
	a.evaluateEpoch(granule, now)
}

// evaluateEpoch runs one classify → advise pass over the collected state.
func (a *Assessor) evaluateEpoch(granule int64, now sim.Time) {
	ctx := a.evalCtx
	ctx.Granule = granule
	clear(ctx.Explained)
	clear(ctx.Decided)
	if a.stageTimer == nil {
		a.Adviser.Advance(ctx, a.classifier.Classify(ctx), now)
		return
	}
	t0 := time.Now()
	findings := a.classifier.Classify(ctx)
	t1 := time.Now()
	a.stageTimer(StageClassify, t1.Sub(t0).Nanoseconds())
	a.Adviser.Advance(ctx, findings, now)
	a.stageTimer(StageAdvise, time.Since(t1).Nanoseconds())
}

// ClearVerdict forgets the FRU's verdict and resets its recurrence scores
// (after a repair action).
func (a *Assessor) ClearVerdict(f FRUIndex) {
	a.Forget(f)
	a.Alpha.Reset(f)
	a.SW.Reset(f)
}
