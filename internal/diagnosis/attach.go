package diagnosis

import (
	"decos/internal/component"
	"decos/internal/core"
	"decos/internal/sim"
	"decos/internal/tt"
	"decos/internal/vnet"
)

// Diagnostics is the fully wired integrated diagnostic architecture on one
// cluster: per-component monitors, the virtual diagnostic network, and the
// assessor of the diagnostic DAS.
type Diagnostics struct {
	Reg      *Registry
	Assessor *Assessor
	Monitors []*Monitor
	Net      *vnet.Network
	// Node hosts the diagnostic DAS's analysis stage.
	Node tt.NodeID

	cl   *component.Cluster
	opts Options
}

// Attach builds the diagnostic architecture on a cluster. It must be called
// after all application DASs, jobs, channels and subscriptions are
// configured, and before the cluster is started (the diagnostic network
// needs its frame segment).
func Attach(cl *component.Cluster, diagNode tt.NodeID, opts Options) *Diagnostics {
	opts = opts.withDefaults()
	reg := NewRegistry(cl)

	// The dedicated virtual diagnostic network: an event-triggered channel
	// per component, all consumed by the diagnostic DAS.
	net := vnet.NewNetwork("diagnosis", vnet.EventTriggered, "diagnosis")
	cl.Fabric.AddNetwork(net)
	comps := cl.Components()
	for _, c := range comps {
		net.AddEndpoint(c.ID, opts.DiagAllocBytes, opts.DiagQueueCap)
		net.DeclareChannel(opts.DiagChannelBase+vnet.ChannelID(c.ID), c.ID)
	}

	assessor := NewAssessor(reg, opts)
	for _, c := range comps {
		ch := opts.DiagChannelBase + vnet.ChannelID(c.ID)
		assessor.Subscribe(cl.Fabric.Subscribe(diagNode, ch, 0, false))
	}

	d := &Diagnostics{
		Reg:      reg,
		Assessor: assessor,
		Net:      net,
		Node:     diagNode,
		cl:       cl,
		opts:     opts,
	}

	for _, c := range comps {
		d.Monitors = append(d.Monitors, d.buildMonitor(c))
	}

	// Frame-level observation: dispatch each receiver's view to its
	// monitor.
	cl.Bus.Observe(func(f *tt.Frame, per []tt.FrameStatus) {
		for _, m := range d.Monitors {
			if cl.Bus.Alive(m.Node) {
				m.onSlot(f, per[m.Node])
			}
		}
	})

	// Round-driven detection flush and assessment.
	cl.OnRound(func(round int64, now sim.Time) {
		for _, m := range d.Monitors {
			if cl.Bus.Alive(m.Node) {
				m.onRound(round, now)
			}
		}
		if cl.Bus.Alive(diagNode) {
			assessor.onRound(round, now)
		}
	})

	return d
}

func (d *Diagnostics) buildMonitor(c *component.Component) *Monitor {
	self, _ := d.Reg.HardwareIndex(c.ID)
	m := &Monitor{
		Node:    c.ID,
		Chan:    d.opts.DiagChannelBase + vnet.ChannelID(c.ID),
		reg:     d.Reg,
		cl:      d.cl,
		net:     d.Net,
		self:    self,
		acc:     make(map[accKey]accVal),
		KeepLog: d.opts.KeepMonitorLogs,
	}

	// Port trackers: every application in-port of a job on this component
	// with a registered LIF spec.
	for _, j := range c.Jobs {
		jobFRU, ok := d.Reg.Index(core.SoftwareFRU(int(c.ID), j.DAS.Name+"/"+j.Name))
		if !ok {
			continue
		}
		for _, ch := range j.InChannels() {
			if ch >= d.opts.DiagChannelBase {
				continue
			}
			meta, ok := d.Reg.Channel(ch)
			if !ok {
				continue
			}
			m.ports = append(m.ports, &portTracker{
				port:  j.InPort(ch),
				meta:  meta,
				owner: jobFRU,
			})
		}
		// Job-internal assertion hook (extension).
		if d.opts.JobInternalAssertions {
			if sc, ok := j.Impl.(component.SelfChecker); ok {
				m.selfCheckers = append(m.selfCheckers, selfTracker{checker: sc, job: j, subject: jobFRU})
			}
		}
		// Voter trackers for the redundancy-management service.
		if v, ok := j.Impl.(*component.VoterJob); ok {
			vt := &voterTracker{voter: v}
			valid := true
			for i, ch := range v.Ins {
				meta, ok := d.Reg.Channel(ch)
				if !ok {
					valid = false
					break
				}
				vt.replicaSubject[i] = meta.ProducerJob
				vt.replicaChannel[i] = ch
			}
			if valid {
				m.voters = append(m.voters, vt)
			}
		}
	}

	// Sender-side overflow trackers: one per application network endpoint
	// on this component, attributed to the producing job of the
	// endpoint's first local channel.
	for _, n := range d.cl.Fabric.Networks() {
		if n == d.Net {
			continue
		}
		ep := n.Endpoint(c.ID)
		if ep == nil {
			continue
		}
		for _, ch := range n.Channels() {
			if prod, ok := n.Producer(ch); ok && prod == c.ID {
				if meta, ok := d.Reg.Channel(ch); ok {
					m.txs = append(m.txs, &txTracker{ep: ep, subject: meta.ProducerJob, channel: ch})
					break
				}
			}
		}
	}

	return m
}

// MonitorAt returns the monitor of the given component, or nil.
func (d *Diagnostics) MonitorAt(n tt.NodeID) *Monitor {
	for _, m := range d.Monitors {
		if m.Node == n {
			return m
		}
	}
	return nil
}

// TrustOf returns the current trust level of a FRU by value.
func (d *Diagnostics) TrustOf(f core.FRU) core.TrustLevel {
	idx, ok := d.Reg.Index(f)
	if !ok {
		return 1
	}
	return d.Assessor.Trust(idx)
}

// VerdictOf returns the standing verdict for a FRU by value.
func (d *Diagnostics) VerdictOf(f core.FRU) (Verdict, bool) {
	idx, ok := d.Reg.Index(f)
	if !ok {
		return Verdict{}, false
	}
	return d.Assessor.Current(idx)
}

// Advise implements the maintenance advisor interface: the recommended
// action and diagnosed class for a FRU, per the standing verdict.
func (d *Diagnostics) Advise(f core.FRU) (core.MaintenanceAction, core.FaultClass, bool) {
	v, ok := d.VerdictOf(f)
	if !ok {
		return core.ActionNone, core.ClassUnknown, false
	}
	return v.Action, v.Class, true
}
