package diagnosis

import (
	"decos/internal/component"
	"decos/internal/sim"
	"decos/internal/tt"
	"decos/internal/vnet"
)

// DeviationWarnFraction is the normalized distance from the spec midpoint
// beyond which a still-conformant value raises a deviation symptom ("at the
// verge of becoming incorrect", Fig. 8).
const DeviationWarnFraction = 0.85

// Monitor is the local detection mechanism of the diagnostic services on
// one component: it observes the component's LIF-visible state (frame
// statuses, port statistics, voter statistics), aggregates deviations per
// round, and disseminates symptom records on the component's channel of the
// virtual diagnostic network.
type Monitor struct {
	Node tt.NodeID
	// Chan is the monitor's symptom channel on the diagnostic network.
	Chan vnet.ChannelID

	reg  *Registry
	cl   *component.Cluster
	net  *vnet.Network
	self FRUIndex

	acc map[accKey]accVal
	// flush scratch, reused across rounds.
	keys   []accKey
	encBuf []byte

	ports  []*portTracker
	voters []*voterTracker
	txs    []*txTracker
	// selfCheckers are the component's jobs exposing internal assertions
	// (only populated when the extension is enabled).
	selfCheckers []selfTracker

	// SymptomsSent counts emitted symptom records.
	SymptomsSent int
	// LocalLog, when enabled, retains every emitted symptom for tests and
	// offline analysis.
	LocalLog []Symptom
	KeepLog  bool
}

type accKey struct {
	kind    Kind
	subject FRUIndex
	channel vnet.ChannelID
}

type accVal struct {
	count int
	dev   float64
}

type portTracker struct {
	port  *vnet.InPort
	meta  ChannelMeta
	owner FRUIndex // consumer job FRU owning the port

	lastSeq        uint32
	haveSeq        bool
	lastChangeAt   int64 // round of last sequence advance
	lastValue      []byte
	sameValue      int64
	prevCRC        int
	prevOverflows  int
	prevReceived   int
	everReceived   bool
	stuckReported  int64
	staleReporting bool
}

type voterTracker struct {
	voter *component.VoterJob
	// replicaSubject[i] is the producer job FRU of replica channel i.
	replicaSubject [3]FRUIndex
	replicaChannel [3]vnet.ChannelID
	prevDisagree   [3]int
}

type txTracker struct {
	ep      *vnet.Endpoint
	subject FRUIndex
	channel vnet.ChannelID
	prev    int
}

type selfTracker struct {
	checker component.SelfChecker
	job     *component.Instance
	subject FRUIndex
}

func (m *Monitor) observe(k Kind, subject FRUIndex, ch vnet.ChannelID, count int, dev float64) {
	if count <= 0 {
		return
	}
	key := accKey{kind: k, subject: subject, channel: ch}
	v := m.acc[key]
	v.count += count
	if dev > v.dev {
		v.dev = dev
	}
	m.acc[key] = v
}

// onSlot ingests the frame status this component observed for one slot.
func (m *Monitor) onSlot(f *tt.Frame, st tt.FrameStatus) {
	if f.Sender == tt.NoNode || f.Sender == m.Node || !st.Failed() {
		return
	}
	subj, ok := m.reg.HardwareIndex(f.Sender)
	if !ok {
		return
	}
	switch st {
	case tt.FrameOmitted:
		m.observe(SymOmission, subj, 0, 1, 0)
	case tt.FrameCorrupted:
		m.observe(SymCorruption, subj, 0, 1, float64(f.CorruptBits))
	case tt.FrameTiming:
		m.observe(SymTiming, subj, 0, 1, 0)
	}
}

// onRound scans port-level state and flushes the round's symptoms onto the
// diagnostic network.
func (m *Monitor) onRound(round int64, now sim.Time) {
	for _, pt := range m.ports {
		m.scanPort(pt, round)
	}
	for _, vt := range m.voters {
		m.scanVoter(vt)
	}
	for _, tx := range m.txs {
		d := tx.ep.TxOverflows - tx.prev
		tx.prev = tx.ep.TxOverflows
		m.observe(SymOverflow, tx.subject, tx.channel, d, 0)
	}
	for _, sc := range m.selfCheckers {
		if sc.job.Halted {
			continue
		}
		if r := sc.checker.SelfCheck(); r.TransducerSuspect {
			m.observe(SymInternal, sc.subject, 0, 1, 1)
		}
	}
	m.flush(round, now)
}

func (m *Monitor) scanPort(pt *portTracker, round int64) {
	st := &pt.port.Stats
	spec := pt.meta.Spec

	// Value-domain corruption at message granularity. Aggregated under
	// the same key as the frame-level corruption symptom (channel 0):
	// both evidence the same producer-side damage, and one record per
	// round keeps the diagnostic network within its bandwidth budget
	// under heavy fault activity.
	if d := st.CRCFailures - pt.prevCRC; d > 0 {
		m.observe(SymCorruption, pt.meta.ProducerComp, 0, d, 1)
	}
	pt.prevCRC = st.CRCFailures

	// Receive-queue overflow (configuration fault manifestation at the
	// consumer's port).
	if d := st.Overflows - pt.prevOverflows; d > 0 {
		m.observe(SymOverflow, pt.owner, pt.port.Channel, d, 0)
	}
	pt.prevOverflows = st.Overflows

	received := st.Received - pt.prevReceived
	pt.prevReceived = st.Received
	if received > 0 {
		pt.everReceived = true
	}

	// Freshness tracking (sequence advance).
	seqAdvanced := false
	if received > 0 {
		if !pt.haveSeq || st.LastSeq != pt.lastSeq {
			seqAdvanced = true
			pt.lastSeq = st.LastSeq
			pt.haveSeq = true
			pt.lastChangeAt = round
		}
	}

	// Staleness: the producer's state stopped updating although the
	// channel promises MaxAgeRounds freshness.
	if spec.MaxAgeRounds > 0 && pt.everReceived {
		if age := round - pt.lastChangeAt; age > spec.MaxAgeRounds {
			m.observe(SymStale, pt.meta.ProducerJob, pt.port.Channel, 1, float64(age))
			pt.staleReporting = true
		} else if pt.staleReporting && seqAdvanced {
			pt.staleReporting = false
		}
	}

	// Value-domain checks on the newest valid value.
	if received > 0 && st.LastWasValid && len(st.LastValue) == 8 {
		v := vnet.Message{Payload: st.LastValue}.Float()
		if spec.Max > spec.Min {
			half := (spec.Max - spec.Min) / 2
			mid := spec.Min + half
			switch {
			case !spec.Conforms(v):
				over := v - spec.Max
				if v < spec.Min {
					over = spec.Min - v
				}
				if v != v { // NaN
					over = half
				}
				m.observe(SymValue, pt.meta.ProducerJob, pt.port.Channel, 1, over/half)
			default:
				if pos := abs(v-mid) / half; pos >= DeviationWarnFraction {
					m.observe(SymDeviation, pt.meta.ProducerJob, pt.port.Channel, 1, pos)
				}
			}
		}
		// Stuck-at plausibility for dynamic signals.
		if spec.StuckRounds > 0 {
			if seqAdvanced && bytesEqual(st.LastValue, pt.lastValue) {
				pt.sameValue++
			} else if seqAdvanced {
				pt.sameValue = 0
				pt.stuckReported = 0
			}
			pt.lastValue = append(pt.lastValue[:0], st.LastValue...)
			if pt.sameValue >= spec.StuckRounds && round-pt.stuckReported >= spec.StuckRounds {
				m.observe(SymStuck, pt.meta.ProducerJob, pt.port.Channel, 1, float64(pt.sameValue))
				pt.stuckReported = round
			}
		}
	}
}

func (m *Monitor) scanVoter(vt *voterTracker) {
	for i := 0; i < 3; i++ {
		d := vt.voter.Disagreements[i] - vt.prevDisagree[i]
		vt.prevDisagree[i] = vt.voter.Disagreements[i]
		m.observe(SymReplica, vt.replicaSubject[i], vt.replicaChannel[i], d, 0)
	}
}

// flush encodes the round's aggregated symptoms and sends them on the
// diagnostic network in deterministic order.
func (m *Monitor) flush(round int64, now sim.Time) {
	if len(m.acc) == 0 {
		return
	}
	keys := m.keys[:0]
	for k := range m.acc {
		keys = append(keys, k)
	}
	// Insertion sort into deterministic (kind, subject, channel) order; the
	// per-round key count is small and this avoids sort.Slice's closure.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && accKeyLess(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for _, k := range keys {
		v := m.acc[k]
		count := v.count
		if count > 0xffff {
			count = 0xffff
		}
		s := Symptom{
			Kind:      k.kind,
			Observer:  m.self,
			Subject:   k.subject,
			Channel:   k.channel,
			Granule:   round,
			At:        now,
			Count:     uint16(count),
			Deviation: float32(v.dev),
		}
		// The network copies the payload on Send, so one scratch buffer
		// serves every record.
		m.encBuf = s.appendWire(m.encBuf[:0])
		m.net.Send(m.Chan, m.encBuf, now)
		m.SymptomsSent++
		if m.KeepLog {
			m.LocalLog = append(m.LocalLog, s)
		}
	}
	m.keys = keys[:0]
	clear(m.acc)
}

func accKeyLess(a, b accKey) bool {
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	if a.subject != b.subject {
		return a.subject < b.subject
	}
	return a.channel < b.channel
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
