package diagnosis

// AlphaCount implements the α-count fault-discrimination mechanism the
// paper adopts from Bondavalli et al. (FTCS'97) to separate transient
// external disturbances from recurring internal faults (Section V-C): a
// per-FRU score is incremented on every judgment step that observed an
// error signal and decayed geometrically on clean steps. A score that
// climbs past the threshold indicates recurrence at the same location —
// the signature of an internal or intermittent fault — while isolated
// transients decay back to zero.
type AlphaCount struct {
	// K is the decay factor applied on clean steps (0 ≤ K < 1; larger K
	// remembers longer and is more sensitive to slow recurrences).
	K float64
	// Threshold is the score above which the FRU counts as affected by a
	// non-transient fault.
	Threshold float64

	score map[FRUIndex]float64
}

// NewAlphaCount returns a mechanism with the given decay and threshold.
func NewAlphaCount(k, threshold float64) *AlphaCount {
	if k < 0 || k >= 1 {
		panic("diagnosis: alpha-count decay K must be in [0,1)")
	}
	if threshold <= 0 {
		panic("diagnosis: alpha-count threshold must be positive")
	}
	return &AlphaCount{K: k, Threshold: threshold, score: make(map[FRUIndex]float64)}
}

// Step records one judgment step for the FRU: erroneous increments the
// score by weight (≥ 0 observations this step), clean steps decay it.
func (a *AlphaCount) Step(f FRUIndex, erroneous bool, weight float64) {
	if erroneous {
		if weight <= 0 {
			weight = 1
		}
		a.score[f] += weight
		return
	}
	s := a.score[f] * a.K
	if s < 1e-9 {
		delete(a.score, f)
		return
	}
	a.score[f] = s
}

// Score returns the current score of the FRU.
func (a *AlphaCount) Score(f FRUIndex) float64 { return a.score[f] }

// Exceeded reports whether the FRU's score passed the threshold.
func (a *AlphaCount) Exceeded(f FRUIndex) bool { return a.score[f] > a.Threshold }

// Reset clears the FRU's score (after repair).
func (a *AlphaCount) Reset(f FRUIndex) { delete(a.score, f) }
