package diagnosis

import (
	"decos/internal/core"
)

// An ONA (Out-of-Norm Assertion) is a deterministic predicate on the
// distributed state that encodes a fault pattern in the value, time and
// space dimensions (paper Section V-A). When all symptoms of its pattern
// are present, it yields findings: per-FRU classifications with a named
// pattern and confidence.
type ONA interface {
	Name() string
	Evaluate(ctx *EvalContext) []Finding
}

// Finding is one ONA conclusion about one FRU.
type Finding struct {
	Subject     FRUIndex
	Class       core.FaultClass
	Persistence core.Persistence
	Pattern     string
	Confidence  float64
	// Explains lists further FRUs whose symptoms this finding accounts
	// for; the assessor suppresses later verdicts for them this epoch.
	Explains []FRUIndex
}

// EvalContext is the state handed to ONAs at each assessment epoch.
type EvalContext struct {
	Hist  *History
	Reg   *Registry
	Alpha *AlphaCount // hardware FRUs, frame-level evidence
	SW    *AlphaCount // software FRUs, value-domain evidence
	// Granule is the newest action-lattice index.
	Granule int64
	// Window is the lookback horizon in granules.
	Window int64
	Opts   Options
	// Explained holds FRUs whose window symptoms are already accounted
	// for by a higher-priority finding.
	Explained map[FRUIndex]bool
	// Decided holds the class already concluded for a FRU this epoch
	// (populated as the suite evaluates, in priority order).
	Decided map[FRUIndex]core.FaultClass

	// Scratch reused by the ONAs across epochs (the assessor keeps one
	// context alive); valid only within a single Evaluate call.
	granArena   []int64
	hitFRUs     []FRUIndex
	hitOffs     [][2]int
	obsScratch  []FRUIndex
	rxPairs     []rxPair
	sickScratch []FRUIndex
}

// rxPair records a subject whose omissions were seen by exactly one
// observer (ConnectorRxONA evidence).
type rxPair struct {
	observer, subject FRUIndex
}

func (c *EvalContext) windowStart() int64 {
	s := c.Granule - c.Window + 1
	if s < 0 {
		s = 0
	}
	return s
}

// activeGranuleCount counts the subject's distinct matching granules in the
// window without materializing the list (History keeps each subject's
// symptoms granule-sorted).
func (c *EvalContext) activeGranuleCount(subject FRUIndex, from, to int64, f Filter) int {
	n, last := 0, int64(-1)
	for _, s := range c.Hist.list(subject) {
		if s.Granule > to {
			break
		}
		if s.Granule < from || (f != nil && !f(s)) {
			continue
		}
		if n == 0 || s.Granule != last {
			n++
			last = s.Granule
		}
	}
	return n
}

// appendActiveGranules appends the subject's distinct matching granules
// (ascending) to dst and returns the extended slice.
func (c *EvalContext) appendActiveGranules(dst []int64, subject FRUIndex, from, to int64, f Filter) []int64 {
	start := len(dst)
	for _, s := range c.Hist.list(subject) {
		if s.Granule > to {
			break
		}
		if s.Granule < from || (f != nil && !f(s)) {
			continue
		}
		if len(dst) == start || dst[len(dst)-1] != s.Granule {
			dst = append(dst, s.Granule)
		}
	}
	return dst
}

// observerStats returns the number of distinct observers reporting matching
// symptoms for the subject and, when there is exactly one, that observer
// (NoFRU otherwise).
func (c *EvalContext) observerStats(subject FRUIndex, from, to int64, f Filter) (int, FRUIndex) {
	seen := c.obsScratch[:0]
	for _, s := range c.Hist.list(subject) {
		if s.Granule > to {
			break
		}
		if s.Granule < from || (f != nil && !f(s)) {
			continue
		}
		dup := false
		for _, o := range seen {
			if o == s.Observer {
				dup = true
				break
			}
		}
		if !dup {
			seen = append(seen, s.Observer)
		}
	}
	c.obsScratch = seen[:0]
	if len(seen) == 1 {
		return 1, seen[0]
	}
	return len(seen), NoFRU
}

var frameLevel = KindIn(SymOmission, SymCorruption, SymTiming)

// valueViolation matches hard value/time-domain violations of a job's port
// spec. SymDeviation is deliberately excluded: a value drifting toward the
// spec boundary is a wearout corroborator, not evidence of a faulty job.
var valueViolation = KindIn(SymValue, SymStale, SymStuck, SymReplica)

// Filters used inside per-FRU loops, hoisted to package scope: KindIn
// builds a closure, and the ONAs would otherwise rebuild one per FRU per
// epoch on the assessment hot path.
var (
	omissionOnly     = KindIn(SymOmission)
	timingOnly       = KindIn(SymTiming)
	omissionOrTiming = KindIn(SymOmission, SymTiming)
	corruptionOnly   = KindIn(SymCorruption)
	devOrValue       = KindIn(SymDeviation, SymValue)
	hardValue        = KindIn(SymValue, SymStale, SymStuck)
	internalOnly     = KindIn(SymInternal)
	stuckOnly        = KindIn(SymStuck)
	valueOnly        = KindIn(SymValue)
	trustValueKinds  = KindIn(SymValue, SymStale, SymStuck, SymReplica, SymOverflow)
)

// ---------------------------------------------------------------------------

// MassiveTransientONA encodes the Fig. 8 massive-transient pattern: frame
// corruptions with multiple flipped bits on two or more spatially proximate
// components within a small time delta imply an external disturbance (EMI
// burst). The affected components require no maintenance action.
type MassiveTransientONA struct{}

// Name implements ONA.
func (MassiveTransientONA) Name() string { return "massive-transient" }

// Evaluate implements ONA.
func (o MassiveTransientONA) Evaluate(ctx *EvalContext) []Finding {
	from := ctx.windowStart()
	multiBit := func(s Symptom) bool {
		return s.Kind == SymCorruption && float64(s.Deviation) >= ctx.Opts.MultiBitThreshold
	}
	// Per-FRU granule lists live in one shared arena addressed by offsets
	// (the arena may reallocate while growing; subslices would go stale).
	arena := ctx.granArena[:0]
	frus := ctx.hitFRUs[:0]
	offs := ctx.hitOffs[:0]
	for _, hw := range ctx.Reg.HardwareFRUs() {
		start := len(arena)
		arena = ctx.appendActiveGranules(arena, hw, from, ctx.Granule, multiBit)
		if len(arena) > start {
			frus = append(frus, hw)
			offs = append(offs, [2]int{start, len(arena)})
		}
	}
	ctx.granArena, ctx.hitFRUs, ctx.hitOffs = arena, frus, offs
	if len(frus) < 2 {
		return nil
	}
	// Pairwise: simultaneous (within BurstGranules) and proximate.
	affected := map[FRUIndex]bool{}
	for i := 0; i < len(frus); i++ {
		for j := i + 1; j < len(frus); j++ {
			if ctx.Reg.Distance(frus[i], frus[j]) > ctx.Opts.ProximityRadius {
				continue
			}
			gi := arena[offs[i][0]:offs[i][1]]
			gj := arena[offs[j][0]:offs[j][1]]
			if granulesOverlap(gi, gj, ctx.Opts.BurstGranules) {
				affected[frus[i]] = true
				affected[frus[j]] = true
			}
		}
	}
	var out []Finding
	for _, hw := range ctx.Reg.HardwareFRUs() {
		if affected[hw] {
			out = append(out, Finding{
				Subject:     hw,
				Class:       core.ComponentExternal,
				Persistence: core.Transient,
				Pattern:     "massive-transient",
				Confidence:  0.9,
			})
		}
	}
	return out
}

// granulesOverlap reports whether two sorted granule lists contain entries
// within delta of each other.
func granulesOverlap(a, b []int64, delta int64) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		d := a[i] - b[j]
		if d < 0 {
			d = -d
		}
		if d <= delta {
			return true
		}
		if a[i] < b[j] {
			i++
		} else {
			j++
		}
	}
	return false
}

// ---------------------------------------------------------------------------

// PermanentONA detects continuous service loss of a component: omission or
// timing failures in nearly every recent granule, confirmed by at least two
// independent observers. Timing-dominated evidence indicates loss of clock
// synchronization (defective quartz); omission-dominated evidence a dead
// component. Both are component-internal and permanent.
type PermanentONA struct{}

// Name implements ONA.
func (PermanentONA) Name() string { return "permanent" }

// Evaluate implements ONA.
func (o PermanentONA) Evaluate(ctx *EvalContext) []Finding {
	var out []Finding
	p := ctx.Opts.PermanentWindow
	from := ctx.Granule - p + 1
	if from < 0 {
		from = 0
	}
	span := ctx.Granule - from + 1
	for _, hw := range ctx.Reg.HardwareFRUs() {
		if ctx.Explained[hw] {
			continue
		}
		omit := ctx.activeGranuleCount(hw, from, ctx.Granule, omissionOnly)
		timing := ctx.activeGranuleCount(hw, from, ctx.Granule, timingOnly)
		n := omit
		pattern := "permanent-silence"
		if timing > omit {
			n = timing
			pattern = "sync-loss"
		}
		if float64(n) < ctx.Opts.PermanentDuty*float64(span) {
			continue
		}
		if obs, _ := ctx.observerStats(hw, from, ctx.Granule, omissionOrTiming); obs < 2 {
			continue
		}
		out = append(out, Finding{
			Subject:     hw,
			Class:       core.ComponentInternal,
			Persistence: core.Permanent,
			Pattern:     pattern,
			Confidence:  0.95,
			Explains:    ctx.Reg.JobsOn(hw),
		})
	}
	return out
}

// ---------------------------------------------------------------------------

// WearoutONA encodes the Fig. 8 wearout pattern: transient failures of one
// component whose frequency increases as time progresses, optionally
// corroborated by increasing value deviation of the component's outputs.
// Wearout is a component-internal fault: the indicator for condition-based
// replacement (Section III-E).
type WearoutONA struct{}

// Name implements ONA.
func (WearoutONA) Name() string { return "wearout" }

// Evaluate implements ONA.
func (o WearoutONA) Evaluate(ctx *EvalContext) []Finding {
	var out []Finding
	from := ctx.windowStart()
	mid := (from + ctx.Granule) / 2
	for _, hw := range ctx.Reg.HardwareFRUs() {
		if ctx.Explained[hw] {
			continue
		}
		early := ctx.activeGranuleCount(hw, from, mid, corruptionOnly)
		late := ctx.activeGranuleCount(hw, mid+1, ctx.Granule, corruptionOnly)
		if early < 1 || late < 4 || float64(late) < ctx.Opts.RiseFactor*float64(early) {
			continue
		}
		conf := 0.8
		// Deviation trend of hosted jobs corroborates.
		for _, sw := range ctx.Reg.JobsOn(hw) {
			dEarly := ctx.Hist.MaxDeviation(sw, from, mid, devOrValue)
			dLate := ctx.Hist.MaxDeviation(sw, mid+1, ctx.Granule, devOrValue)
			if dLate > dEarly && dLate > 0 {
				conf = 0.9
				break
			}
		}
		out = append(out, Finding{
			Subject:     hw,
			Class:       core.ComponentInternal,
			Persistence: core.Intermittent,
			Pattern:     "wearout",
			Confidence:  conf,
			Explains:    ctx.Reg.JobsOn(hw),
		})
	}
	return out
}

// ---------------------------------------------------------------------------

// RecurrentInternalONA detects component-internal intermittent faults:
// transient corruption episodes that recur at the same location (α-count
// above threshold) without the spatial correlation of an external
// disturbance. Recurrence at one location distinguishes internal from
// external transients (Section V-C).
type RecurrentInternalONA struct{}

// Name implements ONA.
func (RecurrentInternalONA) Name() string { return "recurrent-internal" }

// Evaluate implements ONA.
func (o RecurrentInternalONA) Evaluate(ctx *EvalContext) []Finding {
	var out []Finding
	from := ctx.windowStart()
	for _, hw := range ctx.Reg.HardwareFRUs() {
		if ctx.Explained[hw] || !ctx.Alpha.Exceeded(hw) {
			continue
		}
		if ctx.activeGranuleCount(hw, from, ctx.Granule, corruptionOnly) < ctx.Opts.MinRecurrentGranules {
			continue
		}
		out = append(out, Finding{
			Subject:     hw,
			Class:       core.ComponentInternal,
			Persistence: core.Intermittent,
			Pattern:     "recurrent-transient",
			Confidence:  0.8,
			Explains:    ctx.Reg.JobsOn(hw),
		})
	}
	return out
}

// ---------------------------------------------------------------------------

// ConnectorRxONA detects inbound connector faults: one component (as
// observer) reports omissions from two or more other components while no
// second observer corroborates them — the asymmetry places the fault at the
// observer's own connector (borderline).
type ConnectorRxONA struct{}

// Name implements ONA.
func (ConnectorRxONA) Name() string { return "connector-rx" }

// Evaluate implements ONA.
func (o ConnectorRxONA) Evaluate(ctx *EvalContext) []Finding {
	from := ctx.windowStart()
	// For every subject, find the observers of its omissions. Pairs are
	// gathered into reusable scratch; a subject list is materialized only
	// when an actual finding emits (rare).
	pairs := ctx.rxPairs[:0]
	for _, hw := range ctx.Reg.HardwareFRUs() {
		n, sole := ctx.observerStats(hw, from, ctx.Granule, omissionOnly)
		if n != 1 {
			continue
		}
		// A single stray omission is not connector evidence.
		if ctx.Hist.Count(hw, from, ctx.Granule, omissionOnly) < 2 {
			continue
		}
		pairs = append(pairs, rxPair{observer: sole, subject: hw})
	}
	ctx.rxPairs = pairs
	var out []Finding
	for _, hw := range ctx.Reg.HardwareFRUs() {
		n := 0
		for _, p := range pairs {
			if p.observer == hw {
				n++
			}
		}
		if n < 2 || ctx.Explained[hw] {
			continue
		}
		subjects := make([]FRUIndex, 0, n)
		for _, p := range pairs {
			if p.observer == hw {
				subjects = append(subjects, p.subject)
			}
		}
		out = append(out, Finding{
			Subject:     hw,
			Class:       core.ComponentBorderline,
			Persistence: core.Intermittent,
			Pattern:     "connector-rx",
			Confidence:  0.75,
			Explains:    subjects,
		})
	}
	return out
}

// ---------------------------------------------------------------------------

// ConnectorTxONA encodes the Fig. 8 connector pattern on the outbound path:
// message omissions of one component at arbitrary instants, corroborated by
// several observers, recurring (α-count) but far from permanent duty.
type ConnectorTxONA struct{}

// Name implements ONA.
func (ConnectorTxONA) Name() string { return "connector-tx" }

// Evaluate implements ONA.
func (o ConnectorTxONA) Evaluate(ctx *EvalContext) []Finding {
	var out []Finding
	from := ctx.windowStart()
	span := ctx.Granule - from + 1
	for _, hw := range ctx.Reg.HardwareFRUs() {
		if ctx.Explained[hw] || !ctx.Alpha.Exceeded(hw) {
			continue
		}
		gs := ctx.activeGranuleCount(hw, from, ctx.Granule, omissionOnly)
		if gs < ctx.Opts.MinRecurrentGranules {
			continue
		}
		if float64(gs) >= ctx.Opts.PermanentDuty*float64(span) {
			continue // continuous loss is the permanent pattern
		}
		if obs, _ := ctx.observerStats(hw, from, ctx.Granule, omissionOnly); obs < 2 {
			continue
		}
		out = append(out, Finding{
			Subject:     hw,
			Class:       core.ComponentBorderline,
			Persistence: core.Intermittent,
			Pattern:     "connector-tx",
			Confidence:  0.8,
		})
	}
	return out
}

// ---------------------------------------------------------------------------

// IsolatedTransientONA is the residual hardware verdict: sporadic frame
// failures of one component that neither recur (α-count below threshold)
// nor correlate spatially are classified as component-external transients
// (SEU, isolated disturbance). No maintenance action follows — replacing
// the component would be a no-fault-found removal.
type IsolatedTransientONA struct{}

// Name implements ONA.
func (IsolatedTransientONA) Name() string { return "isolated-transient" }

// Evaluate implements ONA.
func (o IsolatedTransientONA) Evaluate(ctx *EvalContext) []Finding {
	var out []Finding
	from := ctx.windowStart()
	for _, hw := range ctx.Reg.HardwareFRUs() {
		if ctx.Explained[hw] || ctx.Alpha.Exceeded(hw) {
			continue
		}
		if ctx.Hist.Count(hw, from, ctx.Granule, frameLevel) == 0 {
			continue
		}
		out = append(out, Finding{
			Subject:     hw,
			Class:       core.ComponentExternal,
			Persistence: core.Transient,
			Pattern:     "isolated-transient",
			Confidence:  0.6,
		})
	}
	return out
}

// ---------------------------------------------------------------------------

// CorrelatedJobsONA implements the Fig. 10 judgment: value-domain failures
// of two or more jobs belonging to different DASs on the same component are
// very unlikely to be independent software faults — they evidence a
// component-internal hardware fault (the jobs' faults are job-external).
type CorrelatedJobsONA struct{}

// Name implements ONA.
func (CorrelatedJobsONA) Name() string { return "correlated-jobs" }

// Evaluate implements ONA.
func (o CorrelatedJobsONA) Evaluate(ctx *EvalContext) []Finding {
	var out []Finding
	from := ctx.windowStart()
	for _, hw := range ctx.Reg.HardwareFRUs() {
		if ctx.Explained[hw] {
			continue
		}
		sick := ctx.sickScratch[:0]
		firstDAS, multiDAS := "", false
		for _, sw := range ctx.Reg.JobsOn(hw) {
			if ctx.Hist.Count(sw, from, ctx.Granule, valueViolation) > 0 {
				if das := ctx.Reg.DASOf(sw); len(sick) == 0 {
					firstDAS = das
				} else if das != firstDAS {
					multiDAS = true
				}
				sick = append(sick, sw)
			}
		}
		ctx.sickScratch = sick[:0]
		if len(sick) < 2 || !multiDAS {
			continue
		}
		out = append(out, Finding{
			Subject:     hw,
			Class:       core.ComponentInternal,
			Persistence: core.Intermittent,
			Pattern:     "correlated-jobs",
			Confidence:  0.85,
			// Copy out of the scratch: the finding outlives this loop.
			Explains: append([]FRUIndex(nil), sick...),
		})
	}
	return out
}

// ---------------------------------------------------------------------------

// ConfigurationONA detects job-borderline faults: port queue overflows
// while the involved producers conform to their value and time specs — the
// virtual-network configuration, not any job, is at fault.
type ConfigurationONA struct{}

// Name implements ONA.
func (ConfigurationONA) Name() string { return "configuration" }

// Evaluate implements ONA.
func (o ConfigurationONA) Evaluate(ctx *EvalContext) []Finding {
	var out []Finding
	from := ctx.windowStart()
	for _, sw := range ctx.Reg.SoftwareFRUs() {
		if ctx.Explained[sw] {
			continue
		}
		total := 0
		producersClean := true
		for _, s := range ctx.Hist.list(sw) {
			if s.Granule > ctx.Granule {
				break
			}
			if s.Granule < from || s.Kind != SymOverflow {
				continue
			}
			total += int(s.Count)
			if meta, ok := ctx.Reg.Channel(s.Channel); ok {
				if ctx.Hist.Count(meta.ProducerJob, from, ctx.Granule, hardValue) > 0 {
					producersClean = false
				}
			}
		}
		if total < ctx.Opts.OverflowMin || !producersClean {
			continue
		}
		out = append(out, Finding{
			Subject:     sw,
			Class:       core.JobBorderline,
			Persistence: core.Permanent,
			Pattern:     "configuration",
			Confidence:  0.8,
		})
	}
	return out
}

// ---------------------------------------------------------------------------

// JobInherentONA attributes recurring value-domain failures confined to a
// single job — its siblings on the component healthy, the component's
// frame-level service healthy — to the job itself. With interface state
// alone, software and transducer faults are indistinguishable (Section
// III-D); a stuck-at plausibility violation on a sensor channel shifts the
// verdict to the transducer subclass.
type JobInherentONA struct{}

// Name implements ONA.
func (JobInherentONA) Name() string { return "job-inherent" }

// Evaluate implements ONA.
func (o JobInherentONA) Evaluate(ctx *EvalContext) []Finding {
	var out []Finding
	from := ctx.windowStart()
	for _, sw := range ctx.Reg.SoftwareFRUs() {
		if ctx.Explained[sw] || !ctx.SW.Exceeded(sw) {
			continue
		}
		if ctx.Hist.Count(sw, from, ctx.Granule, valueViolation) == 0 {
			continue
		}
		hw := ctx.Reg.HostOf(sw)
		if ctx.Alpha.Exceeded(hw) {
			continue // component-level evidence dominates
		}
		// A standing hardware verdict on the host (internal defect,
		// flaky outbound connector) explains the job's port symptoms; an
		// external verdict does not veto — and neither does the host
		// merely being the victim of some other FRU's fault (e.g. its
		// omissions explained by a receiver-side connector).
		if cls, decidedHW := ctx.Decided[hw]; decidedHW && cls != core.ComponentExternal {
			continue
		}
		siblingsClean := true
		for _, sib := range ctx.Reg.JobsOn(hw) {
			if sib == sw {
				continue
			}
			if ctx.Hist.Count(sib, from, ctx.Granule, valueViolation) > 0 {
				siblingsClean = false
				break
			}
		}
		if !siblingsClean {
			continue // correlated-jobs territory
		}
		// Subtype: with the job-internal-assertions extension enabled,
		// the job's own transducer plausibility checks decide exactly —
		// suspect transducer → sensor subclass, clean transducer with
		// failing outputs → software design fault. Without job-internal
		// information (the paper's base case, Section III-D) only a
		// frozen-but-plausible value (stuck without hard violations)
		// hints at the transducer; everything else stays the merged
		// verdict.
		class := core.JobInherent
		pattern := "job-inherent"
		confidence := 0.8
		if ctx.Opts.JobInternalAssertions {
			if ctx.Hist.Count(sw, from, ctx.Granule, internalOnly) > 0 {
				class = core.JobInherentSensor
				pattern = "job-inherent-sensor/internal"
			} else {
				class = core.JobInherentSoftware
				pattern = "job-inherent-software/internal"
			}
			confidence = 0.9
		} else if ctx.Hist.Count(sw, from, ctx.Granule, stuckOnly) > 0 &&
			ctx.Hist.Count(sw, from, ctx.Granule, valueOnly) == 0 {
			class = core.JobInherentSensor
			pattern = "job-inherent-sensor"
		}
		out = append(out, Finding{
			Subject:     sw,
			Class:       class,
			Persistence: core.Intermittent,
			Pattern:     pattern,
			Confidence:  confidence,
		})
	}
	return out
}

// DefaultONAs returns the assertion suite in priority order. The first
// GatingONAs entries also gate the α-count update: symptoms they explain
// (spatially correlated bursts; omissions reported only by a defective
// receiver) must not accumulate as recurrence evidence against the
// subjects they name.
func DefaultONAs() []ONA {
	return []ONA{
		MassiveTransientONA{},
		ConnectorRxONA{},
		PermanentONA{},
		WearoutONA{},
		RecurrentInternalONA{},
		ConnectorTxONA{},
		IsolatedTransientONA{},
		CorrelatedJobsONA{},
		ConfigurationONA{},
		JobInherentONA{},
	}
}

// GatingONAs is the number of leading DefaultONAs entries evaluated before
// the α-count step.
const GatingONAs = 2
