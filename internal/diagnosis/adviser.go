package diagnosis

import (
	"decos/internal/core"
	"decos/internal/sim"
)

// DeriveAction is the Fig. 11 maintenance-action derivation shared by
// every diagnostic arm — the onboard DECOS pipeline, the OBD baseline
// and the fleet-side warranty audit: the action for a diagnosed class,
// given whether the OEM has released a software update for the subject.
// The merged job-inherent verdict consults the update flag too (an
// acknowledged update implies the software subclass); the possibly
// refined class is returned alongside the action.
func DeriveAction(class core.FaultClass, updateAvailable bool) (core.FaultClass, core.MaintenanceAction) {
	if class == core.JobInherent && updateAvailable {
		class = core.JobInherentSoftware
	}
	return class, core.ActionFor(class, updateAvailable)
}

// Adviser is the third stage of the staged assessment pipeline — the
// paper's maintenance-action derivation phase (Fig. 11): it turns the
// classifier's findings into standing verdicts with derived maintenance
// actions and maintains every FRU's trust trajectory (Fig. 9).
type Adviser struct {
	reg  *Registry
	opts Options

	trust     map[FRUIndex]float64
	trustHist map[FRUIndex][]TrustPoint
	current   map[FRUIndex]Verdict
	emitted   []Verdict
	epoch     int64

	verdictHooks []func(Verdict)
}

// NewAdviser creates an adviser over the given registry; every FRU
// starts fully trusted.
func NewAdviser(reg *Registry, opts Options) *Adviser {
	ad := &Adviser{
		reg:       reg,
		opts:      opts.withDefaults(),
		trust:     make(map[FRUIndex]float64),
		trustHist: make(map[FRUIndex][]TrustPoint),
		current:   make(map[FRUIndex]Verdict),
	}
	for i := 0; i < reg.Len(); i++ {
		ad.trust[FRUIndex(i)] = 1
	}
	return ad
}

// OnVerdict registers the adviser stage's attach point, invoked at every
// verdict emission (first classification or class/pattern change). With
// no hook registered the emission path pays nothing beyond a nil-slice
// range.
func (ad *Adviser) OnVerdict(f func(Verdict)) { ad.verdictHooks = append(ad.verdictHooks, f) }

// Advance closes one assessment epoch: it derives verdicts and actions
// from the classifier's findings (ascending subject order) and updates
// every FRU's trust level from the epoch's evidence.
func (ad *Adviser) Advance(ctx *EvalContext, findings []Finding, now sim.Time) {
	ad.epoch++
	for _, f := range findings {
		fru := ad.reg.FRU(f.Subject)
		update := false
		if ad.opts.UpdateAvailable != nil {
			update = ad.opts.UpdateAvailable(fru)
		}
		_, action := DeriveAction(f.Class, update)
		v := Verdict{
			Epoch:       ad.epoch,
			At:          now,
			Subject:     f.Subject,
			FRU:         fru,
			Class:       f.Class,
			Persistence: f.Persistence,
			Pattern:     f.Pattern,
			Confidence:  f.Confidence,
			Action:      action,
		}
		prev, had := ad.current[f.Subject]
		ad.current[f.Subject] = v
		if !had || prev.Class != v.Class || prev.Pattern != v.Pattern {
			ad.emitted = append(ad.emitted, v)
			for _, h := range ad.verdictHooks {
				h(v)
			}
		}
	}
	ad.updateTrust(ctx, now)
}

func (ad *Adviser) updateTrust(ctx *EvalContext, now sim.Time) {
	granule := ctx.Granule
	epochFrom := granule - ad.opts.EpochRounds + 1
	if epochFrom < 0 {
		epochFrom = 0
	}
	for i := 0; i < ad.reg.Len(); i++ {
		f := FRUIndex(i)
		var weight int
		if ad.reg.IsHardware(f) {
			weight = ctx.Hist.Count(f, epochFrom, granule, frameLevel)
		} else {
			weight = ctx.Hist.Count(f, epochFrom, granule, trustValueKinds)
		}
		t := ad.trust[f]
		if weight == 0 {
			t += 0.1 * (1 - t)
		} else {
			sev := float64(weight) / 20
			if sev > 1 {
				sev = 1
			}
			impact := 0.35
			if cls, ok := ctx.Decided[f]; ok && cls == core.ComponentExternal {
				impact = 0.12 // external hits erode confidence only briefly
			}
			t -= impact * sev
		}
		t = float64(core.TrustLevel(t).Clamp())
		ad.trust[f] = t
		ad.trustHist[f] = append(ad.trustHist[f], TrustPoint{At: now, Granule: granule, Trust: core.TrustLevel(t)})
	}
}

// Trust returns the FRU's current trust level.
func (ad *Adviser) Trust(f FRUIndex) core.TrustLevel {
	return core.TrustLevel(ad.trust[f])
}

// TrustHistory returns the FRU's trust trajectory, one point per epoch.
func (ad *Adviser) TrustHistory(f FRUIndex) []TrustPoint { return ad.trustHist[f] }

// Current returns the FRU's standing verdict.
func (ad *Adviser) Current(f FRUIndex) (Verdict, bool) {
	v, ok := ad.current[f]
	return v, ok
}

// CurrentAll returns the standing verdict of every FRU that has one, in
// subject order.
func (ad *Adviser) CurrentAll() []Verdict {
	var out []Verdict
	for i := 0; i < ad.reg.Len(); i++ {
		if v, ok := ad.current[FRUIndex(i)]; ok {
			out = append(out, v)
		}
	}
	return out
}

// Emitted returns every verdict emission (first classifications and class
// changes) in order.
func (ad *Adviser) Emitted() []Verdict { return ad.emitted }

// Epoch returns the number of completed assessment epochs.
func (ad *Adviser) Epoch() int64 { return ad.epoch }

// Forget drops the FRU's standing verdict and restores full trust (after
// a repair action).
func (ad *Adviser) Forget(f FRUIndex) {
	delete(ad.current, f)
	ad.trust[f] = 1
}
